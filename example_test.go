package lca_test

import (
	"fmt"

	"lca"
)

// Querying a 3-spanner edge without any global computation: answers are
// consistent with one spanner fixed entirely by the seed.
func ExampleNewSpanner3() {
	g := lca.Complete(400)
	span := lca.NewSpanner3(lca.NewOracle(g), 42)

	in := span.QueryEdge(7, 301)
	again := lca.NewSpanner3(lca.NewOracle(g), 42).QueryEdge(7, 301)
	fmt.Println(in == again)
	// Output: true
}

// Assembling and auditing the full spanner (something a deployment never
// needs, but the theory's guarantees become checkable).
func ExampleBuildSubgraph() {
	g := lca.Complete(200)
	span := lca.NewSpanner3Config(lca.NewOracle(g), 7, lca.SpannerConfig{Memo: true})
	h, _ := lca.BuildSubgraph(g, span)
	rep := lca.VerifyStretch(g, h, 3)
	fmt.Println(rep.Violations == 0, h.M() < g.M())
	// Output: true true
}

// MIS membership queries: every vertex can decide its own membership
// locally, and the collection of answers is a valid maximal independent
// set.
func ExampleNewMIS() {
	g := lca.Torus(10, 10)
	m := lca.NewMIS(lca.NewOracle(g), 3)
	in, _ := lca.BuildVertexSet(g, m)
	fmt.Println(lca.VerifyMaximalIndependentSet(g, in) == nil)
	// Output: true
}

// Estimating a solution's size from sampled queries — sublinear in n.
func ExampleEstimateVertexFraction() {
	g := lca.Torus(30, 30)
	m := lca.NewMIS(lca.NewOracle(g), 5)
	res := lca.EstimateVertexFraction(g.N(), m, lca.EstimateSamplesFor(0.1, 0.05), 0.05, 9)
	// A torus MIS sits between 1/4 and 1/2 of the vertices.
	fmt.Println(res.Fraction > 0.2, res.Fraction < 0.55)
	// Output: true true
}

// Hard probe budgets: the locality guarantee as a runtime contract.
func ExampleProbeLimiter_WithinBudget() {
	g := lca.Complete(100)
	limiter := lca.NewProbeLimiter(lca.NewOracle(g), 10)
	ok := limiter.WithinBudget(func() {
		limiter.Degree(0)
		limiter.Degree(1)
	})
	overrun := limiter.WithinBudget(func() {
		for v := 0; v < 50; v++ {
			limiter.Degree(v)
		}
	})
	fmt.Println(ok, overrun)
	// Output: true false
}

// Parallel assembly: per-worker instances, bit-identical results.
func ExampleBuildSubgraphParallel() {
	g := lca.Gnp(150, 0.2, 3)
	serial, _ := lca.BuildSubgraph(g, lca.NewSpanner3(lca.NewOracle(g), 5))
	parallel, _ := lca.BuildSubgraphParallel(g, func() lca.EdgeLCA {
		return lca.NewSpanner3(lca.NewOracle(g), 5)
	}, 4)
	fmt.Println(serial.M() == parallel.M())
	// Output: true
}
