module lca

go 1.24
