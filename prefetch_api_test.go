package lca_test

// Session-level contract of the exploration redesign: WithPrefetch never
// changes answers or probe counts, collapses network round trips by the
// documented margin, and composes with probe budgets; the wire RandomEdge
// extension makes edge-kind estimation work over network backends.

import (
	"errors"
	"net/http/httptest"
	"testing"

	"lca"
	"lca/internal/source"
)

// shardPair spins up two httptest probe shards over replicas of one spec
// and returns the sharded spec string addressing them.
func shardPair(t *testing.T, spec string) string {
	t.Helper()
	urls := make([]string, 2)
	for i := range urls {
		replica, err := lca.OpenSource(spec, 7)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(source.NewProbeHandler(replica))
		t.Cleanup(ts.Close)
		urls[i] = ts.URL
	}
	return "sharded:remote:" + urls[0] + ",remote:" + urls[1]
}

func TestWithPrefetchAnswersAndProbesUnchanged(t *testing.T) {
	g := lca.Gnp(300, 0.03, 5)
	plain := lca.NewSession(g, lca.WithSeed(9))
	pre := lca.NewSession(g, lca.WithSeed(9), lca.WithPrefetch(true))
	for v := 0; v < g.N(); v += 7 {
		a, err := plain.Vertex("mis", v)
		if err != nil {
			t.Fatal(err)
		}
		b, err := pre.Vertex("mis", v)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("mis(%d): %v without prefetch, %v with", v, a, b)
		}
		ca, err := plain.Label("coloring", v)
		if err != nil {
			t.Fatal(err)
		}
		cb, err := pre.Label("coloring", v)
		if err != nil {
			t.Fatal(err)
		}
		if ca != cb {
			t.Fatalf("coloring(%d): %d without prefetch, %d with", v, ca, cb)
		}
	}
	sa, err := plain.ProbeStats("mis")
	if err != nil {
		t.Fatal(err)
	}
	sb, err := pre.ProbeStats("mis")
	if err != nil {
		t.Fatal(err)
	}
	if sa.Total() != sb.Total() || sa.Neighbor != sb.Neighbor || sa.Degree != sb.Degree {
		t.Fatalf("probe counts moved under prefetch: %+v vs %+v (transport must not change the complexity measure)", sa, sb)
	}
}

func TestWithPrefetchCollapsesRoundTripsOverShards(t *testing.T) {
	const spec = "circulant:n=3000,d=8,seed=3"
	roundTrips := func(prefetch bool) uint64 {
		src, err := lca.OpenSource(shardPair(t, spec), 7)
		if err != nil {
			t.Fatal(err)
		}
		s := lca.NewSessionFromSource(src, lca.WithSeed(11), lca.WithPrefetch(prefetch))
		defer s.Close()
		for i := 0; i < 8; i++ {
			if _, err := s.Vertex("mis", (i*977)%3000); err != nil {
				t.Fatal(err)
			}
		}
		ps, err := s.ProbeStats("mis")
		if err != nil {
			t.Fatal(err)
		}
		if ps.RoundTrips == 0 {
			t.Fatal("network session reported zero round trips")
		}
		return ps.RoundTrips
	}
	scalar := roundTrips(false)
	prefetched := roundTrips(true)
	if prefetched*3 > scalar {
		t.Fatalf("prefetch round trips %d vs scalar %d: want at least a 3x collapse", prefetched, scalar)
	}
}

func TestWithPrefetchBudgetStillEnforced(t *testing.T) {
	g := lca.Gnp(200, 0.05, 5)
	s := lca.NewSession(g, lca.WithSeed(5), lca.WithProbeBudget(1), lca.WithPrefetch(true))
	if _, err := s.Vertex("mis", 0); !errors.Is(err, lca.ErrProbeBudget) {
		t.Fatalf("want ErrProbeBudget through the prefetching chain, got %v", err)
	}
}

func TestEstimateFractionEdgeKindOverNetwork(t *testing.T) {
	const spec = "circulant:n=2000,d=6,seed=3"
	replica, err := lca.OpenSource(spec, 7)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(source.NewProbeHandler(replica))
	t.Cleanup(ts.Close)

	estimateOver := func(srcSpec string) lca.EstimateResult {
		src, err := lca.OpenSource(srcSpec, 7)
		if err != nil {
			t.Fatal(err)
		}
		s := lca.NewSessionFromSource(src, lca.WithSeed(13), lca.WithPrefetch(true))
		defer s.Close()
		res, err := s.EstimateFraction("spanner3", 60, 0.05)
		if err != nil {
			t.Fatalf("edge-kind estimate over %s: %v", srcSpec, err)
		}
		return res
	}
	remote := estimateOver("remote:" + ts.URL)
	again := estimateOver("remote:" + ts.URL)
	if remote.Fraction != again.Fraction {
		t.Fatalf("remote edge estimate not deterministic: %v vs %v", remote.Fraction, again.Fraction)
	}
	if remote.Fraction < 0 || remote.Fraction > 1 {
		t.Fatalf("nonsense fraction %v", remote.Fraction)
	}
}
