package lca_test

// Source-backed Session tests, including the acceptance criterion of the
// implicit-source subsystem: a Session over a source with n >= 10^8
// vertices answers point queries with bounded allocations per query and
// without ever holding O(n) adjacency state.

import (
	"errors"
	"runtime"
	"testing"

	"lca"
)

// TestSessionFromSourceMatchesGraphSession pins source-backed sessions to
// graph-backed ones: the implicit ring and the materialized cycle must
// produce identical answers for every algorithm kind.
func TestSessionFromSourceMatchesGraphSession(t *testing.T) {
	const n = 400
	src, err := lca.OpenSource("ring:n=400", 7)
	if err != nil {
		t.Fatal(err)
	}
	cyc := cycleGraph(n)
	ss := lca.NewSessionFromSource(src, lca.WithSeed(42))
	sg := lca.NewSession(cyc, lca.WithSeed(42))
	for v := 0; v < n; v += 7 {
		a, err := ss.Vertex("mis", v)
		if err != nil {
			t.Fatal(err)
		}
		b, err := sg.Vertex("mis", v)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("mis(%d): source says %v, graph says %v", v, a, b)
		}
		c, err := ss.Label("coloring", v)
		if err != nil {
			t.Fatal(err)
		}
		d, err := sg.Label("coloring", v)
		if err != nil {
			t.Fatal(err)
		}
		if c != d {
			t.Fatalf("coloring(%d): source says %d, graph says %d", v, c, d)
		}
		e1, err := ss.Edge("matching", v, (v+1)%n)
		if err != nil {
			t.Fatal(err)
		}
		e2, err := sg.Edge("matching", v, (v+1)%n)
		if err != nil {
			t.Fatal(err)
		}
		if e1 != e2 {
			t.Fatalf("matching(%d,%d): source says %v, graph says %v", v, (v+1)%n, e1, e2)
		}
	}
	// Non-edges are rejected on source sessions too.
	if _, err := ss.Edge("matching", 0, 5); err == nil {
		t.Fatal("non-edge accepted on source session")
	}
}

func cycleGraph(n int) *lca.Graph {
	b := lca.NewGraphBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(i, (i+1)%n)
	}
	return b.Build()
}

// TestSessionFromSourceBatchRefusal checks batch assembly errors cleanly
// on non-materialized sources while estimation keeps working.
func TestSessionFromSourceBatchRefusal(t *testing.T) {
	src, err := lca.OpenSource("circulant:n=5000,d=6", 7)
	if err != nil {
		t.Fatal(err)
	}
	s := lca.NewSessionFromSource(src, lca.WithSeed(3))
	if _, _, err := s.BuildVertexSet("mis"); !errors.Is(err, lca.ErrNotMaterialized) {
		t.Fatalf("BuildVertexSet on implicit source: err = %v, want ErrNotMaterialized", err)
	}
	if _, _, err := s.BuildSubgraph("matching"); !errors.Is(err, lca.ErrNotMaterialized) {
		t.Fatalf("BuildSubgraph on implicit source: err = %v, want ErrNotMaterialized", err)
	}
	if _, _, err := s.BuildLabels("coloring"); !errors.Is(err, lca.ErrNotMaterialized) {
		t.Fatalf("BuildLabels on implicit source: err = %v, want ErrNotMaterialized", err)
	}
	if s.Graph() != nil {
		t.Fatal("Graph() should be nil for implicit sources")
	}
	est, err := s.EstimateFraction("mis", 400, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if est.Fraction <= 0 || est.Fraction > 1 {
		t.Fatalf("estimate fraction %v out of range", est.Fraction)
	}
	// Edge-kind estimation via the RandomEdge capability.
	est, err = s.EstimateFraction("matching", 400, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if est.Fraction <= 0 || est.Fraction > 1 {
		t.Fatalf("edge estimate fraction %v out of range", est.Fraction)
	}
}

// TestEstimateEdgelessSourceErrors pins the panic-to-error conversion: an
// effectively edgeless random source whose edge count is unknowable in
// O(1) must fail edge-kind estimation with an error, never a panic.
func TestEstimateEdgelessSourceErrors(t *testing.T) {
	src, err := lca.OpenSource("blockrandom:n=100,d=0", 7)
	if err != nil {
		t.Fatal(err)
	}
	s := lca.NewSessionFromSource(src)
	if _, err := s.EstimateFraction("matching", 10, 0.05); err == nil {
		t.Fatal("edge estimation on an edgeless source did not error")
	}
}

// TestParallelLabelsSharedCacheDeterministic pins the shared concurrent
// probe cache wired into parallel label assembly: with workers sharing one
// CachingOracle, the labeling must still be bit-identical to serial
// assembly (cached answers are pure functions of graph and seed). Run
// under -race in CI, this doubles as the shared-cache race test at the
// session level.
func TestParallelLabelsSharedCacheDeterministic(t *testing.T) {
	g := lca.Gnp(600, 0.02, 13)
	serial, _, err := lca.NewSession(g, lca.WithSeed(99), lca.WithWorkers(1)).BuildLabels("coloring")
	if err != nil {
		t.Fatal(err)
	}
	parallel, _, err := lca.NewSession(g, lca.WithSeed(99), lca.WithWorkers(8)).BuildLabels("coloring")
	if err != nil {
		t.Fatal(err)
	}
	for v := range serial {
		if serial[v] != parallel[v] {
			t.Fatalf("label(%d): serial %d, parallel-with-shared-cache %d", v, serial[v], parallel[v])
		}
	}
}

// TestHugeSourceBoundedAllocs is the acceptance test of the subsystem: MIS
// vertex queries and spanner edge queries against a 10^8-vertex implicit
// source allocate O(1) per query and O(1) heap overall — never O(n)
// adjacency state.
func TestHugeSourceBoundedAllocs(t *testing.T) {
	const n = 100_000_000
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)

	src, err := lca.OpenSource("ring:n=100_000_000", 7)
	if err != nil {
		t.Fatal(err)
	}
	s := lca.NewSessionFromSource(src, lca.WithSeed(2019))

	// Warm up: constructs the cached mis and spanner3 instances.
	if _, err := s.Vertex("mis", n/2); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Edge("spanner3", n/3, n/3+1); err != nil {
		t.Fatal(err)
	}

	v := 1
	allocs := testing.AllocsPerRun(500, func() {
		if _, err := s.Vertex("mis", v); err != nil {
			t.Fatal(err)
		}
		v = (v + 199_999_991) % n // coprime stride: fresh vertices each run
	})
	// An MIS query walks a short random-order recursion; each step costs a
	// handful of allocations (memo growth, interface boxing). The bound
	// fails loudly if anything O(n) — or even O(log n) per probe — creeps
	// into the query path.
	if allocs > 300 {
		t.Errorf("mis Vertex: %.0f allocs/query on n=1e8 source, want O(1)", allocs)
	}

	u := 1
	allocs = testing.AllocsPerRun(500, func() {
		if _, err := s.Edge("spanner3", u, u+1); err != nil {
			t.Fatal(err)
		}
		u = (u + 199_999_991) % (n - 1)
	})
	if allocs > 300 {
		t.Errorf("spanner3 Edge: %.0f allocs/query on n=1e8 source, want O(1)", allocs)
	}

	runtime.GC()
	runtime.ReadMemStats(&after)
	// O(n) adjacency for n=1e8 would need >= 800 MB; the whole session
	// plus its memo tables must stay within a small constant footprint.
	const maxHeapGrowth = 64 << 20
	if growth := int64(after.HeapAlloc) - int64(before.HeapAlloc); growth > maxHeapGrowth {
		t.Errorf("heap grew %d bytes serving a 1e8-vertex source, want < %d", growth, maxHeapGrowth)
	}
}
