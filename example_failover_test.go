package lca_test

import (
	"fmt"
	"net/http/httptest"

	"lca"
	"lca/internal/source"
)

// A sharded session surviving replica failure: two HTTP shards serve
// replicas of one graph, one of them dies mid-session, and the session
// keeps answering — byte-identically to a healthy cluster — by routing
// the dead shard's keys to the survivor. The hedge=50ms item additionally
// races slow probes against the second-ranked replica. Failovers are
// observable per algorithm through ProbeStats (and per request through
// the HTTP server's failovers answer field).
func ExampleOpenSource_shardedFailover() {
	const backing = "circulant:n=4000,d=6,seed=11"
	shard := func() *httptest.Server {
		replica, err := lca.OpenSource(backing, 7)
		if err != nil {
			panic(err)
		}
		return httptest.NewServer(source.NewProbeHandler(replica))
	}
	shardA, shardB := shard(), shard()
	defer shardA.Close()
	defer shardB.Close()

	spec := "sharded:remote:" + shardA.URL + ";remote:" + shardB.URL + ";hedge=50ms"
	src, err := lca.OpenSource(spec, 7)
	if err != nil {
		panic(err)
	}
	s := lca.NewSessionFromSource(src, lca.WithSeed(42))
	defer s.Close()

	// The healthy-cluster control: the same graph and seed served locally.
	control, err := lca.OpenSource(backing, 7)
	if err != nil {
		panic(err)
	}
	local := lca.NewSessionFromSource(control, lca.WithSeed(42))

	shardB.Close() // one replica dies mid-session

	agree := true
	for i := 0; i < 40; i++ {
		v := (i * 131) % 4000
		got, err := s.Vertex("mis", v)
		if err != nil {
			fmt.Println("query failed:", err)
			return
		}
		want, _ := local.Vertex("mis", v)
		agree = agree && got == want
	}
	stats, _ := s.ProbeStats("mis")
	fmt.Println("answers match the healthy cluster:", agree)
	fmt.Println("failovers observed:", stats.Failovers > 0)
	// Output:
	// answers match the healthy cluster: true
	// failovers observed: true
}
