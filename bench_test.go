package lca_test

// Benchmark harness: one bench family per experiment of DESIGN.md's index.
// Each bench reports probes/query as a custom metric alongside ns/op, so
// `go test -bench=. -benchmem` regenerates the measured columns of
// EXPERIMENTS.md. The papers under reproduction are pure theory; these
// benches measure the implemented constructions on the synthetic workloads
// that substitute for the (nonexistent) original testbed.

import (
	"fmt"
	"math"
	"testing"

	"lca"
	"lca/internal/lowerbound"
	"lca/internal/oracle"
	"lca/internal/rnd"
	"lca/internal/spanner"
)

// queryProbes runs b.N edge queries round-robin over the sampled edges and
// reports mean probes per query.
func queryProbes(b *testing.B, g *lca.Graph, mk func() interface {
	QueryEdge(u, v int) bool
	ProbeStats() oracle.Stats
}) {
	edges := g.Edges()
	if len(edges) == 0 {
		b.Skip("graph has no edges")
	}
	prg := rnd.NewPRG(1)
	sample := make([]lca.Edge, 256)
	for i := range sample {
		sample[i] = edges[prg.Intn(len(edges))]
	}
	l := mk()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := sample[i%len(sample)]
		l.QueryEdge(e.U, e.V)
	}
	b.StopTimer()
	b.ReportMetric(float64(l.ProbeStats().Total())/float64(b.N), "probes/query")
}

// denseWorkload builds a graph with average degree ~8*sqrt(n), populating
// all degree classes of the 3/5-spanner analyses.
func denseWorkload(n int) *lca.Graph {
	p := 8 / math.Sqrt(float64(n))
	if p > 0.8 {
		p = 0.8
	}
	return lca.Gnp(n, p, lca.Seed(n))
}

// BenchmarkTable1_Spanner3 reproduces the Theorem 1.1 (r=2) row of Table 1:
// probes per edge query for the 3-spanner LCA across n.
func BenchmarkTable1_Spanner3(b *testing.B) {
	for _, n := range []int{512, 1024, 2048} {
		g := denseWorkload(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			queryProbes(b, g, func() interface {
				QueryEdge(u, v int) bool
				ProbeStats() oracle.Stats
			} {
				return lca.NewSpanner3(lca.NewOracle(g), 7)
			})
		})
	}
}

// BenchmarkTable1_Spanner5 reproduces the Theorem 1.1 (r=3) row.
func BenchmarkTable1_Spanner5(b *testing.B) {
	for _, n := range []int{512, 1024, 2048} {
		g := denseWorkload(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			queryProbes(b, g, func() interface {
				QueryEdge(u, v int) bool
				ProbeStats() oracle.Stats
			} {
				return lca.NewSpanner5(lca.NewOracle(g), 7)
			})
		})
	}
}

// BenchmarkTable1_Thm35 reproduces the Theorem 3.5 row: the generalized
// super construction on a graph meeting its min-degree precondition.
func BenchmarkTable1_Thm35(b *testing.B) {
	for _, r := range []int{2, 3} {
		g := lca.Complete(512)
		b.Run(fmt.Sprintf("r=%d", r), func(b *testing.B) {
			queryProbes(b, g, func() interface {
				QueryEdge(u, v int) bool
				ProbeStats() oracle.Stats
			} {
				return lca.NewSuperSpanner(lca.NewOracle(g), r, 7, lca.SpannerConfig{})
			})
		})
	}
}

// BenchmarkTable1_SpannerK reproduces the Theorem 1.2 row on bounded-degree
// graphs (also experiment E9: edges and stretch vs k are reported by
// cmd/lcabench).
func BenchmarkTable1_SpannerK(b *testing.B) {
	g := lca.Torus(32, 32) // n=1024, Delta=4
	for _, k := range []int{2, 3} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			cfg := lca.SpannerKConfig{L: 40, CenterProb: 0.03}
			queryProbes(b, g, func() interface {
				QueryEdge(u, v int) bool
				ProbeStats() oracle.Stats
			} {
				return lca.NewSpannerKConfig(lca.NewOracle(g), k, 7, cfg)
			})
		})
	}
}

// BenchmarkTable2_FiveSpannerCases reproduces Table 2: per-degree-class
// probe complexity of the 5-spanner LCA. Edges are bucketed by the class
// that takes care of them.
func BenchmarkTable2_FiveSpannerCases(b *testing.B) {
	n := 1024
	g := lca.DenseCore(n, 80, 12, 3)
	dMed := int(math.Ceil(math.Cbrt(float64(n))))
	dSuper := int(math.Ceil(math.Pow(float64(n), 5.0/6)))
	classOf := func(e lca.Edge) string {
		du, dv := g.Degree(e.U), g.Degree(e.V)
		lo, hi := du, dv
		if lo > hi {
			lo, hi = hi, lo
		}
		switch {
		case lo <= dMed:
			return "low"
		case hi >= dSuper:
			return "super"
		default:
			return "mid" // E_bckt or E_rep depending on desertedness
		}
	}
	buckets := map[string][]lca.Edge{}
	for _, e := range g.Edges() {
		c := classOf(e)
		buckets[c] = append(buckets[c], e)
	}
	for _, class := range []string{"low", "mid", "super"} {
		edges := buckets[class]
		if len(edges) == 0 {
			continue
		}
		b.Run(class, func(b *testing.B) {
			l := lca.NewSpanner5(lca.NewOracle(g), 7)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e := edges[i%len(edges)]
				l.QueryEdge(e.U, e.V)
			}
			b.StopTimer()
			b.ReportMetric(float64(l.ProbeStats().Total())/float64(b.N), "probes/query")
		})
	}
}

// BenchmarkTable3_KSpannerSides reproduces Table 3: probe complexity of the
// O(k^2)-spanner split by whether the query edge is handled by the sparse
// simulation or the dense Voronoi machinery.
func BenchmarkTable3_KSpannerSides(b *testing.B) {
	g := lca.Gnp(600, 0.015, 5)
	cfg := lca.SpannerKConfig{L: 30, CenterProb: 0.05}
	// Bucket edges by which side of the construction handles them, using a
	// memoized classifier instance.
	classifier := spanner.NewSpannerKConfig(lca.NewOracle(g), 2, 7, spanner.KConfig{
		Config:     spanner.Config{Memo: true},
		L:          30,
		CenterProb: 0.05,
	})
	var sparseEdges, denseEdges []lca.Edge
	for _, e := range g.Edges() {
		if classifier.EdgeIsSparse(e.U, e.V) {
			sparseEdges = append(sparseEdges, e)
		} else {
			denseEdges = append(denseEdges, e)
		}
	}
	run := func(name string, edges []lca.Edge) {
		if len(edges) == 0 {
			return
		}
		b.Run(name, func(b *testing.B) {
			l := lca.NewSpannerKConfig(lca.NewOracle(g), 2, 7, cfg)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e := edges[i%len(edges)]
				l.QueryEdge(e.U, e.V)
			}
			b.StopTimer()
			b.ReportMetric(float64(l.ProbeStats().Total())/float64(b.N), "probes/query")
		})
	}
	run("sparse", sparseEdges)
	run("dense", denseEdges)
}

// BenchmarkFig_ProbeScaling feeds E5: probes per query across a geometric n
// grid; cmd/lcabench fits the log-log slope (target ~0.75 for r=2).
func BenchmarkFig_ProbeScaling(b *testing.B) {
	for _, n := range []int{256, 512, 1024, 2048, 4096} {
		g := denseWorkload(n)
		b.Run(fmt.Sprintf("r=2/n=%d", n), func(b *testing.B) {
			queryProbes(b, g, func() interface {
				QueryEdge(u, v int) bool
				ProbeStats() oracle.Stats
			} {
				return lca.NewSpanner3(lca.NewOracle(g), 7)
			})
		})
	}
}

// BenchmarkFig_LowerBound feeds E4: the BFS-meet distinguisher cost on D+
// instances (Theorem 1.3's apparatus).
func BenchmarkFig_LowerBound(b *testing.B) {
	for _, n := range []int{256, 1024} {
		inst, err := lowerbound.SampleDPlus(n, 4, 0, 0, n/2, 0, 17)
		if err != nil {
			b.Fatal(err)
		}
		budget := 4 * int(math.Sqrt(float64(n)))
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				lowerbound.BFSMeet(lowerbound.NewTableOracle(inst), budget)
			}
		})
	}
}

// BenchmarkFig_SparseRegime feeds E8: probes per MIS query vs degree — the
// classical LCAs' cost grows with Delta while the spanner LCAs stay
// sublinear in n.
func BenchmarkFig_SparseRegime(b *testing.B) {
	for _, d := range []int{4, 8, 16} {
		g, err := lca.RandomRegular(2048, d, lca.Seed(d))
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("mis/d=%d", d), func(b *testing.B) {
			var probes uint64
			for i := 0; i < b.N; i++ {
				l := lca.NewMIS(lca.NewOracle(g), lca.Seed(i))
				l.QueryVertex(i % g.N())
				probes += l.ProbeStats().Total()
			}
			b.ReportMetric(float64(probes)/float64(b.N), "probes/query")
		})
	}
}

// BenchmarkBaseline_Global feeds E7: full global constructions for
// comparison with per-query LCA costs.
func BenchmarkBaseline_Global(b *testing.B) {
	g := denseWorkload(1024)
	b.Run("baswana-sen/k=2", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			lca.BaswanaSen(g, 2, lca.Seed(i))
		}
	})
	b.Run("greedy/k=2", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			lca.GreedySpanner(g, 2)
		}
	})
}

// BenchmarkAblation_Seed feeds E6: probe cost under minimal (pairwise)
// versus Theta(log n)-wise independence; quality comparison is in
// cmd/lcabench.
func BenchmarkAblation_Seed(b *testing.B) {
	g := denseWorkload(1024)
	for _, ind := range []int{2, 0} { // 0 = default Theta(log n)
		name := "logn"
		if ind == 2 {
			name = "pairwise"
		}
		b.Run(name, func(b *testing.B) {
			queryProbes(b, g, func() interface {
				QueryEdge(u, v int) bool
				ProbeStats() oracle.Stats
			} {
				return lca.NewSpanner3Config(lca.NewOracle(g), 7, lca.SpannerConfig{Independence: ind})
			})
		})
	}
}

// BenchmarkFig_ApproxMatching feeds E10: per-query cost of the
// (1-eps)-approximate matching LCA across augmentation rounds.
func BenchmarkFig_ApproxMatching(b *testing.B) {
	g := lca.Grid(8, 50)
	edges := g.Edges()
	for _, rounds := range []int{0, 1, 2} {
		b.Run(fmt.Sprintf("rounds=%d", rounds), func(b *testing.B) {
			// Fresh instance per query: the memo caches would otherwise
			// hide the per-query cost after the first pass over the edges.
			var probes uint64
			for i := 0; i < b.N; i++ {
				l := lca.NewApproxMatching(lca.NewOracle(g), rounds, 7)
				e := edges[i%len(edges)]
				l.QueryEdge(e.U, e.V)
				probes += l.ProbeStats().Total()
			}
			b.ReportMetric(float64(probes)/float64(b.N), "probes/query")
		})
	}
}

// BenchmarkFig_Estimators feeds E11: cost of a sampled MIS-fraction
// estimate at fixed accuracy, independent of n.
func BenchmarkFig_Estimators(b *testing.B) {
	for _, side := range []int{20, 40} {
		g := lca.Torus(side, side)
		b.Run(fmt.Sprintf("n=%d", side*side), func(b *testing.B) {
			samples := lca.EstimateSamplesFor(0.1, 0.05)
			for i := 0; i < b.N; i++ {
				l := lca.NewMIS(lca.NewOracle(g), lca.Seed(i))
				lca.EstimateVertexFraction(g.N(), l, samples, 0.05, lca.Seed(i))
			}
		})
	}
}

// BenchmarkParallelAssembly measures the parallel harness speedup.
func BenchmarkParallelAssembly(b *testing.B) {
	g := lca.Gnp(300, 0.3, 5)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				lca.BuildSubgraphParallel(g, func() lca.EdgeLCA {
					return lca.NewSpanner3(lca.NewOracle(g), 7)
				}, workers)
			}
		})
	}
}

// BenchmarkSubstrate_Oracle measures the raw probe layer.
func BenchmarkSubstrate_Oracle(b *testing.B) {
	g := denseWorkload(1024)
	o := lca.NewOracle(g)
	b.Run("neighbor", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			o.Neighbor(i%g.N(), i%4)
		}
	})
	b.Run("adjacency", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			o.Adjacency(i%g.N(), (i*7)%g.N())
		}
	})
}
