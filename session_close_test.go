package lca_test

// Close-propagation audit: session teardown must release whatever the
// probe source holds — CSR file handles, remote shard connections, every
// shard of a sharded source — and double teardown must be harmless.

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"lca"
	"lca/internal/gen"
	"lca/internal/graph"
	"lca/internal/source"
)

func writeTestCSR(t *testing.T) string {
	t.Helper()
	g := gen.Gnp(80, 0.08, 5)
	path := filepath.Join(t.TempDir(), "g.csr")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.WriteCSR(f, g); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// openFDs counts this process's open file descriptors (linux).
func openFDs(t *testing.T) int {
	t.Helper()
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		t.Skipf("cannot count fds: %v", err)
	}
	return len(ents)
}

// TestSessionCloseReleasesCSRHandle is the leak check: opening and
// closing many CSR-backed sessions must not accumulate file descriptors.
func TestSessionCloseReleasesCSRHandle(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("fd accounting reads /proc")
	}
	path := writeTestCSR(t)
	before := openFDs(t)
	for i := 0; i < 50; i++ {
		src, err := lca.OpenSource("csr:"+path, 7)
		if err != nil {
			t.Fatal(err)
		}
		s := lca.NewSessionFromSource(src, lca.WithSeed(3))
		if _, err := s.Vertex("mis", 5); err != nil {
			t.Fatal(err)
		}
		if err := s.Close(); err != nil {
			t.Fatalf("iteration %d: Close: %v", i, err)
		}
	}
	after := openFDs(t)
	// Allow a little slack for runtime pollers etc.; 50 leaked handles
	// would show unmistakably.
	if after > before+5 {
		t.Fatalf("fd count grew from %d to %d across 50 open/close cycles: file handles leak", before, after)
	}
}

// TestSessionCloseIdempotent: double Close is fine on every source shape,
// and sources without resources make Close a no-op.
func TestSessionCloseIdempotent(t *testing.T) {
	path := writeTestCSR(t)
	for _, spec := range []string{"ring:n=100", "csr:" + path} {
		src, err := lca.OpenSource(spec, 7)
		if err != nil {
			t.Fatal(err)
		}
		s := lca.NewSessionFromSource(src)
		if err := s.Close(); err != nil {
			t.Fatalf("%s: Close: %v", spec, err)
		}
		if err := s.Close(); err != nil {
			t.Fatalf("%s: second Close: %v", spec, err)
		}
	}
	// In-memory graphs have nothing to release.
	s := lca.NewSession(lca.Gnp(50, 0.1, 1))
	if err := s.Close(); err != nil {
		t.Fatalf("graph-backed Close: %v", err)
	}
}

// TestSessionCloseReachesEveryShard: closing a session over a sharded
// source propagates to each shard (the CSR shard's handle is released —
// probes degrade to the closed-file answers — and double close stays
// nil).
func TestSessionCloseReachesEveryShard(t *testing.T) {
	path := writeTestCSR(t)
	a, err := lca.OpenSource("csr:"+path, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := lca.OpenSource("csr:"+path, 7)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := source.NewSharded([]source.Source{a, b})
	if err != nil {
		t.Fatal(err)
	}
	s := lca.NewSessionFromSource(sharded)
	if _, err := s.Vertex("mis", 3); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Both CSR shards must now be closed: direct Close again reports the
	// stored (nil) result, and a fresh close of the underlying sources is
	// also nil — the idempotence contract.
	for i, sh := range []lca.Source{a, b} {
		if err := sh.(source.Closer).Close(); err != nil {
			t.Fatalf("shard %d: close after session teardown: %v", i, err)
		}
	}
}

// TestSessionRemoteProbeFailureIsError: a dead shard surfaces as an error
// from the query, not a panic through user code.
func TestSessionRemoteProbeFailureIsError(t *testing.T) {
	shard := httptest.NewServer(source.NewProbeHandler(source.Ring(100)))
	remote, err := source.OpenRemote(shard.URL, source.WithRetries(0))
	if err != nil {
		t.Fatal(err)
	}
	s := lca.NewSessionFromSource(remote, lca.WithSeed(1))
	if _, err := s.Vertex("mis", 10); err != nil {
		t.Fatalf("query against a live shard: %v", err)
	}
	shard.Close()
	_, err = s.Vertex("mis", 77)
	if err == nil {
		t.Fatal("query against a dead shard returned no error")
	}
	if !strings.Contains(err.Error(), "shard") {
		t.Fatalf("error %q does not name the failing shard", err)
	}
	// The estimator path must honor the same contract.
	if _, err := s.EstimateFraction("mis", 50, 0.05); err == nil {
		t.Fatal("EstimateFraction against a dead shard returned no error")
	}
	// Edge queries probe the source in their non-edge precheck before the
	// algorithm ever runs; that path must also surface as an error.
	if _, err := s.Edge("matching", 3, 4); err == nil {
		t.Fatal("Edge against a dead shard returned no error")
	}
}
