package lca

// Session is the unified front door to every registered algorithm: one
// object owning the probe source, the seed, the oracle plumbing, probe
// budgets and parallel assembly, dispatching point and batch queries by
// algorithm name through the internal registry. It replaces the flat
// per-algorithm constructors as the primary API.

import (
	"errors"
	"fmt"
	"sync"

	"lca/internal/core"
	"lca/internal/estimate"
	"lca/internal/graph"
	"lca/internal/oracle"
	"lca/internal/registry"
	"lca/internal/source"
	"lca/internal/trace"
)

// ErrProbeBudget is returned (wrapped) by Session queries that exhaust the
// session's per-query probe budget.
var ErrProbeBudget = errors.New("lca: probe budget exceeded")

// ErrNotMaterialized is returned (wrapped) by batch Build methods on
// sessions whose source is not an in-memory graph: materializing a full
// solution enumerates every element, which is exactly the O(n) work
// implicit and disk-backed sources exist to avoid. Point queries and
// EstimateFraction remain available on any source.
var ErrNotMaterialized = errors.New("lca: batch assembly requires an in-memory graph source")

// AlgoInfo describes one registered algorithm, as discoverable through
// Session.Algos.
type AlgoInfo struct {
	// Name is the registry key accepted by every Session method.
	Name string
	// Kind is "edge", "vertex" or "label" and selects which query methods
	// the algorithm answers.
	Kind string
	// Summary is a one-line description.
	Summary string
	// Params lists the names of the tunable parameters the algorithm
	// accepts via WithParam.
	Params []string
}

// Session answers LCA queries for one graph under one seed. Construct with
// NewSession (in-memory graph) or NewSessionFromSource (any probe backend:
// implicit generators, disk-backed CSR, spec strings via OpenSource); the
// zero value is unusable. Point queries are safe for concurrent use (a
// mutex serializes them — algorithm instances memoize and are not
// concurrency-safe); batch Build methods construct independent instances
// per worker and run embarrassingly parallel.
type Session struct {
	src    Source
	g      *Graph // non-nil iff the source is an in-memory graph
	seed   Seed
	budget uint64
	// workers is the worker count for batch builds; 0 selects GOMAXPROCS,
	// 1 forces serial assembly.
	workers int
	// prefetch roots every oracle chain at a prefetching exploration
	// oracle (WithPrefetch).
	prefetch bool
	// rowCache, when non-nil, is the shared L2 of the tiered row-cache
	// hierarchy every oracle chain stacks over the source (WithRowCache).
	rowCache *oracle.RowCache
	// tracer, when non-nil, records a probe-level span tree for every
	// point query (WithTracer).
	tracer *Tracer
	params map[string]any

	mu        sync.Mutex
	instances map[string]*boundInstance

	closeOnce sync.Once
	closeErr  error
}

// boundInstance is one constructed algorithm bound to the session's oracle
// chain: base oracle, then the optional probe limiter the budget resets
// around every point query.
type boundInstance struct {
	inst  any
	limit *oracle.LimitOracle
}

// SessionOption configures a Session at construction.
type SessionOption func(*Session)

// WithSeed sets the master random seed (default 0). Two sessions over the
// same graph and seed answer identically — including across processes and
// replicas.
func WithSeed(seed Seed) SessionOption {
	return func(s *Session) { s.seed = seed }
}

// WithProbeBudget enforces a hard per-query probe budget: any point query
// that would exceed b oracle probes fails with an error wrapping
// ErrProbeBudget instead of probing further. Batch builds also enforce the
// budget (per query, serially). 0 disables enforcement.
func WithProbeBudget(b uint64) SessionOption {
	return func(s *Session) { s.budget = b }
}

// WithWorkers sets the worker count for batch Build methods. 0 (the
// default) selects GOMAXPROCS; 1 forces serial assembly. Parallel assembly
// gives every worker its own algorithm instance and is bit-identical to
// serial assembly.
func WithWorkers(w int) SessionOption {
	return func(s *Session) { s.workers = w }
}

// WithPrefetch routes the session's probes through a prefetching
// exploration oracle (oracle.NewPrefetch): algorithms' neighborhood
// explorations become single batched round trips on sources with the
// batch capability (remote and sharded backends), and subsequent scalar
// probes are served from the primed rows. Answers, probe counts and probe
// budgets are identical with or without it — only the transport changes —
// so it is safe to enable on any source; on purely local backends it buys
// nothing but costs only the row cache. Per-query round trips are
// reported via ProbeStats().RoundTrips.
func WithPrefetch(on bool) SessionOption {
	return func(s *Session) { s.prefetch = on }
}

// WithRowCache routes the session's probes through the tiered row-cache
// hierarchy of the hot local path: every oracle chain gets its own L1
// row store (an arena-backed vertex->row table, allocation-free in
// steady state) and shares one bounded L2 row cache of at most entries
// rows, evicted LRU. Answers, probe counts and probe budgets are
// identical with or without it — rows are pure functions of the fixed
// graph, so only where cells come from changes. It pays off on local
// backends (mmap CSR, implicit families) where a whole row costs barely
// more than a cell; on network sources prefer WithPrefetch, which
// batches round trips (the two compose: prefetch stacks above the
// tier). entries <= 0 leaves the hierarchy off.
func WithRowCache(entries int) SessionOption {
	return func(s *Session) {
		if entries > 0 {
			s.rowCache = oracle.NewRowCache(entries, oracle.EvictLRU)
		}
	}
}

// WithTracer records probe-level span trees into tr: every point query
// opens a query:edge/query:vertex/query:label root span, the oracle
// layers add exploration, cache-hit and budget spans, and network
// sources add per-round-trip rpc spans — with remote shards' serverside
// spans stitched in over the X-LCA-Trace wire header. Spans from
// successive queries accumulate in tr (one tree per query, side by
// side) up to its span cap; use a fresh session and tracer per traced
// run to keep trees separate. Point queries are mutex-serialized, so
// one tracer serves them all. A nil tracer leaves tracing off — the
// default, which costs the probing hot path nothing.
func WithTracer(tr *Tracer) SessionOption {
	return func(s *Session) { s.tracer = tr }
}

// WithParam supplies a tunable parameter (for example WithParam("k", 4) or
// WithParam("memo", true)). The value applies to every algorithm that
// declares the parameter and is ignored by algorithms that do not, so one
// session can carry parameters for several algorithms. Values must be int,
// float64 or bool per the parameter's declared type; mismatches surface as
// errors from the query that first builds the algorithm.
func WithParam(name string, value any) SessionOption {
	return func(s *Session) { s.params[name] = value }
}

// NewSession returns a session answering queries about g.
func NewSession(g *Graph, opts ...SessionOption) *Session {
	return NewSessionFromSource(g, opts...)
}

// NewSessionFromSource returns a session answering queries through any
// probe source — an implicit generator, a cold disk-backed CSR file, or an
// in-memory graph (NewSession is this function specialized to graphs).
// Point queries and EstimateFraction work on every source without ever
// holding O(n) state; the batch Build methods additionally require an
// in-memory graph (they enumerate all elements) and return
// ErrNotMaterialized otherwise.
func NewSessionFromSource(src Source, opts ...SessionOption) *Session {
	s := &Session{
		src:       src,
		params:    map[string]any{},
		instances: map[string]*boundInstance{},
	}
	if g, ok := src.(*graph.Graph); ok {
		s.g = g
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// OpenSource opens a probe source from a spec string — the grammar every
// CLI and the HTTP server share: "ring:n=1000000000", "csr:web.csr",
// "blockrandom:n=1e9,d=8", or a bare edge-list file path. seed feeds the
// randomized families (a seed=... key in the spec overrides it).
func OpenSource(spec string, seed Seed) (Source, error) {
	return source.Parse(spec, seed)
}

// SourceFamilies lists the spec families OpenSource understands, with
// usage strings.
func SourceFamilies() []string {
	fs := source.Families()
	out := make([]string, len(fs))
	for i, f := range fs {
		out[i] = f.Usage
	}
	return out
}

// Close releases the session's probe source when it holds external
// resources — the CSR backend's file handle, a remote source's shard
// connections, every such shard of a sharded source. Sources without
// resources (in-memory graphs, implicit generators) make Close a no-op.
// Idempotent: repeated calls return the first result. The session must
// not be queried after Close.
func (s *Session) Close() error {
	s.closeOnce.Do(func() {
		if c, ok := s.src.(source.Closer); ok {
			s.closeErr = c.Close()
		}
	})
	return s.closeErr
}

// Graph returns the session's in-memory graph, or nil when the session
// runs over a non-materialized source.
func (s *Session) Graph() *Graph { return s.g }

// Source returns the session's probe source.
func (s *Session) Source() Source { return s.src }

// Seed returns the session's master seed.
func (s *Session) Seed() Seed { return s.seed }

// Algos lists every registered algorithm.
func (s *Session) Algos() []AlgoInfo {
	ds := registry.All()
	out := make([]AlgoInfo, 0, len(ds))
	for _, d := range ds {
		info := AlgoInfo{Name: d.Name, Kind: string(d.Kind), Summary: d.Summary}
		for _, p := range d.Params {
			info.Params = append(info.Params, p.Name)
		}
		out = append(out, info)
	}
	return out
}

// declaredParams filters the session's parameters down to those the
// descriptor declares, so session-wide parameters may span algorithms.
func (s *Session) declaredParams(d *registry.Descriptor) registry.Params {
	p := registry.Params{}
	for name, v := range s.params {
		if d.HasParam(name) {
			p[name] = v
		}
	}
	return p
}

// descriptor resolves algo against the registry and checks its kind.
func (s *Session) descriptor(algo string, kind registry.Kind) (*registry.Descriptor, error) {
	d, err := registry.Get(algo)
	if err != nil {
		return nil, err
	}
	if d.Kind != kind {
		return nil, fmt.Errorf("lca: algorithm %q answers %s queries, not %s", d.Name, d.Kind, kind)
	}
	return d, nil
}

// rootOracle returns the base of a fresh oracle chain over the session
// source: the plain source view, or a prefetching exploration oracle when
// WithPrefetch is on. A traced session (WithTracer) roots the chain at a
// traced view of the source, so network backends record their rpc spans
// into the session's tracer. WithRowCache inserts the tiered row-cache
// oracle directly over the source (each chain owns its L1; the session's
// L2 is shared), and prefetch, when also on, stacks above the tier.
func (s *Session) rootOracle() Oracle {
	src := s.src
	if s.tracer != nil {
		src = source.TracedView(src, s.tracer)
	}
	if s.rowCache != nil {
		tiered := oracle.NewTiered(src, s.rowCache)
		if !s.prefetch {
			return tiered
		}
		src = tiered
	}
	if s.prefetch {
		po := oracle.NewPrefetch(src)
		po.SetTracer(s.tracer)
		return po
	}
	return oracle.New(src)
}

// buildInstance constructs a fresh instance over a new oracle chain rooted
// at base (nil selects the session's root oracle), optionally behind a
// probe limiter. The limiter sits above the prefetching tier, so budgets
// charge per cell while batching only changes the transport underneath.
func (s *Session) buildInstance(d *registry.Descriptor, p registry.Params, base Oracle) (any, *oracle.LimitOracle, error) {
	o := base
	if o == nil {
		o = s.rootOracle()
	}
	var limit *oracle.LimitOracle
	if s.budget > 0 {
		limit = oracle.NewLimit(o, s.budget)
		limit.SetTracer(s.tracer)
		o = limit
	}
	inst, err := d.Build(o, s.seed, p)
	if err != nil {
		return nil, nil, err
	}
	return inst, limit, nil
}

// instance returns the session's cached point-query instance for algo,
// constructing it on first use. The cache is keyed by the canonical
// registry name, so an alias and its canonical name share one instance
// (and one probe account). Callers must hold s.mu.
func (s *Session) instance(algo string, kind registry.Kind) (*boundInstance, error) {
	d, err := s.descriptor(algo, kind)
	if err != nil {
		return nil, err
	}
	if bi, ok := s.instances[d.Name]; ok {
		return bi, nil
	}
	inst, limit, err := s.buildInstance(d, s.declaredParams(d), nil)
	if err != nil {
		return nil, err
	}
	bi := &boundInstance{inst: inst, limit: limit}
	s.instances[d.Name] = bi
	return bi, nil
}

// guarded runs one query against a bound instance, resetting the probe
// budget window first and converting budget exhaustion — and remote-shard
// probe failure — into errors.
func (bi *boundInstance) guarded(fn func()) (err error) {
	if bi.limit != nil {
		bi.limit.Reset()
	}
	defer func() {
		if r := recover(); r != nil {
			err = queryPanicErr(r)
		}
	}()
	fn()
	return nil
}

// beginQuerySpan opens a point query's root span and pushes it as the
// implicit parent, so every span the layers below record nests under it.
// No-op (zero Handle) on untraced sessions.
func (s *Session) beginQuerySpan(op string, v int) trace.Handle {
	if s.tracer == nil {
		return trace.Handle{}
	}
	h := s.tracer.Start(op, v)
	s.tracer.Push(h)
	return h
}

// endQuerySpan closes a point query's root span, tagging failures.
func (s *Session) endQuerySpan(h trace.Handle, err error) {
	if s.tracer == nil {
		return
	}
	s.tracer.Pop()
	if err != nil {
		s.tracer.End(h, "error")
		return
	}
	s.tracer.End(h)
}

// queryPanicErr converts the two expected query panics — the probe
// limiter's budget signal and a network source's probe failure — into
// errors, repanicking on anything else.
func queryPanicErr(r any) error {
	if be, ok := r.(oracle.ErrBudgetExceeded); ok {
		return fmt.Errorf("%w (budget %d)", ErrProbeBudget, be.Budget)
	}
	if pe, ok := r.(*source.ProbeError); ok {
		return fmt.Errorf("lca: %w", pe)
	}
	panic(r)
}

// Edge answers an edge-membership point query: whether input edge (u,v)
// belongs to algo's fixed global solution. (u,v) must be an edge of the
// graph — the LCA contract only defines answers for input edges.
func (s *Session) Edge(algo string, u, v int) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	bi, err := s.instance(algo, registry.KindEdge)
	if err != nil {
		return false, err
	}
	if err := s.checkVertex(u); err != nil {
		return false, err
	}
	if err := s.checkVertex(v); err != nil {
		return false, err
	}
	// The non-edge precheck probes the source, so it needs the same
	// panic-to-error conversion as the query itself.
	var isEdge bool
	if err := runRecovered(func() { isEdge = s.src.Adjacency(u, v) >= 0 }); err != nil {
		return false, err
	}
	if !isEdge {
		return false, fmt.Errorf("lca: (%d,%d) is not an edge of the graph", u, v)
	}
	var in bool
	h := s.beginQuerySpan("query:edge", u)
	err = bi.guarded(func() { in = bi.inst.(core.EdgeLCA).QueryEdge(u, v) })
	s.endQuerySpan(h, err)
	return in, err
}

// Vertex answers a vertex-membership point query.
func (s *Session) Vertex(algo string, v int) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	bi, err := s.instance(algo, registry.KindVertex)
	if err != nil {
		return false, err
	}
	if err := s.checkVertex(v); err != nil {
		return false, err
	}
	var in bool
	h := s.beginQuerySpan("query:vertex", v)
	err = bi.guarded(func() { in = bi.inst.(core.VertexLCA).QueryVertex(v) })
	s.endQuerySpan(h, err)
	return in, err
}

// Label answers a vertex-labeling point query.
func (s *Session) Label(algo string, v int) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	bi, err := s.instance(algo, registry.KindLabel)
	if err != nil {
		return 0, err
	}
	if err := s.checkVertex(v); err != nil {
		return 0, err
	}
	var label int
	h := s.beginQuerySpan("query:label", v)
	err = bi.guarded(func() { label = bi.inst.(core.LabelLCA).QueryLabel(v) })
	s.endQuerySpan(h, err)
	return label, err
}

func (s *Session) checkVertex(v int) error {
	if v < 0 || v >= s.src.N() {
		return fmt.Errorf("lca: vertex %d out of range [0,%d)", v, s.src.N())
	}
	return nil
}

// ProbeStats returns the cumulative probe counts of algo's point-query
// instance (zero if the session has not queried algo yet). Unknown
// algorithm names are errors, so a typo cannot read as a free algorithm.
func (s *Session) ProbeStats(algo string) (ProbeStats, error) {
	d, err := registry.Get(algo)
	if err != nil {
		return ProbeStats{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	bi, ok := s.instances[d.Name]
	if !ok {
		return ProbeStats{}, nil
	}
	if rep, ok := bi.inst.(core.ProbeReporter); ok {
		return rep.ProbeStats(), nil
	}
	return ProbeStats{}, nil
}

// batchSetup resolves a batch build: descriptor, parameters (memoized by
// default — batch assembly is exactly the many-queries-one-instance case
// memoization amortizes; override with WithParam("memo", false)), and a
// validated first instance — built over base when non-nil — that doubles
// as the first worker's. Batch assembly enumerates every element of the
// graph, so it refuses non-materialized sources.
func (s *Session) batchSetup(algo string, kind registry.Kind, base Oracle) (*registry.Descriptor, registry.Params, any, *oracle.LimitOracle, error) {
	d, err := s.descriptor(algo, kind)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	if s.g == nil {
		return nil, nil, nil, nil, fmt.Errorf("%w (point queries and EstimateFraction work on any source)", ErrNotMaterialized)
	}
	p := d.WithMemoDefault(s.declaredParams(d))
	inst, limit, err := s.buildInstance(d, p, base)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	return d, p, inst, limit, nil
}

// BuildSubgraph materializes algo's full edge solution by querying every
// edge of the graph, in parallel over the session's worker count (budget
// enforcement forces serial assembly so exhaustion can abort cleanly).
func (s *Session) BuildSubgraph(algo string) (*Graph, QueryStats, error) {
	d, p, inst, limit, err := s.batchSetup(algo, registry.KindEdge, nil)
	if err != nil {
		return nil, QueryStats{}, err
	}
	if s.budget > 0 {
		var h *Graph
		var qs QueryStats
		err := runRecovered(func() {
			h, qs = core.BuildSubgraph(s.g, budgetEdge{inst.(core.EdgeLCA), limit})
		})
		return h, qs, err
	}
	first := handoff(inst)
	h, qs := core.BuildSubgraphParallel(s.g, func() core.EdgeLCA {
		return s.workerInstance(d, p, first, nil).(core.EdgeLCA)
	}, s.workers)
	return h, qs, nil
}

// BuildVertexSet materializes algo's full vertex solution.
func (s *Session) BuildVertexSet(algo string) ([]bool, QueryStats, error) {
	d, p, inst, limit, err := s.batchSetup(algo, registry.KindVertex, nil)
	if err != nil {
		return nil, QueryStats{}, err
	}
	if s.budget > 0 {
		var in []bool
		var qs QueryStats
		err := runRecovered(func() {
			in, qs = core.BuildVertexSet(s.g, budgetVertex{inst.(core.VertexLCA), limit})
		})
		return in, qs, err
	}
	first := handoff(inst)
	in, qs := core.BuildVertexSetParallel(s.g, func() core.VertexLCA {
		return s.workerInstance(d, p, first, nil).(core.VertexLCA)
	}, s.workers)
	return in, qs, nil
}

// BuildLabels materializes algo's full labeling.
func (s *Session) BuildLabels(algo string) ([]int, QueryStats, error) {
	// Every label worker — the validated first instance included — builds
	// over one shared concurrency-safe caching oracle: label queries
	// recurse through overlapping lower-priority neighborhoods, so a probe
	// one worker pays for answers every worker's repeats. Answers are
	// unchanged (cached cells are pure functions of graph and seed). The
	// chain roots at the session's root oracle, so WithPrefetch composes.
	shared := oracle.NewCaching(s.rootOracle())
	d, p, inst, limit, err := s.batchSetup(algo, registry.KindLabel, shared)
	if err != nil {
		return nil, QueryStats{}, err
	}
	if s.budget > 0 {
		var labels []int
		var qs QueryStats
		err := runRecovered(func() {
			labels, qs = core.BuildLabels(s.g, budgetLabel{inst.(core.LabelLCA), limit})
		})
		return labels, qs, err
	}
	first := handoff(inst)
	labels, qs := core.BuildLabelsParallel(s.g, func() core.LabelLCA {
		return s.workerInstance(d, p, first, shared).(core.LabelLCA)
	}, s.workers)
	return labels, qs, nil
}

// handoff returns a take-once accessor for the validated first instance;
// worker factories run concurrently, so consumption is mutex-guarded.
func handoff(inst any) func() any {
	var mu sync.Mutex
	return func() any {
		mu.Lock()
		defer mu.Unlock()
		i := inst
		inst = nil
		return i
	}
}

// workerInstance hands the prebuilt instance to the first caller and
// builds fresh ones for the rest, over base when non-nil (the shared
// caching oracle of parallel label assembly).
func (s *Session) workerInstance(d *registry.Descriptor, p registry.Params, first func() any, base Oracle) any {
	if inst := first(); inst != nil {
		return inst
	}
	inst, _, err := s.buildInstance(d, p, base)
	if err != nil {
		panic(err) // unreachable: the first build validated the inputs
	}
	return inst
}

// runRecovered runs a probing code path — a serial batch assembly, an
// estimator, a single source probe — converting budget exhaustion and
// remote probe failure into errors.
func runRecovered(run func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = queryPanicErr(r)
		}
	}()
	run()
	return nil
}

// budgetEdge resets the probe budget window before every query so the
// budget is per query, not per batch.
type budgetEdge struct {
	inner core.EdgeLCA
	limit *oracle.LimitOracle
}

func (b budgetEdge) QueryEdge(u, v int) bool {
	b.limit.Reset()
	return b.inner.QueryEdge(u, v)
}

// ProbeStats forwards probe accounting when the wrapped LCA exposes it.
func (b budgetEdge) ProbeStats() ProbeStats {
	if rep, ok := b.inner.(core.ProbeReporter); ok {
		return rep.ProbeStats()
	}
	return ProbeStats{}
}

type budgetVertex struct {
	inner core.VertexLCA
	limit *oracle.LimitOracle
}

func (b budgetVertex) QueryVertex(v int) bool {
	b.limit.Reset()
	return b.inner.QueryVertex(v)
}

// ProbeStats forwards probe accounting when the wrapped LCA exposes it.
func (b budgetVertex) ProbeStats() ProbeStats {
	if rep, ok := b.inner.(core.ProbeReporter); ok {
		return rep.ProbeStats()
	}
	return ProbeStats{}
}

type budgetLabel struct {
	inner core.LabelLCA
	limit *oracle.LimitOracle
}

func (b budgetLabel) QueryLabel(v int) int {
	b.limit.Reset()
	return b.inner.QueryLabel(v)
}

// ProbeStats forwards probe accounting when the wrapped LCA exposes it.
func (b budgetLabel) ProbeStats() ProbeStats {
	if rep, ok := b.inner.(core.ProbeReporter); ok {
		return rep.ProbeStats()
	}
	return ProbeStats{}
}

// EstimateFraction estimates the fraction of elements (edges for edge-kind
// algorithms, vertices for vertex-kind) that belong to algo's solution
// from the given number of sampled point queries, with a Hoeffding
// confidence radius at level 1-delta. It runs on a fresh unbudgeted
// instance, memoized when the algorithm supports it (the estimator issues
// many queries; pass WithParam("memo", false) to override); sampling seeds
// derive from the session seed and the algorithm name, so repeated calls
// are deterministic.
func (s *Session) EstimateFraction(algo string, samples int, delta float64) (EstimateResult, error) {
	d, err := registry.Get(algo)
	if err != nil {
		return EstimateResult{}, err
	}
	var res EstimateResult
	var ferr error
	// The estimator probes the source directly, so a network source's
	// probe failure surfaces here exactly as in point queries: as an
	// error, never a panic through user code.
	if perr := runRecovered(func() {
		res, ferr = estimate.Fraction(d, s.src, s.seed, s.declaredParams(d), samples, delta, s.prefetch)
	}); perr != nil {
		return EstimateResult{}, perr
	}
	return res, ferr
}
