// Package lca is a library of Local Computation Algorithms (LCAs, also
// known as the centralized-local model): algorithms that answer queries
// about a single, globally consistent solution — a spanner, a maximal
// independent set, a matching, a coloring — while probing only a sublinear
// portion of the input graph and storing nothing but a short random seed.
//
// # The model
//
// The input graph is reachable only through an adjacency-list oracle
// (Oracle) answering Neighbor, Degree and Adjacency probes. An LCA is
// instantiated from an oracle and a Seed; all of its random decisions are
// derived from bounded-independence hash families over vertex IDs, so any
// two queries — or two independently built instances with the same seed —
// agree on one fixed global solution. Probe counts are the complexity
// measure and can be read back from every algorithm via ProbeStats.
//
// # What is implemented
//
// Spanners (Parter, Rubinfeld, Vakilian, Yodpinyanee 2019):
//
//   - NewSpanner3: 3-spanners with ~O(n^{3/2}) edges and ~O(n^{3/4})
//     probes per edge query, sublinear even on graphs of maximum degree
//     Theta(n).
//   - NewSpanner5: 5-spanners with ~O(n^{4/3}) edges and ~O(n^{5/6})
//     probes.
//   - NewSpannerK: O(k^2)-stretch spanners with ~O(n^{1+1/k}) edges for
//     bounded-degree graphs, and NewSparseSpanning for the
//     sparse-spanning-graph regime.
//
// Classical sparse-regime LCAs (Rubinfeld-Tamir-Vardi-Xie, Alon et al.):
//
//   - NewMIS: maximal independent set membership.
//   - NewMatching: maximal matching and 2-approximate vertex cover.
//   - NewApproxMatching: (1-eps)-approximate maximum matching via
//     bounded-length augmenting-path phases.
//   - NewColoring: (Delta+1)-coloring.
//   - NewBallAssignment: d-choice load balancing (power of two choices).
//
// Applications and operations: EstimateVertexFraction and
// EstimateEdgeFraction (Hoeffding-bounded solution-size estimates from
// sampled queries), BuildSubgraphParallel (per-worker instances,
// bit-identical to serial), NewProbeLimiter (hard probe budgets), and the
// internal/dist Parnas-Ron reduction turning any k-round distributed
// algorithm into an LCA.
//
// Supporting systems: graph substrate and generators (Gnp, RandomRegular,
// ChungLu, ...), global baselines (BaswanaSen, GreedySpanner, ...), the
// assembly-and-verification harness (BuildSubgraph, VerifyStretch, ...),
// the Theorem 1.3 lower-bound apparatus (SampleDPlus/SampleDMinus,
// BFSMeet), and an HTTP query service (cmd/lcaserve).
//
// # Quick start
//
//	g := lca.Gnp(100000, 0.01, 42)          // or any graph behind an Oracle
//	span := lca.NewSpanner3(lca.NewOracle(g), 7)
//	inSpanner := span.QueryEdge(123, 4567)  // ~n^{3/4} probes, no global work
//
// See examples/ for runnable end-to-end scenarios and DESIGN.md for the
// paper-to-module map.
package lca
