// Package lca is a library of Local Computation Algorithms (LCAs, also
// known as the centralized-local model): algorithms that answer queries
// about a single, globally consistent solution — a spanner, a maximal
// independent set, a matching, a coloring — while probing only a sublinear
// portion of the input graph and storing nothing but a short random seed.
//
// # The model
//
// The input graph is reachable only through an adjacency-list oracle
// (Oracle) answering Neighbor, Degree and Adjacency probes. An LCA is
// instantiated from an oracle and a Seed; all of its random decisions are
// derived from bounded-independence hash families over vertex IDs, so any
// two queries — or two independently built instances with the same seed —
// agree on one fixed global solution. Probe counts are the complexity
// measure and can be read back from every algorithm.
//
// # Sessions and the algorithm registry
//
// The primary API is the Session. Every algorithm self-registers a
// descriptor in an internal registry — name, query kind (edge, vertex or
// label), tunable parameters, constructor — and a Session dispatches to
// any of them by name, owning the oracle plumbing, probe accounting, probe
// budgets and parallel assembly:
//
//	g := lca.Gnp(100000, 0.01, 7)          // or any graph behind an Oracle
//	s := lca.NewSession(g,
//		lca.WithSeed(42),                   // replicas sharing a seed agree
//		lca.WithProbeBudget(200000),        // hard per-query probe cap
//		lca.WithParam("k", 4),              // parameters, by name
//	)
//	e := g.Edges()[0]                       // membership is defined for input edges
//	in, err := s.Edge("spanner3", e.U, e.V) // ~n^{3/4} probes, no global work
//	set, err := s.Vertex("mis", 9000)
//	color, err := s.Label("coloring", 17)
//	h, stats, err := s.BuildSubgraph("spannerk") // full assembly, parallel
//	est, err := s.EstimateFraction("mis", 2000, 0.05)
//
// Session.Algos lists the catalog; the same registry drives the HTTP
// server (cmd/lcaserve, with /algos discovery), the benchmark suite
// (cmd/lcabench, including the REG and SRC sweeps) and the invariant
// auditor (cmd/lcaverify) — registering a new algorithm makes it appear on
// all of them with no further wiring.
//
// # Probe sources: inputs too large to read
//
// The input side is pluggable too. A Source is anything answering the
// model's four probes (N, Degree, Neighbor, Adjacency); a Session can run
// over any of them, and the whole point of the model — answering queries
// about inputs too large to ever read — becomes operational:
//
//	src, err := lca.OpenSource("ring:n=1000000000", 7) // 24 bytes of state
//	s := lca.NewSessionFromSource(src, lca.WithSeed(42))
//	in, err := s.Vertex("mis", 123_456_789)  // O(1) probes, zero O(n) work
//	est, err := s.EstimateFraction("matching", 2000, 0.05)
//
// Spec strings name four backend families (see OpenSource and
// SourceFamilies):
//
//   - Implicit deterministic generators, synthesized per probe from the
//     parameters and seed with no per-vertex state: ring:n=N,
//     grid:rows=R,cols=C, torus:rows=R,cols=C, circulant:n=N,d=D
//     (hash-based d-regular) and blockrandom:n=N,d=D (a G(n, d/n)-style
//     random family from HMAC-style per-block derived seeds).
//
//   - In-memory graphs: a bare path or edgelist:path loads an edge-list
//     file; NewSession(g) is the same adapter for programmatic graphs.
//
//   - Disk-backed CSR (csr:path): a graph saved once — lcagen -format
//     csr, or graph.WriteCSR/WriteCSRStream — and probed cold through
//     positioned reads (Degree: 1 read, Neighbor: 2, Adjacency: binary
//     search), with O(1) resident state.
//
//   - Network shards (remote:, sharded:): every lcaserve instance
//     answers the probe wire protocol (GET/POST /probe, /probe/meta), so
//     remote:http://host:port probes another process's source — with
//     connection reuse, per-request timeouts and retry-with-backoff —
//     and sharded:remote:a,remote:b,... consistent-hashes vertices
//     across replica shards (";"-separated when sub-specs contain
//     commas; a cache=N item adds a client-side probe LRU):
//
//     src, err := lca.OpenSource("sharded:cache=65536;remote:http://a:8080;remote:http://b:8080", 7)
//     s := lca.NewSessionFromSource(src, lca.WithSeed(42))
//     defer s.Close()                        // releases shard connections
//     in, err := s.Vertex("mis", 123456789)  // probes cross the network transparently
//
// Point queries and EstimateFraction work on every source — edge-kind
// estimation included on network backends, via the wire protocol's
// seeded op=randomedge extension. The batch Build methods enumerate all
// elements, so they require an in-memory graph and return
// ErrNotMaterialized otherwise; use internal/source.Materialize (or
// lcaverify -maxn) to audit small instances of a source family. The HTTP
// server opens sources at runtime (POST /sources?name=...&spec=...) and
// serves point queries against any of them by name. Call Session.Close
// when done: it releases whatever the source holds (CSR file handles,
// remote connections). All backends answer identically under the Source
// contract — internal/source's TestConformance suite enforces it
// (batched probing included), and cross-backend goldens pin
// byte-identical answers whether a probe is answered from RAM, disk or
// the network, with prefetching on or off.
//
// # Neighborhood exploration and prefetching
//
// An LCA query explores a small neighborhood, so over a network source
// every scalar probe costing one round trip is the wrong transport. The
// oracle layer's exploration API fixes the unit: Neighbors(v) fetches one
// full adjacency row, Prefetch(vs...) hints rows about to be read, and
// the prefetching oracle turns both into single batched round trips
// (POST /probe) on remote: and sharded: backends, serving subsequent
// scalar probes from the primed rows. Enable it per session:
//
//	src, err := lca.OpenSource("sharded:remote:http://a:8080,remote:http://b:8080", 7)
//	s := lca.NewSessionFromSource(src,
//		lca.WithSeed(42),
//		lca.WithPrefetch(true), // neighborhoods become one round trip each
//	)
//	in, err := s.Vertex("mis", 123456)
//	ps, _ := s.ProbeStats("mis")     // ps.RoundTrips: the transport bill
//
// Answers, probe counts and probe budgets are identical with or without
// prefetching — budgets charge per cell read, and round trips are
// accounted separately (ProbeStats.RoundTrips, ProbeStats.Batches) — so
// it is safe on any source; local backends simply have nothing to
// collapse. The HTTP server exposes the same switch per query
// (&prefetch=1, answers carry round_trips), and the lcabench NET sweep
// reports mean rt/query so the collapse lands in BENCH artifacts.
//
// Migrating algorithm-style code from scalar loops: a full-row scan
//
//	deg := o.Degree(v)
//	for i := 0; i < deg; i++ {
//		w := o.Neighbor(v, i)
//		...
//	}
//
// becomes one exploration, identical in probe count and answers:
//
//	for _, w := range oracle.Neighbors(o, v) { ... }
//
// and a partial scan (prefix, early break, scattered Adjacency probes
// into one row) keeps its loop but hints the row first:
//
//	oracle.Prefetch(o, v)   // free; one batched round trip on network backends
//	deg := o.Degree(v)      // served from the primed row
//	...
//
// Every built-in algorithm (mis, coloring, matching, approxmatching, the
// three spanner families, balls, the estimators) already speaks this API.
//
// # The hot local path
//
// When the graph lives on local disk, the probe bill is paid in reads
// and allocations, not round trips. Two switches tighten that path
// without changing a single answer. Opening a CSR file with the mmap
// knob ("csr:web.csr?mmap=1") maps it read-only instead of issuing a
// positioned read per probe — the spec falls back to the cold reader
// where mmap is unavailable — and WithRowCache routes the session's
// probes through tiered row caches (a per-chain arena-backed L1 over a
// shared bounded L2), so steady-state probes of a warm working set
// allocate nothing:
//
//	src, err := lca.OpenSource("csr:web.csr?mmap=1", 7)
//	s := lca.NewSessionFromSource(src,
//		lca.WithSeed(42),
//		lca.WithRowCache(65536), // shared L2 slots; L1 is per query chain
//	)
//	in, err := s.Vertex("mis", 123456)
//
// Answers, probe counts and probe budgets are identical with the caches
// on — rows of a fixed graph are pure values, so caching them is
// invisible except in the bill. The mmap reader also reports probe
// locality (page_touches, local_hits) through QueryStats and serve
// answers, and the lcabench SRC sweep prints ns/probe and allocs/probe
// per backend so the zero stays pinned in BENCH artifacts.
//
// # Shard health, failover and hedging: a runbook
//
// A sharded: fleet survives replica failure without operator action, but
// the mechanics are worth knowing when a page fires. The state machine
// (internal/source, health.go): every replica starts live; a probe
// failure that is the shard's fault (transport error, 5xx, 429) counts
// toward a consecutive-failure threshold (default 3) and the failing
// probe is immediately retried on the next replica in the vertex's
// rendezvous ranking, so queries keep answering — correctly, because
// replicas of one graph are interchangeable — while the failure is
// still being detected. At the threshold the shard is marked dead: its
// keys route to the next-ranked live replica and a background reviver
// re-probes the shard's /probe/meta (the health plane; never a data
// probe) half-open with jittered exponential backoff, reviving it on
// the first success. Queries error only when no live replica remains.
//
// An optional hedge delay (the hedge=DURATION spec item, e.g.
// sharded:remote:a;remote:b;hedge=20ms) additionally races tail
// latency: a probe still unanswered after the delay is fired again at
// the second-ranked live replica, the first response wins and the loser
// is cancelled. Slow is not down — hedging alone never marks a shard
// dead — but a hedge that masked a hard failure still records it, so a
// dead replica cannot hide behind its faster peer.
//
// What to watch. Per-query: ProbeStats/QueryStats carry RoundTrips,
// Failovers and Hedges (serve answers mirror them as round_trips,
// failovers, hedges — exact per request, not bled across concurrent
// requests). Per-fleet: GET /probe/meta and GET /sources list each
// replica's state (live, dead, probing), consecutive failures and last
// error. Symptom table: failovers rising + a shard dead in /sources →
// a replica is down, capacity is degraded but answers are unaffected;
// hedges rising with no failovers → a replica is slow (GC, page cache
// cold, noisy neighbor); "no live replica" errors → the whole fleet is
// unreachable from this client, look at the network before the shards.
// Process-wide, GET /metrics aggregates the same signals as counters
// and latency/probe histograms (serve_failovers_total,
// serve_query_latency_us{kind=...}, per-tenant rejection counters);
// cmd/lcaload drives measured query load against a server to read them
// under traffic. A runnable end-to-end walkthrough is
// ExampleOpenSource_shardedFailover.
//
// The failure model above covers crashed and slow replicas; the trust
// plane (internal/attest) covers lying ones. Wrap a served source in
// source.NewAttested (lcaserve -attest) and its shard advertises a
// 32-byte Merkle commitment over the adjacency rows on /probe/meta;
// clients that pin it (remote:URL#root=HEX, or source.WithCommitment)
// verify every probe answer against a per-row inclusion proof and
// surface corruption as the typed source.ErrAttestation. A fleet treats
// a failed verification as Byzantine, not broken: the replica enters
// the sticky "distrusted" state — routed around like a dead shard but
// never revived, since a healthy health plane cannot prove an honest
// data plane — and answers keep flowing, byte-identical to a healthy
// fleet. Watch attest_fail and proof_bytes in QueryStats,
// serve_attest_failures_total in /metrics, and the distrusted state in
// /sources; Sharded.SpotCheck cross-checks replicas when no commitment
// exists. For after-the-fact forensics, lcaserve -audit-log FILE
// -audit-key SECRET appends one HMAC-chained record per executed query
// (request, seed, probe transcript, answer hash, row proofs), and
// lcaverify -replay FILE -audit-key SECRET re-executes the log offline
// — no graph, no network — proving every served answer reproducible
// bit-for-bit; tampering, truncation or reordering breaks the chain.
// lcaserve -chaos lie serves a deliberately corrupted replica for
// drills.
//
// When the aggregates say "slow" but not why, switch planes: append
// trace=1 to the query (or run lcaserve with -trace-sample N /
// -trace-slow DUR) and read the span tree — query root, oracle-layer
// spans with cache-hit and budget tags, one rpc span per shard round
// trip with failover/hedge-won outcomes, and the shard's own spans
// stitched in over the X-LCA-Trace wire header. Trees are retained on
// GET /traces (slow-query captures under /traces?slow=1, one tree on
// /traces/{id}); library code gets the same via WithTracer. Structured
// request logs (lcaserve -log-format json) carry the trace_id for the
// pivot. For CPU or heap suspicions, lcaserve -debug-addr starts a
// separate listener — firewall it — serving net/http/pprof profiles
// under /debug/pprof/ and a /debug/vars runtime snapshot (goroutines,
// heap, GC) for the first minute of any incident.
//
// # Further documentation
//
// ARCHITECTURE.md maps the layers (source → oracle → algorithms →
// registry/session → serve/CLIs), tabulates every Source/Oracle
// capability per backend, and gives the full spec grammar in one table.
// docs/WIRE.md specifies the probe wire protocol (endpoints, op table,
// error envelope, status-code contract, health/meta fields) precisely
// enough to implement a third-party shard without reading wire.go.
//
// # What is implemented
//
// Spanners (Parter, Rubinfeld, Vakilian, Yodpinyanee 2019), as registry
// entries "spanner3", "spanner5", "spannerk", "sparse", "superspanner"
// and "spanner5mindeg":
//
//   - 3-spanners with ~O(n^{3/2}) edges and ~O(n^{3/4}) probes per edge
//     query, sublinear even on graphs of maximum degree Theta(n).
//   - 5-spanners with ~O(n^{4/3}) edges and ~O(n^{5/6}) probes.
//   - O(k^2)-stretch spanners with ~O(n^{1+1/k}) edges for bounded-degree
//     graphs, and the sparse-spanning-graph regime at k = ceil(log2 n).
//
// Classical sparse-regime LCAs (Rubinfeld-Tamir-Vardi-Xie, Alon et al.),
// as entries "mis", "matching", "vertexcover", "approxmatching" and
// "coloring", plus NewBallAssignment for d-choice load balancing.
//
// Applications and operations: Session.EstimateFraction and the
// EstimateVertexFraction/EstimateEdgeFraction helpers (Hoeffding-bounded
// solution-size estimates from sampled queries), parallel assembly
// (per-worker instances, bit-identical to serial), NewProbeLimiter /
// WithProbeBudget (hard probe budgets), the graph substrate and
// generators (Gnp, RandomRegular, ChungLu, ...), global baselines
// (BaswanaSen, GreedySpanner, ...), the assembly-and-verification harness
// (BuildSubgraph, VerifyStretch, ...), and the Theorem 1.3 lower-bound
// apparatus (SampleDPlus/SampleDMinus, BFSMeet).
//
// # Flat constructors (deprecated surface)
//
// The per-algorithm constructors (NewSpanner3, NewMIS, NewMatching, ...)
// predate the registry. They remain supported — now as thin wrappers that
// route through the registry — and are the right tool when a caller needs
// a concrete algorithm type or a custom oracle chain, but they are a
// deprecated surface for ordinary use: new code should reach algorithms
// through NewSession, which owns the oracle, budget and assembly plumbing
// and extends to newly registered algorithms automatically. No removal is
// planned; treat them as frozen.
//
// See examples/ for runnable end-to-end scenarios and DESIGN.md for the
// paper-to-module map.
package lca
