package lca_test

import (
	"testing"

	"lca"
)

// TestQuickstartFlow exercises the documented entry points end to end: a
// downstream user builds a graph, wraps it in an oracle, queries a spanner
// LCA, and verifies the assembled result.
func TestQuickstartFlow(t *testing.T) {
	g := lca.Gnp(300, 0.2, 42)
	span := lca.NewSpanner3Config(lca.NewOracle(g), 7, lca.SpannerConfig{Memo: true})
	h, stats := lca.BuildSubgraph(g, span)
	if stats.Queries != g.M() {
		t.Fatalf("harness issued %d queries for %d edges", stats.Queries, g.M())
	}
	rep := lca.VerifyStretch(g, h, 3)
	if rep.Violations != 0 {
		t.Fatalf("stretch violations: %+v", rep)
	}
	if h.M() >= g.M() {
		t.Fatalf("no sparsification: %d of %d edges", h.M(), g.M())
	}
}

func TestFacadeSpannerFamilies(t *testing.T) {
	g := lca.DenseCore(200, 50, 5, 3)
	o := lca.NewOracle(g)
	if h, _ := lca.BuildSubgraph(g, lca.NewSpanner5Config(o, 1, lca.SpannerConfig{Memo: true})); lca.VerifyStretch(g, h, 5).Violations != 0 {
		t.Error("5-spanner stretch violation through the facade")
	}
	kcfg := lca.SpannerKConfig{L: 25, CenterProb: 0.05}
	kcfg.Memo = true
	hk, _ := lca.BuildSubgraph(g, lca.NewSpannerKConfig(lca.NewOracle(g), 2, 2, kcfg))
	if err := lca.VerifyConnectivityPreserved(g, hk); err != nil {
		t.Errorf("O(k^2) spanner through the facade: %v", err)
	}
	super := lca.NewSuperSpanner(lca.NewOracle(lca.Complete(80)), 3, 4, lca.SpannerConfig{})
	if !super.QueryEdge(0, 1) && !super.QueryEdge(1, 2) {
		t.Log("super spanner answered NO on both sample edges (fine; just exercising the path)")
	}
}

func TestFacadeClassicalLCAs(t *testing.T) {
	g := lca.Torus(10, 10)
	in, _ := lca.BuildVertexSet(g, lca.NewMIS(lca.NewOracle(g), 5))
	if err := lca.VerifyMaximalIndependentSet(g, in); err != nil {
		t.Error(err)
	}
	m, _ := lca.BuildSubgraph(g, lca.NewMatching(lca.NewOracle(g), 6))
	if err := lca.VerifyMaximalMatching(g, m); err != nil {
		t.Error(err)
	}
	colors, _ := lca.BuildLabels(g, lca.NewColoring(lca.NewOracle(g), 7))
	if err := lca.VerifyColoring(g, colors, g.MaxDegree()+1); err != nil {
		t.Error(err)
	}
}

func TestFacadeBaselines(t *testing.T) {
	g := lca.Gnp(120, 0.15, 9)
	if h := lca.BaswanaSen(g, 2, 1); lca.VerifyStretch(g, h, 3).Violations != 0 {
		t.Error("Baswana-Sen stretch violation")
	}
	if h := lca.GreedySpanner(g, 2); lca.VerifyStretch(g, h, 3).Violations != 0 {
		t.Error("greedy spanner stretch violation")
	}
	f := lca.SpanningForest(g)
	if err := lca.VerifyConnectivityPreserved(g, f); err != nil {
		t.Error(err)
	}
}

func TestFacadeGenerators(t *testing.T) {
	if g, err := lca.RandomRegular(40, 3, 1); err != nil || g.MaxDegree() != 3 || g.MinDegree() != 3 {
		t.Errorf("RandomRegular via facade: %v", err)
	}
	if g := lca.ChungLu(200, 2.5, 6, 2); g.N() != 200 {
		t.Error("ChungLu via facade")
	}
	if g := lca.PlantedClusters(60, 3, 0.3, 0.02, 3); g.N() != 60 {
		t.Error("PlantedClusters via facade")
	}
	if g := lca.Grid(4, 5); g.M() != 31 {
		t.Errorf("Grid via facade: m=%d", g.M())
	}
	b := lca.NewGraphBuilder(3)
	b.AddEdge(0, 1)
	if g := b.Build(); g.M() != 1 {
		t.Error("builder via facade")
	}
	if g := lca.FromEdges(3, []lca.Edge{{U: 0, V: 2}}); !g.HasEdge(2, 0) {
		t.Error("FromEdges via facade")
	}
}

func TestProbeCounterFacade(t *testing.T) {
	g := lca.Complete(50)
	c := lca.NewProbeCounter(lca.NewOracle(g))
	c.Degree(0)
	c.Neighbor(0, 0)
	if c.Stats().Total() != 2 {
		t.Errorf("probe counter via facade: %+v", c.Stats())
	}
}

func TestApproxMatchingFacade(t *testing.T) {
	g := lca.Grid(4, 6)
	a := lca.NewApproxMatching(lca.NewOracle(g), 1, 3)
	m, _ := lca.BuildSubgraph(g, a)
	if err := lca.VerifyMaximalMatching(g, m); err != nil {
		t.Error(err)
	}
	base, _ := lca.BuildSubgraph(g, lca.NewMatching(lca.NewOracle(g), 3))
	if m.M()+1 < base.M() {
		t.Errorf("augmented matching (%d) worse than a maximal one (%d)", m.M(), base.M())
	}
}

func TestParallelHarnessFacade(t *testing.T) {
	g := lca.Gnp(200, 0.2, 11)
	serial, _ := lca.BuildSubgraph(g, lca.NewSpanner3(lca.NewOracle(g), 5))
	par, _ := lca.BuildSubgraphParallel(g, func() lca.EdgeLCA {
		return lca.NewSpanner3(lca.NewOracle(g), 5)
	}, 4)
	if serial.M() != par.M() {
		t.Fatalf("parallel facade diverged: %d vs %d", par.M(), serial.M())
	}
	in, _ := lca.BuildVertexSetParallel(g, func() lca.VertexLCA {
		return lca.NewMIS(lca.NewOracle(g), 5)
	}, 4)
	if err := lca.VerifyMaximalIndependentSet(g, in); err != nil {
		t.Error(err)
	}
}

func TestEstimateFacade(t *testing.T) {
	g := lca.Torus(20, 20)
	s := lca.EstimateSamplesFor(0.08, 0.02)
	res := lca.EstimateVertexFraction(g.N(), lca.NewMIS(lca.NewOracle(g), 7), s, 0.02, 9)
	if res.Fraction < 0.15 || res.Fraction > 0.6 {
		t.Errorf("torus MIS fraction estimate %f implausible", res.Fraction)
	}
	dens := lca.EstimateEdgeFraction(g, lca.NewMatching(lca.NewOracle(g), 7), s, 0.02, 9)
	if dens.Fraction <= 0 || dens.Fraction >= 1 {
		t.Errorf("matching density estimate %f implausible", dens.Fraction)
	}
}

func TestProbeLimiterFacade(t *testing.T) {
	g := lca.Complete(100)
	limiter := lca.NewProbeLimiter(lca.NewOracle(g), 50)
	if ok := limiter.WithinBudget(func() {
		for i := 0; i < 10; i++ {
			limiter.Degree(i)
		}
	}); !ok {
		t.Error("10 probes must fit a budget of 50")
	}
	if ok := limiter.WithinBudget(func() {
		for i := 0; i < 100; i++ {
			limiter.Degree(i)
		}
	}); ok {
		t.Error("100 probes must not fit a budget of 50")
	}
}

func TestBallAssignmentFacade(t *testing.T) {
	table := lca.NewChoiceTable(300, 300, 2, 5)
	a := lca.NewBallAssignment(table, 7)
	global := a.RunGlobal()
	fresh := lca.NewBallAssignment(table, 7)
	for b := 0; b < table.Balls(); b++ {
		if fresh.QueryBall(b) != global[b] {
			t.Fatalf("facade assignment diverged at ball %d", b)
		}
	}
}
