package lca_test

// Cross-backend determinism goldens: one spec + seed must yield
// byte-identical answers no matter which backend answers the probes —
// implicit in-process, cold CSR from disk, a remote shard over HTTP, or a
// consistent-hashed fleet of shards. This is the property that lets a
// deployment move a graph between RAM, disk and the network without the
// served solution shifting underneath its users.

import (
	"crypto/sha256"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"

	"lca"
	"lca/internal/attest"
	"lca/internal/graph"
	"lca/internal/source"
)

// corruptReplica serves one attested replica whose neighbor answers are
// rotated one vertex forward once lying is switched on, while degrees,
// the commitment and row proofs stay honest — a Byzantine shard, not a
// broken one.
type corruptReplica struct {
	att   *source.Attested
	lying atomic.Bool
}

func (c *corruptReplica) N() int           { return c.att.N() }
func (c *corruptReplica) Degree(v int) int { return c.att.Degree(v) }

func (c *corruptReplica) Neighbor(v, i int) int {
	w := c.att.Neighbor(v, i)
	if c.lying.Load() && w >= 0 {
		return (w + 1) % c.att.N()
	}
	return w
}

func (c *corruptReplica) Adjacency(u, v int) int { return c.att.Adjacency(u, v) }

func (c *corruptReplica) Commitment() attest.Root { return c.att.Commitment() }

func (c *corruptReplica) ProveRow(v int) ([]int, []string) { return c.att.ProveRow(v) }

// answerDigest queries mis (vertex), spanner3 (edge) and coloring (label)
// point-wise over a deterministic sample and hashes the transcript. With
// prefetch, the session explores neighborhoods through the batching
// oracle — the digest must not move: prefetching changes transport, never
// answers.
func answerDigest(t *testing.T, src lca.Source, prefetch bool, extra ...lca.SessionOption) string {
	t.Helper()
	opts := append([]lca.SessionOption{lca.WithSeed(42), lca.WithPrefetch(prefetch)}, extra...)
	s := lca.NewSessionFromSource(src, opts...)
	defer s.Close()
	n := src.N()
	transcript := ""
	for i := 0; i < 60; i++ {
		v := (i * 977) % n
		in, err := s.Vertex("mis", v)
		if err != nil {
			t.Fatalf("mis(%d): %v", v, err)
		}
		label, err := s.Label("coloring", v)
		if err != nil {
			t.Fatalf("coloring(%d): %v", v, err)
		}
		transcript += fmt.Sprintf("v%d:%v c%d;", v, in, label)
		if w := src.Neighbor(v, 0); w >= 0 {
			in, err := s.Edge("spanner3", v, w)
			if err != nil {
				t.Fatalf("spanner3(%d,%d): %v", v, w, err)
			}
			transcript += fmt.Sprintf("e%d-%d:%v;", v, w, in)
		}
	}
	return fmt.Sprintf("%x", sha256.Sum256([]byte(transcript)))
}

func TestCrossBackendDeterminismGoldens(t *testing.T) {
	const spec = "circulant:n=500,d=6,seed=11"
	implicit, err := lca.OpenSource(spec, 7)
	if err != nil {
		t.Fatal(err)
	}

	// The same graph saved cold: CSR written by probing the implicit
	// source (both fix the ascending adjacency order).
	csrPath := filepath.Join(t.TempDir(), "g.csr")
	f, err := os.Create(csrPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.WriteCSRStream(f, implicit.N(), implicit.Degree, implicit.Neighbor); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// Two HTTP shards, each wrapping its own replica of the implicit
	// source.
	shardFor := func() *httptest.Server {
		replica, err := lca.OpenSource(spec, 7)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(source.NewProbeHandler(replica))
		t.Cleanup(ts.Close)
		return ts
	}
	shardA, shardB := shardFor(), shardFor()

	backends := []struct {
		name string
		spec string
	}{
		{"implicit", spec},
		{"csr", "csr:" + csrPath},
		// On platforms without mmap the spec knob degrades to the cold
		// reader, so this row still pins the fallback's answers.
		{"csr-mmap", "csr:" + csrPath + "?mmap=1"},
		{"remote", "remote:" + shardA.URL},
		{"sharded-x2", "sharded:remote:" + shardA.URL + ",remote:" + shardB.URL},
		{"sharded-x2-lru", "sharded:cache=4096;remote:" + shardA.URL + ";remote:" + shardB.URL},
		// Adaptive hedging tunes when the secondary is raced, never what
		// either replica answers; the digest must not move.
		{"sharded-x2-adaptive", "sharded:remote:" + shardA.URL + ";remote:" + shardB.URL + ";hedge=adaptive"},
		{"sharded-x2-adaptive-bounded", "sharded:remote:" + shardA.URL + ";remote:" + shardB.URL + ";hedge=adaptive;hedgefloor=2ms;hedgeceil=20ms"},
	}
	digests := map[string]string{}
	for _, b := range backends {
		for _, prefetch := range []bool{false, true} {
			name := b.name
			if prefetch {
				name += "+prefetch"
			}
			src, err := lca.OpenSource(b.spec, 7)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			digests[name] = answerDigest(t, src, prefetch)
		}
	}
	// Tiered goldens: the same backends routed through the session's row
	// caches (L1 arena store + shared bounded L2). Caches serve memoized
	// rows of a fixed graph, so every digest must stay on the golden — with
	// and without prefetch stacked above the tier.
	for _, b := range []struct {
		name string
		spec string
	}{
		{"implicit-tiered", spec},
		{"csr-tiered", "csr:" + csrPath},
		{"csr-mmap-tiered", "csr:" + csrPath + "?mmap=1"},
	} {
		for _, prefetch := range []bool{false, true} {
			name := b.name
			if prefetch {
				name += "+prefetch"
			}
			src, err := lca.OpenSource(b.spec, 7)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			digests[name] = answerDigest(t, src, prefetch, lca.WithRowCache(128))
		}
	}

	// Failover golden: a sharded fleet with one of its two replicas killed
	// mid-session must keep answering byte-identically to the healthy
	// cluster — replicas are interchangeable, so the survivor serves the
	// dead shard's keys. The sources are opened while both replicas are up
	// (construction validates every shard), then the replica dies.
	shardC, shardD := shardFor(), shardFor()
	deadSpec := "sharded:remote:" + shardC.URL + ";remote:" + shardD.URL + ";hedge=50ms"
	deadScalar, err := lca.OpenSource(deadSpec, 7)
	if err != nil {
		t.Fatal(err)
	}
	deadPrefetch, err := lca.OpenSource(deadSpec, 7)
	if err != nil {
		t.Fatal(err)
	}
	shardD.Close()
	digests["sharded-x2-deadshard"] = answerDigest(t, deadScalar, false)
	digests["sharded-x2-deadshard+prefetch"] = answerDigest(t, deadPrefetch, true)

	// Byzantine golden: a pinned fleet with one replica returning corrupted
	// answers must keep answering byte-identically to the healthy cluster —
	// the lying replica's answers fail proof verification, the fleet routes
	// around it, and the corruption is visible only as attest_failures.
	attestedReplica := func() *source.Attested {
		replica, err := lca.OpenSource(spec, 7)
		if err != nil {
			t.Fatal(err)
		}
		return source.NewAttested(replica)
	}
	honestAtt := attestedReplica()
	corrupt := &corruptReplica{att: attestedReplica()}
	root := honestAtt.Commitment().String()
	tsHonest := httptest.NewServer(source.NewProbeHandler(honestAtt))
	t.Cleanup(tsHonest.Close)
	tsCorrupt := httptest.NewServer(source.NewProbeHandler(corrupt))
	t.Cleanup(tsCorrupt.Close)
	byzSpec := "sharded:remote:" + tsHonest.URL + "#root=" + root + ";remote:" + tsCorrupt.URL + "#root=" + root + ";hedge=50ms"
	byzScalar, err := lca.OpenSource(byzSpec, 7)
	if err != nil {
		t.Fatal(err)
	}
	byzPrefetch, err := lca.OpenSource(byzSpec, 7)
	if err != nil {
		t.Fatal(err)
	}
	corrupt.lying.Store(true)
	digests["sharded-x2-byzantine"] = answerDigest(t, byzScalar, false)
	digests["sharded-x2-byzantine+prefetch"] = answerDigest(t, byzPrefetch, true)
	byzFails := byzScalar.(source.AttestCounter).AttestFailures() +
		byzPrefetch.(source.AttestCounter).AttestFailures()
	if byzFails == 0 {
		t.Error("byzantine goldens matched without a single attest failure: the corrupted replica was never probed")
	}

	golden := digests["implicit"]
	for name, d := range digests {
		if d != golden {
			t.Errorf("backend %s digest %s differs from implicit %s: the same spec+seed must answer byte-identically", name, d, golden)
		}
	}
}
