package lca

import (
	"fmt"

	"lca/internal/balls"
	"lca/internal/baseline"
	"lca/internal/coloring"
	"lca/internal/core"
	"lca/internal/estimate"
	"lca/internal/gen"
	"lca/internal/graph"
	"lca/internal/lowerbound"
	"lca/internal/matching"
	"lca/internal/mis"
	"lca/internal/oracle"
	"lca/internal/registry"
	"lca/internal/rnd"
	"lca/internal/source"
	"lca/internal/spanner"
	"lca/internal/trace"
)

// Core model types.
type (
	// Graph is an immutable simple undirected graph on vertices 0..N()-1.
	Graph = graph.Graph
	// Edge is an undirected edge in canonical orientation.
	Edge = graph.Edge
	// Builder accumulates edges into a Graph.
	Builder = graph.Builder
	// Oracle is the adjacency-list probe interface every LCA runs against.
	Oracle = oracle.Oracle
	// Source is the pluggable probe substrate behind a session: an
	// in-memory *Graph, an implicit deterministic generator, or a cold
	// disk-backed CSR file (see OpenSource and NewSessionFromSource).
	Source = source.Source
	// ProbeCounter wraps an Oracle with probe accounting.
	ProbeCounter = oracle.Counter
	// ProbeStats is a snapshot of probe counts by probe type.
	ProbeStats = oracle.Stats
	// Seed is the master random seed an LCA derives all decisions from.
	Seed = rnd.Seed
	// Tracer records a probe-level span tree for traced queries (see
	// Session WithTracer and NewTracer).
	Tracer = trace.Tracer
	// TraceSpan is one recorded span of a trace.
	TraceSpan = trace.Span
	// PRG is a deterministic pseudo-random generator for workloads.
	PRG = rnd.PRG
	// HashFamily is a bounded-independence hash family.
	HashFamily = rnd.Family
)

// LCA interfaces and harness types.
type (
	// EdgeLCA answers consistent edge-membership queries.
	EdgeLCA = core.EdgeLCA
	// VertexLCA answers consistent vertex-membership queries.
	VertexLCA = core.VertexLCA
	// LabelLCA answers consistent vertex-labeling queries.
	LabelLCA = core.LabelLCA
	// QueryStats aggregates per-query probe counts.
	QueryStats = core.QueryStats
	// StretchReport summarizes a stretch verification pass.
	StretchReport = core.StretchReport
)

// Algorithm types.
type (
	// Spanner3 is the stretch-3 spanner LCA (~O(n^{3/4}) probes/query).
	Spanner3 = spanner.Spanner3
	// Spanner5 is the stretch-5 spanner LCA (~O(n^{5/6}) probes/query).
	Spanner5 = spanner.Spanner5
	// SpannerK is the stretch-O(k^2) spanner LCA.
	SpannerK = spanner.SpannerK
	// SuperSpanner is the generalized high-degree construction of
	// Theorem 3.5: a 3-spanner for all edges with both endpoint degrees at
	// least n^{1-1/(2r)}, using ~O(n^{1+1/r}) edges.
	SuperSpanner = spanner.SuperSpanner
	// SpannerConfig tunes the constants of the spanner constructions.
	SpannerConfig = spanner.Config
	// SpannerKConfig tunes the O(k^2) construction.
	SpannerKConfig = spanner.KConfig
	// MIS is the maximal-independent-set LCA.
	MIS = mis.MIS
	// Matching is the maximal-matching / vertex-cover LCA.
	Matching = matching.Matching
	// ApproxMatching is the (1-eps)-approximate maximum matching LCA.
	ApproxMatching = matching.ApproxMatching
	// Coloring is the (Delta+1)-coloring LCA.
	Coloring = coloring.Coloring
	// EstimateResult is a sampled solution-size estimate with confidence
	// radius.
	EstimateResult = estimate.Result
	// ProbeLimiter enforces a hard per-window probe budget.
	ProbeLimiter = oracle.LimitOracle
)

// NewOracle wraps a concrete graph as a probe oracle.
func NewOracle(g *Graph) Oracle { return oracle.New(g) }

// NewTracer returns a tracer with a fresh trace ID and the default span
// cap, ready for Session's WithTracer. Read the recorded tree with
// Spans() after querying.
func NewTracer() *Tracer { return trace.New(trace.NewID(), trace.DefaultMaxSpans) }

// NewProbeCounter wraps an oracle with probe accounting.
func NewProbeCounter(o Oracle) *ProbeCounter { return oracle.NewCounter(o) }

// NewGraphBuilder returns a builder for a graph on n vertices.
func NewGraphBuilder(n int) *Builder { return graph.NewBuilder(n) }

// FromEdges builds a graph from an edge list.
func FromEdges(n int, edges []Edge) *Graph { return graph.FromEdges(n, edges) }

// Flat constructors. These predate the registry and are retained as thin
// wrappers over it so existing code keeps compiling; new code should reach
// algorithms through NewSession (which owns the oracle, seed, budget and
// parallel-assembly plumbing) or, for custom oracle chains, through the
// registry-backed constructors below. See doc.go for the deprecation
// status.

// mustBuild routes a flat constructor through the registry. The flat
// constructors keep their historical non-failing signatures; after
// parameter clamping the registry build cannot fail, so an error here is a
// registration bug worth a panic.
func mustBuild[T any](name string, o Oracle, seed Seed, p registry.Params) T {
	inst, err := registry.Build(name, o, seed, p)
	if err != nil {
		panic(fmt.Sprintf("lca: %v", err))
	}
	return inst.(T)
}

// spannerParams maps a SpannerConfig onto registry parameters.
func spannerParams(cfg SpannerConfig) registry.Params {
	return registry.Params{
		"memo":         cfg.Memo,
		"independence": cfg.Independence,
		"hitconst":     cfg.HitConst,
	}
}

// spannerKParams maps a SpannerKConfig onto registry parameters.
func spannerKParams(cfg SpannerKConfig) registry.Params {
	p := spannerParams(cfg.Config)
	p["l"] = cfg.L
	p["centerprob"] = cfg.CenterProb
	p["markprob"] = cfg.MarkProb
	p["q"] = cfg.Q
	return p
}

// NewSpanner3 returns the 3-spanner LCA of Theorem 1.1 (r=2).
// Prefer NewSession and Session.Edge("spanner3", u, v).
func NewSpanner3(o Oracle, seed Seed) *Spanner3 {
	return mustBuild[*Spanner3]("spanner3", o, seed, nil)
}

// NewSpanner3Config returns a configured 3-spanner LCA.
func NewSpanner3Config(o Oracle, seed Seed, cfg SpannerConfig) *Spanner3 {
	return mustBuild[*Spanner3]("spanner3", o, seed, spannerParams(cfg))
}

// NewSpanner5 returns the 5-spanner LCA of Theorem 1.1 (r=3).
// Prefer NewSession and Session.Edge("spanner5", u, v).
func NewSpanner5(o Oracle, seed Seed) *Spanner5 {
	return mustBuild[*Spanner5]("spanner5", o, seed, nil)
}

// NewSpanner5Config returns a configured 5-spanner LCA.
func NewSpanner5Config(o Oracle, seed Seed, cfg SpannerConfig) *Spanner5 {
	return mustBuild[*Spanner5]("spanner5", o, seed, spannerParams(cfg))
}

// NewSpannerK returns the O(k^2)-spanner LCA of Theorem 1.2.
// Prefer NewSession with WithParam("k", k) and Session.Edge("spannerk", u, v).
func NewSpannerK(o Oracle, k int, seed Seed) *SpannerK {
	if k < 1 {
		k = 1
	}
	return mustBuild[*SpannerK]("spannerk", o, seed, registry.Params{"k": k})
}

// NewSpannerKConfig returns a configured O(k^2)-spanner LCA.
func NewSpannerKConfig(o Oracle, k int, seed Seed, cfg SpannerKConfig) *SpannerK {
	if k < 1 {
		k = 1
	}
	p := spannerKParams(cfg)
	p["k"] = k
	return mustBuild[*SpannerK]("spannerk", o, seed, p)
}

// NewSparseSpanning returns the sparse-spanning-graph specialization
// (k = ceil(log2 n)).
func NewSparseSpanning(o Oracle, seed Seed) *SpannerK {
	return mustBuild[*SpannerK]("sparse", o, seed, nil)
}

// NewSuperSpanner returns the Theorem 3.5 building block for parameter r:
// a stretch-3 construction for edges with both endpoint degrees at least
// n^{1-1/(2r)}.
func NewSuperSpanner(o Oracle, r int, seed Seed, cfg SpannerConfig) *SuperSpanner {
	if r < 1 {
		r = 1
	}
	p := spannerParams(cfg)
	p["r"] = r
	return mustBuild[*SuperSpanner]("superspanner", o, seed, p)
}

// NewSpanner5MinDegree returns the full Theorem 3.5 LCA: on graphs with
// minimum degree at least n^{1/2-1/(2r)} it answers for a 5-spanner with
// ~O(n^{1+1/r}) edges — sparser than the general-graph 5-spanner for r>3.
func NewSpanner5MinDegree(o Oracle, r int, seed Seed, cfg SpannerConfig) *Spanner5 {
	if r < 1 {
		r = 1
	}
	p := spannerParams(cfg)
	p["r"] = r
	return mustBuild[*Spanner5]("spanner5mindeg", o, seed, p)
}

// NewMIS returns the maximal-independent-set LCA.
// Prefer NewSession and Session.Vertex("mis", v).
func NewMIS(o Oracle, seed Seed) *MIS {
	return mustBuild[*MIS]("mis", o, seed, nil)
}

// NewMatching returns the maximal-matching / vertex-cover LCA.
// Prefer NewSession and Session.Edge("matching", u, v) or
// Session.Vertex("vertexcover", v).
func NewMatching(o Oracle, seed Seed) *Matching {
	return mustBuild[*Matching]("matching", o, seed, nil)
}

// NewColoring returns the (Delta+1)-coloring LCA.
// Prefer NewSession and Session.Label("coloring", v).
func NewColoring(o Oracle, seed Seed) *Coloring {
	return mustBuild[*Coloring]("coloring", o, seed, nil)
}

// NewApproxMatching returns the (1-eps)-approximate maximum matching LCA
// with the given number of augmentation rounds (ratio (r+1)/(r+2)).
// Prefer NewSession with WithParam("rounds", rounds).
func NewApproxMatching(o Oracle, rounds int, seed Seed) *ApproxMatching {
	if rounds < 0 {
		rounds = 0
	}
	return mustBuild[*ApproxMatching]("approxmatching", o, seed, registry.Params{"rounds": rounds})
}

// NewProbeLimiter wraps an oracle with a hard probe budget; exceeding it
// panics with a recoverable typed error (see ProbeLimiter.WithinBudget).
func NewProbeLimiter(o Oracle, budget uint64) *ProbeLimiter { return oracle.NewLimit(o, budget) }

// Harness: assembly and verification.

// BuildSubgraph queries the LCA on every edge of g and assembles the
// subgraph, with per-query probe statistics.
func BuildSubgraph(g *Graph, l EdgeLCA) (*Graph, QueryStats) { return core.BuildSubgraph(g, l) }

// BuildVertexSet queries the LCA on every vertex of g.
func BuildVertexSet(g *Graph, l VertexLCA) ([]bool, QueryStats) { return core.BuildVertexSet(g, l) }

// BuildLabels queries the LCA on every vertex of g.
func BuildLabels(g *Graph, l LabelLCA) ([]int, QueryStats) { return core.BuildLabels(g, l) }

// BuildSubgraphParallel assembles with one fresh LCA instance per worker;
// the result equals the serial assembly (instances share no state).
func BuildSubgraphParallel(g *Graph, factory func() EdgeLCA, workers int) (*Graph, QueryStats) {
	return core.BuildSubgraphParallel(g, factory, workers)
}

// BuildVertexSetParallel is the vertex analogue of BuildSubgraphParallel.
func BuildVertexSetParallel(g *Graph, factory func() VertexLCA, workers int) ([]bool, QueryStats) {
	return core.BuildVertexSetParallel(g, factory, workers)
}

// EstimateVertexFraction estimates the fraction of vertices selected by
// the LCA from s sampled queries, with a Hoeffding confidence radius at
// level 1-delta.
func EstimateVertexFraction(n int, l VertexLCA, s int, delta float64, seed Seed) EstimateResult {
	return estimate.VertexFraction(n, l, s, delta, seed)
}

// EstimateEdgeFraction estimates the fraction of g's edges selected by the
// LCA (spanner density, matching density, ...).
func EstimateEdgeFraction(g *Graph, l EdgeLCA, s int, delta float64, seed Seed) EstimateResult {
	return estimate.EdgeFraction(g, l, s, delta, seed)
}

// EstimateSamplesFor returns the sample count achieving additive error
// epsilon at confidence 1-delta.
func EstimateSamplesFor(epsilon, delta float64) int { return estimate.SamplesFor(epsilon, delta) }

// VerifyStretch checks dist_H(u,v) <= maxStretch for every edge of g.
func VerifyStretch(g, h *Graph, maxStretch int) StretchReport {
	return core.VerifyStretch(g, h, maxStretch)
}

// VerifyStretchSampled checks a sample of g's edges.
func VerifyStretchSampled(g, h *Graph, maxStretch, sample int, seed Seed) StretchReport {
	return core.VerifyStretchSampled(g, h, maxStretch, sample, seed)
}

// VerifyConnectivityPreserved checks that h spans every component of g.
func VerifyConnectivityPreserved(g, h *Graph) error {
	return core.VerifyConnectivityPreserved(g, h)
}

// VerifyMaximalIndependentSet checks independence and maximality.
func VerifyMaximalIndependentSet(g *Graph, in []bool) error {
	return core.VerifyMaximalIndependentSet(g, in)
}

// VerifyMaximalMatching checks matching validity and maximality.
func VerifyMaximalMatching(g, m *Graph) error { return core.VerifyMaximalMatching(g, m) }

// VerifyColoring checks properness with colors in [0, maxColors).
func VerifyColoring(g *Graph, colors []int, maxColors int) error {
	return core.VerifyColoring(g, colors, maxColors)
}

// Workload generators.

// Gnp samples an Erdos-Renyi G(n, p) graph.
func Gnp(n int, p float64, seed Seed) *Graph { return gen.Gnp(n, p, seed) }

// RandomRegular samples a simple d-regular graph.
func RandomRegular(n, d int, seed Seed) (*Graph, error) { return gen.RandomRegular(n, d, seed) }

// ChungLu samples a power-law graph with exponent beta and the given
// average degree.
func ChungLu(n int, beta, avgDeg float64, seed Seed) *Graph {
	return gen.ChungLu(n, beta, avgDeg, seed)
}

// Complete returns the clique K_n.
func Complete(n int) *Graph { return gen.Complete(n) }

// Grid returns the rows x cols grid graph.
func Grid(rows, cols int) *Graph { return gen.Grid(rows, cols) }

// Torus returns the rows x cols torus.
func Torus(rows, cols int) *Graph { return gen.Torus(rows, cols) }

// PlantedClusters returns a stochastic block model graph.
func PlantedClusters(n, k int, pIn, pOut float64, seed Seed) *Graph {
	return gen.PlantedClusters(n, k, pIn, pOut, seed)
}

// DenseCore returns a clique-core-plus-periphery composite.
func DenseCore(n, coreSize int, peripheryDeg float64, seed Seed) *Graph {
	return gen.DenseCore(n, coreSize, peripheryDeg, seed)
}

// Global baselines.

// BaswanaSen runs the global randomized (2k-1)-spanner algorithm.
func BaswanaSen(g *Graph, k int, seed Seed) *Graph { return baseline.BaswanaSen(g, k, seed) }

// GreedySpanner runs the global greedy (2k-1)-spanner algorithm.
func GreedySpanner(g *Graph, k int) *Graph { return baseline.GreedySpanner(g, k) }

// SpanningForest returns a BFS spanning forest.
func SpanningForest(g *Graph) *Graph { return baseline.SpanningForest(g) }

// Load balancing (the RTVX d-choice application).
type (
	// BallsOracle is the probe interface over a balls-and-bins choice
	// structure.
	BallsOracle = balls.Oracle
	// ChoiceTable is a materialized choice structure.
	ChoiceTable = balls.ChoiceTable
	// BallAssignment answers d-choice placement queries.
	BallAssignment = balls.Assignment
)

// NewChoiceTable samples an n-balls/m-bins/d-choices structure.
func NewChoiceTable(n, m, d int, seed Seed) *ChoiceTable {
	return balls.NewChoiceTable(n, m, d, seed)
}

// NewBallAssignment returns the d-choice placement LCA.
func NewBallAssignment(o BallsOracle, seed Seed) *BallAssignment { return balls.New(o, seed) }

// Lower-bound apparatus (Theorem 1.3).
type (
	// LBInstance is a d-regular matching-table instance.
	LBInstance = lowerbound.Instance
	// LBOracle is the cell-level probe oracle over an LBInstance.
	LBOracle = lowerbound.TableOracle
	// LBExperiment measures distinguisher advantage versus probe budget.
	LBExperiment = lowerbound.Experiment
)

// SampleDPlus draws a D+ instance (designated edge removable w.h.p.).
func SampleDPlus(n, d, x, a, y, b int, seed Seed) (*LBInstance, error) {
	return lowerbound.SampleDPlus(n, d, x, a, y, b, seed)
}

// SampleDMinus draws a D- instance (designated edge is the only bridge).
func SampleDMinus(n, d, x, a, y, b int, seed Seed) (*LBInstance, error) {
	return lowerbound.SampleDMinus(n, d, x, a, y, b, seed)
}

// NewLBOracle wraps an instance with probe counting.
func NewLBOracle(inst *LBInstance) *LBOracle { return lowerbound.NewTableOracle(inst) }

// BFSMeet runs the probe-bounded BFS-meet distinguisher.
func BFSMeet(o *LBOracle, budget int) (met bool, probesUsed int) {
	return lowerbound.BFSMeet(o, budget)
}
