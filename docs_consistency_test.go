package lca_test

// Docs-consistency checks: the documentation layer is verified against
// the code it describes, so ARCHITECTURE.md's spec grammar cannot drift
// from source.Parse, docs/WIRE.md cannot drop a wire op, and doc.go
// cannot lose the links. CI runs these by name (see .github/workflows).

import (
	"os"
	"regexp"
	"strings"
	"testing"

	"lca/internal/serve"
	"lca/internal/source"
	"lca/internal/trace"
)

func readDoc(t *testing.T, path string) string {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("documentation file missing: %v", err)
	}
	return string(b)
}

// implicitFamilies are spec families whose example specs open without
// touching the filesystem or network, so the doc examples are parsed for
// real.
var implicitFamilies = map[string]bool{
	"ring": true, "grid": true, "torus": true, "circulant": true, "blockrandom": true,
}

// TestDocsArchitectureSpecGrammar: every spec family the source layer
// understands is documented in ARCHITECTURE.md, and every backticked
// spec example in it parses — fully for implicit families, to a known
// family (never "unknown family") for path/network families.
func TestDocsArchitectureSpecGrammar(t *testing.T) {
	doc := readDoc(t, "ARCHITECTURE.md")
	for _, fam := range source.FamilyNames() {
		if !strings.Contains(doc, "`"+fam+":") {
			t.Errorf("ARCHITECTURE.md does not document a %q spec (want a backticked `%s:...` example)", fam, fam)
		}
	}
	specRe := regexp.MustCompile("`([a-z]+:[^`]+)`")
	checked := 0
	for _, m := range specRe.FindAllStringSubmatch(doc, -1) {
		spec := m[1]
		fam := spec[:strings.Index(spec, ":")]
		switch {
		case implicitFamilies[fam]:
			src, err := source.Parse(spec, 7)
			if err != nil {
				t.Errorf("documented spec %q does not parse: %v", spec, err)
				continue
			}
			if c, ok := src.(source.Closer); ok {
				_ = c.Close()
			}
			checked++
		case fam == "csr" || fam == "edgelist" || fam == "graph" || fam == "file":
			// The documented path does not exist here; the grammar check is
			// that the family resolves (the error is about the file, never
			// an unknown family).
			if _, err := source.Parse(spec, 7); err == nil {
				t.Errorf("documented spec %q unexpectedly opened", spec)
			} else if strings.Contains(err.Error(), "unknown family") {
				t.Errorf("documented spec %q names an unknown family: %v", spec, err)
			}
			checked++
		case fam == "remote" || fam == "sharded" || fam == "http" || fam == "https":
			// Network specs are not dialed from a docs test; the family
			// names must still be real.
			if fam != "http" && fam != "https" {
				found := false
				for _, known := range source.FamilyNames() {
					if known == fam {
						found = true
					}
				}
				if !found {
					t.Errorf("documented spec %q names unknown family %q", spec, fam)
				}
				checked++
			}
		}
	}
	if checked < len(source.FamilyNames()) {
		t.Errorf("only %d spec examples found in ARCHITECTURE.md for %d families; the grammar table looks incomplete",
			checked, len(source.FamilyNames()))
	}
	// The failure-semantics and adaptive-transport knobs must be
	// documented where the grammar is.
	for _, token := range []string{
		"cache=", "hedge=", "rendezvous", "failover",
		"hedge=adaptive", "hedgefloor=", "hedgeceil=",
		"rowfull", "row_full", "RowFetcher", "FetchWidth", "RemainderTrips",
	} {
		if !strings.Contains(doc, token) {
			t.Errorf("ARCHITECTURE.md does not mention %q", token)
		}
	}
}

// TestDocsWireProtocol: docs/WIRE.md documents every wire op, endpoint,
// meta field and the error envelope.
func TestDocsWireProtocol(t *testing.T) {
	doc := readDoc(t, "docs/WIRE.md")
	for _, op := range []string{source.OpDegree, source.OpNeighbor, source.OpAdjacency, source.OpRandomEdge, source.OpRowFull} {
		if !strings.Contains(doc, "`"+op+"`") {
			t.Errorf("docs/WIRE.md does not document the %q op", op)
		}
	}
	for _, token := range []string{
		"/probe/meta", "POST /probe", "GET  /probe",
		`"n"`, `"m"`, `"max_degree"`, `"random_edge"`, `"row_full"`,
		`"row"`, `"rows"`, `"shards"`,
		`"error"`, `"status"`, "65536",
		"`400`", "`404`", "`429`", "`5xx`", "`200`",
		// The trace-propagation contract: header name, span fields, and
		// the optionality guidance third-party shards rely on.
		trace.Header, `"trace"`, `"start_us"`, `"duration_us"`,
		`"parent"`, `"tags"`, "16 hex", "8 hex",
	} {
		if !strings.Contains(doc, token) {
			t.Errorf("docs/WIRE.md does not mention %s", token)
		}
	}
}

// TestDocsServingTier: the serving-tier contract — auth headers, the
// metrics endpoint, the 401/429 statuses, the envelope's request_id
// field and the tenant config keys — is documented in docs/WIRE.md and
// ARCHITECTURE.md with the code's own names.
func TestDocsServingTier(t *testing.T) {
	wire := readDoc(t, "docs/WIRE.md")
	for _, token := range []string{
		serve.TokenHeader, serve.RequestIDHeader, serve.MetricsPath,
		serve.TracesPath, "trace=1", "trace_id",
		"Authorization: Bearer", "`401`", "`429`", "Retry-After",
		`"request_id"`, "?format=text",
		`"probe_budget"`, `"round_trip_budget"`, `"qps"`, `"burst"`,
	} {
		if !strings.Contains(wire, token) {
			t.Errorf("docs/WIRE.md does not mention %s", token)
		}
	}
	arch := readDoc(t, "ARCHITECTURE.md")
	for _, token := range []string{
		serve.MetricsPath, serve.TokenHeader, serve.RequestIDHeader,
		"internal/metrics", "cmd/lcaload", "coalesc",
		"oracle.NewLimit", "oracle.NewLimitTrips",
		"serve_queries_total", "tenant_budget_rejected_total",
	} {
		if !strings.Contains(arch, token) {
			t.Errorf("ARCHITECTURE.md does not mention %s", token)
		}
	}
}

// TestDocsObservability: the tracing plane's surface — endpoints, the
// wire header, the lcaserve knobs, the slow-query log and the debug
// listener — is documented in ARCHITECTURE.md and the doc.go runbook.
func TestDocsObservability(t *testing.T) {
	arch := readDoc(t, "ARCHITECTURE.md")
	for _, token := range []string{
		"internal/trace", serve.TracesPath, trace.Header,
		"slow-query", "?trace=1", "-trace-sample",
		"serve_traces_total", "serve_slow_queries_total",
		"-debug-addr", "pprof", "/debug/vars", "-log-format",
	} {
		if !strings.Contains(arch, token) {
			t.Errorf("ARCHITECTURE.md does not mention %s", token)
		}
	}
	docGo := readDoc(t, "doc.go")
	for _, token := range []string{
		trace.Header, serve.TracesPath, "trace=1", "WithTracer",
		"-trace-sample", "-debug-addr", "/debug/pprof", "/debug/vars",
	} {
		if !strings.Contains(docGo, token) {
			t.Errorf("doc.go runbook does not mention %s", token)
		}
	}
}

// TestDocsTrustPlane: the trust plane's surface — the attest=1 wire
// extension and its proof fields, the #root= pin grammar, the
// distrusted health state, the attestation metrics, and the audit-log
// replay loop — is documented in docs/WIRE.md, ARCHITECTURE.md and the
// doc.go runbook with the code's own names.
func TestDocsTrustPlane(t *testing.T) {
	wire := readDoc(t, "docs/WIRE.md")
	for _, token := range []string{
		"attest=1", "`commitment`", "`row`", "`proof`", "`rows`", "`proofs`",
		"#root=", "ErrAttestation", "HMAC-SHA256", "Merkle",
		source.ShardDistrusted, "internal/attest",
	} {
		if !strings.Contains(wire, token) {
			t.Errorf("docs/WIRE.md does not mention %s", token)
		}
	}
	arch := readDoc(t, "ARCHITECTURE.md")
	for _, token := range []string{
		"Trust plane", "internal/attest", "NewAttested", "#root=HEX",
		"attest=1", "ErrAttestation", "Attestor", "AttestCounter",
		source.ShardDistrusted, "SpotCheck",
		"attest_fail", "proof_bytes",
		"serve_attest_failures_total", "serve_proof_bytes_total",
		"-audit-log", "-audit-key", "-replay", "-chaos lie",
	} {
		if !strings.Contains(arch, token) {
			t.Errorf("ARCHITECTURE.md does not mention %s", token)
		}
	}
	docGo := readDoc(t, "doc.go")
	for _, token := range []string{
		"internal/attest", "NewAttested", "#root=HEX", "ErrAttestation",
		source.ShardDistrusted, "SpotCheck", "attest_fail",
		"serve_attest_failures_total",
		"-attest", "-audit-log", "-audit-key", "-replay", "-chaos lie",
	} {
		if !strings.Contains(docGo, token) {
			t.Errorf("doc.go runbook does not mention %s", token)
		}
	}
}

// TestDocsHotPath: the hot local path's surface — the mmap spec knob
// and its fallback error, the tiered row-cache layer with its eviction
// policies and session switch, the LocalityReporter capability with its
// QueryStats fields and serve counters, and the bench columns CI gates —
// is documented in ARCHITECTURE.md and the doc.go quickstart with the
// code's own names.
func TestDocsHotPath(t *testing.T) {
	arch := readDoc(t, "ARCHITECTURE.md")
	for _, token := range []string{
		"Hot local path", "csr_mmap.go", "OpenCSRMmap", "mmap=1",
		"ErrMmapUnsupported",
		"rowcache.go", "TieredOracle", "WithRowCache",
		"EvictLRU", "EvictClock", "arena",
		"LocalityReporter", "PageTouches", "LocalHits",
		"page_touches", "local_hits",
		"serve_page_touches_total", "serve_local_hits_total",
		"ns/probe", "allocs/probe",
	} {
		if !strings.Contains(arch, token) {
			t.Errorf("ARCHITECTURE.md does not mention %s", token)
		}
	}
	docGo := readDoc(t, "doc.go")
	for _, token := range []string{
		"mmap=1", "WithRowCache", "page_touches", "local_hits",
		"ns/probe", "allocs/probe",
	} {
		if !strings.Contains(docGo, token) {
			t.Errorf("doc.go quickstart does not mention %s", token)
		}
	}
}

// TestDocsLinkedFromDocGo: the package documentation points at both
// documents, and the documents point at each other.
func TestDocsLinkedFromDocGo(t *testing.T) {
	docGo := readDoc(t, "doc.go")
	for _, want := range []string{"ARCHITECTURE.md", "docs/WIRE.md"} {
		if !strings.Contains(docGo, want) {
			t.Errorf("doc.go does not link %s", want)
		}
	}
	arch := readDoc(t, "ARCHITECTURE.md")
	if !strings.Contains(arch, "docs/WIRE.md") {
		t.Error("ARCHITECTURE.md does not link docs/WIRE.md")
	}
	if !strings.Contains(readDoc(t, "ROADMAP.md"), "ARCHITECTURE.md") {
		t.Error("ROADMAP.md does not link ARCHITECTURE.md")
	}
}
