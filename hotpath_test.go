package lca_test

// Acceptance tests for the hot local path: the tiered row caches (L1
// arena-backed per-chain store, shared bounded L2) must keep the whole
// session inside the same O(1)-per-query, bounded-heap envelope the
// plain probe path already honors — the caches trade probes for memory,
// but only a fixed amount of it. Companion per-probe pins (zero allocs
// on the implicit and mmap scalar probe paths) live in
// internal/source/alloc_test.go and internal/oracle/rowcache_test.go;
// this file holds the public-API end of the contract.

import (
	"runtime"
	"testing"

	"lca"
)

// TestTieredSessionBoundedHeap runs the TestHugeSourceBoundedAllocs
// workload through a WithRowCache session: mis vertex queries and
// spanner3 edge queries over a 10^8-vertex implicit source, striding
// across the vertex set so the caches keep evicting and the L1 arena
// keeps resetting. Allocations per query stay O(1) and total heap
// growth stays under the subsystem's 64 MB bound — the arena abandons
// overflowed blocks to the GC instead of pinning them, and the L2
// recycles evicted row buffers instead of leaking them.
func TestTieredSessionBoundedHeap(t *testing.T) {
	const n = 100_000_000
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)

	src, err := lca.OpenSource("ring:n=100_000_000", 7)
	if err != nil {
		t.Fatal(err)
	}
	s := lca.NewSessionFromSource(src, lca.WithSeed(2019), lca.WithRowCache(4096))

	if _, err := s.Vertex("mis", n/2); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Edge("spanner3", n/3, n/3+1); err != nil {
		t.Fatal(err)
	}

	v := 1
	allocs := testing.AllocsPerRun(500, func() {
		if _, err := s.Vertex("mis", v); err != nil {
			t.Fatal(err)
		}
		v = (v + 199_999_991) % n // coprime stride: fresh vertices, cold caches
	})
	if allocs > 300 {
		t.Errorf("mis Vertex through row cache: %.0f allocs/query, want O(1)", allocs)
	}

	u := 1
	allocs = testing.AllocsPerRun(500, func() {
		if _, err := s.Edge("spanner3", u, u+1); err != nil {
			t.Fatal(err)
		}
		u = (u + 199_999_991) % (n - 1)
	})
	if allocs > 300 {
		t.Errorf("spanner3 Edge through row cache: %.0f allocs/query, want O(1)", allocs)
	}

	runtime.GC()
	runtime.ReadMemStats(&after)
	// Same bound as the cache-free path: the L1 store caps its row count
	// and the L2 caps its slots, so tiering a 1e8-vertex source must not
	// cost more than a small constant footprint.
	const maxHeapGrowth = 64 << 20
	if growth := int64(after.HeapAlloc) - int64(before.HeapAlloc); growth > maxHeapGrowth {
		t.Errorf("heap grew %d bytes with row caches on, want < %d", growth, maxHeapGrowth)
	}
}

// TestTieredSessionAnswersUnchanged pins the semantic half of the cache
// contract on the public API: a WithRowCache session (with and without
// prefetch stacked above it) answers exactly what the plain session
// answers, with identical probe counts in the session stats.
func TestTieredSessionAnswersUnchanged(t *testing.T) {
	src := func() lca.Source {
		s, err := lca.OpenSource("circulant:n=3000,d=6,seed=11", 7)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	plain := lca.NewSessionFromSource(src(), lca.WithSeed(42))
	tiered := lca.NewSessionFromSource(src(), lca.WithSeed(42), lca.WithRowCache(256))
	both := lca.NewSessionFromSource(src(), lca.WithSeed(42), lca.WithRowCache(256), lca.WithPrefetch(true))

	for i := 0; i < 120; i++ {
		v := (i * 977) % 3000
		want, err := plain.Vertex("mis", v)
		if err != nil {
			t.Fatal(err)
		}
		for name, s := range map[string]*lca.Session{"tiered": tiered, "tiered+prefetch": both} {
			got, err := s.Vertex("mis", v)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("%s: mis(%d) = %v, plain session says %v", name, v, got, want)
			}
		}
	}
	// The tiered chain must not change how many probes the algorithm
	// issues — caches sit below the oracle's counter, not above it.
	ps, err := plain.ProbeStats("mis")
	if err != nil {
		t.Fatal(err)
	}
	ts, err := tiered.ProbeStats("mis")
	if err != nil {
		t.Fatal(err)
	}
	if ps.Total() != ts.Total() {
		t.Errorf("probe counts diverge: plain %d, tiered %d", ps.Total(), ts.Total())
	}
}
