// Conflict scheduling with classical LCAs on a bounded-degree graph.
//
// A wireless mesh: towers on a torus grid with a few extra long-range
// links. Three LCAs answer per-tower scheduling questions without any
// central computation:
//
//   - MIS:      which towers may transmit in the current slot,
//   - matching: disjoint tower pairs for a pairwise calibration protocol,
//   - coloring: a frequency plan with at most Delta+1 channels.
//
// Every answer is consistent with one global solution fixed by the seed;
// towers answering independently never conflict. This is the sparse
// regime (Delta = O(1)) where the classical LCAs shine.
//
//	go run ./examples/scheduler
package main

import (
	"fmt"

	"lca"
)

func main() {
	const rows, cols = 40, 40
	const seed = lca.Seed(99)

	// Torus mesh plus a sprinkle of long-range interference edges.
	base := lca.Torus(rows, cols)
	b := lca.NewGraphBuilder(base.N())
	for _, e := range base.Edges() {
		b.AddEdge(e.U, e.V)
	}
	for i := 0; i < 200; i++ {
		u := (i * 7919) % base.N()
		v := (i*104729 + 13) % base.N()
		if u != v {
			b.AddEdge(u, v)
		}
	}
	g := b.Build()
	fmt.Printf("mesh: %d towers, %d interference edges, max degree %d\n", g.N(), g.M(), g.MaxDegree())

	// Per-tower queries: each tower computes its own slot/partner/channel.
	misLCA := lca.NewMIS(lca.NewOracle(g), seed)
	matchLCA := lca.NewMatching(lca.NewOracle(g), seed)
	colorLCA := lca.NewColoring(lca.NewOracle(g), seed)

	fmt.Println("\nper-tower decisions (computed independently, no coordination):")
	for _, tower := range []int{0, 777, 1599} {
		before := misLCA.ProbeStats()
		transmit := misLCA.QueryVertex(tower)
		misProbes := misLCA.ProbeStats().Sub(before).Total()
		partner := -1
		for i := 0; i < g.Degree(tower); i++ {
			w := g.Neighbor(tower, i)
			if matchLCA.QueryEdge(tower, w) {
				partner = w
				break
			}
		}
		channel := colorLCA.QueryLabel(tower)
		fmt.Printf("  tower %4d: transmit=%5v (in %d probes)  calibration partner=%5d  channel=%d\n",
			tower, transmit, misProbes, partner, channel)
	}

	// Global audit: materialize all three solutions and verify that the
	// independently computed answers really are conflict-free.
	fmt.Println("\nglobal audit:")
	in, misStats := lca.BuildVertexSet(g, misLCA)
	if err := lca.VerifyMaximalIndependentSet(g, in); err != nil {
		fmt.Println("  MIS INVALID:", err)
		return
	}
	count := 0
	for _, x := range in {
		if x {
			count++
		}
	}
	fmt.Printf("  transmit set: %d towers, independent and maximal (mean %.1f probes/query)\n",
		count, misStats.Mean())

	m, _ := lca.BuildSubgraph(g, matchLCA)
	if err := lca.VerifyMaximalMatching(g, m); err != nil {
		fmt.Println("  matching INVALID:", err)
		return
	}
	fmt.Printf("  calibration pairs: %d disjoint pairs, maximal\n", m.M())

	colors, _ := lca.BuildLabels(g, colorLCA)
	if err := lca.VerifyColoring(g, colors, g.MaxDegree()+1); err != nil {
		fmt.Println("  coloring INVALID:", err)
		return
	}
	used := map[int]bool{}
	for _, c := range colors {
		used[c] = true
	}
	fmt.Printf("  frequency plan: proper with %d channels (Delta+1 = %d)\n", len(used), g.MaxDegree()+1)
	fmt.Println("audit: PASS — every local answer is a slice of one coherent global schedule")
}
