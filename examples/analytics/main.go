// Sublinear analytics: answer "how big is the solution?" without ever
// computing the solution.
//
// Because an LCA decides each element's membership locally, a solution's
// size is the mean of Bernoulli samples — so a dashboard can report the
// MIS size, matching size and spanner density of a large graph from a few
// hundred sampled queries, with Hoeffding confidence intervals, in
// milliseconds. This example runs the estimates, then pays the full
// assembly cost once to show the intervals were honest.
//
//	go run ./examples/analytics
package main

import (
	"fmt"
	"time"

	"lca"
)

func main() {
	const seed = lca.Seed(7)
	g := lca.PlantedClusters(4000, 8, 0.012, 0.0008, 3)
	fmt.Printf("graph: n=%d m=%d maxdeg=%d\n\n", g.N(), g.M(), g.MaxDegree())

	samples := lca.EstimateSamplesFor(0.04, 0.01) // ±4%% at 99%% confidence
	fmt.Printf("sampling plan: %d queries per metric (±4%% additive, 99%% confidence)\n\n", samples)

	// --- Estimates (sublinear) ---
	start := time.Now()
	misLCA := lca.NewMIS(lca.NewOracle(g), seed)
	misEst := lca.EstimateVertexFraction(g.N(), misLCA, samples, 0.01, 11)
	matchLCA := lca.NewMatching(lca.NewOracle(g), seed)
	coverEst := lca.EstimateVertexFraction(g.N(), matchLCA, samples, 0.01, 13)
	spanLCA := lca.NewSpanner3(lca.NewOracle(g), seed)
	densEst := lca.EstimateEdgeFraction(g, spanLCA, samples, 0.01, 17)
	estElapsed := time.Since(start)

	misCount, misRad := misEst.Scale(g.N())
	coverCount, coverRad := coverEst.Scale(g.N())
	fmt.Printf("estimated in %v:\n", estElapsed.Round(time.Millisecond))
	fmt.Printf("  MIS size:            %6.0f ± %.0f vertices\n", misCount, misRad)
	fmt.Printf("  matched vertices:    %6.0f ± %.0f  (matching ~ %.0f ± %.0f edges)\n",
		coverCount, coverRad, coverCount/2, coverRad/2)
	fmt.Printf("  3-spanner density:   %6.1f%% ± %.1f%% of %d edges\n\n",
		100*densEst.Fraction, 100*densEst.ErrorBound, g.M())

	// --- Ground truth (linear; what the estimates let you avoid) ---
	start = time.Now()
	in, _ := lca.BuildVertexSet(g, lca.NewMIS(lca.NewOracle(g), seed))
	misTrue := 0
	for _, b := range in {
		if b {
			misTrue++
		}
	}
	m, _ := lca.BuildSubgraph(g, lca.NewMatching(lca.NewOracle(g), seed))
	spanMemo := lca.NewSpanner3Config(lca.NewOracle(g), seed, lca.SpannerConfig{Memo: true})
	h, _ := lca.BuildSubgraph(g, spanMemo)
	truthElapsed := time.Since(start)

	fmt.Printf("ground truth in %v (full assembly):\n", truthElapsed.Round(time.Millisecond))
	fmt.Printf("  MIS size:            %6d   (estimate %s)\n", misTrue, verdict(float64(misTrue), misCount, misRad))
	fmt.Printf("  matching edges:      %6d   (estimate %s)\n", m.M(), verdict(float64(m.M()), coverCount/2, coverRad/2))
	trueDens := float64(h.M()) / float64(g.M())
	fmt.Printf("  3-spanner density:   %6.1f%% (estimate %s)\n\n",
		100*trueDens, verdict(trueDens, densEst.Fraction, densEst.ErrorBound))

	if truthElapsed > estElapsed {
		fmt.Printf("speedup: estimates were %.0fx faster than assembly — and the gap widens with n.\n",
			float64(truthElapsed)/float64(estElapsed))
	}
}

func verdict(truth, est, rad float64) string {
	if truth >= est-rad && truth <= est+rad {
		return "within the interval: honest"
	}
	return "OUTSIDE the interval"
}
