// Social-network backbone: spanner LCAs on a heavy-tailed graph.
//
// The scenario the spanner papers motivate: a graph too large to hand to
// one machine, where a routing or visualization layer wants a sparse
// distance-preserving backbone. The LCA answers "is this friendship edge
// on the backbone?" on demand — here on a Chung-Lu power-law graph with
// hubs, the regime (Delta = n^{Omega(1)}) where classical per-vertex LCAs
// break down but the spanner constructions stay sublinear.
//
//	go run ./examples/socialnet
package main

import (
	"fmt"
	"math"

	"lca"
)

func main() {
	const n = 3000
	const seed = lca.Seed(2019)

	// A dense interaction graph (mutual-engagement edges among active
	// users): heavy-tailed with m >> n^{3/2} is the regime where a
	// 3-spanner has room to sparsify at all — below that budget the
	// correct spanner is the graph itself.
	g := lca.ChungLu(n, 2.2, 120, 5)
	fmt.Printf("social graph: n=%d m=%d max degree %d (heavy tail)\n", g.N(), g.M(), g.MaxDegree())

	// Hub edges are the expensive ones for naive approaches: answering
	// through a hub of degree Delta would read Delta entries. The 3-spanner
	// LCA's bill stays ~n^{3/4} regardless.
	span := lca.NewSpanner3(lca.NewOracle(g), seed)
	hub := 0 // Chung-Lu assigns the largest expected degree to vertex 0
	for i := 0; i < g.Degree(hub) && i < 3; i++ {
		w := g.Neighbor(hub, i)
		before := span.ProbeStats()
		in := span.QueryEdge(hub, w)
		probes := span.ProbeStats().Sub(before).Total()
		fmt.Printf("  hub edge (%d,%d) [deg %d,%d]: backbone=%v, %d probes (vs %d to read the hub's list)\n",
			hub, w, g.Degree(hub), g.Degree(w), in, probes, g.Degree(hub))
	}

	// Quality comparison on the dense interaction core (the subcommunity
	// of highly active users, m >> n^{3/2}): here a 3-spanner genuinely
	// sparsifies, and the LCA's log-factor overhead versus the global
	// algorithms becomes visible.
	core := lca.Gnp(1000, 0.5, seed.Derive(1))
	fmt.Printf("\nbackbone quality on the dense core (n=%d, m=%d), assembled for audit:\n", core.N(), core.M())
	memo := lca.NewSpanner3Config(lca.NewOracle(core), seed, lca.SpannerConfig{Memo: true})
	hLCA, _ := lca.BuildSubgraph(core, memo)
	hBS := lca.BaswanaSen(core, 2, seed)
	hGreedy := lca.GreedySpanner(core, 2)
	for _, row := range []struct {
		name  string
		model string
		h     *lca.Graph
	}{
		{"LCA 3-spanner", "local queries", hLCA},
		{"Baswana-Sen k=2", "global pass", hBS},
		{"greedy 3-spanner", "global, quadratic-ish", hGreedy},
	} {
		rep := lca.VerifyStretchSampled(core, row.h, 3, 4000, seed)
		fmt.Printf("  %-18s %-22s |H| = %6d (%.1f%% of m)  stretch<=3 ok=%v (max %d)\n",
			row.name, row.model, row.h.M(), 100*float64(row.h.M())/float64(core.M()),
			rep.Violations == 0, rep.MaxStretch)
	}

	// Distance preservation in use: pick pairs and compare core distance
	// with backbone distance.
	fmt.Println("\nspot-check distances (core vs backbone):")
	for _, pair := range [][2]int{{100, 900}, {50, 500}, {7, 222}} {
		dg := core.Dist(pair[0], pair[1], -1)
		dh := hLCA.Dist(pair[0], pair[1], -1)
		fmt.Printf("  dist(%4d,%4d): core=%d backbone=%d\n", pair[0], pair[1], dg, dh)
	}

	// The probe bill scales like n^{3/4}: show the trend on hub-incident
	// queries (the expensive ones).
	fmt.Println("\nprobe bill vs network size (worst observed over 60 hub-edge queries):")
	for _, size := range []int{1000, 2000, 4000, 8000} {
		gg := lca.ChungLu(size, 2.2, 120, 5)
		s := lca.NewSpanner3(lca.NewOracle(gg), seed)
		var worst uint64
		const queries = 60
		for i := 0; i < queries; i++ {
			hubV := i % 50 // low indices carry the heavy tail in Chung-Lu
			w := gg.Neighbor(hubV, (i*31)%gg.Degree(hubV))
			before := s.ProbeStats()
			s.QueryEdge(hubV, w)
			if d := s.ProbeStats().Sub(before).Total(); d > worst {
				worst = d
			}
		}
		fmt.Printf("  n=%5d (m=%7d): %7d probes worst-case  (n^{3/4} = %.0f)\n",
			size, gg.M(), worst, math.Pow(float64(size), 0.75))
	}
}
