// Why sublinear probes are the best possible: the Theorem 1.3 lower bound,
// live.
//
// Two worlds share one designated edge (x,a,y,b) of a d-regular graph. In
// world D+ the edge is redundant (its endpoints stay connected without
// it); in world D- it is the only bridge between two halves. A spanner
// LCA answering "keep this edge?" must say NO somewhere on D+ (else it
// keeps everything) and must say YES on every D- instance (else it
// disconnects the graph) — so it must tell the worlds apart. This demo
// shows that distinguishing them takes Theta(sqrt(n)) probes: the
// birthday bound at which two BFS balls collide.
//
//	go run ./examples/probes
package main

import (
	"fmt"
	"math"

	"lca"
)

func main() {
	const n, d = 1024, 4
	const x, a, y, b = 3, 1, 515, 2

	fmt.Printf("instances: %d-regular on n=%d, designated edge (%d,%d)-(%d,%d)\n\n", d, n, x, a, y, b)

	// One instance from each world. The probe interface is identical; only
	// the hidden matching differs.
	plus, err := lca.SampleDPlus(n, d, x, a, y, b, 7)
	if err != nil {
		panic(err)
	}
	// D- needs (n/2)*d-1 even: n=1024 gives 512*4-1 odd, so use d=5 halves
	// compatible sizing: n=1022 (511*5-1 = 2554 even).
	minus, err := lca.SampleDMinus(1022, 5, x, a, y, b, 7)
	if err != nil {
		panic(err)
	}

	fmt.Println("BFS-meet distinguisher (explores both sides of the edge, guesses '+' on contact):")
	fmt.Printf("%10s  %14s  %14s\n", "budget", "D+ verdict", "D- verdict")
	sqrtN := math.Sqrt(n)
	for _, frac := range []float64{0.25, 1, 4, 16} {
		budget := int(frac * sqrtN)
		metPlus, usedPlus := lca.BFSMeet(lca.NewLBOracle(plus), budget)
		metMinus, _ := lca.BFSMeet(lca.NewLBOracle(minus), budget)
		fmt.Printf("%7d (%4.2f*sqrt n)  met=%-5v (%4d probes)   met=%v\n",
			budget, frac, metPlus, usedPlus, metMinus)
	}

	// The aggregate picture: advantage as a function of budget over many
	// fresh D+ draws.
	fmt.Println("\nadvantage curve over 30 fresh D+ instances:")
	exp := lca.LBExperiment{N: n, D: d, MaxBudget: int(16 * sqrtN), Trials: 30, Seed: 11}
	budgets := []int{int(sqrtN / 4), int(sqrtN), int(4 * sqrtN), int(16 * sqrtN)}
	pts, err := exp.Run(budgets)
	if err != nil {
		panic(err)
	}
	for _, p := range pts {
		bar := ""
		for i := 0; i < int(p.Advantage*40); i++ {
			bar += "#"
		}
		fmt.Printf("  budget %5d (%5.2f*sqrt n): advantage %.2f %s\n",
			p.Budget, float64(p.Budget)/sqrtN, p.Advantage, bar)
	}
	fmt.Println("\nreading: below ~sqrt(n) probes the worlds are indistinguishable, so no")
	fmt.Println("LCA with o(sqrt(n)) probes can output a sparse spanning subgraph — the")
	fmt.Printf("Omega(min{sqrt(n), n^2/m}) lower bound of Theorem 1.3. The 3-spanner LCA's\n")
	fmt.Printf("~n^{3/4} probe bill is thus within n^{1/4}*polylog of optimal.\n")
}
