// Quickstart: the LCA "illusion" in five steps, through the Session API.
//
// A 3-spanner of a dense graph is fixed by nothing more than a 64-bit
// seed; individual edges can be tested for membership with a few hundred
// probes each, and the answers are mutually consistent — assembling them
// all yields one coherent low-stretch spanner. A Session is the front
// door: it owns the oracle, the seed and the probe accounting, and any
// registered algorithm is reachable by name.
//
//	go run ./examples/quickstart
package main

import (
	"errors"
	"fmt"

	"lca"
)

func main() {
	const n = 2000
	const seed = lca.Seed(42)

	// 1. A dense graph we never want to read in full.
	g := lca.Gnp(n, 0.08, 7)
	fmt.Printf("graph: n=%d, m=%d edges, max degree %d\n", g.N(), g.M(), g.MaxDegree())

	// 2. The session: all it holds is the graph handle and the seed. Every
	// registered algorithm answers through it by name.
	s := lca.NewSession(g, lca.WithSeed(seed))
	fmt.Print("catalog:")
	for _, a := range s.Algos() {
		fmt.Printf(" %s", a.Name)
	}
	fmt.Println()

	// 3. Query a few edges — each answer costs a probe bill that is
	// sublinear in n, not a pass over the graph.
	edges := g.Edges()
	for _, e := range []lca.Edge{edges[0], edges[len(edges)/2], edges[len(edges)-1]} {
		before, _ := s.ProbeStats("spanner3")
		in, err := s.Edge("spanner3", e.U, e.V)
		if err != nil {
			panic(err)
		}
		after, _ := s.ProbeStats("spanner3")
		fmt.Printf("  edge (%4d,%4d): in spanner = %-5v  [%d probes, graph has %d edges]\n",
			e.U, e.V, in, after.Sub(before).Total(), g.M())
	}

	// 4. A second session with the same seed answers identically — the
	// spanner is a pure function of (graph, seed). This is why replicas
	// sharing a seed serve slices of one global solution.
	twin := lca.NewSession(g, lca.WithSeed(seed))
	agree := true
	for _, e := range edges[:200] {
		a, err1 := twin.Edge("spanner3", e.U, e.V)
		b, err2 := s.Edge("spanner3", e.U, e.V)
		if err1 != nil || err2 != nil {
			panic(errors.Join(err1, err2))
		}
		if a != b {
			agree = false
			break
		}
	}
	fmt.Printf("independent session, same seed, first 200 edges: agree = %v\n", agree)

	// 5. Materialize a whole spanner (something a real deployment never
	// does) and verify the global guarantees the per-edge answers imply.
	// Sparsification is most dramatic where the n^{3/2} bound bites, i.e.
	// m >> n^{3/2}: audit on a clique. Batch builds memoize automatically
	// where the algorithm supports it, amortizing the probe bill.
	audit := lca.Complete(400)
	auditSession := lca.NewSession(audit, lca.WithSeed(seed))
	h, stats, err := auditSession.BuildSubgraph("spanner3")
	if err != nil {
		panic(err)
	}
	rep := lca.VerifyStretch(audit, h, 3)
	fmt.Printf("audit on K%d: %d of %d edges kept (%.1f%%), stretch <= 3 on all %d edges: %v\n",
		audit.N(), h.M(), audit.M(), 100*float64(h.M())/float64(audit.M()), rep.Checked, rep.Violations == 0)
	fmt.Printf("harness issued %d queries; max %d probes for any single query\n",
		stats.Queries, stats.MaxTotal)
}
