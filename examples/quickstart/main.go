// Quickstart: the LCA "illusion" in five steps.
//
// A 3-spanner of a dense graph is fixed by nothing more than a 64-bit
// seed; individual edges can be tested for membership with a few hundred
// probes each, and the answers are mutually consistent — assembling them
// all yields one coherent low-stretch spanner.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"lca"
)

func main() {
	const n = 2000
	const seed = lca.Seed(42)

	// 1. A dense graph we never want to read in full.
	g := lca.Gnp(n, 0.08, 7)
	fmt.Printf("graph: n=%d, m=%d edges, max degree %d\n", g.N(), g.M(), g.MaxDegree())

	// 2. The LCA: all it holds is the oracle handle and the seed.
	span := lca.NewSpanner3(lca.NewOracle(g), seed)

	// 3. Query a few edges — each answer costs a probe bill that is
	// sublinear in n, not a pass over the graph.
	edges := g.Edges()
	for _, e := range []lca.Edge{edges[0], edges[len(edges)/2], edges[len(edges)-1]} {
		before := span.ProbeStats()
		in := span.QueryEdge(e.U, e.V)
		probes := span.ProbeStats().Sub(before).Total()
		fmt.Printf("  edge (%4d,%4d): in spanner = %-5v  [%d probes, graph has %d edges]\n",
			e.U, e.V, in, probes, g.M())
	}

	// 4. A second instance with the same seed answers identically — the
	// spanner is a pure function of (graph, seed).
	twin := lca.NewSpanner3(lca.NewOracle(g), seed)
	agree := true
	for _, e := range edges[:200] {
		if twin.QueryEdge(e.U, e.V) != span.QueryEdge(e.U, e.V) {
			agree = false
			break
		}
	}
	fmt.Printf("independent instance, same seed, first 200 edges: agree = %v\n", agree)

	// 5. Materialize a whole spanner (something a real deployment never
	// does) and verify the global guarantees the per-edge answers imply.
	// Sparsification is most dramatic where the n^{3/2} bound bites, i.e.
	// m >> n^{3/2}: audit on a clique.
	audit := lca.Complete(400)
	memo := lca.NewSpanner3Config(lca.NewOracle(audit), seed, lca.SpannerConfig{Memo: true})
	h, stats := lca.BuildSubgraph(audit, memo)
	rep := lca.VerifyStretch(audit, h, 3)
	fmt.Printf("audit on K%d: %d of %d edges kept (%.1f%%), stretch <= 3 on all %d edges: %v\n",
		audit.N(), h.M(), audit.M(), 100*float64(h.M())/float64(audit.M()), rep.Checked, rep.Violations == 0)
	fmt.Printf("harness issued %d queries; max %d probes for any single query\n",
		stats.Queries, stats.MaxTotal)
}
