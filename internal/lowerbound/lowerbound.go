// Package lowerbound implements the experimental apparatus of paper §6
// (Theorem 1.3): the Omega(min{sqrt(n), n/d}) probe lower bound for LCAs
// that compute any sparse spanning subgraph.
//
// Instances are d-regular graphs presented as perfect matchings over an
// n x d cell table, exactly as in the proof: the Neighbor probe on (v,i)
// returns the matched cell (u,j). Two distributions share a designated
// edge (x,a,y,b):
//
//	D+: a uniform(ish) matching over all cells conditioned on the
//	    designated pair being matched — removing the edge w.h.p. keeps x
//	    and y connected.
//	D-: the vertex set is split into two halves containing x and y; all
//	    other pairs match within a half — the designated edge is the only
//	    bridge, so removing it disconnects x from y.
//
// Any spanner LCA dropping the designated edge on D+ must keep it on D-,
// so its probe count is lower-bounded by the budget at which the two
// distributions become distinguishable. The package measures that
// empirically: a BFS-meet distinguisher explores both endpoints' sides and
// reports whether they touch; its advantage stays near zero until the
// probe budget reaches the min{sqrt(n), n/d} scale (the birthday bound),
// reproducing the theorem's shape.
//
// The uniform sampling uses shuffle-and-repair: defective pairs
// (self-loops, parallel edges) are re-drawn until the instance is simple.
// This conditions slightly on simplicity relative to the paper's exact
// processes P+/P-, which is immaterial for the measured shapes (the paper
// itself discusses the O(d^2/n) fraction of non-simple instances).
package lowerbound

import (
	"fmt"

	"lca/internal/graph"
	"lca/internal/rnd"
)

// Cell addresses one slot of the matching table: slot I of vertex V.
type Cell struct {
	V, I int
}

// Instance is a d-regular graph in matching-table form.
type Instance struct {
	n, d int
	mate []Cell // mate[v*d+i] is the cell matched to (v,i)
	// The designated edge.
	X, A, Y, B int
	// half[v] is 0 or 1 for D- instances, all zero for D+.
	half []int
}

// N returns the number of vertices.
func (in *Instance) N() int { return in.n }

// D returns the regular degree.
func (in *Instance) D() int { return in.d }

// Mate returns the cell matched to (v, i).
func (in *Instance) Mate(v, i int) Cell { return in.mate[v*in.d+i] }

// Half returns v's side (always 0 for D+ instances).
func (in *Instance) Half(v int) int { return in.half[v] }

// ToGraph materializes the instance as a simple graph for verification.
func (in *Instance) ToGraph() *graph.Graph {
	b := graph.NewBuilder(in.n)
	for v := 0; v < in.n; v++ {
		for i := 0; i < in.d; i++ {
			m := in.Mate(v, i)
			b.AddEdge(v, m.V)
		}
	}
	return b.Build()
}

// SampleDPlus draws an instance from D+ with the designated edge
// (x, a, y, b). It requires n*d even, 0 <= a,b < d and x != y.
func SampleDPlus(n, d, x, a, y, b int, seed rnd.Seed) (*Instance, error) {
	return sample(n, d, x, a, y, b, nil, seed)
}

// SampleDMinus draws an instance from D-: a uniform random equal split of
// the vertices with x and y on opposite sides, all pairs matched within
// their side except the designated bridge. It requires n even and
// (n/2)*d odd-compatible (each side must have an even number of free
// cells).
func SampleDMinus(n, d, x, a, y, b int, seed rnd.Seed) (*Instance, error) {
	if n%2 != 0 {
		return nil, fmt.Errorf("lowerbound: n=%d must be even for D-", n)
	}
	prg := rnd.NewPRG(seed.Derive(0xd0))
	half := make([]int, n)
	// Random equal split with x on side 0 and y on side 1.
	perm := prg.Perm(n)
	side := 0
	counts := [2]int{}
	for _, v := range perm {
		if v == x || v == y {
			continue
		}
		// Fill side 0 to n/2-1 (leaving room for x), then side 1.
		if counts[0] < n/2-1 {
			side = 0
		} else {
			side = 1
		}
		half[v] = side
		counts[side]++
	}
	half[x] = 0
	half[y] = 1
	// Free cells per side: (n/2)*d - 1 each (the designated cell is used).
	if ((n/2)*d-1)%2 != 0 {
		return nil, fmt.Errorf("lowerbound: (n/2)*d-1 = %d must be even for D-", (n/2)*d-1)
	}
	return sample(n, d, x, a, y, b, half, seed)
}

// sample draws a matching over the cell table conditioned on the
// designated pair, with all other pairs staying within their partition
// (nil = single partition), then repairs to simplicity.
func sample(n, d, x, a, y, b int, half []int, seed rnd.Seed) (*Instance, error) {
	if x == y || x < 0 || y < 0 || x >= n || y >= n || a < 0 || a >= d || b < 0 || b >= d {
		return nil, fmt.Errorf("lowerbound: bad designated edge (%d,%d,%d,%d)", x, a, y, b)
	}
	if n*d%2 != 0 {
		return nil, fmt.Errorf("lowerbound: n*d = %d odd", n*d)
	}
	if half == nil {
		half = make([]int, n)
	}
	prg := rnd.NewPRG(seed.Derive(0xd1))
	const attempts = 50
	for try := 0; try < attempts; try++ {
		if inst, ok := trySample(n, d, x, a, y, b, half, prg); ok {
			return inst, nil
		}
	}
	return nil, fmt.Errorf("lowerbound: failed to sample simple instance after %d attempts", attempts)
}

func trySample(n, d, x, a, y, b int, half []int, prg *rnd.PRG) (*Instance, bool) {
	designated := func(c Cell) bool {
		return (c.V == x && c.I == a) || (c.V == y && c.I == b)
	}
	// Partition the free cells.
	var free [2][]Cell
	for v := 0; v < n; v++ {
		for i := 0; i < d; i++ {
			c := Cell{V: v, I: i}
			if designated(c) {
				continue
			}
			free[half[v]] = append(free[half[v]], c)
		}
	}
	for s := range free {
		if len(free[s])%2 != 0 {
			return nil, false
		}
	}
	mate := make([]Cell, n*d)
	set := func(c1, c2 Cell) {
		mate[c1.V*d+c1.I] = c2
		mate[c2.V*d+c2.I] = c1
	}
	set(Cell{V: x, I: a}, Cell{V: y, I: b})
	for s := range free {
		cells := free[s]
		prg.Shuffle(len(cells), func(i, j int) { cells[i], cells[j] = cells[j], cells[i] })
		for i := 0; i < len(cells); i += 2 {
			set(cells[i], cells[i+1])
		}
	}
	inst := &Instance{n: n, d: d, mate: mate, X: x, A: a, Y: y, B: b, half: half}
	// Repair sweeps: collect pairs participating in a defect (self-loop or
	// parallel edge), un-pair them within each partition and re-shuffle.
	for sweep := 0; sweep < 60; sweep++ {
		defective := inst.defectivePairs()
		if len(defective) == 0 {
			return inst, true
		}
		var pool [2][]Cell
		for _, c1 := range defective {
			c2 := inst.Mate(c1.V, c1.I)
			if designated(c1) || designated(c2) {
				continue // the designated pair is never rewired
			}
			pool[half[c1.V]] = append(pool[half[c1.V]], c1, c2)
		}
		progress := false
		for s := range pool {
			cells := pool[s]
			if len(cells) < 2 {
				continue
			}
			// Bring in a few random extra pairs for mixing.
			for extra := 0; extra < 4; extra++ {
				c := free[s][prg.Intn(len(free[s]))]
				m := inst.Mate(c.V, c.I)
				if designated(c) || designated(m) || containsCell(cells, c) || containsCell(cells, m) {
					continue
				}
				cells = append(cells, c, m)
			}
			prg.Shuffle(len(cells), func(i, j int) { cells[i], cells[j] = cells[j], cells[i] })
			for i := 0; i+1 < len(cells); i += 2 {
				set(cells[i], cells[i+1])
			}
			progress = true
		}
		if !progress {
			break
		}
	}
	return nil, false
}

func containsCell(cs []Cell, c Cell) bool {
	for _, x := range cs {
		if x == c {
			return true
		}
	}
	return false
}

// defectivePairs returns one representative cell per matched pair that is a
// self-loop or contributes to a parallel edge (including parallels of the
// designated pair).
func (in *Instance) defectivePairs() []Cell {
	seenEdge := make(map[uint64][]Cell, in.n*in.d/2)
	var out []Cell
	for v := 0; v < in.n; v++ {
		for i := 0; i < in.d; i++ {
			m := in.Mate(v, i)
			if m.V < v || (m.V == v && m.I < i) {
				continue // visit each pair once
			}
			if m.V == v {
				out = append(out, Cell{V: v, I: i})
				continue
			}
			k := uint64(uint32(v))<<32 | uint64(uint32(m.V))
			seenEdge[k] = append(seenEdge[k], Cell{V: v, I: i})
		}
	}
	for _, cells := range seenEdge {
		if len(cells) <= 1 {
			continue
		}
		// Keep exactly one copy per vertex pair, preferring the designated
		// pair when it participates (it must never be rewired).
		keep := 0
		for idx, c := range cells {
			if (c.V == in.X && c.I == in.A) || (c.V == in.Y && c.I == in.B) {
				keep = idx
				break
			}
		}
		for idx, c := range cells {
			if idx != keep {
				out = append(out, c)
			}
		}
	}
	return out
}
