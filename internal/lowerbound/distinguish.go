package lowerbound

// The probe-bounded distinguisher and the experiment harness that
// reproduces Theorem 1.3's shape: below the min{sqrt(n), n/d} probe scale
// the BFS-meet distinguisher cannot tell D+ from D-, so no LCA with that
// probe budget can decide the designated edge correctly on both.

import (
	"fmt"

	"lca/internal/rnd"
)

// TableOracle exposes an Instance through cell-level probes, counting
// them. The Neighbor probe returns the full matched cell (u, j) — strictly
// more informative than the standard model, as in the paper's proof.
type TableOracle struct {
	inst   *Instance
	probes int
}

// NewTableOracle wraps an instance.
func NewTableOracle(inst *Instance) *TableOracle { return &TableOracle{inst: inst} }

// N returns the number of vertices.
func (o *TableOracle) N() int { return o.inst.N() }

// D returns the regular degree (public knowledge, not a probe).
func (o *TableOracle) D() int { return o.inst.D() }

// NeighborCell probes cell (v,i) and returns its matched cell.
func (o *TableOracle) NeighborCell(v, i int) Cell {
	o.probes++
	return o.inst.Mate(v, i)
}

// Probes returns the number of probes made so far.
func (o *TableOracle) Probes() int { return o.probes }

// BFSMeet explores the two sides of the designated edge (x,a,y,b) with
// alternating breadth-first expansion, never traversing the designated
// cells themselves, and reports at which probe count the two explored
// vertex sets first touched (met=true) or that the budget ran out
// (met=false). On D- instances the sides can never touch.
func BFSMeet(o *TableOracle, budget int) (met bool, probesUsed int) {
	inst := o.inst
	x, a, y, b := inst.X, inst.A, inst.Y, inst.B
	type sideState struct {
		visited map[int]bool
		queue   []int // vertices whose cells still need probing
		next    []int // per queue entry, next cell index to probe
	}
	newSide := func(v int) *sideState {
		return &sideState{visited: map[int]bool{v: true}, queue: []int{v}, next: []int{0}}
	}
	sides := [2]*sideState{newSide(x), newSide(y)}
	if x == y {
		return true, 0
	}
	skip := func(v, i int) bool {
		return (v == x && i == a) || (v == y && i == b)
	}
	start := o.Probes()
	turn := 0
	stalled := 0
	for o.Probes()-start < budget && stalled < 2 {
		s := sides[turn]
		other := sides[1-turn]
		turn = 1 - turn
		// Advance this side by one probe.
		progressed := false
		for len(s.queue) > 0 {
			v := s.queue[0]
			i := s.next[0]
			if i >= inst.D() {
				s.queue = s.queue[1:]
				s.next = s.next[1:]
				continue
			}
			s.next[0]++
			if skip(v, i) {
				continue
			}
			m := o.NeighborCell(v, i)
			progressed = true
			if other.visited[m.V] {
				return true, o.Probes() - start
			}
			if !s.visited[m.V] {
				s.visited[m.V] = true
				s.queue = append(s.queue, m.V)
				s.next = append(s.next, 0)
			}
			break
		}
		if progressed {
			stalled = 0
		} else {
			stalled++
		}
	}
	return false, o.Probes() - start
}

// TrialResult records one D+ trial: the probe count at which the
// distinguisher first saw the sides meet (or -1 if it never did within
// maxBudget).
type TrialResult struct {
	MeetAt int
}

// AdvantagePoint is one point of the advantage curve.
type AdvantagePoint struct {
	Budget    int
	MeetRate  float64 // fraction of D+ trials distinguished within Budget
	Advantage float64 // distinguishing advantage over random guessing
	Trials    int
}

// Experiment measures the distinguisher's advantage as a function of probe
// budget. Because the BFS never meets on D- (verified structurally), the
// advantage at budget t is MeetRate(t)/2: the distinguisher answers "+"
// exactly when the sides meet.
type Experiment struct {
	N, D      int
	MaxBudget int
	Trials    int
	Seed      rnd.Seed
}

// Run executes the experiment and returns the advantage at each requested
// budget (sorted ascending).
func (e Experiment) Run(budgets []int) ([]AdvantagePoint, error) {
	if e.N < 4 || e.D < 1 {
		return nil, fmt.Errorf("lowerbound: bad experiment dims n=%d d=%d", e.N, e.D)
	}
	prg := rnd.NewPRG(e.Seed.Derive(0xe1))
	meets := make([]int, 0, e.Trials)
	for trial := 0; trial < e.Trials; trial++ {
		x := prg.Intn(e.N)
		y := prg.Intn(e.N)
		for y == x {
			y = prg.Intn(e.N)
		}
		a, b := prg.Intn(e.D), prg.Intn(e.D)
		inst, err := SampleDPlus(e.N, e.D, x, a, y, b, e.Seed.Derive(uint64(1000+trial)))
		if err != nil {
			return nil, fmt.Errorf("trial %d: %w", trial, err)
		}
		met, used := BFSMeet(NewTableOracle(inst), e.MaxBudget)
		if met {
			meets = append(meets, used)
		} else {
			meets = append(meets, -1)
		}
	}
	out := make([]AdvantagePoint, 0, len(budgets))
	for _, budget := range budgets {
		hit := 0
		for _, m := range meets {
			if m >= 0 && m <= budget {
				hit++
			}
		}
		rate := float64(hit) / float64(e.Trials)
		out = append(out, AdvantagePoint{
			Budget:    budget,
			MeetRate:  rate,
			Advantage: rate / 2,
			Trials:    e.Trials,
		})
	}
	return out, nil
}
