package lowerbound

import (
	"testing"

	"lca/internal/rnd"
)

func TestDPlusInstanceValid(t *testing.T) {
	for seed := rnd.Seed(0); seed < 5; seed++ {
		inst, err := SampleDPlus(100, 4, 3, 1, 77, 2, seed)
		if err != nil {
			t.Fatal(err)
		}
		validateInstance(t, inst)
		g := inst.ToGraph()
		if g.M() != 100*4/2 {
			t.Fatalf("graph has %d edges, want %d (simple d-regular)", g.M(), 200)
		}
	}
}

func TestDMinusInstanceValid(t *testing.T) {
	// n=100, d=4: (n/2)*d - 1 = 199 odd -> invalid; use d odd so that
	// (n/2)*d-1 is even: d=5, n=100 -> 249 odd; need (n/2*d-1) even, i.e.
	// n/2*d odd, i.e. both n/2 and d odd: n=98 (n/2=49), d=5.
	for seed := rnd.Seed(0); seed < 5; seed++ {
		inst, err := SampleDMinus(98, 5, 3, 1, 77, 2, seed)
		if err != nil {
			t.Fatal(err)
		}
		validateInstance(t, inst)
		if inst.Half(3) == inst.Half(77) {
			t.Fatal("designated endpoints on the same side")
		}
		counts := [2]int{}
		for v := 0; v < inst.N(); v++ {
			counts[inst.Half(v)]++
		}
		if counts[0] != counts[1] {
			t.Fatalf("halves unbalanced: %v", counts)
		}
		// The designated edge is the only bridge: every other matched pair
		// stays within a half.
		for v := 0; v < inst.N(); v++ {
			for i := 0; i < inst.D(); i++ {
				m := inst.Mate(v, i)
				if v == 3 && i == 1 || v == 77 && i == 2 {
					continue
				}
				if inst.Half(v) != inst.Half(m.V) {
					t.Fatalf("non-designated pair (%d,%d)-(%d,%d) crosses the cut", v, i, m.V, m.I)
				}
			}
		}
	}
}

func TestDMinusRejectsBadParity(t *testing.T) {
	if _, err := SampleDMinus(100, 4, 0, 0, 1, 0, 1); err == nil {
		t.Fatal("expected parity error for n=100, d=4")
	}
	if _, err := SampleDMinus(99, 4, 0, 0, 1, 0, 1); err == nil {
		t.Fatal("expected error for odd n")
	}
}

func TestSampleRejectsBadDesignatedEdge(t *testing.T) {
	cases := [][4]int{{0, 0, 0, 0}, {-1, 0, 1, 0}, {0, 9, 1, 0}, {0, 0, 200, 0}}
	for _, c := range cases {
		if _, err := SampleDPlus(100, 4, c[0], c[1], c[2], c[3], 1); err == nil {
			t.Errorf("edge %v should be rejected", c)
		}
	}
}

func validateInstance(t *testing.T, inst *Instance) {
	t.Helper()
	n, d := inst.N(), inst.D()
	// Involution: mate(mate(c)) == c, no self-cells.
	for v := 0; v < n; v++ {
		for i := 0; i < d; i++ {
			m := inst.Mate(v, i)
			if m.V < 0 || m.V >= n || m.I < 0 || m.I >= d {
				t.Fatalf("mate(%d,%d) out of range: %+v", v, i, m)
			}
			if back := inst.Mate(m.V, m.I); back.V != v || back.I != i {
				t.Fatalf("matching not involutive at (%d,%d)", v, i)
			}
			if m.V == v {
				t.Fatalf("self-loop at vertex %d", v)
			}
		}
	}
	// Simplicity: no parallel edges.
	seen := make(map[[2]int]bool)
	for v := 0; v < n; v++ {
		for i := 0; i < d; i++ {
			m := inst.Mate(v, i)
			if m.V < v {
				continue
			}
			k := [2]int{v, m.V}
			if seen[k] {
				t.Fatalf("parallel edge between %d and %d", v, m.V)
			}
			seen[k] = true
		}
	}
	// Designated edge present.
	if m := inst.Mate(inst.X, inst.A); m.V != inst.Y || m.I != inst.B {
		t.Fatalf("designated edge missing: mate(%d,%d) = %+v", inst.X, inst.A, m)
	}
}

func TestDPlusUsuallyConnectedWithoutDesignatedEdge(t *testing.T) {
	connected := 0
	const trials = 10
	for seed := rnd.Seed(0); seed < trials; seed++ {
		inst, err := SampleDPlus(200, 5, 0, 0, 100, 0, seed)
		if err != nil {
			t.Fatal(err)
		}
		g := inst.ToGraph()
		// Remove the designated edge and check connectivity of x,y.
		edges := g.Edges()
		kept := edges[:0:0]
		for _, e := range edges {
			if (e.U == 0 && e.V == 100) || (e.U == 100 && e.V == 0) {
				continue
			}
			kept = append(kept, e)
		}
		gg := g.Subgraph(kept)
		if gg.Dist(0, 100, -1) >= 0 {
			connected++
		}
	}
	if connected < trials-1 {
		t.Errorf("only %d/%d D+ instances stayed connected", connected, trials)
	}
}

func TestBFSMeetNeverMeetsOnDMinus(t *testing.T) {
	for seed := rnd.Seed(0); seed < 5; seed++ {
		inst, err := SampleDMinus(98, 5, 3, 1, 77, 2, seed)
		if err != nil {
			t.Fatal(err)
		}
		met, _ := BFSMeet(NewTableOracle(inst), 98*5*2)
		if met {
			t.Fatal("BFS met across a cut that has only the designated bridge")
		}
	}
}

func TestBFSMeetEventuallyMeetsOnDPlus(t *testing.T) {
	met := 0
	const trials = 8
	for seed := rnd.Seed(0); seed < trials; seed++ {
		inst, err := SampleDPlus(200, 5, 0, 0, 100, 0, seed)
		if err != nil {
			t.Fatal(err)
		}
		if m, _ := BFSMeet(NewTableOracle(inst), 200*5*3); m {
			met++
		}
	}
	if met < trials-1 {
		t.Errorf("BFS met on only %d/%d connected-ish D+ instances", met, trials)
	}
}

func TestBFSMeetRespectsBudget(t *testing.T) {
	inst, err := SampleDPlus(300, 4, 0, 0, 150, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	o := NewTableOracle(inst)
	_, used := BFSMeet(o, 25)
	if used > 25 {
		t.Fatalf("distinguisher used %d probes over a budget of 25", used)
	}
	if o.Probes() != used {
		t.Fatalf("oracle count %d != reported %d", o.Probes(), used)
	}
}

func TestExperimentAdvantageIncreasesWithBudget(t *testing.T) {
	exp := Experiment{N: 400, D: 4, MaxBudget: 4000, Trials: 12, Seed: 5}
	pts, err := exp.Run([]int{5, 4000})
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].MeetRate > pts[1].MeetRate {
		t.Errorf("meet rate decreased with budget: %v", pts)
	}
	if pts[0].Advantage > 0.25 {
		t.Errorf("advantage at 5 probes is %f, expected near zero", pts[0].Advantage)
	}
	if pts[1].MeetRate < 0.5 {
		t.Errorf("meet rate at full budget is %f, expected high", pts[1].MeetRate)
	}
}

func TestExperimentDeterministic(t *testing.T) {
	exp := Experiment{N: 200, D: 4, MaxBudget: 500, Trials: 5, Seed: 9}
	a, err := exp.Run([]int{100, 500})
	if err != nil {
		t.Fatal(err)
	}
	b, _ := exp.Run([]int{100, 500})
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("experiment not deterministic for fixed seed")
		}
	}
}
