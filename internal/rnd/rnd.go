// Package rnd provides the randomness substrate for local computation
// algorithms: a small deterministic PRG and k-wise independent hash
// families over the Mersenne-prime field GF(2^61-1).
//
// LCAs must answer every query consistently with one fixed global solution
// while storing only a short random seed. All per-vertex and per-edge
// random decisions are therefore derived from hash families evaluated on
// vertex IDs, never from stateful random streams. The families here follow
// the classical polynomial construction (Vadhan, "Pseudorandomness",
// Corollary 3.34): a degree-(d-1) polynomial with uniform coefficients over
// a prime field is a d-wise independent function family and needs only
// d·O(log n) seed bits.
package rnd

import "math/bits"

// Seed is a 64-bit master seed from which all other randomness is derived.
// Two harness runs with equal seeds make identical decisions everywhere.
type Seed uint64

// Derive deterministically produces an independent-looking sub-seed for the
// given label. Distinct labels yield decorrelated streams (splitmix64 is a
// bijective finalizer, so label collisions are the only collisions).
func (s Seed) Derive(label uint64) Seed {
	return Seed(mix64(uint64(s) ^ (label*0x9e3779b97f4a7c15 + 0x85ebca6b)))
}

// mix64 is the splitmix64 finalizer: a fast, high-quality 64-bit mixing
// bijection.
func mix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// PRG is a splitmix64 pseudo-random generator. It is used only where full
// independence is acceptable (graph generation, experiment workloads) —
// never inside an LCA's per-query logic, which must use Family so that the
// same decision is reproduced on every query.
type PRG struct {
	state uint64
}

// NewPRG returns a generator seeded with s.
func NewPRG(s Seed) *PRG {
	return &PRG{state: uint64(s)}
}

// Uint64 returns the next 64 uniform bits.
func (p *PRG) Uint64() uint64 {
	p.state += 0x9e3779b97f4a7c15
	return mix64(p.state - 0x9e3779b97f4a7c15 + 0x9e3779b97f4a7c15)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (p *PRG) Intn(n int) int {
	if n <= 0 {
		panic("rnd: Intn with non-positive bound")
	}
	// Lemire's multiply-shift rejection method: unbiased and fast.
	bound := uint64(n)
	for {
		x := p.Uint64()
		hi, lo := bits.Mul64(x, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// Float64 returns a uniform float64 in [0, 1).
func (p *PRG) Float64() float64 {
	return float64(p.Uint64()>>11) / (1 << 53)
}

// Bool returns a fair coin flip.
func (p *PRG) Bool() bool { return p.Uint64()&1 == 1 }

// Perm returns a uniform permutation of [0, n) (Fisher-Yates).
func (p *PRG) Perm(n int) []int {
	out := make([]int, n)
	for i := 1; i < n; i++ {
		j := p.Intn(i + 1)
		out[i] = out[j]
		out[j] = i
	}
	return out
}

// Shuffle permutes the first n elements using swap, Fisher-Yates style.
func (p *PRG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := p.Intn(i + 1)
		swap(i, j)
	}
}

// mersenne61 is the Mersenne prime 2^61 - 1, the field modulus for all hash
// families. Field elements fit a uint64 with three spare bits, which makes
// the modular reduction after a 128-bit product branch-light.
const mersenne61 = (1 << 61) - 1

// addMod61 returns (a + b) mod 2^61-1 for a, b < 2^62.
func addMod61(a, b uint64) uint64 {
	s := a + b
	s = (s & mersenne61) + (s >> 61)
	if s >= mersenne61 {
		s -= mersenne61
	}
	return s
}

// mulMod61 returns (a * b) mod 2^61-1 for a, b < 2^61.
func mulMod61(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	// a*b = hi*2^64 + lo = hi*8*2^61 + lo ≡ hi*8 + lo (mod 2^61-1), with
	// lo itself split the same way.
	res := (lo & mersenne61) + (lo>>61 | hi<<3)
	res = (res & mersenne61) + (res >> 61)
	if res >= mersenne61 {
		res -= mersenne61
	}
	return res
}

// Family is a d-wise independent hash function h: uint64 -> [0, 2^61-1),
// realized as a random polynomial of degree d-1 over GF(2^61-1). The seed
// cost is d field elements (d · 61 bits), matching the poly-logarithmic
// seed lengths required by the bounded-independence constructions in the
// LCA literature (paper §5).
//
// The zero value is unusable; construct with NewFamily.
type Family struct {
	coeff []uint64 // coefficients, constant term last (Horner order)
}

// NewFamily draws one function from the d-wise independent family using
// randomness derived from seed. Independence below 2 is promoted to 2.
func NewFamily(seed Seed, independence int) *Family {
	if independence < 2 {
		independence = 2
	}
	p := NewPRG(seed)
	coeff := make([]uint64, independence)
	for i := range coeff {
		// Rejection-sample a uniform field element.
		for {
			x := p.Uint64() >> 3 // 61 bits
			if x < mersenne61 {
				coeff[i] = x
				break
			}
		}
	}
	return &Family{coeff: coeff}
}

// Independence reports the d for which the family is d-wise independent.
func (f *Family) Independence() int { return len(f.coeff) }

// Hash evaluates the polynomial at x (reduced into the field first) and
// returns a value uniform in [0, 2^61-1).
func (f *Family) Hash(x uint64) uint64 {
	// Reduce the input into the field. Inputs are vertex IDs (< 2^61 in all
	// realistic uses), so the reduction is a formality.
	x = (x & mersenne61) + (x >> 61)
	if x >= mersenne61 {
		x -= mersenne61
	}
	acc := uint64(0)
	for _, c := range f.coeff {
		acc = addMod61(mulMod61(acc, x), c)
	}
	return acc
}

// Float evaluates the hash as a uniform real in [0, 1).
func (f *Family) Float(x uint64) float64 {
	return float64(f.Hash(x)) / float64(mersenne61)
}

// Bernoulli reports a p-biased coin flip for x: the same x always flips the
// same way, and across d distinct inputs the flips are d-wise independent.
func (f *Family) Bernoulli(x uint64, p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	threshold := uint64(p * float64(mersenne61))
	return f.Hash(x) < threshold
}

// Intn maps x to a d-wise independent value in [0, n). The modulo bias is
// at most n/2^61 and irrelevant for the n used here. It panics if n <= 0.
func (f *Family) Intn(x uint64, n int) int {
	if n <= 0 {
		panic("rnd: Family.Intn with non-positive bound")
	}
	return int(f.Hash(x) % uint64(n))
}

// Pair folds an ordered pair into one input value so families can hash
// edges, (vertex, index) pairs, and similar composites. Fibonacci mixing on
// the first coordinate keeps (a,b) and (b,a) distinct.
func Pair(a, b uint64) uint64 {
	return mix64(a*0x9e3779b97f4a7c15 + 0x165667b19e3779f9 ^ b)
}

// Rank128 is a 128-bit comparable rank used by the O(k^2)-spanner
// construction (paper §5.2): the rank of a center is the concatenation of k
// blocks of N bits, block i produced by an independent O(log n)-wise
// family. Ranks compare lexicographically block 0 first.
type Rank128 struct {
	Hi, Lo uint64
}

// Less orders ranks lexicographically (smaller rank = "lower").
func (r Rank128) Less(o Rank128) bool {
	if r.Hi != o.Hi {
		return r.Hi < o.Hi
	}
	return r.Lo < o.Lo
}

// IsZeroPrefix reports whether the first `blocks` blocks of `blockBits`
// bits are all zero, the predicate driving the inductive stretch argument
// with bounded independence (paper Lemma 5.5).
func (r Rank128) IsZeroPrefix(blocks, blockBits int) bool {
	n := blocks * blockBits
	if n <= 0 {
		return true
	}
	if n >= 128 {
		return r.Hi == 0 && r.Lo == 0
	}
	if n <= 64 {
		return r.Hi>>(64-n) == 0
	}
	return r.Hi == 0 && r.Lo>>(128-n) == 0
}

// RankAssigner produces Rank128 ranks from k independent bounded-
// independence hash families, following the construction of §5.2: block i
// of the rank of v is h_i(ID(v)) truncated to blockBits bits.
type RankAssigner struct {
	families  []*Family
	blockBits int
}

// NewRankAssigner builds k families of the given independence. blockBits is
// clamped so that k·blockBits ≤ 128.
func NewRankAssigner(seed Seed, k, blockBits, independence int) *RankAssigner {
	if k < 1 {
		k = 1
	}
	if blockBits < 1 {
		blockBits = 1
	}
	for k*blockBits > 128 {
		if blockBits > 1 {
			blockBits--
		} else {
			k--
		}
	}
	fams := make([]*Family, k)
	for i := range fams {
		fams[i] = NewFamily(seed.Derive(uint64(1000+i)), independence)
	}
	return &RankAssigner{families: fams, blockBits: blockBits}
}

// Blocks reports the number of rank blocks (the k of the construction).
func (ra *RankAssigner) Blocks() int { return len(ra.families) }

// BlockBits reports the width of each rank block in bits.
func (ra *RankAssigner) BlockBits() int { return ra.blockBits }

// Rank returns the concatenated-block rank of x.
func (ra *RankAssigner) Rank(x uint64) Rank128 {
	var r Rank128
	pos := 0
	mask := uint64(1)<<ra.blockBits - 1
	for _, f := range ra.families {
		block := f.Hash(x) & mask
		hiStart := pos
		if hiStart+ra.blockBits <= 64 {
			r.Hi |= block << (64 - hiStart - ra.blockBits)
		} else if hiStart >= 64 {
			r.Lo |= block << (128 - hiStart - ra.blockBits)
		} else {
			// Block straddles the Hi/Lo boundary.
			over := hiStart + ra.blockBits - 64
			r.Hi |= block >> over
			r.Lo |= block << (64 - over)
		}
		pos += ra.blockBits
	}
	return r
}
