package rnd

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSeedDeriveDistinct(t *testing.T) {
	s := Seed(42)
	seen := make(map[Seed]uint64)
	for i := uint64(0); i < 10000; i++ {
		d := s.Derive(i)
		if prev, ok := seen[d]; ok {
			t.Fatalf("Derive collision: labels %d and %d both map to %x", prev, i, d)
		}
		seen[d] = i
	}
}

func TestSeedDeriveDeterministic(t *testing.T) {
	if Seed(7).Derive(3) != Seed(7).Derive(3) {
		t.Fatal("Derive is not deterministic")
	}
	if Seed(7).Derive(3) == Seed(8).Derive(3) {
		t.Fatal("Derive ignores the seed")
	}
}

func TestPRGDeterminism(t *testing.T) {
	a, b := NewPRG(123), NewPRG(123)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("PRG diverged at step %d", i)
		}
	}
}

func TestPRGIntnRange(t *testing.T) {
	p := NewPRG(1)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := p.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestPRGIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewPRG(1).Intn(0)
}

func TestPRGIntnUniform(t *testing.T) {
	p := NewPRG(99)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[p.Intn(n)]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: count %d too far from %f", i, c, want)
		}
	}
}

func TestPRGFloat64Range(t *testing.T) {
	p := NewPRG(5)
	sum := 0.0
	const trials = 100000
	for i := 0; i < trials; i++ {
		f := p.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %f", f)
		}
		sum += f
	}
	if mean := sum / trials; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean %f, want about 0.5", mean)
	}
}

func TestPRGPerm(t *testing.T) {
	p := NewPRG(11)
	for _, n := range []int{0, 1, 2, 10, 100} {
		perm := p.Perm(n)
		if len(perm) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(perm))
		}
		seen := make([]bool, n)
		for _, v := range perm {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, perm)
			}
			seen[v] = true
		}
	}
}

func TestMulMod61(t *testing.T) {
	cases := []struct{ a, b uint64 }{
		{0, 0}, {1, 1}, {mersenne61 - 1, mersenne61 - 1},
		{mersenne61 - 1, 2}, {1 << 60, 1 << 60}, {12345678901234567, 98765432109876543 % mersenne61},
	}
	for _, c := range cases {
		got := mulMod61(c.a, c.b)
		// Check against big-integer arithmetic via math/bits decomposition.
		hi, lo := mulCheck(c.a, c.b)
		want := mod61Big(hi, lo)
		if got != want {
			t.Errorf("mulMod61(%d,%d) = %d, want %d", c.a, c.b, got, want)
		}
	}
}

// mulCheck computes the full 128-bit product naively through 32-bit limbs.
func mulCheck(a, b uint64) (hi, lo uint64) {
	a0, a1 := a&0xffffffff, a>>32
	b0, b1 := b&0xffffffff, b>>32
	t := a0 * b0
	lo = t & 0xffffffff
	carry := t >> 32
	t = a1*b0 + carry
	carry = t >> 32
	mid := t & 0xffffffff
	t = a0*b1 + mid
	lo |= (t & 0xffffffff) << 32
	hi = a1*b1 + carry + (t >> 32)
	return hi, lo
}

// mod61Big reduces a 128-bit value modulo 2^61-1 by repeated folding.
func mod61Big(hi, lo uint64) uint64 {
	// value = hi*2^64 + lo ≡ hi*8 + lo (mod 2^61-1), applied until small.
	res := (lo & mersenne61) + (lo >> 61) + (hi << 3 & mersenne61) + (hi >> 58)
	for res >= mersenne61 {
		res = (res & mersenne61) + (res >> 61)
		if res >= mersenne61 && res < 2*mersenne61 {
			res -= mersenne61
		}
	}
	return res
}

func TestFamilyDeterministic(t *testing.T) {
	f1 := NewFamily(77, 8)
	f2 := NewFamily(77, 8)
	for x := uint64(0); x < 1000; x++ {
		if f1.Hash(x) != f2.Hash(x) {
			t.Fatalf("family not deterministic at %d", x)
		}
	}
}

func TestFamilyRange(t *testing.T) {
	f := NewFamily(3, 4)
	for x := uint64(0); x < 10000; x++ {
		if h := f.Hash(x); h >= mersenne61 {
			t.Fatalf("Hash(%d) = %d outside field", x, h)
		}
	}
}

func TestFamilyUniformity(t *testing.T) {
	f := NewFamily(123, 16)
	const buckets, trials = 16, 200000
	counts := make([]int, buckets)
	for x := uint64(0); x < trials; x++ {
		counts[f.Hash(x)%buckets]++
	}
	want := float64(trials) / buckets
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("bucket %d count %d deviates from %f", i, c, want)
		}
	}
}

func TestFamilyPairwiseIndependenceSmoke(t *testing.T) {
	// For a pairwise independent family, Pr[h(x) even AND h(y) even] should
	// be about 1/4 across random function draws.
	const trials = 4000
	hits := 0
	for s := 0; s < trials; s++ {
		f := NewFamily(Seed(s), 2)
		if f.Hash(10)&1 == 0 && f.Hash(20)&1 == 0 {
			hits++
		}
	}
	got := float64(hits) / trials
	if math.Abs(got-0.25) > 0.04 {
		t.Errorf("joint even-even probability %f, want about 0.25", got)
	}
}

func TestFamilyBernoulli(t *testing.T) {
	f := NewFamily(9, 8)
	for _, p := range []float64{0, 0.01, 0.25, 0.5, 0.9, 1} {
		hits := 0
		const trials = 100000
		for x := uint64(0); x < trials; x++ {
			if f.Bernoulli(x, p) {
				hits++
			}
		}
		got := float64(hits) / trials
		tol := 4*math.Sqrt(p*(1-p)/trials) + 1e-9
		if math.Abs(got-p) > tol {
			t.Errorf("Bernoulli(%f): rate %f, tolerance %f", p, got, tol)
		}
	}
}

func TestFamilyBernoulliConsistent(t *testing.T) {
	f := NewFamily(4, 8)
	for x := uint64(0); x < 100; x++ {
		a := f.Bernoulli(x, 0.3)
		for i := 0; i < 3; i++ {
			if f.Bernoulli(x, 0.3) != a {
				t.Fatalf("Bernoulli not consistent for x=%d", x)
			}
		}
	}
}

func TestFamilyBernoulliMonotoneInP(t *testing.T) {
	// If a vertex is sampled at probability p it must also be sampled at
	// every p' > p; threshold tests guarantee this, and some LCA layering
	// arguments rely on it.
	f := NewFamily(8, 8)
	for x := uint64(0); x < 2000; x++ {
		if f.Bernoulli(x, 0.1) && !f.Bernoulli(x, 0.5) {
			t.Fatalf("Bernoulli not monotone in p at x=%d", x)
		}
	}
}

func TestFamilyIntn(t *testing.T) {
	f := NewFamily(5, 4)
	for _, n := range []int{1, 2, 10, 1000} {
		for x := uint64(0); x < 500; x++ {
			v := f.Intn(x, n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d,%d) = %d out of range", x, n, v)
			}
		}
	}
}

func TestPairInjectiveOnSmallDomain(t *testing.T) {
	seen := make(map[uint64][2]uint64)
	for a := uint64(0); a < 200; a++ {
		for b := uint64(0); b < 200; b++ {
			k := Pair(a, b)
			if prev, ok := seen[k]; ok && (prev[0] != a || prev[1] != b) {
				t.Fatalf("Pair collision: (%d,%d) and (%d,%d)", prev[0], prev[1], a, b)
			}
			seen[k] = [2]uint64{a, b}
		}
	}
}

func TestPairOrderSensitive(t *testing.T) {
	if Pair(1, 2) == Pair(2, 1) {
		t.Fatal("Pair must distinguish order")
	}
}

func TestRank128Less(t *testing.T) {
	cases := []struct {
		a, b Rank128
		want bool
	}{
		{Rank128{0, 0}, Rank128{0, 1}, true},
		{Rank128{0, 1}, Rank128{0, 0}, false},
		{Rank128{1, 0}, Rank128{0, ^uint64(0)}, false},
		{Rank128{0, ^uint64(0)}, Rank128{1, 0}, true},
		{Rank128{5, 5}, Rank128{5, 5}, false},
	}
	for _, c := range cases {
		if got := c.a.Less(c.b); got != c.want {
			t.Errorf("%v.Less(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestRank128IsZeroPrefix(t *testing.T) {
	r := Rank128{Hi: 1 << 40, Lo: 0} // bit 23 (0-indexed from the top) set
	if !r.IsZeroPrefix(23, 1) {
		t.Error("first 23 bits should be zero")
	}
	if r.IsZeroPrefix(24, 1) {
		t.Error("first 24 bits include the set bit")
	}
	zero := Rank128{}
	if !zero.IsZeroPrefix(128, 1) || !zero.IsZeroPrefix(64, 2) {
		t.Error("zero rank should have all-zero prefixes")
	}
	lowbit := Rank128{Hi: 0, Lo: 1}
	if !lowbit.IsZeroPrefix(127, 1) {
		t.Error("first 127 bits of Lo=1 are zero")
	}
	if lowbit.IsZeroPrefix(128, 1) {
		t.Error("bit 128 of Lo=1 is set")
	}
}

func TestRankAssignerDeterministicAndDistinct(t *testing.T) {
	ra := NewRankAssigner(31, 4, 8, 16)
	rb := NewRankAssigner(31, 4, 8, 16)
	collisions := 0
	seen := make(map[Rank128]bool)
	for x := uint64(0); x < 5000; x++ {
		r := ra.Rank(x)
		if r != rb.Rank(x) {
			t.Fatalf("rank not deterministic at %d", x)
		}
		if seen[r] {
			collisions++
		}
		seen[r] = true
	}
	// 32 bits of rank over 5000 values: expected collisions about
	// 5000^2/2^33 ≈ 0.003, allow a little slack.
	if collisions > 3 {
		t.Errorf("too many rank collisions: %d", collisions)
	}
}

func TestRankAssignerClamping(t *testing.T) {
	ra := NewRankAssigner(1, 40, 10, 8) // 400 bits requested, must clamp
	if ra.Blocks()*ra.BlockBits() > 128 {
		t.Fatalf("rank width %d exceeds 128 bits", ra.Blocks()*ra.BlockBits())
	}
	if ra.Blocks() < 1 || ra.BlockBits() < 1 {
		t.Fatal("clamping destroyed the assigner")
	}
}

func TestRankAssignerBlockStructure(t *testing.T) {
	// With one block of b bits, the rank must be h(x) & (2^b-1) shifted to
	// the top of Hi.
	ra := NewRankAssigner(7, 1, 8, 4)
	f := NewFamily(Seed(7).Derive(1000), 4)
	for x := uint64(0); x < 100; x++ {
		want := (f.Hash(x) & 0xff) << 56
		if got := ra.Rank(x); got.Hi != want || got.Lo != 0 {
			t.Fatalf("rank(%d) = %+v, want Hi=%x", x, got, want)
		}
	}
}

func TestRankZeroPrefixProbability(t *testing.T) {
	// Each 4-bit block is zero with probability 1/16; measure block 0.
	ra := NewRankAssigner(13, 8, 4, 16)
	zero := 0
	const trials = 100000
	for x := uint64(0); x < trials; x++ {
		if ra.Rank(x).IsZeroPrefix(1, 4) {
			zero++
		}
	}
	got := float64(zero) / trials
	if math.Abs(got-1.0/16) > 0.005 {
		t.Errorf("zero-block rate %f, want about %f", got, 1.0/16)
	}
}

func TestQuickFamilyHashStable(t *testing.T) {
	f := NewFamily(2024, 8)
	err := quick.Check(func(x uint64) bool {
		return f.Hash(x) == f.Hash(x) && f.Hash(x) < mersenne61
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestQuickPairDistinguishesOrder(t *testing.T) {
	err := quick.Check(func(a, b uint64) bool {
		if a == b {
			return true
		}
		return Pair(a, b) != Pair(b, a)
	}, &quick.Config{MaxCount: 2000})
	if err != nil {
		t.Error(err)
	}
}

func BenchmarkFamilyHash(b *testing.B) {
	f := NewFamily(1, 16)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += f.Hash(uint64(i))
	}
	_ = sink
}

func BenchmarkRankAssigner(b *testing.B) {
	ra := NewRankAssigner(1, 8, 8, 16)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += ra.Rank(uint64(i)).Hi
	}
	_ = sink
}

func TestFamilyTripleIndependenceChiSquare(t *testing.T) {
	// For a 3-wise independent family, the parity triple
	// (h(x)&1, h(y)&1, h(z)&1) must be uniform over {0,1}^3 across function
	// draws. A chi-square test with 7 degrees of freedom at significance
	// ~0.001 has threshold 24.32.
	const trials = 8000
	counts := make([]int, 8)
	for s := 0; s < trials; s++ {
		f := NewFamily(Seed(s).Derive(0x77), 3)
		idx := int(f.Hash(11)&1)<<2 | int(f.Hash(22)&1)<<1 | int(f.Hash(33)&1)
		counts[idx]++
	}
	expected := float64(trials) / 8
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	if chi2 > 24.32 {
		t.Errorf("chi-square %.2f exceeds the 0.001 threshold; counts %v", chi2, counts)
	}
}

func TestFamilySeedSensitivity(t *testing.T) {
	// Different seeds must give different functions (w.h.p.): check that
	// evaluation tables differ.
	a := NewFamily(1, 8)
	b := NewFamily(2, 8)
	same := 0
	for x := uint64(0); x < 100; x++ {
		if a.Hash(x) == b.Hash(x) {
			same++
		}
	}
	if same > 2 {
		t.Errorf("%d/100 collisions between different seeds", same)
	}
}

func TestRankAssignerBlocksUseDistinctFamilies(t *testing.T) {
	// Block i and block j of the same rank must be decorrelated: the joint
	// distribution of (block0==0, block1==0) should be about p^2.
	ra := NewRankAssigner(99, 2, 4, 8)
	both, first := 0, 0
	const trials = 100000
	for x := uint64(0); x < trials; x++ {
		r := ra.Rank(x)
		b0 := r.Hi>>60 == 0
		b1 := (r.Hi>>56)&0xf == 0
		if b0 {
			first++
			if b1 {
				both++
			}
		}
	}
	pFirst := float64(first) / trials
	pBoth := float64(both) / trials
	if math.Abs(pBoth-pFirst/16) > 0.004 {
		t.Errorf("blocks correlated: P[both]=%.4f, want about %.4f", pBoth, pFirst/16)
	}
}

func TestPRGBoolAndShuffle(t *testing.T) {
	p := NewPRG(31)
	heads := 0
	const trials = 10000
	for i := 0; i < trials; i++ {
		if p.Bool() {
			heads++
		}
	}
	if heads < trials*45/100 || heads > trials*55/100 {
		t.Errorf("Bool heads rate %d/%d far from fair", heads, trials)
	}
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	p.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make([]bool, len(xs))
	for _, x := range xs {
		if x < 0 || x >= len(seen) || seen[x] {
			t.Fatalf("Shuffle broke the permutation: %v", xs)
		}
		seen[x] = true
	}
}

func TestFamilyFloatAndIndependence(t *testing.T) {
	f := NewFamily(3, 12)
	if f.Independence() != 12 {
		t.Errorf("Independence = %d", f.Independence())
	}
	sum := 0.0
	const trials = 50000
	for x := uint64(0); x < trials; x++ {
		v := f.Float(x)
		if v < 0 || v >= 1 {
			t.Fatalf("Float out of range: %f", v)
		}
		sum += v
	}
	if mean := sum / trials; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float mean %f", mean)
	}
	// Independence below 2 promotes to 2.
	if NewFamily(1, 0).Independence() != 2 {
		t.Error("independence clamp failed")
	}
}

func TestFamilyIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(x, 0) must panic")
		}
	}()
	NewFamily(1, 4).Intn(3, 0)
}

func TestFamilyHashLargeInputReduction(t *testing.T) {
	// Inputs above the field modulus must reduce consistently.
	f := NewFamily(5, 4)
	big := uint64(1)<<63 + 12345
	if f.Hash(big) != f.Hash(big) {
		t.Fatal("large-input hashing not deterministic")
	}
	if f.Hash(big) >= mersenne61 {
		t.Fatal("large-input hash outside field")
	}
}

func TestRankAssignerStraddlingBlock(t *testing.T) {
	// 13 blocks x 7 bits = 91 bits: some block straddles the Hi/Lo word
	// boundary; ranks must still be deterministic and well-formed.
	ra := NewRankAssigner(17, 13, 7, 8)
	if ra.Blocks()*ra.BlockBits() > 128 {
		t.Fatal("width exceeds 128")
	}
	seen := make(map[Rank128]bool)
	for x := uint64(0); x < 3000; x++ {
		r := ra.Rank(x)
		if r != ra.Rank(x) {
			t.Fatal("rank not deterministic")
		}
		seen[r] = true
	}
	if len(seen) < 2900 {
		t.Errorf("too many rank collisions: %d distinct of 3000", len(seen))
	}
}

func TestBernoulliExtremes(t *testing.T) {
	f := NewFamily(2, 4)
	for x := uint64(0); x < 50; x++ {
		if f.Bernoulli(x, 0) {
			t.Fatal("p=0 must never fire")
		}
		if !f.Bernoulli(x, 1) {
			t.Fatal("p=1 must always fire")
		}
		if !f.Bernoulli(x, 2.5) {
			t.Fatal("p>1 clamps to certain")
		}
		if f.Bernoulli(x, -1) {
			t.Fatal("p<0 clamps to never")
		}
	}
}

func TestIsZeroPrefixDegenerate(t *testing.T) {
	r := Rank128{Hi: ^uint64(0), Lo: ^uint64(0)}
	if !r.IsZeroPrefix(0, 4) {
		t.Error("zero-length prefix is vacuously zero")
	}
	if !r.IsZeroPrefix(-1, 8) {
		t.Error("negative block count is vacuously zero")
	}
	if r.IsZeroPrefix(40, 4) {
		t.Error("all-ones rank has no zero prefix")
	}
}
