package trace

import (
	"fmt"
	"sync"
	"testing"
)

func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	h := tr.Start("op", 1)
	tr.End(h, "tag")
	tr.Tag(h, "tag")
	tr.Event("ev", 2)
	tr.Push(h)
	tr.Pop()
	tr.Merge(0, []Span{{ID: 1, Op: "x"}})
	if tr.ID() != 0 || tr.IDString() != "" || tr.Parent() != 0 ||
		tr.Len() != 0 || tr.Dropped() != 0 || tr.Spans() != nil {
		t.Fatal("nil tracer leaked state")
	}
}

func TestNilTracerAllocFree(t *testing.T) {
	var tr *Tracer
	n := testing.AllocsPerRun(1000, func() {
		h := tr.Start("op", 3)
		tr.End(h)
		if tr.Parent() != 0 {
			t.Fatal("parent")
		}
	})
	if n != 0 {
		t.Fatalf("nil tracer allocated %.1f per op, want 0", n)
	}
}

func TestSpanTreeShape(t *testing.T) {
	tr := New(NewID(), 0)
	root := tr.Start("query:vertex/mis", 7)
	tr.Push(root)
	child := tr.Start("oracle:neighbors", 7)
	tr.Push(child)
	leaf := tr.Start("rpc:degree", 7)
	tr.End(leaf, "attempts=1")
	tr.Pop()
	tr.End(child)
	tr.Event("cache-hit", 9)
	tr.Pop()
	tr.End(root)

	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(spans))
	}
	byOp := map[string]Span{}
	for _, s := range spans {
		byOp[s.Op] = s
	}
	if byOp["query:vertex/mis"].Parent != 0 {
		t.Error("root span has a parent")
	}
	if byOp["oracle:neighbors"].Parent != byOp["query:vertex/mis"].ID {
		t.Error("oracle span not under root")
	}
	if byOp["rpc:degree"].Parent != byOp["oracle:neighbors"].ID {
		t.Error("rpc span not under oracle span")
	}
	if byOp["cache-hit"].Parent != byOp["query:vertex/mis"].ID {
		t.Error("event after Pop not under root")
	}
	if got := byOp["rpc:degree"].Tags; len(got) != 1 || got[0] != "attempts=1" {
		t.Errorf("rpc tags = %v", got)
	}
	for i, s := range spans {
		if s.ID != uint32(i+1) {
			t.Fatalf("ids not dense: spans[%d].ID = %d", i, s.ID)
		}
	}
}

func TestSpanCapDrops(t *testing.T) {
	tr := New(1, 3)
	for i := 0; i < 10; i++ {
		h := tr.Start("op", i)
		tr.End(h)
	}
	if tr.Len() != 3 {
		t.Fatalf("len = %d, want 3", tr.Len())
	}
	if tr.Dropped() != 7 {
		t.Fatalf("dropped = %d, want 7", tr.Dropped())
	}
}

func TestMergeRenumbersAndGrafts(t *testing.T) {
	client := New(NewID(), 0)
	rpc := client.Start("rpc:neighbor", 4)

	// Shard-side tracer with its own id space, including an internal
	// parent link that must be remapped, not grafted.
	shard := New(42, 0)
	top := shard.Start("shard:batch", -1)
	shard.Push(top)
	shard.Start("shard:neighbor", 4)
	shard.Pop()

	client.Merge(rpc.ID(), shard.Spans())
	client.End(rpc)

	spans := client.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	byOp := map[string]Span{}
	for _, s := range spans {
		byOp[s.Op] = s
	}
	if byOp["shard:batch"].Parent != byOp["rpc:neighbor"].ID {
		t.Error("shard root span not grafted under rpc span")
	}
	if byOp["shard:neighbor"].Parent != byOp["shard:batch"].ID {
		t.Error("shard-internal parent link not remapped")
	}
	seen := map[uint32]bool{}
	for _, s := range spans {
		if seen[s.ID] {
			t.Fatalf("duplicate span id %d after merge", s.ID)
		}
		seen[s.ID] = true
	}
}

func TestConcurrentStartUnder(t *testing.T) {
	tr := New(NewID(), 0)
	root := tr.Start("root", -1)
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			h := tr.StartUnder(root.ID(), "probe", i)
			tr.End(h)
		}(i)
	}
	wg.Wait()
	tr.End(root)
	spans := tr.Spans()
	if len(spans) != 33 {
		t.Fatalf("got %d spans, want 33", len(spans))
	}
	for _, s := range spans[1:] {
		if s.Parent != root.ID() {
			t.Fatalf("span %d parent = %d, want %d", s.ID, s.Parent, root.ID())
		}
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	id := NewID()
	s := FormatHeader(id, 0x1234)
	gotID, gotParent, ok := ParseHeader(s)
	if !ok || gotID != id || gotParent != 0x1234 {
		t.Fatalf("round trip %q -> (%x, %x, %v)", s, gotID, gotParent, ok)
	}
	for _, bad := range []string{
		"", "garbage", FormatHeader(id, 7) + "x",
		"00000000000000000-0000001",                 // wrong split
		"0000000000000000-00000001",                 // zero trace id
		"XYZ4567890abcdef-00000001",                 // bad hex
		"0123456789ABCDEF-00000001",                 // uppercase rejected
		fmt.Sprintf("%015x-%08x", uint64(0xabc), 1), // short
		fmt.Sprintf("%016x--%07x", id, 1),           // double dash
		fmt.Sprintf("%016x %08x", id, 1),            // space separator
		fmt.Sprintf("%016x-%08x ", id, 1),           // trailing junk
		fmt.Sprintf("%016x-%08x-ff", id, 1),         // extra field
	} {
		if _, _, ok := ParseHeader(bad); ok {
			t.Errorf("ParseHeader(%q) accepted", bad)
		}
	}
}

func TestNewIDNonZeroAndDistinct(t *testing.T) {
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		id := NewID()
		if id == 0 {
			t.Fatal("NewID returned 0")
		}
		if seen[id] {
			t.Fatal("NewID repeated")
		}
		seen[id] = true
	}
}

func TestRingRotationAndSlowRetention(t *testing.T) {
	r := NewRing(3, 2)
	for i := 0; i < 5; i++ {
		r.Add(Record{ID: fmt.Sprintf("%016x", i+1), Root: "q"})
	}
	r.Add(Record{ID: "slow-1", Root: "q", Slow: true})
	r.Add(Record{ID: "slow-2", Root: "q", Slow: true})
	r.Add(Record{ID: "slow-3", Root: "q", Slow: true})

	recent := r.Recent()
	if len(recent) != 3 {
		t.Fatalf("recent len = %d, want 3", len(recent))
	}
	// Newest first: 5, 4, 3.
	for i, want := range []string{"0000000000000005", "0000000000000004", "0000000000000003"} {
		if recent[i].ID != want {
			t.Errorf("recent[%d] = %s, want %s", i, recent[i].ID, want)
		}
	}
	slow := r.Slow()
	if len(slow) != 2 || slow[0].ID != "slow-3" || slow[1].ID != "slow-2" {
		t.Fatalf("slow ring = %+v", slow)
	}
	if _, ok := r.Get("slow-2"); !ok {
		t.Error("Get missed a slow trace")
	}
	if _, ok := r.Get("0000000000000004"); !ok {
		t.Error("Get missed a recent trace")
	}
	if _, ok := r.Get("0000000000000001"); ok {
		t.Error("Get found an evicted trace")
	}
	if r.Added() != 8 {
		t.Errorf("Added = %d, want 8", r.Added())
	}
}

func TestSampler(t *testing.T) {
	if NewSampler(0) != nil || NewSampler(-1) != nil {
		t.Fatal("non-positive N must yield the nil sampler")
	}
	var nilS *Sampler
	if nilS.Sample() {
		t.Fatal("nil sampler sampled")
	}
	s := NewSampler(4)
	hits := 0
	for i := 0; i < 16; i++ {
		if got := s.Sample(); got {
			hits++
			if i%4 != 0 {
				t.Errorf("sampled at %d", i)
			}
		}
	}
	if hits != 4 {
		t.Fatalf("hits = %d, want 4", hits)
	}
	all := NewSampler(1)
	for i := 0; i < 5; i++ {
		if !all.Sample() {
			t.Fatal("N=1 must sample everything")
		}
	}
}
