// Package trace is the probe-level tracing plane: per-query span trees
// from the Session (or serving tier) root down through the oracle layer
// to individual shard round trips, stitched across the probe wire.
//
// Where internal/metrics answers "how is the fleet doing" in aggregate,
// a trace answers "why was *this* query slow": which probes it issued,
// which were cache hits, which round trips failed over or were hedged,
// and how long each leg took. The design discipline is the same o(n)
// bound the LCA model imposes on algorithms (Alon–Rubinfeld–Vardi–Xie,
// space-efficient LCAs): spans are fixed-size, every tracer is capped at
// a constant number of spans, retention is a bounded ring, and tracing
// is head-sampled — so the plane's memory is O(1) in traffic and graph
// size.
//
// The zero tracer is the disabled plane: every method on a nil *Tracer
// is a no-op that performs no allocation and reads no clock, so
// un-traced queries pay a single pointer test per instrumentation site.
//
// Context propagates over the probe wire in the X-LCA-Trace header
// (Header, FormatHeader, ParseHeader); a shard records its own spans
// into a fresh Tracer and returns them in the probe response, and the
// client grafts them under its round-trip span with Merge, renumbering
// IDs so the stitched tree is consistent without cross-process ID
// coordination. See docs/WIRE.md for the header contract.
package trace

import (
	crand "crypto/rand"
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Header is the HTTP header carrying trace context across probe hops:
// "<16 hex trace id>-<8 hex parent span id>". Optional on every
// request; shards that do not understand it serve probes unchanged.
const Header = "X-LCA-Trace"

// DefaultMaxSpans caps a tracer's span count when the caller passes a
// non-positive max. A capped tracer drops further spans (counted, and
// flagged Truncated in the exported Record) rather than growing.
const DefaultMaxSpans = 4096

// Span is one timed operation in a trace. IDs are per-tracer sequential
// (dense, starting at 1); Parent 0 marks a root-level span. Target is
// the vertex or row the operation concerned, -1 when it has none.
// Start is µs since the Unix epoch and Duration is µs; Tags carry
// outcome markers such as "cache-hit", "failover", "hedge-won" or
// "batch=64".
type Span struct {
	ID       uint32   `json:"id"`
	Parent   uint32   `json:"parent,omitempty"`
	Op       string   `json:"op"`
	Target   int      `json:"target"`
	Start    int64    `json:"start_us"`
	Duration int64    `json:"duration_us"`
	Tags     []string `json:"tags,omitempty"`
}

// Handle refers to a started span; End completes it. The zero Handle
// (returned by a nil or saturated tracer) is valid and ends nothing.
type Handle struct {
	id    uint32
	start int64
}

// ID returns the span's id, 0 for the zero Handle.
func (h Handle) ID() uint32 { return h.id }

// Tracer records one query's span tree. All methods are safe for
// concurrent use and are no-ops on a nil receiver. A tracer holds at
// most max spans; beyond that Start returns the zero Handle and the
// drop is counted.
//
// Serial layers (the query root, the oracle stack) may use Push/Pop to
// maintain an implicit current parent; concurrent fan-out (hedged
// probes, per-shard batches) must capture Parent() before spawning and
// use StartUnder, since the implicit parent is shared state.
type Tracer struct {
	id uint64

	mu      sync.Mutex
	spans   []Span
	next    uint32 // last allocated span id; ids are dense 1..len(spans)
	parent  uint32 // implicit parent for Start
	stack   []uint32
	dropped uint64
	max     int
}

// New returns a tracer for the given trace id holding at most max
// spans (DefaultMaxSpans when max <= 0).
func New(id uint64, max int) *Tracer {
	if max <= 0 {
		max = DefaultMaxSpans
	}
	return &Tracer{id: id, max: max}
}

var idCounter atomic.Uint64

func init() {
	var b [8]byte
	if _, err := crand.Read(b[:]); err == nil {
		idCounter.Store(binary.LittleEndian.Uint64(b[:]))
	} else {
		idCounter.Store(uint64(time.Now().UnixNano()))
	}
}

// NewID returns a fresh process-unique trace id: a random base advanced
// by an atomic counter, so ids never collide within a process and
// collide across processes with probability 2^-64 per pair.
func NewID() uint64 {
	id := idCounter.Add(1)
	if id == 0 { // 0 is reserved for "no trace"
		id = idCounter.Add(1)
	}
	return id
}

// ID returns the trace id, 0 for a nil tracer.
func (t *Tracer) ID() uint64 {
	if t == nil {
		return 0
	}
	return t.id
}

// IDString returns the canonical 16-hex-digit form of the trace id,
// "" for a nil tracer.
func (t *Tracer) IDString() string {
	if t == nil {
		return ""
	}
	return fmt.Sprintf("%016x", t.id)
}

// Start opens a span under the current implicit parent.
func (t *Tracer) Start(op string, target int) Handle {
	if t == nil {
		return Handle{}
	}
	now := time.Now().UnixMicro()
	t.mu.Lock()
	h := t.startLocked(t.parent, op, target, now)
	t.mu.Unlock()
	return h
}

// StartUnder opens a span under an explicit parent span id (0 for a
// root-level span). This is the form for concurrent fan-out, where the
// implicit parent cannot be trusted.
func (t *Tracer) StartUnder(parent uint32, op string, target int) Handle {
	if t == nil {
		return Handle{}
	}
	now := time.Now().UnixMicro()
	t.mu.Lock()
	h := t.startLocked(parent, op, target, now)
	t.mu.Unlock()
	return h
}

func (t *Tracer) startLocked(parent uint32, op string, target int, now int64) Handle {
	if len(t.spans) >= t.max {
		t.dropped++
		return Handle{}
	}
	t.next++
	t.spans = append(t.spans, Span{ID: t.next, Parent: parent, Op: op, Target: target, Start: now})
	return Handle{id: t.next, start: now}
}

// End completes a started span, recording its duration and appending
// any outcome tags. Ending the zero Handle is a no-op.
func (t *Tracer) End(h Handle, tags ...string) {
	if t == nil || h.id == 0 {
		return
	}
	now := time.Now().UnixMicro()
	t.mu.Lock()
	if i := int(h.id) - 1; i >= 0 && i < len(t.spans) {
		t.spans[i].Duration = now - h.start
		if len(tags) > 0 {
			t.spans[i].Tags = append(t.spans[i].Tags, tags...)
		}
	}
	t.mu.Unlock()
}

// Tag appends outcome tags to a started (possibly still open) span.
func (t *Tracer) Tag(h Handle, tags ...string) {
	if t == nil || h.id == 0 || len(tags) == 0 {
		return
	}
	t.mu.Lock()
	if i := int(h.id) - 1; i >= 0 && i < len(t.spans) {
		t.spans[i].Tags = append(t.spans[i].Tags, tags...)
	}
	t.mu.Unlock()
}

// Event records an instantaneous zero-duration span — a point marker
// such as "budget-exhausted" — under the current implicit parent.
func (t *Tracer) Event(op string, target int, tags ...string) {
	if t == nil {
		return
	}
	now := time.Now().UnixMicro()
	t.mu.Lock()
	h := t.startLocked(t.parent, op, target, now)
	if h.id != 0 && len(tags) > 0 {
		t.spans[h.id-1].Tags = append(t.spans[h.id-1].Tags, tags...)
	}
	t.mu.Unlock()
}

// Push makes h the implicit parent for subsequent Start/Event calls;
// Pop restores the previous parent. Push/Pop must pair (defer Pop) and
// are only meaningful on serial layers.
func (t *Tracer) Push(h Handle) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.stack = append(t.stack, t.parent)
	t.parent = h.id
	t.mu.Unlock()
}

// Pop restores the implicit parent saved by the matching Push.
func (t *Tracer) Pop() {
	if t == nil {
		return
	}
	t.mu.Lock()
	if n := len(t.stack); n > 0 {
		t.parent = t.stack[n-1]
		t.stack = t.stack[:n-1]
	}
	t.mu.Unlock()
}

// Parent returns the current implicit parent span id (0 at the root).
func (t *Tracer) Parent() uint32 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	p := t.parent
	t.mu.Unlock()
	return p
}

// Merge grafts spans recorded by another tracer (typically a shard's,
// carried back in a probe response) under the given parent span id.
// Incoming ids are renumbered into this tracer's sequence and internal
// parent references remapped; incoming root-level spans (Parent 0)
// attach under parent. Spans beyond the cap are dropped and counted.
func (t *Tracer) Merge(parent uint32, spans []Span) {
	if t == nil || len(spans) == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	idmap := make(map[uint32]uint32, len(spans))
	for _, s := range spans {
		if len(t.spans) >= t.max {
			t.dropped += uint64(len(spans) - len(idmap))
			return
		}
		t.next++
		idmap[s.ID] = t.next
		p := parent
		if s.Parent != 0 {
			if m, ok := idmap[s.Parent]; ok {
				p = m
			}
		}
		s.ID, s.Parent = t.next, p
		// Tags were decoded fresh from JSON; no aliasing to copy away.
		t.spans = append(t.spans, s)
	}
}

// Spans returns a copy of the recorded spans in id order.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	return out
}

// Len returns the number of recorded spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Dropped returns how many spans were discarded at the cap.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// FormatHeader renders trace context for the X-LCA-Trace header.
func FormatHeader(traceID uint64, parent uint32) string {
	return fmt.Sprintf("%016x-%08x", traceID, parent)
}

// ParseHeader parses an X-LCA-Trace value. It accepts exactly the
// FormatHeader form: 16 lowercase hex digits, '-', 8 lowercase hex
// digits. A malformed or absent value yields ok == false, which callers
// must treat as "not traced" — never an error, per the wire contract.
func ParseHeader(s string) (traceID uint64, parent uint32, ok bool) {
	if len(s) != 25 || s[16] != '-' {
		return 0, 0, false
	}
	var hi uint64
	for i := 0; i < 16; i++ {
		d, ok := hexDigit(s[i])
		if !ok {
			return 0, 0, false
		}
		hi = hi<<4 | uint64(d)
	}
	var lo uint32
	for i := 17; i < 25; i++ {
		d, ok := hexDigit(s[i])
		if !ok {
			return 0, 0, false
		}
		lo = lo<<4 | uint32(d)
	}
	if hi == 0 {
		return 0, 0, false
	}
	return hi, lo, true
}

func hexDigit(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	}
	return 0, false
}
