package trace

import (
	"sync"
	"sync/atomic"
)

// Record is one finished, retained trace: the exported form served by
// GET /traces and attached to traced answers. Root carries the root
// span's op ("query:vertex/mis"); Probes and RoundTrips are the query's
// totals so the ring is scannable without walking span trees.
type Record struct {
	ID         string `json:"id"` // 16-hex trace id
	Root       string `json:"root"`
	Start      int64  `json:"start_us"`
	DurationUS int64  `json:"duration_us"`
	Probes     uint64 `json:"probes,omitempty"`
	RoundTrips uint64 `json:"round_trips,omitempty"`
	Slow       bool   `json:"slow,omitempty"`
	Truncated  bool   `json:"truncated,omitempty"`
	Dropped    uint64 `json:"dropped_spans,omitempty"`
	Spans      []Span `json:"spans"`
}

// Ring retains recently finished traces in two bounded circular
// buffers: a recent ring that sampled traces rotate through, and a slow
// ring that force-retains threshold violators so a burst of ordinary
// traffic cannot evict the evidence for a latency incident. Memory is
// O(recentCap + slowCap) · MaxSpans regardless of traffic.
type Ring struct {
	mu     sync.Mutex
	recent []Record
	rpos   int
	slow   []Record
	spos   int
	rcap   int
	scap   int

	added atomic.Uint64
}

// NewRing returns a ring retaining up to recentCap sampled traces and
// slowCap slow-query traces (defaults 256 and 64 for non-positive
// values).
func NewRing(recentCap, slowCap int) *Ring {
	if recentCap <= 0 {
		recentCap = 256
	}
	if slowCap <= 0 {
		slowCap = 64
	}
	return &Ring{rcap: recentCap, scap: slowCap}
}

// Add retains a finished trace. A record with Slow set goes to the slow
// ring, others to the recent ring; the oldest entry in the target ring
// is overwritten once it is full.
func (r *Ring) Add(rec Record) {
	if r == nil {
		return
	}
	r.added.Add(1)
	r.mu.Lock()
	defer r.mu.Unlock()
	if rec.Slow {
		r.slow, r.spos = ringPut(r.slow, r.spos, r.scap, rec)
		return
	}
	r.recent, r.rpos = ringPut(r.recent, r.rpos, r.rcap, rec)
}

func ringPut(buf []Record, pos, cap_ int, rec Record) ([]Record, int) {
	if len(buf) < cap_ {
		return append(buf, rec), pos
	}
	buf[pos] = rec
	return buf, (pos + 1) % cap_
}

// Recent returns the retained sampled traces, newest first.
func (r *Ring) Recent() []Record {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return ringSnapshot(r.recent, r.rpos)
}

// Slow returns the retained slow-query traces, newest first.
func (r *Ring) Slow() []Record {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return ringSnapshot(r.slow, r.spos)
}

// ringSnapshot copies buf newest-first. pos is the next overwrite slot,
// i.e. the oldest entry once the buffer is full.
func ringSnapshot(buf []Record, pos int) []Record {
	out := make([]Record, 0, len(buf))
	if len(buf) == 0 {
		return out
	}
	// Newest is the slot just before pos (or the last append).
	start := pos - 1
	if start < 0 {
		start = len(buf) - 1
	}
	for i := 0; i < len(buf); i++ {
		j := start - i
		if j < 0 {
			j += len(buf)
		}
		out = append(out, buf[j])
	}
	return out
}

// Get returns the retained trace with the given 16-hex id, preferring
// the slow ring (its retention is the stronger promise).
func (r *Ring) Get(id string) (Record, bool) {
	if r == nil {
		return Record{}, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range r.slow {
		if r.slow[i].ID == id {
			return r.slow[i], true
		}
	}
	for i := range r.recent {
		if r.recent[i].ID == id {
			return r.recent[i], true
		}
	}
	return Record{}, false
}

// Added returns the total number of traces ever retained.
func (r *Ring) Added() uint64 {
	if r == nil {
		return 0
	}
	return r.added.Load()
}

// Sampler makes head-based 1-in-N sampling decisions with a single
// atomic counter. The nil sampler and N <= 0 never sample; N == 1
// samples everything.
type Sampler struct {
	n   uint64
	ctr atomic.Uint64
}

// NewSampler returns a sampler admitting one in every n decisions
// (nil for n <= 0, so the disabled plane costs a nil test).
func NewSampler(n int) *Sampler {
	if n <= 0 {
		return nil
	}
	return &Sampler{n: uint64(n)}
}

// Sample reports whether this request is sampled. The first request is
// always sampled (so a fresh server's smoke test sees a trace), then
// every n-th after it.
func (s *Sampler) Sample() bool {
	if s == nil {
		return false
	}
	return (s.ctr.Add(1)-1)%s.n == 0
}
