package core

import (
	"strings"
	"testing"

	"lca/internal/graph"
	"lca/internal/oracle"
	"lca/internal/rnd"
)

// thresholdLCA keeps an edge iff min(deg u, deg v) <= cut; a trivial but
// honest EdgeLCA that probes degrees through a counter.
type thresholdLCA struct {
	o   *oracle.Counter
	cut int
}

func newThresholdLCA(g *graph.Graph, cut int) *thresholdLCA {
	return &thresholdLCA{o: oracle.NewCounter(oracle.New(g)), cut: cut}
}

func (t *thresholdLCA) QueryEdge(u, v int) bool {
	du, dv := t.o.Degree(u), t.o.Degree(v)
	return du <= t.cut || dv <= t.cut
}

func (t *thresholdLCA) ProbeStats() oracle.Stats { return t.o.Stats() }

func star(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(0, i)
	}
	return b.Build()
}

func cycleG(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(i, (i+1)%n)
	}
	return b.Build()
}

func TestBuildSubgraphAndStats(t *testing.T) {
	g := star(10)
	lca := newThresholdLCA(g, 1) // leaves have degree 1, so all edges kept
	h, stats := BuildSubgraph(g, lca)
	if h.M() != g.M() {
		t.Fatalf("kept %d edges, want %d", h.M(), g.M())
	}
	if stats.Queries != g.M() {
		t.Fatalf("queries = %d, want %d", stats.Queries, g.M())
	}
	if stats.MaxTotal != 2 {
		t.Fatalf("max probes per query = %d, want 2", stats.MaxTotal)
	}
	if stats.Mean() != 2 {
		t.Fatalf("mean = %f, want 2", stats.Mean())
	}
	if stats.ByKind.Degree != uint64(2*g.M()) {
		t.Fatalf("degree probes = %d", stats.ByKind.Degree)
	}
	if !strings.Contains(stats.String(), "max=2") {
		t.Errorf("String() = %q", stats.String())
	}
}

func TestBuildSubgraphRejects(t *testing.T) {
	g := cycleG(8) // all degrees 2
	lca := newThresholdLCA(g, 1)
	h, _ := BuildSubgraph(g, lca)
	if h.M() != 0 {
		t.Fatalf("kept %d edges, want 0", h.M())
	}
}

type constVertexLCA bool

func (c constVertexLCA) QueryVertex(int) bool { return bool(c) }

type modLabelLCA int

func (m modLabelLCA) QueryLabel(v int) int { return v % int(m) }

func TestBuildVertexSetAndLabels(t *testing.T) {
	g := cycleG(6)
	in, stats := BuildVertexSet(g, constVertexLCA(true))
	if stats.Queries != 6 {
		t.Fatalf("queries = %d", stats.Queries)
	}
	for v, b := range in {
		if !b {
			t.Fatalf("vertex %d not selected", v)
		}
	}
	labels, _ := BuildLabels(g, modLabelLCA(3))
	for v, l := range labels {
		if l != v%3 {
			t.Fatalf("label(%d) = %d", v, l)
		}
	}
}

type asymmetricLCA struct{}

func (asymmetricLCA) QueryEdge(u, v int) bool { return u < v }

func TestCheckSymmetric(t *testing.T) {
	g := cycleG(5)
	if _, ok := CheckSymmetric(g, newThresholdLCA(g, 2)); !ok {
		t.Error("threshold LCA should be symmetric")
	}
	if _, ok := CheckSymmetric(g, asymmetricLCA{}); ok {
		t.Error("asymmetric LCA not detected")
	}
}

type flipFlopLCA struct{ calls int }

func (f *flipFlopLCA) QueryEdge(u, v int) bool {
	f.calls++
	return f.calls%2 == 0
}

func TestCheckRepeatable(t *testing.T) {
	g := cycleG(5)
	if _, ok := CheckRepeatable(g, newThresholdLCA(g, 2)); !ok {
		t.Error("stateless LCA should be repeatable")
	}
	if _, ok := CheckRepeatable(g, &flipFlopLCA{}); ok {
		t.Error("stateful LCA not detected")
	}
}

func TestVerifyStretch(t *testing.T) {
	g := cycleG(8)
	// Spanning path: drop one edge; the dropped edge has stretch 7.
	h := graph.FromEdges(8, g.Edges()[:7])
	rep := VerifyStretch(g, h, 7)
	if rep.Violations != 0 || rep.MaxStretch != 7 || rep.Checked != 8 {
		t.Fatalf("report = %+v", rep)
	}
	rep = VerifyStretch(g, h, 6)
	if rep.Violations != 1 {
		t.Fatalf("want one violation, got %+v", rep)
	}
	if got := ExactMaxStretch(g, h); got != 7 {
		t.Fatalf("ExactMaxStretch = %d, want 7", got)
	}
}

func TestVerifyStretchDisconnected(t *testing.T) {
	g := cycleG(6)
	h := graph.FromEdges(6, g.Edges()[:4]) // two missing edges disconnect nothing? 4 of 6 edges: still connected? A cycle minus 2 edges is 2 paths.
	if ExactMaxStretch(g, h) != -1 {
		t.Fatal("expected disconnection marker -1")
	}
	rep := VerifyStretch(g, h, 10)
	if rep.Violations == 0 {
		t.Fatal("expected violations for disconnected endpoints")
	}
}

func TestVerifyStretchSampled(t *testing.T) {
	g := cycleG(100)
	rep := VerifyStretchSampled(g, g, 1, 20, 7)
	if rep.Checked != 20 || rep.Violations != 0 || rep.MaxStretch != 1 {
		t.Fatalf("sampled report = %+v", rep)
	}
	// Sampling more than |E| degrades to exhaustive.
	rep = VerifyStretchSampled(g, g, 1, 1000, 7)
	if rep.Checked != 100 {
		t.Fatalf("exhaustive fallback checked %d", rep.Checked)
	}
}

func TestVerifySubgraphOf(t *testing.T) {
	g := cycleG(5)
	if err := VerifySubgraphOf(g, g); err != nil {
		t.Error(err)
	}
	other := graph.FromEdges(5, []graph.Edge{{U: 0, V: 2}})
	if err := VerifySubgraphOf(g, other); err == nil {
		t.Error("chord should not verify as subgraph of the cycle")
	}
	small := graph.NewBuilder(3).Build()
	if err := VerifySubgraphOf(g, small); err == nil {
		t.Error("vertex count mismatch not caught")
	}
}

func TestVerifyConnectivityPreserved(t *testing.T) {
	g := cycleG(6)
	if err := VerifyConnectivityPreserved(g, graph.FromEdges(6, g.Edges()[:5])); err != nil {
		t.Error(err)
	}
	if err := VerifyConnectivityPreserved(g, graph.FromEdges(6, g.Edges()[:3])); err == nil {
		t.Error("disconnection not caught")
	}
}

func TestVerifyMISCheckers(t *testing.T) {
	g := cycleG(6)
	good := []bool{true, false, true, false, true, false}
	if err := VerifyMaximalIndependentSet(g, good); err != nil {
		t.Error(err)
	}
	adjacent := []bool{true, true, false, false, false, false}
	if err := VerifyIndependentSet(g, adjacent); err == nil {
		t.Error("adjacent selection not caught")
	}
	notMaximal := []bool{true, false, false, false, true, false}
	if err := VerifyMaximalIndependentSet(g, notMaximal); err == nil {
		t.Error("non-maximal set not caught")
	}
}

func TestVerifyMatchingCheckers(t *testing.T) {
	g := cycleG(6)
	m := graph.FromEdges(6, []graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}, {U: 4, V: 5}})
	if err := VerifyMaximalMatching(g, m); err != nil {
		t.Error(err)
	}
	shared := graph.FromEdges(6, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	if err := VerifyMatching(g, shared); err == nil {
		t.Error("shared endpoint not caught")
	}
	sparse := graph.FromEdges(6, []graph.Edge{{U: 0, V: 1}})
	if err := VerifyMaximalMatching(g, sparse); err == nil {
		t.Error("non-maximal matching not caught")
	}
}

func TestVerifyVertexCover(t *testing.T) {
	g := cycleG(4)
	if err := VerifyVertexCover(g, []bool{true, false, true, false}); err != nil {
		t.Error(err)
	}
	if err := VerifyVertexCover(g, []bool{true, false, false, false}); err == nil {
		t.Error("uncovered edge not caught")
	}
}

func TestVerifyColoring(t *testing.T) {
	g := cycleG(4)
	if err := VerifyColoring(g, []int{0, 1, 0, 1}, 2); err != nil {
		t.Error(err)
	}
	if err := VerifyColoring(g, []int{0, 0, 1, 1}, 2); err == nil {
		t.Error("monochromatic edge not caught")
	}
	if err := VerifyColoring(g, []int{0, 1, 0, 5}, 2); err == nil {
		t.Error("out-of-range color not caught")
	}
}

func TestQueryStatsObserve(t *testing.T) {
	var q QueryStats
	q.Observe(oracle.Stats{Neighbor: 3})
	q.Observe(oracle.Stats{Neighbor: 1, Degree: 2})
	if q.Queries != 2 || q.MaxTotal != 3 || q.SumTotal != 6 {
		t.Fatalf("stats = %+v", q)
	}
	if q.Mean() != 3 {
		t.Fatalf("mean = %f", q.Mean())
	}
}

func TestVerifyStretchSampledDeterministic(t *testing.T) {
	g := cycleG(50)
	h := graph.FromEdges(50, g.Edges()[:49])
	a := VerifyStretchSampled(g, h, 49, 10, rnd.Seed(3))
	b := VerifyStretchSampled(g, h, 49, 10, rnd.Seed(3))
	if a != b {
		t.Error("sampled verification not deterministic for a fixed seed")
	}
}
