package core

// Parallel assembly. The defining property of LCAs — queries share no
// state beyond the immutable (graph, seed) pair — makes them trivially
// parallel: give every worker its own LCA instance and partition the
// queries. This is also how a real deployment would serve queries (one
// instance per serving goroutine or per machine), so the harness doubles
// as a demonstration that instances never need to coordinate.

import (
	"runtime"
	"sync"

	"lca/internal/graph"
)

// BuildSubgraphParallel assembles the LCA's subgraph using one independent
// LCA instance per worker. factory must return a fresh instance answering
// for the same (graph, seed); workers <= 0 selects GOMAXPROCS. The result
// is identical to BuildSubgraph on any of the instances. Per-query probe
// stats are aggregated across workers (max is a true max, the mean is
// exact).
func BuildSubgraphParallel(g *graph.Graph, factory func() EdgeLCA, workers int) (*graph.Graph, QueryStats) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	edges := g.Edges()
	if workers > len(edges) {
		workers = len(edges)
	}
	if workers <= 1 {
		return BuildSubgraph(g, factory())
	}
	type result struct {
		kept  []graph.Edge
		stats QueryStats
	}
	results := make([]result, workers)
	var wg sync.WaitGroup
	chunk := (len(edges) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(edges) {
			hi = len(edges)
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			lca := factory()
			reporter, _ := lca.(ProbeReporter)
			res := result{}
			for _, e := range edges[lo:hi] {
				var before, after QueryStats
				if reporter != nil {
					before.ByKind = reporter.ProbeStats()
				}
				if lca.QueryEdge(e.U, e.V) {
					res.kept = append(res.kept, e)
				}
				if reporter != nil {
					after.ByKind = reporter.ProbeStats()
					res.stats.Observe(after.ByKind.Sub(before.ByKind))
				} else {
					res.stats.Queries++
				}
			}
			results[w] = res
		}(w, lo, hi)
	}
	wg.Wait()
	b := graph.NewBuilder(g.N())
	var agg QueryStats
	for _, res := range results {
		for _, e := range res.kept {
			b.AddEdge(e.U, e.V)
		}
		agg.Merge(res.stats)
	}
	return b.Build(), agg
}

// BuildLabelsParallel is the labeling analogue of BuildSubgraphParallel.
// Label queries recurse through overlapping lower-priority neighborhoods,
// so the Session's worker factory builds instances over one shared
// concurrency-safe oracle.CachingOracle: a probe one worker pays for
// answers every worker's repeats, and answers are unchanged (cached cells
// are pure functions of graph and seed).
func BuildLabelsParallel(g *graph.Graph, factory func() LabelLCA, workers int) ([]int, QueryStats) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := g.N()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		return BuildLabels(g, factory())
	}
	labels := make([]int, n)
	statsPer := make([]QueryStats, workers)
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			lca := factory()
			reporter, _ := lca.(ProbeReporter)
			for v := lo; v < hi; v++ {
				if reporter != nil {
					before := reporter.ProbeStats()
					labels[v] = lca.QueryLabel(v)
					statsPer[w].Observe(reporter.ProbeStats().Sub(before))
				} else {
					labels[v] = lca.QueryLabel(v)
					statsPer[w].Queries++
				}
			}
		}(w, lo, hi)
	}
	wg.Wait()
	var agg QueryStats
	for _, s := range statsPer {
		agg.Merge(s)
	}
	return labels, agg
}

// BuildVertexSetParallel is the vertex analogue of BuildSubgraphParallel.
func BuildVertexSetParallel(g *graph.Graph, factory func() VertexLCA, workers int) ([]bool, QueryStats) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := g.N()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		return BuildVertexSet(g, factory())
	}
	in := make([]bool, n)
	statsPer := make([]QueryStats, workers)
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			lca := factory()
			reporter, _ := lca.(ProbeReporter)
			for v := lo; v < hi; v++ {
				if reporter != nil {
					before := reporter.ProbeStats()
					in[v] = lca.QueryVertex(v)
					statsPer[w].Observe(reporter.ProbeStats().Sub(before))
				} else {
					in[v] = lca.QueryVertex(v)
					statsPer[w].Queries++
				}
			}
		}(w, lo, hi)
	}
	wg.Wait()
	var agg QueryStats
	for _, s := range statsPer {
		agg.Merge(s)
	}
	return in, agg
}
