// Package core defines the local-computation-algorithm abstractions shared
// by every algorithm family in this library, and the harness that turns
// per-query answers into global solutions for verification and
// experimentation.
//
// An LCA is a query-answering object: given an edge or vertex it returns
// that element's role in one fixed global solution, consulting only the
// probe oracle and a short seed. The harness enumerates all queries to
// materialize the solution — something a real deployment never does, but
// which is exactly how the theory's guarantees (consistency, stretch,
// maximality, ...) become checkable.
package core

import (
	"fmt"

	"lca/internal/graph"
	"lca/internal/oracle"
)

// EdgeLCA answers membership queries about a fixed subgraph H of the input
// graph: QueryEdge(u, v) reports whether edge (u,v) belongs to H. Answers
// must be symmetric and consistent across queries. (u,v) must be an edge of
// the input graph.
type EdgeLCA interface {
	QueryEdge(u, v int) bool
}

// VertexLCA answers membership queries about a fixed vertex set (for
// example, a maximal independent set).
type VertexLCA interface {
	QueryVertex(v int) bool
}

// LabelLCA answers labeling queries about a fixed vertex labeling (for
// example, a proper coloring).
type LabelLCA interface {
	QueryLabel(v int) int
}

// ProbeReporter is implemented by LCAs that expose their probe counter for
// per-query accounting.
type ProbeReporter interface {
	ProbeStats() oracle.Stats
}

// QueryStats aggregates per-query probe counts across a batch of queries.
// ByKind carries the exploration-era transport accounting too: Batches
// (neighborhood operations issued) and RoundTrips (backend network round
// trips, 0 on local chains) accumulate alongside the cell counts, while
// MaxTotal/SumTotal/Mean stay pure cell-probe measures — the theory's
// metric is untouched by how probes are transported.
type QueryStats struct {
	Queries  int
	MaxTotal uint64
	SumTotal uint64
	ByKind   oracle.Stats
}

// Observe folds one query's probe delta into the aggregate.
func (q *QueryStats) Observe(delta oracle.Stats) {
	q.Queries++
	t := delta.Total()
	if t > q.MaxTotal {
		q.MaxTotal = t
	}
	q.SumTotal += t
	q.ByKind.Neighbor += delta.Neighbor
	q.ByKind.Degree += delta.Degree
	q.ByKind.Adjacency += delta.Adjacency
	q.ByKind.Batches += delta.Batches
	q.ByKind.RoundTrips += delta.RoundTrips
	q.ByKind.Failovers += delta.Failovers
	q.ByKind.Hedges += delta.Hedges
	q.ByKind.AttestFailures += delta.AttestFailures
	q.ByKind.ProofBytes += delta.ProofBytes
	q.ByKind.RemainderTrips += delta.RemainderTrips
	q.ByKind.PageTouches += delta.PageTouches
	q.ByKind.LocalHits += delta.LocalHits
	// FetchWidth is a gauge, not a counter: keep the latest nonzero
	// snapshot rather than summing widths across queries.
	if delta.FetchWidth > 0 {
		q.ByKind.FetchWidth = delta.FetchWidth
	}
}

// Merge folds another aggregate into q (sums are added, max is the true
// max), used to combine per-worker stats after parallel assembly.
func (q *QueryStats) Merge(s QueryStats) {
	q.Queries += s.Queries
	q.SumTotal += s.SumTotal
	if s.MaxTotal > q.MaxTotal {
		q.MaxTotal = s.MaxTotal
	}
	q.ByKind.Neighbor += s.ByKind.Neighbor
	q.ByKind.Degree += s.ByKind.Degree
	q.ByKind.Adjacency += s.ByKind.Adjacency
	q.ByKind.Batches += s.ByKind.Batches
	q.ByKind.RoundTrips += s.ByKind.RoundTrips
	q.ByKind.Failovers += s.ByKind.Failovers
	q.ByKind.Hedges += s.ByKind.Hedges
	q.ByKind.AttestFailures += s.ByKind.AttestFailures
	q.ByKind.ProofBytes += s.ByKind.ProofBytes
	q.ByKind.RemainderTrips += s.ByKind.RemainderTrips
	q.ByKind.PageTouches += s.ByKind.PageTouches
	q.ByKind.LocalHits += s.ByKind.LocalHits
	if s.ByKind.FetchWidth > 0 {
		q.ByKind.FetchWidth = s.ByKind.FetchWidth
	}
}

// Mean returns the mean probes per query.
func (q QueryStats) Mean() float64 {
	if q.Queries == 0 {
		return 0
	}
	return float64(q.SumTotal) / float64(q.Queries)
}

// MeanRoundTrips returns the mean backend round trips per query (0 on
// local chains).
func (q QueryStats) MeanRoundTrips() float64 {
	if q.Queries == 0 {
		return 0
	}
	return float64(q.ByKind.RoundTrips) / float64(q.Queries)
}

// String renders the stats compactly; the round-trip, failover and hedge
// figures appear only when a network backend made them meaningful.
func (q QueryStats) String() string {
	s := fmt.Sprintf("queries=%d max=%d mean=%.1f (nbr=%d deg=%d adj=%d)",
		q.Queries, q.MaxTotal, q.Mean(), q.ByKind.Neighbor, q.ByKind.Degree, q.ByKind.Adjacency)
	if q.ByKind.RoundTrips > 0 {
		s += fmt.Sprintf(" rt=%d", q.ByKind.RoundTrips)
	}
	if q.ByKind.Failovers > 0 {
		s += fmt.Sprintf(" failover=%d", q.ByKind.Failovers)
	}
	if q.ByKind.Hedges > 0 {
		s += fmt.Sprintf(" hedge=%d", q.ByKind.Hedges)
	}
	if q.ByKind.AttestFailures > 0 {
		s += fmt.Sprintf(" attest_fail=%d", q.ByKind.AttestFailures)
	}
	if q.ByKind.ProofBytes > 0 {
		s += fmt.Sprintf(" proof_bytes=%d", q.ByKind.ProofBytes)
	}
	if q.ByKind.RemainderTrips > 0 {
		s += fmt.Sprintf(" remainder=%d", q.ByKind.RemainderTrips)
	}
	if q.ByKind.FetchWidth > 0 {
		s += fmt.Sprintf(" width=%d", q.ByKind.FetchWidth)
	}
	if q.ByKind.PageTouches > 0 || q.ByKind.LocalHits > 0 {
		s += fmt.Sprintf(" pages=%d local=%d", q.ByKind.PageTouches, q.ByKind.LocalHits)
	}
	return s
}

// BuildSubgraph queries the LCA on every edge of g and assembles the
// selected subgraph. The returned stats carry per-query probe accounting if
// the LCA implements ProbeReporter (via a Counter it owns).
func BuildSubgraph(g *graph.Graph, lca EdgeLCA) (*graph.Graph, QueryStats) {
	var stats QueryStats
	reporter, _ := lca.(ProbeReporter)
	b := graph.NewBuilder(g.N())
	for _, e := range g.Edges() {
		var before oracle.Stats
		if reporter != nil {
			before = reporter.ProbeStats()
		}
		if lca.QueryEdge(e.U, e.V) {
			b.AddEdge(e.U, e.V)
		}
		if reporter != nil {
			stats.Observe(reporter.ProbeStats().Sub(before))
		} else {
			stats.Queries++
		}
	}
	return b.Build(), stats
}

// BuildVertexSet queries the LCA on every vertex and returns the selected
// set as a boolean slice.
func BuildVertexSet(g *graph.Graph, lca VertexLCA) ([]bool, QueryStats) {
	var stats QueryStats
	reporter, _ := lca.(ProbeReporter)
	in := make([]bool, g.N())
	for v := 0; v < g.N(); v++ {
		var before oracle.Stats
		if reporter != nil {
			before = reporter.ProbeStats()
		}
		in[v] = lca.QueryVertex(v)
		if reporter != nil {
			stats.Observe(reporter.ProbeStats().Sub(before))
		} else {
			stats.Queries++
		}
	}
	return in, stats
}

// BuildLabels queries the LCA on every vertex and returns the labeling.
func BuildLabels(g *graph.Graph, lca LabelLCA) ([]int, QueryStats) {
	var stats QueryStats
	reporter, _ := lca.(ProbeReporter)
	labels := make([]int, g.N())
	for v := 0; v < g.N(); v++ {
		var before oracle.Stats
		if reporter != nil {
			before = reporter.ProbeStats()
		}
		labels[v] = lca.QueryLabel(v)
		if reporter != nil {
			stats.Observe(reporter.ProbeStats().Sub(before))
		} else {
			stats.Queries++
		}
	}
	return labels, stats
}

// CheckSymmetric verifies QueryEdge(u,v) == QueryEdge(v,u) on every edge
// and returns the first violating edge, if any.
func CheckSymmetric(g *graph.Graph, lca EdgeLCA) (graph.Edge, bool) {
	for _, e := range g.Edges() {
		if lca.QueryEdge(e.U, e.V) != lca.QueryEdge(e.V, e.U) {
			return e, false
		}
	}
	return graph.Edge{}, true
}

// CheckRepeatable verifies that re-querying every edge yields the same
// answers (no hidden mutable state leaking across queries).
func CheckRepeatable(g *graph.Graph, lca EdgeLCA) (graph.Edge, bool) {
	first := make(map[uint64]bool, g.M())
	for _, e := range g.Edges() {
		first[e.Key()] = lca.QueryEdge(e.U, e.V)
	}
	// Second pass in reverse order to perturb any order-sensitivity.
	edges := g.Edges()
	for i := len(edges) - 1; i >= 0; i-- {
		e := edges[i]
		if lca.QueryEdge(e.U, e.V) != first[e.Key()] {
			return e, false
		}
	}
	return graph.Edge{}, true
}
