package core

// Verifiers for the global invariants that LCA answers must collectively
// satisfy. These run on materialized solutions (small instances or sampled
// checks on large ones) and are the backbone of the test suite and the
// experiment harness.

import (
	"fmt"

	"lca/internal/graph"
	"lca/internal/rnd"
)

// StretchReport summarizes a stretch verification pass.
type StretchReport struct {
	Checked     int     // edges examined
	Violations  int     // edges with stretch above the bound
	MaxStretch  int     // maximum observed stretch over checked edges
	MeanStretch float64 // mean observed stretch
}

// VerifyStretch checks, for every edge (u,v) of g (spanner queries are per
// edge, so edge stretch is the right notion), that dist_H(u,v) <= maxStretch.
// H must be a subgraph of g on the same vertex set. Edges present in H
// trivially have stretch 1 and are included in the statistics.
func VerifyStretch(g, h *graph.Graph, maxStretch int) StretchReport {
	return verifyStretch(g, h, maxStretch, g.Edges())
}

// VerifyStretchSampled checks a uniform sample of g's edges, for instances
// too large to verify exhaustively.
func VerifyStretchSampled(g, h *graph.Graph, maxStretch, sample int, seed rnd.Seed) StretchReport {
	edges := g.Edges()
	if sample >= len(edges) {
		return verifyStretch(g, h, maxStretch, edges)
	}
	prg := rnd.NewPRG(seed)
	picked := make([]graph.Edge, sample)
	for i := range picked {
		picked[i] = edges[prg.Intn(len(edges))]
	}
	return verifyStretch(g, h, maxStretch, picked)
}

func verifyStretch(g, h *graph.Graph, maxStretch int, edges []graph.Edge) StretchReport {
	rep := StretchReport{}
	sum := 0
	for _, e := range edges {
		rep.Checked++
		d := h.Dist(e.U, e.V, maxStretch)
		if d < 0 {
			rep.Violations++
			// Record the bound+1 as a floor for the max; the true stretch
			// may be larger or infinite.
			if maxStretch+1 > rep.MaxStretch {
				rep.MaxStretch = maxStretch + 1
			}
			sum += maxStretch + 1
			continue
		}
		if d > rep.MaxStretch {
			rep.MaxStretch = d
		}
		sum += d
	}
	if rep.Checked > 0 {
		rep.MeanStretch = float64(sum) / float64(rep.Checked)
	}
	return rep
}

// ExactMaxStretch computes the exact maximum edge stretch of h with respect
// to g (unbounded BFS per edge; small instances only). It returns -1 if
// some g-edge's endpoints are disconnected in h.
func ExactMaxStretch(g, h *graph.Graph) int {
	max := 0
	for _, e := range g.Edges() {
		d := h.Dist(e.U, e.V, -1)
		if d < 0 {
			return -1
		}
		if d > max {
			max = d
		}
	}
	return max
}

// VerifySubgraphOf checks that every edge of h is an edge of g.
func VerifySubgraphOf(g, h *graph.Graph) error {
	if g.N() != h.N() {
		return fmt.Errorf("vertex counts differ: %d vs %d", g.N(), h.N())
	}
	for _, e := range h.Edges() {
		if !g.HasEdge(e.U, e.V) {
			return fmt.Errorf("edge (%d,%d) of H is not in G", e.U, e.V)
		}
	}
	return nil
}

// VerifyConnectivityPreserved checks that h spans every connected component
// of g.
func VerifyConnectivityPreserved(g, h *graph.Graph) error {
	if !graph.SameComponents(g, h) {
		return fmt.Errorf("H does not preserve the component structure of G")
	}
	return nil
}

// VerifyIndependentSet checks that the set is independent in g.
func VerifyIndependentSet(g *graph.Graph, in []bool) error {
	for _, e := range g.Edges() {
		if in[e.U] && in[e.V] {
			return fmt.Errorf("vertices %d and %d are adjacent and both selected", e.U, e.V)
		}
	}
	return nil
}

// VerifyMaximalIndependentSet checks independence and maximality: every
// unselected vertex has a selected neighbor.
func VerifyMaximalIndependentSet(g *graph.Graph, in []bool) error {
	if err := VerifyIndependentSet(g, in); err != nil {
		return err
	}
	for v := 0; v < g.N(); v++ {
		if in[v] {
			continue
		}
		dominated := false
		for _, w := range g.Neighbors(v) {
			if in[w] {
				dominated = true
				break
			}
		}
		if !dominated {
			return fmt.Errorf("vertex %d could be added: set not maximal", v)
		}
	}
	return nil
}

// VerifyMatching checks that the edge set (as a subgraph) is a matching:
// no two selected edges share an endpoint.
func VerifyMatching(g *graph.Graph, m *graph.Graph) error {
	if err := VerifySubgraphOf(g, m); err != nil {
		return err
	}
	for v := 0; v < m.N(); v++ {
		if m.Degree(v) > 1 {
			return fmt.Errorf("vertex %d matched %d times", v, m.Degree(v))
		}
	}
	return nil
}

// VerifyMaximalMatching additionally checks maximality: every edge of g has
// a matched endpoint.
func VerifyMaximalMatching(g *graph.Graph, m *graph.Graph) error {
	if err := VerifyMatching(g, m); err != nil {
		return err
	}
	for _, e := range g.Edges() {
		if m.Degree(e.U) == 0 && m.Degree(e.V) == 0 {
			return fmt.Errorf("edge (%d,%d) has no matched endpoint: matching not maximal", e.U, e.V)
		}
	}
	return nil
}

// VerifyVertexCover checks that the set covers every edge of g.
func VerifyVertexCover(g *graph.Graph, in []bool) error {
	for _, e := range g.Edges() {
		if !in[e.U] && !in[e.V] {
			return fmt.Errorf("edge (%d,%d) uncovered", e.U, e.V)
		}
	}
	return nil
}

// VerifyColoring checks that the labeling is a proper coloring with colors
// in [0, maxColors).
func VerifyColoring(g *graph.Graph, colors []int, maxColors int) error {
	for v, c := range colors {
		if c < 0 || c >= maxColors {
			return fmt.Errorf("vertex %d has color %d outside [0,%d)", v, c, maxColors)
		}
	}
	for _, e := range g.Edges() {
		if colors[e.U] == colors[e.V] {
			return fmt.Errorf("edge (%d,%d) monochromatic with color %d", e.U, e.V, colors[e.U])
		}
	}
	return nil
}
