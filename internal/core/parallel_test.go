package core

import (
	"testing"

	"lca/internal/graph"
	"lca/internal/oracle"
)

// parityLCA keeps edges whose endpoint sum is even; probes one degree per
// endpoint so stats aggregation is observable.
type parityLCA struct {
	o *oracle.Counter
}

func newParityLCA(g *graph.Graph) *parityLCA {
	return &parityLCA{o: oracle.NewCounter(oracle.New(g))}
}

func (p *parityLCA) QueryEdge(u, v int) bool {
	p.o.Degree(u)
	p.o.Degree(v)
	return (u+v)%2 == 0
}

func (p *parityLCA) ProbeStats() oracle.Stats { return p.o.Stats() }

type oddVertexLCA struct{}

func (oddVertexLCA) QueryVertex(v int) bool { return v%2 == 1 }

func parallelTestGraph() *graph.Graph {
	b := graph.NewBuilder(200)
	for i := 0; i < 200; i++ {
		for j := 1; j <= 3; j++ {
			b.AddEdge(i, (i+j*7)%200)
		}
	}
	return b.Build()
}

func TestBuildSubgraphParallelMatchesSerial(t *testing.T) {
	g := parallelTestGraph()
	serial, serialStats := BuildSubgraph(g, newParityLCA(g))
	for _, workers := range []int{1, 2, 3, 8, 64} {
		par, parStats := BuildSubgraphParallel(g, func() EdgeLCA { return newParityLCA(g) }, workers)
		if par.M() != serial.M() {
			t.Fatalf("workers=%d: %d edges vs serial %d", workers, par.M(), serial.M())
		}
		for _, e := range serial.Edges() {
			if !par.HasEdge(e.U, e.V) {
				t.Fatalf("workers=%d: missing edge %v", workers, e)
			}
		}
		if parStats.Queries != serialStats.Queries {
			t.Fatalf("workers=%d: %d queries vs serial %d", workers, parStats.Queries, serialStats.Queries)
		}
		if parStats.SumTotal != serialStats.SumTotal {
			t.Fatalf("workers=%d: %d probes vs serial %d", workers, parStats.SumTotal, serialStats.SumTotal)
		}
		if parStats.MaxTotal != 2 {
			t.Fatalf("workers=%d: max per-query probes %d, want 2", workers, parStats.MaxTotal)
		}
	}
}

func TestBuildSubgraphParallelDefaultsWorkers(t *testing.T) {
	g := parallelTestGraph()
	par, _ := BuildSubgraphParallel(g, func() EdgeLCA { return newParityLCA(g) }, 0)
	serial, _ := BuildSubgraph(g, newParityLCA(g))
	if par.M() != serial.M() {
		t.Fatal("default worker count changed the result")
	}
}

func TestBuildSubgraphParallelMoreWorkersThanEdges(t *testing.T) {
	b := graph.NewBuilder(4)
	b.AddEdge(0, 2)
	b.AddEdge(1, 3)
	g := b.Build()
	par, stats := BuildSubgraphParallel(g, func() EdgeLCA { return newParityLCA(g) }, 16)
	if par.M() != 2 || stats.Queries != 2 {
		t.Fatalf("tiny graph: m=%d queries=%d", par.M(), stats.Queries)
	}
}

func TestBuildVertexSetParallelMatchesSerial(t *testing.T) {
	g := parallelTestGraph()
	serial, _ := BuildVertexSet(g, oddVertexLCA{})
	for _, workers := range []int{2, 5, 32} {
		par, stats := BuildVertexSetParallel(g, func() VertexLCA { return oddVertexLCA{} }, workers)
		if stats.Queries != g.N() {
			t.Fatalf("workers=%d: %d queries", workers, stats.Queries)
		}
		for v := range serial {
			if par[v] != serial[v] {
				t.Fatalf("workers=%d: disagreement at %d", workers, v)
			}
		}
	}
}
