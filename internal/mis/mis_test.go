package mis

import (
	"sort"
	"testing"

	"lca/internal/baseline"
	"lca/internal/core"
	"lca/internal/gen"
	"lca/internal/graph"
	"lca/internal/oracle"
	"lca/internal/rnd"
)

func workloads() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"gnp":     gen.Gnp(150, 0.05, 1),
		"torus":   gen.Torus(10, 10),
		"path":    gen.Path(60),
		"star":    gen.Star(40),
		"cluster": gen.PlantedClusters(90, 3, 0.2, 0.02, 2),
		"cycle":   gen.Cycle(51),
	}
}

func TestMISMaximalIndependent(t *testing.T) {
	for name, g := range workloads() {
		for seed := rnd.Seed(0); seed < 5; seed++ {
			lca := New(oracle.New(g), seed)
			in, _ := core.BuildVertexSet(g, lca)
			if err := core.VerifyMaximalIndependentSet(g, in); err != nil {
				t.Fatalf("%s seed %d: %v", name, seed, err)
			}
		}
	}
}

func TestMISMatchesGlobalGreedy(t *testing.T) {
	// The LCA must agree vertex-for-vertex with the sequential greedy MIS
	// over the same random order.
	for name, g := range workloads() {
		lca := New(oracle.New(g), 42)
		order := make([]int, g.N())
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(i, j int) bool { return lca.Before(order[i], order[j]) })
		want := baseline.GreedyMIS(g, order)
		for v := 0; v < g.N(); v++ {
			if lca.QueryVertex(v) != want[v] {
				t.Fatalf("%s: LCA disagrees with global greedy at %d", name, v)
			}
		}
	}
}

func TestMISDeterministicAcrossInstances(t *testing.T) {
	g := gen.Gnp(100, 0.06, 3)
	a, b := New(oracle.New(g), 7), New(oracle.New(g), 7)
	for v := 0; v < g.N(); v++ {
		if a.QueryVertex(v) != b.QueryVertex(v) {
			t.Fatalf("instances disagree at %d", v)
		}
	}
}

func TestMISSeedsDiffer(t *testing.T) {
	g := gen.Gnp(100, 0.08, 5)
	a, b := New(oracle.New(g), 1), New(oracle.New(g), 2)
	diff := 0
	for v := 0; v < g.N(); v++ {
		if a.QueryVertex(v) != b.QueryVertex(v) {
			diff++
		}
	}
	if diff == 0 {
		t.Log("note: two seeds produced identical MIS (possible but unusual)")
	}
}

func TestMISIsolatedAndCompleteExtremes(t *testing.T) {
	iso := graph.NewBuilder(5).Build()
	lca := New(oracle.New(iso), 1)
	for v := 0; v < 5; v++ {
		if !lca.QueryVertex(v) {
			t.Fatal("isolated vertices must all join the MIS")
		}
	}
	k := gen.Complete(20)
	lcaK := New(oracle.New(k), 1)
	count := 0
	for v := 0; v < 20; v++ {
		if lcaK.QueryVertex(v) {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("MIS of a clique has %d vertices, want 1", count)
	}
}

func TestMISProbesGrowWithDegree(t *testing.T) {
	// Sparse-regime behaviour: per-query probe cost rises with Delta.
	probesAt := func(d int) float64 {
		g, err := gen.RandomRegular(400, d, rnd.Seed(d))
		if err != nil {
			t.Fatal(err)
		}
		total := 0.0
		const queries = 30
		for i := 0; i < queries; i++ {
			lca := New(oracle.New(g), rnd.Seed(i)) // fresh instance: honest counts
			lca.QueryVertex(i * 13 % g.N())
			total += float64(lca.ProbeStats().Total())
		}
		return total / queries
	}
	low, high := probesAt(4), probesAt(16)
	t.Logf("mean probes per query: d=4: %.1f, d=16: %.1f", low, high)
	if high <= low {
		t.Errorf("probe cost did not grow with degree (%.1f vs %.1f)", low, high)
	}
}
