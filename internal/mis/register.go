package mis

// Registry descriptor: the MIS LCA self-registers so every downstream
// surface dispatches to it by name.

import (
	"lca/internal/core"
	"lca/internal/graph"
	"lca/internal/oracle"
	"lca/internal/registry"
	"lca/internal/rnd"
)

func init() {
	registry.Register(registry.Descriptor{
		Name:    "mis",
		Kind:    registry.KindVertex,
		Summary: "maximal independent set membership (sparse-regime classic)",
		New: func(o oracle.Oracle, seed rnd.Seed, _ registry.Params) (any, error) {
			return New(o, seed), nil
		},
		CheckVertexSet: func(g *graph.Graph, in []bool) error {
			return core.VerifyMaximalIndependentSet(g, in)
		},
	})
}
