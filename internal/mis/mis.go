// Package mis implements the classical maximal-independent-set LCA via
// random-order greedy simulation (Rubinfeld-Tamir-Vardi-Xie 2011 /
// Nguyen-Onak): each vertex receives a hash-derived random priority, and v
// belongs to the MIS iff no lower-priority neighbor does. A query triggers
// a recursion over the lower-priority neighborhood; on bounded-degree
// graphs the expected query tree is constant-size, while for large maximum
// degree the probe complexity can grow exponentially in Delta — exactly the
// sparse-regime limitation that motivates the dense-graph spanner LCAs
// (see the experiment suite's E8).
package mis

import (
	"lca/internal/oracle"
	"lca/internal/rnd"
)

// MIS is an LCA answering "is v in the maximal independent set?" queries,
// consistent with the greedy MIS under the hash-derived random vertex
// order. Construct with New; the zero value is unusable. Not safe for
// concurrent use.
type MIS struct {
	counter *oracle.Counter
	fam     *rnd.Family
	memo    map[int]bool
}

// New returns an MIS LCA over o. Answers depend only on (graph, seed).
func New(o oracle.Oracle, seed rnd.Seed) *MIS {
	return &MIS{
		counter: oracle.NewCounter(o),
		fam:     rnd.NewFamily(seed.Derive(0x315), 16),
		memo:    make(map[int]bool),
	}
}

// ProbeStats exposes cumulative probe counts.
func (m *MIS) ProbeStats() oracle.Stats { return m.counter.Stats() }

// Before reports whether u precedes v in the random greedy order
// (priorities tie-broken by ID, so the order is a strict total order).
func (m *MIS) Before(u, v int) bool {
	hu, hv := m.fam.Hash(uint64(u)), m.fam.Hash(uint64(v))
	if hu != hv {
		return hu < hv
	}
	return u < v
}

// QueryVertex reports whether v is in the MIS. The recursion follows the
// greedy rule: v joins iff every neighbor preceding v in the random order
// stays out. The neighborhood arrives as one exploration (a single batched
// round trip on network backends); the recursion still stops at the first
// lower-priority neighbor found inside. Results are memoized across
// queries (they are pure functions of graph and seed), which also keeps
// repeated sub-queries cheap.
func (m *MIS) QueryVertex(v int) bool {
	if ans, ok := m.memo[v]; ok {
		return ans
	}
	in := true
	for _, w := range m.counter.Neighbors(v) {
		if m.Before(w, v) && m.QueryVertex(w) {
			in = false
			break
		}
	}
	m.memo[v] = in
	return in
}
