package matching

// Registry descriptors: the matching LCAs self-register so every
// downstream surface dispatches to them by name. The maximal-matching
// construction answers two query kinds (edge membership and vertex-cover
// membership), so it appears under two entries sharing one constructor.

import (
	"fmt"

	"lca/internal/core"
	"lca/internal/graph"
	"lca/internal/oracle"
	"lca/internal/registry"
	"lca/internal/rnd"
)

func init() {
	registry.Register(registry.Descriptor{
		Name:    "matching",
		Kind:    registry.KindEdge,
		Summary: "maximal matching edge membership (sparse-regime classic)",
		New: func(o oracle.Oracle, seed rnd.Seed, _ registry.Params) (any, error) {
			return New(o, seed), nil
		},
		CheckSubgraph: func(g, m *graph.Graph, _ rnd.Seed) error {
			return core.VerifyMaximalMatching(g, m)
		},
	})
	registry.Register(registry.Descriptor{
		Name:    "vertexcover",
		Aliases: []string{"cover"},
		Kind:    registry.KindVertex,
		Summary: "2-approximate vertex cover: endpoints of the maximal matching",
		New: func(o oracle.Oracle, seed rnd.Seed, _ registry.Params) (any, error) {
			return New(o, seed), nil
		},
		CheckVertexSet: func(g *graph.Graph, in []bool) error {
			return core.VerifyVertexCover(g, in)
		},
	})
	registry.Register(registry.Descriptor{
		Name:    "approxmatching",
		Aliases: []string{"approx"},
		Kind:    registry.KindEdge,
		Summary: "(1-eps)-approximate maximum matching via bounded augmentation rounds",
		Params: []registry.Param{
			{Name: "rounds", Type: registry.TypeInt, Default: 2,
				Help: "augmentation rounds r; approximation ratio (r+1)/(r+2)"},
		},
		New: func(o oracle.Oracle, seed rnd.Seed, p registry.Params) (any, error) {
			rounds := p.Int("rounds")
			if rounds < 0 {
				return nil, fmt.Errorf("parameter \"rounds\" must be >= 0, got %d", rounds)
			}
			return NewApprox(o, rounds, seed), nil
		},
		CheckSubgraph: func(g, m *graph.Graph, _ rnd.Seed) error {
			return core.VerifyMaximalMatching(g, m)
		},
	})
}
