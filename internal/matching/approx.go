package matching

// (1-eps)-approximate maximum matching LCA via bounded-length augmenting
// paths (the Hopcroft-Karp / Nguyen-Onak principle): a maximal matching
// that admits no augmenting path shorter than 2t+1 is a t/(t+1)
// approximation of the maximum matching. The LCA simulates t rounds of
// "find a shortest augmenting path, flip it" over hash-randomized phase
// orderings, entirely through local queries.
//
// The implementation follows the round structure:
//
//	M_0 = the greedy maximal matching (Matching);
//	M_i = M_{i-1} after augmenting along a canonical maximal set of
//	      vertex-disjoint augmenting paths of length exactly 2i+1.
//
// Deciding whether an edge is in M_i requires knowing which length-(2i+1)
// augmenting paths of M_{i-1} were flipped — determined by a deterministic
// greedy over hash-ranked paths, evaluated locally by enumerating the
// paths through an edge's neighborhood. Probe cost grows as Delta^{O(t)},
// the expected sparse-regime behaviour; the construction targets
// bounded-degree graphs.

import (
	"lca/internal/oracle"
	"lca/internal/rnd"
)

// ApproxMatching is an LCA for (1-eps)-approximate maximum matchings on
// bounded-degree graphs. Rounds = ceil(1/eps) - 1 augmentation rounds give
// approximation ratio rounds+1 / (rounds+2). Construct with NewApprox; not
// safe for concurrent use.
type ApproxMatching struct {
	counter *oracle.Counter
	fams    []*rnd.Family // one per augmentation round
	base    *Matching
	rounds  int
	memo    []map[uint64]bool // memo[i]: edge -> in M_i (index 0 = M_1)
	selMemo []map[string]bool // selMemo[i]: path -> selected in round i+1
}

// NewApprox returns an approximate-matching LCA performing the given
// number of augmentation rounds on top of the greedy maximal matching.
// rounds = 0 degrades to the maximal matching (a 1/2 approximation);
// each extra round improves the ratio to (r+1)/(r+2).
func NewApprox(o oracle.Oracle, rounds int, seed rnd.Seed) *ApproxMatching {
	if rounds < 0 {
		rounds = 0
	}
	counter := oracle.NewCounter(o)
	a := &ApproxMatching{
		counter: counter,
		base:    New(counter, seed.Derive(0xa0)),
		rounds:  rounds,
		fams:    make([]*rnd.Family, rounds),
		memo:    make([]map[uint64]bool, rounds),
	}
	a.selMemo = make([]map[string]bool, rounds)
	for i := range a.fams {
		a.fams[i] = rnd.NewFamily(seed.Derive(uint64(0xa1+i)), 16)
		a.memo[i] = make(map[uint64]bool)
		a.selMemo[i] = make(map[string]bool)
	}
	return a
}

// ProbeStats exposes cumulative probe counts.
func (a *ApproxMatching) ProbeStats() oracle.Stats { return a.counter.Stats() }

// Rounds returns the number of augmentation rounds.
func (a *ApproxMatching) Rounds() int { return a.rounds }

// Base returns the underlying maximal-matching LCA (M_0).
func (a *ApproxMatching) Base() *Matching { return a.base }

// QueryEdge reports whether (u,v) belongs to the final matching M_rounds.
func (a *ApproxMatching) QueryEdge(u, v int) bool {
	return a.inMatching(a.rounds, u, v)
}

// QueryVertex reports whether v is matched in the final matching.
func (a *ApproxMatching) QueryVertex(v int) bool {
	for _, w := range a.counter.Neighbors(v) {
		if a.inMatching(a.rounds, v, w) {
			return true
		}
	}
	return false
}

// inMatching reports membership in M_round.
func (a *ApproxMatching) inMatching(round, u, v int) bool {
	if round == 0 {
		return a.base.QueryEdge(u, v)
	}
	key := edgeKey(u, v)
	if ans, ok := a.memo[round-1][key]; ok {
		return ans
	}
	// Membership flips relative to M_{round-1} iff the edge lies on the
	// selected augmenting path through it.
	was := a.inMatching(round-1, u, v)
	flipped := a.edgeFlipped(round, u, v)
	ans := was != flipped
	a.memo[round-1][key] = ans
	return ans
}

// pathLen is the augmenting path length at round i: 2i+1 edges.
func pathLen(round int) int { return 2*round + 1 }

// edgeFlipped reports whether the round's canonical augmentation set
// contains a path through edge (u,v). A path of length 2r+1 through the
// edge is determined by its full vertex sequence; the canonical set is the
// greedy maximal set over hash-ranked paths, so the edge flips iff some
// path through it is selected.
func (a *ApproxMatching) edgeFlipped(round, u, v int) bool {
	for _, p := range a.pathsThrough(round, u, v) {
		if a.pathSelected(round, p) {
			return true
		}
	}
	return false
}

// pathsThrough enumerates all augmenting paths of M_{round-1} with length
// pathLen(round) that use the edge (u,v).
//
// In a path e_1 ... e_{2r+1}, edge e_i is unmatched iff i is odd. With
// (u,v) at position l+1 (l edges on u's side), the path is consistent iff
// the edge's matched status equals "l is odd", and the first edges walked
// outward on both sides sit at positions l and l+2, both matched iff l is
// even.
func (a *ApproxMatching) pathsThrough(round, u, v int) [][]int {
	target := pathLen(round)
	edgeMatched := a.inMatching(round-1, u, v)
	var out [][]int
	for l := 0; l < target; l++ {
		if edgeMatched != (l%2 == 1) {
			continue // edge parity must alternate along the path
		}
		sideMatched := l%2 == 0
		lefts := a.alternating(round, u, v, l, sideMatched)
		if len(lefts) == 0 {
			continue
		}
		rights := a.alternating(round, v, u, target-1-l, sideMatched)
		for _, left := range lefts {
			for _, right := range rights {
				if p := a.mergePath(left, right); p != nil {
					out = append(out, p)
				}
			}
		}
	}
	return dedupePaths(out)
}

// alternating returns all simple alternating segments of exactly `steps`
// edges starting at `start` and avoiding `avoid`, where the first edge out
// of start must be matched in M_{round-1} iff firstMatched. Segments are
// returned innermost-first (start excluded? no: segment[0] == farthest
// endpoint, segment[last] == start).
func (a *ApproxMatching) alternating(round, start, avoid, steps int, firstMatched bool) [][]int {
	if steps == 0 {
		// A zero-length segment requires start to be free (augmenting
		// paths end at unmatched vertices).
		if a.matchedExcept(round-1, start, avoid) {
			return nil
		}
		return [][]int{{start}}
	}
	var out [][]int
	for _, w := range a.counter.Neighbors(start) {
		if w == avoid {
			continue
		}
		if a.inMatching(round-1, start, w) != firstMatched {
			continue
		}
		for _, seg := range a.alternating(round, w, start, steps-1, !firstMatched) {
			if containsVertex(seg, start) {
				continue
			}
			ext := make([]int, 0, len(seg)+1)
			ext = append(append(ext, seg...), start)
			out = append(out, ext)
		}
	}
	return out
}

// matchedExcept reports whether v has a matched edge in M_round other than
// to `except`.
func (a *ApproxMatching) matchedExcept(round, v, except int) bool {
	for _, w := range a.counter.Neighbors(v) {
		if w == except {
			continue
		}
		if a.inMatching(round, v, w) {
			return true
		}
	}
	return false
}

// mergePath joins a left segment (ending at u) and right segment (ending
// at v) into the full path, rejecting non-simple combinations.
func (a *ApproxMatching) mergePath(left, right []int) []int {
	seen := make(map[int]bool, len(left)+len(right))
	for _, x := range left {
		seen[x] = true
	}
	for _, x := range right {
		if seen[x] {
			return nil
		}
	}
	p := make([]int, 0, len(left)+len(right))
	p = append(p, left...)
	for i := len(right) - 1; i >= 0; i-- {
		p = append(p, right[i])
	}
	// Canonical direction: lexicographically smaller endpoint first.
	if p[0] > p[len(p)-1] {
		reverseInts(p)
	}
	return p
}

func reverseInts(xs []int) {
	for i, j := 0, len(xs)-1; i < j; i, j = i+1, j-1 {
		xs[i], xs[j] = xs[j], xs[i]
	}
}

func containsVertex(xs []int, x int) bool {
	for _, y := range xs {
		if y == x {
			return true
		}
	}
	return false
}

func dedupePaths(ps [][]int) [][]int {
	seen := make(map[string]bool, len(ps))
	out := ps[:0]
	for _, p := range ps {
		k := pathKey(p)
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, p)
	}
	return out
}

func pathKey(p []int) string {
	b := make([]byte, 0, 4*len(p))
	for _, x := range p {
		b = append(b, byte(x), byte(x>>8), byte(x>>16), byte(x>>24))
	}
	return string(b)
}

// pathRank is the hash priority of a path in its round's greedy order.
func (a *ApproxMatching) pathRank(round int, p []int) uint64 {
	h := a.fams[round-1]
	acc := uint64(0xcbf29ce484222325)
	for _, x := range p {
		acc = rnd.Pair(acc, h.Hash(uint64(x)))
	}
	return acc
}

// pathSelected reports whether path p belongs to the canonical maximal set
// of vertex-disjoint augmenting paths of its round: p is selected iff no
// conflicting valid path with smaller (rank, key) is selected. The
// recursion mirrors the random-order greedy over paths and terminates
// because (rank, key) strictly decreases; results are memoized per round.
func (a *ApproxMatching) pathSelected(round int, p []int) bool {
	key := pathKey(p)
	if ans, ok := a.selMemo[round-1][key]; ok {
		return ans
	}
	myRank := a.pathRank(round, p)
	selected := true
	// Enumerate conflicting paths: any valid augmenting path of this round
	// sharing a vertex with p and preceding it in the greedy order.
scan:
	for _, x := range p {
		for _, q := range a.pathsAt(round, x) {
			qKey := pathKey(q)
			if qKey == key {
				continue
			}
			qRank := a.pathRank(round, q)
			if qRank > myRank || (qRank == myRank && qKey >= key) {
				continue
			}
			if a.pathSelected(round, q) {
				selected = false
				break scan
			}
		}
	}
	a.selMemo[round-1][key] = selected
	return selected
}

// pathsAt enumerates the round's augmenting paths through vertex x.
func (a *ApproxMatching) pathsAt(round, x int) [][]int {
	var out [][]int
	for _, w := range a.counter.Neighbors(x) {
		out = append(out, a.pathsThrough(round, x, w)...)
	}
	return dedupePaths(out)
}
