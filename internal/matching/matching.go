// Package matching implements the maximal-matching LCA via random-order
// greedy simulation over edges, and the 2-approximate minimum vertex cover
// LCA it induces (matched endpoints form a cover). These are the classical
// sparse-regime LCAs: probe cost per query is modest for bounded degree
// and grows quickly with Delta.
package matching

import (
	"lca/internal/oracle"
	"lca/internal/rnd"
)

// Matching is an LCA answering "is (u,v) in the maximal matching?" and
// "is v covered?" queries, consistent with the greedy matching under a
// hash-derived random edge order. Construct with New; the zero value is
// unusable. Not safe for concurrent use.
type Matching struct {
	counter *oracle.Counter
	fam     *rnd.Family
	memo    map[uint64]bool
}

// New returns a maximal-matching LCA over o.
func New(o oracle.Oracle, seed rnd.Seed) *Matching {
	return &Matching{
		counter: oracle.NewCounter(o),
		fam:     rnd.NewFamily(seed.Derive(0x3a7), 16),
		memo:    make(map[uint64]bool),
	}
}

// ProbeStats exposes cumulative probe counts.
func (m *Matching) ProbeStats() oracle.Stats { return m.counter.Stats() }

func edgeKey(u, v int) uint64 {
	if u > v {
		u, v = v, u
	}
	return uint64(uint32(u))<<32 | uint64(uint32(v))
}

// Before reports whether edge a precedes edge b in the random greedy order
// (hash priorities tie-broken by edge key, so the order is strict and
// total).
func (m *Matching) Before(aU, aV, bU, bV int) bool {
	ka, kb := edgeKey(aU, aV), edgeKey(bU, bV)
	ha, hb := m.fam.Hash(ka), m.fam.Hash(kb)
	if ha != hb {
		return ha < hb
	}
	return ka < kb
}

// QueryEdge reports whether (u,v) is in the maximal matching: it is iff no
// adjacent edge preceding it in the random order is matched. Both endpoint
// rows are hinted together, so one batched round trip covers the whole
// adjacent-edge scan on network backends.
func (m *Matching) QueryEdge(u, v int) bool {
	key := edgeKey(u, v)
	if ans, ok := m.memo[key]; ok {
		return ans
	}
	in := true
	m.counter.Prefetch(u, v)
scan:
	for _, x := range [2]int{u, v} {
		for _, w := range m.counter.Neighbors(x) {
			if edgeKey(x, w) == key {
				continue
			}
			if m.Before(x, w, u, v) && m.QueryEdge(x, w) {
				in = false
				break scan
			}
		}
	}
	m.memo[key] = in
	return in
}

// QueryVertex reports whether v is in the 2-approximate vertex cover: v is
// covered iff some incident edge is matched. By maximality this set covers
// every edge, and its size is at most twice the minimum vertex cover.
func (m *Matching) QueryVertex(v int) bool {
	for _, w := range m.counter.Neighbors(v) {
		if m.QueryEdge(v, w) {
			return true
		}
	}
	return false
}
