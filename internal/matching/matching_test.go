package matching

import (
	"sort"
	"testing"

	"lca/internal/baseline"
	"lca/internal/core"
	"lca/internal/gen"
	"lca/internal/graph"
	"lca/internal/oracle"
	"lca/internal/rnd"
)

func workloads() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"gnp":   gen.Gnp(120, 0.06, 1),
		"torus": gen.Torus(9, 9),
		"path":  gen.Path(50),
		"star":  gen.Star(30),
		"comp":  gen.Complete(25),
	}
}

func TestMatchingMaximal(t *testing.T) {
	for name, g := range workloads() {
		for seed := rnd.Seed(0); seed < 5; seed++ {
			lca := New(oracle.New(g), seed)
			h, _ := core.BuildSubgraph(g, lca)
			if err := core.VerifyMaximalMatching(g, h); err != nil {
				t.Fatalf("%s seed %d: %v", name, seed, err)
			}
		}
	}
}

func TestMatchingMatchesGlobalGreedy(t *testing.T) {
	for name, g := range workloads() {
		lca := New(oracle.New(g), 9)
		edges := g.Edges()
		sort.Slice(edges, func(i, j int) bool {
			return lca.Before(edges[i].U, edges[i].V, edges[j].U, edges[j].V)
		})
		want := baseline.GreedyMatching(g, edges)
		for _, e := range g.Edges() {
			if lca.QueryEdge(e.U, e.V) != want.HasEdge(e.U, e.V) {
				t.Fatalf("%s: LCA disagrees with global greedy on %v", name, e)
			}
		}
	}
}

func TestMatchingSymmetric(t *testing.T) {
	g := gen.Gnp(80, 0.08, 3)
	lca := New(oracle.New(g), 5)
	if e, ok := core.CheckSymmetric(g, lca); !ok {
		t.Fatalf("asymmetric at %v", e)
	}
}

func TestVertexCoverCoversAllEdges(t *testing.T) {
	for name, g := range workloads() {
		lca := New(oracle.New(g), 11)
		cover, _ := core.BuildVertexSet(g, lca)
		if err := core.VerifyVertexCover(g, cover); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestVertexCoverTwoApproximation(t *testing.T) {
	// |cover| = 2|matching| <= 2 OPT: check the relation to the matching
	// size exactly, and sanity-check against the trivial bound.
	g := gen.Gnp(90, 0.07, 13)
	lca := New(oracle.New(g), 17)
	m, _ := core.BuildSubgraph(g, lca)
	cover, _ := core.BuildVertexSet(g, lca)
	count := 0
	for _, c := range cover {
		if c {
			count++
		}
	}
	if count != 2*m.M() {
		t.Fatalf("cover size %d != 2 * matching size %d", count, m.M())
	}
	// A maximal matching is at least half a maximum one, and any vertex
	// cover is at least the matching size, so count <= 2*OPT follows; here
	// just confirm the cover is not the whole graph on a sparse instance.
	if count >= g.N() {
		t.Errorf("vertex cover is the entire vertex set")
	}
}

func TestMatchingConsistentWithCover(t *testing.T) {
	// QueryVertex(v) must be exactly "some incident edge matched".
	g := gen.Torus(8, 8)
	lca := New(oracle.New(g), 19)
	for v := 0; v < g.N(); v++ {
		want := false
		for i := 0; i < g.Degree(v); i++ {
			if lca.QueryEdge(v, g.Neighbor(v, i)) {
				want = true
				break
			}
		}
		if lca.QueryVertex(v) != want {
			t.Fatalf("cover answer inconsistent at %d", v)
		}
	}
}

func TestMatchingPerfectOnEvenPath(t *testing.T) {
	// On a single edge the matching must contain it.
	g := gen.Path(2)
	lca := New(oracle.New(g), 23)
	if !lca.QueryEdge(0, 1) {
		t.Fatal("single edge must be matched")
	}
}
