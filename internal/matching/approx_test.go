package matching

import (
	"sort"
	"testing"

	"lca/internal/core"
	"lca/internal/gen"
	"lca/internal/graph"
	"lca/internal/oracle"
	"lca/internal/rnd"
)

func approxWorkloads() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"path":  gen.Path(24),
		"cycle": gen.Cycle(21),
		"grid":  gen.Grid(4, 6),
		"gnp":   gen.Gnp(40, 0.08, 3),
		"torus": gen.Torus(4, 5),
	}
}

func TestApproxMatchingIsValidMatching(t *testing.T) {
	for name, g := range approxWorkloads() {
		for _, rounds := range []int{0, 1, 2} {
			for seed := rnd.Seed(0); seed < 3; seed++ {
				lca := NewApprox(oracle.New(g), rounds, seed)
				m, _ := core.BuildSubgraph(g, lca)
				if err := core.VerifyMatching(g, m); err != nil {
					t.Fatalf("%s rounds=%d seed=%d: %v", name, rounds, seed, err)
				}
				// Augmentation can only help; maximality of the base is
				// preserved or improved.
				if err := core.VerifyMaximalMatching(g, m); err != nil {
					t.Fatalf("%s rounds=%d seed=%d: %v", name, rounds, seed, err)
				}
			}
		}
	}
}

func TestApproxMatchingNeverShrinks(t *testing.T) {
	for name, g := range approxWorkloads() {
		base, _ := core.BuildSubgraph(g, NewApprox(oracle.New(g), 0, 7))
		prev := base.M()
		for _, rounds := range []int{1, 2} {
			m, _ := core.BuildSubgraph(g, NewApprox(oracle.New(g), rounds, 7))
			if m.M() < prev {
				t.Fatalf("%s: %d rounds gave %d edges, fewer than %d", name, rounds, m.M(), prev)
			}
			prev = m.M()
		}
	}
}

func TestApproxMatchingApproximationRatio(t *testing.T) {
	// On graphs with known maximum matchings, r rounds must achieve at
	// least (r+1)/(r+2) of the optimum.
	cases := []struct {
		name string
		g    *graph.Graph
		opt  int
	}{
		{"path24", gen.Path(24), 12},
		{"cycle21", gen.Cycle(21), 10},
		{"grid4x6", gen.Grid(4, 6), 12},
		{"star", gen.Star(9), 1},
	}
	for _, c := range cases {
		for _, rounds := range []int{0, 1, 2} {
			worst := c.opt
			for seed := rnd.Seed(0); seed < 4; seed++ {
				m, _ := core.BuildSubgraph(c.g, NewApprox(oracle.New(c.g), rounds, seed))
				if m.M() < worst {
					worst = m.M()
				}
			}
			num, den := rounds+1, rounds+2
			if worst*den < c.opt*num {
				t.Errorf("%s rounds=%d: worst matching %d below %d/%d of optimum %d",
					c.name, rounds, worst, num, den, c.opt)
			}
		}
	}
}

func TestApproxMatchingNoShortAugmentingPaths(t *testing.T) {
	// After r rounds the matching must admit no augmenting path of length
	// <= 2r+1 (the Hopcroft-Karp invariant the ratio proof rests on).
	for name, g := range approxWorkloads() {
		for _, rounds := range []int{1, 2} {
			lca := NewApprox(oracle.New(g), rounds, 11)
			m, _ := core.BuildSubgraph(g, lca)
			if p := findAugmentingPath(g, m, 2*rounds+1); p != nil {
				t.Fatalf("%s rounds=%d: augmenting path %v of length %d survived",
					name, rounds, p, len(p)-1)
			}
		}
	}
}

// findAugmentingPath brute-force searches for a simple alternating path of
// length <= maxLen between two free vertices. Independent of the LCA code.
func findAugmentingPath(g *graph.Graph, m *graph.Graph, maxLen int) []int {
	free := func(v int) bool { return m.Degree(v) == 0 }
	var dfs func(path []int, matchedNext bool) []int
	dfs = func(path []int, matchedNext bool) []int {
		last := path[len(path)-1]
		if len(path) >= 2 && len(path)%2 == 0 && !matchedNext && free(last) {
			// Even number of vertices = odd edge count; both ends free.
			return append([]int(nil), path...)
		}
		if len(path)-1 >= maxLen {
			return nil
		}
		for _, w := range g.Neighbors(last) {
			wi := int(w)
			if containsVertex(path, wi) {
				continue
			}
			if m.HasEdge(last, wi) != matchedNext {
				continue
			}
			if found := dfs(append(path, wi), !matchedNext); found != nil {
				return found
			}
		}
		return nil
	}
	for v := 0; v < g.N(); v++ {
		if !free(v) {
			continue
		}
		if found := dfs([]int{v}, false); found != nil {
			return found
		}
	}
	return nil
}

func TestApproxMatchingMatchesGlobalReference(t *testing.T) {
	// Global reference: run the same phase algorithm globally (brute-force
	// path enumeration, sort by the LCA's ranks, greedy disjoint
	// selection, flip) and compare edge-for-edge.
	for name, g := range approxWorkloads() {
		const rounds = 2
		lca := NewApprox(oracle.New(g), rounds, 5)
		// M_0 from the base LCA (already verified against global greedy in
		// TestMatchingMatchesGlobalGreedy).
		cur := graph.NewEdgeSet()
		for _, e := range g.Edges() {
			if lca.Base().QueryEdge(e.U, e.V) {
				cur.Add(e.U, e.V)
			}
		}
		for round := 1; round <= rounds; round++ {
			mGraph := g.Subgraph(cur.Edges())
			paths := allAugmentingPaths(g, mGraph, 2*round+1)
			sort.Slice(paths, func(i, j int) bool {
				ri, rj := lca.pathRank(round, paths[i]), lca.pathRank(round, paths[j])
				if ri != rj {
					return ri < rj
				}
				return pathKey(paths[i]) < pathKey(paths[j])
			})
			used := make(map[int]bool)
			for _, p := range paths {
				conflict := false
				for _, x := range p {
					if used[x] {
						conflict = true
						break
					}
				}
				if conflict {
					continue
				}
				for _, x := range p {
					used[x] = true
				}
				for i := 0; i+1 < len(p); i++ {
					if cur.Has(p[i], p[i+1]) {
						delete(cur, graph.Edge{U: p[i], V: p[i+1]}.Key())
					} else {
						cur.Add(p[i], p[i+1])
					}
				}
			}
		}
		for _, e := range g.Edges() {
			if lca.QueryEdge(e.U, e.V) != cur.Has(e.U, e.V) {
				t.Fatalf("%s: LCA disagrees with global phase algorithm on (%d,%d)", name, e.U, e.V)
			}
		}
	}
}

// allAugmentingPaths enumerates every simple alternating path of exactly
// length edges between free vertices, in canonical direction, deduplicated.
func allAugmentingPaths(g *graph.Graph, m *graph.Graph, length int) [][]int {
	free := func(v int) bool { return m.Degree(v) == 0 }
	var out [][]int
	var dfs func(path []int, matchedNext bool)
	dfs = func(path []int, matchedNext bool) {
		last := path[len(path)-1]
		if len(path)-1 == length {
			if !free(last) {
				return
			}
			p := append([]int(nil), path...)
			if p[0] > p[len(p)-1] {
				for i, j := 0, len(p)-1; i < j; i, j = i+1, j-1 {
					p[i], p[j] = p[j], p[i]
				}
			}
			out = append(out, p)
			return
		}
		for _, w := range g.Neighbors(last) {
			wi := int(w)
			if containsVertex(path, wi) {
				continue
			}
			if m.HasEdge(last, wi) != matchedNext {
				continue
			}
			dfs(append(path, wi), !matchedNext)
		}
	}
	for v := 0; v < g.N(); v++ {
		if free(v) {
			dfs([]int{v}, false)
		}
	}
	return dedupePaths(out)
}

func TestApproxMatchingSymmetricAndDeterministic(t *testing.T) {
	g := gen.Gnp(36, 0.1, 9)
	a := NewApprox(oracle.New(g), 2, 13)
	if e, ok := core.CheckSymmetric(g, a); !ok {
		t.Fatalf("asymmetric at %v", e)
	}
	b := NewApprox(oracle.New(g), 2, 13)
	for _, e := range g.Edges() {
		if a.QueryEdge(e.U, e.V) != b.QueryEdge(e.U, e.V) {
			t.Fatalf("instances disagree on %v", e)
		}
	}
}

func TestApproxMatchingQueryVertexConsistent(t *testing.T) {
	g := gen.Grid(4, 5)
	a := NewApprox(oracle.New(g), 1, 3)
	for v := 0; v < g.N(); v++ {
		want := false
		for i := 0; i < g.Degree(v); i++ {
			if a.QueryEdge(v, g.Neighbor(v, i)) {
				want = true
				break
			}
		}
		if a.QueryVertex(v) != want {
			t.Fatalf("QueryVertex inconsistent at %d", v)
		}
	}
}

func TestApproxMatchingZeroRoundsEqualsBase(t *testing.T) {
	g := gen.Gnp(40, 0.1, 1)
	a := NewApprox(oracle.New(g), 0, 21)
	for _, e := range g.Edges() {
		if a.QueryEdge(e.U, e.V) != a.Base().QueryEdge(e.U, e.V) {
			t.Fatal("0-round approx must equal the base matching")
		}
	}
}
