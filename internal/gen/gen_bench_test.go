package gen

import "testing"

func BenchmarkGnp(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Gnp(5000, 0.01, 1)
	}
}

func BenchmarkRandomRegular(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := RandomRegular(2000, 8, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkChungLu(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ChungLu(5000, 2.3, 12, 1)
	}
}
