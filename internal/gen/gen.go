// Package gen produces the synthetic graph workloads on which the library's
// experiments run. The LCA papers are pure theory with no testbed; these
// generators substitute for it, covering the regimes the analyses
// distinguish: sparse bounded-degree graphs, dense graphs with Delta =
// Omega(n^c), heavy-tailed degree distributions, and structured topologies
// with known distances.
package gen

import (
	"fmt"
	"math"
	"sort"

	"lca/internal/graph"
	"lca/internal/rnd"
)

// Gnp samples an Erdos-Renyi G(n, p) graph. Edges are enumerated with
// geometric skip sampling, so the cost is proportional to the number of
// edges rather than n^2.
func Gnp(n int, p float64, seed rnd.Seed) *graph.Graph {
	b := graph.NewBuilder(n)
	prg := rnd.NewPRG(seed)
	switch {
	case p <= 0 || n < 2:
		return b.Build()
	case p >= 1:
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				b.AddEdge(u, v)
			}
		}
		return b.Build()
	}
	// Walk the strictly-upper-triangular pair space in row-major order,
	// skipping a Geometric(p) number of pairs between successive edges and
	// carrying the position across row boundaries.
	logq := math.Log1p(-p)
	u, col := 0, int64(-1) // current row and column offset; v = u+1+col
	for u < n-1 {
		r := prg.Float64()
		skip := int64(math.Floor(math.Log(1-r) / logq))
		col += 1 + skip
		for u < n-1 && col >= int64(n-1-u) {
			col -= int64(n - 1 - u)
			u++
		}
		if u >= n-1 {
			break
		}
		b.AddEdge(u, u+1+int(col))
	}
	return b.BuildShuffled(rnd.NewPRG(seed.Derive(0xad1)))
}

// Path returns the path graph 0-1-...-(n-1).
func Path(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(i, i+1)
	}
	return b.Build()
}

// Cycle returns the n-cycle (n >= 3 for a proper cycle; smaller n degrade
// to a path).
func Cycle(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(i, i+1)
	}
	if n >= 3 {
		b.AddEdge(n-1, 0)
	}
	return b.Build()
}

// Complete returns the clique K_n.
func Complete(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(i, j)
		}
	}
	return b.Build()
}

// CompleteBipartite returns K_{a,b}: vertices 0..a-1 on the left,
// a..a+b-1 on the right.
func CompleteBipartite(a, b int) *graph.Graph {
	bl := graph.NewBuilder(a + b)
	for i := 0; i < a; i++ {
		for j := 0; j < b; j++ {
			bl.AddEdge(i, a+j)
		}
	}
	return bl.Build()
}

// Star returns the star K_{1,n-1} with center 0.
func Star(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(0, i)
	}
	return b.Build()
}

// Grid returns the rows x cols grid graph; vertex (r,c) has index r*cols+c.
func Grid(rows, cols int) *graph.Graph {
	b := graph.NewBuilder(rows * cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			v := r*cols + c
			if c+1 < cols {
				b.AddEdge(v, v+1)
			}
			if r+1 < rows {
				b.AddEdge(v, v+cols)
			}
		}
	}
	return b.Build()
}

// Torus returns the rows x cols torus (grid with wraparound), a natural
// bounded-degree, high-girth workload.
func Torus(rows, cols int) *graph.Graph {
	b := graph.NewBuilder(rows * cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			v := r*cols + c
			b.AddEdge(v, r*cols+(c+1)%cols)
			b.AddEdge(v, ((r+1)%rows)*cols+c)
		}
	}
	return b.Build()
}

// RandomRegular samples a d-regular simple graph on n vertices via the
// configuration model with rejection/repair: random perfect matchings on
// the n*d cell table are drawn, defective pairs (self-loops, duplicate
// edges) are re-matched, and the process restarts if repair stalls. n*d
// must be even and d < n.
func RandomRegular(n, d int, seed rnd.Seed) (*graph.Graph, error) {
	if d < 0 || d >= n {
		return nil, fmt.Errorf("gen: invalid degree %d for n=%d", d, n)
	}
	if n*d%2 != 0 {
		return nil, fmt.Errorf("gen: n*d = %d*%d is odd", n, d)
	}
	if d == 0 {
		return graph.NewBuilder(n).Build(), nil
	}
	prg := rnd.NewPRG(seed)
	const maxAttempts = 200
	for attempt := 0; attempt < maxAttempts; attempt++ {
		if g, ok := tryRegular(n, d, prg); ok {
			return g, nil
		}
	}
	return nil, fmt.Errorf("gen: failed to sample %d-regular graph on %d vertices after %d attempts", d, n, maxAttempts)
}

// tryRegular attempts one configuration-model draw with local repair.
func tryRegular(n, d int, prg *rnd.PRG) (*graph.Graph, bool) {
	stubs := make([]int, 0, n*d)
	for v := 0; v < n; v++ {
		for i := 0; i < d; i++ {
			stubs = append(stubs, v)
		}
	}
	prg.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
	b := graph.NewBuilder(n)
	// Pair consecutive stubs; collect defective pairs for repair.
	var bad []int // indices of stub pairs (even index) that failed
	for i := 0; i < len(stubs); i += 2 {
		u, v := stubs[i], stubs[i+1]
		if u == v || b.HasEdge(u, v) {
			bad = append(bad, i)
			continue
		}
		b.AddEdge(u, v)
	}
	// Repair pass: re-pair defective stubs against random positions by
	// edge swaps. A bounded number of sweeps keeps the run finite.
	for sweep := 0; sweep < 100 && len(bad) > 0; sweep++ {
		var still []int
		for _, i := range bad {
			u, v := stubs[i], stubs[i+1]
			if u != v && !b.HasEdge(u, v) {
				b.AddEdge(u, v)
				continue
			}
			// Swap stub i+1 with a random stub position j.
			j := prg.Intn(len(stubs))
			stubs[i+1], stubs[j] = stubs[j], stubs[i+1]
			still = append(still, i)
			if j%2 == 0 {
				still = append(still, j)
			} else {
				still = append(still, j-1)
			}
		}
		// Rebuild from scratch using the updated stub pairing. This is
		// O(m) per sweep but sweeps are rare and instances moderate.
		b = graph.NewBuilder(n)
		still = still[:0]
		for i := 0; i < len(stubs); i += 2 {
			u, v := stubs[i], stubs[i+1]
			if u == v || b.HasEdge(u, v) {
				still = append(still, i)
				continue
			}
			b.AddEdge(u, v)
		}
		bad = still
	}
	if len(bad) > 0 {
		return nil, false
	}
	return b.BuildShuffled(prg), true
}

// ChungLu samples a power-law graph with expected degree sequence
// w_i proportional to (i+1)^{-1/(beta-1)}, scaled to the requested average
// degree. Sampling uses the Miller-Hagberg algorithm: O(n + m) expected
// time over sorted weights.
func ChungLu(n int, beta, avgDeg float64, seed rnd.Seed) *graph.Graph {
	b := graph.NewBuilder(n)
	if n < 2 || avgDeg <= 0 {
		return b.Build()
	}
	if beta <= 2 {
		beta = 2.1
	}
	w := make([]float64, n)
	sum := 0.0
	for i := range w {
		w[i] = math.Pow(float64(i+1), -1/(beta-1))
		sum += w[i]
	}
	scale := avgDeg * float64(n) / sum
	for i := range w {
		w[i] *= scale
		// Cap weights so p_uv = w_u w_v / S stays below 1.
	}
	s := 0.0
	for _, x := range w {
		s += x
	}
	maxW := math.Sqrt(s)
	for i := range w {
		if w[i] > maxW {
			w[i] = maxW
		}
	}
	prg := rnd.NewPRG(seed)
	// Weights are already sorted in decreasing order by construction.
	for u := 0; u < n-1; u++ {
		v := u + 1
		p := math.Min(w[u]*w[v]/s, 1)
		for v < n && p > 0 {
			if p < 1 {
				r := prg.Float64()
				skip := int(math.Floor(math.Log(1-r) / math.Log1p(-p)))
				v += skip
			}
			if v >= n {
				break
			}
			q := math.Min(w[u]*w[v]/s, 1)
			if prg.Float64() < q/p {
				b.AddEdge(u, v)
			}
			p = q
			v++
		}
	}
	return b.BuildShuffled(rnd.NewPRG(seed.Derive(0xc1)))
}

// PlantedClusters returns a stochastic block model graph with k equal
// communities: intra-community edge probability pIn, inter pOut.
func PlantedClusters(n, k int, pIn, pOut float64, seed rnd.Seed) *graph.Graph {
	b := graph.NewBuilder(n)
	if k < 1 {
		k = 1
	}
	prg := rnd.NewPRG(seed)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			p := pOut
			if u%k == v%k {
				p = pIn
			}
			if prg.Float64() < p {
				b.AddEdge(u, v)
			}
		}
	}
	return b.BuildShuffled(rnd.NewPRG(seed.Derive(0x5b)))
}

// DenseCore builds a composite stressing the degree-class decompositions:
// a clique core of size coreSize, a sparse G(n,p) periphery, and random
// core-periphery edges so every degree class in the 3/5-spanner analysis is
// populated.
func DenseCore(n, coreSize int, peripheryDeg float64, seed rnd.Seed) *graph.Graph {
	if coreSize > n {
		coreSize = n
	}
	prg := rnd.NewPRG(seed)
	b := graph.NewBuilder(n)
	for i := 0; i < coreSize; i++ {
		for j := i + 1; j < coreSize; j++ {
			b.AddEdge(i, j)
		}
	}
	if n > coreSize {
		p := peripheryDeg / float64(n-coreSize)
		for u := coreSize; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if prg.Float64() < p {
					b.AddEdge(u, v)
				}
			}
			// A few random spokes into the core.
			if coreSize > 0 {
				for s := 0; s < 2; s++ {
					if prg.Float64() < 0.5 {
						b.AddEdge(u, prg.Intn(coreSize))
					}
				}
			}
		}
	}
	return b.BuildShuffled(rnd.NewPRG(seed.Derive(0xdc)))
}

// CirculantOffsets derives the offset set of a hash-based d-regular
// circulant graph from a seed: d/2 distinct offsets sampled uniformly from
// [1, (n-1)/2], sorted. The construction needs d even (every offset
// contributes two neighbors) and d/2 <= (n-1)/2 so enough distinct offsets
// exist. The same derivation backs the implicit "circulant" source family,
// so a materialized Circulant graph and the probe-native backend agree
// edge-for-edge.
func CirculantOffsets(n, d int, seed rnd.Seed) ([]int, error) {
	if d < 0 || d%2 != 0 {
		return nil, fmt.Errorf("gen: circulant degree %d must be even and non-negative", d)
	}
	if d == 0 {
		return nil, nil
	}
	k := d / 2
	limit := (n - 1) / 2
	if k > limit {
		return nil, fmt.Errorf("gen: circulant degree %d needs %d distinct offsets but n=%d allows only %d", d, k, n, limit)
	}
	prg := rnd.NewPRG(seed.Derive(0xc19c))
	seen := make(map[int]bool, k)
	out := make([]int, 0, k)
	for len(out) < k {
		o := 1 + prg.Intn(limit)
		if seen[o] {
			continue
		}
		seen[o] = true
		out = append(out, o)
	}
	sort.Ints(out)
	return out, nil
}

// Circulant materializes the circulant graph on n vertices with the given
// offsets: v is adjacent to (v±o) mod n for every offset o. Offsets must be
// distinct and in [1, (n-1)/2], which makes the graph exactly
// 2*len(offsets)-regular with n*len(offsets) edges.
func Circulant(n int, offsets []int) (*graph.Graph, error) {
	seen := make(map[int]bool, len(offsets))
	for _, o := range offsets {
		if o < 1 || o > (n-1)/2 {
			return nil, fmt.Errorf("gen: circulant offset %d out of range [1,%d]", o, (n-1)/2)
		}
		if seen[o] {
			return nil, fmt.Errorf("gen: duplicate circulant offset %d", o)
		}
		seen[o] = true
	}
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		for _, o := range offsets {
			b.AddEdge(v, (v+o)%n)
		}
	}
	return b.Build(), nil
}

// BlockRandomProb returns the per-pair edge probability that gives the
// block-random family mean degree ~avgDeg within blocks of the given size.
func BlockRandomProb(block int, avgDeg float64) float64 {
	if block < 2 {
		return 0
	}
	p := avgDeg / float64(block-1)
	if p > 1 {
		return 1
	}
	if p < 0 {
		return 0
	}
	return p
}

// BlockRandomEdge reports whether {x, y} — two distinct vertices of the
// same block — is an edge of the block-random graph under the master seed.
// The decision derives a per-block sub-seed HMAC-style (seed keyed by the
// block index) and hashes it with the pair, so any vertex's neighborhood is
// recomputable from the short seed alone with no shared state — the
// property the implicit "blockrandom" source backend relies on.
func BlockRandomEdge(seed rnd.Seed, block, x, y int, p float64) bool {
	if x == y || p <= 0 {
		return false
	}
	lo, hi := x, y
	if lo > hi {
		lo, hi = hi, lo
	}
	bseed := seed.Derive(0xb10c_0000_0000_0000 | uint64(block))
	h := uint64(bseed.Derive(rnd.Pair(uint64(lo), uint64(hi))))
	return float64(h>>11)/(1<<53) < p
}

// BlockRandom materializes the block-random graph: vertices are split into
// consecutive blocks of the given size, and each block independently holds
// a G(b, p)-style random subgraph with p = avgDeg/(block-1), every decision
// derived from a per-block sub-seed. It is the materialized counterpart of
// the implicit "blockrandom" source family — a G(n, d/n)-flavored degree
// distribution whose adjacency is synthesizable locally.
func BlockRandom(n, block int, avgDeg float64, seed rnd.Seed) *graph.Graph {
	if block < 2 {
		block = 2
	}
	p := BlockRandomProb(block, avgDeg)
	b := graph.NewBuilder(n)
	for lo := 0; lo < n; lo += block {
		hi := lo + block
		if hi > n {
			hi = n
		}
		blk := lo / block
		for x := lo; x < hi; x++ {
			for y := x + 1; y < hi; y++ {
				if BlockRandomEdge(seed, blk, x, y, p) {
					b.AddEdge(x, y)
				}
			}
		}
	}
	return b.Build()
}

// Barbell returns two cliques of size k joined by a path of length
// pathLen. Total vertices: 2k + pathLen - 1 interior path vertices.
func Barbell(k, pathLen int) *graph.Graph {
	n := 2*k + max(pathLen-1, 0)
	b := graph.NewBuilder(n)
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			b.AddEdge(i, j)
			b.AddEdge(k+i, k+j)
		}
	}
	// Path from vertex 0 (left clique) to vertex k (right clique).
	prev := 0
	for i := 0; i < pathLen-1; i++ {
		node := 2*k + i
		b.AddEdge(prev, node)
		prev = node
	}
	if pathLen > 0 {
		b.AddEdge(prev, k)
	}
	return b.Build()
}
