package gen

import (
	"math"
	"testing"

	"lca/internal/rnd"
)

func TestGnpEdgeCount(t *testing.T) {
	const n = 400
	for _, p := range []float64{0.01, 0.05, 0.2} {
		g := Gnp(n, p, 42)
		want := p * float64(n) * float64(n-1) / 2
		sd := math.Sqrt(want * (1 - p))
		if diff := math.Abs(float64(g.M()) - want); diff > 5*sd {
			t.Errorf("Gnp(%d,%f): m=%d, want about %.0f (±%.0f)", n, p, g.M(), want, 5*sd)
		}
	}
}

func TestGnpExtremes(t *testing.T) {
	if g := Gnp(50, 0, 1); g.M() != 0 {
		t.Error("p=0 should give no edges")
	}
	if g := Gnp(20, 1, 1); g.M() != 20*19/2 {
		t.Errorf("p=1 should give the clique, got m=%d", g.M())
	}
	if g := Gnp(1, 0.5, 1); g.N() != 1 || g.M() != 0 {
		t.Error("single vertex graph wrong")
	}
	if g := Gnp(0, 0.5, 1); g.N() != 0 {
		t.Error("empty graph wrong")
	}
}

func TestGnpDeterministic(t *testing.T) {
	a, b := Gnp(100, 0.1, 7), Gnp(100, 0.1, 7)
	if a.M() != b.M() {
		t.Fatal("same seed produced different graphs")
	}
	for _, e := range a.Edges() {
		if !b.HasEdge(e.U, e.V) {
			t.Fatal("same seed produced different edge sets")
		}
	}
	c := Gnp(100, 0.1, 8)
	same := c.M() == a.M()
	if same {
		for _, e := range a.Edges() {
			if !c.HasEdge(e.U, e.V) {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical graphs (suspicious)")
	}
}

func TestGnpUniformAcrossPairs(t *testing.T) {
	// Every pair should be roughly equally likely: check first/middle/last
	// pair frequencies over many draws.
	const n, trials = 12, 3000
	pairs := [][2]int{{0, 1}, {5, 6}, {10, 11}, {0, 11}}
	counts := make([]int, len(pairs))
	for s := 0; s < trials; s++ {
		g := Gnp(n, 0.3, rnd.Seed(s))
		for i, pr := range pairs {
			if g.HasEdge(pr[0], pr[1]) {
				counts[i]++
			}
		}
	}
	for i, c := range counts {
		got := float64(c) / trials
		if math.Abs(got-0.3) > 0.05 {
			t.Errorf("pair %v frequency %f, want about 0.3", pairs[i], got)
		}
	}
}

func TestStructuredGraphs(t *testing.T) {
	cases := []struct {
		name       string
		n, m       int
		g          interface{ N() int }
		wantDegMin int
		wantDegMax int
	}{
		{"path", 5, 4, Path(5), 1, 2},
		{"cycle", 6, 6, Cycle(6), 2, 2},
		{"complete", 7, 21, Complete(7), 6, 6},
		{"star", 5, 4, Star(5), 1, 4},
		{"bipartite", 7, 12, CompleteBipartite(3, 4), 3, 4},
		{"grid", 12, 17, Grid(3, 4), 2, 4},
		{"torus", 12, 24, Torus(3, 4), 4, 4},
	}
	for _, c := range cases {
		g := c.g.(interface {
			N() int
			M() int
			MaxDegree() int
			MinDegree() int
		})
		if g.N() != c.n || g.M() != c.m {
			t.Errorf("%s: n=%d m=%d, want %d, %d", c.name, g.N(), g.M(), c.n, c.m)
		}
		if g.MinDegree() != c.wantDegMin || g.MaxDegree() != c.wantDegMax {
			t.Errorf("%s: degrees [%d,%d], want [%d,%d]", c.name, g.MinDegree(), g.MaxDegree(), c.wantDegMin, c.wantDegMax)
		}
	}
}

func TestGridDistances(t *testing.T) {
	g := Grid(4, 5)
	// Manhattan distance between corners.
	if d := g.Dist(0, 19, -1); d != 3+4 {
		t.Errorf("grid corner distance = %d, want 7", d)
	}
}

func TestRandomRegular(t *testing.T) {
	cases := []struct{ n, d int }{{10, 3}, {50, 4}, {100, 7}, {64, 16}, {20, 0}}
	for _, c := range cases {
		g, err := RandomRegular(c.n, c.d, 99)
		if err != nil {
			t.Fatalf("RandomRegular(%d,%d): %v", c.n, c.d, err)
		}
		if g.N() != c.n {
			t.Fatalf("n = %d, want %d", g.N(), c.n)
		}
		for v := 0; v < g.N(); v++ {
			if g.Degree(v) != c.d {
				t.Fatalf("RandomRegular(%d,%d): deg(%d) = %d", c.n, c.d, v, g.Degree(v))
			}
		}
	}
}

func TestRandomRegularErrors(t *testing.T) {
	if _, err := RandomRegular(5, 3, 1); err == nil {
		t.Error("odd n*d should fail")
	}
	if _, err := RandomRegular(5, 5, 1); err == nil {
		t.Error("d >= n should fail")
	}
	if _, err := RandomRegular(5, -1, 1); err == nil {
		t.Error("negative d should fail")
	}
}

func TestRandomRegularVariety(t *testing.T) {
	a, _ := RandomRegular(30, 3, 1)
	b, _ := RandomRegular(30, 3, 2)
	diff := 0
	for _, e := range a.Edges() {
		if !b.HasEdge(e.U, e.V) {
			diff++
		}
	}
	if diff == 0 {
		t.Error("different seeds gave identical regular graphs")
	}
}

func TestChungLuShape(t *testing.T) {
	g := ChungLu(2000, 2.5, 8, 5)
	if g.N() != 2000 {
		t.Fatalf("n = %d", g.N())
	}
	avg := 2 * float64(g.M()) / float64(g.N())
	if avg < 3 || avg > 16 {
		t.Errorf("average degree %f far from requested 8", avg)
	}
	// Heavy tail: the max degree should dominate the average.
	if float64(g.MaxDegree()) < 4*avg {
		t.Errorf("max degree %d not heavy-tailed vs avg %f", g.MaxDegree(), avg)
	}
	// Weights are decreasing, so low-index vertices should be the hubs.
	if g.Degree(0) < g.N()/200 {
		t.Errorf("vertex 0 degree %d unexpectedly small", g.Degree(0))
	}
}

func TestChungLuDegenerate(t *testing.T) {
	if g := ChungLu(1, 2.5, 3, 1); g.N() != 1 || g.M() != 0 {
		t.Error("single-vertex Chung-Lu wrong")
	}
	if g := ChungLu(100, 2.5, 0, 1); g.M() != 0 {
		t.Error("zero average degree should give no edges")
	}
	// beta <= 2 is clamped, not an error.
	if g := ChungLu(100, 1.0, 4, 1); g.N() != 100 {
		t.Error("beta clamp failed")
	}
}

func TestPlantedClusters(t *testing.T) {
	g := PlantedClusters(120, 3, 0.5, 0.01, 11)
	in, out := 0, 0
	for _, e := range g.Edges() {
		if e.U%3 == e.V%3 {
			in++
		} else {
			out++
		}
	}
	if in <= out {
		t.Errorf("intra-cluster edges (%d) should dominate inter (%d)", in, out)
	}
}

func TestDenseCore(t *testing.T) {
	g := DenseCore(200, 30, 4, 13)
	if g.N() != 200 {
		t.Fatalf("n = %d", g.N())
	}
	// Core vertices keep near-clique degrees.
	for v := 0; v < 30; v++ {
		if g.Degree(v) < 29 {
			t.Fatalf("core vertex %d degree %d below clique degree", v, g.Degree(v))
		}
	}
	if g.MaxDegree() < 10*g.MinDegree()+5 {
		t.Logf("note: degree spread %d..%d", g.MinDegree(), g.MaxDegree())
	}
}

func TestDenseCoreClamp(t *testing.T) {
	g := DenseCore(10, 50, 2, 1) // core larger than n is clamped
	if g.N() != 10 || g.M() != 45 {
		t.Errorf("clamped dense core: n=%d m=%d, want 10, 45", g.N(), g.M())
	}
}

func TestBarbell(t *testing.T) {
	g := Barbell(5, 4)
	if g.N() != 2*5+3 {
		t.Fatalf("n = %d, want 13", g.N())
	}
	if !g.IsConnected() {
		t.Fatal("barbell must be connected")
	}
	// Distance between the far corners of the two cliques: 1 + pathLen + 1.
	if d := g.Dist(1, 5+1, -1); d != 1+4+1 {
		t.Errorf("barbell cross distance = %d, want 6", d)
	}
}

func TestCycleSmall(t *testing.T) {
	if g := Cycle(2); g.M() != 1 {
		t.Error("2-cycle should degrade to a single edge")
	}
	if g := Cycle(3); g.M() != 3 {
		t.Error("triangle should have 3 edges")
	}
}
