package source

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"lca/internal/gen"
	"lca/internal/rnd"
)

// skipNoMmap skips tests that need a working mmap backend.
func skipNoMmap(t *testing.T) {
	t.Helper()
	if !mmapSupported {
		t.Skip("mmap unsupported on this platform")
	}
}

// TestCSRMmapMatchesColdReader is the probe-equivalence property: over a
// spread of seeds (and so graph shapes), the mmap reader and the cold
// positioned-read reader must answer every probe of the suite's sample
// identically — Degree, every Neighbor cell plus one past the end, and
// Adjacency both for present and absent edges.
func TestCSRMmapMatchesColdReader(t *testing.T) {
	skipNoMmap(t)
	for _, seed := range []rnd.Seed{1, 7, 21, 99, 4242} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			path := writeCSRFile(t, gen.Gnp(200, 0.05, seed))
			cold, err := OpenCSR(path)
			if err != nil {
				t.Fatal(err)
			}
			defer cold.Close()
			hot, err := OpenCSRMmap(path)
			if err != nil {
				t.Fatal(err)
			}
			defer hot.Close()
			if hot.N() != cold.N() || hot.M() != cold.M() || hot.Sorted() != cold.Sorted() {
				t.Fatalf("metadata differs: n %d/%d m %d/%d sorted %v/%v",
					hot.N(), cold.N(), hot.M(), cold.M(), hot.Sorted(), cold.Sorted())
			}
			n := cold.N()
			for v := -1; v <= n; v++ { // out-of-range included
				dc, dh := cold.Degree(v), hot.Degree(v)
				if dc != dh {
					t.Fatalf("Degree(%d): mmap %d, cold %d", v, dh, dc)
				}
				for i := 0; i <= dc; i++ {
					if wc, wh := cold.Neighbor(v, i), hot.Neighbor(v, i); wc != wh {
						t.Fatalf("Neighbor(%d,%d): mmap %d, cold %d", v, i, wh, wc)
					}
				}
				if v < 0 || v >= n {
					continue
				}
				for _, u := range []int{0, (v + 1) % n, (v * 13) % n} {
					if ac, ah := cold.Adjacency(v, u), hot.Adjacency(v, u); ac != ah {
						t.Fatalf("Adjacency(%d,%d): mmap %d, cold %d", v, u, ah, ac)
					}
				}
			}
		})
	}
}

// TestCSRMmapCloseUnmapsOnce pins the teardown contract: Close is
// idempotent, the mapping is released exactly once (the data slice is
// dropped on the first call), and racing closers all see the first
// result.
func TestCSRMmapCloseUnmapsOnce(t *testing.T) {
	skipNoMmap(t)
	c, err := OpenCSRMmap(writeCSRFile(t, gen.Gnp(80, 0.1, 3)))
	if err != nil {
		t.Fatal(err)
	}
	if c.Degree(5) < 0 {
		t.Fatal("probe before close failed")
	}
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = c.Close()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("racing Close %d: %v", i, err)
		}
	}
	if c.data != nil {
		t.Fatal("mapping still referenced after Close")
	}
	if err := c.Close(); err != nil {
		t.Fatalf("Close after Close: %v (must be idempotent)", err)
	}
}

// TestCSRMmapLocalityCounters pins the LocalityReporter accounting: every
// load is either a page touch or a local hit, a same-page re-probe counts
// local, and the counters only ever grow.
func TestCSRMmapLocalityCounters(t *testing.T) {
	skipNoMmap(t)
	c, err := OpenCSRMmap(writeCSRFile(t, gen.Gnp(120, 0.08, 11)))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.PageTouches() != 0 || c.LocalHits() != 0 {
		t.Fatalf("fresh mapping reports touches=%d local=%d", c.PageTouches(), c.LocalHits())
	}
	c.Degree(3)
	if c.PageTouches() == 0 {
		t.Fatal("first probe did not count a page touch")
	}
	pt, lh := c.PageTouches(), c.LocalHits()
	c.Degree(3) // identical offset: must count as a local hit
	if c.LocalHits() != lh+1 || c.PageTouches() != pt {
		t.Fatalf("same-page re-probe: touches %d->%d local %d->%d",
			pt, c.PageTouches(), lh, c.LocalHits())
	}
	for v := 0; v < c.N(); v++ {
		d := c.Degree(v)
		for i := 0; i < d; i++ {
			c.Neighbor(v, i)
		}
	}
	if c.PageTouches()+c.LocalHits() <= pt+lh {
		t.Fatal("probing did not advance the locality counters")
	}
	if _, ok := LocalityOf(c); !ok {
		t.Fatal("CSRMmap does not surface the LocalityReporter capability")
	}
}

// TestCSRMmapRejectsBadFiles mirrors the cold reader's open-time
// validation.
func TestCSRMmapRejectsBadFiles(t *testing.T) {
	skipNoMmap(t)
	if _, err := OpenCSRMmap("/nonexistent/no.csr"); err == nil {
		t.Fatal("opened a nonexistent file")
	}
	path := writeCSRFile(t, gen.Gnp(40, 0.1, 2))
	if src, err := Parse("csr:"+path+"?mmap=1", 0); err != nil {
		t.Fatalf("mmap spec failed on a good file: %v", err)
	} else {
		if _, ok := src.(*CSRMmap); !ok {
			t.Fatalf("csr:...?mmap=1 opened %T, want *CSRMmap", src)
		}
		_ = src.(Closer).Close()
	}
}

// TestCSRSpecKnobErrors drives the csr: query grammar table-style: every
// malformed knob must be rejected with an error naming the offending
// token — a typo must never degrade into a silently ignored knob — while
// the well-formed spellings open the right reader.
func TestCSRSpecKnobErrors(t *testing.T) {
	path := writeCSRFile(t, gen.Gnp(30, 0.1, 5))
	bad := []struct {
		spec    string
		wantSub string // the rejected token, quoted in the error
	}{
		{"csr:" + path + "?bogus=1", `unknown csr knob "bogus"`},
		{"csr:" + path + "?mmap=1&bogus=2", `unknown csr knob "bogus"`},
		{"csr:" + path + "?mmap", `csr knob "mmap": want knob=value`},
		{"csr:" + path + "?=1", `csr knob "=1": want knob=value`},
		{"csr:" + path + "?", `csr knob "": want knob=value`},
		{"csr:" + path + "?mmap=1&mmap=0", `csr knob "mmap" given more than once`},
		{"csr:" + path + "?mmap=yes", `csr knob mmap="yes": want 0 or 1`},
		{"csr:" + path + "?mmap=", `csr knob mmap="": want 0 or 1`},
	}
	for _, tc := range bad {
		_, err := Parse(tc.spec, 0)
		if err == nil {
			t.Errorf("Parse(%q) accepted a malformed knob", tc.spec)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("Parse(%q) error %q does not name the token, want substring %q", tc.spec, err, tc.wantSub)
		}
	}
	// mmap=0 is the explicit cold spelling; it must open the cold reader
	// even where mmap is available.
	src, err := Parse("csr:"+path+"?mmap=0", 0)
	if err != nil {
		t.Fatalf("mmap=0: %v", err)
	}
	if _, ok := src.(*CSR); !ok {
		t.Fatalf("csr:...?mmap=0 opened %T, want the cold *CSR", src)
	}
	_ = src.(Closer).Close()
}

// TestOpenCSRSpecMmapFallback pins the spec contract on platforms
// without mmap: ?mmap=1 must degrade to the cold reader, not error. On
// platforms with mmap this asserts the error-wrapping convention instead.
func TestOpenCSRSpecMmapFallback(t *testing.T) {
	if mmapSupported {
		err := fmt.Errorf("wrapped: %w", ErrMmapUnsupported)
		if !errors.Is(err, ErrMmapUnsupported) {
			t.Fatal("ErrMmapUnsupported does not survive wrapping")
		}
		t.Skip("mmap supported here; the fallback path runs on !unix builds")
	}
	path := writeCSRFile(t, gen.Gnp(40, 0.1, 2))
	src, err := Parse("csr:"+path+"?mmap=1", 0)
	if err != nil {
		t.Fatalf("mmap=1 must fall back to the cold reader, got %v", err)
	}
	if _, ok := src.(*CSR); !ok {
		t.Fatalf("fallback opened %T, want the cold *CSR", src)
	}
	_ = src.(Closer).Close()
}
