package source

// The dynamic capability view. Optional Source capabilities (EdgeCounter,
// DegreeBounder, RandomEdger, HealthReporter) used to be advertised by
// static wrapper types: Remote and Sharded each hand-wrote one struct per
// capability combination — 7 apiece for three optional capabilities — and
// every additional capability would double both lattices again. Instead,
// backends whose capabilities are decided at runtime implement CapSource:
// one method returning a Caps value whose non-nil fields are the
// capabilities present on this instance. Callers never type-assert the
// optional interfaces directly; they go through the *Of accessors below,
// which consult the dynamic view first and fall back to the static
// interfaces for backends (in-memory graphs, implicit families, CSR)
// whose capabilities are fixed by their type.

import "lca/internal/rnd"

// Caps is the dynamic capability view of one source instance: each non-nil
// field is an optional capability the instance has. The zero value has no
// optional capabilities.
type Caps struct {
	// M returns the edge count in O(1) (the EdgeCounter capability).
	M func() int
	// MaxDegree returns the maximum degree in O(1) (the DegreeBounder
	// capability).
	MaxDegree func() int
	// RandomEdge samples a uniform edge in canonical u < v orientation
	// (the RandomEdger capability).
	RandomEdge func(prg *rnd.PRG) (u, v int)
	// FetchRows answers whole adjacency rows in one round trip (the
	// RowFetcher capability behind the rowfull wire op).
	FetchRows func(vs []int) ([][]int, error)
	// Health reports per-replica health (the HealthReporter capability of
	// sharded fleets).
	Health func() []ShardHealth
	// Attest returns the graph commitment view (the Attestor capability
	// of attested sources: Merkle root + per-row inclusion proofs).
	Attest func() Attestor
	// Locality reports the (pageTouches, localHits) counter pair (the
	// LocalityReporter capability of page-mapped backends).
	Locality func() (pageTouches, localHits uint64)
}

// CapSource is implemented by sources whose optional capabilities are
// decided per instance at construction time (Remote mirrors its shard's
// /probe/meta, Sharded intersects its replicas') rather than by their
// static type. Capability discovery must go through the *Of accessors,
// which understand both this view and the static interfaces.
type CapSource interface {
	Source
	Caps() Caps
}

// EdgeCounterOf returns src's EdgeCounter capability, dynamic view first,
// static interface second.
func EdgeCounterOf(src Source) (EdgeCounter, bool) {
	if cs, ok := src.(CapSource); ok {
		if f := cs.Caps().M; f != nil {
			return edgeCounterFunc(f), true
		}
		return nil, false
	}
	ec, ok := src.(EdgeCounter)
	return ec, ok
}

// DegreeBounderOf returns src's DegreeBounder capability, dynamic view
// first, static interface second.
func DegreeBounderOf(src Source) (DegreeBounder, bool) {
	if cs, ok := src.(CapSource); ok {
		if f := cs.Caps().MaxDegree; f != nil {
			return degreeBounderFunc(f), true
		}
		return nil, false
	}
	db, ok := src.(DegreeBounder)
	return db, ok
}

// RandomEdgerOf returns src's RandomEdger capability, dynamic view first,
// static interface second.
func RandomEdgerOf(src Source) (RandomEdger, bool) {
	if cs, ok := src.(CapSource); ok {
		if f := cs.Caps().RandomEdge; f != nil {
			return randomEdgerFunc(f), true
		}
		return nil, false
	}
	re, ok := src.(RandomEdger)
	return re, ok
}

// RowFetcherOf returns src's RowFetcher capability, dynamic view first,
// static interface second.
func RowFetcherOf(src Source) (RowFetcher, bool) {
	if cs, ok := src.(CapSource); ok {
		if f := cs.Caps().FetchRows; f != nil {
			return rowFetcherFunc(f), true
		}
		return nil, false
	}
	rf, ok := src.(RowFetcher)
	return rf, ok
}

// HealthOf returns src's per-replica health snapshot when it has the
// HealthReporter capability (sharded fleets; dynamic view first, static
// interface second).
func HealthOf(src Source) ([]ShardHealth, bool) {
	if cs, ok := src.(CapSource); ok {
		if f := cs.Caps().Health; f != nil {
			return f(), true
		}
		return nil, false
	}
	if hr, ok := src.(HealthReporter); ok {
		return hr.Health(), true
	}
	return nil, false
}

// AttestorOf returns src's Attestor capability (graph commitment plus
// row proofs), dynamic view first, static interface second.
func AttestorOf(src Source) (Attestor, bool) {
	if cs, ok := src.(CapSource); ok {
		if f := cs.Caps().Attest; f != nil {
			return f(), true
		}
		return nil, false
	}
	at, ok := src.(Attestor)
	return at, ok
}

// LocalityOf returns src's LocalityReporter capability (page-touch and
// same-page-hit counters of mapped backends), dynamic view first, static
// interface second.
func LocalityOf(src Source) (LocalityReporter, bool) {
	if cs, ok := src.(CapSource); ok {
		if f := cs.Caps().Locality; f != nil {
			return localityFunc(f), true
		}
		return nil, false
	}
	lr, ok := src.(LocalityReporter)
	return lr, ok
}

// Function adapters lifting Caps fields back onto the static interfaces,
// so accessor callers keep one calling convention.
type edgeCounterFunc func() int

func (f edgeCounterFunc) M() int { return f() }

type degreeBounderFunc func() int

func (f degreeBounderFunc) MaxDegree() int { return f() }

type randomEdgerFunc func(prg *rnd.PRG) (int, int)

func (f randomEdgerFunc) RandomEdge(prg *rnd.PRG) (int, int) { return f(prg) }

type rowFetcherFunc func([]int) ([][]int, error)

func (f rowFetcherFunc) FetchRows(vs []int) ([][]int, error) { return f(vs) }

type localityFunc func() (uint64, uint64)

func (f localityFunc) PageTouches() uint64 { t, _ := f(); return t }

func (f localityFunc) LocalHits() uint64 { _, h := f(); return h }
