package source

// Implicit deterministic backends: adjacency synthesized per probe from
// the topology parameters and a short seed. No backend here holds any
// per-vertex state, so N can exceed RAM by any margin; probes are
// allocation-free, which the bounded-allocation acceptance tests pin down.
//
// Every family fixes the same adjacency-list order its materialized
// internal/gen counterpart produces (the Builder's ascending order), so a
// probe-equivalence property test can compare the two cell by cell — the
// ordering is semantically significant in the LCA model.

import (
	"fmt"

	"lca/internal/gen"
	"lca/internal/rnd"
)

// Ring is the implicit cycle 0-1-...-(n-1)-0, the probe-native counterpart
// of gen.Cycle (degenerating to a path edge at n=2, like the generator).
func Ring(n int) Source {
	if n < 0 {
		n = 0
	}
	return ringSource{n: n}
}

type ringSource struct{ n int }

func (r ringSource) N() int { return r.n }

func (r ringSource) Degree(int) int { return r.MaxDegree() }

// MaxDegree implements DegreeBounder; rings are regular.
func (r ringSource) MaxDegree() int {
	switch {
	case r.n <= 1:
		return 0
	case r.n == 2:
		return 1
	default:
		return 2
	}
}

// M implements EdgeCounter.
func (r ringSource) M() int {
	switch {
	case r.n <= 1:
		return 0
	case r.n == 2:
		return 1
	default:
		return r.n
	}
}

// neighbors returns v's ascending neighbor pair; b < 0 marks degree < 2.
func (r ringSource) neighbors(v int) (a, b int) {
	switch {
	case r.n <= 1:
		return -1, -1
	case r.n == 2:
		return 1 - v, -1
	}
	a, b = (v-1+r.n)%r.n, (v+1)%r.n
	if a > b {
		a, b = b, a
	}
	return a, b
}

func (r ringSource) Neighbor(v, i int) int {
	a, b := r.neighbors(v)
	switch i {
	case 0:
		return a
	case 1:
		return b
	}
	return -1
}

func (r ringSource) Adjacency(u, v int) int {
	a, b := r.neighbors(u)
	switch v {
	case a:
		return 0
	case b:
		return 1
	}
	return -1
}

// RandomEdge implements RandomEdger.
func (r ringSource) RandomEdge(prg *rnd.PRG) (int, int) {
	if r.M() == 0 {
		panic("source: RandomEdge on edgeless ring")
	}
	return stubRandomEdge(r, 2, prg)
}

// Grid is the implicit rows x cols grid, the probe-native counterpart of
// gen.Grid; vertex (r,c) has index r*cols+c.
func Grid(rows, cols int) Source {
	if rows < 0 {
		rows = 0
	}
	if cols < 0 {
		cols = 0
	}
	return gridSource{rows: rows, cols: cols}
}

type gridSource struct{ rows, cols int }

func (g gridSource) N() int { return g.rows * g.cols }

// candidates fills buf with v's neighbors in ascending order and returns
// the count. The four candidates are generated in increasing index order
// (up, left, right, down), so no sort is needed.
func (g gridSource) candidates(v int, buf *[4]int) int {
	r, c := v/g.cols, v%g.cols
	k := 0
	if r > 0 {
		buf[k] = v - g.cols
		k++
	}
	if c > 0 {
		buf[k] = v - 1
		k++
	}
	if c+1 < g.cols {
		buf[k] = v + 1
		k++
	}
	if r+1 < g.rows {
		buf[k] = v + g.cols
		k++
	}
	return k
}

func (g gridSource) Degree(v int) int {
	var buf [4]int
	return g.candidates(v, &buf)
}

func (g gridSource) Neighbor(v, i int) int {
	var buf [4]int
	k := g.candidates(v, &buf)
	if i < 0 || i >= k {
		return -1
	}
	return buf[i]
}

func (g gridSource) Adjacency(u, v int) int {
	var buf [4]int
	k := g.candidates(u, &buf)
	for i := 0; i < k; i++ {
		if buf[i] == v {
			return i
		}
	}
	return -1
}

// M implements EdgeCounter.
func (g gridSource) M() int {
	if g.rows == 0 || g.cols == 0 {
		return 0
	}
	return g.rows*(g.cols-1) + (g.rows-1)*g.cols
}

// MaxDegree implements DegreeBounder.
func (g gridSource) MaxDegree() int {
	if g.rows == 0 || g.cols == 0 {
		return 0
	}
	return min(2, g.cols-1) + min(2, g.rows-1)
}

// RandomEdge implements RandomEdger.
func (g gridSource) RandomEdge(prg *rnd.PRG) (int, int) {
	if g.M() == 0 {
		panic("source: RandomEdge on edgeless grid")
	}
	return stubRandomEdge(g, 4, prg)
}

// Torus is the implicit rows x cols torus (grid with wraparound), the
// probe-native counterpart of gen.Torus, including its small-dimension
// degeneracies (a 2-wide wrap collapses to a single edge; a 1-wide wrap
// disappears).
func Torus(rows, cols int) Source {
	if rows < 0 {
		rows = 0
	}
	if cols < 0 {
		cols = 0
	}
	return torusSource{rows: rows, cols: cols}
}

type torusSource struct{ rows, cols int }

func (t torusSource) N() int { return t.rows * t.cols }

// wrapCount returns the number of distinct wrap-neighbors along a
// dimension of the given extent: 2 on a proper cycle, 1 when the wrap
// collapses, 0 when it is a self-loop.
func wrapCount(extent int) int {
	switch {
	case extent >= 3:
		return 2
	case extent == 2:
		return 1
	default:
		return 0
	}
}

func (t torusSource) Degree(int) int { return t.MaxDegree() }

// MaxDegree implements DegreeBounder; tori are regular.
func (t torusSource) MaxDegree() int {
	if t.N() == 0 {
		return 0
	}
	return wrapCount(t.cols) + wrapCount(t.rows)
}

// candidates fills buf with v's distinct neighbors in ascending order and
// returns the count.
func (t torusSource) candidates(v int, buf *[4]int) int {
	r, c := v/t.cols, v%t.cols
	k := 0
	add := func(w int) {
		for i := 0; i < k; i++ {
			if buf[i] == w {
				return
			}
		}
		buf[k] = w
		k++
	}
	if t.cols >= 2 {
		add(r*t.cols + (c+1)%t.cols)
		add(r*t.cols + (c-1+t.cols)%t.cols)
	}
	if t.rows >= 2 {
		add(((r+1)%t.rows)*t.cols + c)
		add(((r-1+t.rows)%t.rows)*t.cols + c)
	}
	// Insertion sort; at most 4 entries.
	for i := 1; i < k; i++ {
		for j := i; j > 0 && buf[j] < buf[j-1]; j-- {
			buf[j], buf[j-1] = buf[j-1], buf[j]
		}
	}
	return k
}

func (t torusSource) Neighbor(v, i int) int {
	var buf [4]int
	k := t.candidates(v, &buf)
	if i < 0 || i >= k {
		return -1
	}
	return buf[i]
}

func (t torusSource) Adjacency(u, v int) int {
	var buf [4]int
	k := t.candidates(u, &buf)
	for i := 0; i < k; i++ {
		if buf[i] == v {
			return i
		}
	}
	return -1
}

// M implements EdgeCounter.
func (t torusSource) M() int {
	if t.N() == 0 {
		return 0
	}
	perRow := 0
	switch {
	case t.cols >= 3:
		perRow = t.cols
	case t.cols == 2:
		perRow = 1
	}
	perCol := 0
	switch {
	case t.rows >= 3:
		perCol = t.rows
	case t.rows == 2:
		perCol = 1
	}
	return t.rows*perRow + t.cols*perCol
}

// RandomEdge implements RandomEdger.
func (t torusSource) RandomEdge(prg *rnd.PRG) (int, int) {
	if t.M() == 0 {
		panic("source: RandomEdge on edgeless torus")
	}
	return stubRandomEdge(t, 4, prg)
}

// maxCirculantOffsets caps the offset count so Neighbor/Adjacency can sort
// candidates in a fixed stack buffer, keeping probes allocation-free.
const maxCirculantOffsets = 64

// Circulant is the implicit hash-based d-regular family: v is adjacent to
// (v±o) mod n for every offset o. Offsets must be distinct and in
// [1, (n-1)/2] (gen.CirculantOffsets derives such a set from a seed),
// which makes the graph exactly 2*len(offsets)-regular — the probe-native
// counterpart of gen.Circulant.
func Circulant(n int, offsets []int) (Source, error) {
	if n < 0 {
		n = 0
	}
	if len(offsets) > maxCirculantOffsets {
		return nil, fmt.Errorf("source: %d circulant offsets exceed the supported maximum %d", len(offsets), maxCirculantOffsets)
	}
	seen := make(map[int]bool, len(offsets))
	for _, o := range offsets {
		if o < 1 || o > (n-1)/2 {
			return nil, fmt.Errorf("source: circulant offset %d out of range [1,%d]", o, (n-1)/2)
		}
		if seen[o] {
			return nil, fmt.Errorf("source: duplicate circulant offset %d", o)
		}
		seen[o] = true
	}
	c := &circulantSource{n: n}
	c.k = len(offsets)
	copy(c.offsets[:], offsets)
	return c, nil
}

type circulantSource struct {
	n       int
	k       int
	offsets [maxCirculantOffsets]int
}

func (c *circulantSource) N() int { return c.n }

func (c *circulantSource) Degree(int) int { return 2 * c.k }

// MaxDegree implements DegreeBounder; circulants are regular.
func (c *circulantSource) MaxDegree() int { return 2 * c.k }

// M implements EdgeCounter: the offset constraints make all n*k edges
// distinct.
func (c *circulantSource) M() int { return c.n * c.k }

// candidates fills buf with v's 2k neighbors in ascending order and
// returns the count. The offset constraints guarantee the 2k values are
// pairwise distinct.
func (c *circulantSource) candidates(v int, buf *[2 * maxCirculantOffsets]int) int {
	k := 0
	for j := 0; j < c.k; j++ {
		o := c.offsets[j]
		buf[k] = (v + o) % c.n
		buf[k+1] = (v - o + c.n) % c.n
		k += 2
	}
	for i := 1; i < k; i++ {
		for j := i; j > 0 && buf[j] < buf[j-1]; j-- {
			buf[j], buf[j-1] = buf[j-1], buf[j]
		}
	}
	return k
}

func (c *circulantSource) Neighbor(v, i int) int {
	if i < 0 || i >= 2*c.k {
		return -1
	}
	var buf [2 * maxCirculantOffsets]int
	c.candidates(v, &buf)
	return buf[i]
}

func (c *circulantSource) Adjacency(u, v int) int {
	var buf [2 * maxCirculantOffsets]int
	k := c.candidates(u, &buf)
	// Binary search; the candidate list is sorted.
	lo, hi := 0, k
	for lo < hi {
		mid := (lo + hi) / 2
		if buf[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < k && buf[lo] == v {
		return lo
	}
	return -1
}

// RandomEdge implements RandomEdger: a uniform (vertex, slot) pair is a
// uniform stub on a regular graph.
func (c *circulantSource) RandomEdge(prg *rnd.PRG) (int, int) {
	if c.M() == 0 {
		panic("source: RandomEdge on edgeless circulant")
	}
	return stubRandomEdge(c, 2*c.k, prg)
}

// BlockRandom is the implicit G(n, d/n)-style random-neighbor family:
// consecutive blocks of the given size each hold an independent
// G(block, p) subgraph with p = avgDeg/(block-1), every pair decision
// derived HMAC-style from a per-block sub-seed (gen.BlockRandomEdge). Any
// vertex's neighborhood is synthesizable by scanning its block — O(block)
// work, independent of n — and degrees are Binomial(block-1, p), the
// Poisson-like profile of sparse random graphs. gen.BlockRandom is the
// materialized counterpart.
func BlockRandom(n, block int, avgDeg float64, seed rnd.Seed) Source {
	if n < 0 {
		n = 0
	}
	if block < 2 {
		block = 2
	}
	return blockRandomSource{
		n:     n,
		block: block,
		p:     gen.BlockRandomProb(block, avgDeg),
		seed:  seed,
	}
}

type blockRandomSource struct {
	n     int
	block int
	p     float64
	seed  rnd.Seed
}

func (b blockRandomSource) N() int { return b.n }

// bounds returns the half-open vertex range of v's block and its index.
func (b blockRandomSource) bounds(v int) (lo, hi, blk int) {
	blk = v / b.block
	lo = blk * b.block
	hi = lo + b.block
	if hi > b.n {
		hi = b.n
	}
	return lo, hi, blk
}

func (b blockRandomSource) Degree(v int) int {
	lo, hi, blk := b.bounds(v)
	d := 0
	for y := lo; y < hi; y++ {
		if y != v && gen.BlockRandomEdge(b.seed, blk, v, y, b.p) {
			d++
		}
	}
	return d
}

func (b blockRandomSource) Neighbor(v, i int) int {
	if i < 0 {
		return -1
	}
	lo, hi, blk := b.bounds(v)
	for y := lo; y < hi; y++ {
		if y != v && gen.BlockRandomEdge(b.seed, blk, v, y, b.p) {
			if i == 0 {
				return y
			}
			i--
		}
	}
	return -1
}

func (b blockRandomSource) Adjacency(u, v int) int {
	lo, hi, blk := b.bounds(u)
	if v < lo || v >= hi || v == u || !gen.BlockRandomEdge(b.seed, blk, u, v, b.p) {
		return -1
	}
	idx := 0
	for y := lo; y < v; y++ {
		if y != u && gen.BlockRandomEdge(b.seed, blk, u, y, b.p) {
			idx++
		}
	}
	return idx
}

// RandomEdge implements RandomEdger by stub rejection; degrees are bounded
// by block-1. It panics if no edge is found after many attempts (an
// effectively edgeless parameterization).
func (b blockRandomSource) RandomEdge(prg *rnd.PRG) (int, int) {
	maxDeg := b.block - 1
	if b.n < b.block {
		maxDeg = b.n - 1
	}
	if b.n < 2 || maxDeg < 1 || b.p <= 0 {
		panic("source: RandomEdge on edgeless block-random source")
	}
	for attempt := 0; attempt < 1_000_000; attempt++ {
		v := prg.Intn(b.n)
		i := prg.Intn(maxDeg)
		if i >= b.Degree(v) {
			continue
		}
		w := b.Neighbor(v, i)
		if v > w {
			v, w = w, v
		}
		return v, w
	}
	panic("source: RandomEdge found no edge (effectively edgeless block-random source)")
}
