package source

// Trace context for the network probing paths. The Source interface is
// deliberately context-free (probes are the model's unit of cost, not
// an RPC framework), so trace context rides the same seam as round-trip
// attribution: the per-request scoped views (TripScoper.ScopeTrips)
// optionally accept a tracer, and every layer below threads a probeScope
// value instead of growing its signatures one tracing argument at a
// time. The zero probeScope — unscoped, untraced — is valid everywhere
// and costs a nil test per site.

import "lca/internal/trace"

// TracerSetter is the optional capability of request-scoped source
// views (the values returned by TripScoper.ScopeTrips on Remote and
// Sharded) to record probe-level spans into a trace: rpc spans per
// shard round trip, probe spans with failover/hedge outcome tags, and
// shard-side spans stitched back over the wire. Set the tracer before
// issuing probes through the view; a nil tracer disables tracing.
type TracerSetter interface {
	SetTracer(*trace.Tracer)
}

// probeScope bundles the per-request attribution state threaded down
// the network probing paths: the view's round-trip counter plus, when
// the request is traced, the tracer and the span id that rpc spans
// parent under. Parent is captured by the caller before any concurrent
// fan-out (hedges, per-shard batch goroutines), so the implicit Push/Pop
// parent is never read from a goroutine.
type probeScope struct {
	tc *tripCount
	// af and pb attribute attestation accounting (verification failures,
	// proof bytes transported) to the view, alongside the trip counter.
	af     *tripCount
	pb     *tripCount
	tr     *trace.Tracer
	parent uint32
}

// TracedView returns a view of src that records its network spans into
// tr: the request-scoped view (TripScoper) with the tracer attached
// (TracerSetter). Shard servers use it so a probe shard that is itself
// backed by remote shards shows the whole chain in the client's trace,
// and Sessions use it to root a traced oracle chain. Sources without
// request scoping (local backends) are returned unchanged: their probes
// are memory reads, not spans.
func TracedView(src Source, tr *trace.Tracer) Source {
	ts, ok := src.(TripScoper)
	if !ok {
		return src
	}
	scoped := ts.ScopeTrips()
	set, ok := scoped.(TracerSetter)
	if !ok {
		return src
	}
	set.SetTracer(tr)
	return scoped
}

// Span op names for the client-side probing layers. Constants, so the
// untraced path never concatenates.
func rpcSpanOp(op string) string {
	switch op {
	case OpDegree:
		return "rpc:degree"
	case OpNeighbor:
		return "rpc:neighbor"
	case OpAdjacency:
		return "rpc:adjacency"
	case OpRandomEdge:
		return "rpc:randomedge"
	case OpRowFull:
		return "rpc:rowfull"
	}
	return "rpc:probe"
}

// probeSpanOp names a fleet-level probe span ("probe:degree"), the span
// whose children are the rpc attempts the probe actually cost.
func probeSpanOp(op string) string {
	switch op {
	case OpDegree:
		return "probe:degree"
	case OpNeighbor:
		return "probe:neighbor"
	case OpAdjacency:
		return "probe:adjacency"
	case OpRandomEdge:
		return "probe:randomedge"
	}
	return "probe:probe"
}

// shardSpanOp names a shard-side (server) span for one wire probe.
func shardSpanOp(op string) string {
	switch op {
	case OpDegree:
		return "shard:degree"
	case OpNeighbor:
		return "shard:neighbor"
	case OpAdjacency:
		return "shard:adjacency"
	case OpRandomEdge:
		return "shard:randomedge"
	case OpRowFull:
		return "shard:rowfull"
	}
	return "shard:probe"
}
