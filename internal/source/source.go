// Package source makes the LCA probe substrate pluggable: a Source is
// anything that can answer the model's adjacency-list probes — N, Degree,
// Neighbor and Adjacency — about one fixed graph, without any requirement
// that the graph is resident in memory.
//
// The point of the LCA model is answering queries about inputs too large
// to read; this package supplies the input side of that promise with four
// backend families:
//
//   - Implicit deterministic generators (Ring, Grid, Torus, Circulant,
//     BlockRandom): adjacency synthesized on the fly from the topology
//     parameters and a short seed, with no per-vertex state at all. A
//     billion-vertex ring costs the same 24 bytes as a ten-vertex one.
//   - The in-memory adapter: *graph.Graph satisfies Source directly
//     (FromGraph documents the conformance), so every existing workload
//     keeps working unchanged.
//   - The disk-backed CSR reader (OpenCSR): a graph saved once with
//     graph.WriteCSR / WriteCSR is probed cold via positioned reads, with
//     O(1) resident state per open file.
//   - Network shards (OpenRemote, NewSharded): probes answered by other
//     processes over the probe wire protocol (wire.go), with connection
//     reuse, timeouts and retry-with-backoff; Sharded consistent-hashes
//     vertices across replica shards and can add a bounded client-side
//     probe LRU.
//
// Sources are addressed by spec strings ("ring:n=1000000000",
// "csr:web.csr", "remote:http://host:8080", "sharded:remote:a,remote:b",
// a bare edge-list path) parsed by Parse; the Session API, the HTTP
// server and the CLIs all accept specs, so any backend is reachable from
// every surface.
//
// Every Source must be safe for concurrent use: probe handlers and
// parallel assembly workers share one instance. All backends here are
// stateless per probe (or, for files, use positioned reads), which also
// keeps per-probe allocation at zero on the implicit families. The
// executable contract — including the -1 conventions, adjacency symmetry,
// determinism, Close idempotence and concurrency safety — is the
// TestConformance suite (conformance.go), which every backend family
// passes, network ones included.
package source

import (
	"fmt"

	"lca/internal/graph"
	"lca/internal/rnd"
)

// MaxVertices is the largest vertex count a source may expose: vertex IDs
// must fit the 32-bit halves of the packed uint64 keys used by edge keys,
// probe caches and algorithm memo tables throughout the library. Parse
// enforces it; programmatic constructors trust the caller.
const MaxVertices = 1 << 32

// Source answers the adjacency-list probes of the LCA model about one
// fixed graph on vertices 0..N()-1, with N() at most MaxVertices.
// Implementations must be deterministic — equal probes always return
// equal answers — and safe for concurrent use.
type Source interface {
	// N returns the number of vertices. Free in the model.
	N() int
	// Degree returns deg(v).
	Degree(v int) int
	// Neighbor returns the i-th (0-indexed) neighbor of v, or -1 if i is
	// out of range.
	Neighbor(v, i int) int
	// Adjacency returns the index of v in the neighbor list of u, or -1
	// if (u,v) is not an edge.
	Adjacency(u, v int) int
}

// RandomEdger is the optional "random edge" capability used by the
// sublinear estimators: a uniformly random edge of the source in canonical
// (u < v) orientation. Sources with no edges may panic, mirroring
// graph.Graph.RandomEdge.
type RandomEdger interface {
	RandomEdge(prg *rnd.PRG) (u, v int)
}

// EdgeCounter is the optional capability of knowing the edge count in O(1)
// — materialized graphs and closed-form implicit families have it, random
// families generally do not.
type EdgeCounter interface {
	M() int
}

// DegreeBounder is the optional capability of knowing the maximum degree
// in O(1).
type DegreeBounder interface {
	MaxDegree() int
}

// RowFetcher is the optional capability of answering whole adjacency rows
// at once: FetchRows returns, index-aligned with vs, each vertex's full
// neighbor list (degree = len(row)). It is the transport behind the
// rowfull wire op — one answer replaces a Degree probe plus a
// remainder-width Neighbor batch, erasing the extra round trip — and
// exists only where a backend can serve it in one shot (Remote against a
// rowfull-capable shard, Sharded when every replica has it). Returned
// rows must equal what Degree/Neighbor probes would assemble; callers own
// the returned slices. The capability is transport-level: probe
// accounting for the cells read is the caller's job, exactly as with
// ProbeBatch.
type RowFetcher interface {
	FetchRows(vs []int) ([][]int, error)
}

// Closer is implemented by sources holding external resources (the CSR
// backend). Callers that opened a source via Parse should Close it when
// done; Close on other backends is absent and a no-op by omission.
type Closer interface {
	Close() error
}

// LocalityReporter is the optional capability of reporting probe locality
// on page-granular backends (the mmap CSR reader): PageTouches counts
// loads that landed on a different 4KiB page than the load before them
// (page-cache or fault work), LocalHits counts loads that stayed on the
// same page (near-free). Both are monotone and safe for concurrent use.
// Like round trips, the split is transport accounting, deliberately
// separate from the model's per-cell probe counts — it shows whether a
// workload's probes exhibit the locality the cache hierarchy is sized
// for.
type LocalityReporter interface {
	PageTouches() uint64
	LocalHits() uint64
}

// RoundTripCounter is the optional capability of reporting how many
// network round trips a source has issued so far (monotone, safe for
// concurrent use). Remote counts its HTTP requests; Sharded sums its
// shards'. Purely local backends lack the capability — their probes cost
// no round trips — so harnesses read it through a type assertion and
// report 0 otherwise. The count is transport accounting, deliberately
// separate from the model's per-cell probe counts.
type RoundTripCounter interface {
	RoundTrips() uint64
}

// FromGraph returns the in-memory source backed by g. *graph.Graph
// implements Source (and RandomEdger, EdgeCounter, DegreeBounder)
// directly, so this is the identity — it exists to document the adapter
// and to keep call sites explicit about the boundary.
func FromGraph(g *graph.Graph) Source { return g }

// Compile-time conformance of the in-memory adapter.
var (
	_ Source        = (*graph.Graph)(nil)
	_ RandomEdger   = (*graph.Graph)(nil)
	_ EdgeCounter   = (*graph.Graph)(nil)
	_ DegreeBounder = (*graph.Graph)(nil)
)

// Materialize probes every adjacency cell of src into an in-memory Graph,
// refusing when src has more than maxN vertices (materialization is O(n+m)
// — exactly what sources exist to avoid; the cap keeps a CLI typo from
// trying to build a billion-vertex adjacency). The result's adjacency
// lists are in the Builder's canonical sorted order, which matches every
// implicit family here but may reorder a shuffled CSR file.
func Materialize(src Source, maxN int) (*graph.Graph, error) {
	if g, ok := src.(*graph.Graph); ok {
		return g, nil
	}
	n := src.N()
	if n > maxN {
		return nil, fmt.Errorf("source: materializing n=%d vertices exceeds the cap %d", n, maxN)
	}
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		d := src.Degree(v)
		for i := 0; i < d; i++ {
			w := src.Neighbor(v, i)
			if w < 0 || w >= n {
				return nil, fmt.Errorf("source: neighbor %d of vertex %d out of range [0,%d)", w, v, n)
			}
			if w != v {
				b.AddEdge(v, w)
			}
		}
	}
	return b.Build(), nil
}

// stubRandomEdge samples a uniform edge by rejection over directed stubs:
// a uniform (vertex, slot < maxDeg) pair conditioned on the slot being a
// real neighbor is a uniform stub, and each undirected edge owns exactly
// two stubs. maxDeg must bound every degree; the caller guarantees the
// source has at least one edge.
func stubRandomEdge(src Source, maxDeg int, prg *rnd.PRG) (int, int) {
	n := src.N()
	for {
		v := prg.Intn(n)
		i := prg.Intn(maxDeg)
		if i >= src.Degree(v) {
			continue
		}
		w := src.Neighbor(v, i)
		if w < 0 {
			continue
		}
		if v > w {
			v, w = w, v
		}
		return v, w
	}
}
