package source

// latencySketch: a fixed-bucket quantile sketch over recent probe
// round-trip durations, the estimator behind adaptive hedging
// (hedge=adaptive). Buckets are powers of two of a microsecond, so the
// whole sketch is a few hundred bytes per shard regardless of traffic —
// the same o(n)-state discipline as internal/metrics — and a quantile
// read is a single bucket walk. Recency comes from periodic halving:
// once the window fills, every count is halved, so old observations
// decay geometrically and the sketch tracks the shard's current latency
// regime instead of its lifetime average.

import (
	"math/bits"
	"sync"
	"time"
)

const (
	// latencyBuckets spans 1us .. 2^25us (~33s); bucket i covers
	// (2^(i-1), 2^i] microseconds. Probes slower than the top bucket
	// clamp into it — far beyond any sane hedge ceiling anyway.
	latencyBuckets = 26
	// latencyWindow is the observation count that triggers a halving:
	// the sketch weights roughly the last ~window observations.
	latencyWindow = 512
	// latencyMinSamples gates quantile reads: below it the sketch has
	// seen too little to estimate a tail and reports not-ready.
	latencyMinSamples = 16
)

// latencySketch is one shard's rolling latency estimator. The zero value
// is ready to use; safe for concurrent use.
type latencySketch struct {
	mu     sync.Mutex
	counts [latencyBuckets]uint64
	total  uint64
}

// latencyBucket maps a duration to its bucket index.
func latencyBucket(d time.Duration) int {
	us := d.Microseconds()
	if us < 1 {
		return 0
	}
	i := bits.Len64(uint64(us) - 1) // smallest i with 2^i >= us
	if i >= latencyBuckets {
		i = latencyBuckets - 1
	}
	return i
}

// observe records one successful probe's round-trip duration.
func (ls *latencySketch) observe(d time.Duration) {
	i := latencyBucket(d)
	ls.mu.Lock()
	ls.counts[i]++
	ls.total++
	if ls.total >= latencyWindow {
		var kept uint64
		for j := range ls.counts {
			ls.counts[j] /= 2
			kept += ls.counts[j]
		}
		ls.total = kept
	}
	ls.mu.Unlock()
}

// quantile estimates the q-quantile (q in [0,1]) of recent durations,
// reported as the holding bucket's upper bound — deliberately
// conservative for a hedge delay: hedging a hair late wastes less than
// hedging a hair early duplicates. ok is false until latencyMinSamples
// observations have been recorded.
func (ls *latencySketch) quantile(q float64) (d time.Duration, ok bool) {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	if ls.total < latencyMinSamples {
		return 0, false
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(ls.total))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, c := range ls.counts {
		cum += c
		if cum >= rank {
			return time.Duration(uint64(1)<<i) * time.Microsecond, true
		}
	}
	return time.Duration(uint64(1)<<(latencyBuckets-1)) * time.Microsecond, true
}

// samples reports the current (decayed) observation count (tests).
func (ls *latencySketch) samples() uint64 {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	return ls.total
}
