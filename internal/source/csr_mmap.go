package source

// Memory-mapped CSR: the same on-disk format as the cold reader, but the
// whole file is mapped read-only once at open, so every probe is a couple
// of loads against the page cache instead of positioned-read syscalls.
// This is the hot local path the space-efficient LCA model wants: the
// polylog-probe guarantee means a query touches a handful of adjacency
// rows, and a mapping answers those touches from resident pages with zero
// per-probe allocation and zero syscalls.
//
// The reader keeps probe-locality counters (the LocalityReporter
// capability): a probe landing on the same 4KiB page as the previous one
// is a local hit (near-free), a different page is a page touch (page
// cache or fault work). The split is what benchmarks and served answers
// surface to show whether a workload's probes actually exhibit the
// locality the cache hierarchy is sized for.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"os"
	"sync"
	"sync/atomic"

	"lca/internal/graph"
)

// ErrMmapUnsupported marks platforms (or file sizes) the mmap backend
// cannot serve; OpenCSRMmap wraps it so callers can fall back to the cold
// positioned-read reader with errors.Is.
var ErrMmapUnsupported = errors.New("mmap is not supported here")

// csrPageShift is the locality granule: byte offsets within the same
// 1<<csrPageShift block count as one page. 4KiB matches the smallest
// page size of every supported platform.
const csrPageShift = 12

// CSRMmap is a memory-mapped source over a CSR binary file. Construct
// with OpenCSRMmap; the zero value is unusable. Safe for concurrent use:
// the mapping is read-only and the counters are atomic.
type CSRMmap struct {
	f    *os.File
	data []byte
	h    graph.CSRHeader

	pageTouches atomic.Uint64
	localHits   atomic.Uint64
	lastPage    atomic.Int64

	closeOnce sync.Once
	closeErr  error
}

var (
	_ Source           = (*CSRMmap)(nil)
	_ EdgeCounter      = (*CSRMmap)(nil)
	_ Closer           = (*CSRMmap)(nil)
	_ LocalityReporter = (*CSRMmap)(nil)
)

// OpenCSRMmap maps a CSR binary file for hot probing. The error wraps
// ErrMmapUnsupported when the platform cannot map files (or the file
// exceeds the address space); callers fall back to OpenCSR then.
func OpenCSRMmap(path string) (*CSRMmap, error) {
	if !mmapSupported {
		return nil, fmt.Errorf("source: csr mmap %s: %w", path, ErrMmapUnsupported)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	h, err := graph.ReadCSRHeader(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	if h.N > math.MaxInt32+1 {
		// Neighbor cells are int32; a bigger N could not have been written.
		f.Close()
		return nil, fmt.Errorf("source: CSR header n=%d exceeds the int32 vertex space", h.N)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if want := h.NeighborPos(h.Entries); st.Size() < want {
		f.Close()
		return nil, fmt.Errorf("source: CSR file truncated: %d bytes, header requires %d", st.Size(), want)
	}
	size := st.Size()
	if int64(int(size)) != size {
		// A 32-bit address space cannot hold the mapping.
		f.Close()
		return nil, fmt.Errorf("source: csr mmap %s: %d bytes exceed the address space: %w", path, size, ErrMmapUnsupported)
	}
	data, err := mmapFile(f.Fd(), int(size))
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("source: csr mmap %s: %w", path, err)
	}
	c := &CSRMmap{f: f, data: data, h: h}
	c.lastPage.Store(-1)
	return c, nil
}

// Close unmaps the file exactly once and releases the handle. Idempotent:
// repeated calls return the first result, so session teardown and
// deferred cleanup can both fire without a double munmap.
func (c *CSRMmap) Close() error {
	c.closeOnce.Do(func() {
		err := munmapFile(c.data)
		c.data = nil
		if cerr := c.f.Close(); err == nil {
			err = cerr
		}
		c.closeErr = err
	})
	return c.closeErr
}

// N implements Source.
func (c *CSRMmap) N() int { return int(c.h.N) }

// M implements EdgeCounter; the edge count is in the header.
func (c *CSRMmap) M() int { return int(c.h.Entries / 2) }

// Sorted reports whether the file's adjacency lists are sorted (the
// writer's flag); sorted files answer Adjacency probes in O(log deg)
// loads instead of O(deg).
func (c *CSRMmap) Sorted() bool { return c.h.Sorted }

// PageTouches implements LocalityReporter: probes that landed on a
// different page than the probe before them.
func (c *CSRMmap) PageTouches() uint64 { return c.pageTouches.Load() }

// LocalHits implements LocalityReporter: probes that stayed on the page
// the previous probe touched.
func (c *CSRMmap) LocalHits() uint64 { return c.localHits.Load() }

// touch records the locality of one load at byte offset pos. One Swap
// keeps the counter pair allocation-free and race-safe; under concurrency
// the same-page attribution is approximate, which is all a locality
// signal needs to be.
func (c *CSRMmap) touch(pos int64) {
	page := pos >> csrPageShift
	if c.lastPage.Swap(page) == page {
		c.localHits.Add(1)
	} else {
		c.pageTouches.Add(1)
	}
}

// run returns the adjacency cell range [lo, hi) of v, or ok=false on a
// corrupt offset pair (probe answers degrade to "no neighbor" rather than
// panicking mid-query, matching the cold reader).
func (c *CSRMmap) run(v int) (lo, hi int64, ok bool) {
	if v < 0 || int64(v) >= c.h.N {
		return 0, 0, false
	}
	pos := c.h.OffsetPos(int64(v))
	c.touch(pos)
	lo = int64(binary.LittleEndian.Uint64(c.data[pos:]))
	hi = int64(binary.LittleEndian.Uint64(c.data[pos+8:]))
	if lo < 0 || lo > hi || hi > c.h.Entries {
		return 0, 0, false
	}
	return lo, hi, true
}

// cell returns adjacency cell i.
func (c *CSRMmap) cell(i int64) int {
	pos := c.h.NeighborPos(i)
	c.touch(pos)
	return int(binary.LittleEndian.Uint32(c.data[pos:]))
}

// Degree implements Source.
func (c *CSRMmap) Degree(v int) int {
	lo, hi, ok := c.run(v)
	if !ok {
		return 0
	}
	return int(hi - lo)
}

// Neighbor implements Source.
func (c *CSRMmap) Neighbor(v, i int) int {
	lo, hi, ok := c.run(v)
	if !ok || i < 0 || int64(i) >= hi-lo {
		return -1
	}
	return c.cell(lo + int64(i))
}

// Adjacency implements Source: binary search on sorted files, linear scan
// otherwise.
func (c *CSRMmap) Adjacency(u, v int) int {
	lo, hi, ok := c.run(u)
	if !ok {
		return -1
	}
	if c.h.Sorted {
		origLo, origHi := lo, hi
		for lo < hi {
			mid := (lo + hi) / 2
			if w := c.cell(mid); w < v {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo < origHi && c.cell(lo) == v {
			return int(lo - origLo)
		}
		return -1
	}
	for i := lo; i < hi; i++ {
		if c.cell(i) == v {
			return int(i - lo)
		}
	}
	return -1
}
