package source

// The source side of the trust plane (internal/attest): Attestor is the
// optional capability of carrying a Merkle commitment over the graph's
// adjacency rows and proving individual rows against it; NewAttested
// equips any Source with it by streaming the rows through the tree
// builder once at construction. Shards advertise the commitment in
// /probe/meta and answer attest=1 probes with row proofs (wire.go);
// clients pin the root (remote:URL#root=HEX / WithCommitment) and verify
// every answer, turning a lying replica into ErrAttestation the fleet
// layer routes around.

import (
	"fmt"

	"lca/internal/attest"
	"lca/internal/rnd"
)

// Attestor is the optional capability of committing to the graph: a
// constant-size Merkle root plus per-row inclusion proofs. Implemented
// by NewAttested wrappers (and forwarded by sources that front one).
type Attestor interface {
	// Commitment returns the Merkle root over the canonical adjacency-row
	// encodings.
	Commitment() attest.Root
	// ProveRow returns vertex v's committed row and its inclusion proof;
	// (nil, nil) outside [0,n).
	ProveRow(v int) (row []int, proof []string)
}

// AttestCounter is the optional capability of reporting attestation
// accounting: how many probe answers failed proof verification (each one
// a detected Byzantine answer that was discarded and re-routed) and how
// many proof bytes were transported. Remote counts its own probes;
// Sharded sums its replicas' failures plus its own distrust decisions.
type AttestCounter interface {
	AttestFailures() uint64
	ProofBytes() uint64
}

// Attested equips a Source with the Attestor capability by committing to
// every adjacency row at construction. Probes delegate unchanged; the
// underlying source's optional capabilities are forwarded through the
// dynamic view. Building is O(n + m) hashing — do it once per served
// graph, not per request.
type Attested struct {
	src  Source
	tree *attest.Tree
}

// NewAttested streams src's adjacency rows (via its row fetcher when it
// has one, per-cell probes otherwise) into a Merkle commitment and
// returns the attesting wrapper.
func NewAttested(src Source) *Attested {
	n := src.N()
	rowOf := func(v int) []int {
		d := src.Degree(v)
		row := make([]int, d)
		for i := 0; i < d; i++ {
			row[i] = src.Neighbor(v, i)
		}
		return row
	}
	if rf, ok := RowFetcherOf(src); ok {
		rowOf = func(v int) []int {
			rows, err := rf.FetchRows([]int{v})
			if err != nil || len(rows) != 1 {
				panic(&ProbeError{Op: "attest", A: v, Err: fmt.Errorf("attest: committing row %d: %v", v, err)})
			}
			return rows[0]
		}
	}
	return &Attested{src: src, tree: attest.Build(n, rowOf)}
}

// N implements Source.
func (a *Attested) N() int { return a.src.N() }

// Degree implements Source.
func (a *Attested) Degree(v int) int { return a.src.Degree(v) }

// Neighbor implements Source.
func (a *Attested) Neighbor(v, i int) int { return a.src.Neighbor(v, i) }

// Adjacency implements Source.
func (a *Attested) Adjacency(u, v int) int { return a.src.Adjacency(u, v) }

// Commitment implements Attestor.
func (a *Attested) Commitment() attest.Root { return a.tree.Root() }

// ProveRow implements Attestor. The row comes from the tree's committed
// view — by construction identical to what probes answer.
func (a *Attested) ProveRow(v int) ([]int, []string) {
	if v < 0 || v >= a.src.N() {
		return nil, nil
	}
	d := a.src.Degree(v)
	row := make([]int, d)
	for i := 0; i < d; i++ {
		row[i] = a.src.Neighbor(v, i)
	}
	return row, a.tree.Prove(v)
}

// Caps forwards the underlying source's dynamic capabilities and adds
// the Attestor view, so wrapping never costs a capability.
func (a *Attested) Caps() Caps {
	c := capsOf(a.src)
	c.Attest = func() Attestor { return a }
	return c
}

// Close forwards to the underlying source when it holds resources.
func (a *Attested) Close() error {
	if c, ok := a.src.(Closer); ok {
		return c.Close()
	}
	return nil
}

// capsOf lifts any source's optional capabilities (static or dynamic)
// into one Caps value, the generic way for wrappers to forward them.
func capsOf(src Source) Caps {
	var c Caps
	if ec, ok := EdgeCounterOf(src); ok {
		c.M = ec.M
	}
	if db, ok := DegreeBounderOf(src); ok {
		c.MaxDegree = db.MaxDegree
	}
	if re, ok := RandomEdgerOf(src); ok {
		c.RandomEdge = func(prg *rnd.PRG) (int, int) { return re.RandomEdge(prg) }
	}
	if rf, ok := RowFetcherOf(src); ok {
		c.FetchRows = rf.FetchRows
	}
	if _, ok := HealthOf(src); ok {
		c.Health = func() []ShardHealth { h, _ := HealthOf(src); return h }
	}
	if at, ok := AttestorOf(src); ok {
		c.Attest = func() Attestor { return at }
	}
	return c
}
