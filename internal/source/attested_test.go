package source

// Unit tests of the trust plane's client side: pinned remotes verifying
// row proofs, the typed ErrAttestation surface, fleet distrust and
// cache hygiene under a lying replica, and the cross-replica spot-check
// auditor. The end-to-end Byzantine contract lives in
// TestConformanceFaults (fault_test.go); these pin the layer-by-layer
// mechanics.

import (
	"errors"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// pinnedRemote opens a Remote over ts pinned to root, with retries off so
// every failure surfaces immediately.
func pinnedRemote(t testing.TB, ts *httptest.Server, root string) Source {
	t.Helper()
	src, err := Parse("remote:"+ts.URL+"#root="+root, 7)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if c, ok := src.(Closer); ok {
			_ = c.Close()
		}
	})
	return src
}

func TestAttestedCommitmentDeterministic(t *testing.T) {
	a, b := NewAttested(Ring(40)), NewAttested(Ring(40))
	if a.Commitment() != b.Commitment() {
		t.Fatal("equal graphs committed to different roots")
	}
	if c := NewAttested(Ring(41)); c.Commitment() == a.Commitment() {
		t.Fatal("different graphs committed to the same root")
	}
	if row, proof := a.ProveRow(-1); row != nil || proof != nil {
		t.Fatal("ProveRow out of range answered a proof")
	}
}

// TestRemotePinnedVerifies: a pinned remote over an honest attested
// shard answers exactly the source's answers, counts transported proof
// bytes and no failures — scalar, batch and rowfull paths alike.
func TestRemotePinnedVerifies(t *testing.T) {
	att := NewAttested(Ring(40))
	ts := newShard(t, att)
	src := pinnedRemote(t, ts, att.Commitment().String())

	for v := 0; v < 10; v++ {
		if got, want := src.Degree(v), att.Degree(v); got != want {
			t.Fatalf("Degree(%d) = %d, want %d", v, got, want)
		}
		if got, want := src.Neighbor(v, 0), att.Neighbor(v, 0); got != want {
			t.Fatalf("Neighbor(%d,0) = %d, want %d", v, got, want)
		}
		if got, want := src.Adjacency(v, (v+1)%40), att.Adjacency(v, (v+1)%40); got != want {
			t.Fatalf("Adjacency(%d,%d) = %d, want %d", v, (v+1)%40, got, want)
		}
	}
	bp := src.(BatchProber)
	got, err := bp.ProbeBatch([]ProbeReq{{Op: OpDegree, A: 3}, {Op: OpNeighbor, A: 3, B: 1}, {Op: OpAdjacency, A: 3, B: 5}})
	if err != nil {
		t.Fatalf("batch over an honest attested shard: %v", err)
	}
	if got[0] != 2 || got[1] != att.Neighbor(3, 1) {
		t.Fatalf("batch answers %v diverge from the source", got)
	}
	if rf, ok := RowFetcherOf(src); ok {
		rows, err := rf.FetchRows([]int{4, 5})
		if err != nil {
			t.Fatalf("rowfull over an honest attested shard: %v", err)
		}
		if len(rows) != 2 || len(rows[0]) != 2 {
			t.Fatalf("rowfull answered %v", rows)
		}
	}
	ac := src.(AttestCounter)
	if ac.AttestFailures() != 0 {
		t.Fatalf("honest shard produced %d attestation failures", ac.AttestFailures())
	}
	if ac.ProofBytes() == 0 {
		t.Fatal("verified probes transported no proof bytes")
	}
}

// TestRemotePinnedDetectsLie: honest proofs over lying answers must
// become a typed ErrAttestation — temporary (failover-eligible) and
// counted — on the scalar, batch and rowfull paths.
func TestRemotePinnedDetectsLie(t *testing.T) {
	liar := &liarBacking{att: NewAttested(Ring(40))}
	liar.lying.Store(true)
	ts := newShard(t, liar)
	src := pinnedRemote(t, ts, liar.att.Commitment().String())

	pe := mustProbeError(t, func() { src.Neighbor(3, 0) })
	if !errors.Is(pe, ErrAttestation) {
		t.Fatalf("scalar lie surfaced as %v, want ErrAttestation", pe)
	}
	if !pe.Temporary() {
		t.Fatal("ErrAttestation must be temporary: the fleet layer re-routes it")
	}
	if _, err := src.(BatchProber).ProbeBatch([]ProbeReq{{Op: OpNeighbor, A: 3, B: 0}}); !errors.Is(err, ErrAttestation) {
		t.Fatalf("batch lie surfaced as %v, want ErrAttestation", err)
	}
	if rf, ok := RowFetcherOf(src); ok {
		if _, err := rf.FetchRows([]int{3}); !errors.Is(err, ErrAttestation) {
			t.Fatalf("rowfull lie surfaced as %v, want ErrAttestation", err)
		}
	}
	if src.(AttestCounter).AttestFailures() == 0 {
		t.Fatal("detected lies were not counted")
	}
	// Degrees stay honest on this liar, and degree answers are covered by
	// the same proof row: they must still verify.
	if got := src.Degree(3); got != 2 {
		t.Fatalf("honest degree rejected: Degree(3) = %d", got)
	}
}

// TestRemoteRootFragment pins the #root= spec grammar: a pin that
// contradicts the shard's advertised commitment is rejected at open time
// — before a single probe is trusted — and a malformed pin is a parse
// error.
func TestRemoteRootFragment(t *testing.T) {
	att := NewAttested(Ring(40))
	ts := newShard(t, att)
	wrong := NewAttested(Ring(41)).Commitment().String()
	if _, err := Parse("remote:"+ts.URL+"#root="+wrong, 7); err == nil {
		t.Fatal("opening a shard under a contradicting pin succeeded")
	} else if !strings.Contains(err.Error(), "pinned") {
		t.Fatalf("wrong-pin error %q does not name the pin", err)
	}
	for _, spec := range []string{
		"remote:" + ts.URL + "#root=nothex",
		"remote:" + ts.URL + "#root=abcd", // too short
		"remote:" + ts.URL + "#frag=1",
	} {
		if _, err := Parse(spec, 7); err == nil {
			t.Errorf("Parse(%q) unexpectedly succeeded", spec)
		}
	}
}

// TestShardedSpotCheck: the cross-replica auditor flags a divergent
// replica on a healthy-looking fleet and stays silent on an honest one.
// Unpinned remotes — the spot check is the deployable detection story
// when no commitment exists.
func TestShardedSpotCheck(t *testing.T) {
	honest := openRemoteShard(t, Ring(40))
	liar := &liarBacking{att: NewAttested(Ring(40))}
	liar.lying.Store(true)
	lts := newShard(t, liar)
	lying, err := OpenRemote(lts.URL, WithRetries(0))
	if err != nil {
		t.Fatal(err)
	}
	fleet, err := NewSharded([]Source{honest, lying})
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.(Closer).Close()
	sh := fleet.(*Sharded)
	found := sh.SpotCheck(16, 2019)
	if len(found) == 0 {
		t.Fatal("spot check over a lying replica found no disagreements")
	}
	for _, d := range found {
		if d.Replica != 1 {
			t.Fatalf("disagreement blames replica %d, want the liar (1): %+v", d.Replica, d)
		}
		if d.V < 0 || d.V >= 40 {
			t.Fatalf("disagreement names vertex %d outside the graph", d.V)
		}
	}

	h2 := openRemoteShard(t, Ring(40))
	h3 := openRemoteShard(t, Ring(40))
	clean, err := NewSharded([]Source{h2, h3})
	if err != nil {
		t.Fatal(err)
	}
	defer clean.(Closer).Close()
	if got := clean.(*Sharded).SpotCheck(16, 2019); len(got) != 0 {
		t.Fatalf("spot check over an honest fleet reported %v", got)
	}
}

// TestShardedBatchByzantineCacheHygiene is the batch partial-failure
// regression: a batch whose groups span an honest replica and a liar
// must answer every probe correctly, and no cell the lying group touched
// may reach the probe LRU — later cached reads must serve the truth.
func TestShardedBatchByzantineCacheHygiene(t *testing.T) {
	root := NewAttested(Ring(40)).Commitment()
	liar := &liarBacking{att: NewAttested(Ring(40))}
	honest := NewAttested(Ring(40))
	shards := make([]Source, 2)
	for i, backing := range []Source{honest, liar} {
		ts := httptest.NewServer(NewProbeHandler(backing))
		t.Cleanup(ts.Close)
		r, err := OpenRemote(ts.URL, WithRetries(0), WithRetryBackoff(time.Millisecond), WithCommitment(root))
		if err != nil {
			t.Fatal(err)
		}
		shards[i] = r
	}
	fleet, err := NewSharded(shards, WithProbeCache(1024), WithFailureThreshold(2))
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.(Closer).Close()
	sh := fleet.(*Sharded)

	// Collect the truth, then start lying and probe everything in one
	// batch: the groups sent to the liar fail attestation, re-route, and
	// the answers must come back correct anyway.
	var probes []ProbeReq
	var want []int
	for v := 0; v < 40; v++ {
		probes = append(probes, ProbeReq{Op: OpNeighbor, A: v, B: 0}, ProbeReq{Op: OpNeighbor, A: v, B: 1})
		want = append(want, honest.Neighbor(v, 0), honest.Neighbor(v, 1))
	}
	liar.lying.Store(true)
	got, err := sh.ProbeBatch(probes)
	if err != nil {
		t.Fatalf("batch spanning a lying replica: %v", err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("batch probe %d (%+v) answered %d, want %d", i, probes[i], got[i], want[i])
		}
	}
	if sh.AttestFailures() == 0 {
		t.Fatal("the lying group was re-routed but AttestFailures() == 0")
	}
	// The liar is out; every cell the batch touched now reads from the
	// LRU or the honest replica — either way, the truth.
	liar.lying.Store(false) // even an honest-again liar stays distrusted
	for v := 0; v < 40; v++ {
		if got := sh.Neighbor(v, 0); got != honest.Neighbor(v, 0) {
			t.Fatalf("post-batch Neighbor(%d,0) = %d: a lying cell reached the cache", v, got)
		}
	}
	if health, ok := HealthOf(sh); !ok || health[1].State != ShardDistrusted {
		t.Fatalf("lying replica reports %+v, want %q", health[1], ShardDistrusted)
	}
}
