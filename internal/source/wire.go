package source

// The probe wire protocol: how one process answers another's adjacency
// probes, so any lcaserve instance (or anything mounting these handlers)
// can act as a network shard for a Remote or Sharded source.
//
//	GET  /probe?op=degree|neighbor|adjacency&a=A[&b=B][&source=NAME]
//	GET  /probe?op=randomedge&seed=S[&source=NAME]
//	GET  /probe?op=rowfull&a=A[&source=NAME]
//	POST /probe[?source=NAME]      {"probes":[{"op":"neighbor","a":5,"b":2},...]}
//	GET  /probe/meta[?source=NAME] {"n":N[,"m":M][,"max_degree":D][,"random_edge":true][,"row_full":true]}
//
// Answers keep the Source interface's conventions exactly (-1 for
// out-of-range neighbor indices and non-edges), so remote probing is
// transparent: an LCA cannot tell a network shard from a local backend,
// and probe counts are identical. /probe/meta is O(1) by construction —
// the optional m, max_degree and random_edge fields appear only when the
// backing source has the EdgeCounter / DegreeBounder / RandomEdger
// capability, never from O(n) probing. Errors use the same JSON envelope
// as internal/serve: {"error": ..., "status": ...}.
//
// op=randomedge samples a uniform edge in canonical (u < v) orientation,
// answering {"u":U,"v":V}. It is seeded: the shard derives a fresh PRG
// from the client-supplied seed, so equal seeds answer equal edges on
// every replica — the property that lets a Remote expose the RandomEdger
// capability deterministically. It is GET-only: batch answers are flat
// int slices, and a two-valued op has no slot there.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"lca/internal/rnd"
	"lca/internal/trace"
)

// Wire names of the probe operations.
const (
	OpDegree    = "degree"
	OpNeighbor  = "neighbor"
	OpAdjacency = "adjacency"
	// OpRandomEdge is the seeded random-edge extension (GET-only; not
	// batchable).
	OpRandomEdge = "randomedge"
	// OpRowFull answers a vertex's degree and its full neighbor row in one
	// probe (answer = the degree, row = the neighbors in list order) — the
	// op that erases the prefetcher's remainder round trip. Batchable;
	// capability-gated by the row_full meta flag.
	OpRowFull = "rowfull"
)

// MaxProbeBatch caps the probe count of one POST /probe request; larger
// batches are a 400, never an unbounded allocation.
const MaxProbeBatch = 1 << 16

// maxProbeBody bounds the batch request body (MaxProbeBatch probes at a
// generous ~64 bytes of JSON each).
const maxProbeBody = MaxProbeBatch * 64

// ProbeReq is one probe on the wire. A holds the probed vertex (Degree,
// Neighbor) or the list owner u (Adjacency); B holds the neighbor index
// (Neighbor) or the sought vertex v (Adjacency) and is ignored for Degree.
type ProbeReq struct {
	Op string `json:"op"`
	A  int    `json:"a"`
	B  int    `json:"b,omitempty"`
}

// BatchProber is the optional capability of answering many probes in one
// round trip — Remote sends one POST instead of len(probes) GETs, and
// Sharded fans a batch out to its shards concurrently.
type BatchProber interface {
	ProbeBatch(probes []ProbeReq) ([]int, error)
}

// The answer bodies optionally carry the shard's server-side spans back
// to a traced client (the X-LCA-Trace contract, docs/WIRE.md): Trace is
// present exactly when the request carried a well-formed trace header.
// Span ids in it are the shard's own; the client renumbers and grafts
// them under its rpc span (trace.Tracer.Merge).
type probeAnswer struct {
	Answer int `json:"answer"`
	// Row carries the full neighbor row on op=rowfull (Answer is its
	// length, the degree) — and, under attest=1, the committed row of the
	// probed vertex on every op, so the client can check the scalar
	// answer against the verified row.
	Row []int `json:"row,omitempty"`
	// Proof is the Merkle inclusion proof of Row against the shard's
	// advertised commitment; present exactly when the request carried
	// attest=1 and the probed vertex is in range.
	Proof []string     `json:"proof,omitempty"`
	Trace []trace.Span `json:"trace,omitempty"`
}

// randomEdgeAnswer is the op=randomedge body: one uniform edge in
// canonical (u < v) orientation.
type randomEdgeAnswer struct {
	U     int          `json:"u"`
	V     int          `json:"v"`
	Trace []trace.Span `json:"trace,omitempty"`
}

type probeBatchReq struct {
	Probes []ProbeReq `json:"probes"`
}

type probeBatchAnswer struct {
	Answers []int `json:"answers"`
	// Rows is index-aligned with the request when it carried any rowfull
	// probes: the full neighbor row per rowfull probe (its answers entry
	// is the degree), null for other ops. Absent on row-free batches.
	// Under attest=1 every in-range probe's entry is filled with the
	// committed row of its probed vertex.
	Rows [][]int `json:"rows,omitempty"`
	// Proofs is index-aligned with the request under attest=1: each
	// entry is the Merkle inclusion proof of the matching Rows entry
	// (null for out-of-range adjacency probes, whose answer is -1 by
	// protocol). Absent without attest=1.
	Proofs [][]string   `json:"proofs,omitempty"`
	Trace  []trace.Span `json:"trace,omitempty"`
}

func (a *probeAnswer) traceSpans() []trace.Span      { return a.Trace }
func (a *randomEdgeAnswer) traceSpans() []trace.Span { return a.Trace }
func (a *probeBatchAnswer) traceSpans() []trace.Span { return a.Trace }

// shardMaxSpans caps the spans one probe request records server-side —
// enough for a batch span plus nested upstream rpc spans on a multi-hop
// fleet, bounded so a traced batch cannot inflate the answer unboundedly.
const shardMaxSpans = 256

// shardTracer returns a tracer for one probe request when the client
// sent well-formed trace context in X-LCA-Trace, nil otherwise (the
// untraced fast path). Malformed headers are ignored, never an error —
// tracing is best-effort by contract.
func shardTracer(r *http.Request) *trace.Tracer {
	id, _, ok := trace.ParseHeader(r.Header.Get(trace.Header))
	if !ok {
		return nil
	}
	return trace.New(id, shardMaxSpans)
}

// probeMeta is the /probe/meta body: the O(1) facts a Remote needs at
// construction. M, MaxDegree and RandomEdge are present only when the
// shard's source has the corresponding capability; Shards carries the
// per-replica health of a sharded source (HealthReporter), so operators
// can watch a fleet's failover state through any shard that fronts it.
type probeMeta struct {
	N          int  `json:"n"`
	M          *int `json:"m,omitempty"`
	MaxDegree  *int `json:"max_degree,omitempty"`
	RandomEdge bool `json:"random_edge,omitempty"`
	RowFull    bool `json:"row_full,omitempty"`
	// Commitment is the hex Merkle root over the graph's adjacency rows,
	// present when the shard's source carries the Attestor capability:
	// the flag that tells clients they may pin the root and request
	// attest=1 row proofs.
	Commitment string        `json:"commitment,omitempty"`
	Shards     []ShardHealth `json:"shards,omitempty"`
}

// metaOf snapshots src's O(1) summary capabilities through the dynamic
// capability view (static interfaces as the fallback).
func metaOf(src Source) probeMeta {
	meta := probeMeta{N: src.N()}
	if mc, ok := EdgeCounterOf(src); ok {
		m := mc.M()
		meta.M = &m
	}
	if db, ok := DegreeBounderOf(src); ok {
		d := db.MaxDegree()
		meta.MaxDegree = &d
	}
	if _, ok := RandomEdgerOf(src); ok {
		meta.RandomEdge = true
	}
	if _, ok := RowFetcherOf(src); ok {
		meta.RowFull = true
	} else if _, ok := src.(RoundTripCounter); !ok {
		// A local source assembles a row from Degree/Neighbor reads for
		// free, so any shard fronting one serves rowfull; a network-backed
		// source advertises it only when its own upstream does, or the
		// "one answer, one trip" promise would silently cost a fan-out.
		meta.RowFull = true
	}
	if at, ok := AttestorOf(src); ok {
		meta.Commitment = at.Commitment().String()
	}
	if health, ok := HealthOf(src); ok {
		meta.Shards = health
	}
	return meta
}

// attestParam reports whether the request asked for row proofs, and
// resolves the source's Attestor when it did. A shard without the
// capability answers 400 — like rowfull, the client must only send
// attest=1 after seeing the commitment flag in /probe/meta.
func attestParam(r *http.Request, src Source) (Attestor, bool, int, string) {
	if r.URL.Query().Get("attest") != "1" {
		return nil, false, 0, ""
	}
	at, ok := AttestorOf(src)
	if !ok {
		return nil, false, http.StatusBadRequest,
			"source carries no commitment (no attest capability; check /probe/meta)"
	}
	return at, true, 0, ""
}

// wireError is the shared JSON error envelope ({"error","status"}), the
// same shape internal/serve uses, so shard and query endpoints fail alike.
type wireError struct {
	Error  string `json:"error"`
	Status int    `json:"status"`
}

func writeWireJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}

func writeWireErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeWireJSON(w, status, wireError{Error: fmt.Sprintf(format, args...), Status: status})
}

// answerProbeRecover is answerProbe behind a *ProbeError recover: when
// the probed source is itself network-backed (a shard fronting other
// shards) and its upstream dies, the handler must answer a 502 envelope,
// not crash the connection.
func answerProbeRecover(src Source, op string, a, b int) (ans, status int, msg string) {
	defer func() {
		if r := recover(); r != nil {
			pe, ok := r.(*ProbeError)
			if !ok {
				panic(r)
			}
			ans, status, msg = 0, http.StatusBadGateway, pe.Error()
		}
	}()
	return answerProbe(src, op, a, b)
}

// validateProbe applies the wire protocol's checks without probing:
// unknown ops and out-of-range probed vertices are the client's fault.
// Adjacency endpoints need no validation — out of range means "not an
// edge", answered -1.
func validateProbe(src Source, p ProbeReq) (status int, msg string) {
	switch p.Op {
	case OpDegree, OpNeighbor, OpRowFull:
		if n := src.N(); p.A < 0 || p.A >= n {
			return http.StatusBadRequest, fmt.Sprintf("probe %s: vertex %d out of range [0,%d)", p.Op, p.A, n)
		}
	case OpAdjacency:
	case OpRandomEdge:
		// Answers are (u,v) pairs; batch answers are flat int slices.
		return http.StatusBadRequest, fmt.Sprintf("probe op %q is not batchable (use GET /probe?op=%s&seed=...)", OpRandomEdge, OpRandomEdge)
	default:
		return http.StatusBadRequest, fmt.Sprintf("unknown probe op %q (want %s, %s, %s or %s)", p.Op, OpDegree, OpNeighbor, OpAdjacency, OpRowFull)
	}
	return 0, ""
}

// answerProbe answers one wire probe against src. A non-zero status marks
// a protocol error; Adjacency with either endpoint out of range answers
// -1 — "not an edge" is the honest model answer and keeps clients from
// having to pre-validate.
func answerProbe(src Source, op string, a, b int) (ans, status int, msg string) {
	if status, msg := validateProbe(src, ProbeReq{Op: op, A: a, B: b}); status != 0 {
		return 0, status, msg
	}
	switch op {
	case OpDegree:
		return src.Degree(a), 0, ""
	case OpNeighbor:
		return src.Neighbor(a, b), 0, ""
	}
	if n := src.N(); a < 0 || a >= n || b < 0 || b >= n {
		return -1, 0, ""
	}
	return src.Adjacency(a, b), 0, ""
}

// ServeProbeMeta answers GET /probe/meta for src. Callers that serve
// several named sources resolve ?source= themselves and pass the winner.
func ServeProbeMeta(w http.ResponseWriter, r *http.Request, src Source) {
	writeWireJSON(w, http.StatusOK, metaOf(src))
}

// ServeProbe answers one GET /probe request for src. A request carrying
// trace context records a shard:<op> span (nested upstream spans
// included when src is itself network-backed) and returns the spans in
// the answer.
func ServeProbe(w http.ResponseWriter, r *http.Request, src Source) {
	q := r.URL.Query()
	op := q.Get("op")
	tr := shardTracer(r)
	if op == OpRandomEdge {
		// randomedge is unattested: its answer is a sample, not a row fact;
		// clients verify it post-hoc via an attested adjacency probe.
		serveRandomEdge(w, q.Get("seed"), src, tr)
		return
	}
	at, attested, status, msg := attestParam(r, src)
	if status != 0 {
		writeWireErr(w, status, "%s", msg)
		return
	}
	a, err := wireInt(q.Get("a"), "a")
	if err != nil {
		writeWireErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	b := 0
	if raw := q.Get("b"); raw != "" {
		if b, err = wireInt(raw, "b"); err != nil {
			writeWireErr(w, http.StatusBadRequest, "%v", err)
			return
		}
	} else if op == OpNeighbor || op == OpAdjacency {
		// A forgotten index must not silently read as "the 0th neighbor".
		writeWireErr(w, http.StatusBadRequest, "probe %s requires parameter \"b\"", op)
		return
	}
	if op == OpRowFull {
		serveRowFull(w, src, a, at, tr)
		return
	}
	view := src
	var h trace.Handle
	if tr != nil {
		h = tr.Start(shardSpanOp(op), a)
		tr.Push(h)
		view = TracedView(src, tr)
	}
	ans, status, msg := answerProbeRecover(view, op, a, b)
	if tr != nil {
		tr.Pop()
		tr.End(h)
	}
	if status != 0 {
		writeWireErr(w, status, "%s", msg)
		return
	}
	body := probeAnswer{Answer: ans, Trace: tr.Spans()}
	if attested && a >= 0 && a < src.N() {
		// The committed row of the probed vertex plus its proof: the
		// client verifies the row against its pinned root and checks the
		// scalar answer against the verified row.
		body.Row, body.Proof = at.ProveRow(a)
	}
	writeWireJSON(w, http.StatusOK, body)
}

// ServeProbeBatch answers one POST /probe request for src: the answers
// slice is index-aligned with the request's probes.
func ServeProbeBatch(w http.ResponseWriter, r *http.Request, src Source) {
	var req probeBatchReq
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxProbeBody))
	if err := dec.Decode(&req); err != nil {
		writeWireErr(w, http.StatusBadRequest, "malformed probe batch: %v", err)
		return
	}
	if len(req.Probes) > MaxProbeBatch {
		writeWireErr(w, http.StatusBadRequest, "probe batch of %d exceeds the maximum %d", len(req.Probes), MaxProbeBatch)
		return
	}
	at, attested, status, msg := attestParam(r, src)
	if status != 0 {
		writeWireErr(w, status, "%s", msg)
		return
	}
	for i, p := range req.Probes {
		if status, msg := validateProbe(src, p); status != 0 {
			writeWireErr(w, status, "probe %d: %s", i, msg)
			return
		}
	}
	tr := shardTracer(r)
	view := src
	var h trace.Handle
	if tr != nil {
		h = tr.Start("shard:batch", -1)
		tr.Tag(h, fmt.Sprintf("batch=%d", len(req.Probes)))
		tr.Push(h)
		view = TracedView(src, tr)
	}
	answers, rows, status, msg := answerBatch(view, req.Probes)
	if tr != nil {
		tr.Pop()
		tr.End(h)
	}
	if status != 0 {
		writeWireErr(w, status, "%s", msg)
		return
	}
	body := probeBatchAnswer{Answers: answers, Rows: rows, Trace: tr.Spans()}
	if attested {
		// Attach each in-range probe's committed row and proof. rowfull
		// entries keep the row the fetch path served (a corrupted fetch
		// must stay visible to the verifier), gaining only the proof.
		if body.Rows == nil {
			body.Rows = make([][]int, len(req.Probes))
		}
		body.Proofs = make([][]string, len(req.Probes))
		n := src.N()
		for i, p := range req.Probes {
			if p.A < 0 || p.A >= n {
				continue // out-of-range adjacency: answer is -1 by protocol, nothing to prove
			}
			row, proof := at.ProveRow(p.A)
			if body.Rows[i] == nil {
				body.Rows[i] = row
			}
			body.Proofs[i] = proof
		}
	}
	writeWireJSON(w, http.StatusOK, body)
}

// answerBatch answers a validated probe batch against src. rowfull probes
// are split out and served through the row path (RowFetcher when src has
// it, free local assembly otherwise); the rest is forwarded whole when a
// network-backed source (a shard fronting other shards) can answer it in
// its own single round trip instead of one upstream request per probe.
// rows is index-aligned with probes when any probe was rowfull, nil
// otherwise.
func answerBatch(src Source, probes []ProbeReq) (answers []int, rows [][]int, status int, msg string) {
	var rowIdx, restIdx []int
	for i, p := range probes {
		if p.Op == OpRowFull {
			rowIdx = append(rowIdx, i)
		} else {
			restIdx = append(restIdx, i)
		}
	}
	rest := probes
	if len(rowIdx) > 0 {
		answers = make([]int, len(probes))
		rows = make([][]int, len(probes))
		vs := make([]int, len(rowIdx))
		for j, i := range rowIdx {
			vs[j] = probes[i].A
		}
		got, status, msg := fetchRowsFrom(src, vs)
		if status != 0 {
			return nil, nil, status, msg
		}
		for j, i := range rowIdx {
			rows[i] = got[j]
			answers[i] = len(got[j])
		}
		if len(restIdx) == 0 {
			return answers, rows, 0, ""
		}
		rest = make([]ProbeReq, len(restIdx))
		for j, i := range restIdx {
			rest[j] = probes[i]
		}
	}
	var got []int
	if bp, ok := src.(BatchProber); ok {
		var err error
		got, err = bp.ProbeBatch(rest)
		if err != nil {
			return nil, nil, http.StatusBadGateway, err.Error()
		}
	} else {
		got = make([]int, len(rest))
		for j, p := range rest {
			ans, status, msg := answerProbeRecover(src, p.Op, p.A, p.B)
			if status != 0 {
				return nil, nil, status, fmt.Sprintf("probe %d: %s", restIdx[j], msg)
			}
			got[j] = ans
		}
	}
	if len(rowIdx) == 0 {
		return got, nil, 0, ""
	}
	for j, i := range restIdx {
		answers[i] = got[j]
	}
	return answers, rows, 0, ""
}

// serveRowFull answers GET /probe?op=rowfull&a=V: the degree plus the
// full neighbor row in one answer — plus the row's inclusion proof when
// at is non-nil (attest=1). The served row stays the fetch path's own,
// so a corrupted fetch remains visible to the verifier.
func serveRowFull(w http.ResponseWriter, src Source, a int, at Attestor, tr *trace.Tracer) {
	if status, msg := validateProbe(src, ProbeReq{Op: OpRowFull, A: a}); status != 0 {
		writeWireErr(w, status, "%s", msg)
		return
	}
	view := src
	var h trace.Handle
	if tr != nil {
		h = tr.Start(shardSpanOp(OpRowFull), a)
		tr.Push(h)
		view = TracedView(src, tr)
	}
	rows, status, msg := fetchRowsFrom(view, []int{a})
	if tr != nil {
		tr.Pop()
		tr.End(h)
	}
	if status != 0 {
		writeWireErr(w, status, "%s", msg)
		return
	}
	row := rows[0]
	body := probeAnswer{Answer: len(row), Row: row, Trace: tr.Spans()}
	if at != nil {
		_, body.Proof = at.ProveRow(a)
	}
	writeWireJSON(w, http.StatusOK, body)
}

// fetchRowsFrom answers rowfull probes against src: the RowFetcher
// capability when present, scalar Degree/Neighbor assembly otherwise
// (free reads on a local backend). Upstream failures (*ProbeError, from
// either path) answer the 502 envelope, matching answerProbeRecover.
func fetchRowsFrom(src Source, vs []int) (rows [][]int, status int, msg string) {
	defer func() {
		if r := recover(); r != nil {
			pe, ok := r.(*ProbeError)
			if !ok {
				panic(r)
			}
			rows, status, msg = nil, http.StatusBadGateway, pe.Error()
		}
	}()
	if rf, ok := RowFetcherOf(src); ok {
		got, err := rf.FetchRows(vs)
		if err != nil {
			return nil, http.StatusBadGateway, err.Error()
		}
		return got, 0, ""
	}
	rows = make([][]int, len(vs))
	for i, v := range vs {
		row := make([]int, src.Degree(v))
		for j := range row {
			row[j] = src.Neighbor(v, j)
		}
		rows[i] = row
	}
	return rows, 0, ""
}

// serveRandomEdge answers op=randomedge: a uniform edge drawn from a PRG
// derived from the client's seed, so equal seeds answer equally on every
// replica of the graph. Refused (400) when the backing source lacks the
// RandomEdger capability or provably has no edges; a sampler panic on an
// effectively edgeless source (string payload by the RandomEdge
// convention) is also the client's 400, not a crashed connection.
func serveRandomEdge(w http.ResponseWriter, rawSeed string, src Source, tr *trace.Tracer) {
	view := src
	if tr != nil {
		view = TracedView(src, tr)
	}
	re, ok := RandomEdgerOf(view)
	if !ok {
		writeWireErr(w, http.StatusBadRequest, "source does not support probe op %q (no RandomEdge capability)", OpRandomEdge)
		return
	}
	if rawSeed == "" {
		writeWireErr(w, http.StatusBadRequest, "probe %s requires parameter \"seed\"", OpRandomEdge)
		return
	}
	seed, err := strconv.ParseUint(rawSeed, 10, 64)
	if err != nil {
		writeWireErr(w, http.StatusBadRequest, "probe parameter \"seed\": %q is not an unsigned integer", rawSeed)
		return
	}
	if mc, ok := EdgeCounterOf(src); ok && mc.M() == 0 {
		writeWireErr(w, http.StatusBadRequest, "probe %s: source has no edges", OpRandomEdge)
		return
	}
	var h trace.Handle
	if tr != nil {
		h = tr.Start(shardSpanOp(OpRandomEdge), -1)
		tr.Push(h)
	}
	u, v, status, msg := sampleRandomEdge(re, seed)
	if tr != nil {
		tr.Pop()
		tr.End(h)
	}
	if status != 0 {
		writeWireErr(w, status, "%s", msg)
		return
	}
	writeWireJSON(w, http.StatusOK, randomEdgeAnswer{U: u, V: v, Trace: tr.Spans()})
}

// sampleRandomEdge draws the edge behind a recover: string panics mark
// edgeless sources (client fault), *ProbeError marks a dead upstream
// (502); anything else is a genuine defect and propagates.
func sampleRandomEdge(re RandomEdger, seed uint64) (u, v, status int, msg string) {
	defer func() {
		if r := recover(); r != nil {
			switch e := r.(type) {
			case string:
				u, v, status, msg = 0, 0, http.StatusBadRequest, fmt.Sprintf("probe %s: %s", OpRandomEdge, e)
			case *ProbeError:
				u, v, status, msg = 0, 0, http.StatusBadGateway, e.Error()
			default:
				panic(r)
			}
		}
	}()
	u, v = re.RandomEdge(rnd.NewPRG(rnd.Seed(seed)))
	if u > v {
		u, v = v, u
	}
	return u, v, 0, ""
}

func wireInt(raw, name string) (int, error) {
	if raw == "" {
		return 0, fmt.Errorf("missing probe parameter %q", name)
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("probe parameter %q: %q is not an integer", name, raw)
	}
	return v, nil
}

// NewProbeHandler returns a standalone shard handler over one fixed
// source: the minimal process shape that can back a Remote. lcaserve
// mounts the Serve* functions against its named-source table instead, so
// a full query server doubles as a shard.
func NewProbeHandler(src Source) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /probe/meta", func(w http.ResponseWriter, r *http.Request) {
		ServeProbeMeta(w, r, src)
	})
	mux.HandleFunc("GET /probe", func(w http.ResponseWriter, r *http.Request) {
		ServeProbe(w, r, src)
	})
	mux.HandleFunc("POST /probe", func(w http.ResponseWriter, r *http.Request) {
		ServeProbeBatch(w, r, src)
	})
	return mux
}
