package source

import (
	"os"
	"strings"
	"testing"
)

// fuzzSeedSpecs is the checked-in corpus (mirrored under
// testdata/fuzz/FuzzParse): every family, the alias and separator forms,
// and the malformed shapes past bugs hid in.
var fuzzSeedSpecs = []string{
	"ring:n=100",
	"cycle:n=1_000",
	"ring:n=1e6",
	"ring:n=5e9",
	"ring:",
	"ring",
	"grid:rows=3,cols=7",
	"grid:rows=1e5,cols=1e5",
	"grid:rows=3000000000,cols=3000000000",
	"torus:rows=4,cols=4",
	"torus:rows=0,cols=9",
	"circulant:n=50,d=6",
	"circulant:n=50,d=6,seed=9",
	"circulant:n=9,d=3",
	"blockrandom:n=500,d=4",
	"blockrandom:n=500,d=4,block=32",
	"blockrandom:n=500,d=NaN",
	"blockrandom:n=500,d=-3",
	"blockrandom:n=500,d=4,block=999999999",
	"edgelist:/nonexistent/g.txt",
	"csr:/nonexistent/g.csr",
	"csr:/nonexistent/g.csr?mmap=1",
	"csr:/nonexistent/g.csr?mmap=0",
	"csr:/nonexistent/g.csr?bogus=1",
	"csr:/nonexistent/g.csr?mmap=1&mmap=0",
	"csr:/nonexistent/g.csr?mmap",
	"csr:/nonexistent/g.csr?mmap=yes",
	"csr:?mmap=1",
	"warp:n=10",
	"ring:n=10,n=20",
	"ring:n=10,z=1",
	"ring:n=,",
	"ring:n==5",
	"ring:seed=3",
	"sharded:ring:n=5,ring:n=5",
	"sharded:cache=64;grid:rows=2,cols=3;grid:rows=2,cols=3",
	"sharded:ring:n=5;ring:n=6",
	"sharded:",
	"sharded:cache=10",
	"sharded:sharded:ring:n=4,ring:n=4",
	"  ring:n=8  ",
	"::::",
	"=",
	"ring:n=+5",
	"ring:n=0x10",
}

// fuzzSafeSpec reports whether a generated spec is safe to open during
// fuzzing: no network dials (remote:) and no reads of pre-existing or
// special files (a generated "/dev/zero" must not be opened as an edge
// list). Nonexistent paths are fine — Parse fails fast on them.
func fuzzSafeSpec(spec string, depth int) bool {
	if depth > 4 {
		return false
	}
	s := strings.TrimSpace(spec)
	name, rest, ok := strings.Cut(s, ":")
	if !ok {
		name, rest = "edgelist", s
	}
	canon := name
	if a, isAlias := aliases[canon]; isAlias {
		canon = a
	}
	switch {
	case canon == "remote":
		return false
	case canon == "sharded":
		for _, item := range splitShardSpecs(rest) {
			item = strings.TrimSpace(item)
			if item == "" || strings.HasPrefix(item, "cache=") {
				continue
			}
			if !fuzzSafeSpec(item, depth+1) {
				return false
			}
		}
		return true
	case pathFamilies[canon]:
		st, err := os.Stat(rest)
		if err != nil {
			return true // nonexistent: Parse errors without reading anything
		}
		return st.Mode().IsRegular() && st.Size() < 1<<20
	}
	return true
}

// FuzzParse fuzzes the spec grammar: Parse must never panic, never hand
// back a source outside the supported vertex range, and every opened
// source must answer a probe round and close idempotently. Malformed
// specs must fail with an error that names the offending input.
func FuzzParse(f *testing.F) {
	for _, s := range fuzzSeedSpecs {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		if !fuzzSafeSpec(spec, 0) {
			t.Skip()
		}
		src, err := Parse(spec, 7)
		if err != nil {
			if err.Error() == "" {
				t.Fatalf("Parse(%q): empty error message", spec)
			}
			return
		}
		n := src.N()
		if n < 0 || n > MaxVertices {
			t.Fatalf("Parse(%q): n=%d outside [0,%d]", spec, n, MaxVertices)
		}
		if n > 0 {
			v := n / 2
			d := src.Degree(v)
			if d < 0 || d >= n {
				t.Fatalf("Parse(%q): Degree(%d)=%d outside [0,%d)", spec, v, d, n)
			}
			if w := src.Neighbor(v, d); w != -1 {
				t.Fatalf("Parse(%q): Neighbor(%d,deg)=%d, want -1", spec, v, w)
			}
			if d > 0 {
				w := src.Neighbor(v, 0)
				if w < 0 || w >= n {
					t.Fatalf("Parse(%q): Neighbor(%d,0)=%d out of range", spec, v, w)
				}
				if idx := src.Adjacency(v, w); idx != 0 {
					t.Fatalf("Parse(%q): Adjacency(%d,%d)=%d, want 0", spec, v, w, idx)
				}
			}
		}
		if c, ok := src.(Closer); ok {
			if err := c.Close(); err != nil {
				t.Fatalf("Parse(%q): Close: %v", spec, err)
			}
			if err := c.Close(); err != nil {
				t.Fatalf("Parse(%q): second Close: %v (not idempotent)", spec, err)
			}
		}
	})
}
