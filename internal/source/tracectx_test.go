package source

import (
	"testing"

	"lca/internal/trace"
)

// TestUntracedHotPathZeroAlloc pins the cost of the disabled tracing
// plane at exactly nothing: probing an implicit source through the
// instrumented hot path with a nil tracer — the off state every
// un-sampled query runs in — must not allocate. This is the allocation
// half of the "tracing off changes nothing" acceptance bar; the probe
// counts are covered by the conformance suite.
func TestUntracedHotPathZeroAlloc(t *testing.T) {
	const n = 1 << 16
	src := Ring(n)
	var tr *trace.Tracer // nil: tracing off
	sc := probeScope{}   // zero scope: unscoped, untraced
	sink := 0
	allocs := testing.AllocsPerRun(1000, func() {
		v := sink & (n - 1)
		sink += src.Degree(v)
		sink += src.Neighbor(v, v&1)
		sink += src.Adjacency(v, (v+1)&(n-1))
		// The per-site instrumentation pattern: one nil test, then
		// span calls that must no-op without touching the heap.
		h := tr.StartUnder(sc.parent, probeSpanOp(OpDegree), v)
		tr.End(h)
		if sc.tr != nil {
			sc.tr.Event("oracle:neighbors", v, "cache-hit")
		}
	})
	if sink == 0 {
		t.Fatal("probe loop optimized away")
	}
	if allocs != 0 {
		t.Fatalf("untraced implicit-source hot path allocates %.1f per probe round, want 0", allocs)
	}
}
