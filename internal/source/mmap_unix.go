//go:build unix

package source

// The mmap syscall surface on unix-likes: the CSR file is mapped shared
// and read-only, so probes become loads against the page cache with no
// per-probe syscall at all.

import "syscall"

// mmapSupported reports whether this platform can map files; the
// unsupported build returns false and OpenCSRMmap fails with
// ErrMmapUnsupported so spec parsing can fall back to the cold reader.
const mmapSupported = true

func mmapFile(fd uintptr, length int) ([]byte, error) {
	return syscall.Mmap(int(fd), 0, length, syscall.PROT_READ, syscall.MAP_SHARED)
}

func munmapFile(data []byte) error { return syscall.Munmap(data) }
