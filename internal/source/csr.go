package source

// Disk-backed CSR: probes a graph.WriteCSR file cold through positioned
// reads. Resident state is one file handle plus the 32-byte header —
// Degree is one 16-byte read, Neighbor two reads, Adjacency a binary
// search over the (sorted) neighbor run — so graphs bounded only by disk
// are queryable without ever being loaded.

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"sync"

	"lca/internal/graph"
)

// CSR is a cold, disk-backed source over a CSR binary file. Construct with
// OpenCSR; the zero value is unusable. Safe for concurrent use: all file
// access is positioned (ReadAt), no shared cursor or cache.
type CSR struct {
	f *os.File
	h graph.CSRHeader

	closeOnce sync.Once
	closeErr  error
}

var (
	_ Source      = (*CSR)(nil)
	_ EdgeCounter = (*CSR)(nil)
	_ Closer      = (*CSR)(nil)
)

// OpenCSR opens a CSR binary file for cold probing.
func OpenCSR(path string) (*CSR, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	h, err := graph.ReadCSRHeader(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	if h.N > math.MaxInt32+1 {
		// Neighbor cells are int32; a bigger N could not have been written.
		f.Close()
		return nil, fmt.Errorf("source: CSR header n=%d exceeds the int32 vertex space", h.N)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if want := h.NeighborPos(h.Entries); st.Size() < want {
		f.Close()
		return nil, fmt.Errorf("source: CSR file truncated: %d bytes, header requires %d", st.Size(), want)
	}
	return &CSR{f: f, h: h}, nil
}

// Close releases the file handle. Idempotent: repeated calls return the
// first result, so session teardown and deferred cleanup can both fire.
func (c *CSR) Close() error {
	c.closeOnce.Do(func() { c.closeErr = c.f.Close() })
	return c.closeErr
}

// N implements Source.
func (c *CSR) N() int { return int(c.h.N) }

// M implements EdgeCounter; the edge count is in the header.
func (c *CSR) M() int { return int(c.h.Entries / 2) }

// Sorted reports whether the file's adjacency lists are sorted (the
// writer's flag); sorted files answer Adjacency probes in O(log deg)
// reads instead of O(deg).
func (c *CSR) Sorted() bool { return c.h.Sorted }

// run returns the adjacency cell range [lo, hi) of v, or ok=false on any
// read error or corrupt offset (probe answers degrade to "no neighbor"
// rather than panicking mid-query).
func (c *CSR) run(v int) (lo, hi int64, ok bool) {
	if v < 0 || int64(v) >= c.h.N {
		return 0, 0, false
	}
	var buf [16]byte
	if _, err := c.f.ReadAt(buf[:], c.h.OffsetPos(int64(v))); err != nil {
		return 0, 0, false
	}
	lo = int64(binary.LittleEndian.Uint64(buf[:8]))
	hi = int64(binary.LittleEndian.Uint64(buf[8:]))
	if lo < 0 || lo > hi || hi > c.h.Entries {
		return 0, 0, false
	}
	return lo, hi, true
}

// cell returns adjacency cell i, or -1 on a read error.
func (c *CSR) cell(i int64) int {
	var buf [4]byte
	if _, err := c.f.ReadAt(buf[:], c.h.NeighborPos(i)); err != nil {
		return -1
	}
	return int(binary.LittleEndian.Uint32(buf[:]))
}

// Degree implements Source.
func (c *CSR) Degree(v int) int {
	lo, hi, ok := c.run(v)
	if !ok {
		return 0
	}
	return int(hi - lo)
}

// Neighbor implements Source.
func (c *CSR) Neighbor(v, i int) int {
	lo, hi, ok := c.run(v)
	if !ok || i < 0 || int64(i) >= hi-lo {
		return -1
	}
	return c.cell(lo + int64(i))
}

// Adjacency implements Source: binary search on sorted files, linear scan
// otherwise.
func (c *CSR) Adjacency(u, v int) int {
	lo, hi, ok := c.run(u)
	if !ok {
		return -1
	}
	if c.h.Sorted {
		origLo, origHi := lo, hi
		for lo < hi {
			mid := (lo + hi) / 2
			if w := c.cell(mid); w < v {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo < origHi && c.cell(lo) == v {
			return int(lo - origLo)
		}
		return -1
	}
	for i := lo; i < hi; i++ {
		if c.cell(i) == v {
			return int(i - lo)
		}
	}
	return -1
}
