package source

import (
	"os"
	"path/filepath"
	"testing"

	"lca/internal/gen"
	"lca/internal/graph"
	"lca/internal/rnd"
)

// probeEquivalent asserts that src and the materialized graph g agree on
// every probe: N, all degrees, full neighbor lists (including one index
// past the end) and Adjacency for all pairs among sample vertices plus
// every neighbor pair. With small inputs this is exhaustive.
func probeEquivalent(t *testing.T, name string, src Source, g *graph.Graph) {
	t.Helper()
	if src.N() != g.N() {
		t.Fatalf("%s: N = %d, want %d", name, src.N(), g.N())
	}
	n := g.N()
	for v := 0; v < n; v++ {
		if got, want := src.Degree(v), g.Degree(v); got != want {
			t.Fatalf("%s: Degree(%d) = %d, want %d", name, v, got, want)
		}
		for i := 0; i <= g.Degree(v); i++ { // one past the end too
			if got, want := src.Neighbor(v, i), g.Neighbor(v, i); got != want {
				t.Fatalf("%s: Neighbor(%d,%d) = %d, want %d", name, v, i, got, want)
			}
		}
	}
	// Adjacency over a vertex sample (all pairs when small).
	step := 1
	if n > 40 {
		step = n / 40
	}
	for u := 0; u < n; u += step {
		for v := 0; v < n; v += step {
			if got, want := src.Adjacency(u, v), g.AdjacencyIndex(u, v); got != want {
				t.Fatalf("%s: Adjacency(%d,%d) = %d, want %d", name, u, v, got, want)
			}
		}
		// Every real edge of u, both orientations.
		for i := 0; i < g.Degree(u); i++ {
			w := g.Neighbor(u, i)
			if got := src.Adjacency(u, w); got != i {
				t.Fatalf("%s: Adjacency(%d,%d) = %d, want %d", name, u, w, got, i)
			}
			if got, want := src.Adjacency(w, u), g.AdjacencyIndex(w, u); got != want {
				t.Fatalf("%s: Adjacency(%d,%d) = %d, want %d", name, w, u, got, want)
			}
		}
	}
}

// TestRingMatchesGen pins the implicit ring to gen.Cycle across sizes,
// including the degenerate ones.
func TestRingMatchesGen(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 4, 7, 50} {
		probeEquivalent(t, "ring", Ring(n), gen.Cycle(n))
	}
}

// TestGridMatchesGen pins the implicit grid to gen.Grid.
func TestGridMatchesGen(t *testing.T) {
	for _, d := range [][2]int{{1, 1}, {1, 5}, {5, 1}, {2, 2}, {2, 7}, {3, 3}, {6, 9}} {
		probeEquivalent(t, "grid", Grid(d[0], d[1]), gen.Grid(d[0], d[1]))
	}
}

// TestTorusMatchesGen pins the implicit torus to gen.Torus, whose
// small-extent wraparounds degenerate (2-wide collapses to one edge,
// 1-wide to none).
func TestTorusMatchesGen(t *testing.T) {
	for _, d := range [][2]int{{1, 1}, {1, 4}, {2, 2}, {2, 5}, {3, 3}, {3, 2}, {5, 8}} {
		probeEquivalent(t, "torus", Torus(d[0], d[1]), gen.Torus(d[0], d[1]))
	}
}

// TestCirculantMatchesGen is the property test over seeds: for every seed
// the hash-derived offsets give an implicit source agreeing with the
// materialized gen.Circulant cell by cell.
func TestCirculantMatchesGen(t *testing.T) {
	for seed := uint64(0); seed < 5; seed++ {
		for _, c := range []struct{ n, d int }{{3, 2}, {9, 4}, {20, 6}, {61, 8}, {64, 10}} {
			offsets, err := gen.CirculantOffsets(c.n, c.d, rnd.Seed(seed))
			if err != nil {
				t.Fatalf("offsets(n=%d,d=%d,seed=%d): %v", c.n, c.d, seed, err)
			}
			src, err := Circulant(c.n, offsets)
			if err != nil {
				t.Fatalf("Circulant(n=%d,seed=%d): %v", c.n, seed, err)
			}
			g, err := gen.Circulant(c.n, offsets)
			if err != nil {
				t.Fatalf("gen.Circulant: %v", err)
			}
			probeEquivalent(t, "circulant", src, g)
			if src.(EdgeCounter).M() != g.M() {
				t.Fatalf("circulant M = %d, want %d", src.(EdgeCounter).M(), g.M())
			}
			if d := src.Degree(0); d != c.d {
				t.Fatalf("circulant degree %d, want %d", d, c.d)
			}
		}
	}
}

// TestBlockRandomMatchesGen is the property test over seeds for the
// derived-seed random family: the implicit source and the materialized
// generator share only the pair predicate; enumeration, ordering, offsets
// and block boundaries are independent code paths that must coincide.
func TestBlockRandomMatchesGen(t *testing.T) {
	for seed := uint64(0); seed < 6; seed++ {
		for _, c := range []struct {
			n, block int
			d        float64
		}{{10, 4, 2}, {64, 16, 5}, {100, 32, 6}, {37, 16, 4} /* ragged last block */} {
			src := BlockRandom(c.n, c.block, c.d, rnd.Seed(seed))
			g := gen.BlockRandom(c.n, c.block, c.d, rnd.Seed(seed))
			probeEquivalent(t, "blockrandom", src, g)
		}
	}
}

// TestImplicitRandomEdge checks the RandomEdge capability returns valid,
// canonical edges on every implicit family.
func TestImplicitRandomEdge(t *testing.T) {
	offsets, _ := gen.CirculantOffsets(30, 4, 7)
	circ, _ := Circulant(30, offsets)
	srcs := map[string]Source{
		"ring":        Ring(12),
		"grid":        Grid(4, 5),
		"torus":       Torus(4, 5),
		"circulant":   circ,
		"blockrandom": BlockRandom(64, 16, 6, 3),
	}
	for name, src := range srcs {
		sampler, ok := src.(RandomEdger)
		if !ok {
			t.Fatalf("%s: no RandomEdge capability", name)
		}
		prg := rnd.NewPRG(1)
		for i := 0; i < 200; i++ {
			u, v := sampler.RandomEdge(prg)
			if u >= v {
				t.Fatalf("%s: RandomEdge returned non-canonical (%d,%d)", name, u, v)
			}
			if src.Adjacency(u, v) < 0 || src.Adjacency(v, u) < 0 {
				t.Fatalf("%s: RandomEdge returned non-edge (%d,%d)", name, u, v)
			}
		}
	}
}

// TestMaterialize checks probing a source into memory reproduces the
// generator graph, and that the cap refuses oversized sources.
func TestMaterialize(t *testing.T) {
	g, err := Materialize(Ring(20), 100)
	if err != nil {
		t.Fatal(err)
	}
	want := gen.Cycle(20)
	if g.N() != want.N() || g.M() != want.M() {
		t.Fatalf("materialized ring: n=%d m=%d, want n=%d m=%d", g.N(), g.M(), want.N(), want.M())
	}
	probeEquivalent(t, "materialized-ring", g, want)
	if _, err := Materialize(Ring(101), 100); err == nil {
		t.Fatal("Materialize above the cap did not fail")
	}
	// Graphs materialize to themselves.
	g2, err := Materialize(want, 1)
	if err != nil || g2 != want {
		t.Fatalf("Materialize(*Graph) = (%p, %v), want identity", g2, err)
	}
}

// TestCSRColdProbes writes a random graph to CSR and compares cold probes
// against the in-memory original, for both sorted and shuffled adjacency.
func TestCSRColdProbes(t *testing.T) {
	dir := t.TempDir()
	for _, shuffled := range []bool{false, true} {
		// Gnp builds shuffled lists (the linear-scan path); rebuild sorted
		// for the binary-search path.
		g := gen.Gnp(150, 0.06, 21)
		if !shuffled {
			b := graph.NewBuilder(g.N())
			for _, e := range g.Edges() {
				b.AddEdge(e.U, e.V)
			}
			g = b.Build()
		}
		path := filepath.Join(dir, "g.csr")
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := graph.WriteCSR(f, g); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		c, err := OpenCSR(path)
		if err != nil {
			t.Fatal(err)
		}
		if c.Sorted() == shuffled {
			t.Fatalf("sorted flag = %v for shuffled=%v", c.Sorted(), shuffled)
		}
		if c.M() != g.M() {
			t.Fatalf("CSR M = %d, want %d", c.M(), g.M())
		}
		probeEquivalent(t, "csr", c, g)
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestWriteCSRStreamFromSource saves an implicit source cold and re-opens
// it: generate once, probe from disk forever.
func TestWriteCSRStreamFromSource(t *testing.T) {
	src := BlockRandom(200, 32, 5, 11)
	path := filepath.Join(t.TempDir(), "br.csr")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.WriteCSRStream(f, src.N(), src.Degree, src.Neighbor); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	c, err := OpenCSR(path)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	g := gen.BlockRandom(200, 32, 5, 11)
	probeEquivalent(t, "csr-from-source", c, g)
}

// TestParseSpecs drives the spec grammar: happy paths, aliases, flexible
// integers, seed overrides and error cases.
func TestParseSpecs(t *testing.T) {
	good := map[string]int{ // spec -> want N
		"ring:n=100":                     100,
		"cycle:n=1_000":                  1000,
		"ring:n=1e6":                     1_000_000,
		"grid:rows=3,cols=7":             21,
		"torus:rows=4,cols=4":            16,
		"circulant:n=50,d=6":             50,
		"circulant:n=50,d=6,seed=9":      50,
		"blockrandom:n=500,d=4":          500,
		"blockrandom:n=500,d=4,block=32": 500,
	}
	for spec, wantN := range good {
		src, err := Parse(spec, 7)
		if err != nil {
			t.Errorf("Parse(%q): %v", spec, err)
			continue
		}
		if src.N() != wantN {
			t.Errorf("Parse(%q).N() = %d, want %d", spec, src.N(), wantN)
		}
	}
	bad := []string{
		"",
		"ring",              // no colon and not a file
		"ring:",             // missing n
		"ring:n=-4",         // negative
		"ring:n=abc",        // not a number
		"ring:n=2.5e0",      // non-integral
		"warp:n=10",         // unknown family
		"ring:n=10,n=20",    // duplicate key
		"ring:n=10,z=1",     // ...unknown key is tolerated? no: n parses, z ignored would be silent
		"circulant:n=9,d=3", // odd degree
		"csr:",              // missing path
		"ring:n=5e9",        // above MaxVertices: IDs would overflow packed keys
	}
	for _, spec := range bad {
		if _, err := Parse(spec, 7); err == nil {
			t.Errorf("Parse(%q) unexpectedly succeeded", spec)
		}
	}
	// Seed override changes circulant offsets.
	a, _ := Parse("circulant:n=101,d=8,seed=1", 7)
	b, _ := Parse("circulant:n=101,d=8,seed=2", 7)
	c, _ := Parse("circulant:n=101,d=8,seed=1", 99)
	if a == nil || b == nil || c == nil {
		t.Fatal("seeded circulant specs failed to parse")
	}
	same := true
	for i := 0; i < 8; i++ {
		if a.Neighbor(0, i) != c.Neighbor(0, i) {
			t.Fatalf("spec seed did not override the default seed")
		}
		if a.Neighbor(0, i) != b.Neighbor(0, i) {
			same = false
		}
	}
	if same {
		t.Fatal("distinct spec seeds produced identical circulants")
	}
}

// TestParseBarePathAndFiles checks the file-backed families and the bare
// path fallback.
func TestParseBarePathAndFiles(t *testing.T) {
	dir := t.TempDir()
	g := gen.Gnp(40, 0.2, 3)
	elPath := filepath.Join(dir, "g.txt")
	f, err := os.Create(elPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.WriteEdgeList(f, g); err != nil {
		t.Fatal(err)
	}
	f.Close()
	csrPath := filepath.Join(dir, "g.csr")
	f, err = os.Create(csrPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.WriteCSR(f, g); err != nil {
		t.Fatal(err)
	}
	f.Close()
	for _, spec := range []string{elPath, "edgelist:" + elPath, "file:" + elPath, "csr:" + csrPath} {
		src, err := Parse(spec, 7)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		if src.N() != g.N() {
			t.Fatalf("Parse(%q).N() = %d, want %d", spec, src.N(), g.N())
		}
		if src.Degree(0) != g.Degree(0) {
			t.Fatalf("Parse(%q).Degree(0) mismatch", spec)
		}
		if c, ok := src.(Closer); ok {
			c.Close()
		}
	}
}

// TestImplicitProbesAllocationFree pins the headline property: implicit
// sources synthesize adjacency with zero heap allocations per probe, at
// vertex counts far beyond what adjacency-in-memory could hold.
func TestImplicitProbesAllocationFree(t *testing.T) {
	const n = 1_000_000_000
	offsets, err := gen.CirculantOffsets(n, 8, 7)
	if err != nil {
		t.Fatal(err)
	}
	circ, err := Circulant(n, offsets)
	if err != nil {
		t.Fatal(err)
	}
	srcs := map[string]Source{
		"ring":        Ring(n),
		"torus":       Torus(31623, 31623),
		"grid":        Grid(31623, 31623),
		"circulant":   circ,
		"blockrandom": BlockRandom(n, 64, 6, 7),
	}
	for name, src := range srcs {
		v := src.N() / 3
		allocs := testing.AllocsPerRun(200, func() {
			d := src.Degree(v)
			for i := 0; i < d; i++ {
				w := src.Neighbor(v, i)
				src.Adjacency(v, w)
			}
			v = (v + 977_771) % src.N()
		})
		if allocs != 0 {
			t.Errorf("%s: %v allocs per probe round, want 0", name, allocs)
		}
	}
}
