package source

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"lca/internal/gen"
)

// newShard spins up an httptest server speaking the probe wire protocol
// over src — the minimal network shard.
func newShard(t testing.TB, src Source) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(NewProbeHandler(src))
	t.Cleanup(ts.Close)
	return ts
}

// openRemoteShard opens a Remote over a fresh shard backed by src.
func openRemoteShard(t testing.TB, src Source) Source {
	t.Helper()
	r, err := OpenRemote(newShard(t, src).URL)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestConformanceRemote runs the Source contract suite over network
// shards: a remote wrapping an implicit backend, a remote wrapping a
// random family, a sharded fleet of remote replicas, and the same fleet
// with the LRU tier — the acceptance shape of the remote layer.
func TestConformanceRemote(t *testing.T) {
	offsets, err := gen.CirculantOffsets(60, 6, 9)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		open Factory
	}{
		{"remote/circulant", func(t testing.TB) Source {
			circ, err := Circulant(60, offsets)
			if err != nil {
				t.Fatal(err)
			}
			return openRemoteShard(t, circ)
		}},
		{"remote/blockrandom", func(t testing.TB) Source {
			return openRemoteShard(t, BlockRandom(80, 16, 5, 2))
		}},
		{"sharded/remote-x2", func(t testing.TB) Source {
			s, err := NewSharded([]Source{
				openRemoteShard(t, Ring(70)),
				openRemoteShard(t, Ring(70)),
			})
			if err != nil {
				t.Fatal(err)
			}
			return s
		}},
		{"sharded/remote-x3-lru", func(t testing.TB) Source {
			var shards []Source
			for i := 0; i < 3; i++ {
				shards = append(shards, openRemoteShard(t, BlockRandom(64, 16, 4, 8)))
			}
			s, err := NewSharded(shards, WithProbeCache(256))
			if err != nil {
				t.Fatal(err)
			}
			return s
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) { TestConformance(t, c.open) })
	}
}

// TestRemoteMatchesBacking pins protocol transparency: a remote source
// answers cell-for-cell identically to the backend its shard wraps.
func TestRemoteMatchesBacking(t *testing.T) {
	backing := BlockRandom(90, 16, 5, 6)
	r := openRemoteShard(t, backing)
	if r.N() != backing.N() {
		t.Fatalf("remote N = %d, want %d", r.N(), backing.N())
	}
	for v := 0; v < backing.N(); v += 3 {
		if got, want := r.Degree(v), backing.Degree(v); got != want {
			t.Fatalf("remote Degree(%d) = %d, want %d", v, got, want)
		}
		d := backing.Degree(v)
		for i := 0; i <= d; i++ {
			if got, want := r.Neighbor(v, i), backing.Neighbor(v, i); got != want {
				t.Fatalf("remote Neighbor(%d,%d) = %d, want %d", v, i, got, want)
			}
		}
	}
}

// TestRemoteCapabilities: the remote mirrors the shard's EdgeCounter /
// DegreeBounder capabilities through /probe/meta — present for a ring,
// absent for blockrandom — on its dynamic capability view.
func TestRemoteCapabilities(t *testing.T) {
	ring := openRemoteShard(t, Ring(40))
	if mc, ok := EdgeCounterOf(ring); !ok || mc.M() != 40 {
		t.Fatalf("remote ring: EdgeCounter ok=%v", ok)
	}
	if db, ok := DegreeBounderOf(ring); !ok || db.MaxDegree() != 2 {
		t.Fatalf("remote ring: DegreeBounder ok=%v", ok)
	}
	br := openRemoteShard(t, BlockRandom(40, 8, 3, 1))
	if _, ok := EdgeCounterOf(br); ok {
		t.Fatal("remote blockrandom invented EdgeCounter")
	}
	if _, ok := DegreeBounderOf(br); ok {
		t.Fatal("remote blockrandom invented DegreeBounder")
	}
}

// TestRemoteRetries: transient 5xx answers are retried with backoff and
// the probe still succeeds; the failure never leaks to the caller.
func TestRemoteRetries(t *testing.T) {
	inner := NewProbeHandler(Ring(30))
	var fails int32 = 2
	flaky := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/probe") && r.URL.Query().Get("op") != "" &&
			atomic.AddInt32(&fails, -1) >= 0 {
			http.Error(w, "shard warming up", http.StatusServiceUnavailable)
			return
		}
		inner.ServeHTTP(w, r)
	})
	ts := httptest.NewServer(flaky)
	defer ts.Close()
	r, err := OpenRemote(ts.URL, WithRetryBackoff(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if d := r.Degree(7); d != 2 {
		t.Fatalf("Degree(7) = %d after transient failures, want 2", d)
	}
	if atomic.LoadInt32(&fails) != -1 {
		t.Fatalf("expected both injected failures consumed, fails=%d", fails)
	}
}

// recoverProbeError runs fn and returns the *ProbeError it panics with,
// failing the test if it does not panic that way.
func recoverProbeError(t *testing.T, fn func()) (pe *ProbeError) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("probe unexpectedly succeeded")
		}
		var ok bool
		if pe, ok = r.(*ProbeError); !ok {
			t.Fatalf("panic payload %T, want *ProbeError", r)
		}
	}()
	fn()
	return nil
}

// TestRemoteExhaustedRetriesPanicTyped: a shard that stays down surfaces
// as a typed *ProbeError panic naming the shard and probe.
func TestRemoteExhaustedRetriesPanicTyped(t *testing.T) {
	inner := NewProbeHandler(Ring(30))
	down := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("op") != "" {
			http.Error(w, "shard down", http.StatusInternalServerError)
			return
		}
		inner.ServeHTTP(w, r)
	})
	ts := httptest.NewServer(down)
	defer ts.Close()
	r, err := OpenRemote(ts.URL, WithRetries(1), WithRetryBackoff(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	pe := recoverProbeError(t, func() { r.Degree(3) })
	if pe.Op != OpDegree || pe.A != 3 {
		t.Fatalf("ProbeError identifies %s(%d,%d), want degree(3,0)", pe.Op, pe.A, pe.B)
	}
	if !strings.Contains(pe.Error(), ts.URL) {
		t.Fatalf("ProbeError %q does not name the shard %s", pe.Error(), ts.URL)
	}
}

// TestRemoteTimeout: a hung shard trips the per-request timeout instead
// of blocking the query forever.
func TestRemoteTimeout(t *testing.T) {
	inner := NewProbeHandler(Ring(30))
	slow := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("op") != "" {
			time.Sleep(300 * time.Millisecond)
		}
		inner.ServeHTTP(w, r)
	})
	ts := httptest.NewServer(slow)
	defer ts.Close()
	r, err := OpenRemote(ts.URL, WithTimeout(30*time.Millisecond), WithRetries(0))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	recoverProbeError(t, func() { r.Neighbor(5, 0) })
	if elapsed := time.Since(start); elapsed > 250*time.Millisecond {
		t.Fatalf("timeout took %v, want well under the shard's 300ms hang", elapsed)
	}
}

// TestRemoteBadRequestNotRetried: protocol-level 4xx answers fail fast —
// retrying a request the shard rejected cannot help.
func TestRemoteBadRequestNotRetried(t *testing.T) {
	var calls int32
	inner := NewProbeHandler(Ring(30))
	counting := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("op") != "" {
			atomic.AddInt32(&calls, 1)
		}
		inner.ServeHTTP(w, r)
	})
	ts := httptest.NewServer(counting)
	defer ts.Close()
	r, err := OpenRemote(ts.URL, WithRetryBackoff(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	recoverProbeError(t, func() { r.Degree(999) }) // out of range: shard answers 400
	if got := atomic.LoadInt32(&calls); got != 1 {
		t.Fatalf("400 answer was requested %d times, want exactly 1 (no retries)", got)
	}
}

// TestRemoteBatch round-trips a batch POST and checks index alignment.
func TestRemoteBatch(t *testing.T) {
	backing := Ring(50)
	r := openRemoteShard(t, backing)
	probes := []ProbeReq{
		{Op: OpDegree, A: 10},
		{Op: OpNeighbor, A: 10, B: 1},
		{Op: OpAdjacency, A: 10, B: 11},
		{Op: OpNeighbor, A: 10, B: 99},
		{Op: OpAdjacency, A: 10, B: 20},
	}
	got, err := r.(BatchProber).ProbeBatch(probes)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{2, 11, 1, -1, -1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("batch answer %d = %d, want %d", i, got[i], want[i])
		}
	}
}

// TestRemoteNamedSource: the URL fragment selects a named source on a
// multi-source shard (exercised against a handler that routes ?source=).
func TestRemoteNamedSource(t *testing.T) {
	ringH := NewProbeHandler(Ring(20))
	gridH := NewProbeHandler(Grid(4, 5))
	mux := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Query().Get("source") {
		case "":
			ringH.ServeHTTP(w, r)
		case "grid":
			gridH.ServeHTTP(w, r)
		default:
			http.Error(w, "unknown source", http.StatusNotFound)
		}
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()
	grid, err := OpenRemote(ts.URL + "#grid")
	if err != nil {
		t.Fatal(err)
	}
	// Grid 4x5 corner 0 has degree 2; the ring default would answer 2 as
	// well, so check an interior vertex where the answers differ.
	if d := grid.Degree(6); d != 4 {
		t.Fatalf("named grid source Degree(6) = %d, want 4", d)
	}
}

// TestOpenRemoteErrors: URL validation and non-shard endpoints fail with
// errors, never panics.
func TestOpenRemoteErrors(t *testing.T) {
	for _, bad := range []string{"", "ftp://host", "http://"} {
		if _, err := OpenRemote(bad, WithRetries(0)); err == nil {
			t.Errorf("OpenRemote(%q) unexpectedly succeeded", bad)
		}
	}
	notAShard := httptest.NewServer(http.NotFoundHandler())
	defer notAShard.Close()
	if _, err := OpenRemote(notAShard.URL, WithRetries(0)); err == nil {
		t.Error("OpenRemote against a non-shard endpoint unexpectedly succeeded")
	}
}

// TestProbeHandlerBatchForwardsAsBatch: a shard fronting a remote source
// must relay a POST /probe batch as one upstream round trip, not one GET
// per probe.
func TestProbeHandlerBatchForwardsAsBatch(t *testing.T) {
	var gets, posts int32
	inner := NewProbeHandler(Ring(40))
	counting := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/probe" {
			switch r.Method {
			case http.MethodGet:
				atomic.AddInt32(&gets, 1)
			case http.MethodPost:
				atomic.AddInt32(&posts, 1)
			}
		}
		inner.ServeHTTP(w, r)
	})
	upstream := httptest.NewServer(counting)
	defer upstream.Close()
	mid, err := OpenRemote(upstream.URL)
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(NewProbeHandler(mid))
	defer front.Close()
	body := `{"probes":[{"op":"degree","a":1},{"op":"degree","a":2},{"op":"neighbor","a":3,"b":0},{"op":"adjacency","a":4,"b":5}]}`
	resp, err := http.Post(front.URL+"/probe", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out probeBatchAnswer
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	want := []int{2, 2, 2, 1} // adjacency(4,5): 5 is the second of 4's ascending neighbors (3,5)
	for i := range want {
		if out.Answers[i] != want[i] {
			t.Fatalf("answer %d = %d, want %d", i, out.Answers[i], want[i])
		}
	}
	if g, p := atomic.LoadInt32(&gets), atomic.LoadInt32(&posts); g != 0 || p != 1 {
		t.Fatalf("upstream saw %d GETs and %d POSTs for one 4-probe batch, want 0 and 1", g, p)
	}
}

// TestProbeHandlerDeadUpstream502: a shard that itself fronts other
// shards (remote-of-remote composition) must answer a 502 envelope when
// its upstream dies, not crash the HTTP connection.
func TestProbeHandlerDeadUpstream502(t *testing.T) {
	upstream := httptest.NewServer(NewProbeHandler(Ring(50)))
	mid, err := OpenRemote(upstream.URL, WithRetries(0))
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(NewProbeHandler(mid))
	defer front.Close()
	upstream.Close()
	for _, probe := range []string{"/probe?op=degree&a=1", "/probe?op=neighbor&a=1&b=0"} {
		resp, err := http.Get(front.URL + probe)
		if err != nil {
			t.Fatalf("%s: transport error %v, want a 502 response", probe, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadGateway {
			t.Fatalf("%s: status %d, want 502", probe, resp.StatusCode)
		}
	}
	resp, err := http.Post(front.URL+"/probe", "application/json",
		strings.NewReader(`{"probes":[{"op":"degree","a":3}]}`))
	if err != nil {
		t.Fatalf("batch: transport error %v, want a 502 response", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("batch: status %d, want 502", resp.StatusCode)
	}
}

// TestWithTimeoutNeverMutatesCallerClient: a caller-owned client supplied
// via WithHTTPClient keeps its configuration regardless of option order.
func TestWithTimeoutNeverMutatesCallerClient(t *testing.T) {
	ts := newShard(t, Ring(10))
	shared := &http.Client{Timeout: 7 * time.Second}
	if _, err := OpenRemote(ts.URL, WithHTTPClient(shared), WithTimeout(time.Second)); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenRemote(ts.URL, WithTimeout(time.Second), WithHTTPClient(shared)); err != nil {
		t.Fatal(err)
	}
	if shared.Timeout != 7*time.Second {
		t.Fatalf("caller-owned client timeout mutated to %v", shared.Timeout)
	}
}

// TestRemoteCloseIdempotent: Close twice is fine and the source stays
// usable afterwards (Close only drops idle connections).
func TestRemoteCloseIdempotent(t *testing.T) {
	r := openRemoteShard(t, Ring(15))
	c := r.(Closer)
	if err := errors.Join(c.Close(), c.Close()); err != nil {
		t.Fatal(err)
	}
	if d := r.Degree(0); d != 2 {
		t.Fatalf("Degree after Close = %d, want 2", d)
	}
}

// TestParseRemoteAndShardedSpecs drives the new grammar end to end: a
// remote: spec against a live shard, and sharded: lists in both
// separator forms with a cache item.
func TestParseRemoteAndShardedSpecs(t *testing.T) {
	a := newShard(t, Ring(25))
	b := newShard(t, Ring(25))
	src, err := Parse("remote:"+a.URL, 7)
	if err != nil {
		t.Fatal(err)
	}
	if src.N() != 25 || src.Degree(3) != 2 {
		t.Fatalf("remote spec: n=%d deg(3)=%d", src.N(), src.Degree(3))
	}
	sharded, err := Parse("sharded:remote:"+a.URL+",remote:"+b.URL, 7)
	if err != nil {
		t.Fatal(err)
	}
	if sharded.N() != 25 || sharded.Neighbor(10, 1) != 11 {
		t.Fatalf("sharded spec: n=%d nbr(10,1)=%d", sharded.N(), sharded.Neighbor(10, 1))
	}
	if c, ok := sharded.(Closer); !ok {
		t.Fatal("sharded source is not a Closer")
	} else if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	// Semicolon form with comma-bearing sub-specs plus a cache tier.
	mixed, err := Parse("sharded:cache=128;grid:rows=6,cols=7;grid:rows=6,cols=7", 7)
	if err != nil {
		t.Fatal(err)
	}
	if mixed.N() != 42 || mixed.Degree(0) != 2 {
		t.Fatalf("mixed sharded spec: n=%d deg(0)=%d", mixed.N(), mixed.Degree(0))
	}
	// Error cases must name the offending token.
	for spec, token := range map[string]string{
		"sharded:":                   "sharded",
		"sharded:ring:n=5;ring:n=6":  "replicas",
		"sharded:ring:n=5;;ring:n=5": "empty shard",
		"sharded:cache=xyz;ring:n=5": "cache",
		"remote:":                    "remote",
		"remote:ftp://host":          "scheme",
		"sharded:warp:n=5":           "warp",
	} {
		_, err := Parse(spec, 7)
		if err == nil {
			t.Errorf("Parse(%q) unexpectedly succeeded", spec)
			continue
		}
		if !strings.Contains(err.Error(), token) {
			t.Errorf("Parse(%q) error %q does not name %q", spec, err, token)
		}
	}
}
