package source

// Allocation pins for the hot local path: with tracing off, steady-state
// scalar probes against the implicit generators and the mmap CSR backend
// must not allocate at all. These are the per-probe halves of the
// bounded-heap acceptance tests at the session level — a regression here
// (an interface boxing, a closure capture, a forgotten buffer) shows up
// as a nonzero figure long before it moves a benchmark.

import (
	"testing"

	"lca/internal/gen"
)

// probeLoop exercises the three scalar probe ops against a primed
// working set; the return value defeats dead-code elimination.
func probeLoop(src Source, vs []int, round int) int {
	sink := 0
	for _, v := range vs {
		d := src.Degree(v)
		sink += d
		if d > 0 {
			w := src.Neighbor(v, round%d)
			sink += w
			sink += src.Adjacency(v, w)
		}
	}
	return sink
}

func assertProbesAllocFree(t *testing.T, name string, src Source, n int) {
	t.Helper()
	vs := make([]int, 64)
	for i := range vs {
		vs[i] = (i * 982_451_653) % n
	}
	sink := probeLoop(src, vs, 0) // warm: fault pages, fill lazy state
	round := 1
	allocs := testing.AllocsPerRun(500, func() {
		sink += probeLoop(src, vs, round)
		round++
	})
	if allocs != 0 {
		t.Errorf("%s: steady-state probes allocate %.1f times per run, want 0 (sink %d)", name, allocs, sink)
	}
}

// TestImplicitProbeHotPathAllocFree pins the implicit generators at zero
// allocations per steady-state probe, at the n=10^8 scale the SRC sweep
// runs them.
func TestImplicitProbeHotPathAllocFree(t *testing.T) {
	const n = 100_000_000
	offsets, err := gen.CirculantOffsets(n, 8, 7)
	if err != nil {
		t.Fatal(err)
	}
	circ, err := Circulant(n, offsets)
	if err != nil {
		t.Fatal(err)
	}
	assertProbesAllocFree(t, "ring", Ring(n), n)
	assertProbesAllocFree(t, "circulant", circ, n)
}

// TestCSRMmapProbeHotPathAllocFree pins the mmap CSR backend at zero
// allocations per probe: a probe is a couple of loads against the
// mapping plus two atomic counter updates, nothing else.
func TestCSRMmapProbeHotPathAllocFree(t *testing.T) {
	skipNoMmap(t)
	g := gen.Gnp(5_000, 0.002, 17)
	c, err := OpenCSRMmap(writeCSRFile(t, g))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	assertProbesAllocFree(t, "csr-mmap", c, g.N())
}
