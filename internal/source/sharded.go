package source

// Sharded: one Source fronting N replica shards. Every shard answers
// probes about the same graph (same spec, same seed — replicas of one
// lcaserve fleet, or any mix of local and remote backends); rendezvous
// hashing on the probed vertex routes each probe to one shard, so a fleet
// splits the probe load ~uniformly while keeping per-vertex affinity —
// the shard that answered Degree(v) also answers v's Neighbor probes, so
// any per-shard page cache or memo stays hot. An optional LRU tier
// absorbs repeated neighborhood probes client-side, the bounded-memory
// counterpart of oracle.CachingOracle's unbounded memoization.

import (
	"container/list"
	"errors"
	"fmt"
	"sync"

	"lca/internal/rnd"
)

// Sharded fans probes out across replica shards. Construct with
// NewSharded; the zero value is unusable. Safe for concurrent use when
// the shards are (every backend here is); the LRU tier is mutex-guarded.
type Sharded struct {
	shards []Source
	n      int
	cache  *probeLRU

	m, maxDeg       int
	hasM, hasMaxDeg bool
	hasRE           bool
	closeOnce       sync.Once
	closeErr        error
}

var (
	_ Source           = (*Sharded)(nil)
	_ Closer           = (*Sharded)(nil)
	_ BatchProber      = (*Sharded)(nil)
	_ RoundTripCounter = (*Sharded)(nil)
)

// ShardedOption configures a Sharded at construction.
type ShardedOption func(*Sharded)

// WithProbeCache adds a client-side LRU over probe answers with the given
// entry capacity (0 disables it, the default). Cached cells are pure
// functions of the graph, so the tier never changes an answer — it only
// absorbs the repeated neighborhood probes recursive LCAs issue, which on
// remote shards saves whole round trips.
func WithProbeCache(entries int) ShardedOption {
	return func(s *Sharded) {
		if entries > 0 {
			s.cache = newProbeLRU(entries)
		}
	}
}

// NewSharded combines replica shards into one Source. All shards must
// agree on the vertex count (they are replicas of one graph); the O(1)
// summary capabilities (EdgeCounter, DegreeBounder) are exposed exactly
// when every shard has them and they agree.
func NewSharded(shards []Source, opts ...ShardedOption) (Source, error) {
	s, err := newSharded(shards, opts...)
	if err != nil {
		return nil, err
	}
	switch {
	case s.hasM && s.hasMaxDeg && s.hasRE:
		return shardedMDegRE{shardedMDeg{s}}, nil
	case s.hasM && s.hasMaxDeg:
		return shardedMDeg{s}, nil
	case s.hasM && s.hasRE:
		return shardedMRE{shardedM{s}}, nil
	case s.hasMaxDeg && s.hasRE:
		return shardedDegRE{shardedDeg{s}}, nil
	case s.hasM:
		return shardedM{s}, nil
	case s.hasMaxDeg:
		return shardedDeg{s}, nil
	case s.hasRE:
		return shardedRE{s}, nil
	}
	return s, nil
}

func newSharded(shards []Source, opts ...ShardedOption) (*Sharded, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("source: sharded: need at least one shard")
	}
	s := &Sharded{shards: shards, n: shards[0].N()}
	for i, sh := range shards {
		if sh.N() != s.n {
			return nil, fmt.Errorf("source: sharded: shard %d has n=%d, shard 0 has n=%d (shards must be replicas of one graph)",
				i, sh.N(), s.n)
		}
	}
	s.hasM, s.hasMaxDeg, s.hasRE = true, true, true
	for i, sh := range shards {
		if _, ok := sh.(RandomEdger); !ok {
			s.hasRE = false
		}
		if mc, ok := sh.(EdgeCounter); ok {
			if i > 0 && s.hasM && mc.M() != s.m {
				return nil, fmt.Errorf("source: sharded: shard %d reports m=%d, earlier shards m=%d (shards must be replicas)", i, mc.M(), s.m)
			}
			s.m = mc.M()
		} else {
			s.hasM = false
		}
		if db, ok := sh.(DegreeBounder); ok {
			if i > 0 && s.hasMaxDeg && db.MaxDegree() != s.maxDeg {
				return nil, fmt.Errorf("source: sharded: shard %d reports maxdeg=%d, earlier shards %d (shards must be replicas)", i, db.MaxDegree(), s.maxDeg)
			}
			s.maxDeg = db.MaxDegree()
		} else {
			s.hasMaxDeg = false
		}
	}
	for _, o := range opts {
		o(s)
	}
	return s, nil
}

// Capability wrappers, mirroring the Remote pattern: the capability is
// advertised only when every shard has it.
type shardedM struct{ *Sharded }

func (s shardedM) M() int { return s.m }

type shardedDeg struct{ *Sharded }

func (s shardedDeg) MaxDegree() int { return s.maxDeg }

type shardedMDeg struct{ *Sharded }

func (s shardedMDeg) M() int { return s.m }

func (s shardedMDeg) MaxDegree() int { return s.maxDeg }

type shardedRE struct{ *Sharded }

func (s shardedRE) RandomEdge(prg *rnd.PRG) (int, int) { return s.randomEdge(prg) }

type shardedMRE struct{ shardedM }

func (s shardedMRE) RandomEdge(prg *rnd.PRG) (int, int) { return s.randomEdge(prg) }

type shardedDegRE struct{ shardedDeg }

func (s shardedDegRE) RandomEdge(prg *rnd.PRG) (int, int) { return s.randomEdge(prg) }

type shardedMDegRE struct{ shardedMDeg }

func (s shardedMDegRE) RandomEdge(prg *rnd.PRG) (int, int) { return s.randomEdge(prg) }

// randomEdge implements the RandomEdger capability when every shard has
// it: one uint64 drawn from the caller's PRG picks the serving shard and
// seeds a derived PRG for the shard-side sampler. Shards are replicas and
// samplers are deterministic in their PRG, so the answer is a function of
// the caller's PRG state alone — any shard would answer identically.
func (s *Sharded) randomEdge(prg *rnd.PRG) (int, int) {
	seed := prg.Uint64()
	sh := s.shards[int(seed%uint64(len(s.shards)))]
	return sh.(RandomEdger).RandomEdge(rnd.NewPRG(rnd.Seed(seed).Derive(0x5e)))
}

// Shards returns the shard count (for bench labels and tests).
func (s *Sharded) Shards() int { return len(s.shards) }

// RoundTrips implements RoundTripCounter by summing the shards that report
// (local shards cost no round trips and don't count).
func (s *Sharded) RoundTrips() uint64 {
	var total uint64
	for _, sh := range s.shards {
		if rt, ok := sh.(RoundTripCounter); ok {
			total += rt.RoundTrips()
		}
	}
	return total
}

// shardFor routes a vertex to its owning shard by rendezvous (highest
// random weight) hashing: each (vertex, shard) pair gets an independent
// 64-bit score and the max wins. Removing one shard remaps only the keys
// it owned — the consistent-hashing property — with no ring state at all.
func (s *Sharded) shardFor(v int) int {
	if len(s.shards) == 1 {
		return 0
	}
	best, bestScore := 0, uint64(0)
	for i := range s.shards {
		x := uint64(v)*0x9e3779b97f4a7c15 ^ uint64(i)*0xda942042e4dd58b5
		x ^= x >> 30
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		x *= 0x94d049bb133111eb
		x ^= x >> 31
		if x >= bestScore {
			best, bestScore = i, x
		}
	}
	return best
}

// N implements Source.
func (s *Sharded) N() int { return s.n }

// Degree implements Source, routed by v.
func (s *Sharded) Degree(v int) int {
	k := probeKey{op: opDeg, ab: packProbe(v, 0)}
	if s.cache != nil {
		if ans, ok := s.cache.get(k); ok {
			return ans
		}
	}
	ans := s.shards[s.shardFor(v)].Degree(v)
	if s.cache != nil {
		s.cache.put(k, ans)
	}
	return ans
}

// Neighbor implements Source, routed by v.
func (s *Sharded) Neighbor(v, i int) int {
	if i < 0 {
		return -1
	}
	k := probeKey{op: opNbr, ab: packProbe(v, i)}
	if s.cache != nil {
		if ans, ok := s.cache.get(k); ok {
			return ans
		}
	}
	ans := s.shards[s.shardFor(v)].Neighbor(v, i)
	if s.cache != nil {
		s.cache.put(k, ans)
		if ans >= 0 {
			// A Neighbor answer pins down one Adjacency answer for free,
			// mirroring oracle.CachingOracle.
			s.cache.put(probeKey{op: opAdj, ab: packProbe(v, ans)}, i)
		}
	}
	return ans
}

// Adjacency implements Source, routed by the list owner u.
func (s *Sharded) Adjacency(u, v int) int {
	if u < 0 || u >= s.n || v < 0 || v >= s.n {
		return -1
	}
	k := probeKey{op: opAdj, ab: packProbe(u, v)}
	if s.cache != nil {
		if ans, ok := s.cache.get(k); ok {
			return ans
		}
	}
	ans := s.shards[s.shardFor(u)].Adjacency(u, v)
	if s.cache != nil {
		s.cache.put(k, ans)
	}
	return ans
}

// ProbeBatch implements BatchProber: probes are grouped by owning shard
// and fanned out concurrently, one goroutine (and, on remote shards, one
// POST round trip) per shard touched. Answers are index-aligned with the
// request. The LRU tier is consulted first and filled from the answers.
// Batches above MaxProbeBatch are rejected, matching the wire protocol's
// limit whichever backend a batch lands on.
func (s *Sharded) ProbeBatch(probes []ProbeReq) ([]int, error) {
	if len(probes) > MaxProbeBatch {
		return nil, fmt.Errorf("source: sharded: probe batch of %d exceeds the maximum %d", len(probes), MaxProbeBatch)
	}
	answers := make([]int, len(probes))
	perShard := make(map[int][]int) // shard -> indices into probes
	for i, p := range probes {
		if s.cache != nil {
			if k, ok := keyOf(p); ok {
				if ans, hit := s.cache.get(k); hit {
					answers[i] = ans
					continue
				}
			}
		}
		sh := s.shardFor(p.A)
		perShard[sh] = append(perShard[sh], i)
	}
	var wg sync.WaitGroup
	errs := make([]error, len(s.shards))
	for shard, idxs := range perShard {
		wg.Add(1)
		go func(shard int, idxs []int) {
			defer wg.Done()
			errs[shard] = s.batchOnShard(shard, idxs, probes, answers)
		}(shard, idxs)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	if s.cache != nil {
		for i, p := range probes {
			if k, ok := keyOf(p); ok {
				s.cache.put(k, answers[i])
			}
		}
	}
	return answers, nil
}

// batchOnShard answers the probes at idxs against one shard, using its
// batch capability when it has one.
func (s *Sharded) batchOnShard(shard int, idxs []int, probes []ProbeReq, answers []int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			pe, ok := r.(*ProbeError)
			if !ok {
				panic(r)
			}
			err = pe
		}
	}()
	sh := s.shards[shard]
	if bp, ok := sh.(BatchProber); ok {
		sub := make([]ProbeReq, len(idxs))
		for j, i := range idxs {
			sub[j] = probes[i]
		}
		got, err := bp.ProbeBatch(sub)
		if err != nil {
			return err
		}
		for j, i := range idxs {
			answers[i] = got[j]
		}
		return nil
	}
	for _, i := range idxs {
		p := probes[i]
		ans, status, msg := answerProbe(sh, p.Op, p.A, p.B)
		if status != 0 {
			return fmt.Errorf("source: sharded: probe %d: %s", i, msg)
		}
		answers[i] = ans
	}
	return nil
}

// Close closes every shard holding external resources. Idempotent;
// repeated calls return the first result.
func (s *Sharded) Close() error {
	s.closeOnce.Do(func() {
		var errs []error
		for _, sh := range s.shards {
			if c, ok := sh.(Closer); ok {
				errs = append(errs, c.Close())
			}
		}
		s.closeErr = errors.Join(errs...)
	})
	return s.closeErr
}

// probe-answer LRU ------------------------------------------------------

const (
	opDeg uint8 = iota
	opNbr
	opAdj
)

type probeKey struct {
	op uint8
	ab uint64
}

// packProbe packs a probe's operands like oracle.cacheKey (operands are
// vertex IDs or list indices, both under 2^32).
func packProbe(a, b int) uint64 { return uint64(uint32(a))<<32 | uint64(uint32(b)) }

// keyOf maps a wire probe to its cache key; unknown ops are uncacheable.
func keyOf(p ProbeReq) (probeKey, bool) {
	switch p.Op {
	case OpDegree:
		return probeKey{op: opDeg, ab: packProbe(p.A, 0)}, true
	case OpNeighbor:
		return probeKey{op: opNbr, ab: packProbe(p.A, p.B)}, true
	case OpAdjacency:
		return probeKey{op: opAdj, ab: packProbe(p.A, p.B)}, true
	}
	return probeKey{}, false
}

// probeLRU is a bounded, mutex-guarded LRU over probe answers. Answers
// are pure functions of the fixed graph, so staleness cannot exist;
// eviction only trades hit rate for memory.
type probeLRU struct {
	mu      sync.Mutex
	cap     int
	entries map[probeKey]*list.Element
	order   *list.List // front = most recently used
}

type lruEntry struct {
	k   probeKey
	ans int
}

func newProbeLRU(capacity int) *probeLRU {
	// The map grows with actual residency; pre-sizing to the full
	// capacity would turn a large cache=N spec into an eager multi-GB
	// allocation before the first probe is ever cached.
	return &probeLRU{
		cap:     capacity,
		entries: make(map[probeKey]*list.Element, min(capacity, 1<<16)),
		order:   list.New(),
	}
}

func (c *probeLRU) get(k probeKey) (int, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[k]
	if !ok {
		return 0, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).ans, true
}

func (c *probeLRU) put(k probeKey, ans int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[k]; ok {
		el.Value.(*lruEntry).ans = ans
		c.order.MoveToFront(el)
		return
	}
	c.entries[k] = c.order.PushFront(&lruEntry{k: k, ans: ans})
	if c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*lruEntry).k)
	}
}

// lruLen reports the resident entry count (tests).
func (c *probeLRU) lruLen() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
