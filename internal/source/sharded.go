package source

// Sharded: one Source fronting N replica shards. Every shard answers
// probes about the same graph (same spec, same seed — replicas of one
// lcaserve fleet, or any mix of local and remote backends); rendezvous
// hashing on the probed vertex routes each probe to one shard, so a fleet
// splits the probe load ~uniformly while keeping per-vertex affinity —
// the shard that answered Degree(v) also answers v's Neighbor probes, so
// any per-shard page cache or memo stays hot. An optional LRU tier
// absorbs repeated neighborhood probes client-side, the bounded-memory
// counterpart of oracle.CachingOracle's unbounded memoization.
//
// Because replicas are interchangeable, the fleet survives them failing:
// a probe whose rendezvous shard errors is failed over to the next-ranked
// live replica, a shard past the consecutive-failure threshold is marked
// dead and its keys re-routed until a background half-open re-probe
// (health.go) revives it, and an optional hedge delay fires a second
// request at the next-ranked replica when the first is slow — first
// response wins, the loser is cancelled. Probes error only when no live
// replica can serve them. Failovers and hedges are counted (the
// FailoverCounter capability) but never change answers.

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"

	"lca/internal/attest"
	"lca/internal/rnd"
	"lca/internal/trace"
)

// Failure-handling defaults, overridable per fleet with the options below.
const (
	// DefaultFailureThreshold is the consecutive-failure count that marks
	// a shard dead.
	DefaultFailureThreshold = 3
	// DefaultReviveMin / DefaultReviveMax bound the reviver's jittered
	// exponential backoff between half-open re-probes of a dead shard.
	DefaultReviveMin = 250 * time.Millisecond
	DefaultReviveMax = 5 * time.Second
	// DefaultHedgeFloor / DefaultHedgeCeil bound the adaptive hedge delay
	// (WithAdaptiveHedge, hedge=adaptive): the p95-derived delay is
	// clamped into [floor, ceil], and the ceiling alone is used until the
	// latency sketch has enough samples to estimate a tail.
	DefaultHedgeFloor = time.Millisecond
	DefaultHedgeCeil  = 100 * time.Millisecond
)

// scopedProber is the internal seam between a fleet and its network
// shards: probes carry the per-view probe scope (trip counter, tracer,
// parent span) down, so request-scoped accounting (TripScoper)
// attributes every shard request — failover retries and hedges included
// — to the view that caused it, and a traced request's rpc spans land
// under the right probe span. *Remote implements it; shards without it
// (local backends, nested fleets) are probed through the plain Source
// interface.
type scopedProber interface {
	probeScoped(ctx context.Context, ps probeScope, op string, a, b int) (int, *ProbeError)
	batchScoped(ps probeScope, probes []ProbeReq) ([]int, error)
	randomEdgeScoped(ps probeScope, seed uint64) (int, int, *ProbeError)
	fetchRowsScoped(ps probeScope, vs []int) ([][]int, error)
}

// Sharded fans probes out across replica shards. Construct with
// NewSharded; the zero value is unusable. Safe for concurrent use when
// the shards are (every backend here is); the LRU tier is mutex-guarded
// and the health state per-shard locked.
//
// Optional capabilities (EdgeCounter, DegreeBounder, RandomEdger) are
// exposed on the dynamic capability view exactly when every shard has
// them; Health (HealthReporter), Failovers/Hedges (FailoverCounter) and
// ScopeTrips (TripScoper) are always present.
type Sharded struct {
	shards []Source
	labels []string
	n      int
	cache  *probeLRU

	m, maxDeg       int
	hasM, hasMaxDeg bool
	hasRE           bool
	hasRowFull      bool

	hedge         time.Duration
	adaptiveHedge bool
	hedgeFloor    time.Duration
	hedgeCeil     time.Duration
	lat           []*latencySketch // per-shard estimators, nil unless adaptive
	failThreshold int
	reviveMin     time.Duration
	reviveMax     time.Duration
	// reviveSleep and reviveJitter are the reviver's timing seams,
	// injectable so revival tests are deterministic instead of
	// wall-clock-and-global-PRNG dependent. reviveSleep waits for d (or
	// fleet shutdown, reporting false); reviveJitter draws the jitter
	// added to one backoff delay.
	reviveSleep  func(d time.Duration) bool
	reviveJitter func(backoff time.Duration) time.Duration

	health []*shardState
	stop   chan struct{}
	// reviveMu serializes reviver spawning against Close: wg.Add must
	// never race wg.Wait, even from detached hedge-loser harvesters that
	// can outlive the probe that spawned them.
	reviveMu  sync.Mutex
	closed    bool
	wg        sync.WaitGroup
	failovers atomic.Uint64
	hedges    atomic.Uint64

	closeOnce sync.Once
	closeErr  error
}

var (
	_ Source           = (*Sharded)(nil)
	_ CapSource        = (*Sharded)(nil)
	_ Closer           = (*Sharded)(nil)
	_ BatchProber      = (*Sharded)(nil)
	_ RoundTripCounter = (*Sharded)(nil)
	_ HealthReporter   = (*Sharded)(nil)
	_ FailoverCounter  = (*Sharded)(nil)
	_ TripScoper       = (*Sharded)(nil)
	_ AttestCounter    = (*Sharded)(nil)
)

// ShardedOption configures a Sharded at construction.
type ShardedOption func(*Sharded)

// WithProbeCache adds a client-side LRU over probe answers with the given
// entry capacity (0 disables it, the default). Cached cells are pure
// functions of the graph, so the tier never changes an answer — it only
// absorbs the repeated neighborhood probes recursive LCAs issue, which on
// remote shards saves whole round trips.
func WithProbeCache(entries int) ShardedOption {
	return func(s *Sharded) {
		if entries > 0 {
			s.cache = newProbeLRU(entries)
		}
	}
}

// WithHedge enables hedged scalar probes: when the rendezvous shard has
// not answered within d, the same probe is fired at the next-ranked live
// replica and the first response wins, the loser cancelled. 0 (the
// default) disables hedging. Replicas answer identically, so hedging
// never changes an answer — it trades a bounded amount of duplicate work
// for tail latency.
func WithHedge(d time.Duration) ShardedOption {
	return func(s *Sharded) {
		if d > 0 {
			s.hedge = d
		}
	}
}

// WithAdaptiveHedge enables adaptive hedged probes: instead of a fixed
// delay, each shard's hedge delay is derived from a rolling latency
// sketch over its recent successful probes — the p95, clamped into
// [floor, ceil] — so the fleet hedges exactly when a probe is slow *for
// that shard right now*, not against a guess made at deploy time. Until
// a shard has enough samples the ceiling is used (conservative: hedging
// late wastes less than hedging early duplicates). Non-positive floor
// and ceil take DefaultHedgeFloor/DefaultHedgeCeil; ceil is clamped up
// to floor. Overrides WithHedge's fixed delay.
func WithAdaptiveHedge(floor, ceil time.Duration) ShardedOption {
	return func(s *Sharded) {
		s.adaptiveHedge = true
		if floor <= 0 {
			floor = DefaultHedgeFloor
		}
		if ceil <= 0 {
			ceil = DefaultHedgeCeil
		}
		if ceil < floor {
			ceil = floor
		}
		s.hedgeFloor, s.hedgeCeil = floor, ceil
	}
}

// WithFailureThreshold sets how many consecutive failures mark a shard
// dead (default DefaultFailureThreshold). Values below 1 are ignored.
func WithFailureThreshold(k int) ShardedOption {
	return func(s *Sharded) {
		if k >= 1 {
			s.failThreshold = k
		}
	}
}

// WithRevival sets the reviver's backoff window between half-open
// re-probes of a dead shard (defaults DefaultReviveMin/DefaultReviveMax).
// Non-positive values are ignored; max is clamped up to min.
func WithRevival(min, max time.Duration) ShardedOption {
	return func(s *Sharded) {
		if min > 0 {
			s.reviveMin = min
		}
		if max > 0 {
			s.reviveMax = max
		}
		if s.reviveMax < s.reviveMin {
			s.reviveMax = s.reviveMin
		}
	}
}

// NewSharded combines replica shards into one Source. All shards must
// agree on the vertex count (they are replicas of one graph); the O(1)
// summary capabilities (EdgeCounter, DegreeBounder) are exposed exactly
// when every shard has them and they agree.
func NewSharded(shards []Source, opts ...ShardedOption) (Source, error) {
	return newSharded(shards, opts...)
}

func newSharded(shards []Source, opts ...ShardedOption) (*Sharded, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("source: sharded: need at least one shard")
	}
	s := &Sharded{
		shards:        shards,
		n:             shards[0].N(),
		failThreshold: DefaultFailureThreshold,
		reviveMin:     DefaultReviveMin,
		reviveMax:     DefaultReviveMax,
		stop:          make(chan struct{}),
	}
	for i, sh := range shards {
		if sh.N() != s.n {
			return nil, fmt.Errorf("source: sharded: shard %d has n=%d, shard 0 has n=%d (shards must be replicas of one graph)",
				i, sh.N(), s.n)
		}
	}
	s.reviveSleep = func(d time.Duration) bool {
		select {
		case <-s.stop:
			return false
		case <-time.After(d):
			return true
		}
	}
	s.reviveJitter = func(backoff time.Duration) time.Duration {
		// Jitter desynchronizes a fleet of clients re-probing one revived
		// replica; the exact delay is immaterial to correctness.
		return time.Duration(rand.Int64N(int64(backoff)/2 + 1))
	}
	s.hasM, s.hasMaxDeg, s.hasRE, s.hasRowFull = true, true, true, true
	s.labels = make([]string, len(shards))
	s.health = make([]*shardState, len(shards))
	for i, sh := range shards {
		s.labels[i] = shardLabel(sh, i)
		s.health[i] = newShardState()
		if _, ok := RandomEdgerOf(sh); !ok {
			s.hasRE = false
		}
		if _, ok := RowFetcherOf(sh); !ok {
			s.hasRowFull = false
		}
		if mc, ok := EdgeCounterOf(sh); ok {
			if i > 0 && s.hasM && mc.M() != s.m {
				return nil, fmt.Errorf("source: sharded: shard %d reports m=%d, earlier shards m=%d (shards must be replicas)", i, mc.M(), s.m)
			}
			s.m = mc.M()
		} else {
			s.hasM = false
		}
		if db, ok := DegreeBounderOf(sh); ok {
			if i > 0 && s.hasMaxDeg && db.MaxDegree() != s.maxDeg {
				return nil, fmt.Errorf("source: sharded: shard %d reports maxdeg=%d, earlier shards %d (shards must be replicas)", i, db.MaxDegree(), s.maxDeg)
			}
			s.maxDeg = db.MaxDegree()
		} else {
			s.hasMaxDeg = false
		}
	}
	for _, o := range opts {
		o(s)
	}
	if s.adaptiveHedge {
		s.lat = make([]*latencySketch, len(shards))
		for i := range s.lat {
			s.lat[i] = &latencySketch{}
		}
	}
	return s, nil
}

// shardLabel names one replica for health reports and errors.
func shardLabel(sh Source, i int) string {
	if b, ok := sh.(interface{ Base() string }); ok {
		return b.Base()
	}
	return fmt.Sprintf("shard%d", i)
}

// label names the fleet in probe errors.
func (s *Sharded) label() string { return fmt.Sprintf("sharded(%d replicas)", len(s.shards)) }

// Caps implements CapSource: the summary capabilities are the
// intersection of the replicas' (snapshotted at construction), and the
// fleet-level Health capability is always present.
func (s *Sharded) Caps() Caps {
	c := Caps{Health: s.Health}
	if s.hasM {
		m := s.m
		c.M = func() int { return m }
	}
	if s.hasMaxDeg {
		d := s.maxDeg
		c.MaxDegree = func() int { return d }
	}
	if s.hasRE {
		c.RandomEdge = func(prg *rnd.PRG) (int, int) { return s.randomEdge(nil, prg) }
	}
	if s.hasRowFull {
		c.FetchRows = func(vs []int) ([][]int, error) { return s.fetchRows(nil, vs) }
	}
	return c
}

// Health implements HealthReporter: one snapshot per replica, in shard
// order.
func (s *Sharded) Health() []ShardHealth {
	out := make([]ShardHealth, len(s.shards))
	for i := range s.shards {
		out[i] = s.health[i].snapshot(s.labels[i])
	}
	return out
}

// Failovers implements FailoverCounter: probe operations served by a
// replica other than their rendezvous winner (because it was dead or
// erroring).
func (s *Sharded) Failovers() uint64 { return s.failovers.Load() }

// Hedges implements FailoverCounter: hedged requests fired because the
// first-ranked replica exceeded the hedge delay.
func (s *Sharded) Hedges() uint64 { return s.hedges.Load() }

// ScopeTrips implements TripScoper: the view shares the fleet's shards,
// cache and health state, but counts round trips, failovers and hedges
// into its own counters only.
func (s *Sharded) ScopeTrips() Source { return &shardedScope{s: s} }

// Shards returns the shard count (for bench labels and tests).
func (s *Sharded) Shards() int { return len(s.shards) }

// RoundTrips implements RoundTripCounter by summing the shards that report
// (local shards cost no round trips and don't count).
func (s *Sharded) RoundTrips() uint64 {
	var total uint64
	for _, sh := range s.shards {
		if rt, ok := sh.(RoundTripCounter); ok {
			total += rt.RoundTrips()
		}
	}
	return total
}

// AttestFailures implements AttestCounter by summing the shards that
// verify (pinned Remotes; local shards prove nothing and count nothing).
// Each failure is one detected Byzantine answer that was discarded and
// re-routed — the fleet's answers stay correct, this counts the lies.
func (s *Sharded) AttestFailures() uint64 {
	var total uint64
	for _, sh := range s.shards {
		if ac, ok := sh.(AttestCounter); ok {
			total += ac.AttestFailures()
		}
	}
	return total
}

// ProofBytes implements AttestCounter by summing the shards that verify.
func (s *Sharded) ProofBytes() uint64 {
	var total uint64
	for _, sh := range s.shards {
		if ac, ok := sh.(AttestCounter); ok {
			total += ac.ProofBytes()
		}
	}
	return total
}

// SpotCheck cross-audits the replicas for interchangeability: k vertices
// sampled deterministically from seed have their adjacency rows fetched
// from every replica directly (bypassing rendezvous routing), and every
// disagreement against replica 0's row is reported. A disagreement proves
// at least one replica of the pair corrupt — without a commitment it
// cannot say which, so SpotCheck reports rather than distrusts; operators
// (or the serve tier) act on the findings. Replicas that error are
// skipped: unreachable is a health problem, not a corruption finding.
func (s *Sharded) SpotCheck(k int, seed uint64) []attest.Disagreement {
	rows := make([]func(v int) ([]int, error), len(s.shards))
	for i := range s.shards {
		sh := s.shards[i]
		rows[i] = func(v int) ([]int, error) { return rowFromShard(sh, v) }
	}
	return attest.AuditReplicas(s.n, k, seed, rows)
}

// rowFromShard fetches one adjacency row from one replica, converting the
// network contract's *ProbeError panics into errors for the auditor.
func rowFromShard(sh Source, v int) (row []int, err error) {
	defer func() {
		if r := recover(); r != nil {
			pe, ok := r.(*ProbeError)
			if !ok {
				panic(r)
			}
			row, err = nil, pe
		}
	}()
	if rf, ok := RowFetcherOf(sh); ok {
		rows, err := rf.FetchRows([]int{v})
		if err != nil {
			return nil, err
		}
		if len(rows) != 1 {
			return nil, fmt.Errorf("source: audit: shard answered %d rows for 1 vertex", len(rows))
		}
		return rows[0], nil
	}
	d := sh.Degree(v)
	row = make([]int, d)
	for i := range row {
		row[i] = sh.Neighbor(v, i)
	}
	return row, nil
}

// shardScore is the rendezvous (highest-random-weight) score of the
// (vertex, shard) pair: each pair gets an independent 64-bit score and
// the max wins, so removing one shard remaps only the keys it owned — the
// consistent-hashing property — with no ring state at all.
func shardScore(v, i int) uint64 {
	x := uint64(v)*0x9e3779b97f4a7c15 ^ uint64(i)*0xda942042e4dd58b5
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// shardFor returns v's rendezvous winner, health-blind — the shard that
// owns v whenever it is alive (tests pin the routing against it).
func (s *Sharded) shardFor(v int) int {
	if len(s.shards) == 1 {
		return 0
	}
	best, bestScore := 0, uint64(0)
	for i := range s.shards {
		if x := shardScore(v, i); x >= bestScore {
			best, bestScore = i, x
		}
	}
	return best
}

// pickLive ranks v's replicas: want is the health-blind rendezvous winner
// (for failover accounting), primary and secondary the two highest-ranked
// live replicas outside exclude (-1 when none qualify).
func (s *Sharded) pickLive(v int, exclude []bool) (primary, secondary, want int) {
	primary, secondary, want = -1, -1, -1
	var pBest, sBest, wBest uint64
	for i := range s.shards {
		x := shardScore(v, i)
		if want < 0 || x >= wBest {
			want, wBest = i, x
		}
		if exclude != nil && exclude[i] {
			continue
		}
		if !s.health[i].alive() {
			continue
		}
		switch {
		case primary < 0:
			primary, pBest = i, x
		case x >= pBest:
			secondary, sBest = primary, pBest
			primary, pBest = i, x
		case secondary < 0 || x >= sBest:
			secondary, sBest = i, x
		}
	}
	return primary, secondary, want
}

// noteFault records one shard failure, distinguishing Byzantine answers
// from transport trouble: a failure wrapping ErrAttestation means the
// shard returned bytes that contradict the pinned commitment, so it is
// distrusted for good (no reviver — a liar's health ping succeeds), while
// any other temporary failure takes the ordinary dead/revive path.
func (s *Sharded) noteFault(i int, err error) {
	if errors.Is(err, ErrAttestation) {
		s.health[i].noteByzantine(err)
		return
	}
	s.markFailure(i, err)
}

// markFailure records a temporary failure on shard i, starting the
// background reviver when the failure crossed the dead threshold. After
// Close no reviver starts — the fleet is shutting down, and a wg.Add
// racing Close's wg.Wait would be a WaitGroup misuse.
func (s *Sharded) markFailure(i int, err error) {
	if !s.health[i].noteFailure(err, s.failThreshold) {
		return
	}
	s.reviveMu.Lock()
	defer s.reviveMu.Unlock()
	if s.closed {
		return
	}
	s.wg.Add(1)
	go s.reviveLoop(i)
}

// noteFailover counts one probe operation served away from its rendezvous
// winner, globally and on the issuing view.
func (s *Sharded) noteFailover(sink *scopeSink) {
	s.failovers.Add(1)
	sink.failover()
}

// noteHedge counts one hedged request fired.
func (s *Sharded) noteHedge(sink *scopeSink) {
	s.hedges.Add(1)
	sink.hedge()
}

// noteLatency feeds one successful probe's round-trip duration on shard i
// into its latency sketch (no-op unless adaptive hedging is on).
func (s *Sharded) noteLatency(i int, d time.Duration) {
	if s.lat != nil {
		s.lat[i].observe(d)
	}
}

// hedgeDelay picks the hedge delay to use against shard i: the fixed
// WithHedge duration, or under WithAdaptiveHedge the shard's recent-p95
// clamped into [hedgeFloor, hedgeCeil] — the ceiling alone while the
// sketch is cold. 0 disables hedging for this probe.
func (s *Sharded) hedgeDelay(i int) time.Duration {
	if !s.adaptiveHedge {
		return s.hedge
	}
	d, ok := s.lat[i].quantile(0.95)
	if !ok || d > s.hedgeCeil {
		return s.hedgeCeil
	}
	if d < s.hedgeFloor {
		return s.hedgeFloor
	}
	return d
}

// N implements Source.
func (s *Sharded) N() int { return s.n }

// Degree implements Source, routed by v.
func (s *Sharded) Degree(v int) int { return s.degree(nil, v) }

func (s *Sharded) degree(sink *scopeSink, v int) int {
	k := probeKey{op: opDeg, ab: packProbe(v, 0)}
	if s.cache != nil {
		if ans, ok := s.cache.get(k); ok {
			if tr := sink.tracer(); tr != nil {
				tr.Event("probe:degree", v, "cache-hit")
			}
			return ans
		}
	}
	ans := s.scalar(sink, OpDegree, v, v, 0)
	if s.cache != nil {
		s.cache.put(k, ans)
	}
	return ans
}

// Neighbor implements Source, routed by v.
func (s *Sharded) Neighbor(v, i int) int { return s.neighbor(nil, v, i) }

func (s *Sharded) neighbor(sink *scopeSink, v, i int) int {
	if i < 0 {
		return -1
	}
	k := probeKey{op: opNbr, ab: packProbe(v, i)}
	if s.cache != nil {
		if ans, ok := s.cache.get(k); ok {
			if tr := sink.tracer(); tr != nil {
				tr.Event("probe:neighbor", v, "cache-hit")
			}
			return ans
		}
	}
	ans := s.scalar(sink, OpNeighbor, v, v, i)
	if s.cache != nil {
		s.cache.put(k, ans)
		if ans >= 0 {
			// A Neighbor answer pins down one Adjacency answer for free,
			// mirroring oracle.CachingOracle.
			s.cache.put(probeKey{op: opAdj, ab: packProbe(v, ans)}, i)
		}
	}
	return ans
}

// Adjacency implements Source, routed by the list owner u.
func (s *Sharded) Adjacency(u, v int) int { return s.adjacency(nil, u, v) }

func (s *Sharded) adjacency(sink *scopeSink, u, v int) int {
	if u < 0 || u >= s.n || v < 0 || v >= s.n {
		return -1
	}
	k := probeKey{op: opAdj, ab: packProbe(u, v)}
	if s.cache != nil {
		if ans, ok := s.cache.get(k); ok {
			if tr := sink.tracer(); tr != nil {
				tr.Event("probe:adjacency", u, "cache-hit")
			}
			return ans
		}
	}
	ans := s.scalar(sink, OpAdjacency, u, u, v)
	if s.cache != nil {
		s.cache.put(k, ans)
	}
	return ans
}

// scalar answers one scalar probe with failover: the probe is tried on
// v's highest-ranked live replica (hedged against the second-ranked one
// when a hedge delay is configured), temporary failures mark the shard
// and re-route to the next live replica, and only when no live replica
// can serve does the probe fail — a typed *ProbeError panic, the network
// source contract. Non-temporary failures (4xx: the request itself is
// wrong) propagate immediately; no replica would answer differently.
func (s *Sharded) scalar(sink *scopeSink, op string, route, a, b int) int {
	tr := sink.tracer()
	var h trace.Handle
	var tagFailover, tagHedge, tagHedgeWon, done bool
	if tr != nil {
		h = tr.Start(probeSpanOp(op), a)
		defer func() {
			tags := make([]string, 0, 4)
			if tagFailover {
				tags = append(tags, "failover")
			}
			if tagHedge {
				tags = append(tags, "hedge")
			}
			if tagHedgeWon {
				tags = append(tags, "hedge-won")
			}
			if !done {
				tags = append(tags, "error")
			}
			tr.End(h, tags...)
		}()
	}
	ps := probeScope{tc: sink.tripsCounter(), af: sink.afCounter(), pb: sink.pbCounter(), tr: tr, parent: h.ID()}
	var exclude []bool
	var lastErr error
	for tries := 0; tries <= len(s.shards); tries++ {
		primary, secondary, want := s.pickLive(route, exclude)
		if primary < 0 {
			break
		}
		var ans, served int
		var hedged bool
		var perr *ProbeError
		var failed []shardFailure
		if delay := s.hedgeDelay(primary); delay > 0 && secondary >= 0 {
			ans, served, hedged, failed, perr = s.hedgedProbe(sink, ps, primary, secondary, delay, op, a, b)
			tagHedge = tagHedge || hedged
		} else {
			served = primary
			ans, perr = s.probeOnShard(context.Background(), ps, primary, op, a, b)
			if perr != nil && perr.Temporary() {
				failed = []shardFailure{{i: primary, err: perr}}
			}
		}
		for _, f := range failed {
			s.noteFault(f.i, f.err)
		}
		if perr == nil {
			s.health[served].noteSuccess()
			// A failover is a probe served away from its rendezvous winner
			// because that winner was dead (skipped by pickLive) or erred
			// on this probe. A pure hedge win — the rendezvous shard merely
			// slow, the secondary faster — is NOT a failover: the runbook's
			// "hedges rising with no failovers → slow, not down" depends on
			// the distinction.
			primaryFailed := false
			for _, f := range failed {
				if f.i == primary {
					primaryFailed = true
				}
			}
			if primary != want || (served != primary && primaryFailed) {
				s.noteFailover(sink)
				tagFailover = true
			}
			if hedged && served != primary && !primaryFailed {
				tagHedgeWon = true
			}
			done = true
			return ans
		}
		if !perr.Temporary() {
			panic(perr)
		}
		lastErr = perr
		if exclude == nil {
			exclude = make([]bool, len(s.shards))
		}
		for _, f := range failed {
			exclude[f.i] = true
		}
	}
	if lastErr == nil {
		lastErr = errors.New("all replicas are dead")
	}
	panic(&ProbeError{Shard: s.label(), Op: op, A: a, B: b,
		Err: fmt.Errorf("no live replica can serve the probe: %w", lastErr)})
}

// shardFailure pairs a failing shard with its error for health recording.
type shardFailure struct {
	i   int
	err error
}

// hedgeResult is one contender's outcome in a hedged race.
type hedgeResult struct {
	ans   int
	err   *ProbeError
	shard int
}

// hedgedProbe races primary against secondary: secondary is fired when
// primary errors (failover) or exceeds the hedge delay (hedge); the first
// success wins and the loser's request is cancelled via context. Returns
// whether the hedge timer fired and the temporary failures observed so
// the caller can record and exclude them.
func (s *Sharded) hedgedProbe(sink *scopeSink, ps probeScope, primary, secondary int, delay time.Duration, op string, a, b int) (ans, served int, hedged bool, failed []shardFailure, perr *ProbeError) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ch := make(chan hedgeResult, 2)
	launch := func(i int) {
		go func() {
			ans, err := s.probeOnShard(ctx, ps, i, op, a, b)
			ch <- hedgeResult{ans: ans, err: err, shard: i}
		}()
	}
	launch(primary)
	timer := time.NewTimer(delay)
	defer timer.Stop()
	launched, settled := 1, 0
	// settle folds one contender's result into the race's outcome; done
	// reports the race is decided and the named returns are set.
	settle := func(res hedgeResult) (done bool) {
		settled++
		if res.err == nil {
			if settled < launched {
				// The loser is still in flight (cancelled above). Its
				// verdict matters for health: a shard that had already
				// failed hard before the cancellation (the hedge that
				// masked a refused connection) must accumulate the
				// failure, or a dead replica would hide behind the
				// hedge forever and every probe it owns would pay the
				// hedge delay. Pure cancellations are not failures.
				go s.harvestLoser(ch)
			}
			ans, served, perr = res.ans, res.shard, nil
			return true
		}
		if !res.err.Temporary() {
			ans, served, perr = 0, 0, res.err
			return true
		}
		failed = append(failed, shardFailure{i: res.shard, err: res.err})
		if launched == 1 {
			// Primary failed before the hedge delay: escalate now.
			// This is a failover, not a hedge — the timer never fired.
			launch(secondary)
			launched = 2
			return false
		}
		if settled == launched {
			ans, served, perr = 0, 0, res.err
			return true
		}
		return false
	}
	for {
		select {
		case res := <-ch:
			if settle(res) {
				return
			}
		case <-timer.C:
			if launched != 1 {
				continue
			}
			// The timer and the primary's result can become ready in the
			// same instant, and select picks between ready cases at random:
			// prefer the result, or a probe that answered exactly on time
			// would fire (and count) a spurious hedge and burn a duplicate
			// round trip on the secondary.
			select {
			case res := <-ch:
				if settle(res) {
					return
				}
				continue
			default:
			}
			s.noteHedge(sink)
			hedged = true
			launch(secondary)
			launched = 2
		}
	}
}

// harvestLoser drains a hedged race's losing result and records its
// failure when it is a genuine shard fault rather than our own
// cancellation — the path that lets a dead replica cross the failure
// threshold even though the hedge keeps winning first.
func (s *Sharded) harvestLoser(ch <-chan hedgeResult) {
	res := <-ch
	if res.err != nil && res.err.Temporary() && !errors.Is(res.err, context.Canceled) {
		s.noteFault(res.shard, res.err)
	}
}

// probeOnShard answers one scalar probe on shard i. Network shards take
// the scoped path (per-view trip attribution, context cancellation for
// hedging); other shards are called directly with *ProbeError panics
// recovered — a nested network-backed shard fails like a flat one.
func (s *Sharded) probeOnShard(ctx context.Context, ps probeScope, i int, op string, a, b int) (ans int, perr *ProbeError) {
	if s.lat != nil {
		// Feed the adaptive-hedge estimator. Registered first so it runs
		// after the recover below has settled perr: only successful probes
		// are observed — a refused connection answers in microseconds and
		// would drag the p95 toward zero, hedging everything.
		start := time.Now()
		defer func() {
			if perr == nil {
				s.lat[i].observe(time.Since(start))
			}
		}()
	}
	sh := s.shards[i]
	if sp, ok := sh.(scopedProber); ok {
		return sp.probeScoped(ctx, ps, op, a, b)
	}
	defer func() {
		if r := recover(); r != nil {
			pe, ok := r.(*ProbeError)
			if !ok {
				panic(r)
			}
			ans, perr = 0, pe
		}
	}()
	switch op {
	case OpDegree:
		return sh.Degree(a), nil
	case OpNeighbor:
		return sh.Neighbor(a, b), nil
	default:
		return sh.Adjacency(a, b), nil
	}
}

// randomEdge implements the RandomEdger capability when every shard has
// it: one uint64 drawn from the caller's PRG picks the serving replica
// among the live ones and seeds a derived PRG for the shard-side sampler.
// Shards are replicas and samplers are deterministic in their PRG, so the
// answer is a function of the caller's PRG state alone — any shard would
// answer identically — and a failing replica is simply skipped (and
// marked) in favour of the next live one.
func (s *Sharded) randomEdge(sink *scopeSink, prg *rnd.PRG) (int, int) {
	tr := sink.tracer()
	var h trace.Handle
	var tagFailover, done bool
	if tr != nil {
		h = tr.Start("probe:randomedge", -1)
		defer func() {
			tags := make([]string, 0, 2)
			if tagFailover {
				tags = append(tags, "failover")
			}
			if !done {
				tags = append(tags, "error")
			}
			tr.End(h, tags...)
		}()
	}
	ps := probeScope{tc: sink.tripsCounter(), af: sink.afCounter(), pb: sink.pbCounter(), tr: tr, parent: h.ID()}
	seed := prg.Uint64()
	derived := rnd.Seed(seed).Derive(0x5e)
	var live []int
	for i := range s.shards {
		if s.health[i].alive() {
			live = append(live, i)
		}
	}
	if len(live) == 0 {
		panic(&ProbeError{Shard: s.label(), Op: OpRandomEdge,
			Err: errors.New("no live replica can serve a random-edge probe: all replicas are dead")})
	}
	start := int(seed % uint64(len(live)))
	var lastErr error
	for k := range live {
		i := live[(start+k)%len(live)]
		u, v, perr := s.randomEdgeOnShard(ps, i, derived)
		if perr == nil {
			s.health[i].noteSuccess()
			if k > 0 {
				s.noteFailover(sink)
				tagFailover = true
			}
			done = true
			return u, v
		}
		if !perr.Temporary() {
			panic(perr)
		}
		s.noteFault(i, perr)
		lastErr = perr
	}
	panic(&ProbeError{Shard: s.label(), Op: OpRandomEdge,
		Err: fmt.Errorf("no live replica can serve a random-edge probe: %w", lastErr)})
}

func (s *Sharded) randomEdgeOnShard(ps probeScope, i int, derived rnd.Seed) (u, v int, perr *ProbeError) {
	if sp, ok := s.shards[i].(scopedProber); ok {
		// The wire seed is the first draw of the derived PRG — exactly what
		// a local sampler would consume — so local and remote replicas of a
		// deterministic sampler agree.
		return sp.randomEdgeScoped(ps, rnd.NewPRG(derived).Uint64())
	}
	re, ok := RandomEdgerOf(s.shards[i])
	if !ok {
		// Unreachable: the capability is advertised only when every shard
		// has it.
		return 0, 0, &ProbeError{Shard: s.labels[i], Op: OpRandomEdge, Err: errors.New("shard lost the RandomEdge capability")}
	}
	defer func() {
		if r := recover(); r != nil {
			pe, ok := r.(*ProbeError)
			if !ok {
				// String panics mark edgeless sources by convention and are
				// the caller's contract, not a shard failure.
				panic(r)
			}
			perr = pe
		}
	}()
	u, v = re.RandomEdge(rnd.NewPRG(derived))
	return u, v, nil
}

// ProbeBatch implements BatchProber: probes are grouped by their owning
// live shard and fanned out concurrently, one goroutine (and, on remote
// shards, one POST round trip) per shard touched. Answers are
// index-aligned with the request. The LRU tier is consulted first and
// filled from the answers. A shard group that fails temporarily is
// re-routed to the next-ranked live replicas round by round; the batch
// errors only when probes remain that no live replica can serve.
// Batches above MaxProbeBatch are rejected, matching the wire protocol's
// limit whichever backend a batch lands on.
func (s *Sharded) ProbeBatch(probes []ProbeReq) ([]int, error) {
	return s.batch(nil, probes)
}

func (s *Sharded) batch(sink *scopeSink, probes []ProbeReq) ([]int, error) {
	if len(probes) > MaxProbeBatch {
		return nil, fmt.Errorf("source: sharded: probe batch of %d exceeds the maximum %d", len(probes), MaxProbeBatch)
	}
	tr := sink.tracer()
	var h trace.Handle
	var hits int
	done := false
	if tr != nil {
		h = tr.Start("probe:batch", -1)
		defer func() {
			tags := make([]string, 0, 3)
			tags = append(tags, fmt.Sprintf("batch=%d", len(probes)))
			if hits > 0 {
				tags = append(tags, fmt.Sprintf("cache-hits=%d", hits))
			}
			if !done {
				tags = append(tags, "error")
			}
			tr.End(h, tags...)
		}()
	}
	ps := probeScope{tc: sink.tripsCounter(), af: sink.afCounter(), pb: sink.pbCounter(), tr: tr, parent: h.ID()}
	answers := make([]int, len(probes))
	var pending []int // indices still needing a backend answer
	for i, p := range probes {
		if s.cache != nil {
			if k, ok := keyOf(p); ok {
				if ans, hit := s.cache.get(k); hit {
					answers[i] = ans
					hits++
					continue
				}
			}
		}
		pending = append(pending, i)
	}
	var exclude []bool
	var lastErr error
	for round := 0; len(pending) > 0 && round <= len(s.shards); round++ {
		groups := make(map[int][]int)            // shard -> indices into probes
		wants := make(map[int]int, len(pending)) // index -> rendezvous winner
		for _, i := range pending {
			primary, _, want := s.pickLive(probes[i].A, exclude)
			if primary < 0 {
				if lastErr == nil {
					lastErr = errors.New("all replicas are dead")
				}
				return nil, &ProbeError{Shard: s.label(), Op: "batch", A: len(probes),
					Err: fmt.Errorf("no live replica can serve the batch: %w", lastErr)}
			}
			groups[primary] = append(groups[primary], i)
			wants[i] = want
		}
		var wg sync.WaitGroup
		errs := make([]error, len(s.shards))
		for shard, idxs := range groups {
			wg.Add(1)
			go func(shard int, idxs []int) {
				defer wg.Done()
				errs[shard] = s.batchOnShard(ps, shard, idxs, probes, answers)
			}(shard, idxs)
		}
		wg.Wait()
		pending = pending[:0]
		for shard, idxs := range groups {
			err := errs[shard]
			if err == nil {
				s.health[shard].noteSuccess()
				for _, i := range idxs {
					if shard != wants[i] {
						s.noteFailover(sink)
					}
				}
				continue
			}
			if !temporaryProbeErr(err) {
				return nil, err
			}
			s.noteFault(shard, err)
			lastErr = err
			if exclude == nil {
				exclude = make([]bool, len(s.shards))
			}
			exclude[shard] = true
			pending = append(pending, idxs...)
		}
	}
	if len(pending) > 0 {
		return nil, &ProbeError{Shard: s.label(), Op: "batch", A: len(probes),
			Err: fmt.Errorf("no live replica can serve the batch: %w", lastErr)}
	}
	// Cache commit happens only here, after every group verified and
	// succeeded — never inside the per-shard round. A batch that errors
	// mid-way (one group answered, another group's shard lied or died)
	// must not leak its answered cells into the LRU: under attestation the
	// lying group's answers were discarded before reaching answers[], and
	// the all-or-nothing commit keeps the error path from publishing the
	// partial rest.
	if s.cache != nil {
		for i, p := range probes {
			if k, ok := keyOf(p); ok {
				s.cache.put(k, answers[i])
			}
		}
	}
	done = true
	return answers, nil
}

// temporaryProbeErr reports whether a batch failure justifies re-routing:
// transport and 5xx failures do, protocol-level errors (the request is
// wrong) do not.
func temporaryProbeErr(err error) bool {
	var pe *ProbeError
	if errors.As(err, &pe) {
		return pe.Temporary()
	}
	return false
}

// batchOnShard answers the probes at idxs against one shard, using its
// batch capability when it has one.
func (s *Sharded) batchOnShard(ps probeScope, shard int, idxs []int, probes []ProbeReq, answers []int) (err error) {
	if s.lat != nil {
		start := time.Now()
		defer func() {
			if err == nil {
				s.lat[shard].observe(time.Since(start))
			}
		}()
	}
	sh := s.shards[shard]
	sub := make([]ProbeReq, len(idxs))
	for j, i := range idxs {
		sub[j] = probes[i]
	}
	var got []int
	switch b := sh.(type) {
	case scopedProber:
		got, err = b.batchScoped(ps, sub)
	case BatchProber:
		got, err = recoverBatch(func() ([]int, error) { return b.ProbeBatch(sub) })
	default:
		got, err = recoverBatch(func() ([]int, error) {
			out := make([]int, len(sub))
			for j, p := range sub {
				ans, status, msg := answerProbe(sh, p.Op, p.A, p.B)
				if status != 0 {
					return nil, fmt.Errorf("source: sharded: probe %d: %s", idxs[j], msg)
				}
				out[j] = ans
			}
			return out, nil
		})
	}
	if err != nil {
		return err
	}
	if len(got) != len(sub) {
		return fmt.Errorf("source: sharded: shard %s answered %d of %d probes", s.labels[shard], len(got), len(sub))
	}
	for j, i := range idxs {
		answers[i] = got[j]
	}
	return nil
}

// fetchRows implements the RowFetcher capability when every shard has it:
// vertices are grouped by their owning live shard and fanned out
// concurrently, failing groups re-routed round by round exactly like
// batch(). Rows are index-aligned with vs; answers never differ between
// replicas, so failover and hedging semantics carry over unchanged.
func (s *Sharded) fetchRows(sink *scopeSink, vs []int) ([][]int, error) {
	if len(vs) > MaxProbeBatch {
		return nil, fmt.Errorf("source: sharded: rowfull batch of %d exceeds the maximum %d", len(vs), MaxProbeBatch)
	}
	if len(vs) == 0 {
		return nil, nil
	}
	tr := sink.tracer()
	var h trace.Handle
	done := false
	if tr != nil {
		h = tr.Start("probe:rowfull", -1)
		defer func() {
			tags := []string{fmt.Sprintf("batch=%d", len(vs))}
			if !done {
				tags = append(tags, "error")
			}
			tr.End(h, tags...)
		}()
	}
	ps := probeScope{tc: sink.tripsCounter(), af: sink.afCounter(), pb: sink.pbCounter(), tr: tr, parent: h.ID()}
	rows := make([][]int, len(vs))
	pending := make([]int, len(vs)) // indices into vs still unanswered
	for i := range vs {
		pending[i] = i
	}
	var exclude []bool
	var lastErr error
	for round := 0; len(pending) > 0 && round <= len(s.shards); round++ {
		groups := make(map[int][]int)            // shard -> indices into vs
		wants := make(map[int]int, len(pending)) // index -> rendezvous winner
		for _, i := range pending {
			primary, _, want := s.pickLive(vs[i], exclude)
			if primary < 0 {
				if lastErr == nil {
					lastErr = errors.New("all replicas are dead")
				}
				return nil, &ProbeError{Shard: s.label(), Op: OpRowFull, A: len(vs),
					Err: fmt.Errorf("no live replica can serve the rowfull batch: %w", lastErr)}
			}
			groups[primary] = append(groups[primary], i)
			wants[i] = want
		}
		var wg sync.WaitGroup
		errs := make([]error, len(s.shards))
		for shard, idxs := range groups {
			wg.Add(1)
			go func(shard int, idxs []int) {
				defer wg.Done()
				errs[shard] = s.rowsOnShard(ps, shard, idxs, vs, rows)
			}(shard, idxs)
		}
		wg.Wait()
		pending = pending[:0]
		for shard, idxs := range groups {
			err := errs[shard]
			if err == nil {
				s.health[shard].noteSuccess()
				for _, i := range idxs {
					if shard != wants[i] {
						s.noteFailover(sink)
					}
				}
				continue
			}
			if !temporaryProbeErr(err) {
				return nil, err
			}
			s.noteFault(shard, err)
			lastErr = err
			if exclude == nil {
				exclude = make([]bool, len(s.shards))
			}
			exclude[shard] = true
			pending = append(pending, idxs...)
		}
	}
	if len(pending) > 0 {
		return nil, &ProbeError{Shard: s.label(), Op: OpRowFull, A: len(vs),
			Err: fmt.Errorf("no live replica can serve the rowfull batch: %w", lastErr)}
	}
	if s.cache != nil {
		// A full row pins down its degree, every neighbor slot and the
		// matching adjacency answers — the same free entries neighbor()
		// caches, just a whole row at a time.
		for i, v := range vs {
			row := rows[i]
			s.cache.put(probeKey{op: opDeg, ab: packProbe(v, 0)}, len(row))
			for j, u := range row {
				s.cache.put(probeKey{op: opNbr, ab: packProbe(v, j)}, u)
				s.cache.put(probeKey{op: opAdj, ab: packProbe(v, u)}, j)
			}
		}
	}
	done = true
	return rows, nil
}

// rowsOnShard fetches the rows of vs[idxs] from one shard, scattering
// them into rows.
func (s *Sharded) rowsOnShard(ps probeScope, shard int, idxs []int, vs []int, rows [][]int) (err error) {
	if s.lat != nil {
		start := time.Now()
		defer func() {
			if err == nil {
				s.lat[shard].observe(time.Since(start))
			}
		}()
	}
	sub := make([]int, len(idxs))
	for j, i := range idxs {
		sub[j] = vs[i]
	}
	var got [][]int
	if sp, ok := s.shards[shard].(scopedProber); ok {
		got, err = sp.fetchRowsScoped(ps, sub)
	} else {
		rf, ok := RowFetcherOf(s.shards[shard])
		if !ok {
			// Unreachable: the capability is advertised only when every
			// shard has it.
			return &ProbeError{Shard: s.labels[shard], Op: OpRowFull, Err: errors.New("shard lost the RowFetcher capability")}
		}
		got, err = recoverRows(func() ([][]int, error) { return rf.FetchRows(sub) })
	}
	if err != nil {
		return err
	}
	if len(got) != len(sub) {
		return fmt.Errorf("source: sharded: shard %s answered %d of %d rows", s.labels[shard], len(got), len(sub))
	}
	for j, i := range idxs {
		rows[i] = got[j]
	}
	return nil
}

// recoverRows converts a *ProbeError panic from a shard's row-fetch path
// into an error; anything else propagates.
func recoverRows(fn func() ([][]int, error)) (got [][]int, err error) {
	defer func() {
		if r := recover(); r != nil {
			pe, ok := r.(*ProbeError)
			if !ok {
				panic(r)
			}
			got, err = nil, pe
		}
	}()
	return fn()
}

// recoverBatch converts a *ProbeError panic from a shard's batch or
// scalar path into an error; anything else propagates.
func recoverBatch(fn func() ([]int, error)) (got []int, err error) {
	defer func() {
		if r := recover(); r != nil {
			pe, ok := r.(*ProbeError)
			if !ok {
				panic(r)
			}
			got, err = nil, pe
		}
	}()
	return fn()
}

// Close stops the background revivers and closes every shard holding
// external resources. Idempotent; repeated calls return the first result.
func (s *Sharded) Close() error {
	s.closeOnce.Do(func() {
		s.reviveMu.Lock()
		s.closed = true
		s.reviveMu.Unlock()
		close(s.stop)
		s.wg.Wait()
		var errs []error
		for _, sh := range s.shards {
			if c, ok := sh.(Closer); ok {
				errs = append(errs, c.Close())
			}
		}
		s.closeErr = errors.Join(errs...)
	})
	return s.closeErr
}

// shardedScope is the TripScoper view of a fleet: same shards, same
// cache, same health machine — round trips, failovers and hedges counted
// into the view's own sink, spans recorded into the view's tracer when
// one is set.
type shardedScope struct {
	s    *Sharded
	sink scopeSink
}

var (
	_ Source           = (*shardedScope)(nil)
	_ CapSource        = (*shardedScope)(nil)
	_ BatchProber      = (*shardedScope)(nil)
	_ RoundTripCounter = (*shardedScope)(nil)
	_ FailoverCounter  = (*shardedScope)(nil)
	_ TracerSetter     = (*shardedScope)(nil)
	_ AttestCounter    = (*shardedScope)(nil)
)

// SetTracer implements TracerSetter: subsequent probes through this view
// record probe spans (with cache-hit/failover/hedge outcome tags) and
// per-round-trip rpc spans into tr. Set it before probing; the view is
// per-request, not concurrent with setup.
func (sc *shardedScope) SetTracer(tr *trace.Tracer) { sc.sink.tr = tr }

func (sc *shardedScope) N() int { return sc.s.n }

func (sc *shardedScope) Degree(v int) int { return sc.s.degree(&sc.sink, v) }

func (sc *shardedScope) Neighbor(v, i int) int { return sc.s.neighbor(&sc.sink, v, i) }

func (sc *shardedScope) Adjacency(u, v int) int { return sc.s.adjacency(&sc.sink, u, v) }

func (sc *shardedScope) ProbeBatch(probes []ProbeReq) ([]int, error) {
	return sc.s.batch(&sc.sink, probes)
}

// Caps forwards the fleet's capability view with RandomEdge and FetchRows
// attributed to this scope.
func (sc *shardedScope) Caps() Caps {
	c := sc.s.Caps()
	if c.RandomEdge != nil {
		c.RandomEdge = func(prg *rnd.PRG) (int, int) { return sc.s.randomEdge(&sc.sink, prg) }
	}
	if c.FetchRows != nil {
		c.FetchRows = func(vs []int) ([][]int, error) { return sc.s.fetchRows(&sc.sink, vs) }
	}
	return c
}

// RoundTrips reports only the shard requests issued through this view.
func (sc *shardedScope) RoundTrips() uint64 { return sc.sink.trips.load() }

// Failovers reports only the failovers of probes issued through this view.
func (sc *shardedScope) Failovers() uint64 { return sc.sink.fo.Load() }

// Hedges reports only the hedges fired for probes issued through this view.
func (sc *shardedScope) Hedges() uint64 { return sc.sink.he.Load() }

// AttestFailures reports only the verification failures detected on
// probes issued through this view.
func (sc *shardedScope) AttestFailures() uint64 { return sc.sink.af.load() }

// ProofBytes reports only the proof bytes transported for probes issued
// through this view.
func (sc *shardedScope) ProofBytes() uint64 { return sc.sink.pb.load() }

// probe-answer LRU ------------------------------------------------------

const (
	opDeg uint8 = iota
	opNbr
	opAdj
)

type probeKey struct {
	op uint8
	ab uint64
}

// packProbe packs a probe's operands like oracle.cacheKey (operands are
// vertex IDs or list indices, both under 2^32).
func packProbe(a, b int) uint64 { return uint64(uint32(a))<<32 | uint64(uint32(b)) }

// keyOf maps a wire probe to its cache key; unknown ops are uncacheable.
func keyOf(p ProbeReq) (probeKey, bool) {
	switch p.Op {
	case OpDegree:
		return probeKey{op: opDeg, ab: packProbe(p.A, 0)}, true
	case OpNeighbor:
		return probeKey{op: opNbr, ab: packProbe(p.A, p.B)}, true
	case OpAdjacency:
		return probeKey{op: opAdj, ab: packProbe(p.A, p.B)}, true
	}
	return probeKey{}, false
}

// probeLRU is a bounded, mutex-guarded LRU over probe answers. Answers
// are pure functions of the fixed graph, so staleness cannot exist;
// eviction only trades hit rate for memory.
type probeLRU struct {
	mu      sync.Mutex
	cap     int
	entries map[probeKey]*list.Element
	order   *list.List // front = most recently used
}

type lruEntry struct {
	k   probeKey
	ans int
}

func newProbeLRU(capacity int) *probeLRU {
	// The map grows with actual residency; pre-sizing to the full
	// capacity would turn a large cache=N spec into an eager multi-GB
	// allocation before the first probe is ever cached.
	return &probeLRU{
		cap:     capacity,
		entries: make(map[probeKey]*list.Element, min(capacity, 1<<16)),
		order:   list.New(),
	}
}

func (c *probeLRU) get(k probeKey) (int, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[k]
	if !ok {
		return 0, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).ans, true
}

func (c *probeLRU) put(k probeKey, ans int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[k]; ok {
		el.Value.(*lruEntry).ans = ans
		c.order.MoveToFront(el)
		return
	}
	c.entries[k] = c.order.PushFront(&lruEntry{k: k, ans: ans})
	if c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*lruEntry).k)
	}
}

// lruLen reports the resident entry count (tests).
func (c *probeLRU) lruLen() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
