//go:build !unix

package source

// Fallback for platforms without a usable mmap: OpenCSRMmap fails with
// ErrMmapUnsupported and callers (the csr:...?mmap=1 spec knob) degrade
// to the cold positioned-read CSR backend.

const mmapSupported = false

func mmapFile(fd uintptr, length int) ([]byte, error) { return nil, ErrMmapUnsupported }

func munmapFile(data []byte) error { return nil }
