package source

import (
	"testing"

	"lca/internal/rnd"
)

// bareSource strips every optional capability from a Source: only the
// four probes survive the embedded-interface method set.
type bareSource struct{ Source }

func TestRemoteRandomEdgeCapabilityMirrorsShard(t *testing.T) {
	withRE := openRemoteShard(t, Ring(40))
	if _, ok := RandomEdgerOf(withRE); !ok {
		t.Fatal("remote over a RandomEdger backend lacks the capability")
	}
	withoutRE := openRemoteShard(t, bareSource{Ring(40)})
	if _, ok := RandomEdgerOf(withoutRE); ok {
		t.Fatal("remote invented the RandomEdge capability")
	}
}

func TestRemoteRandomEdgeDeterministicAndValid(t *testing.T) {
	backing := Ring(40)
	r, ok := RandomEdgerOf(openRemoteShard(t, backing))
	if !ok {
		t.Fatal("remote over a RandomEdger backend lacks the capability")
	}
	var first []int
	for pass := 0; pass < 2; pass++ {
		prg := rnd.NewPRG(17)
		var got []int
		for i := 0; i < 20; i++ {
			u, v := r.RandomEdge(prg)
			if u >= v {
				t.Fatalf("RandomEdge answered (%d,%d), want canonical u < v", u, v)
			}
			if backing.Adjacency(u, v) < 0 {
				t.Fatalf("RandomEdge answered non-edge (%d,%d)", u, v)
			}
			got = append(got, u, v)
		}
		if pass == 0 {
			first = got
			continue
		}
		for i := range first {
			if got[i] != first[i] {
				t.Fatalf("pass 2 diverged at %d: %d vs %d (equal seeds must answer equal edges)", i, got[i], first[i])
			}
		}
	}
}

func TestShardedRandomEdgeCapability(t *testing.T) {
	a := openRemoteShard(t, Ring(40))
	b := openRemoteShard(t, Ring(40))
	s, err := NewSharded([]Source{a, b})
	if err != nil {
		t.Fatal(err)
	}
	re, ok := RandomEdgerOf(s)
	if !ok {
		t.Fatal("sharded fleet of RandomEdger shards lacks the capability")
	}
	backing := Ring(40)
	var first []int
	for pass := 0; pass < 2; pass++ {
		prg := rnd.NewPRG(23)
		var got []int
		for i := 0; i < 20; i++ {
			u, v := re.RandomEdge(prg)
			if backing.Adjacency(u, v) < 0 {
				t.Fatalf("sharded RandomEdge answered non-edge (%d,%d)", u, v)
			}
			got = append(got, u, v)
		}
		if pass == 0 {
			first = got
			continue
		}
		for i := range first {
			if got[i] != first[i] {
				t.Fatalf("sharded pass 2 diverged at %d", i)
			}
		}
	}
}

func TestShardedRandomEdgeRequiresEveryShard(t *testing.T) {
	s, err := NewSharded([]Source{Ring(40), bareSource{Ring(40)}})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := RandomEdgerOf(s); ok {
		t.Fatal("sharded advertised RandomEdge with a capability-less shard")
	}
}

func TestRemoteRoundTripsCountRequests(t *testing.T) {
	src := openRemoteShard(t, Ring(40))
	rt := src.(RoundTripCounter)
	base := rt.RoundTrips() // the meta fetch
	src.Degree(3)
	src.Neighbor(3, 0)
	src.Adjacency(3, 4)
	if got := rt.RoundTrips() - base; got != 3 {
		t.Fatalf("3 scalar probes counted %d round trips", got)
	}
	bp := src.(BatchProber)
	before := rt.RoundTrips()
	if _, err := bp.ProbeBatch([]ProbeReq{{Op: OpDegree, A: 1}, {Op: OpNeighbor, A: 1, B: 0}}); err != nil {
		t.Fatal(err)
	}
	if got := rt.RoundTrips() - before; got != 1 {
		t.Fatalf("one batch counted %d round trips, want 1", got)
	}
}

func TestShardedRoundTripsSumShards(t *testing.T) {
	a := openRemoteShard(t, Ring(40))
	b := openRemoteShard(t, Ring(40))
	s, err := NewSharded([]Source{a, b})
	if err != nil {
		t.Fatal(err)
	}
	rt := s.(RoundTripCounter)
	base := rt.RoundTrips()
	for v := 0; v < 10; v++ {
		s.Degree(v)
	}
	if got := rt.RoundTrips() - base; got != 10 {
		t.Fatalf("10 routed probes counted %d round trips", got)
	}
}

func TestRandomEdgeNotBatchable(t *testing.T) {
	src := openRemoteShard(t, Ring(40))
	if _, err := src.(BatchProber).ProbeBatch([]ProbeReq{{Op: OpRandomEdge, A: 0}}); err == nil {
		t.Fatal("randomedge accepted in a batch")
	}
}
