package source

// The graph-spec grammar: one string names any backend, so every surface
// (Session, HTTP server, CLIs) opens sources uniformly. A spec is either
//
//	family:key=value,key=value,...   e.g. ring:n=1000000000
//	family:path                      e.g. csr:web.csr, edgelist:g.txt
//	path                             bare path, treated as edgelist:path
//	remote:http://host:port[#name]   probe a shard over HTTP
//	sharded:spec;spec;...            consistent-hash across replica shards
//
// Integer values accept underscores and integral e-notation
// (n=1_000_000_000, n=1e9). A seed=... key overrides the seed passed to
// Parse for the families that consume one. The sharded list takes any
// sub-specs plus optional cache=N (client-side probe LRU) and
// hedge=DURATION (hedged probes, e.g. hedge=20ms) or hedge=adaptive
// (per-shard p95-derived delay, bounded by hedgefloor=/hedgeceil=)
// items, ";"-separated — or ","-separated when no sub-spec contains a
// comma, so sharded:remote:http://a,remote:http://b works.

import (
	"errors"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"lca/internal/gen"
	"lca/internal/graph"
	"lca/internal/rnd"
)

// Family describes one spec-addressable backend family.
type Family struct {
	// Name is the spec prefix.
	Name string
	// Usage is the one-line argument summary surfaced by CLIs and /sources.
	Usage string
	// Keys are the accepted argument names (seed is accepted everywhere);
	// an unknown key is an error, never silently ignored.
	Keys []string
	// Open constructs the source. For key=value families args holds the
	// parsed pairs; for path families args holds {"path": ...}.
	Open func(args map[string]string, seed rnd.Seed) (Source, error)
}

// pathFamilies take a single positional argument (a path, a URL, a shard
// list) instead of key=value pairs.
var pathFamilies = map[string]bool{"edgelist": true, "csr": true, "remote": true, "sharded": true}

var families = map[string]*Family{
	"ring": {
		Name:  "ring",
		Keys:  []string{"n"},
		Usage: "ring:n=N — the n-cycle (implicit, O(1) state)",
		Open: func(args map[string]string, _ rnd.Seed) (Source, error) {
			n, err := intArg(args, "n", -1)
			if err != nil {
				return nil, err
			}
			return Ring(n), nil
		},
	},
	"grid": {
		Name:  "grid",
		Keys:  []string{"rows", "cols"},
		Usage: "grid:rows=R,cols=C — the R x C grid (implicit)",
		Open: func(args map[string]string, _ rnd.Seed) (Source, error) {
			rows, cols, err := extentArgs(args)
			if err != nil {
				return nil, err
			}
			return Grid(rows, cols), nil
		},
	},
	"torus": {
		Name:  "torus",
		Keys:  []string{"rows", "cols"},
		Usage: "torus:rows=R,cols=C — the R x C torus (implicit)",
		Open: func(args map[string]string, _ rnd.Seed) (Source, error) {
			rows, cols, err := extentArgs(args)
			if err != nil {
				return nil, err
			}
			return Torus(rows, cols), nil
		},
	},
	"circulant": {
		Name:  "circulant",
		Keys:  []string{"n", "d"},
		Usage: "circulant:n=N,d=D[,seed=S] — hash-based d-regular circulant (implicit; d even)",
		Open: func(args map[string]string, seed rnd.Seed) (Source, error) {
			n, err := intArg(args, "n", -1)
			if err != nil {
				return nil, err
			}
			d, err := intArg(args, "d", -1)
			if err != nil {
				return nil, err
			}
			offsets, err := gen.CirculantOffsets(n, d, seed)
			if err != nil {
				return nil, err
			}
			return Circulant(n, offsets)
		},
	},
	"blockrandom": {
		Name:  "blockrandom",
		Keys:  []string{"n", "d", "block"},
		Usage: "blockrandom:n=N,d=D[,block=B][,seed=S] — per-block G(B, d/(B-1)) random graph (implicit; block default 64)",
		Open: func(args map[string]string, seed rnd.Seed) (Source, error) {
			n, err := intArg(args, "n", -1)
			if err != nil {
				return nil, err
			}
			d, err := floatArg(args, "d", -1)
			if err != nil {
				return nil, err
			}
			block, err := intArg(args, "block", 64)
			if err != nil {
				return nil, err
			}
			if block < 2 || block > maxSpecBlock {
				return nil, fmt.Errorf("blockrandom block must be in [2,%d], got %d", maxSpecBlock, block)
			}
			if math.IsNaN(d) || math.IsInf(d, 0) || d < 0 {
				return nil, fmt.Errorf("blockrandom degree %q must be a finite non-negative number", args["d"])
			}
			return BlockRandom(n, block, d, seed), nil
		},
	},
	"edgelist": {
		Name:  "edgelist",
		Usage: "edgelist:path (or a bare path) — edge-list text file, loaded in memory",
		Open: func(args map[string]string, _ rnd.Seed) (Source, error) {
			f, err := os.Open(args["path"])
			if err != nil {
				return nil, err
			}
			defer f.Close()
			g, err := graph.ReadEdgeList(f)
			if err != nil {
				return nil, fmt.Errorf("source: %s: %w", args["path"], err)
			}
			return g, nil
		},
	},
	"csr": {
		Name: "csr",
		Usage: "csr:path[?mmap=1] — CSR binary file, probed cold from disk " +
			"(mmap=1 maps it read-only instead, falling back to cold reads where mmap is unavailable)",
		Open: func(args map[string]string, _ rnd.Seed) (Source, error) {
			return openCSRSpec(args["path"])
		},
	},
	"remote": {
		Name:  "remote",
		Usage: "remote:http://host:port[#name] — probe another lcaserve shard over HTTP",
		Open: func(args map[string]string, _ rnd.Seed) (Source, error) {
			return OpenRemote(args["path"])
		},
	},
	"sharded": {
		Name: "sharded",
		Usage: "sharded:spec;spec;... — consistent-hash probes across replica shards with failover " +
			"(any sub-specs; ';' or ',' separated; cache=N adds a client-side LRU, hedge=20ms hedges slow probes, " +
			"hedge=adaptive derives the delay from each shard's recent p95, bounded by hedgefloor=/hedgeceil=)",
		// Open is assigned in init: it recurses into Parse, and a literal
		// here would be an initialization cycle.
	},
}

func init() { families["sharded"].Open = openShardedSpec }

// maxSpecBlock caps the blockrandom block size reachable through a spec:
// probes scan the block, so an absurd block turns O(1) probes into O(n)
// scans — a spec typo must not do that silently.
const maxSpecBlock = 1 << 20

// extentArgs parses the rows/cols arguments shared by grid and torus,
// refusing extent products that overflow the vertex space (the post-parse
// N() check cannot catch a product that wrapped negative).
func extentArgs(args map[string]string) (rows, cols int, err error) {
	if rows, err = intArg(args, "rows", -1); err != nil {
		return 0, 0, err
	}
	if cols, err = intArg(args, "cols", -1); err != nil {
		return 0, 0, err
	}
	if rows > 0 && cols > MaxVertices/rows {
		return 0, 0, fmt.Errorf("%d x %d vertices overflow the supported maximum %d", rows, cols, MaxVertices)
	}
	return rows, cols, nil
}

// splitShardSpecs splits a sharded spec body into items: on ";" when one
// is present (required when sub-specs themselves contain commas, like
// grid:rows=3,cols=3), else on "," per the compact remote-list form.
func splitShardSpecs(rest string) []string {
	sep := ","
	if strings.Contains(rest, ";") {
		sep = ";"
	}
	return strings.Split(rest, sep)
}

// openShardedSpec opens every sub-spec of a sharded: list and combines
// them; already-open shards are closed again on any failure.
func openShardedSpec(args map[string]string, seed rnd.Seed) (Source, error) {
	var shards []Source
	closeAll := func() {
		for _, sh := range shards {
			if c, ok := sh.(Closer); ok {
				_ = c.Close()
			}
		}
	}
	var opts []ShardedOption
	var adaptive bool
	var hedgeFloor, hedgeCeil time.Duration
	hedgeBound := func(name, raw string) (time.Duration, error) {
		d, err := time.ParseDuration(raw)
		if err != nil {
			return 0, fmt.Errorf("%s: %w", name, err)
		}
		if d <= 0 || d > time.Minute {
			return 0, fmt.Errorf("%s %s must be in (0s,1m]", name, d)
		}
		return d, nil
	}
	for _, item := range splitShardSpecs(args["path"]) {
		item = strings.TrimSpace(item)
		if item == "" {
			closeAll()
			return nil, fmt.Errorf("empty shard spec in list %q", args["path"])
		}
		if raw, ok := strings.CutPrefix(item, "cache="); ok {
			entries, err := parseIntFlex(raw)
			if err != nil {
				closeAll()
				return nil, fmt.Errorf("cache size: %w", err)
			}
			if entries > 1<<30 {
				closeAll()
				return nil, fmt.Errorf("cache size %d exceeds the maximum %d entries", entries, 1<<30)
			}
			opts = append(opts, WithProbeCache(int(entries)))
			continue
		}
		if raw, ok := strings.CutPrefix(item, "hedge="); ok {
			if raw == "adaptive" {
				adaptive = true
				continue
			}
			d, err := hedgeBound("hedge delay", raw)
			if err != nil {
				closeAll()
				return nil, err
			}
			opts = append(opts, WithHedge(d))
			continue
		}
		if raw, ok := strings.CutPrefix(item, "hedgefloor="); ok {
			d, err := hedgeBound("hedge floor", raw)
			if err != nil {
				closeAll()
				return nil, err
			}
			hedgeFloor = d
			continue
		}
		if raw, ok := strings.CutPrefix(item, "hedgeceil="); ok {
			d, err := hedgeBound("hedge ceiling", raw)
			if err != nil {
				closeAll()
				return nil, err
			}
			hedgeCeil = d
			continue
		}
		sh, err := Parse(item, seed)
		if err != nil {
			closeAll()
			return nil, err
		}
		shards = append(shards, sh)
	}
	if adaptive {
		opts = append(opts, WithAdaptiveHedge(hedgeFloor, hedgeCeil))
	} else if hedgeFloor > 0 || hedgeCeil > 0 {
		closeAll()
		return nil, fmt.Errorf("hedgefloor=/hedgeceil= require hedge=adaptive")
	}
	src, err := NewSharded(shards, opts...)
	if err != nil {
		closeAll()
		return nil, err
	}
	return src, nil
}

// openCSRSpec opens a csr: spec body, which is a path with an optional
// "?knob=value&knob=value" query suffix. The only knob today is mmap=0|1;
// an unknown knob is an error naming the offending token — the same
// hardening the sharded #root= fragment got — because a typo silently
// opening the cold reader would hide exactly the speedup the knob exists
// to switch on.
func openCSRSpec(rest string) (Source, error) {
	path, query, hasQuery := strings.Cut(rest, "?")
	useMmap := false
	if hasQuery {
		seen := map[string]bool{}
		for _, kv := range strings.Split(query, "&") {
			k, v, ok := strings.Cut(kv, "=")
			if !ok || k == "" {
				return nil, fmt.Errorf("csr knob %q: want knob=value", kv)
			}
			if seen[k] {
				return nil, fmt.Errorf("csr knob %q given more than once", k)
			}
			seen[k] = true
			switch k {
			case "mmap":
				switch v {
				case "1":
					useMmap = true
				case "0":
					useMmap = false
				default:
					return nil, fmt.Errorf("csr knob mmap=%q: want 0 or 1", v)
				}
			default:
				// A typo must never degrade into a silently ignored knob.
				return nil, fmt.Errorf("unknown csr knob %q (accepted: mmap)", k)
			}
		}
	}
	if useMmap {
		src, err := OpenCSRMmap(path)
		if err == nil {
			return src, nil
		}
		if errors.Is(err, ErrMmapUnsupported) {
			return OpenCSR(path)
		}
		return nil, err
	}
	return OpenCSR(path)
}

// aliases maps alternative family names onto catalog entries.
var aliases = map[string]string{
	"cycle": "ring",
	"graph": "edgelist",
	"file":  "edgelist",
}

// Families lists the spec-addressable families, sorted by name.
func Families() []Family {
	out := make([]Family, 0, len(families))
	for _, f := range families {
		out = append(out, *f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// FamilyNames lists the family names, sorted.
func FamilyNames() []string {
	fs := Families()
	out := make([]string, len(fs))
	for i, f := range fs {
		out[i] = f.Name
	}
	return out
}

// Parse opens the source a spec describes. seed is the default randomness
// for seed-consuming families; a seed=... key in the spec overrides it. A
// bare string with no family prefix is treated as an edge-list file path.
func Parse(spec string, seed rnd.Seed) (Source, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, fmt.Errorf("source: empty spec")
	}
	name, rest, ok := strings.Cut(spec, ":")
	if !ok {
		name, rest = "edgelist", spec
	}
	canon := name
	if a, isAlias := aliases[canon]; isAlias {
		canon = a
	}
	fam, known := families[canon]
	if !known {
		return nil, fmt.Errorf("source: unknown family %q in spec %q (known: %s; prefix a file path with edgelist: or csr:)",
			name, spec, strings.Join(FamilyNames(), ", "))
	}
	if pathFamilies[canon] {
		if rest == "" {
			return nil, fmt.Errorf("source: spec %q: missing %s argument", spec, fam.Name)
		}
		src, err := fam.Open(map[string]string{"path": rest}, seed)
		if err != nil {
			return nil, specErr(spec, err)
		}
		return checkParsed(spec, src)
	}
	args, err := parseArgs(rest)
	if err != nil {
		return nil, fmt.Errorf("source: spec %q: %w", spec, err)
	}
	if raw, hasSeed := args["seed"]; hasSeed {
		s, err := parseIntFlex(raw)
		if err != nil {
			return nil, fmt.Errorf("source: spec %q: seed: %w", spec, err)
		}
		seed = rnd.Seed(s)
		delete(args, "seed")
	}
	for key := range args {
		known := false
		for _, k := range fam.Keys {
			if k == key {
				known = true
				break
			}
		}
		if !known {
			// A typo must never degrade into a silently ignored argument.
			return nil, fmt.Errorf("source: spec %q: unknown argument %q for family %q (accepted: %s, seed)",
				spec, key, fam.Name, strings.Join(fam.Keys, ", "))
		}
	}
	src, err := fam.Open(args, seed)
	if err != nil {
		return nil, specErr(spec, err)
	}
	return checkParsed(spec, src)
}

// specErr wraps a family-open failure with the offending spec. Errors
// from nested Parse calls (sharded: sub-specs) already name the precise
// offending sub-spec, which is the more useful token — they pass through
// unwrapped instead of accumulating one prefix per nesting level.
func specErr(spec string, err error) error {
	if strings.HasPrefix(err.Error(), "source: spec ") {
		return err
	}
	return fmt.Errorf("source: spec %q: %w", spec, err)
}

// checkParsed applies the post-open invariants every spec-opened source
// must satisfy. Vertex IDs must fit the 32-bit packed-key space the
// library's memo tables and edge keys use (see Source's doc); a bigger
// source would answer probes fine and then silently collide in algorithm
// memos. A negative count marks a broken backend (an overflow the family
// failed to guard).
func checkParsed(spec string, src Source) (Source, error) {
	n := src.N()
	if n >= 0 && n <= MaxVertices {
		return src, nil
	}
	if c, ok := src.(Closer); ok {
		_ = c.Close()
	}
	if n < 0 {
		return nil, fmt.Errorf("source: spec %q yields a negative vertex count %d", spec, n)
	}
	return nil, fmt.Errorf("source: spec %q yields n=%d vertices, above the supported maximum %d", spec, n, MaxVertices)
}

// parseArgs splits "k=v,k=v" into a map; empty input is an empty map.
func parseArgs(s string) (map[string]string, error) {
	args := map[string]string{}
	if strings.TrimSpace(s) == "" {
		return args, nil
	}
	for _, kv := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok || k == "" {
			return nil, fmt.Errorf("argument %q: want key=value", kv)
		}
		if _, dup := args[k]; dup {
			return nil, fmt.Errorf("argument %q given more than once", k)
		}
		args[k] = v
	}
	return args, nil
}

// intArg fetches and parses an integer argument; def < 0 marks it
// required.
func intArg(args map[string]string, key string, def int) (int, error) {
	raw, ok := args[key]
	if !ok {
		if def < 0 {
			return 0, fmt.Errorf("missing required argument %q", key)
		}
		return def, nil
	}
	v, err := parseIntFlex(raw)
	if err != nil {
		return 0, fmt.Errorf("argument %q: %w", key, err)
	}
	if v > math.MaxInt {
		return 0, fmt.Errorf("argument %q: %s overflows int", key, raw)
	}
	return int(v), nil
}

// floatArg fetches and parses a float argument; def < 0 marks it required.
func floatArg(args map[string]string, key string, def float64) (float64, error) {
	raw, ok := args[key]
	if !ok {
		if def < 0 {
			return 0, fmt.Errorf("missing required argument %q", key)
		}
		return def, nil
	}
	v, err := strconv.ParseFloat(raw, 64)
	if err != nil {
		return 0, fmt.Errorf("argument %q: %q is not a number", key, raw)
	}
	return v, nil
}

// parseIntFlex parses a non-negative integer, accepting underscore
// separators and integral e-notation (1_000_000, 1e9).
func parseIntFlex(raw string) (uint64, error) {
	s := strings.ReplaceAll(strings.TrimSpace(raw), "_", "")
	if v, err := strconv.ParseUint(s, 10, 64); err == nil {
		return v, nil
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil || f < 0 || f != math.Trunc(f) || f > math.MaxUint64 {
		return 0, fmt.Errorf("%q is not a non-negative integer", raw)
	}
	return uint64(f), nil
}
