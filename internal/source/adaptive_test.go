package source

// Tests for the self-tuning transport pieces: the rolling latency sketch,
// adaptive hedge delays, the hedge=adaptive spec grammar, deterministic
// revival scheduling through the injected timing seams, and the rowfull
// wire op end to end (handler, Remote, Sharded).

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestLatencySketchQuantiles(t *testing.T) {
	var ls latencySketch
	if _, ok := ls.quantile(0.95); ok {
		t.Fatal("empty sketch reported a quantile")
	}
	for i := 0; i < latencyMinSamples-1; i++ {
		ls.observe(time.Millisecond)
	}
	if _, ok := ls.quantile(0.95); ok {
		t.Fatalf("sketch reported a quantile below %d samples", latencyMinSamples)
	}
	ls.observe(time.Millisecond)
	q, ok := ls.quantile(0.95)
	if !ok {
		t.Fatal("sketch with enough samples reported not-ready")
	}
	// Buckets are powers of two of a microsecond; 1ms lands in (512us,
	// 1024us] and the sketch reports the conservative upper bound.
	if q != 1024*time.Microsecond {
		t.Fatalf("uniform 1ms sketch p95 = %v, want 1.024ms (bucket upper bound)", q)
	}
}

func TestLatencySketchTracksTail(t *testing.T) {
	var ls latencySketch
	for i := 0; i < 90; i++ {
		ls.observe(time.Millisecond)
	}
	for i := 0; i < 30; i++ {
		ls.observe(50 * time.Millisecond)
	}
	q, ok := ls.quantile(0.95)
	if !ok {
		t.Fatal("sketch reported not-ready")
	}
	// 25% of the mass sits at 50ms, so the p95 must be in its bucket
	// ((32.768ms, 65.536ms]), not the 1ms body.
	if q != 65536*time.Microsecond {
		t.Fatalf("heavy-tail p95 = %v, want 65.536ms", q)
	}
}

func TestLatencySketchHalvingKeepsWorking(t *testing.T) {
	var ls latencySketch
	for i := 0; i < 4*latencyWindow; i++ {
		ls.observe(2 * time.Millisecond)
	}
	if got := ls.samples(); got >= latencyWindow {
		t.Fatalf("sketch holds %d samples after halving, want under %d", got, latencyWindow)
	}
	q, ok := ls.quantile(0.95)
	if !ok {
		t.Fatal("halved sketch reported not-ready")
	}
	if q != 2048*time.Microsecond {
		t.Fatalf("post-halving p95 = %v, want 2.048ms", q)
	}
}

func TestAdaptiveHedgeDelay(t *testing.T) {
	src, err := NewSharded([]Source{Ring(40), Ring(40)},
		WithAdaptiveHedge(2*time.Millisecond, 40*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	s := src.(*Sharded)
	defer s.Close()
	// Cold shard: no latency estimate yet, so hedge at the ceiling — the
	// conservative end, never an eager hedge off no data.
	if got := s.hedgeDelay(0); got != 40*time.Millisecond {
		t.Fatalf("cold hedge delay = %v, want the 40ms ceiling", got)
	}
	// A consistently fast shard clamps to the floor, not below it.
	for i := 0; i < 100; i++ {
		s.noteLatency(0, time.Millisecond)
	}
	if got := s.hedgeDelay(0); got != 2*time.Millisecond {
		t.Fatalf("fast-shard hedge delay = %v, want the 2ms floor", got)
	}
	// A mid-range tail hedges at its p95 bucket bound.
	for i := 0; i < 100; i++ {
		s.noteLatency(1, 10*time.Millisecond)
	}
	if got := s.hedgeDelay(1); got != 16384*time.Microsecond {
		t.Fatalf("10ms-shard hedge delay = %v, want 16.384ms (p95 bucket bound)", got)
	}
	// A degrading shard saturates at the ceiling.
	for i := 0; i < 300; i++ {
		s.noteLatency(1, 100*time.Millisecond)
	}
	if got := s.hedgeDelay(1); got != 40*time.Millisecond {
		t.Fatalf("slow-shard hedge delay = %v, want the 40ms ceiling", got)
	}
}

func TestAdaptiveHedgeSpec(t *testing.T) {
	src, err := Parse("sharded:ring:n=25;ring:n=25;hedge=adaptive", 7)
	if err != nil {
		t.Fatal(err)
	}
	sh, ok := src.(*Sharded)
	if !ok {
		t.Fatalf("sharded spec yielded %T", src)
	}
	if !sh.adaptiveHedge {
		t.Fatal("hedge=adaptive did not enable adaptive hedging")
	}
	if sh.hedgeFloor != DefaultHedgeFloor || sh.hedgeCeil != DefaultHedgeCeil {
		t.Fatalf("default bounds = [%v, %v], want [%v, %v]",
			sh.hedgeFloor, sh.hedgeCeil, DefaultHedgeFloor, DefaultHedgeCeil)
	}
	if sh.Degree(3) != 2 {
		t.Fatal("adaptive-hedged fleet does not answer")
	}
	if err := sh.Close(); err != nil {
		t.Fatal(err)
	}

	src, err = Parse("sharded:ring:n=25;ring:n=25;hedge=adaptive;hedgefloor=2ms;hedgeceil=20ms", 7)
	if err != nil {
		t.Fatal(err)
	}
	sh = src.(*Sharded)
	if sh.hedgeFloor != 2*time.Millisecond || sh.hedgeCeil != 20*time.Millisecond {
		t.Fatalf("bounds = [%v, %v], want [2ms, 20ms]", sh.hedgeFloor, sh.hedgeCeil)
	}
	if err := sh.Close(); err != nil {
		t.Fatal(err)
	}

	for spec, token := range map[string]string{
		"sharded:ring:n=5;ring:n=5;hedgefloor=2ms":                "hedge=adaptive",
		"sharded:ring:n=5;ring:n=5;hedgeceil=20ms":                "hedge=adaptive",
		"sharded:ring:n=5;ring:n=5;hedge=10ms;hedgefloor=2ms":     "hedge=adaptive",
		"sharded:ring:n=5;ring:n=5;hedge=adaptive;hedgefloor=xyz": "hedge floor",
		"sharded:ring:n=5;ring:n=5;hedge=adaptive;hedgeceil=0s":   "hedge ceiling",
		"sharded:ring:n=5;ring:n=5;hedge=adaptive;hedgefloor=2h":  "hedge floor",
	} {
		if _, err := Parse(spec, 7); err == nil {
			t.Errorf("Parse(%q) unexpectedly succeeded", spec)
		} else if !strings.Contains(err.Error(), token) {
			t.Errorf("Parse(%q) error %q does not name %q", spec, err, token)
		}
	}
}

// TestRevivalDeterministic drives the reviver through its injected timing
// seams: with a fixed jitter rule and a channel-stepped sleeper, the
// backoff schedule is exactly reproducible — no wall-clock sleeps, no
// global PRNG.
func TestRevivalDeterministic(t *testing.T) {
	src, inj := faultFleetFactory(2)(t)
	defer closeConformance(t, src)
	sh := src.(*Sharded)
	sleeps := make(chan time.Duration)
	step := make(chan bool)
	// Injected before any failure, so the reviver (spawned on the
	// dead-marking) observes the seams.
	sh.reviveSleep = func(d time.Duration) bool { sleeps <- d; return <-step }
	sh.reviveJitter = func(backoff time.Duration) time.Duration { return backoff / 2 }

	inj.Fail(0)
	go func() {
		// Drive probes until the failure threshold marks the shard dead;
		// failover keeps them answering throughout.
		for i := 0; ; i++ {
			if h, _ := HealthOf(sh); h[0].State == ShardDead {
				return
			}
			sh.Degree(i % sh.N())
		}
	}()

	// The factory configures WithRevival(10ms, 100ms) and our jitter adds
	// backoff/2: the reviver must request exactly this doubling-then-
	// clamped schedule while the shard keeps failing its pings.
	want := []time.Duration{
		15 * time.Millisecond,  // 10 + 5
		30 * time.Millisecond,  // 20 + 10
		60 * time.Millisecond,  // 40 + 20
		120 * time.Millisecond, // 80 + 40
		150 * time.Millisecond, // clamped at 100, + 50
		150 * time.Millisecond, // stays clamped
	}
	for k, w := range want {
		select {
		case got := <-sleeps:
			if got != w {
				t.Fatalf("revival sleep %d = %v, want %v", k, got, w)
			}
		case <-time.After(faultDeadline):
			t.Fatalf("reviver never requested sleep %d", k)
		}
		if k == len(want)-1 {
			// Heal before releasing the last sleep: its ping succeeds and
			// the reviver exits without another request.
			inj.Heal(0)
		}
		step <- true
	}
	waitShardState(t, src, 0, ShardLive, "after deterministic revival")
	select {
	case d := <-sleeps:
		t.Fatalf("reviver requested another sleep (%v) after reviving", d)
	case <-time.After(50 * time.Millisecond):
	}
}

func TestRowFullWireScalar(t *testing.T) {
	ts := newShard(t, Ring(30))
	resp, err := http.Get(ts.URL + "/probe?op=rowfull&a=3")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("rowfull status %d", resp.StatusCode)
	}
	var ans struct {
		Answer int   `json:"answer"`
		Row    []int `json:"row"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ans); err != nil {
		t.Fatal(err)
	}
	if ans.Answer != 2 || len(ans.Row) != 2 {
		t.Fatalf("rowfull answered degree %d row %v, want degree 2", ans.Answer, ans.Row)
	}
	if ans.Row[0] != 2 || ans.Row[1] != 4 {
		t.Fatalf("rowfull row = %v, want [2 4] (ring neighbors of 3)", ans.Row)
	}

	// Out-of-range vertex: the same 400 contract as the scalar ops.
	resp, err = http.Get(ts.URL + "/probe?op=rowfull&a=999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("out-of-range rowfull status %d, want 400", resp.StatusCode)
	}
}

func TestRowFullWireBatch(t *testing.T) {
	ts := newShard(t, Ring(30))
	body := `{"probes":[{"op":"rowfull","a":5},{"op":"degree","a":5},{"op":"rowfull","a":0}]}`
	resp, err := http.Post(ts.URL+"/probe", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d", resp.StatusCode)
	}
	var out struct {
		Answers []int   `json:"answers"`
		Rows    [][]int `json:"rows"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Answers) != 3 || len(out.Rows) != 3 {
		t.Fatalf("batch answered %d answers, %d rows; want 3 and 3", len(out.Answers), len(out.Rows))
	}
	if out.Answers[0] != 2 || out.Answers[1] != 2 || out.Answers[2] != 2 {
		t.Fatalf("batch answers = %v, want all degree 2", out.Answers)
	}
	if fmt.Sprint(out.Rows[0]) != "[4 6]" || out.Rows[1] != nil || fmt.Sprint(out.Rows[2]) != "[1 29]" {
		t.Fatalf("batch rows = %v, want rowfull slots filled and the degree slot null", out.Rows)
	}
}

func TestRowFullMetaFlag(t *testing.T) {
	ts := newShard(t, Ring(30))
	resp, err := http.Get(ts.URL + "/probe/meta")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var meta struct {
		RowFull bool `json:"row_full"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&meta); err != nil {
		t.Fatal(err)
	}
	if !meta.RowFull {
		t.Fatal("local shard did not advertise row_full")
	}
}

func TestRemoteFetchRows(t *testing.T) {
	ring := Ring(30)
	r := openRemoteShard(t, ring)
	rf, ok := RowFetcherOf(r)
	if !ok {
		t.Fatal("remote over a row_full shard lacks the RowFetcher capability")
	}
	rt := r.(RoundTripCounter)
	before := rt.RoundTrips()
	rows, err := rf.FetchRows([]int{0, 7, 15})
	if err != nil {
		t.Fatal(err)
	}
	if trips := rt.RoundTrips() - before; trips != 1 {
		t.Fatalf("FetchRows(3 vertices) cost %d round trips, want 1", trips)
	}
	if len(rows) != 3 {
		t.Fatalf("FetchRows answered %d rows, want 3", len(rows))
	}
	for i, v := range []int{0, 7, 15} {
		deg := ring.Degree(v)
		if len(rows[i]) != deg {
			t.Fatalf("row %d has %d cells, want %d", v, len(rows[i]), deg)
		}
		for j, w := range rows[i] {
			if want := ring.Neighbor(v, j); w != want {
				t.Fatalf("row %d cell %d = %d, want %d", v, j, w, want)
			}
		}
	}
	if rows, err := rf.FetchRows(nil); err != nil || rows != nil {
		t.Fatalf("FetchRows(nil) = %v, %v; want nil, nil", rows, err)
	}
}

func TestShardedFetchRows(t *testing.T) {
	ring := Ring(50)
	s, err := NewSharded([]Source{
		openRemoteShard(t, Ring(50)),
		openRemoteShard(t, Ring(50)),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer closeConformance(t, s)
	rf, ok := RowFetcherOf(s)
	if !ok {
		t.Fatal("fleet of row_full remotes lacks the RowFetcher capability")
	}
	vs := []int{3, 17, 41, 8}
	rows, err := rf.FetchRows(vs)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vs {
		if len(rows[i]) != ring.Degree(v) {
			t.Fatalf("row %d has %d cells, want %d", v, len(rows[i]), ring.Degree(v))
		}
		for j, w := range rows[i] {
			if want := ring.Neighbor(v, j); w != want {
				t.Fatalf("row %d cell %d = %d, want %d", v, j, w, want)
			}
		}
	}
}

// TestShardedFetchRowsGatedOnShards pins the capability gate: a fleet
// with one shard lacking the rowfull op must not advertise RowFetcher.
func TestShardedFetchRowsGatedOnShards(t *testing.T) {
	s, err := NewSharded([]Source{
		openRemoteShard(t, Ring(50)),
		Ring(50), // local shard: no RowFetcher capability of its own
	})
	if err != nil {
		t.Fatal(err)
	}
	defer closeConformance(t, s)
	if _, ok := RowFetcherOf(s); ok {
		t.Fatal("fleet with a row-less shard still advertises RowFetcher")
	}
}
