package source

// Shard health: the state machine that lets a Sharded fleet survive
// replica failure. Every shard starts live; consecutive probe failures
// past a threshold mark it dead, a background reviver re-probes it
// half-open with jittered exponential backoff (on Remote shards via the
// health-plane GET /probe/meta, never a data probe), and a successful
// re-probe returns it to live. While a shard is dead, rendezvous routing
// hands its keys to the next-ranked live replica — replicas of one graph
// are interchangeable, so answers never change, only which process serves
// them — and the detour is counted as a failover.

import (
	"sync"
	"sync/atomic"

	"lca/internal/trace"
)

// Shard health states.
const (
	// ShardLive marks a shard serving its rendezvous share.
	ShardLive = "live"
	// ShardDead marks a shard past the consecutive-failure threshold; its
	// keys are re-routed until a background re-probe revives it.
	ShardDead = "dead"
	// ShardProbing marks a dead shard with a half-open revival probe in
	// flight.
	ShardProbing = "probing"
	// ShardDistrusted marks a shard that answered a probe with bytes that
	// failed attestation against the pinned commitment. Distrust is
	// sticky: unlike a dead shard, a distrusted one is never revived — the
	// reviver's health ping would succeed against a replica that still
	// lies on the data plane.
	ShardDistrusted = "distrusted"
)

// ShardHealth is one replica's health snapshot, as reported by the
// HealthReporter capability and surfaced on /probe/meta and /sources.
type ShardHealth struct {
	// Shard labels the replica (a Remote's base URL, or shard<i> for
	// local backends).
	Shard string `json:"shard"`
	// State is ShardLive, ShardDead, ShardProbing or ShardDistrusted.
	State string `json:"state"`
	// ConsecutiveFails counts probe failures since the last success.
	ConsecutiveFails int `json:"consecutive_fails,omitempty"`
	// LastError is the most recent failure, empty on a healthy shard.
	LastError string `json:"last_error,omitempty"`
}

// HealthReporter is the optional capability of reporting per-replica
// health — Sharded has it; single-backend sources do not. Discover it
// through HealthOf, which also understands the dynamic capability view.
type HealthReporter interface {
	Health() []ShardHealth
}

// FailoverCounter is the optional capability of reporting how many probe
// operations were failed over (served by a replica other than their
// rendezvous winner) and how many hedged requests were fired. Monotone
// and safe for concurrent use; like RoundTripCounter it is transport
// accounting, never part of an answer's correctness contract.
type FailoverCounter interface {
	Failovers() uint64
	Hedges() uint64
}

// Pinger is the optional capability of cheaply checking liveness on the
// health plane, without issuing a data probe. Remote pings GET
// /probe/meta with a single uncounted, unretried request; the reviver
// uses it for half-open re-probes of dead shards.
type Pinger interface {
	Ping() error
}

// TripScoper is the optional capability of deriving a request-scoped view
// of a network source. The view answers identically and shares the
// backend's connections, caches and health state, but its RoundTrips()
// (and Failovers()/Hedges() on fleets) count only traffic issued through
// the view — so concurrent requests against one shared source each see
// exactly their own transport bill. Views are cheap, need no Close, and
// must not outlive the source they scope.
type TripScoper interface {
	ScopeTrips() Source
}

// tripCount is a nil-safe atomic request counter shared between a source
// and the scoped views attributing traffic to it.
type tripCount struct{ n atomic.Uint64 }

func (t *tripCount) add(d uint64) {
	if t != nil {
		t.n.Add(d)
	}
}

func (t *tripCount) load() uint64 {
	if t == nil {
		return 0
	}
	return t.n.Load()
}

// scopeSink accumulates one view's transport accounting: round trips,
// failovers and hedges, plus the request's tracer when the view is
// traced (TracerSetter). The nil sink (unscoped probing) is valid
// everywhere.
type scopeSink struct {
	trips tripCount
	// af and pb are the view's attestation accounting: verification
	// failures detected and proof bytes transported for probes issued
	// through the view. tripCounts (not bare atomics) so they thread down
	// probeScope like the trip counter does.
	af tripCount
	pb tripCount
	fo atomic.Uint64
	he atomic.Uint64
	tr *trace.Tracer
}

// tracer returns the view's tracer, nil for untraced or unscoped
// probing.
func (s *scopeSink) tracer() *trace.Tracer {
	if s == nil {
		return nil
	}
	return s.tr
}

func (s *scopeSink) tripsCounter() *tripCount {
	if s == nil {
		return nil
	}
	return &s.trips
}

func (s *scopeSink) afCounter() *tripCount {
	if s == nil {
		return nil
	}
	return &s.af
}

func (s *scopeSink) pbCounter() *tripCount {
	if s == nil {
		return nil
	}
	return &s.pb
}

func (s *scopeSink) failover() {
	if s != nil {
		s.fo.Add(1)
	}
}

func (s *scopeSink) hedge() {
	if s != nil {
		s.he.Add(1)
	}
}

// Internal state codes; ShardHealth reports the string names.
const (
	stateLive int32 = iota
	stateDead
	stateProbing
)

func stateName(code int32) string {
	switch code {
	case stateDead:
		return ShardDead
	case stateProbing:
		return ShardProbing
	default:
		return ShardLive
	}
}

// shardState is one replica's mutable health record inside a Sharded.
// The state and failure-streak words are atomics so the hot probe path
// (pickLive sweeping every shard, noteSuccess after every probe) reads
// them lock-free; the mutex guards the failure transitions, lastErr and
// the reviver handshake.
type shardState struct {
	state atomic.Int32
	fails atomic.Int32
	// distrusted is the sticky Byzantine bit: set when the shard answered
	// bytes that failed attestation, never cleared. It gates alive()
	// independently of the live/dead machine so a reviver's successful
	// health ping cannot resurrect a liar into rotation.
	distrusted atomic.Bool
	// mu guards lastErr and the dead-transition/reviving handshake.
	mu       sync.Mutex
	lastErr  string
	reviving bool // a reviver goroutine owns this shard's recovery
}

func newShardState() *shardState { return &shardState{} }

// alive reports whether the shard may serve data probes right now. A
// probing shard stays out of rotation until its half-open re-probe
// succeeds, so one revival ping — not live traffic — decides revival;
// a distrusted shard never returns.
func (st *shardState) alive() bool {
	return st.state.Load() == stateLive && !st.distrusted.Load()
}

// noteByzantine permanently distrusts the shard: a probe answer that
// failed verification against the pinned commitment proves the replica
// is lying or corrupt, which no amount of reviving fixes.
func (st *shardState) noteByzantine(err error) {
	st.distrusted.Store(true)
	st.mu.Lock()
	st.lastErr = err.Error()
	st.mu.Unlock()
}

// noteSuccess resets the consecutive-failure streak of a live shard.
// Lock-free on the pure-success fast path; a concurrent failure racing
// the reset only perturbs the heuristic streak, never an answer.
func (st *shardState) noteSuccess() {
	if st.state.Load() != stateLive || st.fails.Load() == 0 {
		return
	}
	st.fails.Store(0)
	st.mu.Lock()
	st.lastErr = ""
	st.mu.Unlock()
}

// noteFailure records one probe failure; it reports whether this failure
// crossed the threshold and the caller must start a reviver.
func (st *shardState) noteFailure(err error, threshold int) (startReviver bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	fails := st.fails.Add(1)
	st.lastErr = err.Error()
	if st.state.Load() == stateLive && int(fails) >= threshold {
		st.state.Store(stateDead)
		if !st.reviving {
			st.reviving = true
			return true
		}
	}
	return false
}

// setState moves the shard between the reviver-owned states.
func (st *shardState) setState(state int32, err error) {
	st.mu.Lock()
	st.state.Store(state)
	if err != nil {
		st.lastErr = err.Error()
	}
	if state == stateLive {
		st.fails.Store(0)
		st.lastErr = ""
		st.reviving = false
	}
	st.mu.Unlock()
}

func (st *shardState) snapshot(label string) ShardHealth {
	st.mu.Lock()
	defer st.mu.Unlock()
	state := stateName(st.state.Load())
	if st.distrusted.Load() {
		// Distrust dominates the live/dead machine in reports: whatever the
		// transport thinks, the shard is out of rotation for good.
		state = ShardDistrusted
	}
	return ShardHealth{Shard: label, State: state,
		ConsecutiveFails: int(st.fails.Load()), LastError: st.lastErr}
}

// reviveLoop is the background half-open re-prober of one dead shard: it
// sleeps a jittered exponential backoff, marks the shard probing, pings
// it (Pinger when the shard has it, a guarded data probe otherwise), and
// either revives the shard or doubles the backoff and tries again. It
// exits when the shard revives or the fleet closes.
func (s *Sharded) reviveLoop(i int) {
	defer s.wg.Done()
	st := s.health[i]
	backoff := s.reviveMin
	for {
		// The jitter PRG and the sleeper are the fleet's injectable seams
		// (reviveJitter/reviveSleep), so revival tests run deterministic
		// schedules instead of racing wall-clock sleeps.
		if !s.reviveSleep(backoff + s.reviveJitter(backoff)) {
			return
		}
		select {
		case <-s.stop:
			// An injected sleeper may not watch s.stop; never ping after
			// Close.
			return
		default:
		}
		st.setState(stateProbing, nil)
		if err := s.pingShard(i); err != nil {
			st.setState(stateDead, err)
			if backoff < s.reviveMax {
				backoff = min(backoff*2, s.reviveMax)
			}
			continue
		}
		st.setState(stateLive, nil)
		return
	}
}

// pingShard checks one shard's liveness: the health plane when the shard
// has it, otherwise a recovered data probe (local backends cannot fail,
// so this path exists for completeness, not load).
func (s *Sharded) pingShard(i int) (err error) {
	if p, ok := s.shards[i].(Pinger); ok {
		return p.Ping()
	}
	defer func() {
		if r := recover(); r != nil {
			pe, ok := r.(*ProbeError)
			if !ok {
				panic(r)
			}
			err = pe
		}
	}()
	if s.n > 0 {
		s.shards[i].Degree(0)
	}
	return nil
}
