package source

// Remote: a Source whose probes are answered by another process speaking
// the probe wire protocol (wire.go) — the backend that turns the library
// into a horizontally scalable service. One lcaserve replica can answer
// queries whose probes are served by another, and Sharded composes N of
// these into one consistent-hashed fleet with failover and hedging.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"lca/internal/rnd"
)

// ProbeError is the panic payload raised by network-backed sources when a
// probe cannot be answered after all retries. The Source interface has no
// error returns — local backends cannot fail — so network failure
// surfaces as a typed panic that the Session layer (and internal/serve)
// recover into ordinary errors; code probing a Remote directly should do
// the same.
type ProbeError struct {
	// Shard is the base URL of the failing shard (or a fleet label).
	Shard string
	// Op, A, B identify the probe that failed.
	Op   string
	A, B int
	// Status is the HTTP status of a terminal protocol answer, 0 for
	// transport failures. Temporary() is derived from it.
	Status int
	// Err is the underlying transport or protocol error.
	Err error
}

func (e *ProbeError) Error() string {
	return fmt.Sprintf("source: shard %s: probe %s(%d,%d): %v", e.Shard, e.Op, e.A, e.B, e.Err)
}

func (e *ProbeError) Unwrap() error { return e.Err }

// Temporary reports whether the failure is the shard's fault (transport
// error, 5xx, 429) rather than the request's: only temporary failures
// justify failing the probe over to another replica — a 400 would just be
// answered 400 again.
func (e *ProbeError) Temporary() bool {
	return e.Status == 0 || e.Status >= 500 || e.Status == http.StatusTooManyRequests
}

// statusError carries the HTTP status of a non-200 shard answer through
// the retry loop so ProbeError.Status can report it.
type statusError struct {
	status int
	msg    string
}

func (e *statusError) Error() string { return fmt.Sprintf("status %d: %s", e.status, e.msg) }

// statusOf extracts the terminal HTTP status from a probe failure chain
// (0 for pure transport errors).
func statusOf(err error) int {
	var se *statusError
	if errors.As(err, &se) {
		return se.status
	}
	return 0
}

// Remote probes a shard over HTTP. Construct with OpenRemote; the zero
// value is unusable. Safe for concurrent use: the underlying http.Client
// reuses pooled keep-alive connections across goroutines.
//
// Failed requests are retried with exponential backoff (transport errors,
// 5xx and 429 responses; protocol-level 4xx errors are not retried); a
// probe that still fails panics with *ProbeError, which Session queries
// and the HTTP server convert back into errors.
//
// Optional capabilities (EdgeCounter, DegreeBounder, RandomEdger) mirror
// the shard's /probe/meta and are exposed through the dynamic capability
// view (Caps; discover them with the *Of accessors). Remote additionally
// implements Pinger (health-plane liveness checks for Sharded's reviver)
// and TripScoper (request-scoped round-trip attribution).
type Remote struct {
	base      string // scheme://host[:port], no trailing slash
	name      string // optional ?source= selector on the shard
	client    *http.Client
	ownClient bool          // we built the client: WithTimeout may mutate it
	timeout   time.Duration // requested WithTimeout, applied post-options
	retries   int
	backoff   time.Duration

	n               int
	m, maxDeg       int
	hasM, hasMaxDeg bool
	hasRE           bool
	closeOnce       sync.Once
	// requests counts logical shard requests (one per probe, batch or meta
	// fetch; retries of one request are not re-counted) — the
	// RoundTripCounter capability. Health-plane pings are not counted.
	requests tripCount
}

var (
	_ Source           = (*Remote)(nil)
	_ CapSource        = (*Remote)(nil)
	_ Closer           = (*Remote)(nil)
	_ BatchProber      = (*Remote)(nil)
	_ RoundTripCounter = (*Remote)(nil)
	_ Pinger           = (*Remote)(nil)
	_ TripScoper       = (*Remote)(nil)
)

// RemoteOption configures a Remote at construction.
type RemoteOption func(*Remote)

// WithHTTPClient replaces the default client (5s per-request timeout,
// pooled keep-alive connections). The caller keeps ownership — the
// client is never mutated; Close only releases idle connections.
func WithHTTPClient(c *http.Client) RemoteOption {
	return func(r *Remote) {
		if c != nil {
			r.client = c
			r.ownClient = false
		}
	}
}

// WithTimeout sets the per-request timeout (default 5s). Ignored when a
// caller-owned client is supplied with WithHTTPClient (in either option
// order): that client's configuration belongs to the caller.
func WithTimeout(d time.Duration) RemoteOption {
	return func(r *Remote) {
		if d > 0 {
			r.timeout = d
		}
	}
}

// WithRetries sets how many times a failed probe request is retried
// (default 2, so 3 attempts in total). 0 disables retrying; negative is 0.
func WithRetries(n int) RemoteOption {
	return func(r *Remote) {
		if n < 0 {
			n = 0
		}
		r.retries = n
	}
}

// WithRetryBackoff sets the first retry's backoff (default 50ms); the k-th
// retry waits 2^(k-1) times as long.
func WithRetryBackoff(d time.Duration) RemoteOption {
	return func(r *Remote) {
		if d > 0 {
			r.backoff = d
		}
	}
}

// OpenRemote connects to a probe shard and fetches its O(1) metadata. The
// URL names the shard's base ("http://host:port"; a bare host:port gets
// http://); a fragment selects a named source on a multi-source shard
// ("http://host:port#web"). The returned Source carries the EdgeCounter /
// DegreeBounder / RandomEdger capabilities — on its dynamic capability
// view — exactly when the shard's backing source does.
func OpenRemote(rawURL string, opts ...RemoteOption) (Source, error) {
	base := strings.TrimSpace(rawURL)
	if base == "" {
		return nil, fmt.Errorf("source: remote: empty shard URL")
	}
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	u, err := url.Parse(base)
	if err != nil {
		return nil, fmt.Errorf("source: remote: shard URL %q: %w", rawURL, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return nil, fmt.Errorf("source: remote: shard URL %q: unsupported scheme %q (want http or https)", rawURL, u.Scheme)
	}
	if u.Host == "" {
		return nil, fmt.Errorf("source: remote: shard URL %q: missing host", rawURL)
	}
	name := u.Fragment
	u.Fragment = ""
	u.Path = strings.TrimSuffix(u.Path, "/")
	u.RawQuery = ""
	r := &Remote{
		base:      u.String(),
		name:      name,
		client:    &http.Client{Timeout: 5 * time.Second},
		ownClient: true,
		retries:   2,
		backoff:   50 * time.Millisecond,
	}
	for _, o := range opts {
		o(r)
	}
	if r.ownClient && r.timeout > 0 {
		r.client.Timeout = r.timeout
	}
	meta, err := r.fetchMeta()
	if err != nil {
		return nil, err
	}
	r.n = meta.N
	if meta.M != nil {
		r.m, r.hasM = *meta.M, true
	}
	if meta.MaxDegree != nil {
		r.maxDeg, r.hasMaxDeg = *meta.MaxDegree, true
	}
	r.hasRE = meta.RandomEdge
	return r, nil
}

// Caps implements CapSource from the construction-time /probe/meta
// snapshot: the remote advertises M / MaxDegree / RandomEdge exactly when
// the shard's backing source does.
func (r *Remote) Caps() Caps {
	c := Caps{}
	if r.hasM {
		m := r.m
		c.M = func() int { return m }
	}
	if r.hasMaxDeg {
		d := r.maxDeg
		c.MaxDegree = func() int { return d }
	}
	if r.hasRE {
		c.RandomEdge = func(prg *rnd.PRG) (int, int) { return r.randomEdge(nil, prg) }
	}
	return c
}

// Base returns the shard's base URL (for error reporting and bench
// labels).
func (r *Remote) Base() string { return r.base }

// N implements Source from the metadata snapshot; free, as in the model.
func (r *Remote) N() int { return r.n }

// Degree implements Source.
func (r *Remote) Degree(v int) int { return r.probe(nil, OpDegree, v, 0) }

// Neighbor implements Source.
func (r *Remote) Neighbor(v, i int) int { return r.probe(nil, OpNeighbor, v, i) }

// Adjacency implements Source.
func (r *Remote) Adjacency(u, v int) int {
	// Out-of-range endpoints answer -1 locally (the wire contract answers
	// the same), saving the round trip algorithms never need.
	if u < 0 || u >= r.n || v < 0 || v >= r.n {
		return -1
	}
	return r.probe(nil, OpAdjacency, u, v)
}

// RoundTrips implements RoundTripCounter: logical shard requests issued so
// far (probes, batches and the construction-time meta fetch; retries of a
// failing request are not re-counted, health-plane pings never count).
func (r *Remote) RoundTrips() uint64 { return r.requests.load() }

// ScopeTrips implements TripScoper: the view shares this remote's
// connections but counts round trips into its own counter only.
func (r *Remote) ScopeTrips() Source { return &remoteScope{r: r, tc: &tripCount{}} }

// Ping implements Pinger: one uncounted, unretried health-plane request
// against /probe/meta. A 200 with a well-formed body means alive;
// anything else reports the failure.
func (r *Remote) Ping() error {
	resp, err := r.client.Get(r.metaURL())
	if err != nil {
		return fmt.Errorf("source: ping %s: %w", r.base, err)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxProbeBody))
	resp.Body.Close()
	if err != nil {
		return fmt.Errorf("source: ping %s: %w", r.base, err)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("source: ping %s: status %d: %s", r.base, resp.StatusCode, shardErrText(body))
	}
	var meta probeMeta
	if err := json.Unmarshal(body, &meta); err != nil {
		return fmt.Errorf("source: ping %s: malformed meta: %w", r.base, err)
	}
	return nil
}

// Close releases the client's idle connections. Idempotent; a closed
// Remote remains usable (new probes open fresh connections).
func (r *Remote) Close() error {
	r.closeOnce.Do(r.client.CloseIdleConnections)
	return nil
}

// randomEdge implements the RandomEdger capability over the wire: one
// uint64 drawn from the caller's PRG becomes the shard-side sampling seed,
// so the answer is a deterministic function of the caller's PRG state and
// identical on every replica of the graph.
func (r *Remote) randomEdge(tc *tripCount, prg *rnd.PRG) (int, int) {
	u, v, err := r.randomEdgeScoped(tc, prg.Uint64())
	if err != nil {
		panic(err)
	}
	return u, v
}

// randomEdgeScoped is the error-returning seeded sampler shared by the
// public capability and Sharded's failover path.
func (r *Remote) randomEdgeScoped(tc *tripCount, seed uint64) (int, int, *ProbeError) {
	reqURL := fmt.Sprintf("%s/probe?op=%s&seed=%d%s", r.base, OpRandomEdge, seed, r.sourceParam())
	var ans randomEdgeAnswer
	if err := r.getJSON(tc, reqURL, &ans); err != nil {
		return 0, 0, &ProbeError{Shard: r.base, Op: OpRandomEdge, Status: statusOf(err), Err: err}
	}
	return ans.U, ans.V, nil
}

func (r *Remote) probe(tc *tripCount, op string, a, b int) int {
	ans, err := r.probeScoped(context.Background(), tc, op, a, b)
	if err != nil {
		panic(err)
	}
	return ans
}

// probeScoped issues one scalar probe, attributing the round trip to tc
// (nil: unscoped) and honouring ctx cancellation — the hedging hook: the
// loser of a hedged race is cancelled rather than completed.
func (r *Remote) probeScoped(ctx context.Context, tc *tripCount, op string, a, b int) (int, *ProbeError) {
	probeURL := fmt.Sprintf("%s/probe?op=%s&a=%d&b=%d%s", r.base, op, a, b, r.sourceParam())
	var ans probeAnswer
	if err := r.doJSON(ctx, tc, func(ctx context.Context) (*http.Response, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, probeURL, nil)
		if err != nil {
			return nil, err
		}
		return r.client.Do(req)
	}, &ans); err != nil {
		return 0, &ProbeError{Shard: r.base, Op: op, A: a, B: b, Status: statusOf(err), Err: err}
	}
	return ans.Answer, nil
}

// ProbeBatch implements BatchProber with one POST round trip.
func (r *Remote) ProbeBatch(probes []ProbeReq) ([]int, error) {
	return r.batchScoped(nil, probes)
}

// batchScoped is ProbeBatch with per-view trip attribution.
func (r *Remote) batchScoped(tc *tripCount, probes []ProbeReq) ([]int, error) {
	if len(probes) == 0 {
		return nil, nil
	}
	body, err := json.Marshal(probeBatchReq{Probes: probes})
	if err != nil {
		return nil, err
	}
	batchURL := r.base + "/probe" + strings.Replace(r.sourceParam(), "&", "?", 1)
	var out probeBatchAnswer
	if err := r.doJSON(context.Background(), tc, func(ctx context.Context) (*http.Response, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, batchURL, strings.NewReader(string(body)))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		return r.client.Do(req)
	}, &out); err != nil {
		return nil, &ProbeError{Shard: r.base, Op: "batch", A: len(probes), Status: statusOf(err), Err: err}
	}
	if len(out.Answers) != len(probes) {
		return nil, &ProbeError{Shard: r.base, Op: "batch", A: len(probes),
			Err: fmt.Errorf("shard answered %d of %d probes", len(out.Answers), len(probes))}
	}
	return out.Answers, nil
}

func (r *Remote) metaURL() string {
	return r.base + "/probe/meta" + strings.Replace(r.sourceParam(), "&", "?", 1)
}

func (r *Remote) fetchMeta() (probeMeta, error) {
	var meta probeMeta
	if err := r.getJSON(nil, r.metaURL(), &meta); err != nil {
		return meta, fmt.Errorf("source: remote: %s is not answering as a probe shard: %w", r.base, err)
	}
	if meta.N < 0 || meta.N > MaxVertices {
		return meta, fmt.Errorf("source: remote: shard %s reports n=%d, outside [0,%d]", r.base, meta.N, MaxVertices)
	}
	return meta, nil
}

func (r *Remote) sourceParam() string {
	if r.name == "" {
		return ""
	}
	return "&source=" + url.QueryEscape(r.name)
}

func (r *Remote) getJSON(tc *tripCount, u string, out any) error {
	return r.doJSON(context.Background(), tc, func(ctx context.Context) (*http.Response, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
		if err != nil {
			return nil, err
		}
		return r.client.Do(req)
	}, out)
}

// doJSON issues the request with retry-with-backoff and decodes a 200
// body into out. Transport errors, 5xx and 429 retry; other statuses are
// terminal (the request itself is wrong, sending it again cannot help).
// One logical request counts one round trip — on the shared counter and,
// when scoped, on tc — regardless of retries. ctx cancellation aborts
// both in-flight attempts and backoff sleeps.
func (r *Remote) doJSON(ctx context.Context, tc *tripCount, do func(context.Context) (*http.Response, error), out any) error {
	r.requests.add(1)
	tc.add(1)
	var last error
	for attempt := 0; attempt <= r.retries; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return fmt.Errorf("%w (cancelled after %d attempts)", last, attempt)
			case <-time.After(r.backoff << (attempt - 1)):
			}
		}
		resp, err := do(ctx)
		if err != nil {
			last = err
			if ctx.Err() != nil {
				return last
			}
			continue
		}
		body, err := io.ReadAll(io.LimitReader(resp.Body, maxProbeBody))
		resp.Body.Close()
		if err != nil {
			last = err
			continue
		}
		if resp.StatusCode == http.StatusOK {
			if err := json.Unmarshal(body, out); err != nil {
				last = fmt.Errorf("malformed shard response: %w", err)
				continue
			}
			return nil
		}
		last = &statusError{status: resp.StatusCode, msg: shardErrText(body)}
		if resp.StatusCode < 500 && resp.StatusCode != http.StatusTooManyRequests {
			return last
		}
	}
	return fmt.Errorf("%w (after %d attempts)", last, r.retries+1)
}

// shardErrText extracts the error envelope's message, falling back to the
// trimmed raw body.
func shardErrText(body []byte) string {
	var we wireError
	if json.Unmarshal(body, &we) == nil && we.Error != "" {
		return we.Error
	}
	s := strings.TrimSpace(string(body))
	if len(s) > 200 {
		s = s[:200] + "..."
	}
	return s
}

// remoteScope is the TripScoper view of a Remote: same shard, same
// connections, round trips counted into the view's own counter.
type remoteScope struct {
	r  *Remote
	tc *tripCount
}

var (
	_ Source           = (*remoteScope)(nil)
	_ CapSource        = (*remoteScope)(nil)
	_ BatchProber      = (*remoteScope)(nil)
	_ RoundTripCounter = (*remoteScope)(nil)
)

func (s *remoteScope) N() int { return s.r.n }

func (s *remoteScope) Degree(v int) int { return s.r.probe(s.tc, OpDegree, v, 0) }

func (s *remoteScope) Neighbor(v, i int) int { return s.r.probe(s.tc, OpNeighbor, v, i) }

func (s *remoteScope) Adjacency(u, v int) int {
	if u < 0 || u >= s.r.n || v < 0 || v >= s.r.n {
		return -1
	}
	return s.r.probe(s.tc, OpAdjacency, u, v)
}

func (s *remoteScope) ProbeBatch(probes []ProbeReq) ([]int, error) {
	return s.r.batchScoped(s.tc, probes)
}

// Caps forwards the remote's capability view, with RandomEdge attributed
// to this scope.
func (s *remoteScope) Caps() Caps {
	c := s.r.Caps()
	if c.RandomEdge != nil {
		c.RandomEdge = func(prg *rnd.PRG) (int, int) { return s.r.randomEdge(s.tc, prg) }
	}
	return c
}

// RoundTrips reports only the trips issued through this view.
func (s *remoteScope) RoundTrips() uint64 { return s.tc.load() }
