package source

// Remote: a Source whose probes are answered by another process speaking
// the probe wire protocol (wire.go) — the backend that turns the library
// into a horizontally scalable service. One lcaserve replica can answer
// queries whose probes are served by another, and Sharded composes N of
// these into one consistent-hashed fleet with failover and hedging.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"lca/internal/rnd"
	"lca/internal/trace"
)

// ProbeError is the panic payload raised by network-backed sources when a
// probe cannot be answered after all retries. The Source interface has no
// error returns — local backends cannot fail — so network failure
// surfaces as a typed panic that the Session layer (and internal/serve)
// recover into ordinary errors; code probing a Remote directly should do
// the same.
type ProbeError struct {
	// Shard is the base URL of the failing shard (or a fleet label).
	Shard string
	// Op, A, B identify the probe that failed.
	Op   string
	A, B int
	// Status is the HTTP status of a terminal protocol answer, 0 for
	// transport failures. Temporary() is derived from it.
	Status int
	// Err is the underlying transport or protocol error.
	Err error
}

func (e *ProbeError) Error() string {
	return fmt.Sprintf("source: shard %s: probe %s(%d,%d): %v", e.Shard, e.Op, e.A, e.B, e.Err)
}

func (e *ProbeError) Unwrap() error { return e.Err }

// Temporary reports whether the failure is the shard's fault (transport
// error, 5xx, 429) rather than the request's: only temporary failures
// justify failing the probe over to another replica — a 400 would just be
// answered 400 again.
func (e *ProbeError) Temporary() bool {
	return e.Status == 0 || e.Status >= 500 || e.Status == http.StatusTooManyRequests
}

// statusError carries the HTTP status of a non-200 shard answer through
// the retry loop so ProbeError.Status can report it.
type statusError struct {
	status int
	msg    string
}

func (e *statusError) Error() string { return fmt.Sprintf("status %d: %s", e.status, e.msg) }

// statusOf extracts the terminal HTTP status from a probe failure chain
// (0 for pure transport errors).
func statusOf(err error) int {
	var se *statusError
	if errors.As(err, &se) {
		return se.status
	}
	return 0
}

// Remote probes a shard over HTTP. Construct with OpenRemote; the zero
// value is unusable. Safe for concurrent use: the underlying http.Client
// reuses pooled keep-alive connections across goroutines.
//
// Failed requests are retried with exponential backoff (transport errors,
// 5xx and 429 responses; protocol-level 4xx errors are not retried); a
// probe that still fails panics with *ProbeError, which Session queries
// and the HTTP server convert back into errors.
//
// Optional capabilities (EdgeCounter, DegreeBounder, RandomEdger) mirror
// the shard's /probe/meta and are exposed through the dynamic capability
// view (Caps; discover them with the *Of accessors). Remote additionally
// implements Pinger (health-plane liveness checks for Sharded's reviver)
// and TripScoper (request-scoped round-trip attribution).
type Remote struct {
	base      string // scheme://host[:port], no trailing slash
	name      string // optional ?source= selector on the shard
	client    *http.Client
	ownClient bool          // we built the client: WithTimeout may mutate it
	timeout   time.Duration // requested WithTimeout, applied post-options
	retries   int
	backoff   time.Duration

	n               int
	m, maxDeg       int
	hasM, hasMaxDeg bool
	hasRE           bool
	hasRowFull      bool
	closeOnce       sync.Once
	// requests counts logical shard requests (one per probe, batch or meta
	// fetch; retries of one request are not re-counted) — the
	// RoundTripCounter capability. Health-plane pings are not counted.
	requests tripCount
}

var (
	_ Source           = (*Remote)(nil)
	_ CapSource        = (*Remote)(nil)
	_ Closer           = (*Remote)(nil)
	_ BatchProber      = (*Remote)(nil)
	_ RoundTripCounter = (*Remote)(nil)
	_ Pinger           = (*Remote)(nil)
	_ TripScoper       = (*Remote)(nil)
)

// RemoteOption configures a Remote at construction.
type RemoteOption func(*Remote)

// WithHTTPClient replaces the default client (5s per-request timeout,
// pooled keep-alive connections). The caller keeps ownership — the
// client is never mutated; Close only releases idle connections.
func WithHTTPClient(c *http.Client) RemoteOption {
	return func(r *Remote) {
		if c != nil {
			r.client = c
			r.ownClient = false
		}
	}
}

// WithTimeout sets the per-request timeout (default 5s). Ignored when a
// caller-owned client is supplied with WithHTTPClient (in either option
// order): that client's configuration belongs to the caller.
func WithTimeout(d time.Duration) RemoteOption {
	return func(r *Remote) {
		if d > 0 {
			r.timeout = d
		}
	}
}

// WithRetries sets how many times a failed probe request is retried
// (default 2, so 3 attempts in total). 0 disables retrying; negative is 0.
func WithRetries(n int) RemoteOption {
	return func(r *Remote) {
		if n < 0 {
			n = 0
		}
		r.retries = n
	}
}

// WithRetryBackoff sets the first retry's backoff (default 50ms); the k-th
// retry waits 2^(k-1) times as long.
func WithRetryBackoff(d time.Duration) RemoteOption {
	return func(r *Remote) {
		if d > 0 {
			r.backoff = d
		}
	}
}

// OpenRemote connects to a probe shard and fetches its O(1) metadata. The
// URL names the shard's base ("http://host:port"; a bare host:port gets
// http://); a fragment selects a named source on a multi-source shard
// ("http://host:port#web"). The returned Source carries the EdgeCounter /
// DegreeBounder / RandomEdger capabilities — on its dynamic capability
// view — exactly when the shard's backing source does.
func OpenRemote(rawURL string, opts ...RemoteOption) (Source, error) {
	base := strings.TrimSpace(rawURL)
	if base == "" {
		return nil, fmt.Errorf("source: remote: empty shard URL")
	}
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	u, err := url.Parse(base)
	if err != nil {
		return nil, fmt.Errorf("source: remote: shard URL %q: %w", rawURL, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return nil, fmt.Errorf("source: remote: shard URL %q: unsupported scheme %q (want http or https)", rawURL, u.Scheme)
	}
	if u.Host == "" {
		return nil, fmt.Errorf("source: remote: shard URL %q: missing host", rawURL)
	}
	name := u.Fragment
	u.Fragment = ""
	u.Path = strings.TrimSuffix(u.Path, "/")
	u.RawQuery = ""
	r := &Remote{
		base:      u.String(),
		name:      name,
		client:    &http.Client{Timeout: 5 * time.Second},
		ownClient: true,
		retries:   2,
		backoff:   50 * time.Millisecond,
	}
	for _, o := range opts {
		o(r)
	}
	if r.ownClient && r.timeout > 0 {
		r.client.Timeout = r.timeout
	}
	meta, err := r.fetchMeta()
	if err != nil {
		return nil, err
	}
	r.n = meta.N
	if meta.M != nil {
		r.m, r.hasM = *meta.M, true
	}
	if meta.MaxDegree != nil {
		r.maxDeg, r.hasMaxDeg = *meta.MaxDegree, true
	}
	r.hasRE = meta.RandomEdge
	r.hasRowFull = meta.RowFull
	return r, nil
}

// Caps implements CapSource from the construction-time /probe/meta
// snapshot: the remote advertises M / MaxDegree / RandomEdge exactly when
// the shard's backing source does.
func (r *Remote) Caps() Caps {
	c := Caps{}
	if r.hasM {
		m := r.m
		c.M = func() int { return m }
	}
	if r.hasMaxDeg {
		d := r.maxDeg
		c.MaxDegree = func() int { return d }
	}
	if r.hasRE {
		c.RandomEdge = func(prg *rnd.PRG) (int, int) { return r.randomEdge(probeScope{}, prg) }
	}
	if r.hasRowFull {
		c.FetchRows = func(vs []int) ([][]int, error) { return r.fetchRowsScoped(probeScope{}, vs) }
	}
	return c
}

// Base returns the shard's base URL (for error reporting and bench
// labels).
func (r *Remote) Base() string { return r.base }

// N implements Source from the metadata snapshot; free, as in the model.
func (r *Remote) N() int { return r.n }

// Degree implements Source.
func (r *Remote) Degree(v int) int { return r.probe(probeScope{}, OpDegree, v, 0) }

// Neighbor implements Source.
func (r *Remote) Neighbor(v, i int) int { return r.probe(probeScope{}, OpNeighbor, v, i) }

// Adjacency implements Source.
func (r *Remote) Adjacency(u, v int) int {
	// Out-of-range endpoints answer -1 locally (the wire contract answers
	// the same), saving the round trip algorithms never need.
	if u < 0 || u >= r.n || v < 0 || v >= r.n {
		return -1
	}
	return r.probe(probeScope{}, OpAdjacency, u, v)
}

// RoundTrips implements RoundTripCounter: logical shard requests issued so
// far (probes, batches and the construction-time meta fetch; retries of a
// failing request are not re-counted, health-plane pings never count).
func (r *Remote) RoundTrips() uint64 { return r.requests.load() }

// ScopeTrips implements TripScoper: the view shares this remote's
// connections but counts round trips into its own counter only.
func (r *Remote) ScopeTrips() Source { return &remoteScope{r: r, tc: &tripCount{}} }

// Ping implements Pinger: one uncounted, unretried health-plane request
// against /probe/meta. A 200 with a well-formed body means alive;
// anything else reports the failure.
func (r *Remote) Ping() error {
	resp, err := r.client.Get(r.metaURL())
	if err != nil {
		return fmt.Errorf("source: ping %s: %w", r.base, err)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxProbeBody))
	resp.Body.Close()
	if err != nil {
		return fmt.Errorf("source: ping %s: %w", r.base, err)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("source: ping %s: status %d: %s", r.base, resp.StatusCode, shardErrText(body))
	}
	var meta probeMeta
	if err := json.Unmarshal(body, &meta); err != nil {
		return fmt.Errorf("source: ping %s: malformed meta: %w", r.base, err)
	}
	return nil
}

// Close releases the client's idle connections. Idempotent; a closed
// Remote remains usable (new probes open fresh connections).
func (r *Remote) Close() error {
	r.closeOnce.Do(r.client.CloseIdleConnections)
	return nil
}

// randomEdge implements the RandomEdger capability over the wire: one
// uint64 drawn from the caller's PRG becomes the shard-side sampling seed,
// so the answer is a deterministic function of the caller's PRG state and
// identical on every replica of the graph.
func (r *Remote) randomEdge(ps probeScope, prg *rnd.PRG) (int, int) {
	u, v, err := r.randomEdgeScoped(ps, prg.Uint64())
	if err != nil {
		panic(err)
	}
	return u, v
}

// randomEdgeScoped is the error-returning seeded sampler shared by the
// public capability and Sharded's failover path.
func (r *Remote) randomEdgeScoped(ps probeScope, seed uint64) (int, int, *ProbeError) {
	reqURL := fmt.Sprintf("%s/probe?op=%s&seed=%d%s", r.base, OpRandomEdge, seed, r.sourceParam())
	var ans randomEdgeAnswer
	if err := r.doJSON(context.Background(), ps, "rpc:randomedge", -1, nil, func(ctx context.Context) (*http.Request, error) {
		return http.NewRequestWithContext(ctx, http.MethodGet, reqURL, nil)
	}, &ans); err != nil {
		return 0, 0, &ProbeError{Shard: r.base, Op: OpRandomEdge, Status: statusOf(err), Err: err}
	}
	return ans.U, ans.V, nil
}

func (r *Remote) probe(ps probeScope, op string, a, b int) int {
	ans, err := r.probeScoped(context.Background(), ps, op, a, b)
	if err != nil {
		panic(err)
	}
	return ans
}

// probeScoped issues one scalar probe, attributing the round trip to
// ps.tc (nil: unscoped), recording an rpc span when ps is traced, and
// honouring ctx cancellation — the hedging hook: the loser of a hedged
// race is cancelled rather than completed.
func (r *Remote) probeScoped(ctx context.Context, ps probeScope, op string, a, b int) (int, *ProbeError) {
	probeURL := fmt.Sprintf("%s/probe?op=%s&a=%d&b=%d%s", r.base, op, a, b, r.sourceParam())
	var ans probeAnswer
	if err := r.doJSON(ctx, ps, rpcSpanOp(op), a, nil, func(ctx context.Context) (*http.Request, error) {
		return http.NewRequestWithContext(ctx, http.MethodGet, probeURL, nil)
	}, &ans); err != nil {
		return 0, &ProbeError{Shard: r.base, Op: op, A: a, B: b, Status: statusOf(err), Err: err}
	}
	return ans.Answer, nil
}

// ProbeBatch implements BatchProber with one POST round trip.
func (r *Remote) ProbeBatch(probes []ProbeReq) ([]int, error) {
	return r.batchScoped(probeScope{}, probes)
}

// batchScoped is ProbeBatch with per-view trip attribution.
func (r *Remote) batchScoped(ps probeScope, probes []ProbeReq) ([]int, error) {
	if len(probes) == 0 {
		return nil, nil
	}
	body, err := json.Marshal(probeBatchReq{Probes: probes})
	if err != nil {
		return nil, err
	}
	batchURL := r.base + "/probe" + strings.Replace(r.sourceParam(), "&", "?", 1)
	var tags []string
	if ps.tr != nil {
		tags = []string{fmt.Sprintf("batch=%d", len(probes))}
	}
	var out probeBatchAnswer
	if err := r.doJSON(context.Background(), ps, "rpc:batch", -1, tags, func(ctx context.Context) (*http.Request, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, batchURL, strings.NewReader(string(body)))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		return req, nil
	}, &out); err != nil {
		return nil, &ProbeError{Shard: r.base, Op: "batch", A: len(probes), Status: statusOf(err), Err: err}
	}
	if len(out.Answers) != len(probes) {
		return nil, &ProbeError{Shard: r.base, Op: "batch", A: len(probes),
			Err: fmt.Errorf("shard answered %d of %d probes", len(out.Answers), len(probes))}
	}
	return out.Answers, nil
}

// fetchRowsScoped implements the RowFetcher capability over the wire:
// one POST of rowfull probes per MaxProbeBatch chunk, each answering the
// degree plus the full neighbor row — the remainder round trip the
// prefetcher would otherwise pay simply does not exist on this path. The
// shard's answers are validated (row count and per-row length against
// the answered degrees) before use.
func (r *Remote) fetchRowsScoped(ps probeScope, vs []int) ([][]int, error) {
	if len(vs) == 0 {
		return nil, nil
	}
	rows := make([][]int, 0, len(vs))
	for start := 0; start < len(vs); start += MaxProbeBatch {
		chunk := vs[start:min(start+MaxProbeBatch, len(vs))]
		probes := make([]ProbeReq, len(chunk))
		for i, v := range chunk {
			probes[i] = ProbeReq{Op: OpRowFull, A: v}
		}
		body, err := json.Marshal(probeBatchReq{Probes: probes})
		if err != nil {
			return nil, err
		}
		batchURL := r.base + "/probe" + strings.Replace(r.sourceParam(), "&", "?", 1)
		var tags []string
		if ps.tr != nil {
			tags = []string{fmt.Sprintf("batch=%d", len(chunk))}
		}
		var out probeBatchAnswer
		if err := r.doJSON(context.Background(), ps, "rpc:rowfull", -1, tags, func(ctx context.Context) (*http.Request, error) {
			req, err := http.NewRequestWithContext(ctx, http.MethodPost, batchURL, strings.NewReader(string(body)))
			if err != nil {
				return nil, err
			}
			req.Header.Set("Content-Type", "application/json")
			return req, nil
		}, &out); err != nil {
			return nil, &ProbeError{Shard: r.base, Op: OpRowFull, A: len(chunk), Status: statusOf(err), Err: err}
		}
		if len(out.Answers) != len(chunk) || len(out.Rows) != len(chunk) {
			return nil, &ProbeError{Shard: r.base, Op: OpRowFull, A: len(chunk),
				Err: fmt.Errorf("shard answered %d answers and %d rows for %d probes", len(out.Answers), len(out.Rows), len(chunk))}
		}
		for i, row := range out.Rows {
			if len(row) != out.Answers[i] {
				return nil, &ProbeError{Shard: r.base, Op: OpRowFull, A: chunk[i],
					Err: fmt.Errorf("shard answered a %d-neighbor row for degree %d", len(row), out.Answers[i])}
			}
		}
		rows = append(rows, out.Rows...)
	}
	return rows, nil
}

func (r *Remote) metaURL() string {
	return r.base + "/probe/meta" + strings.Replace(r.sourceParam(), "&", "?", 1)
}

func (r *Remote) fetchMeta() (probeMeta, error) {
	var meta probeMeta
	if err := r.getJSON(r.metaURL(), &meta); err != nil {
		return meta, fmt.Errorf("source: remote: %s is not answering as a probe shard: %w", r.base, err)
	}
	if meta.N < 0 || meta.N > MaxVertices {
		return meta, fmt.Errorf("source: remote: shard %s reports n=%d, outside [0,%d]", r.base, meta.N, MaxVertices)
	}
	return meta, nil
}

func (r *Remote) sourceParam() string {
	if r.name == "" {
		return ""
	}
	return "&source=" + url.QueryEscape(r.name)
}

// getJSON fetches one unscoped, untraced document (the meta plane).
func (r *Remote) getJSON(u string, out any) error {
	return r.doJSON(context.Background(), probeScope{}, "rpc:meta", -1, nil, func(ctx context.Context) (*http.Request, error) {
		return http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	}, out)
}

// traceCarrier is implemented by wire answer bodies that can carry a
// shard's server-side spans back to the client (wire.go).
type traceCarrier interface {
	traceSpans() []trace.Span
}

// doJSON issues one logical request with retry-with-backoff and decodes
// a 200 body into out. Transport errors, 5xx and 429 retry; other
// statuses are terminal (the request itself is wrong, sending it again
// cannot help). One logical request counts one round trip — on the
// shared counter and, when scoped, on ps.tc — regardless of retries.
// When ps is traced, the logical request records one rpc span under
// ps.parent (retries fold into an attempts tag), every attempt carries
// the X-LCA-Trace header, and shard-side spans returned in the answer
// are grafted under the rpc span. ctx cancellation aborts both
// in-flight attempts and backoff sleeps.
func (r *Remote) doJSON(ctx context.Context, ps probeScope, spanOp string, target int, tags []string, build func(context.Context) (*http.Request, error), out any) error {
	r.requests.add(1)
	ps.tc.add(1)
	if ps.tr == nil {
		_, err := r.attempt(ctx, "", build, out)
		return err
	}
	h := ps.tr.StartUnder(ps.parent, spanOp, target)
	attempts, err := r.attempt(ctx, trace.FormatHeader(ps.tr.ID(), h.ID()), build, out)
	if err == nil {
		if c, ok := out.(traceCarrier); ok {
			ps.tr.Merge(h.ID(), c.traceSpans())
		}
	}
	if attempts > 1 {
		tags = append(tags, fmt.Sprintf("attempts=%d", attempts))
	}
	if err != nil {
		tags = append(tags, "error")
	}
	ps.tr.End(h, tags...)
	return err
}

// attempt runs doJSON's retry loop, reporting how many attempts the
// logical request took.
func (r *Remote) attempt(ctx context.Context, traceHdr string, build func(context.Context) (*http.Request, error), out any) (attempts int, _ error) {
	var last error
	for a := 0; a <= r.retries; a++ {
		attempts = a + 1
		if a > 0 {
			select {
			case <-ctx.Done():
				return attempts, fmt.Errorf("%w (cancelled after %d attempts)", last, a)
			case <-time.After(r.backoff << (a - 1)):
			}
		}
		req, err := build(ctx)
		if err != nil {
			return attempts, err
		}
		if traceHdr != "" {
			req.Header.Set(trace.Header, traceHdr)
		}
		resp, err := r.client.Do(req)
		if err != nil {
			last = err
			if ctx.Err() != nil {
				return attempts, last
			}
			continue
		}
		body, err := io.ReadAll(io.LimitReader(resp.Body, maxProbeBody))
		resp.Body.Close()
		if err != nil {
			last = err
			continue
		}
		if resp.StatusCode == http.StatusOK {
			if err := json.Unmarshal(body, out); err != nil {
				last = fmt.Errorf("malformed shard response: %w", err)
				continue
			}
			return attempts, nil
		}
		last = &statusError{status: resp.StatusCode, msg: shardErrText(body)}
		if resp.StatusCode < 500 && resp.StatusCode != http.StatusTooManyRequests {
			return attempts, last
		}
	}
	return attempts, fmt.Errorf("%w (after %d attempts)", last, r.retries+1)
}

// shardErrText extracts the error envelope's message, falling back to the
// trimmed raw body.
func shardErrText(body []byte) string {
	var we wireError
	if json.Unmarshal(body, &we) == nil && we.Error != "" {
		return we.Error
	}
	s := strings.TrimSpace(string(body))
	if len(s) > 200 {
		s = s[:200] + "..."
	}
	return s
}

// remoteScope is the TripScoper view of a Remote: same shard, same
// connections, round trips counted into the view's own counter, spans
// recorded into the view's tracer when one is set.
type remoteScope struct {
	r  *Remote
	tc *tripCount
	tr *trace.Tracer
}

var (
	_ Source           = (*remoteScope)(nil)
	_ CapSource        = (*remoteScope)(nil)
	_ BatchProber      = (*remoteScope)(nil)
	_ RoundTripCounter = (*remoteScope)(nil)
	_ TracerSetter     = (*remoteScope)(nil)
)

// SetTracer implements TracerSetter: subsequent probes through this
// view record rpc spans (and stitch the shard's spans) into tr. Set it
// before probing; the view is per-request, not concurrent with setup.
func (s *remoteScope) SetTracer(tr *trace.Tracer) { s.tr = tr }

// scope captures the per-call probe scope. The parent is read at call
// time: this view is probed serially (by the query's oracle stack), so
// the tracer's implicit parent is the enclosing oracle span.
func (s *remoteScope) scope() probeScope {
	return probeScope{tc: s.tc, tr: s.tr, parent: s.tr.Parent()}
}

func (s *remoteScope) N() int { return s.r.n }

func (s *remoteScope) Degree(v int) int { return s.r.probe(s.scope(), OpDegree, v, 0) }

func (s *remoteScope) Neighbor(v, i int) int { return s.r.probe(s.scope(), OpNeighbor, v, i) }

func (s *remoteScope) Adjacency(u, v int) int {
	if u < 0 || u >= s.r.n || v < 0 || v >= s.r.n {
		return -1
	}
	return s.r.probe(s.scope(), OpAdjacency, u, v)
}

func (s *remoteScope) ProbeBatch(probes []ProbeReq) ([]int, error) {
	return s.r.batchScoped(s.scope(), probes)
}

// Caps forwards the remote's capability view, with RandomEdge and
// FetchRows attributed to this scope.
func (s *remoteScope) Caps() Caps {
	c := s.r.Caps()
	if c.RandomEdge != nil {
		c.RandomEdge = func(prg *rnd.PRG) (int, int) { return s.r.randomEdge(s.scope(), prg) }
	}
	if c.FetchRows != nil {
		c.FetchRows = func(vs []int) ([][]int, error) { return s.r.fetchRowsScoped(s.scope(), vs) }
	}
	return c
}

// RoundTrips reports only the trips issued through this view.
func (s *remoteScope) RoundTrips() uint64 { return s.tc.load() }
