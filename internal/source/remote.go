package source

// Remote: a Source whose probes are answered by another process speaking
// the probe wire protocol (wire.go) — the backend that turns the library
// into a horizontally scalable service. One lcaserve replica can answer
// queries whose probes are served by another, and Sharded composes N of
// these into one consistent-hashed fleet.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"lca/internal/rnd"
)

// ProbeError is the panic payload raised by network-backed sources when a
// probe cannot be answered after all retries. The Source interface has no
// error returns — local backends cannot fail — so network failure
// surfaces as a typed panic that the Session layer (and internal/serve)
// recover into ordinary errors; code probing a Remote directly should do
// the same.
type ProbeError struct {
	// Shard is the base URL of the failing shard.
	Shard string
	// Op, A, B identify the probe that failed.
	Op   string
	A, B int
	// Err is the underlying transport or protocol error.
	Err error
}

func (e *ProbeError) Error() string {
	return fmt.Sprintf("source: shard %s: probe %s(%d,%d): %v", e.Shard, e.Op, e.A, e.B, e.Err)
}

func (e *ProbeError) Unwrap() error { return e.Err }

// Remote probes a shard over HTTP. Construct with OpenRemote; the zero
// value is unusable. Safe for concurrent use: the underlying http.Client
// reuses pooled keep-alive connections across goroutines.
//
// Failed requests are retried with exponential backoff (transport errors,
// 5xx and 429 responses; protocol-level 4xx errors are not retried); a
// probe that still fails panics with *ProbeError, which Session queries
// and the HTTP server convert back into errors.
type Remote struct {
	base      string // scheme://host[:port], no trailing slash
	name      string // optional ?source= selector on the shard
	client    *http.Client
	ownClient bool          // we built the client: WithTimeout may mutate it
	timeout   time.Duration // requested WithTimeout, applied post-options
	retries   int
	backoff   time.Duration

	n               int
	m, maxDeg       int
	hasM, hasMaxDeg bool
	hasRE           bool
	closeOnce       sync.Once
	// requests counts logical shard requests (one per probe, batch or meta
	// fetch; retries of one request are not re-counted) — the
	// RoundTripCounter capability.
	requests atomic.Uint64
}

var (
	_ Source           = (*Remote)(nil)
	_ Closer           = (*Remote)(nil)
	_ BatchProber      = (*Remote)(nil)
	_ RoundTripCounter = (*Remote)(nil)
)

// RemoteOption configures a Remote at construction.
type RemoteOption func(*Remote)

// WithHTTPClient replaces the default client (5s per-request timeout,
// pooled keep-alive connections). The caller keeps ownership — the
// client is never mutated; Close only releases idle connections.
func WithHTTPClient(c *http.Client) RemoteOption {
	return func(r *Remote) {
		if c != nil {
			r.client = c
			r.ownClient = false
		}
	}
}

// WithTimeout sets the per-request timeout (default 5s). Ignored when a
// caller-owned client is supplied with WithHTTPClient (in either option
// order): that client's configuration belongs to the caller.
func WithTimeout(d time.Duration) RemoteOption {
	return func(r *Remote) {
		if d > 0 {
			r.timeout = d
		}
	}
}

// WithRetries sets how many times a failed probe request is retried
// (default 2, so 3 attempts in total). 0 disables retrying; negative is 0.
func WithRetries(n int) RemoteOption {
	return func(r *Remote) {
		if n < 0 {
			n = 0
		}
		r.retries = n
	}
}

// WithRetryBackoff sets the first retry's backoff (default 50ms); the k-th
// retry waits 2^(k-1) times as long.
func WithRetryBackoff(d time.Duration) RemoteOption {
	return func(r *Remote) {
		if d > 0 {
			r.backoff = d
		}
	}
}

// OpenRemote connects to a probe shard and fetches its O(1) metadata. The
// URL names the shard's base ("http://host:port"; a bare host:port gets
// http://); a fragment selects a named source on a multi-source shard
// ("http://host:port#web"). The returned Source carries the EdgeCounter /
// DegreeBounder capabilities exactly when the shard's backing source does.
func OpenRemote(rawURL string, opts ...RemoteOption) (Source, error) {
	base := strings.TrimSpace(rawURL)
	if base == "" {
		return nil, fmt.Errorf("source: remote: empty shard URL")
	}
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	u, err := url.Parse(base)
	if err != nil {
		return nil, fmt.Errorf("source: remote: shard URL %q: %w", rawURL, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return nil, fmt.Errorf("source: remote: shard URL %q: unsupported scheme %q (want http or https)", rawURL, u.Scheme)
	}
	if u.Host == "" {
		return nil, fmt.Errorf("source: remote: shard URL %q: missing host", rawURL)
	}
	name := u.Fragment
	u.Fragment = ""
	u.Path = strings.TrimSuffix(u.Path, "/")
	u.RawQuery = ""
	r := &Remote{
		base:      u.String(),
		name:      name,
		client:    &http.Client{Timeout: 5 * time.Second},
		ownClient: true,
		retries:   2,
		backoff:   50 * time.Millisecond,
	}
	for _, o := range opts {
		o(r)
	}
	if r.ownClient && r.timeout > 0 {
		r.client.Timeout = r.timeout
	}
	meta, err := r.fetchMeta()
	if err != nil {
		return nil, err
	}
	r.n = meta.N
	if meta.M != nil {
		r.m, r.hasM = *meta.M, true
	}
	if meta.MaxDegree != nil {
		r.maxDeg, r.hasMaxDeg = *meta.MaxDegree, true
	}
	r.hasRE = meta.RandomEdge
	return wrapRemoteCaps(r), nil
}

// wrapRemoteCaps selects the capability wrapper matching the shard's meta:
// a Remote advertises M / MaxDegree / RandomEdge exactly when the shard's
// backing source does, so capability type assertions mirror the shard.
// Embedding *Remote keeps the full method set (Source, Closer,
// BatchProber, RoundTripCounter).
func wrapRemoteCaps(r *Remote) Source {
	switch {
	case r.hasM && r.hasMaxDeg && r.hasRE:
		return remoteMDegRE{remoteMDeg{r}}
	case r.hasM && r.hasMaxDeg:
		return remoteMDeg{r}
	case r.hasM && r.hasRE:
		return remoteMRE{remoteM{r}}
	case r.hasMaxDeg && r.hasRE:
		return remoteDegRE{remoteDeg{r}}
	case r.hasM:
		return remoteM{r}
	case r.hasMaxDeg:
		return remoteDeg{r}
	case r.hasRE:
		return remoteRE{r}
	}
	return r
}

type remoteM struct{ *Remote }

func (r remoteM) M() int { return r.m }

type remoteDeg struct{ *Remote }

func (r remoteDeg) MaxDegree() int { return r.maxDeg }

type remoteMDeg struct{ *Remote }

func (r remoteMDeg) M() int { return r.m }

func (r remoteMDeg) MaxDegree() int { return r.maxDeg }

type remoteRE struct{ *Remote }

func (r remoteRE) RandomEdge(prg *rnd.PRG) (int, int) { return r.randomEdge(prg) }

type remoteMRE struct{ remoteM }

func (r remoteMRE) RandomEdge(prg *rnd.PRG) (int, int) { return r.randomEdge(prg) }

type remoteDegRE struct{ remoteDeg }

func (r remoteDegRE) RandomEdge(prg *rnd.PRG) (int, int) { return r.randomEdge(prg) }

type remoteMDegRE struct{ remoteMDeg }

func (r remoteMDegRE) RandomEdge(prg *rnd.PRG) (int, int) { return r.randomEdge(prg) }

// Base returns the shard's base URL (for error reporting and bench
// labels).
func (r *Remote) Base() string { return r.base }

// N implements Source from the metadata snapshot; free, as in the model.
func (r *Remote) N() int { return r.n }

// Degree implements Source.
func (r *Remote) Degree(v int) int { return r.probe(OpDegree, v, 0) }

// Neighbor implements Source.
func (r *Remote) Neighbor(v, i int) int { return r.probe(OpNeighbor, v, i) }

// Adjacency implements Source.
func (r *Remote) Adjacency(u, v int) int {
	// Out-of-range endpoints answer -1 locally (the wire contract answers
	// the same), saving the round trip algorithms never need.
	if u < 0 || u >= r.n || v < 0 || v >= r.n {
		return -1
	}
	return r.probe(OpAdjacency, u, v)
}

// RoundTrips implements RoundTripCounter: logical shard requests issued so
// far (probes, batches and the construction-time meta fetch; retries of a
// failing request are not re-counted).
func (r *Remote) RoundTrips() uint64 { return r.requests.Load() }

// Close releases the client's idle connections. Idempotent; a closed
// Remote remains usable (new probes open fresh connections).
func (r *Remote) Close() error {
	r.closeOnce.Do(r.client.CloseIdleConnections)
	return nil
}

// randomEdge implements the RandomEdger capability over the wire: one
// uint64 drawn from the caller's PRG becomes the shard-side sampling seed,
// so the answer is a deterministic function of the caller's PRG state and
// identical on every replica of the graph.
func (r *Remote) randomEdge(prg *rnd.PRG) (int, int) {
	seed := prg.Uint64()
	reqURL := fmt.Sprintf("%s/probe?op=%s&seed=%d%s", r.base, OpRandomEdge, seed, r.sourceParam())
	var ans randomEdgeAnswer
	if err := r.getJSON(reqURL, &ans); err != nil {
		panic(&ProbeError{Shard: r.base, Op: OpRandomEdge, Err: err})
	}
	return ans.U, ans.V
}

func (r *Remote) probe(op string, a, b int) int {
	ans, err := r.probeErr(op, a, b)
	if err != nil {
		panic(err)
	}
	return ans
}

func (r *Remote) probeErr(op string, a, b int) (int, *ProbeError) {
	probeURL := fmt.Sprintf("%s/probe?op=%s&a=%d&b=%d%s", r.base, op, a, b, r.sourceParam())
	var ans probeAnswer
	if err := r.getJSON(probeURL, &ans); err != nil {
		return 0, &ProbeError{Shard: r.base, Op: op, A: a, B: b, Err: err}
	}
	return ans.Answer, nil
}

// ProbeBatch implements BatchProber with one POST round trip.
func (r *Remote) ProbeBatch(probes []ProbeReq) ([]int, error) {
	if len(probes) == 0 {
		return nil, nil
	}
	body, err := json.Marshal(probeBatchReq{Probes: probes})
	if err != nil {
		return nil, err
	}
	batchURL := r.base + "/probe" + strings.Replace(r.sourceParam(), "&", "?", 1)
	var out probeBatchAnswer
	if err := r.doJSON(func() (*http.Response, error) {
		return r.client.Post(batchURL, "application/json", strings.NewReader(string(body)))
	}, &out); err != nil {
		return nil, &ProbeError{Shard: r.base, Op: "batch", A: len(probes), Err: err}
	}
	if len(out.Answers) != len(probes) {
		return nil, &ProbeError{Shard: r.base, Op: "batch", A: len(probes),
			Err: fmt.Errorf("shard answered %d of %d probes", len(out.Answers), len(probes))}
	}
	return out.Answers, nil
}

func (r *Remote) fetchMeta() (probeMeta, error) {
	var meta probeMeta
	if err := r.getJSON(r.base+"/probe/meta"+strings.Replace(r.sourceParam(), "&", "?", 1), &meta); err != nil {
		return meta, fmt.Errorf("source: remote: %s is not answering as a probe shard: %w", r.base, err)
	}
	if meta.N < 0 || meta.N > MaxVertices {
		return meta, fmt.Errorf("source: remote: shard %s reports n=%d, outside [0,%d]", r.base, meta.N, MaxVertices)
	}
	return meta, nil
}

func (r *Remote) sourceParam() string {
	if r.name == "" {
		return ""
	}
	return "&source=" + url.QueryEscape(r.name)
}

func (r *Remote) getJSON(u string, out any) error {
	return r.doJSON(func() (*http.Response, error) { return r.client.Get(u) }, out)
}

// doJSON issues the request with retry-with-backoff and decodes a 200
// body into out. Transport errors, 5xx and 429 retry; other statuses are
// terminal (the request itself is wrong, sending it again cannot help).
func (r *Remote) doJSON(do func() (*http.Response, error), out any) error {
	r.requests.Add(1)
	var last error
	for attempt := 0; attempt <= r.retries; attempt++ {
		if attempt > 0 {
			time.Sleep(r.backoff << (attempt - 1))
		}
		resp, err := do()
		if err != nil {
			last = err
			continue
		}
		body, err := io.ReadAll(io.LimitReader(resp.Body, maxProbeBody))
		resp.Body.Close()
		if err != nil {
			last = err
			continue
		}
		if resp.StatusCode == http.StatusOK {
			if err := json.Unmarshal(body, out); err != nil {
				last = fmt.Errorf("malformed shard response: %w", err)
				continue
			}
			return nil
		}
		last = fmt.Errorf("status %d: %s", resp.StatusCode, shardErrText(body))
		if resp.StatusCode < 500 && resp.StatusCode != http.StatusTooManyRequests {
			return last
		}
	}
	return fmt.Errorf("%w (after %d attempts)", last, r.retries+1)
}

// shardErrText extracts the error envelope's message, falling back to the
// trimmed raw body.
func shardErrText(body []byte) string {
	var we wireError
	if json.Unmarshal(body, &we) == nil && we.Error != "" {
		return we.Error
	}
	s := strings.TrimSpace(string(body))
	if len(s) > 200 {
		s = s[:200] + "..."
	}
	return s
}
