package source

// Remote: a Source whose probes are answered by another process speaking
// the probe wire protocol (wire.go) — the backend that turns the library
// into a horizontally scalable service. One lcaserve replica can answer
// queries whose probes are served by another, and Sharded composes N of
// these into one consistent-hashed fleet with failover and hedging.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"lca/internal/attest"
	"lca/internal/rnd"
	"lca/internal/trace"
)

// ErrAttestation marks a probe answer that failed verification against a
// pinned graph commitment: the row proof did not fold to the root, or
// the scalar answer contradicted the verified row. It wraps into
// ProbeError.Err, and ProbeError.Temporary() treats it as failover-
// eligible — a lying replica is routed around like a dead one, except
// the fleet also distrusts it permanently (Sharded) instead of reviving
// it.
var ErrAttestation = errors.New("probe answer failed attestation against the pinned commitment")

// ProbeError is the panic payload raised by network-backed sources when a
// probe cannot be answered after all retries. The Source interface has no
// error returns — local backends cannot fail — so network failure
// surfaces as a typed panic that the Session layer (and internal/serve)
// recover into ordinary errors; code probing a Remote directly should do
// the same.
type ProbeError struct {
	// Shard is the base URL of the failing shard (or a fleet label).
	Shard string
	// Op, A, B identify the probe that failed.
	Op   string
	A, B int
	// Status is the HTTP status of a terminal protocol answer, 0 for
	// transport failures. Temporary() is derived from it.
	Status int
	// Err is the underlying transport or protocol error.
	Err error
}

func (e *ProbeError) Error() string {
	return fmt.Sprintf("source: shard %s: probe %s(%d,%d): %v", e.Shard, e.Op, e.A, e.B, e.Err)
}

func (e *ProbeError) Unwrap() error { return e.Err }

// Temporary reports whether the failure is the shard's fault (transport
// error, 5xx, 429) rather than the request's: only temporary failures
// justify failing the probe over to another replica — a 400 would just be
// answered 400 again.
func (e *ProbeError) Temporary() bool {
	if errors.Is(e.Err, ErrAttestation) {
		// A detected lie is the shard's fault: another replica may answer
		// honestly, so the probe is failover-eligible.
		return true
	}
	return e.Status == 0 || e.Status >= 500 || e.Status == http.StatusTooManyRequests
}

// statusError carries the HTTP status of a non-200 shard answer through
// the retry loop so ProbeError.Status can report it.
type statusError struct {
	status int
	msg    string
}

func (e *statusError) Error() string { return fmt.Sprintf("status %d: %s", e.status, e.msg) }

// statusOf extracts the terminal HTTP status from a probe failure chain
// (0 for pure transport errors).
func statusOf(err error) int {
	var se *statusError
	if errors.As(err, &se) {
		return se.status
	}
	return 0
}

// Remote probes a shard over HTTP. Construct with OpenRemote; the zero
// value is unusable. Safe for concurrent use: the underlying http.Client
// reuses pooled keep-alive connections across goroutines.
//
// Failed requests are retried with exponential backoff (transport errors,
// 5xx and 429 responses; protocol-level 4xx errors are not retried); a
// probe that still fails panics with *ProbeError, which Session queries
// and the HTTP server convert back into errors.
//
// Optional capabilities (EdgeCounter, DegreeBounder, RandomEdger) mirror
// the shard's /probe/meta and are exposed through the dynamic capability
// view (Caps; discover them with the *Of accessors). Remote additionally
// implements Pinger (health-plane liveness checks for Sharded's reviver)
// and TripScoper (request-scoped round-trip attribution).
type Remote struct {
	base      string // scheme://host[:port], no trailing slash
	name      string // optional ?source= selector on the shard
	client    *http.Client
	ownClient bool          // we built the client: WithTimeout may mutate it
	timeout   time.Duration // requested WithTimeout, applied post-options
	retries   int
	backoff   time.Duration

	n               int
	m, maxDeg       int
	hasM, hasMaxDeg bool
	hasRE           bool
	hasRowFull      bool
	// root is the pinned graph commitment (WithCommitment / #root=HEX in
	// the spec fragment). When pinned, every probe carries attest=1 and
	// every answer is verified against the root before use.
	root      attest.Root
	pinned    bool
	closeOnce sync.Once
	// attestFails counts answers that failed verification; proofBytes the
	// proof bytes transported — the AttestCounter capability.
	attestFails tripCount
	proofBytes  tripCount
	// requests counts logical shard requests (one per probe, batch or meta
	// fetch; retries of one request are not re-counted) — the
	// RoundTripCounter capability. Health-plane pings are not counted.
	requests tripCount
}

var (
	_ Source           = (*Remote)(nil)
	_ CapSource        = (*Remote)(nil)
	_ Closer           = (*Remote)(nil)
	_ BatchProber      = (*Remote)(nil)
	_ RoundTripCounter = (*Remote)(nil)
	_ Pinger           = (*Remote)(nil)
	_ TripScoper       = (*Remote)(nil)
	_ AttestCounter    = (*Remote)(nil)
)

// RemoteOption configures a Remote at construction.
type RemoteOption func(*Remote)

// WithHTTPClient replaces the default client (5s per-request timeout,
// pooled keep-alive connections). The caller keeps ownership — the
// client is never mutated; Close only releases idle connections.
func WithHTTPClient(c *http.Client) RemoteOption {
	return func(r *Remote) {
		if c != nil {
			r.client = c
			r.ownClient = false
		}
	}
}

// WithTimeout sets the per-request timeout (default 5s). Ignored when a
// caller-owned client is supplied with WithHTTPClient (in either option
// order): that client's configuration belongs to the caller.
func WithTimeout(d time.Duration) RemoteOption {
	return func(r *Remote) {
		if d > 0 {
			r.timeout = d
		}
	}
}

// WithRetries sets how many times a failed probe request is retried
// (default 2, so 3 attempts in total). 0 disables retrying; negative is 0.
func WithRetries(n int) RemoteOption {
	return func(r *Remote) {
		if n < 0 {
			n = 0
		}
		r.retries = n
	}
}

// WithRetryBackoff sets the first retry's backoff (default 50ms); the k-th
// retry waits 2^(k-1) times as long.
func WithRetryBackoff(d time.Duration) RemoteOption {
	return func(r *Remote) {
		if d > 0 {
			r.backoff = d
		}
	}
}

// WithCommitment pins the shard's graph commitment: every probe is sent
// with attest=1 and its answer verified against root — a mismatch
// surfaces as a *ProbeError wrapping ErrAttestation instead of a wrong
// answer. The spec form is remote:URL#root=HEX. Opening fails when the
// shard does not advertise exactly this commitment in /probe/meta.
func WithCommitment(root attest.Root) RemoteOption {
	return func(r *Remote) {
		if !root.IsZero() {
			r.root = root
			r.pinned = true
		}
	}
}

// OpenRemote connects to a probe shard and fetches its O(1) metadata. The
// URL names the shard's base ("http://host:port"; a bare host:port gets
// http://); a fragment selects a named source on a multi-source shard
// ("http://host:port#web") and may pin a graph commitment with a root=HEX
// segment ("http://host:port#root=HEX", "#web&root=HEX"), the spec form
// of WithCommitment. The returned Source carries the EdgeCounter /
// DegreeBounder / RandomEdger capabilities — on its dynamic capability
// view — exactly when the shard's backing source does.
func OpenRemote(rawURL string, opts ...RemoteOption) (Source, error) {
	base := strings.TrimSpace(rawURL)
	if base == "" {
		return nil, fmt.Errorf("source: remote: empty shard URL")
	}
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	u, err := url.Parse(base)
	if err != nil {
		return nil, fmt.Errorf("source: remote: shard URL %q: %w", rawURL, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return nil, fmt.Errorf("source: remote: shard URL %q: unsupported scheme %q (want http or https)", rawURL, u.Scheme)
	}
	if u.Host == "" {
		return nil, fmt.Errorf("source: remote: shard URL %q: missing host", rawURL)
	}
	name, fragRoot, err := parseRemoteFragment(u.Fragment)
	if err != nil {
		return nil, fmt.Errorf("source: remote: shard URL %q: %w", rawURL, err)
	}
	u.Fragment = ""
	u.Path = strings.TrimSuffix(u.Path, "/")
	u.RawQuery = ""
	r := &Remote{
		base:      u.String(),
		name:      name,
		client:    &http.Client{Timeout: 5 * time.Second},
		ownClient: true,
		retries:   2,
		backoff:   50 * time.Millisecond,
	}
	for _, o := range opts {
		o(r)
	}
	if !fragRoot.IsZero() {
		WithCommitment(fragRoot)(r)
	}
	if r.ownClient && r.timeout > 0 {
		r.client.Timeout = r.timeout
	}
	meta, err := r.fetchMeta()
	if err != nil {
		return nil, err
	}
	r.n = meta.N
	if meta.M != nil {
		r.m, r.hasM = *meta.M, true
	}
	if meta.MaxDegree != nil {
		r.maxDeg, r.hasMaxDeg = *meta.MaxDegree, true
	}
	r.hasRE = meta.RandomEdge
	r.hasRowFull = meta.RowFull
	if r.pinned {
		// Fail fast on misconfiguration: a shard that carries no
		// commitment could never answer attest=1, and one advertising a
		// different root serves a different graph than the caller pinned.
		if meta.Commitment == "" {
			return nil, fmt.Errorf("source: remote: shard %s carries no commitment; cannot pin root %s", r.base, r.root)
		}
		if meta.Commitment != r.root.String() {
			return nil, fmt.Errorf("source: remote: shard %s advertises commitment %s, not the pinned %s", r.base, meta.Commitment, r.root)
		}
	}
	return r, nil
}

// parseRemoteFragment splits a shard URL's fragment into the named-source
// selector and an optional pinned commitment: "&"-separated segments,
// root=HEX pinning, anything else the source name.
func parseRemoteFragment(frag string) (name string, root attest.Root, err error) {
	if frag == "" {
		return "", attest.Root{}, nil
	}
	for _, seg := range strings.Split(frag, "&") {
		if raw, ok := strings.CutPrefix(seg, "root="); ok {
			root, err = attest.ParseRoot(raw)
			if err != nil {
				return "", attest.Root{}, err
			}
			continue
		}
		// A key=value segment that isn't root= is almost certainly a
		// typo'd pin; treating it as a source name would silently drop
		// the commitment, so reject it.
		if key, _, ok := strings.Cut(seg, "="); ok {
			return "", attest.Root{}, fmt.Errorf("unknown fragment key %q (want root=HEX or a source name)", key)
		}
		if name != "" && seg != "" {
			return "", attest.Root{}, fmt.Errorf("fragment names two sources (%q and %q)", name, seg)
		}
		name = seg
	}
	return name, root, nil
}

// Caps implements CapSource from the construction-time /probe/meta
// snapshot: the remote advertises M / MaxDegree / RandomEdge exactly when
// the shard's backing source does.
func (r *Remote) Caps() Caps {
	c := Caps{}
	if r.hasM {
		m := r.m
		c.M = func() int { return m }
	}
	if r.hasMaxDeg {
		d := r.maxDeg
		c.MaxDegree = func() int { return d }
	}
	if r.hasRE {
		c.RandomEdge = func(prg *rnd.PRG) (int, int) { return r.randomEdge(probeScope{}, prg) }
	}
	if r.hasRowFull {
		c.FetchRows = func(vs []int) ([][]int, error) { return r.fetchRowsScoped(probeScope{}, vs) }
	}
	return c
}

// Base returns the shard's base URL (for error reporting and bench
// labels).
func (r *Remote) Base() string { return r.base }

// N implements Source from the metadata snapshot; free, as in the model.
func (r *Remote) N() int { return r.n }

// Degree implements Source.
func (r *Remote) Degree(v int) int { return r.probe(probeScope{}, OpDegree, v, 0) }

// Neighbor implements Source.
func (r *Remote) Neighbor(v, i int) int { return r.probe(probeScope{}, OpNeighbor, v, i) }

// Adjacency implements Source.
func (r *Remote) Adjacency(u, v int) int {
	// Out-of-range endpoints answer -1 locally (the wire contract answers
	// the same), saving the round trip algorithms never need.
	if u < 0 || u >= r.n || v < 0 || v >= r.n {
		return -1
	}
	return r.probe(probeScope{}, OpAdjacency, u, v)
}

// RoundTrips implements RoundTripCounter: logical shard requests issued so
// far (probes, batches and the construction-time meta fetch; retries of a
// failing request are not re-counted, health-plane pings never count).
func (r *Remote) RoundTrips() uint64 { return r.requests.load() }

// ScopeTrips implements TripScoper: the view shares this remote's
// connections but counts round trips (and attestation accounting) into
// its own counters only.
func (r *Remote) ScopeTrips() Source {
	return &remoteScope{r: r, tc: &tripCount{}, af: &tripCount{}, pb: &tripCount{}}
}

// Ping implements Pinger: one uncounted, unretried health-plane request
// against /probe/meta. A 200 with a well-formed body means alive;
// anything else reports the failure.
func (r *Remote) Ping() error {
	resp, err := r.client.Get(r.metaURL())
	if err != nil {
		return fmt.Errorf("source: ping %s: %w", r.base, err)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxProbeBody))
	resp.Body.Close()
	if err != nil {
		return fmt.Errorf("source: ping %s: %w", r.base, err)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("source: ping %s: status %d: %s", r.base, resp.StatusCode, shardErrText(body))
	}
	var meta probeMeta
	if err := json.Unmarshal(body, &meta); err != nil {
		return fmt.Errorf("source: ping %s: malformed meta: %w", r.base, err)
	}
	return nil
}

// Close releases the client's idle connections. Idempotent; a closed
// Remote remains usable (new probes open fresh connections).
func (r *Remote) Close() error {
	r.closeOnce.Do(r.client.CloseIdleConnections)
	return nil
}

// randomEdge implements the RandomEdger capability over the wire: one
// uint64 drawn from the caller's PRG becomes the shard-side sampling seed,
// so the answer is a deterministic function of the caller's PRG state and
// identical on every replica of the graph.
func (r *Remote) randomEdge(ps probeScope, prg *rnd.PRG) (int, int) {
	u, v, err := r.randomEdgeScoped(ps, prg.Uint64())
	if err != nil {
		panic(err)
	}
	return u, v
}

// randomEdgeScoped is the error-returning seeded sampler shared by the
// public capability and Sharded's failover path.
func (r *Remote) randomEdgeScoped(ps probeScope, seed uint64) (int, int, *ProbeError) {
	reqURL := fmt.Sprintf("%s/probe?op=%s&seed=%d%s", r.base, OpRandomEdge, seed, r.sourceParam())
	var ans randomEdgeAnswer
	if err := r.doJSON(context.Background(), ps, "rpc:randomedge", -1, nil, func(ctx context.Context) (*http.Request, error) {
		return http.NewRequestWithContext(ctx, http.MethodGet, reqURL, nil)
	}, &ans); err != nil {
		return 0, 0, &ProbeError{Shard: r.base, Op: OpRandomEdge, Status: statusOf(err), Err: err}
	}
	return ans.U, ans.V, nil
}

func (r *Remote) probe(ps probeScope, op string, a, b int) int {
	ans, err := r.probeScoped(context.Background(), ps, op, a, b)
	if err != nil {
		panic(err)
	}
	return ans
}

// probeScoped issues one scalar probe, attributing the round trip to
// ps.tc (nil: unscoped), recording an rpc span when ps is traced, and
// honouring ctx cancellation — the hedging hook: the loser of a hedged
// race is cancelled rather than completed. Against a pinned shard the
// probe carries attest=1 and the answer is verified before use:
// verification sits outside the retry loop, so a liar is never retried,
// only reported.
func (r *Remote) probeScoped(ctx context.Context, ps probeScope, op string, a, b int) (int, *ProbeError) {
	probeURL := fmt.Sprintf("%s/probe?op=%s&a=%d&b=%d%s", r.base, op, a, b, r.wireParams())
	var ans probeAnswer
	if err := r.doJSON(ctx, ps, rpcSpanOp(op), a, nil, func(ctx context.Context) (*http.Request, error) {
		return http.NewRequestWithContext(ctx, http.MethodGet, probeURL, nil)
	}, &ans); err != nil {
		return 0, &ProbeError{Shard: r.base, Op: op, A: a, B: b, Status: statusOf(err), Err: err}
	}
	if r.pinned {
		if perr := r.verifyScalar(ps, op, a, b, &ans); perr != nil {
			return 0, perr
		}
	}
	return ans.Answer, nil
}

// verifyScalar checks one attested scalar answer: the returned row must
// fold to the pinned root, and the answer must be exactly what the
// verified row implies — a shard whose proofs are honest but whose
// answers lie is caught by the cross-check, not trusted.
func (r *Remote) verifyScalar(ps probeScope, op string, a, b int, ans *probeAnswer) *ProbeError {
	if a < 0 || a >= r.n {
		// Outside the committed range nothing is provable; the protocol
		// answer is -1 (adjacency) and the wire layer rejects other ops.
		if op == OpAdjacency && ans.Answer != -1 {
			return r.attestErr(ps, op, a, b, fmt.Errorf("%w: answer %d for out-of-range vertex %d, want -1", ErrAttestation, ans.Answer, a))
		}
		return nil
	}
	r.countProof(ps, ans.Proof)
	if err := attest.VerifyRow(r.root, r.n, a, ans.Row, ans.Proof); err != nil {
		return r.attestErr(ps, op, a, b, fmt.Errorf("%w: %v", ErrAttestation, err))
	}
	want := scalarFromRow(op, ans.Row, b)
	if ans.Answer != want {
		return r.attestErr(ps, op, a, b, fmt.Errorf("%w: answer %d contradicts the verified row (want %d)", ErrAttestation, ans.Answer, want))
	}
	return nil
}

// scalarFromRow derives the only honest scalar answer from a verified
// adjacency row. For OpRowFull the answer is the degree.
func scalarFromRow(op string, row []int, b int) int {
	switch op {
	case OpNeighbor:
		if b < 0 || b >= len(row) {
			return -1
		}
		return row[b]
	case OpAdjacency:
		for i, w := range row {
			if w == b {
				return i
			}
		}
		return -1
	default: // OpDegree, OpRowFull
		return len(row)
	}
}

// countProof attributes transported proof bytes to the remote and the
// per-request view.
func (r *Remote) countProof(ps probeScope, proof []string) {
	n := uint64(attest.ProofBytes(proof))
	r.proofBytes.add(n)
	ps.pb.add(n)
}

// attestErr records one verification failure and wraps it for the
// failover machinery.
func (r *Remote) attestErr(ps probeScope, op string, a, b int, err error) *ProbeError {
	r.attestFails.add(1)
	ps.af.add(1)
	return &ProbeError{Shard: r.base, Op: op, A: a, B: b, Err: err}
}

// verifyBatch checks every attested answer of a batch (scalar ops and
// rowfull alike) against the pinned root.
func (r *Remote) verifyBatch(ps probeScope, probes []ProbeReq, out *probeBatchAnswer) *ProbeError {
	if len(out.Rows) != len(probes) || len(out.Proofs) != len(probes) {
		return r.attestErr(ps, "batch", len(probes), 0,
			fmt.Errorf("%w: shard answered %d rows and %d proofs for %d probes", ErrAttestation, len(out.Rows), len(out.Proofs), len(probes)))
	}
	for i, p := range probes {
		if p.A < 0 || p.A >= r.n {
			if p.Op == OpAdjacency && out.Answers[i] != -1 {
				return r.attestErr(ps, p.Op, p.A, p.B, fmt.Errorf("%w: answer %d for out-of-range vertex %d, want -1", ErrAttestation, out.Answers[i], p.A))
			}
			continue
		}
		r.countProof(ps, out.Proofs[i])
		if err := attest.VerifyRow(r.root, r.n, p.A, out.Rows[i], out.Proofs[i]); err != nil {
			return r.attestErr(ps, p.Op, p.A, p.B, fmt.Errorf("%w: probe %d: %v", ErrAttestation, i, err))
		}
		if want := scalarFromRow(p.Op, out.Rows[i], p.B); out.Answers[i] != want {
			return r.attestErr(ps, p.Op, p.A, p.B,
				fmt.Errorf("%w: probe %d: answer %d contradicts the verified row (want %d)", ErrAttestation, i, out.Answers[i], want))
		}
	}
	return nil
}

// AttestFailures implements AttestCounter: probe answers that failed
// verification against the pinned commitment so far.
func (r *Remote) AttestFailures() uint64 { return r.attestFails.load() }

// ProofBytes implements AttestCounter: attestation proof bytes
// transported so far.
func (r *Remote) ProofBytes() uint64 { return r.proofBytes.load() }

// ProbeBatch implements BatchProber with one POST round trip.
func (r *Remote) ProbeBatch(probes []ProbeReq) ([]int, error) {
	return r.batchScoped(probeScope{}, probes)
}

// batchScoped is ProbeBatch with per-view trip attribution.
func (r *Remote) batchScoped(ps probeScope, probes []ProbeReq) ([]int, error) {
	if len(probes) == 0 {
		return nil, nil
	}
	body, err := json.Marshal(probeBatchReq{Probes: probes})
	if err != nil {
		return nil, err
	}
	batchURL := r.base + "/probe" + strings.Replace(r.wireParams(), "&", "?", 1)
	var tags []string
	if ps.tr != nil {
		tags = []string{fmt.Sprintf("batch=%d", len(probes))}
	}
	var out probeBatchAnswer
	if err := r.doJSON(context.Background(), ps, "rpc:batch", -1, tags, func(ctx context.Context) (*http.Request, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, batchURL, strings.NewReader(string(body)))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		return req, nil
	}, &out); err != nil {
		return nil, &ProbeError{Shard: r.base, Op: "batch", A: len(probes), Status: statusOf(err), Err: err}
	}
	if len(out.Answers) != len(probes) {
		return nil, &ProbeError{Shard: r.base, Op: "batch", A: len(probes),
			Err: fmt.Errorf("shard answered %d of %d probes", len(out.Answers), len(probes))}
	}
	if r.pinned {
		if perr := r.verifyBatch(ps, probes, &out); perr != nil {
			return nil, perr
		}
	}
	return out.Answers, nil
}

// fetchRowsScoped implements the RowFetcher capability over the wire:
// one POST of rowfull probes per MaxProbeBatch chunk, each answering the
// degree plus the full neighbor row — the remainder round trip the
// prefetcher would otherwise pay simply does not exist on this path. The
// shard's answers are validated (row count and per-row length against
// the answered degrees) before use.
func (r *Remote) fetchRowsScoped(ps probeScope, vs []int) ([][]int, error) {
	if len(vs) == 0 {
		return nil, nil
	}
	rows := make([][]int, 0, len(vs))
	for start := 0; start < len(vs); start += MaxProbeBatch {
		chunk := vs[start:min(start+MaxProbeBatch, len(vs))]
		probes := make([]ProbeReq, len(chunk))
		for i, v := range chunk {
			probes[i] = ProbeReq{Op: OpRowFull, A: v}
		}
		body, err := json.Marshal(probeBatchReq{Probes: probes})
		if err != nil {
			return nil, err
		}
		batchURL := r.base + "/probe" + strings.Replace(r.wireParams(), "&", "?", 1)
		var tags []string
		if ps.tr != nil {
			tags = []string{fmt.Sprintf("batch=%d", len(chunk))}
		}
		var out probeBatchAnswer
		if err := r.doJSON(context.Background(), ps, "rpc:rowfull", -1, tags, func(ctx context.Context) (*http.Request, error) {
			req, err := http.NewRequestWithContext(ctx, http.MethodPost, batchURL, strings.NewReader(string(body)))
			if err != nil {
				return nil, err
			}
			req.Header.Set("Content-Type", "application/json")
			return req, nil
		}, &out); err != nil {
			return nil, &ProbeError{Shard: r.base, Op: OpRowFull, A: len(chunk), Status: statusOf(err), Err: err}
		}
		if len(out.Answers) != len(chunk) || len(out.Rows) != len(chunk) {
			return nil, &ProbeError{Shard: r.base, Op: OpRowFull, A: len(chunk),
				Err: fmt.Errorf("shard answered %d answers and %d rows for %d probes", len(out.Answers), len(out.Rows), len(chunk))}
		}
		for i, row := range out.Rows {
			if len(row) != out.Answers[i] {
				return nil, &ProbeError{Shard: r.base, Op: OpRowFull, A: chunk[i],
					Err: fmt.Errorf("shard answered a %d-neighbor row for degree %d", len(row), out.Answers[i])}
			}
		}
		if r.pinned {
			if perr := r.verifyBatch(ps, probes, &out); perr != nil {
				return nil, perr
			}
		}
		rows = append(rows, out.Rows...)
	}
	return rows, nil
}

func (r *Remote) metaURL() string {
	return r.base + "/probe/meta" + strings.Replace(r.sourceParam(), "&", "?", 1)
}

func (r *Remote) fetchMeta() (probeMeta, error) {
	var meta probeMeta
	if err := r.getJSON(r.metaURL(), &meta); err != nil {
		return meta, fmt.Errorf("source: remote: %s is not answering as a probe shard: %w", r.base, err)
	}
	if meta.N < 0 || meta.N > MaxVertices {
		return meta, fmt.Errorf("source: remote: shard %s reports n=%d, outside [0,%d]", r.base, meta.N, MaxVertices)
	}
	return meta, nil
}

func (r *Remote) sourceParam() string {
	if r.name == "" {
		return ""
	}
	return "&source=" + url.QueryEscape(r.name)
}

// wireParams renders the query-string suffix shared by probe requests
// ("&"-prefixed; callers flip the first "&" to "?" on bare paths): the
// named-source selector plus attest=1 against a pinned shard.
func (r *Remote) wireParams() string {
	s := r.sourceParam()
	if r.pinned {
		s += "&attest=1"
	}
	return s
}

// getJSON fetches one unscoped, untraced document (the meta plane).
func (r *Remote) getJSON(u string, out any) error {
	return r.doJSON(context.Background(), probeScope{}, "rpc:meta", -1, nil, func(ctx context.Context) (*http.Request, error) {
		return http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	}, out)
}

// traceCarrier is implemented by wire answer bodies that can carry a
// shard's server-side spans back to the client (wire.go).
type traceCarrier interface {
	traceSpans() []trace.Span
}

// doJSON issues one logical request with retry-with-backoff and decodes
// a 200 body into out. Transport errors, 5xx and 429 retry; other
// statuses are terminal (the request itself is wrong, sending it again
// cannot help). One logical request counts one round trip — on the
// shared counter and, when scoped, on ps.tc — regardless of retries.
// When ps is traced, the logical request records one rpc span under
// ps.parent (retries fold into an attempts tag), every attempt carries
// the X-LCA-Trace header, and shard-side spans returned in the answer
// are grafted under the rpc span. ctx cancellation aborts both
// in-flight attempts and backoff sleeps.
func (r *Remote) doJSON(ctx context.Context, ps probeScope, spanOp string, target int, tags []string, build func(context.Context) (*http.Request, error), out any) error {
	r.requests.add(1)
	ps.tc.add(1)
	if ps.tr == nil {
		_, err := r.attempt(ctx, "", build, out)
		return err
	}
	h := ps.tr.StartUnder(ps.parent, spanOp, target)
	attempts, err := r.attempt(ctx, trace.FormatHeader(ps.tr.ID(), h.ID()), build, out)
	if err == nil {
		if c, ok := out.(traceCarrier); ok {
			ps.tr.Merge(h.ID(), c.traceSpans())
		}
	}
	if attempts > 1 {
		tags = append(tags, fmt.Sprintf("attempts=%d", attempts))
	}
	if err != nil {
		tags = append(tags, "error")
	}
	ps.tr.End(h, tags...)
	return err
}

// attempt runs doJSON's retry loop, reporting how many attempts the
// logical request took.
func (r *Remote) attempt(ctx context.Context, traceHdr string, build func(context.Context) (*http.Request, error), out any) (attempts int, _ error) {
	var last error
	for a := 0; a <= r.retries; a++ {
		attempts = a + 1
		if a > 0 {
			select {
			case <-ctx.Done():
				return attempts, fmt.Errorf("%w (cancelled after %d attempts)", last, a)
			case <-time.After(r.backoff << (a - 1)):
			}
		}
		req, err := build(ctx)
		if err != nil {
			return attempts, err
		}
		if traceHdr != "" {
			req.Header.Set(trace.Header, traceHdr)
		}
		resp, err := r.client.Do(req)
		if err != nil {
			last = err
			if ctx.Err() != nil {
				return attempts, last
			}
			continue
		}
		body, err := io.ReadAll(io.LimitReader(resp.Body, maxProbeBody))
		resp.Body.Close()
		if err != nil {
			last = err
			continue
		}
		if resp.StatusCode == http.StatusOK {
			if err := json.Unmarshal(body, out); err != nil {
				last = fmt.Errorf("malformed shard response: %w", err)
				continue
			}
			return attempts, nil
		}
		last = &statusError{status: resp.StatusCode, msg: shardErrText(body)}
		if resp.StatusCode < 500 && resp.StatusCode != http.StatusTooManyRequests {
			return attempts, last
		}
	}
	return attempts, fmt.Errorf("%w (after %d attempts)", last, r.retries+1)
}

// shardErrText extracts the error envelope's message, falling back to the
// trimmed raw body.
func shardErrText(body []byte) string {
	var we wireError
	if json.Unmarshal(body, &we) == nil && we.Error != "" {
		return we.Error
	}
	s := strings.TrimSpace(string(body))
	if len(s) > 200 {
		s = s[:200] + "..."
	}
	return s
}

// remoteScope is the TripScoper view of a Remote: same shard, same
// connections, round trips counted into the view's own counter, spans
// recorded into the view's tracer when one is set.
type remoteScope struct {
	r      *Remote
	tc     *tripCount
	af, pb *tripCount
	tr     *trace.Tracer
}

var (
	_ Source           = (*remoteScope)(nil)
	_ CapSource        = (*remoteScope)(nil)
	_ BatchProber      = (*remoteScope)(nil)
	_ RoundTripCounter = (*remoteScope)(nil)
	_ TracerSetter     = (*remoteScope)(nil)
)

// SetTracer implements TracerSetter: subsequent probes through this
// view record rpc spans (and stitch the shard's spans) into tr. Set it
// before probing; the view is per-request, not concurrent with setup.
func (s *remoteScope) SetTracer(tr *trace.Tracer) { s.tr = tr }

// scope captures the per-call probe scope. The parent is read at call
// time: this view is probed serially (by the query's oracle stack), so
// the tracer's implicit parent is the enclosing oracle span.
func (s *remoteScope) scope() probeScope {
	return probeScope{tc: s.tc, af: s.af, pb: s.pb, tr: s.tr, parent: s.tr.Parent()}
}

func (s *remoteScope) N() int { return s.r.n }

func (s *remoteScope) Degree(v int) int { return s.r.probe(s.scope(), OpDegree, v, 0) }

func (s *remoteScope) Neighbor(v, i int) int { return s.r.probe(s.scope(), OpNeighbor, v, i) }

func (s *remoteScope) Adjacency(u, v int) int {
	if u < 0 || u >= s.r.n || v < 0 || v >= s.r.n {
		return -1
	}
	return s.r.probe(s.scope(), OpAdjacency, u, v)
}

func (s *remoteScope) ProbeBatch(probes []ProbeReq) ([]int, error) {
	return s.r.batchScoped(s.scope(), probes)
}

// Caps forwards the remote's capability view, with RandomEdge and
// FetchRows attributed to this scope.
func (s *remoteScope) Caps() Caps {
	c := s.r.Caps()
	if c.RandomEdge != nil {
		c.RandomEdge = func(prg *rnd.PRG) (int, int) { return s.r.randomEdge(s.scope(), prg) }
	}
	if c.FetchRows != nil {
		c.FetchRows = func(vs []int) ([][]int, error) { return s.r.fetchRowsScoped(s.scope(), vs) }
	}
	return c
}

// RoundTrips reports only the trips issued through this view.
func (s *remoteScope) RoundTrips() uint64 { return s.tc.load() }

// AttestFailures implements AttestCounter for this view only.
func (s *remoteScope) AttestFailures() uint64 { return s.af.load() }

// ProofBytes implements AttestCounter for this view only.
func (s *remoteScope) ProofBytes() uint64 { return s.pb.load() }
