package source

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"lca/internal/gen"
	"lca/internal/graph"
	"lca/internal/rnd"
)

// writeCSRFile saves g as a CSR binary under the test's temp dir and
// returns the path.
func writeCSRFile(t testing.TB, g *graph.Graph) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.csr")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.WriteCSR(f, g); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestConformanceBackends runs the Source contract suite against every
// local backend family — the implicit generators across their degenerate
// shapes, the in-memory adapter, and the CSR reader on both sorted and
// shuffled files. The remote and sharded backends run the same suite over
// httptest shards in remote_test.go.
func TestConformanceBackends(t *testing.T) {
	static := func(src Source) Factory {
		return func(testing.TB) Source { return src }
	}
	offsets, err := gen.CirculantOffsets(64, 8, 7)
	if err != nil {
		t.Fatal(err)
	}
	circ, err := Circulant(64, offsets)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		open Factory
	}{
		{"ring/0", static(Ring(0))},
		{"ring/2", static(Ring(2))},
		{"ring/5", static(Ring(5))},
		{"ring/100", static(Ring(100))},
		{"grid/1x1", static(Grid(1, 1))},
		{"grid/1x6", static(Grid(1, 6))},
		{"grid/4x7", static(Grid(4, 7))},
		{"torus/2x2", static(Torus(2, 2))},
		{"torus/5x6", static(Torus(5, 6))},
		{"circulant/64d8", static(circ)},
		{"blockrandom/100", static(BlockRandom(100, 16, 5, 11))},
		{"blockrandom/ragged", static(BlockRandom(37, 16, 4, 3))},
		{"graph/gnp", static(FromGraph(gen.Gnp(120, 0.07, 3)))},
		{"graph/empty", static(FromGraph(gen.Gnp(10, 0, 1)))},
		{"csr/shuffled", func(t testing.TB) Source {
			c, err := OpenCSR(writeCSRFile(t, gen.Gnp(150, 0.06, 21)))
			if err != nil {
				t.Fatal(err)
			}
			return c
		}},
		{"csr/sorted", func(t testing.TB) Source {
			g := gen.Gnp(150, 0.06, 21)
			b := graph.NewBuilder(g.N())
			for _, e := range g.Edges() {
				b.AddEdge(e.U, e.V)
			}
			c, err := OpenCSR(writeCSRFile(t, b.Build()))
			if err != nil {
				t.Fatal(err)
			}
			return c
		}},
		{"csrmmap/shuffled", func(t testing.TB) Source {
			c, err := OpenCSRMmap(writeCSRFile(t, gen.Gnp(150, 0.06, 21)))
			if err != nil {
				if errors.Is(err, ErrMmapUnsupported) {
					t.Skip("mmap unsupported on this platform")
				}
				t.Fatal(err)
			}
			return c
		}},
		{"csrmmap/sorted", func(t testing.TB) Source {
			g := gen.Gnp(150, 0.06, 21)
			b := graph.NewBuilder(g.N())
			for _, e := range g.Edges() {
				b.AddEdge(e.U, e.V)
			}
			c, err := OpenCSRMmap(writeCSRFile(t, b.Build()))
			if err != nil {
				if errors.Is(err, ErrMmapUnsupported) {
					t.Skip("mmap unsupported on this platform")
				}
				t.Fatal(err)
			}
			return c
		}},
		{"sharded/local-replicas", func(t testing.TB) Source {
			s, err := NewSharded([]Source{Ring(60), Ring(60), Ring(60)})
			if err != nil {
				t.Fatal(err)
			}
			return s
		}},
		{"sharded/local-lru", func(t testing.TB) Source {
			s, err := NewSharded(
				[]Source{BlockRandom(90, 16, 5, 4), BlockRandom(90, 16, 5, 4)},
				WithProbeCache(64),
			)
			if err != nil {
				t.Fatal(err)
			}
			return s
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) { TestConformance(t, c.open) })
	}
}

// TestConformanceSampleIsExhaustiveWhenSmall pins the suite's probing
// breadth so a refactor cannot silently hollow it out.
func TestConformanceSampleIsExhaustiveWhenSmall(t *testing.T) {
	if got := conformanceSample(5); len(got) != 5 {
		t.Fatalf("sample(5) has %d vertices, want all 5", len(got))
	}
	big := conformanceSample(1_000_000)
	if len(big) != maxConformanceSample {
		t.Fatalf("sample(1e6) has %d vertices, want %d", len(big), maxConformanceSample)
	}
	for _, v := range big {
		if v < 0 || v >= 1_000_000 {
			t.Fatalf("sampled vertex %d out of range", v)
		}
	}
}

// TestShardedRouting pins the consistent-hash router: deterministic,
// in-range, and spreading load across shards rather than collapsing onto
// one.
func TestShardedRouting(t *testing.T) {
	s, err := newSharded([]Source{Ring(10_000), Ring(10_000), Ring(10_000), Ring(10_000)})
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 4)
	for v := 0; v < 10_000; v++ {
		sh := s.shardFor(v)
		if sh < 0 || sh >= 4 {
			t.Fatalf("shardFor(%d) = %d, out of range", v, sh)
		}
		if again := s.shardFor(v); again != sh {
			t.Fatalf("shardFor(%d) flapped: %d then %d", v, sh, again)
		}
		counts[sh]++
	}
	for i, c := range counts {
		// Uniform would be 2500; require each shard to own a fair share.
		if c < 1500 || c > 3500 {
			t.Fatalf("shard %d owns %d of 10000 vertices, outside [1500,3500]: %v", i, c, counts)
		}
	}
	// Consistency: dropping the last shard must not remap vertices owned
	// by the surviving shards among themselves.
	s3, err := newSharded([]Source{Ring(10_000), Ring(10_000), Ring(10_000)})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 10_000; v++ {
		before := s.shardFor(v)
		if before < 3 && s3.shardFor(v) != before {
			t.Fatalf("vertex %d moved from surviving shard %d to %d when shard 3 left", v, before, s3.shardFor(v))
		}
	}
}

// TestShardedRejectsMismatchedReplicas pins the replica invariant.
func TestShardedRejectsMismatchedReplicas(t *testing.T) {
	if _, err := NewSharded([]Source{Ring(10), Ring(11)}); err == nil {
		t.Fatal("NewSharded accepted shards with different n")
	}
	if _, err := NewSharded(nil); err == nil {
		t.Fatal("NewSharded accepted zero shards")
	}
	if _, err := NewSharded([]Source{Ring(10), Grid(2, 5)}); err == nil {
		t.Fatal("NewSharded accepted shards with mismatched edge counts")
	}
}

// TestShardedCapabilities: capabilities surface on the dynamic view iff
// every shard agrees.
func TestShardedCapabilities(t *testing.T) {
	s, err := NewSharded([]Source{Ring(30), Ring(30)})
	if err != nil {
		t.Fatal(err)
	}
	if mc, ok := EdgeCounterOf(s); !ok || mc.M() != 30 {
		t.Fatalf("sharded ring lost EdgeCounter (ok=%v)", ok)
	}
	if db, ok := DegreeBounderOf(s); !ok || db.MaxDegree() != 2 {
		t.Fatalf("sharded ring lost DegreeBounder (ok=%v)", ok)
	}
	// blockrandom has neither capability; the composite must not invent
	// them.
	s2, err := NewSharded([]Source{BlockRandom(50, 16, 4, 1), BlockRandom(50, 16, 4, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := EdgeCounterOf(s2); ok {
		t.Fatal("sharded blockrandom invented an EdgeCounter capability")
	}
	if _, ok := DegreeBounderOf(s2); ok {
		t.Fatal("sharded blockrandom invented a DegreeBounder capability")
	}
	// Every fleet reports per-replica health, live at rest.
	health, ok := HealthOf(s)
	if !ok || len(health) != 2 {
		t.Fatalf("sharded fleet health: ok=%v, %d entries, want 2", ok, len(health))
	}
	for i, h := range health {
		if h.State != ShardLive {
			t.Fatalf("healthy shard %d reports state %q, want %q", i, h.State, ShardLive)
		}
	}
}

// TestProbeLRU exercises the bounded cache directly: hits, eviction
// order, and the neighbor->adjacency priming path via Sharded.
func TestProbeLRU(t *testing.T) {
	c := newProbeLRU(2)
	k1 := probeKey{op: opDeg, ab: packProbe(1, 0)}
	k2 := probeKey{op: opDeg, ab: packProbe(2, 0)}
	k3 := probeKey{op: opDeg, ab: packProbe(3, 0)}
	c.put(k1, 10)
	c.put(k2, 20)
	if v, ok := c.get(k1); !ok || v != 10 {
		t.Fatalf("get(k1) = %d,%v want 10,true", v, ok)
	}
	c.put(k3, 30) // evicts k2 (k1 was refreshed by the get)
	if _, ok := c.get(k2); ok {
		t.Fatal("k2 survived eviction; LRU order broken")
	}
	if _, ok := c.get(k1); !ok {
		t.Fatal("k1 evicted despite being most recently used")
	}
	if c.lruLen() != 2 {
		t.Fatalf("cache holds %d entries, want 2", c.lruLen())
	}

	// Through Sharded: a Neighbor answer primes the adjacency cell, so the
	// follow-up Adjacency probe is answered without touching any shard.
	probes := 0
	counted := countingSource{Source: Ring(50), calls: &probes}
	s, err := newSharded([]Source{counted}, WithProbeCache(128))
	if err != nil {
		t.Fatal(err)
	}
	w := s.Neighbor(10, 0)
	if w != 9 {
		t.Fatalf("Neighbor(10,0) = %d, want 9", w)
	}
	before := probes
	if got := s.Adjacency(10, 9); got != 0 {
		t.Fatalf("Adjacency(10,9) = %d, want 0", got)
	}
	if probes != before {
		t.Fatalf("primed Adjacency probe still reached the shard (%d calls)", probes-before)
	}
	if d := s.Degree(10); d != 2 {
		t.Fatalf("Degree(10) = %d, want 2", d)
	}
	before = probes
	for i := 0; i < 5; i++ {
		s.Degree(10)
		s.Neighbor(10, 0)
		s.Adjacency(10, 9)
	}
	if probes != before {
		t.Fatalf("cached probes reached the shard %d times", probes-before)
	}
}

// countingSource counts probe calls reaching the wrapped source.
type countingSource struct {
	Source
	calls *int
}

func (c countingSource) Degree(v int) int {
	*c.calls++
	return c.Source.Degree(v)
}

func (c countingSource) Neighbor(v, i int) int {
	*c.calls++
	return c.Source.Neighbor(v, i)
}

func (c countingSource) Adjacency(u, v int) int {
	*c.calls++
	return c.Source.Adjacency(u, v)
}

// TestShardedProbeBatch checks index alignment and shard fan-out of the
// batch path over plain local shards.
func TestShardedProbeBatch(t *testing.T) {
	s, err := NewSharded([]Source{Ring(40), Ring(40)})
	if err != nil {
		t.Fatal(err)
	}
	bp := s.(BatchProber)
	var probes []ProbeReq
	var want []int
	direct := Ring(40)
	prg := rnd.NewPRG(5)
	for i := 0; i < 64; i++ {
		v := prg.Intn(40)
		switch i % 3 {
		case 0:
			probes = append(probes, ProbeReq{Op: OpDegree, A: v})
			want = append(want, direct.Degree(v))
		case 1:
			probes = append(probes, ProbeReq{Op: OpNeighbor, A: v, B: i % 3})
			want = append(want, direct.Neighbor(v, i%3))
		default:
			w := direct.Neighbor(v, 0)
			probes = append(probes, ProbeReq{Op: OpAdjacency, A: v, B: w})
			want = append(want, direct.Adjacency(v, w))
		}
	}
	got, err := bp.ProbeBatch(probes)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("batch answer %d = %d, want %d (probe %+v)", i, got[i], want[i], probes[i])
		}
	}
}
