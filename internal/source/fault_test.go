package source

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lca/internal/attest"
)

// faultShard is an httptest middleware that injects failures into one
// probe shard: 500s on everything (dead replica), a data-plane hang
// (slow replica; /probe/meta stays fast so the health plane reads the
// shard as alive — slow is not down), or truncated data-plane response
// bodies (malformed wire payloads). Cancelled requests (hedged losers)
// unblock immediately.
type faultShard struct {
	mu       sync.Mutex
	failing  bool
	truncate bool
	hang     time.Duration
	inner    http.Handler
	lie      *liarBacking // nil on fleets without Byzantine injection
}

func (f *faultShard) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	f.mu.Lock()
	failing, truncate, hang := f.failing, f.truncate, f.hang
	f.mu.Unlock()
	if failing {
		http.Error(w, "injected shard failure", http.StatusInternalServerError)
		return
	}
	dataPlane := strings.HasPrefix(r.URL.Path, "/probe") && r.URL.Path != "/probe/meta"
	if hang > 0 && dataPlane {
		select {
		case <-time.After(hang):
		case <-r.Context().Done():
			return
		}
	}
	if truncate && dataPlane {
		w = &truncatedWriter{ResponseWriter: w, room: 3}
	}
	f.inner.ServeHTTP(w, r)
}

// truncatedWriter forwards the first few body bytes and swallows the
// rest: the client sees a 200 with a malformed payload.
type truncatedWriter struct {
	http.ResponseWriter
	room int
}

func (tw *truncatedWriter) Write(b []byte) (int, error) {
	if tw.room <= 0 {
		return len(b), nil
	}
	cut := b
	if len(cut) > tw.room {
		cut = cut[:tw.room]
	}
	tw.room -= len(cut)
	if _, err := tw.ResponseWriter.Write(cut); err != nil {
		return 0, err
	}
	return len(b), nil
}

// liarBacking wraps one replica's attested backing source: with the lie
// switched on, every neighbor answer is rotated one vertex forward while
// the vertex count, degrees, commitment and row proofs stay honest —
// Byzantine, not broken. The attestation cross-check (honest proof,
// lying answer) is exactly what catches it.
type liarBacking struct {
	att   *Attested
	lying atomic.Bool
}

var _ Attestor = (*liarBacking)(nil)

func (l *liarBacking) N() int { return l.att.N() }

func (l *liarBacking) Degree(v int) int { return l.att.Degree(v) }

func (l *liarBacking) Neighbor(v, i int) int {
	w := l.att.Neighbor(v, i)
	if l.lying.Load() && w >= 0 {
		return (w + 1) % l.att.N()
	}
	return w
}

func (l *liarBacking) Adjacency(u, v int) int { return l.att.Adjacency(u, v) }

func (l *liarBacking) Commitment() attest.Root { return l.att.Commitment() }

func (l *liarBacking) ProveRow(v int) ([]int, []string) { return l.att.ProveRow(v) }

// faultFleet implements FaultInjector over the shards' middlewares.
type faultFleet struct{ shards []*faultShard }

func (f *faultFleet) Shards() int { return len(f.shards) }

func (f *faultFleet) Fail(i int) {
	f.shards[i].mu.Lock()
	f.shards[i].failing = true
	f.shards[i].mu.Unlock()
}

func (f *faultFleet) Hang(i int, d time.Duration) {
	f.shards[i].mu.Lock()
	f.shards[i].hang = d
	f.shards[i].mu.Unlock()
}

func (f *faultFleet) Heal(i int) {
	f.shards[i].mu.Lock()
	f.shards[i].failing = false
	f.shards[i].truncate = false
	f.shards[i].hang = 0
	f.shards[i].mu.Unlock()
	if f.shards[i].lie != nil {
		f.shards[i].lie.lying.Store(false)
	}
}

// byzantineFleet adds the corruption modes over attested shards; only
// fleets built by byzantineFleetFactory hand it out, so the conformance
// suite runs the trust-plane cases exactly where the remotes pin roots.
type byzantineFleet struct{ faultFleet }

func (f *byzantineFleet) Lie(i int) { f.shards[i].lie.lying.Store(true) }

func (f *byzantineFleet) Truncate(i int) {
	f.shards[i].mu.Lock()
	f.shards[i].truncate = true
	f.shards[i].mu.Unlock()
}

// faultFleetFactory opens a Sharded over `count` httptest replicas with
// fault-suite-friendly settings: no remote retries (failures surface
// immediately), a 25ms hedge, a 2-failure dead threshold and fast
// revival.
func faultFleetFactory(count int) FaultFactory {
	return func(t testing.TB) (Source, FaultInjector) {
		fleet := &faultFleet{}
		var shards []Source
		for i := 0; i < count; i++ {
			fs := &faultShard{inner: NewProbeHandler(Ring(60))}
			ts := httptest.NewServer(fs)
			t.Cleanup(ts.Close)
			r, err := OpenRemote(ts.URL, WithRetries(0), WithRetryBackoff(time.Millisecond))
			if err != nil {
				t.Fatal(err)
			}
			fleet.shards = append(fleet.shards, fs)
			shards = append(shards, r)
		}
		s, err := NewSharded(shards,
			WithHedge(25*time.Millisecond),
			WithFailureThreshold(2),
			WithRevival(10*time.Millisecond, 100*time.Millisecond),
		)
		if err != nil {
			t.Fatal(err)
		}
		return s, fleet
	}
}

// byzantineFleetFactory opens a Sharded over `count` attested httptest
// replicas whose remotes pin the shared commitment root — the fleet
// shape on which lying answers become ErrAttestation. Each replica's
// backing can be switched into lying mode; the middleware adds the
// truncation mode.
func byzantineFleetFactory(count int) FaultFactory {
	return func(t testing.TB) (Source, FaultInjector) {
		root := NewAttested(Ring(60)).Commitment()
		fleet := &byzantineFleet{}
		var shards []Source
		for i := 0; i < count; i++ {
			liar := &liarBacking{att: NewAttested(Ring(60))}
			fs := &faultShard{inner: NewProbeHandler(liar), lie: liar}
			ts := httptest.NewServer(fs)
			t.Cleanup(ts.Close)
			r, err := OpenRemote(ts.URL, WithRetries(0), WithRetryBackoff(time.Millisecond), WithCommitment(root))
			if err != nil {
				t.Fatal(err)
			}
			fleet.shards = append(fleet.shards, fs)
			shards = append(shards, r)
		}
		s, err := NewSharded(shards,
			WithHedge(25*time.Millisecond),
			WithFailureThreshold(2),
			WithRevival(10*time.Millisecond, 100*time.Millisecond),
		)
		if err != nil {
			t.Fatal(err)
		}
		return s, fleet
	}
}

// TestConformanceFaultsSharded runs the failure-mode contract suite over
// httptest-backed sharded fleets — the acceptance shape of the failover
// layer, raced under -race by the suite itself. The attested fleet's
// remotes pin the shared commitment, adding the Byzantine cases on top.
func TestConformanceFaultsSharded(t *testing.T) {
	for _, c := range []struct {
		name    string
		factory FaultFactory
	}{
		{"remote-x2", faultFleetFactory(2)},
		{"remote-x3", faultFleetFactory(3)},
		{"remote-x2-attested", byzantineFleetFactory(2)},
	} {
		t.Run(c.name, func(t *testing.T) { TestConformanceFaults(t, c.factory) })
	}
}

// TestShardedHedgeSpec drives the hedge= spec item end to end and pins
// its error cases.
func TestShardedHedgeSpec(t *testing.T) {
	a, b := newShard(t, Ring(25)), newShard(t, Ring(25))
	src, err := Parse("sharded:remote:"+a.URL+";remote:"+b.URL+";hedge=15ms", 7)
	if err != nil {
		t.Fatal(err)
	}
	sh, ok := src.(*Sharded)
	if !ok {
		t.Fatalf("sharded spec yielded %T", src)
	}
	if sh.hedge != 15*time.Millisecond {
		t.Fatalf("hedge = %v, want 15ms", sh.hedge)
	}
	if sh.Degree(3) != 2 {
		t.Fatal("hedged fleet does not answer")
	}
	if err := sh.Close(); err != nil {
		t.Fatal(err)
	}
	for spec, token := range map[string]string{
		"sharded:ring:n=5;ring:n=5;hedge=xyz": "hedge",
		"sharded:ring:n=5;ring:n=5;hedge=0s":  "hedge",
		"sharded:ring:n=5;ring:n=5;hedge=2h":  "hedge",
	} {
		if _, err := Parse(spec, 7); err == nil {
			t.Errorf("Parse(%q) unexpectedly succeeded", spec)
		} else if !strings.Contains(err.Error(), token) {
			t.Errorf("Parse(%q) error %q does not name %q", spec, err, token)
		}
	}
}

// TestScopedTripAttribution pins the TripScoper contract: two views of
// one shared network source each count exactly their own round trips,
// interleaved traffic included — the per-request attribution serve relies
// on.
func TestScopedTripAttribution(t *testing.T) {
	remote := openRemoteShard(t, Ring(50))
	ts, ok := remote.(TripScoper)
	if !ok {
		t.Fatal("remote lacks the TripScoper capability")
	}
	viewA, viewB := ts.ScopeTrips(), ts.ScopeTrips()
	for v := 0; v < 6; v++ {
		viewA.Degree(v)
		if v%2 == 0 {
			viewB.Neighbor(v, 0)
		}
	}
	if got := viewA.(RoundTripCounter).RoundTrips(); got != 6 {
		t.Fatalf("view A counted %d trips, want its own 6", got)
	}
	if got := viewB.(RoundTripCounter).RoundTrips(); got != 3 {
		t.Fatalf("view B counted %d trips, want its own 3", got)
	}
	shared := remote.(RoundTripCounter).RoundTrips()
	if shared < 9 {
		t.Fatalf("shared counter %d lost scoped traffic (want >= 9)", shared)
	}

	a, b := openRemoteShard(t, Ring(50)), openRemoteShard(t, Ring(50))
	fleet, err := NewSharded([]Source{a, b})
	if err != nil {
		t.Fatal(err)
	}
	view := fleet.(TripScoper).ScopeTrips()
	for v := 0; v < 8; v++ {
		view.Degree(v)
	}
	if got := view.(RoundTripCounter).RoundTrips(); got != 8 {
		t.Fatalf("sharded view counted %d trips, want its own 8", got)
	}
	if _, ok := view.(FailoverCounter); !ok {
		t.Fatal("sharded view lacks the FailoverCounter capability")
	}
	// The view shares the fleet's capability set.
	if _, ok := EdgeCounterOf(view); !ok {
		t.Fatal("sharded view lost the EdgeCounter capability")
	}
	if bp, ok := view.(BatchProber); !ok {
		t.Fatal("sharded view lost the batch capability")
	} else if _, err := bp.ProbeBatch([]ProbeReq{{Op: OpDegree, A: 1}}); err != nil {
		t.Fatal(err)
	}
}

// TestShardedMetaReportsHealth: a shard fronting a fleet surfaces the
// fleet's per-replica health on /probe/meta.
func TestShardedMetaReportsHealth(t *testing.T) {
	a, b := openRemoteShard(t, Ring(30)), openRemoteShard(t, Ring(30))
	fleet, err := NewSharded([]Source{a, b})
	if err != nil {
		t.Fatal(err)
	}
	meta := metaOf(fleet)
	if len(meta.Shards) != 2 {
		t.Fatalf("meta reports %d shards, want 2", len(meta.Shards))
	}
	for i, h := range meta.Shards {
		if h.State != ShardLive {
			t.Fatalf("shard %d reports %q at rest, want %q", i, h.State, ShardLive)
		}
		if h.Shard == "" {
			t.Fatalf("shard %d has no label", i)
		}
	}
}
