package source

// The executable Source contract. With four backend families behind one
// interface — implicit generators, the in-memory adapter, disk-backed
// CSR, and network-backed remote/sharded — "behaves like a Source" must
// be a test every backend passes, not folklore. TestConformance is that
// test: backends register a Factory and inherit the full suite, so a new
// backend is conformant by construction or visibly broken.

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"lca/internal/rnd"
)

// Factory opens a fresh instance of one backend for TestConformance. It
// is called once per subtest; factories needing scratch state (temp
// files, test servers) hang cleanup on t. The harness closes every source
// it opens.
type Factory func(t testing.TB) Source

// maxConformanceSample bounds the vertices each subtest probes — the
// suite must stay exhaustive on small backends and affordable on remote
// ones.
const maxConformanceSample = 48

// TestConformance runs the cross-backend Source contract suite against
// one backend:
//
//   - probes: Degree and Neighbor agree (exactly deg(v) in-range
//     neighbors, no self-loops or duplicates), and out-of-range neighbor
//     indices answer -1.
//   - adjacency: Adjacency(v, w) returns w's index for every real
//     neighbor, edges are symmetric, and non-edges (including self-pairs)
//     answer -1.
//   - batch (BatchProber backends): a mixed-op batch answers exactly the
//     scalar answers in request order; empty batches answer empty;
//     batches above MaxProbeBatch are rejected.
//   - determinism: equal probes answer equally across passes.
//   - close: Close (when the backend holds resources) succeeds and is
//     idempotent.
//   - concurrent: racing probers observe the same answers; run the suite
//     under -race to make this subtest a race detector.
func TestConformance(t *testing.T, open Factory) {
	t.Run("probes", func(t *testing.T) {
		src := open(t)
		defer closeConformance(t, src)
		n := src.N()
		if n < 0 || n > MaxVertices {
			t.Fatalf("N() = %d, outside [0,%d]", n, MaxVertices)
		}
		for _, v := range conformanceSample(n) {
			d := src.Degree(v)
			if d < 0 || d >= n {
				t.Fatalf("Degree(%d) = %d, outside [0,%d) on a simple graph", v, d, n)
			}
			seen := make(map[int]bool, d)
			for i := 0; i < d; i++ {
				w := src.Neighbor(v, i)
				if w < 0 || w >= n {
					t.Fatalf("Neighbor(%d,%d) = %d, out of range [0,%d) with Degree(%d)=%d", v, i, w, n, v, d)
				}
				if w == v {
					t.Fatalf("Neighbor(%d,%d) = %d: self-loop on a simple graph", v, i, w)
				}
				if seen[w] {
					t.Fatalf("Neighbor(%d,*) lists %d twice", v, w)
				}
				seen[w] = true
			}
			for _, i := range []int{-1, d, d + 1, d + 1000} {
				if got := src.Neighbor(v, i); got != -1 {
					t.Fatalf("Neighbor(%d,%d) = %d with Degree(%d)=%d, want -1 for out-of-range index", v, i, got, v, d)
				}
			}
		}
	})
	t.Run("adjacency", func(t *testing.T) {
		src := open(t)
		defer closeConformance(t, src)
		n := src.N()
		sample := conformanceSample(n)
		for _, v := range sample {
			if n > 0 {
				if got := src.Adjacency(v, v); got != -1 {
					t.Fatalf("Adjacency(%d,%d) = %d, want -1 (no self-loops)", v, v, got)
				}
			}
			d := src.Degree(v)
			neighbors := make(map[int]bool, d)
			for i := 0; i < d; i++ {
				w := src.Neighbor(v, i)
				neighbors[w] = true
				if got := src.Adjacency(v, w); got != i {
					t.Fatalf("Adjacency(%d,%d) = %d, want %d (w is the %d-th neighbor of v)", v, w, got, i, i)
				}
				j := src.Adjacency(w, v)
				if j < 0 {
					t.Fatalf("Adjacency(%d,%d) = %d: edge (%d,%d) exists but is not symmetric", w, v, j, v, w)
				}
				if got := src.Neighbor(w, j); got != v {
					t.Fatalf("Neighbor(%d,%d) = %d, want %d (Adjacency(%d,%d) said index %d)", w, j, got, v, w, v, j)
				}
			}
			for _, u := range sample {
				if u != v && !neighbors[u] {
					if got := src.Adjacency(v, u); got != -1 {
						t.Fatalf("Adjacency(%d,%d) = %d, want -1 (%d is not among %d's %d neighbors)", v, u, got, u, v, d)
					}
				}
			}
		}
	})
	t.Run("batch", func(t *testing.T) {
		src := open(t)
		defer closeConformance(t, src)
		bp, ok := src.(BatchProber)
		if !ok {
			t.Skip("backend has no batch capability")
		}
		sample := conformanceSample(src.N())
		if len(sample) == 0 {
			t.Skip("empty source")
		}
		// A mixed-op batch spanning every scalar answer shape: degrees,
		// real and out-of-range neighbor cells, real and non-edge
		// adjacency cells. Batch answers must equal the scalar answers in
		// request order.
		var probes []ProbeReq
		var want []int
		for _, v := range sample {
			d := src.Degree(v)
			probes = append(probes, ProbeReq{Op: OpDegree, A: v})
			want = append(want, d)
			for i := 0; i < d; i++ {
				w := src.Neighbor(v, i)
				probes = append(probes, ProbeReq{Op: OpNeighbor, A: v, B: i})
				want = append(want, w)
				probes = append(probes, ProbeReq{Op: OpAdjacency, A: v, B: w})
				want = append(want, i)
			}
			probes = append(probes, ProbeReq{Op: OpNeighbor, A: v, B: d})
			want = append(want, -1)
			probes = append(probes, ProbeReq{Op: OpAdjacency, A: v, B: v})
			want = append(want, -1)
		}
		got, err := bp.ProbeBatch(probes)
		if err != nil {
			t.Fatalf("ProbeBatch(%d probes): %v", len(probes), err)
		}
		if len(got) != len(want) {
			t.Fatalf("ProbeBatch answered %d of %d probes", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("probe %d (%+v): batch answered %d, scalar answered %d", i, probes[i], got[i], want[i])
			}
		}
		if ans, err := bp.ProbeBatch(nil); err != nil || len(ans) != 0 {
			t.Fatalf("empty batch: got %v, %v; want no answers, no error", ans, err)
		}
		oversized := make([]ProbeReq, MaxProbeBatch+1)
		for i := range oversized {
			oversized[i] = ProbeReq{Op: OpDegree, A: sample[0]}
		}
		if _, err := bp.ProbeBatch(oversized); err == nil {
			t.Fatalf("batch of %d probes accepted; the protocol maximum is %d", len(oversized), MaxProbeBatch)
		}
	})
	t.Run("determinism", func(t *testing.T) {
		src := open(t)
		defer closeConformance(t, src)
		sample := conformanceSample(src.N())
		first := conformanceSnapshot(src, sample)
		for pass := 0; pass < 2; pass++ {
			if got := conformanceSnapshot(src, sample); got != first {
				t.Fatalf("pass %d answered differently:\n got %s\nwant %s", pass+1, got, first)
			}
		}
	})
	t.Run("close", func(t *testing.T) {
		src := open(t)
		c, ok := src.(Closer)
		if !ok {
			t.Skip("backend holds no external resources")
		}
		if err := c.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		if err := c.Close(); err != nil {
			t.Fatalf("second Close: %v (Close must be idempotent)", err)
		}
	})
	t.Run("concurrent", func(t *testing.T) {
		src := open(t)
		defer closeConformance(t, src)
		sample := conformanceSample(src.N())
		if len(sample) == 0 {
			t.Skip("empty source")
		}
		type cell struct{ deg, first, adj int }
		want := make([]cell, len(sample))
		for i, v := range sample {
			want[i] = cell{deg: src.Degree(v), first: src.Neighbor(v, 0)}
			if want[i].first >= 0 {
				want[i].adj = src.Adjacency(want[i].first, v)
			}
		}
		const workers = 8
		var wg sync.WaitGroup
		errs := make([]error, workers)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				prg := rnd.NewPRG(rnd.Seed(1000 + w))
				for it := 0; it < 150; it++ {
					i := prg.Intn(len(sample))
					v := sample[i]
					if d := src.Degree(v); d != want[i].deg {
						errs[w] = fmt.Errorf("worker %d: Degree(%d) = %d, want %d", w, v, d, want[i].deg)
						return
					}
					if first := src.Neighbor(v, 0); first != want[i].first {
						errs[w] = fmt.Errorf("worker %d: Neighbor(%d,0) = %d, want %d", w, v, first, want[i].first)
						return
					}
					if want[i].first >= 0 {
						if adj := src.Adjacency(want[i].first, v); adj != want[i].adj {
							errs[w] = fmt.Errorf("worker %d: Adjacency(%d,%d) = %d, want %d", w, want[i].first, v, adj, want[i].adj)
							return
						}
					}
				}
			}(w)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				t.Fatal(err)
			}
		}
	})
}

// FaultInjector controls the failure modes of a fault-injectable fleet
// for TestConformanceFaults: harnesses wrap each shard's transport (an
// httptest middleware, typically) so the suite can kill, hang and heal
// replicas at will.
type FaultInjector interface {
	// Shards returns the replica count.
	Shards() int
	// Fail makes shard i answer every request with a 500 until healed.
	Fail(i int)
	// Hang makes shard i delay every data-plane answer by d until healed.
	Hang(i int, d time.Duration)
	// Heal restores shard i to normal service.
	Heal(i int)
}

// ByzantineInjector extends FaultInjector with corruption: replicas that
// answer instead of failing, wrongly. Factories whose fleets verify
// attestations (attested shards, pinned remotes) implement it to inherit
// the trust-plane contract cases of TestConformanceFaults; the suite
// skips those cases otherwise.
type ByzantineInjector interface {
	FaultInjector
	// Lie makes shard i answer data-plane probes with plausible but wrong
	// values — vertex count, degrees, commitment and row proofs stay
	// honest — until healed. Byzantine, not broken: nothing errors.
	Lie(i int)
	// Truncate makes shard i cut its data-plane response bodies short
	// (malformed wire payloads) until healed.
	Truncate(i int)
}

// FaultFactory opens a fresh fault-injectable source — a Sharded over at
// least two replicas, configured with a fast failure threshold, fast
// revival and a hedge delay well below the hang used by the suite — plus
// the injector controlling its shards. Cleanup hangs on t.
type FaultFactory func(t testing.TB) (Source, FaultInjector)

// faultDeadline bounds the polls for health-state transitions; factories
// configure revival well below it.
const faultDeadline = 10 * time.Second

// TestConformanceFaults runs the failure-mode contract suite against a
// fault-injectable sharded backend:
//
//   - failover: with one replica answering 500s, every probe (scalar and
//     batched, raced across goroutines — run under -race) still answers
//     exactly the healthy fleet's answers, the dead replica is reported
//     dead and failovers are counted; healing the replica revives it and
//     routing returns to normal.
//   - hedge: with one replica hanging past the hedge delay, probes answer
//     (from the other replica) long before the hang expires and hedges
//     are counted; the hanging replica is never marked dead — slow is not
//     down.
//   - alldead: with every replica failing, probes fail with a typed
//     *ProbeError naming the no-live-replica condition instead of
//     hanging or succeeding; healing the fleet restores service.
//
// Fleets whose injector implements ByzantineInjector additionally face
// the trust-plane cases (skipped otherwise):
//
//   - byzantine-lie: one replica answers wrong values under honest
//     proofs. Every answer must stay byte-identical to the healthy
//     fleet's, attestation failures must be counted, and the liar must
//     be distrusted — stickily: healing it must not resurrect it, since
//     a health-plane ping cannot prove the data plane stopped lying.
//   - byzantine-truncate: one replica cuts its response bodies short.
//     Malformed payloads are failures, not lies: answers stay identical
//     via failover, the replica goes dead and healing revives it.
//   - flapping: one replica oscillates between dead and healthy while
//     probers race; answers must stay identical throughout.
func TestConformanceFaults(t *testing.T, open FaultFactory) {
	t.Run("failover", func(t *testing.T) {
		src, inj := open(t)
		defer closeConformance(t, src)
		if inj.Shards() < 2 {
			t.Fatal("fault suite needs at least two replicas")
		}
		sample := conformanceSample(src.N())
		if len(sample) == 0 {
			t.Skip("empty source")
		}
		want := conformanceSnapshot(src, sample)
		inj.Fail(0)
		// Racing probers must keep seeing the healthy answers throughout
		// the detection window and after the shard is marked dead.
		var wg sync.WaitGroup
		errs := make([]error, 4)
		for w := range errs {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for pass := 0; pass < 3; pass++ {
					if got := conformanceSnapshot(src, sample); got != want {
						errs[w] = fmt.Errorf("worker %d pass %d: answers changed under failover:\n got %s\nwant %s", w, pass, got, want)
						return
					}
				}
			}(w)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				t.Fatal(err)
			}
		}
		if bp, ok := src.(BatchProber); ok {
			var probes []ProbeReq
			var wantAns []int
			for _, v := range sample {
				probes = append(probes, ProbeReq{Op: OpDegree, A: v})
				wantAns = append(wantAns, src.Degree(v))
			}
			got, err := bp.ProbeBatch(probes)
			if err != nil {
				t.Fatalf("batch under failover: %v", err)
			}
			for i := range wantAns {
				if got[i] != wantAns[i] {
					t.Fatalf("batch under failover: probe %d answered %d, want %d", i, got[i], wantAns[i])
				}
			}
		}
		if fo, ok := src.(FailoverCounter); !ok {
			t.Fatal("fault-injectable source lacks the FailoverCounter capability")
		} else if fo.Failovers() == 0 {
			t.Fatal("probes were re-routed off a failing replica but Failovers() == 0")
		}
		waitShardState(t, src, 0, ShardDead, "after consecutive failures")
		inj.Heal(0)
		waitShardState(t, src, 0, ShardLive, "after healing")
		if got := conformanceSnapshot(src, sample); got != want {
			t.Fatalf("answers changed after revival:\n got %s\nwant %s", got, want)
		}
	})
	t.Run("hedge", func(t *testing.T) {
		src, inj := open(t)
		defer closeConformance(t, src)
		sample := conformanceSample(src.N())
		if len(sample) == 0 {
			t.Skip("empty source")
		}
		want := make([]int, len(sample))
		for i, v := range sample {
			want[i] = src.Degree(v)
		}
		const hang = 3 * time.Second
		inj.Hang(0, hang)
		start := time.Now()
		for i, v := range sample {
			if got := src.Degree(v); got != want[i] {
				t.Fatalf("Degree(%d) = %d under a hanging replica, want %d", v, got, want[i])
			}
		}
		// Every probe owned by the hanging replica must have been answered
		// by the hedge, not the hang: well under one hang for the whole
		// sweep.
		if elapsed := time.Since(start); elapsed > hang {
			t.Fatalf("sweep under a hanging replica took %v; hedging is not kicking in", elapsed)
		}
		fo, ok := src.(FailoverCounter)
		if !ok {
			t.Fatal("fault-injectable source lacks the FailoverCounter capability")
		}
		if fo.Hedges() == 0 {
			t.Fatal("a replica hung past the hedge delay but Hedges() == 0")
		}
		if got := fo.Failovers(); got != 0 {
			t.Fatalf("Failovers() = %d under a slow-but-healthy replica; hedge wins must not read as failovers (slow is not down)", got)
		}
		if health, ok := HealthOf(src); !ok {
			t.Fatal("fault-injectable source lacks the HealthReporter capability")
		} else if health[0].State != ShardLive {
			t.Fatalf("hanging replica reports %q; slow must not read as down", health[0].State)
		}
		inj.Heal(0)
	})
	t.Run("hedgerace", func(t *testing.T) {
		// Pins the hedge accounting contract: every logical probe costs
		// exactly one primary round trip plus one per hedge fired plus at
		// most one per failover re-route — a hedge that fires in the same
		// instant the primary answers must not buy a duplicate trip, and a
		// shard dying mid-race must not double-count the contenders.
		src, inj := open(t)
		defer closeConformance(t, src)
		if inj.Shards() < 2 {
			t.Fatal("fault suite needs at least two replicas")
		}
		sample := conformanceSample(src.N())
		if len(sample) == 0 {
			t.Skip("empty source")
		}
		rt, ok := src.(RoundTripCounter)
		if !ok {
			t.Fatal("fault-injectable source lacks the RoundTripCounter capability")
		}
		fo, ok := src.(FailoverCounter)
		if !ok {
			t.Fatal("fault-injectable source lacks the FailoverCounter capability")
		}
		want := make([]int, len(sample))
		for i, v := range sample {
			want[i] = src.Degree(v)
		}

		// Serial baseline on the healthy fleet.
		trips0, hedges0, fail0 := rt.RoundTrips(), fo.Hedges(), fo.Failovers()
		for _, v := range sample {
			src.Degree(v)
		}
		probes := uint64(len(sample))
		hedged := fo.Hedges() - hedges0
		if got := rt.RoundTrips() - trips0; got != probes+hedged {
			t.Fatalf("serial sweep: %d trips for %d probes and %d hedges; want trips == probes + hedges", got, probes, hedged)
		}
		if got := fo.Failovers() - fail0; got != 0 {
			t.Fatalf("serial sweep on a healthy fleet counted %d failovers", got)
		}

		// Hang one replica past the hedge delay and race probers: hedges
		// now fire concurrently and the identity must survive the race.
		const hang = 3 * time.Second
		inj.Hang(0, hang)
		trips0, hedges0, fail0 = rt.RoundTrips(), fo.Hedges(), fo.Failovers()
		const workers = 4
		var wg sync.WaitGroup
		errs := make([]error, workers)
		for w := range errs {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i, v := range sample {
					if got := src.Degree(v); got != want[i] {
						errs[w] = fmt.Errorf("worker %d: Degree(%d) = %d under hedging, want %d", w, v, got, want[i])
						return
					}
				}
			}(w)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				t.Fatal(err)
			}
		}
		probes = uint64(workers * len(sample))
		hedged = fo.Hedges() - hedges0
		if hedged == 0 {
			t.Fatal("a replica hung past the hedge delay but Hedges() never advanced")
		}
		if got := rt.RoundTrips() - trips0; got != probes+hedged {
			t.Fatalf("raced sweep: %d trips for %d probes and %d hedges; want trips == probes + hedges", got, probes, hedged)
		}
		if got := fo.Failovers() - fail0; got != 0 {
			t.Fatalf("Failovers() advanced by %d under a slow-but-healthy replica; hedge wins must not read as failovers", got)
		}

		// Kill the hanging replica mid-race: in-flight hedges race the 500s
		// and the dead-marking. Answers must stay correct and every trip
		// must still be attributable — one per probe, one per hedge, at
		// most one extra attempt per failover.
		trips0, hedges0, fail0 = rt.RoundTrips(), fo.Hedges(), fo.Failovers()
		killed := make(chan struct{})
		for w := range errs {
			errs[w] = nil
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for pass := 0; pass < 3; pass++ {
					if w == 0 && pass == 1 {
						inj.Fail(0)
						close(killed)
					}
					for i, v := range sample {
						if got := src.Degree(v); got != want[i] {
							errs[w] = fmt.Errorf("worker %d pass %d: Degree(%d) = %d racing a shard kill, want %d", w, pass, v, got, want[i])
							return
						}
					}
				}
			}(w)
		}
		wg.Wait()
		<-killed
		for _, err := range errs {
			if err != nil {
				t.Fatal(err)
			}
		}
		probes = uint64(3 * workers * len(sample))
		hedged = fo.Hedges() - hedges0
		failovers := fo.Failovers() - fail0
		if got := rt.RoundTrips() - trips0; got < probes || got > probes+hedged+failovers {
			t.Fatalf("kill race: %d trips for %d probes, %d hedges, %d failovers; want probes <= trips <= probes + hedges + failovers", got, probes, hedged, failovers)
		}

		// Heal, wait for revival and re-run the serial baseline: the
		// counters must return exactly to the healthy identity — no leaked
		// loser context may keep bumping them after its race settled.
		inj.Heal(0)
		waitShardState(t, src, 0, ShardLive, "after healing the killed replica")
		trips0, hedges0, fail0 = rt.RoundTrips(), fo.Hedges(), fo.Failovers()
		for _, v := range sample {
			src.Degree(v)
		}
		probes = uint64(len(sample))
		hedged = fo.Hedges() - hedges0
		if got := rt.RoundTrips() - trips0; got != probes+hedged {
			t.Fatalf("post-heal sweep: %d trips for %d probes and %d hedges; want trips == probes + hedges", got, probes, hedged)
		}
		if got := fo.Failovers() - fail0; got != 0 {
			t.Fatalf("post-heal sweep counted %d failovers on a healthy fleet", got)
		}

		// Close must not wait out a hanging loser: hang the replica again,
		// leave losers in flight and check Close returns promptly.
		inj.Hang(0, hang)
		for _, v := range sample {
			src.Degree(v)
		}
		start := time.Now()
		closeConformance(t, src)
		if elapsed := time.Since(start); elapsed > hang/2 {
			t.Fatalf("Close took %v with hedge losers still in flight; loser contexts must not outlive the race", elapsed)
		}
	})
	t.Run("alldead", func(t *testing.T) {
		src, inj := open(t)
		defer closeConformance(t, src)
		sample := conformanceSample(src.N())
		if len(sample) == 0 {
			t.Skip("empty source")
		}
		healthy := src.Degree(sample[0])
		for i := 0; i < inj.Shards(); i++ {
			inj.Fail(i)
		}
		pe := mustProbeError(t, func() {
			for range sample {
				src.Degree(sample[0])
			}
		})
		if !strings.Contains(pe.Error(), "no live replica") {
			t.Fatalf("all-replicas-dead error %q does not name the no-live-replica condition", pe.Error())
		}
		for i := 0; i < inj.Shards(); i++ {
			inj.Heal(i)
		}
		deadline := time.Now().Add(faultDeadline)
		for {
			if ans, ok := tryProbe(src, sample[0]); ok {
				if ans != healthy {
					t.Fatalf("Degree(%d) = %d after fleet recovery, want %d", sample[0], ans, healthy)
				}
				break
			}
			if time.Now().After(deadline) {
				t.Fatal("fleet never recovered after healing every replica")
			}
			time.Sleep(5 * time.Millisecond)
		}
	})
	t.Run("byzantine-lie", func(t *testing.T) {
		src, inj := open(t)
		defer closeConformance(t, src)
		binj, ok := inj.(ByzantineInjector)
		if !ok {
			t.Skip("factory has no Byzantine injection")
		}
		ac, ok := src.(AttestCounter)
		if !ok {
			t.Fatal("a Byzantine-injectable fleet must have the AttestCounter capability")
		}
		sample := conformanceSample(src.N())
		if len(sample) == 0 {
			t.Skip("empty source")
		}
		want := conformanceSnapshot(src, sample)
		binj.Lie(0)
		// Racing probers must keep seeing the healthy fleet's answers,
		// byte-identical, through detection and after distrust: every lie
		// is discarded and re-routed, never served.
		var wg sync.WaitGroup
		errs := make([]error, 4)
		for w := range errs {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for pass := 0; pass < 3; pass++ {
					if got := conformanceSnapshot(src, sample); got != want {
						errs[w] = fmt.Errorf("worker %d pass %d: answers changed under a lying replica:\n got %s\nwant %s", w, pass, got, want)
						return
					}
				}
			}(w)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				t.Fatal(err)
			}
		}
		if ac.AttestFailures() == 0 {
			t.Fatal("a replica lied under honest proofs but AttestFailures() == 0")
		}
		waitShardState(t, src, 0, ShardDistrusted, "after lying answers")
		// Distrust is sticky: heal the replica (it really is honest again)
		// and give the reviver several ping intervals — a liar must stay
		// routed around, because a health-plane ping cannot prove the data
		// plane stopped lying.
		binj.Heal(0)
		time.Sleep(150 * time.Millisecond)
		if health, ok := HealthOf(src); !ok {
			t.Fatal("fleet lacks the HealthReporter capability")
		} else if health[0].State != ShardDistrusted {
			t.Fatalf("healed liar reports %q; distrust must be sticky, not revivable", health[0].State)
		}
		if got := conformanceSnapshot(src, sample); got != want {
			t.Fatalf("answers changed after the liar healed:\n got %s\nwant %s", got, want)
		}
	})
	t.Run("byzantine-truncate", func(t *testing.T) {
		src, inj := open(t)
		defer closeConformance(t, src)
		binj, ok := inj.(ByzantineInjector)
		if !ok {
			t.Skip("factory has no Byzantine injection")
		}
		sample := conformanceSample(src.N())
		if len(sample) == 0 {
			t.Skip("empty source")
		}
		want := conformanceSnapshot(src, sample)
		binj.Truncate(0)
		for pass := 0; pass < 3; pass++ {
			if got := conformanceSnapshot(src, sample); got != want {
				t.Fatalf("pass %d: answers changed under truncated responses:\n got %s\nwant %s", pass, got, want)
			}
		}
		if fo, ok := src.(FailoverCounter); !ok {
			t.Fatal("fleet lacks the FailoverCounter capability")
		} else if fo.Failovers() == 0 {
			t.Fatal("a replica served malformed payloads but Failovers() == 0")
		}
		// Malformed bytes are a broken replica, not a proven liar: it goes
		// dead like any failure and healing revives it.
		waitShardState(t, src, 0, ShardDead, "after truncated responses")
		binj.Heal(0)
		waitShardState(t, src, 0, ShardLive, "after healing the truncating replica")
		if got := conformanceSnapshot(src, sample); got != want {
			t.Fatalf("answers changed after revival:\n got %s\nwant %s", got, want)
		}
	})
	t.Run("flapping", func(t *testing.T) {
		src, inj := open(t)
		defer closeConformance(t, src)
		if inj.Shards() < 2 {
			t.Fatal("fault suite needs at least two replicas")
		}
		sample := conformanceSample(src.N())
		if len(sample) == 0 {
			t.Skip("empty source")
		}
		want := conformanceSnapshot(src, sample)
		// One replica oscillates dead/healthy while probers race: every
		// transition window (detection, dead, revival probation) must keep
		// serving the healthy fleet's answers.
		stop := make(chan struct{})
		var flapper sync.WaitGroup
		flapper.Add(1)
		go func() {
			defer flapper.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				inj.Fail(0)
				time.Sleep(8 * time.Millisecond)
				inj.Heal(0)
				time.Sleep(8 * time.Millisecond)
			}
		}()
		var wg sync.WaitGroup
		errs := make([]error, 4)
		for w := range errs {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for pass := 0; pass < 6; pass++ {
					if got := conformanceSnapshot(src, sample); got != want {
						errs[w] = fmt.Errorf("worker %d pass %d: answers changed under a flapping replica:\n got %s\nwant %s", w, pass, got, want)
						return
					}
				}
			}(w)
		}
		wg.Wait()
		close(stop)
		flapper.Wait()
		for _, err := range errs {
			if err != nil {
				t.Fatal(err)
			}
		}
		inj.Heal(0)
		waitShardState(t, src, 0, ShardLive, "after the flapping stopped")
		if got := conformanceSnapshot(src, sample); got != want {
			t.Fatalf("answers changed after the flapping stopped:\n got %s\nwant %s", got, want)
		}
	})
}

// waitShardState polls the fleet's health until shard i reaches the
// wanted state or the deadline passes.
func waitShardState(t *testing.T, src Source, i int, state, context string) {
	t.Helper()
	deadline := time.Now().Add(faultDeadline)
	for {
		health, ok := HealthOf(src)
		if !ok {
			t.Fatal("source lacks the HealthReporter capability")
		}
		if health[i].State == state {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("shard %d stuck in state %q, want %q %s", i, health[i].State, state, context)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// mustProbeError runs fn, which must panic with a *ProbeError before
// completing; lone pre-dead-marking successes are tolerated by fn's
// construction (it probes repeatedly).
func mustProbeError(t *testing.T, fn func()) (pe *ProbeError) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("probing an all-dead fleet unexpectedly succeeded")
		}
		var ok bool
		if pe, ok = r.(*ProbeError); !ok {
			t.Fatalf("panic payload %T, want *ProbeError", r)
		}
	}()
	fn()
	return nil
}

// tryProbe probes Degree(v) and reports success, recovering the
// no-live-replica panic while the fleet is still reviving.
func tryProbe(src Source, v int) (ans int, ok bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, isProbe := r.(*ProbeError); !isProbe {
				panic(r)
			}
			ans, ok = 0, false
		}
	}()
	return src.Degree(v), true
}

// conformanceSample picks the probed vertices: every vertex when small,
// a deterministic spread otherwise.
func conformanceSample(n int) []int {
	if n <= 0 {
		return nil
	}
	if n <= maxConformanceSample {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	out := make([]int, maxConformanceSample)
	stride := n / maxConformanceSample
	for i := range out {
		out[i] = i * stride
	}
	return out
}

// conformanceSnapshot renders the sampled probe answers into one
// comparable string.
func conformanceSnapshot(src Source, sample []int) string {
	s := ""
	for _, v := range sample {
		d := src.Degree(v)
		s += fmt.Sprintf("%d:%d[", v, d)
		for i := 0; i < d; i++ {
			w := src.Neighbor(v, i)
			s += fmt.Sprintf("%d@%d ", w, src.Adjacency(v, w))
		}
		s += "] "
	}
	return s
}

// closeConformance closes the backend under test when it can be closed,
// failing the test on error.
func closeConformance(t testing.TB, src Source) {
	if c, ok := src.(Closer); ok {
		if err := c.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	}
}
