package source

// The executable Source contract. With four backend families behind one
// interface — implicit generators, the in-memory adapter, disk-backed
// CSR, and network-backed remote/sharded — "behaves like a Source" must
// be a test every backend passes, not folklore. TestConformance is that
// test: backends register a Factory and inherit the full suite, so a new
// backend is conformant by construction or visibly broken.

import (
	"fmt"
	"sync"
	"testing"

	"lca/internal/rnd"
)

// Factory opens a fresh instance of one backend for TestConformance. It
// is called once per subtest; factories needing scratch state (temp
// files, test servers) hang cleanup on t. The harness closes every source
// it opens.
type Factory func(t testing.TB) Source

// maxConformanceSample bounds the vertices each subtest probes — the
// suite must stay exhaustive on small backends and affordable on remote
// ones.
const maxConformanceSample = 48

// TestConformance runs the cross-backend Source contract suite against
// one backend:
//
//   - probes: Degree and Neighbor agree (exactly deg(v) in-range
//     neighbors, no self-loops or duplicates), and out-of-range neighbor
//     indices answer -1.
//   - adjacency: Adjacency(v, w) returns w's index for every real
//     neighbor, edges are symmetric, and non-edges (including self-pairs)
//     answer -1.
//   - batch (BatchProber backends): a mixed-op batch answers exactly the
//     scalar answers in request order; empty batches answer empty;
//     batches above MaxProbeBatch are rejected.
//   - determinism: equal probes answer equally across passes.
//   - close: Close (when the backend holds resources) succeeds and is
//     idempotent.
//   - concurrent: racing probers observe the same answers; run the suite
//     under -race to make this subtest a race detector.
func TestConformance(t *testing.T, open Factory) {
	t.Run("probes", func(t *testing.T) {
		src := open(t)
		defer closeConformance(t, src)
		n := src.N()
		if n < 0 || n > MaxVertices {
			t.Fatalf("N() = %d, outside [0,%d]", n, MaxVertices)
		}
		for _, v := range conformanceSample(n) {
			d := src.Degree(v)
			if d < 0 || d >= n {
				t.Fatalf("Degree(%d) = %d, outside [0,%d) on a simple graph", v, d, n)
			}
			seen := make(map[int]bool, d)
			for i := 0; i < d; i++ {
				w := src.Neighbor(v, i)
				if w < 0 || w >= n {
					t.Fatalf("Neighbor(%d,%d) = %d, out of range [0,%d) with Degree(%d)=%d", v, i, w, n, v, d)
				}
				if w == v {
					t.Fatalf("Neighbor(%d,%d) = %d: self-loop on a simple graph", v, i, w)
				}
				if seen[w] {
					t.Fatalf("Neighbor(%d,*) lists %d twice", v, w)
				}
				seen[w] = true
			}
			for _, i := range []int{-1, d, d + 1, d + 1000} {
				if got := src.Neighbor(v, i); got != -1 {
					t.Fatalf("Neighbor(%d,%d) = %d with Degree(%d)=%d, want -1 for out-of-range index", v, i, got, v, d)
				}
			}
		}
	})
	t.Run("adjacency", func(t *testing.T) {
		src := open(t)
		defer closeConformance(t, src)
		n := src.N()
		sample := conformanceSample(n)
		for _, v := range sample {
			if n > 0 {
				if got := src.Adjacency(v, v); got != -1 {
					t.Fatalf("Adjacency(%d,%d) = %d, want -1 (no self-loops)", v, v, got)
				}
			}
			d := src.Degree(v)
			neighbors := make(map[int]bool, d)
			for i := 0; i < d; i++ {
				w := src.Neighbor(v, i)
				neighbors[w] = true
				if got := src.Adjacency(v, w); got != i {
					t.Fatalf("Adjacency(%d,%d) = %d, want %d (w is the %d-th neighbor of v)", v, w, got, i, i)
				}
				j := src.Adjacency(w, v)
				if j < 0 {
					t.Fatalf("Adjacency(%d,%d) = %d: edge (%d,%d) exists but is not symmetric", w, v, j, v, w)
				}
				if got := src.Neighbor(w, j); got != v {
					t.Fatalf("Neighbor(%d,%d) = %d, want %d (Adjacency(%d,%d) said index %d)", w, j, got, v, w, v, j)
				}
			}
			for _, u := range sample {
				if u != v && !neighbors[u] {
					if got := src.Adjacency(v, u); got != -1 {
						t.Fatalf("Adjacency(%d,%d) = %d, want -1 (%d is not among %d's %d neighbors)", v, u, got, u, v, d)
					}
				}
			}
		}
	})
	t.Run("batch", func(t *testing.T) {
		src := open(t)
		defer closeConformance(t, src)
		bp, ok := src.(BatchProber)
		if !ok {
			t.Skip("backend has no batch capability")
		}
		sample := conformanceSample(src.N())
		if len(sample) == 0 {
			t.Skip("empty source")
		}
		// A mixed-op batch spanning every scalar answer shape: degrees,
		// real and out-of-range neighbor cells, real and non-edge
		// adjacency cells. Batch answers must equal the scalar answers in
		// request order.
		var probes []ProbeReq
		var want []int
		for _, v := range sample {
			d := src.Degree(v)
			probes = append(probes, ProbeReq{Op: OpDegree, A: v})
			want = append(want, d)
			for i := 0; i < d; i++ {
				w := src.Neighbor(v, i)
				probes = append(probes, ProbeReq{Op: OpNeighbor, A: v, B: i})
				want = append(want, w)
				probes = append(probes, ProbeReq{Op: OpAdjacency, A: v, B: w})
				want = append(want, i)
			}
			probes = append(probes, ProbeReq{Op: OpNeighbor, A: v, B: d})
			want = append(want, -1)
			probes = append(probes, ProbeReq{Op: OpAdjacency, A: v, B: v})
			want = append(want, -1)
		}
		got, err := bp.ProbeBatch(probes)
		if err != nil {
			t.Fatalf("ProbeBatch(%d probes): %v", len(probes), err)
		}
		if len(got) != len(want) {
			t.Fatalf("ProbeBatch answered %d of %d probes", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("probe %d (%+v): batch answered %d, scalar answered %d", i, probes[i], got[i], want[i])
			}
		}
		if ans, err := bp.ProbeBatch(nil); err != nil || len(ans) != 0 {
			t.Fatalf("empty batch: got %v, %v; want no answers, no error", ans, err)
		}
		oversized := make([]ProbeReq, MaxProbeBatch+1)
		for i := range oversized {
			oversized[i] = ProbeReq{Op: OpDegree, A: sample[0]}
		}
		if _, err := bp.ProbeBatch(oversized); err == nil {
			t.Fatalf("batch of %d probes accepted; the protocol maximum is %d", len(oversized), MaxProbeBatch)
		}
	})
	t.Run("determinism", func(t *testing.T) {
		src := open(t)
		defer closeConformance(t, src)
		sample := conformanceSample(src.N())
		first := conformanceSnapshot(src, sample)
		for pass := 0; pass < 2; pass++ {
			if got := conformanceSnapshot(src, sample); got != first {
				t.Fatalf("pass %d answered differently:\n got %s\nwant %s", pass+1, got, first)
			}
		}
	})
	t.Run("close", func(t *testing.T) {
		src := open(t)
		c, ok := src.(Closer)
		if !ok {
			t.Skip("backend holds no external resources")
		}
		if err := c.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		if err := c.Close(); err != nil {
			t.Fatalf("second Close: %v (Close must be idempotent)", err)
		}
	})
	t.Run("concurrent", func(t *testing.T) {
		src := open(t)
		defer closeConformance(t, src)
		sample := conformanceSample(src.N())
		if len(sample) == 0 {
			t.Skip("empty source")
		}
		type cell struct{ deg, first, adj int }
		want := make([]cell, len(sample))
		for i, v := range sample {
			want[i] = cell{deg: src.Degree(v), first: src.Neighbor(v, 0)}
			if want[i].first >= 0 {
				want[i].adj = src.Adjacency(want[i].first, v)
			}
		}
		const workers = 8
		var wg sync.WaitGroup
		errs := make([]error, workers)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				prg := rnd.NewPRG(rnd.Seed(1000 + w))
				for it := 0; it < 150; it++ {
					i := prg.Intn(len(sample))
					v := sample[i]
					if d := src.Degree(v); d != want[i].deg {
						errs[w] = fmt.Errorf("worker %d: Degree(%d) = %d, want %d", w, v, d, want[i].deg)
						return
					}
					if first := src.Neighbor(v, 0); first != want[i].first {
						errs[w] = fmt.Errorf("worker %d: Neighbor(%d,0) = %d, want %d", w, v, first, want[i].first)
						return
					}
					if want[i].first >= 0 {
						if adj := src.Adjacency(want[i].first, v); adj != want[i].adj {
							errs[w] = fmt.Errorf("worker %d: Adjacency(%d,%d) = %d, want %d", w, want[i].first, v, adj, want[i].adj)
							return
						}
					}
				}
			}(w)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				t.Fatal(err)
			}
		}
	})
}

// conformanceSample picks the probed vertices: every vertex when small,
// a deterministic spread otherwise.
func conformanceSample(n int) []int {
	if n <= 0 {
		return nil
	}
	if n <= maxConformanceSample {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	out := make([]int, maxConformanceSample)
	stride := n / maxConformanceSample
	for i := range out {
		out[i] = i * stride
	}
	return out
}

// conformanceSnapshot renders the sampled probe answers into one
// comparable string.
func conformanceSnapshot(src Source, sample []int) string {
	s := ""
	for _, v := range sample {
		d := src.Degree(v)
		s += fmt.Sprintf("%d:%d[", v, d)
		for i := 0; i < d; i++ {
			w := src.Neighbor(v, i)
			s += fmt.Sprintf("%d@%d ", w, src.Adjacency(v, w))
		}
		s += "] "
	}
	return s
}

// closeConformance closes the backend under test when it can be closed,
// failing the test on error.
func closeConformance(t testing.TB, src Source) {
	if c, ok := src.(Closer); ok {
		if err := c.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	}
}
