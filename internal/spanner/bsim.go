package spanner

// Baswana-Sen as a k-round message-passing algorithm, simulated either
// globally (whole graph) or locally (on a collected radius-k ball). The
// O(k^2)-spanner LCA uses the local simulation to take care of E_sparse
// (paper §4.2, Theorem 4.4): by [Censor-Hillel, Parter, Schwartzman] the
// algorithm works with O(log n)-wise independent cluster sampling, which is
// exactly what the hash families provide.
//
// The determinization is pinned down so that every local view reproduces
// the same global run:
//
//   round i in 1..k-1, for each vertex x active in cluster c:
//     - if c is sampled (hash_i(c) < n^{-1/k}): x stays in c;
//     - else if some active neighbor lies in a sampled cluster: x joins the
//       cluster of the lowest-ID such neighbor w* and the edge (x,w*) is
//       added;
//     - else: x adds the edge to the lowest-ID neighbor in each distinct
//       adjacent cluster, and becomes inactive (its remaining edges leave
//       the graph).
//   phase 2: each still-active vertex adds the edge to the lowest-ID
//   neighbor in each distinct adjacent cluster other than its own.
//
// The stretch bound 2k-1 is deterministic: it holds for every sampling
// outcome (only the size bound O(k n^{1+1/k}) is probabilistic).

import (
	"math"

	"lca/internal/graph"
	"lca/internal/rnd"
)

// bsConfig carries the shared randomness of a Baswana-Sen run.
type bsConfig struct {
	k          int
	sampleProb float64
	fams       []*rnd.Family // one per round 1..k-1
}

// newBSConfig derives the per-round sampling families from the seed.
func newBSConfig(n, k int, seed rnd.Seed, independence int) bsConfig {
	if k < 1 {
		k = 1
	}
	cfg := bsConfig{
		k:          k,
		sampleProb: math.Pow(float64(n)+1, -1.0/float64(k)),
		fams:       make([]*rnd.Family, k-1),
	}
	for i := range cfg.fams {
		cfg.fams[i] = rnd.NewFamily(seed.Derive(uint64(0xb5+i)), independence)
	}
	return cfg
}

func (c *bsConfig) sampled(round, center int) bool {
	return c.fams[round-1].Bernoulli(uint64(center), c.sampleProb)
}

// run executes the k rounds over the given vertex set. nbrs provides the
// adjacency of the (sub)graph being spanned and must be complete for every
// vertex x with dist[x] <= k-1; dist bounds how long each vertex's state
// stays exact (vertices at distance d from the query need only rounds up
// to k-d). A global run passes dist == nil, meaning distance 0 everywhere.
// record is invoked once for every edge the algorithm adds.
func (c *bsConfig) run(order []int, nbrs map[int][]int, dist map[int]int, record func(x, y int)) {
	distOf := func(x int) int {
		if dist == nil {
			return 0
		}
		return dist[x]
	}
	// cluster state; missing key means "own singleton cluster" at round 0.
	cluster := make(map[int]int, len(order))
	for _, x := range order {
		cluster[x] = x
	}
	inactive := make(map[int]bool)
	for round := 1; round < c.k; round++ {
		limit := c.k - round
		next := make(map[int]int, len(cluster))
		nextInactive := make(map[int]bool, len(inactive))
		for _, x := range order {
			if distOf(x) > limit {
				continue
			}
			if inactive[x] {
				nextInactive[x] = true
				continue
			}
			cx := cluster[x]
			if c.sampled(round, cx) {
				next[x] = cx
				continue
			}
			// Look for the lowest-ID active neighbor in a sampled cluster.
			join := -1
			for _, w := range nbrs[x] {
				if inactive[w] {
					continue
				}
				cw, ok := cluster[w]
				if !ok {
					continue // outside the tracked horizon; cannot happen within limits
				}
				if c.sampled(round, cw) && (join < 0 || w < join) {
					join = w
				}
			}
			if join >= 0 {
				record(x, join)
				next[x] = cluster[join]
				continue
			}
			// No sampled cluster adjacent: one edge per adjacent foreign
			// cluster, then drop out (intra-cluster paths already exist
			// through the join edges recorded in earlier rounds).
			c.addPerCluster(x, nbrs[x], cluster, inactive, cx, record)
			nextInactive[x] = true
		}
		cluster = next
		inactive = nextInactive
	}
	// Phase 2: active vertices connect to every adjacent foreign cluster.
	for _, x := range order {
		if distOf(x) > 0 {
			continue
		}
		if inactive[x] {
			continue
		}
		c.addPerCluster(x, nbrs[x], cluster, inactive, cluster[x], record)
	}
}

// addPerCluster adds, for x, one edge to the lowest-ID neighbor in each
// distinct adjacent cluster other than own (pass own = -1 to include all).
func (c *bsConfig) addPerCluster(x int, nbrs []int, cluster map[int]int, inactive map[int]bool, own int, record func(x, y int)) {
	best := make(map[int]int)
	for _, w := range nbrs {
		if inactive[w] {
			continue
		}
		cw, ok := cluster[w]
		if !ok {
			continue
		}
		if own >= 0 && cw == own {
			continue
		}
		if cur, exists := best[cw]; !exists || w < cur {
			best[cw] = w
		}
	}
	for _, w := range best {
		record(x, w)
	}
}

// runGlobal executes the full algorithm over a graph given as an adjacency
// map and returns the spanner edge set. Used by the global reference
// builder and the local-vs-global equivalence tests.
func (c *bsConfig) runGlobal(order []int, nbrs map[int][]int) graph.EdgeSet {
	out := graph.NewEdgeSet()
	c.run(order, nbrs, nil, func(x, y int) { out.Add(x, y) })
	return out
}

// keepEdge reports whether the edge (u,v) is added by the run restricted to
// the collected ball. order must start with the query endpoints (distance
// 0) and list every ball vertex; nbrs must be complete for dist <= k-1.
func (c *bsConfig) keepEdge(u, v int, order []int, nbrs map[int][]int, dist map[int]int) bool {
	kept := false
	c.run(order, nbrs, dist, func(x, y int) {
		if (x == u && y == v) || (x == v && y == u) {
			kept = true
		}
	})
	return kept
}
