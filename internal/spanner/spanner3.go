package spanner

// The 3-spanner LCA of paper §2: ~O(n^{3/2}) edges, ~O(n^{3/4}) probes per
// query. Edges are taken care of by degree class:
//
//   E_low:   min degree <= sqrt(n). All kept (O(n^{3/2}) edges total).
//   E_high:  sqrt(n) < min degree <= n^{3/4}. Handled by H_high: every
//            vertex w of degree <= n^{3/4} scans its full neighbor list and
//            keeps the first edge into each newly seen cluster, where the
//            cluster structure comes from S = Bernoulli(c*log n / sqrt(n))
//            centers and S(v) = S ∩ (first sqrt(n) neighbors of v).
//   E_super: min degree > n^{3/4}. Handled by H_super: the same rule with
//            centers S' = Bernoulli(c*log n / n^{3/4}), center prefix
//            n^{3/4}, and the scan confined to the block of size n^{3/4}
//            containing the queried neighbor (Idea (II)).
//
// Deviations from the paper's prose, chosen so that the kept subgraph is
// defined symmetrically and exactly (DESIGN.md "Deviations" items 2-3):
// both endpoints run each scan; the scan's "already seen" set ranges over
// all preceding neighbors regardless of their degree class. Both changes
// only add edges and preserve the stretch-3 certificates:
// for an omitted E_high edge (u,v) with scanner v, pick any s in S(u)
// (non-empty w.h.p. since deg(u) > sqrt(n)) and let u_j be the first
// neighbor of v with s in S(u_j); minimality makes s "new" at u_j, so
// (v,u_j) is kept by v's scan, and (u,s), (u_j,s) are membership edges:
// u-s-u_j-v is a path of length 3. The E_super argument is identical
// within the block.

import (
	"lca/internal/oracle"
	"lca/internal/rnd"
)

// Spanner3 is an LCA for 3-spanners. Construct with NewSpanner3; the zero
// value is unusable. It is not safe for concurrent use (probe counting and
// optional memoization are unsynchronized); build one instance per
// goroutine — construction is cheap and answers depend only on (graph,
// seed).
type Spanner3 struct {
	counter *oracle.Counter
	n       int
	sqrtN   int // degree threshold for E_low, and S center prefix
	n34     int // degree threshold for E_super, S' prefix and block size
	high    scanPart
	super   scanPart

	memo     bool
	degMemo  map[int]int
	keepMemo map[[2]int]bool
}

// NewSpanner3 returns a 3-spanner LCA over o with default configuration.
func NewSpanner3(o oracle.Oracle, seed rnd.Seed) *Spanner3 {
	return NewSpanner3Config(o, seed, Config{})
}

// NewSpanner3Config returns a 3-spanner LCA with explicit configuration.
func NewSpanner3Config(o oracle.Oracle, seed rnd.Seed, cfg Config) *Spanner3 {
	n := o.N()
	cfg = cfg.withDefaults(n)
	counter := oracle.NewCounter(o)
	sqrtN := ceilPow(n, 0.5)
	n34 := ceilPow(n, 0.75)
	s := &Spanner3{
		counter: counter,
		n:       n,
		sqrtN:   sqrtN,
		n34:     n34,
		high: scanPart{
			o:             counter,
			fam:           rnd.NewFamily(seed.Derive(0x31), cfg.Independence),
			p:             hitProb(cfg.HitConst, n, sqrtN),
			centerPrefix:  sqrtN,
			window:        0,
			scannerMaxDeg: n34,
		},
		super: scanPart{
			o:            counter,
			fam:          rnd.NewFamily(seed.Derive(0x32), cfg.Independence),
			p:            hitProb(cfg.HitConst, n, n34),
			centerPrefix: n34,
			window:       n34,
		},
		memo: cfg.Memo,
	}
	if s.memo {
		s.degMemo = make(map[int]int)
		s.keepMemo = make(map[[2]int]bool)
	}
	return s
}

// ProbeStats exposes cumulative probe counts for harness accounting.
func (s *Spanner3) ProbeStats() oracle.Stats { return s.counter.Stats() }

// Stretch returns the stretch guarantee of the spanner this LCA answers
// for.
func (s *Spanner3) Stretch() int { return 3 }

func (s *Spanner3) degree(v int) int {
	if s.memo {
		if d, ok := s.degMemo[v]; ok {
			return d
		}
		d := s.counter.Degree(v)
		s.degMemo[v] = d
		return d
	}
	return s.counter.Degree(v)
}

// QueryEdge reports whether the edge (u,v) of the input graph belongs to
// the 3-spanner. Answers are symmetric in (u,v) and consistent across
// queries for a fixed seed.
func (s *Spanner3) QueryEdge(u, v int) bool {
	if u > v {
		u, v = v, u
	}
	if s.memo {
		if ans, ok := s.keepMemo[[2]int{u, v}]; ok {
			return ans
		}
	}
	ans := s.query(u, v)
	if s.memo {
		s.keepMemo[[2]int{u, v}] = ans
	}
	return ans
}

func (s *Spanner3) query(u, v int) bool {
	du, dv := s.degree(u), s.degree(v)
	// E_low: keep every edge incident to a low-degree vertex.
	if du <= s.sqrtN || dv <= s.sqrtN {
		return true
	}
	// Membership edges of both clusterings.
	if s.high.memberEdge(u, v) || s.super.memberEdge(u, v) {
		return true
	}
	// H_high scans (scanner degree limit enforced inside scanKeep).
	if s.high.scanKeep(u, v) || s.high.scanKeep(v, u) {
		return true
	}
	// H_super block scans.
	return s.super.scanKeep(u, v) || s.super.scanKeep(v, u)
}

// SuperSpanner is the generalized H_super construction of paper §3
// (opening): for any r >= 1 it takes care of all edges with both endpoint
// degrees at least n^{1-1/(2r)}, producing a 3-spanner for those edges with
// ~O(n^{1+1/r}) edges and ~O(n^{1-1/(2r)}) probes. Theorem 3.5 uses it with
// r=3 as the E_super case of the 5-spanner.
type SuperSpanner struct {
	counter *oracle.Counter
	part    scanPart
	// Threshold is the degree threshold n^{1-1/(2r)} (also the center
	// prefix and block size).
	Threshold int
}

// NewSuperSpanner builds the generalized construction for parameter r.
func NewSuperSpanner(o oracle.Oracle, r int, seed rnd.Seed, cfg Config) *SuperSpanner {
	n := o.N()
	cfg = cfg.withDefaults(n)
	if r < 1 {
		r = 1
	}
	threshold := ceilPow(n, 1-1/(2*float64(r)))
	counter := oracle.NewCounter(o)
	return &SuperSpanner{
		counter:   counter,
		Threshold: threshold,
		part: scanPart{
			o:            counter,
			fam:          rnd.NewFamily(seed.Derive(0x33), cfg.Independence),
			p:            hitProb(cfg.HitConst, n, threshold),
			centerPrefix: threshold,
			window:       threshold,
		},
	}
}

// ProbeStats exposes cumulative probe counts.
func (s *SuperSpanner) ProbeStats() oracle.Stats { return s.counter.Stats() }

// QueryEdge reports spanner membership. Only edges whose endpoints both
// have degree >= Threshold are guaranteed stretch 3; the construction still
// answers consistently for all edges.
func (s *SuperSpanner) QueryEdge(u, v int) bool {
	if u > v {
		u, v = v, u
	}
	return s.part.keep(u, v)
}
