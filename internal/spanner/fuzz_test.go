package spanner

import (
	"testing"

	"lca/internal/core"
	"lca/internal/gen"
	"lca/internal/oracle"
	"lca/internal/rnd"
)

// FuzzBlockBounds checks the partition invariants of the neighborhood
// blocking scheme for arbitrary parameters.
func FuzzBlockBounds(f *testing.F) {
	f.Add(10, 4, 5)
	f.Add(1, 1, 0)
	f.Add(100, 7, 99)
	f.Add(5, 0, 3)
	f.Fuzz(func(t *testing.T, deg, b, pos int) {
		if deg < 1 || deg > 1<<20 || pos < 0 || pos >= deg || b < -5 || b > 1<<20 {
			t.Skip()
		}
		lo, hi := blockBounds(deg, b, pos)
		if lo < 0 || hi > deg || lo >= hi {
			t.Fatalf("bad block [%d,%d) for deg=%d b=%d pos=%d", lo, hi, deg, b, pos)
		}
		if pos < lo || pos >= hi {
			t.Fatalf("position %d outside its block [%d,%d)", pos, lo, hi)
		}
		// Block boundaries must be consistent: every position in the block
		// maps to the same block.
		for _, probe := range []int{lo, hi - 1} {
			l2, h2 := blockBounds(deg, b, probe)
			if l2 != lo || h2 != hi {
				t.Fatalf("positions %d and %d map to different blocks", pos, probe)
			}
		}
	})
}

// FuzzSpanner3SeedConsistency: for arbitrary seeds, two independent
// instances agree on every edge and the spanner has stretch 3.
func FuzzSpanner3SeedConsistency(f *testing.F) {
	f.Add(uint64(0), uint64(1))
	f.Add(uint64(42), uint64(7))
	f.Add(^uint64(0), uint64(1<<32))
	f.Fuzz(func(t *testing.T, seed, graphSeed uint64) {
		g := gen.Gnp(60, 0.3, rnd.Seed(graphSeed))
		a := NewSpanner3(oracle.New(g), rnd.Seed(seed))
		b := NewSpanner3Config(oracle.New(g), rnd.Seed(seed), Config{Memo: true})
		for _, e := range g.Edges() {
			if a.QueryEdge(e.U, e.V) != b.QueryEdge(e.U, e.V) {
				t.Fatalf("instances disagree on %v", e)
			}
		}
		h, _ := core.BuildSubgraph(g, b)
		if rep := core.VerifyStretch(g, h, 3); rep.Violations > 0 {
			t.Fatalf("stretch violations under seed %d", seed)
		}
	})
}
