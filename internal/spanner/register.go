package spanner

// Registry descriptors: every spanner construction self-registers so the
// Session facade, HTTP server and CLI harnesses dispatch to it by name.

import (
	"fmt"

	"lca/internal/core"
	"lca/internal/graph"
	"lca/internal/oracle"
	"lca/internal/registry"
	"lca/internal/rnd"
)

// cfgParams are the Config knobs shared by every construction.
var cfgParams = []registry.Param{
	{Name: "memo", Type: registry.TypeBool, Default: false,
		Help: "memoize deterministic intermediate results across queries (answers unchanged, probe stats amortized)"},
	{Name: "independence", Type: registry.TypeInt, Default: 0,
		Help: "hash-family independence; 0 selects the Theta(log n)-wise default"},
	{Name: "hitconst", Type: registry.TypeFloat, Default: 0.0,
		Help: "hitting-set sampling constant c in p = c*ln(n)/Delta; 0 selects the default 2.5"},
}

func cfgFrom(p registry.Params) Config {
	return Config{
		Memo:         p.Bool("memo"),
		Independence: p.Int("independence"),
		HitConst:     p.Float("hitconst"),
	}
}

func withParams(extra ...registry.Param) []registry.Param {
	return append(extra, cfgParams...)
}

// checkStretch returns a subgraph checker asserting containment,
// connectivity preservation and sampled stretch at most maxStretch.
func checkStretch(maxStretch int) func(g, h *graph.Graph, seed rnd.Seed) error {
	return func(g, h *graph.Graph, seed rnd.Seed) error {
		if err := core.VerifySubgraphOf(g, h); err != nil {
			return err
		}
		if err := core.VerifyConnectivityPreserved(g, h); err != nil {
			return err
		}
		rep := core.VerifyStretchSampled(g, h, maxStretch, 4000, seed.Derive(0x5eed))
		if rep.Violations > 0 {
			return fmt.Errorf("stretch > %d on %d of %d sampled edges (max observed %d)",
				maxStretch, rep.Violations, rep.Checked, rep.MaxStretch)
		}
		return nil
	}
}

// checkSpanning asserts containment and connectivity only: the O(k^2)
// constructions' stretch bound depends on k and hides a constant, so it
// is measured by reportStretch rather than pass/failed here.
func checkSpanning(g, h *graph.Graph, _ rnd.Seed) error {
	if err := core.VerifySubgraphOf(g, h); err != nil {
		return err
	}
	return core.VerifyConnectivityPreserved(g, h)
}

// reportStretch measures the exact maximum stretch of the materialized
// spanner, the metric lcaverify prints next to the parameter-dependent
// bound.
func reportStretch(bound string) func(g, h *graph.Graph) string {
	return func(g, h *graph.Graph) string {
		return fmt.Sprintf("exact max stretch %d (bound %s)", core.ExactMaxStretch(g, h), bound)
	}
}

func init() {
	registry.Register(registry.Descriptor{
		Name:    "spanner3",
		Aliases: []string{"3"},
		Kind:    registry.KindEdge,
		Summary: "3-spanner, ~O(n^{3/2}) edges, ~O(n^{3/4}) probes/query (Theorem 1.1, r=2)",
		Params:  withParams(),
		New: func(o oracle.Oracle, seed rnd.Seed, p registry.Params) (any, error) {
			return NewSpanner3Config(o, seed, cfgFrom(p)), nil
		},
		CheckSubgraph: checkStretch(3),
	})
	registry.Register(registry.Descriptor{
		Name:    "spanner5",
		Aliases: []string{"5"},
		Kind:    registry.KindEdge,
		Summary: "5-spanner, ~O(n^{4/3}) edges, ~O(n^{5/6}) probes/query (Theorem 1.1, r=3)",
		Params:  withParams(),
		New: func(o oracle.Oracle, seed rnd.Seed, p registry.Params) (any, error) {
			return NewSpanner5Config(o, seed, cfgFrom(p)), nil
		},
		CheckSubgraph: checkStretch(5),
	})
	registry.Register(registry.Descriptor{
		Name:    "spannerk",
		Aliases: []string{"k"},
		Kind:    registry.KindEdge,
		Summary: "O(k^2)-stretch spanner, ~O(n^{1+1/k}) edges for bounded degree (Theorem 1.2)",
		Params: withParams(
			registry.Param{Name: "k", Type: registry.TypeInt, Default: 3,
				Help: "stretch parameter; the spanner has ~O(n^{1+1/k}) edges and stretch O(k^2)"},
			registry.Param{Name: "l", Type: registry.TypeInt, Default: 0,
				Help: "sparse/dense volume threshold; 0 selects ceil(n^{1/3})"},
			registry.Param{Name: "centerprob", Type: registry.TypeFloat, Default: 0.0,
				Help: "center-sampling probability; 0 selects the default"},
			registry.Param{Name: "markprob", Type: registry.TypeFloat, Default: 0.0,
				Help: "Voronoi-cell marking probability; 0 selects 1/L"},
			registry.Param{Name: "q", Type: registry.TypeInt, Default: 0,
				Help: "rank-rule width; 0 selects the default"},
		),
		New: func(o oracle.Oracle, seed rnd.Seed, p registry.Params) (any, error) {
			k := p.Int("k")
			if k < 1 {
				return nil, fmt.Errorf("parameter \"k\" must be >= 1, got %d", k)
			}
			return NewSpannerKConfig(o, k, seed, kcfgFrom(p)), nil
		},
		CheckSubgraph:  checkSpanning,
		ReportSubgraph: reportStretch("O(k^2)"),
	})
	registry.Register(registry.Descriptor{
		Name:    "sparse",
		Aliases: []string{"sparsespanning"},
		Kind:    registry.KindEdge,
		Summary: "sparse spanning graph: the O(k^2)-spanner at k = ceil(log2 n)",
		Params: withParams(
			registry.Param{Name: "l", Type: registry.TypeInt, Default: 0,
				Help: "sparse/dense volume threshold; 0 selects ceil(n^{1/3})"},
			registry.Param{Name: "centerprob", Type: registry.TypeFloat, Default: 0.0,
				Help: "center-sampling probability; 0 selects the default"},
			registry.Param{Name: "markprob", Type: registry.TypeFloat, Default: 0.0,
				Help: "Voronoi-cell marking probability; 0 selects 1/L"},
			registry.Param{Name: "q", Type: registry.TypeInt, Default: 0,
				Help: "rank-rule width; 0 selects the default"},
		),
		New: func(o oracle.Oracle, seed rnd.Seed, p registry.Params) (any, error) {
			k := ceilLog2(o.N())
			if k < 1 {
				k = 1
			}
			return NewSpannerKConfig(o, k, seed, kcfgFrom(p)), nil
		},
		CheckSubgraph:  checkSpanning,
		ReportSubgraph: reportStretch("polylog(n), the k = ceil(log2 n) regime"),
	})
	registry.Register(registry.Descriptor{
		Name:    "superspanner",
		Kind:    registry.KindEdge,
		Summary: "Theorem 3.5 building block: 3-spanner for edges with both endpoint degrees >= n^{1-1/(2r)}",
		Params: withParams(
			registry.Param{Name: "r", Type: registry.TypeInt, Default: 2,
				Help: "density parameter; ~O(n^{1+1/r}) edges, degree threshold n^{1-1/(2r)}"},
		),
		New: func(o oracle.Oracle, seed rnd.Seed, p registry.Params) (any, error) {
			r := p.Int("r")
			if r < 1 {
				return nil, fmt.Errorf("parameter \"r\" must be >= 1, got %d", r)
			}
			return NewSuperSpanner(o, r, seed, cfgFrom(p)), nil
		},
		// Stretch only binds above the degree threshold, so assert
		// containment alone.
		CheckSubgraph: func(g, h *graph.Graph, _ rnd.Seed) error {
			return core.VerifySubgraphOf(g, h)
		},
	})
	registry.Register(registry.Descriptor{
		Name:    "spanner5mindeg",
		Kind:    registry.KindEdge,
		Summary: "Theorem 3.5: 5-spanner with ~O(n^{1+1/r}) edges on graphs with min degree n^{1/2-1/(2r)}",
		Params: withParams(
			registry.Param{Name: "r", Type: registry.TypeInt, Default: 3,
				Help: "density parameter; r=3 coincides with the general 5-spanner"},
		),
		New: func(o oracle.Oracle, seed rnd.Seed, p registry.Params) (any, error) {
			r := p.Int("r")
			if r < 1 {
				return nil, fmt.Errorf("parameter \"r\" must be >= 1, got %d", r)
			}
			return NewSpanner5MinDegree(o, r, seed, cfgFrom(p)), nil
		},
		CheckSubgraph: func(g, h *graph.Graph, _ rnd.Seed) error {
			return core.VerifySubgraphOf(g, h)
		},
	})
}

func kcfgFrom(p registry.Params) KConfig {
	return KConfig{
		Config:     cfgFrom(p),
		L:          p.Int("l"),
		CenterProb: p.Float("centerprob"),
		MarkProb:   p.Float("markprob"),
		Q:          p.Int("q"),
	}
}
