package spanner

// Direct unit tests for scanPart, the shared H_high/H_super machinery,
// against brute-force reference implementations of its three predicates.

import (
	"testing"

	"lca/internal/gen"
	"lca/internal/graph"
	"lca/internal/oracle"
	"lca/internal/rnd"
)

func testScanPart(g *graph.Graph, prefix, window, maxDeg int, p float64) *scanPart {
	return &scanPart{
		o:             oracle.New(g),
		fam:           rnd.NewFamily(7, 8),
		p:             p,
		centerPrefix:  prefix,
		window:        window,
		scannerMaxDeg: maxDeg,
	}
}

// refCenterSet recomputes S(v) straight from the graph.
func refCenterSet(g *graph.Graph, s *scanPart, v int) []int {
	limit := g.Degree(v)
	if limit > s.centerPrefix {
		limit = s.centerPrefix
	}
	var out []int
	for i := 0; i < limit; i++ {
		w := g.Neighbor(v, i)
		if s.isCenter(w) {
			out = append(out, w)
		}
	}
	return out
}

func TestScanPartCenterSetMatchesReference(t *testing.T) {
	g := gen.Gnp(120, 0.2, 3)
	s := testScanPart(g, 5, 0, 0, 0.3)
	for v := 0; v < g.N(); v++ {
		got := s.centerSet(v)
		want := refCenterSet(g, s, v)
		if len(got) != len(want) {
			t.Fatalf("centerSet(%d) = %v, want %v", v, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("centerSet(%d) = %v, want %v", v, got, want)
			}
		}
	}
}

func TestScanPartInCenterSetAgreesWithCenterSet(t *testing.T) {
	g := gen.Gnp(100, 0.25, 9)
	s := testScanPart(g, 6, 0, 0, 0.4)
	for v := 0; v < g.N(); v++ {
		inSet := make(map[int]bool)
		for _, c := range s.centerSet(v) {
			inSet[c] = true
		}
		for w := 0; w < g.N(); w++ {
			if w == v {
				continue
			}
			if s.inCenterSet(v, w) != inSet[w] {
				t.Fatalf("inCenterSet(%d,%d) = %v disagrees with centerSet", v, w, !inSet[w])
			}
		}
	}
}

// refScanKeep re-derives the "introduces a new center in the window" rule
// from first principles.
func refScanKeep(g *graph.Graph, s *scanPart, w, x int) bool {
	if s.scannerMaxDeg > 0 && g.Degree(w) > s.scannerMaxDeg {
		return false
	}
	pos := g.AdjacencyIndex(w, x)
	if pos < 0 {
		return false
	}
	sx := refCenterSet(g, s, x)
	if len(sx) == 0 {
		return false
	}
	lo := 0
	if s.window > 0 {
		lo, _ = blockBounds(g.Degree(w), s.window, pos)
	}
	seen := make(map[int]bool)
	for j := lo; j < pos; j++ {
		prev := g.Neighbor(w, j)
		for _, c := range refCenterSet(g, s, prev) {
			seen[c] = true
		}
	}
	for _, c := range sx {
		if !seen[c] {
			return true
		}
	}
	return false
}

func TestScanPartScanKeepMatchesReference(t *testing.T) {
	g := gen.Gnp(90, 0.3, 11)
	configs := []struct {
		prefix, window, maxDeg int
		p                      float64
	}{
		{5, 0, 0, 0.3},   // H_high shape, no degree cap
		{5, 0, 12, 0.3},  // H_high with scanner degree cap
		{8, 8, 0, 0.25},  // H_super shape
		{3, 10, 0, 0.5},  // prefix smaller than window
		{100, 4, 0, 0.1}, // prefix larger than any degree
	}
	for ci, cfg := range configs {
		s := testScanPart(g, cfg.prefix, cfg.window, cfg.maxDeg, cfg.p)
		for _, e := range g.Edges() {
			for _, dir := range [][2]int{{e.U, e.V}, {e.V, e.U}} {
				got := s.scanKeep(dir[0], dir[1])
				want := refScanKeep(g, s, dir[0], dir[1])
				if got != want {
					t.Fatalf("config %d: scanKeep(%d,%d) = %v, want %v", ci, dir[0], dir[1], got, want)
				}
			}
		}
	}
}

func TestScanPartKeepImpliesStretchWitness(t *testing.T) {
	// If keep(u,v) is false for an edge whose endpoints both have centers,
	// the 3-path witness u - s - x - v must exist within the kept
	// subgraph: the first same-window neighbor x of the scanner with
	// s in S(x) is kept by the scanner.
	g := gen.Gnp(130, 0.35, 13)
	s := testScanPart(g, 6, 0, 0, 0.4)
	kept := graph.NewEdgeSet()
	for _, e := range g.Edges() {
		if s.keep(e.U, e.V) {
			kept.Add(e.U, e.V)
		}
	}
	for _, e := range g.Edges() {
		if kept.Has(e.U, e.V) {
			continue
		}
		// Witness from the v-scans-u orientation.
		su := refCenterSet(g, s, e.U)
		if len(su) == 0 {
			continue // no guarantee without centers
		}
		found := false
		for _, c := range su {
			for j := 0; j < g.Degree(e.V) && !found; j++ {
				x := g.Neighbor(e.V, j)
				if s.inCenterSet(x, c) && kept.Has(e.V, x) && g.HasEdge(x, c) && g.HasEdge(e.U, c) &&
					kept.Has(x, c) && kept.Has(e.U, c) {
					found = true
				}
			}
			if found {
				break
			}
		}
		if !found {
			t.Fatalf("omitted edge (%d,%d) has no 3-path witness", e.U, e.V)
		}
	}
}
