package spanner

import (
	"math"
	"testing"

	"lca/internal/core"
	"lca/internal/gen"
	"lca/internal/graph"
	"lca/internal/oracle"
	"lca/internal/rnd"
)

// kWorkloads mixes sparse and dense regions so both sides of the
// sparse/dense split are exercised.
func kWorkloads(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	return map[string]*graph.Graph{
		"gnp-sparse": gen.Gnp(200, 0.02, 3),
		"gnp-mid":    gen.Gnp(150, 0.08, 5),
		"torus":      gen.Torus(12, 12),
		"clusters":   gen.PlantedClusters(120, 3, 0.3, 0.01, 9),
		"powerlaw":   gen.ChungLu(200, 2.5, 6, 11),
		"barbell":    gen.Barbell(20, 6),
	}
}

// mixedConfig forces a non-degenerate sparse/dense split at test scale
// (the default center probability saturates to 1 for small n, making every
// vertex its own cell).
func mixedConfig() KConfig {
	return KConfig{
		Config:     Config{Memo: true},
		L:          25,
		CenterProb: 0.04,
	}
}

func TestSpannerKConnectivityExact(t *testing.T) {
	// Connectivity preservation is deterministic (Lemma 4.12 plus the
	// unconditional Baswana-Sen stretch): it must hold for every seed.
	for name, g := range kWorkloads(t) {
		for _, k := range []int{1, 2, 3} {
			for seed := rnd.Seed(0); seed < 3; seed++ {
				lca := NewSpannerKConfig(oracle.New(g), k, seed, mixedConfig())
				h, _ := core.BuildSubgraph(g, lca)
				if err := core.VerifySubgraphOf(g, h); err != nil {
					t.Fatalf("%s k=%d seed=%d: %v", name, k, seed, err)
				}
				if err := core.VerifyConnectivityPreserved(g, h); err != nil {
					t.Fatalf("%s k=%d seed=%d: %v", name, k, seed, err)
				}
			}
		}
	}
}

func TestSpannerKStretchBound(t *testing.T) {
	// The O(k^2) stretch: measured max edge stretch must stay within a
	// generous constant times k^2 (the w.h.p. analysis constant).
	for name, g := range kWorkloads(t) {
		for _, k := range []int{2, 3} {
			lca := NewSpannerKConfig(oracle.New(g), k, 7, mixedConfig())
			h, _ := core.BuildSubgraph(g, lca)
			got := core.ExactMaxStretch(g, h)
			if got < 0 {
				t.Fatalf("%s k=%d: disconnection", name, k)
			}
			bound := 8*k*k + 8
			if got > bound {
				t.Errorf("%s k=%d: max stretch %d exceeds %d", name, k, got, bound)
			}
		}
	}
}

func TestSpannerKDefaultsDegenerateButCorrect(t *testing.T) {
	// With default parameters at small n the center probability saturates
	// and every vertex becomes a singleton cell; the spanner must still be
	// connected and low-stretch.
	g := gen.Gnp(120, 0.1, 2)
	lca := NewSpannerKConfig(oracle.New(g), 2, 5, KConfig{Config: Config{Memo: true}})
	h, _ := core.BuildSubgraph(g, lca)
	if err := core.VerifyConnectivityPreserved(g, h); err != nil {
		t.Fatal(err)
	}
}

func TestSpannerKSparseDenseExact(t *testing.T) {
	// The LCA's sparse/dense classification must match the definition:
	// sparse iff no center within distance k.
	g := gen.Gnp(180, 0.03, 13)
	for _, k := range []int{1, 2, 3} {
		lca := NewSpannerKConfig(oracle.New(g), k, 11, mixedConfig())
		sawSparse, sawDense := false, false
		for v := 0; v < g.N(); v++ {
			_, dist := g.BFSWithin(v, k)
			wantSparse := true
			for w := range dist {
				if lca.isCenter(w) {
					wantSparse = false
					break
				}
			}
			st := lca.status(v)
			if st.sparse != wantSparse {
				t.Fatalf("k=%d: status(%d).sparse = %v, want %v", k, v, st.sparse, wantSparse)
			}
			if st.sparse {
				sawSparse = true
			} else {
				sawDense = true
			}
		}
		if !sawSparse || !sawDense {
			t.Logf("k=%d: degenerate split (sparse=%v dense=%v)", k, sawSparse, sawDense)
		}
	}
}

func TestSpannerKVoronoiPathInvariants(t *testing.T) {
	// For every dense vertex: the path is a real path in G ending at the
	// center, has length <= k, and satisfies the suffix property (each
	// path vertex is dense, has the same center, and continues along the
	// same path) — the lemma underpinning cluster rule (c).
	g := gen.Gnp(160, 0.05, 21)
	lca := NewSpannerKConfig(oracle.New(g), 3, 3, mixedConfig())
	for v := 0; v < g.N(); v++ {
		st := lca.status(v)
		if st.sparse {
			continue
		}
		path := st.path
		if len(path) < 1 || path[0] != v || path[len(path)-1] != st.center {
			t.Fatalf("path of %d malformed: %v (center %d)", v, path, st.center)
		}
		if len(path)-1 > lca.k {
			t.Fatalf("path of %d longer than k: %v", v, path)
		}
		if !lca.isCenter(st.center) {
			t.Fatalf("center %d of %d is not a center", st.center, v)
		}
		for i := 0; i+1 < len(path); i++ {
			if !g.HasEdge(path[i], path[i+1]) {
				t.Fatalf("path of %d uses non-edge (%d,%d)", v, path[i], path[i+1])
			}
		}
		for i, x := range path {
			stx := lca.status(x)
			if stx.sparse || stx.center != st.center {
				t.Fatalf("suffix property: vertex %d on path of %d has center %v", x, v, stx)
			}
			if i+1 < len(path) && lca.nextHop(stx) != path[i+1] {
				t.Fatalf("suffix property: nextHop(%d) = %d, want %d", x, lca.nextHop(stx), path[i+1])
			}
		}
	}
}

func TestSpannerKClusterAgreement(t *testing.T) {
	// Every member of a cluster must compute the identical cluster, and
	// cluster sizes stay within 2L (type (c) groups) with type (a) covering
	// whole light cells.
	g := gen.Gnp(200, 0.04, 17)
	lca := NewSpannerKConfig(oracle.New(g), 2, 9, mixedConfig())
	seen := make(map[clusterKey][]int)
	for v := 0; v < g.N(); v++ {
		st := lca.status(v)
		if st.sparse {
			continue
		}
		ci := lca.clusterOf(v, st)
		if _, ok := ci.memberSet[v]; !ok {
			t.Fatalf("cluster of %d does not contain it: %v", v, ci.members)
		}
		if len(ci.members) > 2*lca.l {
			t.Fatalf("cluster %v has %d members > 2L", ci.key, len(ci.members))
		}
		if prev, ok := seen[ci.key]; ok {
			if !equalInts(prev, ci.members) {
				t.Fatalf("cluster %v computed differently from different members", ci.key)
			}
		} else {
			seen[ci.key] = ci.members
		}
		// All members share the cell.
		for _, m := range ci.members {
			if lca.status(m).center != ci.cell {
				t.Fatalf("cluster %v contains vertex %d from another cell", ci.key, m)
			}
		}
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSpannerKClustersPartitionCells(t *testing.T) {
	// Within one Voronoi cell, clusters must partition the members.
	g := gen.Gnp(200, 0.05, 23)
	lca := NewSpannerKConfig(oracle.New(g), 2, 2, mixedConfig())
	owner := make(map[int]clusterKey)
	for v := 0; v < g.N(); v++ {
		st := lca.status(v)
		if st.sparse {
			continue
		}
		ci := lca.clusterOf(v, st)
		for _, m := range ci.members {
			if prev, ok := owner[m]; ok && prev != ci.key {
				t.Fatalf("vertex %d owned by clusters %v and %v", m, prev, ci.key)
			}
			owner[m] = ci.key
		}
	}
}

func TestSpannerKLocalBSMatchesGlobal(t *testing.T) {
	// The local Baswana-Sen simulation must reproduce the global run
	// edge-for-edge on G_sparse — the strongest consistency check for the
	// shrinking-horizon logic.
	for _, k := range []int{1, 2, 3, 4} {
		g := gen.Gnp(150, 0.03, rnd.Seed(k))
		lca := NewSpannerKConfig(oracle.New(g), k, 31, mixedConfig())
		// Build G_sparse adjacency globally.
		nbrs := make(map[int][]int)
		order := make([]int, 0, g.N())
		for v := 0; v < g.N(); v++ {
			order = append(order, v)
			nbrs[v] = lca.sparseNeighbors(v)
		}
		global := lca.bs.runGlobal(order, nbrs)
		for _, e := range g.Edges() {
			uSparse := lca.status(e.U).sparse
			vSparse := lca.status(e.V).sparse
			if !uSparse && !vSparse {
				continue // not an E_sparse edge
			}
			local := lca.sparseKeep(e.U, e.V)
			if local != global.Has(e.U, e.V) {
				t.Fatalf("k=%d: local BS disagrees with global on (%d,%d): local=%v", k, e.U, e.V, local)
			}
		}
	}
}

func TestSpannerKPureSparseIsBaswanaSenSpanner(t *testing.T) {
	// With no centers at all, every vertex is sparse, G_sparse = G, and the
	// LCA degenerates to a pure local Baswana-Sen: stretch 2k-1 must hold
	// deterministically.
	for _, k := range []int{2, 3} {
		g := gen.Gnp(130, 0.06, rnd.Seed(10+k))
		cfg := mixedConfig()
		cfg.CenterProb = 1e-18 // no vertex elects itself
		lca := NewSpannerKConfig(oracle.New(g), k, 77, cfg)
		h, _ := core.BuildSubgraph(g, lca)
		rep := core.VerifyStretch(g, h, 2*k-1)
		if rep.Violations > 0 {
			t.Errorf("k=%d: %d edges exceed stretch %d (max %d)", k, rep.Violations, 2*k-1, rep.MaxStretch)
		}
	}
}

func TestSpannerKSameCellEdgesFormTrees(t *testing.T) {
	// H^I restricted to one cell must be a spanning tree of the cell:
	// exactly |cell|-1 edges and connected.
	g := gen.Gnp(200, 0.05, 29)
	lca := NewSpannerKConfig(oracle.New(g), 2, 41, mixedConfig())
	cells := make(map[int][]int)
	for v := 0; v < g.N(); v++ {
		st := lca.status(v)
		if !st.sparse {
			cells[st.center] = append(cells[st.center], v)
		}
	}
	for center, members := range cells {
		inCell := make(map[int]bool, len(members))
		for _, m := range members {
			inCell[m] = true
		}
		kept := 0
		b := graph.NewBuilder(g.N())
		for _, e := range g.Edges() {
			if inCell[e.U] && inCell[e.V] && lca.QueryEdge(e.U, e.V) {
				kept++
				b.AddEdge(e.U, e.V)
			}
		}
		if kept != len(members)-1 {
			t.Fatalf("cell %d: %d intra-cell edges for %d members", center, kept, len(members))
		}
		// Connectivity of the tree: walk from the center.
		h := b.Build()
		reach, _ := h.BFSWithin(center, -1)
		if len(reach) != len(members) {
			t.Fatalf("cell %d: tree spans %d of %d members", center, len(reach), len(members))
		}
	}
}

func TestSpannerKSymmetricRepeatableDeterministic(t *testing.T) {
	g := gen.Gnp(120, 0.06, 37)
	lca := NewSpannerKConfig(oracle.New(g), 2, 19, mixedConfig())
	if e, ok := core.CheckSymmetric(g, lca); !ok {
		t.Fatalf("asymmetric at %v", e)
	}
	if e, ok := core.CheckRepeatable(g, lca); !ok {
		t.Fatalf("not repeatable at %v", e)
	}
	other := NewSpannerKConfig(oracle.New(g), 2, 19, mixedConfig())
	for _, e := range g.Edges() {
		if lca.QueryEdge(e.U, e.V) != other.QueryEdge(e.U, e.V) {
			t.Fatalf("instances disagree on %v", e)
		}
	}
}

func TestSpannerKMemoDoesNotChangeAnswers(t *testing.T) {
	g := gen.Gnp(90, 0.07, 43)
	cfgMemo := mixedConfig()
	cfgPlain := cfgMemo
	cfgPlain.Memo = false
	memo := NewSpannerKConfig(oracle.New(g), 2, 3, cfgMemo)
	plain := NewSpannerKConfig(oracle.New(g), 2, 3, cfgPlain)
	for _, e := range g.Edges() {
		if memo.QueryEdge(e.U, e.V) != plain.QueryEdge(e.U, e.V) {
			t.Fatalf("memoization changed the answer on %v", e)
		}
	}
}

func TestSpannerKSizeShrinksWithK(t *testing.T) {
	// ~O(n^{1+1/k}): larger k must not blow the spanner up; on a dense
	// graph k=3 should be no denser than k=1 keeps everything.
	g := gen.Gnp(150, 0.3, 47)
	sizes := map[int]int{}
	for _, k := range []int{1, 2, 3} {
		lca := NewSpannerKConfig(oracle.New(g), k, 53, mixedConfig())
		h, _ := core.BuildSubgraph(g, lca)
		sizes[k] = h.M()
	}
	t.Logf("G=%d edges; |H| by k: %v", g.M(), sizes)
	if sizes[3] > sizes[1] {
		t.Errorf("k=3 spanner (%d) larger than k=1 (%d)", sizes[3], sizes[1])
	}
}

func TestNewSparseSpanning(t *testing.T) {
	g := gen.PlantedClusters(160, 4, 0.25, 0.01, 59)
	lca := NewSparseSpanning(oracle.New(g), 61)
	// Force memoization for the harness pass.
	lca.memo = true
	lca.statusMemo = make(map[int]*vstatus)
	lca.childrenMemo = make(map[int][]int)
	lca.subtreeMemo = make(map[int]int)
	lca.clusterMemo = make(map[int]*clusterInfo)
	lca.scanMemo = make(map[clusterKey]map[int]cellEdge)
	lca.keepMemo = make(map[[2]int]bool)
	h, _ := core.BuildSubgraph(g, lca)
	if err := core.VerifyConnectivityPreserved(g, h); err != nil {
		t.Fatal(err)
	}
	n := float64(g.N())
	if float64(h.M()) > 6*n*math.Log(n) {
		t.Errorf("sparse spanning graph has %d edges for n=%d", h.M(), g.N())
	}
}

func TestSpannerKRankBlockBits(t *testing.T) {
	if rankBlockBits(1024, 2) != 5 {
		t.Errorf("rankBlockBits(1024,2) = %d, want 5", rankBlockBits(1024, 2))
	}
	if rankBlockBits(1024, 100) != 1 {
		t.Errorf("rankBlockBits(1024,100) = %d, want 1", rankBlockBits(1024, 100))
	}
	if rankBlockBits(2, 1) < 1 {
		t.Error("rankBlockBits must be at least 1")
	}
}

func TestSpannerKProbeComplexitySparseRegime(t *testing.T) {
	// On bounded-degree graphs probes per query must be far below m (the
	// whole point of locality). The theory bound is ~O(Delta^4 n^{2/3}).
	g := gen.Torus(16, 16) // n=256, Delta=4
	lca := NewSpannerKConfig(oracle.New(g), 2, 67, KConfig{L: 25, CenterProb: 0.04})
	edges := g.Edges()
	prg := rnd.NewPRG(5)
	var stats core.QueryStats
	for i := 0; i < 40; i++ {
		e := edges[prg.Intn(len(edges))]
		before := lca.ProbeStats()
		lca.QueryEdge(e.U, e.V)
		stats.Observe(lca.ProbeStats().Sub(before))
	}
	n := float64(g.N())
	bound := 256.0 * 16 * math.Pow(n, 2.0/3) // Delta^4=256, generous polylog
	if float64(stats.MaxTotal) > bound {
		t.Errorf("max probes %d exceed %.0f", stats.MaxTotal, bound)
	}
	t.Logf("torus probes per query: max=%d mean=%.0f (m=%d)", stats.MaxTotal, stats.Mean(), g.M())
}

func TestSpannerKRankWidthQOne(t *testing.T) {
	// Q=1 is the Lenzen-Levi-style extreme (a single lowest-rank edge per
	// rule-3 pair): connectivity must still hold unconditionally, stretch
	// may degrade to O(k log n).
	g := gen.Gnp(160, 0.04, 51)
	cfg := mixedConfig()
	cfg.Q = 1
	lca := NewSpannerKConfig(oracle.New(g), 2, 3, cfg)
	h, _ := core.BuildSubgraph(g, lca)
	if err := core.VerifyConnectivityPreserved(g, h); err != nil {
		t.Fatal(err)
	}
}

func TestSpannerKSizeMonotoneInQ(t *testing.T) {
	// Larger Q keeps more rule-3 edges: |H| must not shrink as Q grows,
	// tracing the stretch-vs-size trade-off of the paper's remark after
	// Theorem 1.2.
	g := gen.Gnp(200, 0.05, 53)
	base := mixedConfig()
	prev := -1
	for _, q := range []int{1, 4, 64} {
		cfg := base
		cfg.Q = q
		lca := NewSpannerKConfig(oracle.New(g), 2, 9, cfg)
		h, _ := core.BuildSubgraph(g, lca)
		if prev >= 0 && h.M() < prev {
			t.Errorf("Q=%d produced %d edges, fewer than smaller Q (%d)", q, h.M(), prev)
		}
		prev = h.M()
	}
}
