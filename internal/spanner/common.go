// Package spanner implements the local computation algorithms for graph
// spanners following Parter, Rubinfeld, Vakilian and Yodpinyanee ("Local
// Computation Algorithms for Spanners", 2019):
//
//   - Spanner3: stretch-3 spanners with ~O(n^{3/2}) edges and ~O(n^{3/4})
//     probes per query (paper §2, Theorem 1.1 with r=2).
//   - Spanner5: stretch-5 spanners with ~O(n^{4/3}) edges and ~O(n^{5/6})
//     probes per query (paper §3, Theorem 1.1 with r=3, Theorem 3.5).
//   - SpannerK: stretch-O(k^2) spanners with ~O(n^{1+1/k}) edges and
//     probe complexity polynomial in the maximum degree and n^{2/3}
//     (paper §4, Theorem 1.2), doubling as a sparse-spanning-graph LCA.
//
// Every construction answers edge queries consistently with one fixed
// spanner determined entirely by the random seed: all sampling decisions
// (center sets, marks, ranks, representatives) are evaluated through
// bounded-independence hash families keyed by vertex IDs, matching the
// poly-logarithmic seed lengths of the paper's §5.
package spanner

import (
	"math"
	"sort"

	"lca/internal/oracle"
	"lca/internal/rnd"
)

// Config tunes the constants that the asymptotic analysis hides. The zero
// value selects defaults suitable for experiments.
type Config struct {
	// HitConst is the c in sampling probabilities p = c*ln(n)/Delta used by
	// hitting-set arguments. Larger values make the w.h.p. guarantees hold
	// at smaller n at the cost of proportionally more spanner edges.
	// Default 2.5.
	HitConst float64
	// Independence is the hash-family independence; 0 selects
	// 2*ceil(log2 n) + 4, the Theta(log n)-wise independence the analysis
	// requires.
	Independence int
	// Memo enables cross-query memoization of deterministic intermediate
	// results (center sets, cluster structures, BFS explorations). Answers
	// are unchanged — every memoized value is a pure function of the graph
	// and seed — but probe counters only see each computation once, so
	// per-query probe statistics must be collected with Memo disabled.
	Memo bool
}

func (c Config) withDefaults(n int) Config {
	if c.HitConst <= 0 {
		c.HitConst = 2.5
	}
	if c.Independence <= 0 {
		c.Independence = 2*ceilLog2(n) + 4
	}
	return c
}

// ceilLog2 returns ceil(log2(n)) for n >= 1, and 0 otherwise.
func ceilLog2(n int) int {
	l := 0
	for v := 1; v < n; v <<= 1 {
		l++
	}
	return l
}

// ceilPow returns ceil(n^exp), at least 1.
func ceilPow(n int, exp float64) int {
	if n <= 1 {
		return 1
	}
	v := int(math.Ceil(math.Pow(float64(n), exp)))
	if v < 1 {
		v = 1
	}
	return v
}

// hitProb returns min(1, c*ln(n+2)/delta), the center-sampling probability
// that makes a degree-delta prefix contain Theta(log n) centers w.h.p.
func hitProb(c float64, n, delta int) float64 {
	if delta < 1 {
		delta = 1
	}
	p := c * math.Log(float64(n)+2) / float64(delta)
	if p > 1 {
		return 1
	}
	return p
}

// blockBounds returns the half-open index range [lo, hi) of the block of
// nominal size b containing position pos in a neighbor list of length deg.
// All blocks have size exactly b except the last, which absorbs the
// remainder (size in [b, 2b)); lists shorter than b form a single block.
// This is the neighborhood-partitioning scheme of paper §1.4.
func blockBounds(deg, b, pos int) (lo, hi int) {
	if b < 1 {
		b = 1
	}
	numBlocks := deg / b
	if numBlocks < 1 {
		return 0, deg
	}
	idx := pos / b
	if idx >= numBlocks {
		idx = numBlocks - 1
	}
	lo = idx * b
	hi = lo + b
	if idx == numBlocks-1 {
		hi = deg
	}
	return lo, hi
}

// scanPart is the "keep the first edge into each new cluster" construction
// shared by H_high and H_super of the 3-spanner (and reused for the
// super-degree edges of the 5-spanner). It is parameterized by:
//
//   - centerPrefix: S(v) is the set of sampled centers among the first
//     min(deg(v), centerPrefix) neighbors of v (the multiple-centers idea,
//     paper Idea (I));
//   - window: 0 scans the scanner's full list prefix before the queried
//     neighbor (H_high); a positive value scans only within the block of
//     that size containing the queried neighbor (H_super, Idea (II));
//   - scannerMaxDeg: vertices with larger degree do not scan (H_high
//     restricts scanning to degrees <= n^{3/4}); 0 disables the limit.
//
// The subgraph it defines is the union over all vertices w of the edges
// (w, x) such that x's center set contains a center not present in the
// center sets of the neighbors preceding x in w's scan range, plus the
// membership edges (v, s) for every s in S(v).
type scanPart struct {
	o             oracle.Oracle
	fam           *rnd.Family
	p             float64
	centerPrefix  int
	window        int
	scannerMaxDeg int
}

// isCenter reports whether v was sampled as a center; no probes.
func (s *scanPart) isCenter(v int) bool {
	return s.fam.Bernoulli(uint64(v), s.p)
}

// centerSet returns the sampled centers among the first
// min(deg(v), centerPrefix) neighbors of v, in list order.
// Probes: 1 Degree + min(deg, centerPrefix) Neighbor. The hint lets a
// prefetching oracle deliver the whole prefix in one round trip; only the
// cells below actually count as probes.
func (s *scanPart) centerSet(v int) []int {
	oracle.Prefetch(s.o, v)
	deg := s.o.Degree(v)
	limit := deg
	if limit > s.centerPrefix {
		limit = s.centerPrefix
	}
	var set []int
	for i := 0; i < limit; i++ {
		w := s.o.Neighbor(v, i)
		if w >= 0 && s.isCenter(w) {
			set = append(set, w)
		}
	}
	return set
}

// inCenterSet reports whether center c is in S(w) using a single Adjacency
// probe: c must be a center and appear within w's center prefix.
func (s *scanPart) inCenterSet(w, c int) bool {
	if !s.isCenter(c) {
		return false
	}
	idx := s.o.Adjacency(w, c)
	return idx >= 0 && idx < s.centerPrefix
}

// memberEdge reports whether (u,v) is a membership edge: one endpoint is a
// center inside the other's center prefix.
func (s *scanPart) memberEdge(u, v int) bool {
	return s.inCenterSet(u, v) || s.inCenterSet(v, u)
}

// scanKeep reports whether scanner w keeps the edge (w, x): within w's scan
// range before x, no earlier neighbor's center set covers all of S(x).
// The scanner's row is hinted up front: its degree, the position of x and
// the scan range all read from one prefetched row on batched backends.
func (s *scanPart) scanKeep(w, x int) bool {
	oracle.Prefetch(s.o, w)
	if s.scannerMaxDeg > 0 && s.o.Degree(w) > s.scannerMaxDeg {
		return false
	}
	pos := s.o.Adjacency(w, x)
	if pos < 0 {
		return false
	}
	sx := s.centerSet(x)
	if len(sx) == 0 {
		return false
	}
	lo := 0
	if s.window > 0 {
		lo, _ = blockBounds(s.o.Degree(w), s.window, pos)
	}
	covered := make([]bool, len(sx))
	remaining := len(sx)
	for j := lo; j < pos && remaining > 0; j++ {
		prev := s.o.Neighbor(w, j)
		if prev < 0 {
			break
		}
		for si, c := range sx {
			if covered[si] {
				continue
			}
			if s.inCenterSet(prev, c) {
				covered[si] = true
				remaining--
			}
		}
	}
	return remaining > 0
}

// keep reports whether either endpoint's rule keeps the edge.
func (s *scanPart) keep(u, v int) bool {
	return s.memberEdge(u, v) || s.scanKeep(u, v) || s.scanKeep(v, u)
}

// sortedCopy returns a sorted copy of xs.
func sortedCopy(xs []int) []int {
	out := make([]int, len(xs))
	copy(out, xs)
	sort.Ints(out)
	return out
}

// edgeLess orders directed candidate edges lexicographically by
// (first endpoint ID, second endpoint ID), the paper's edge-ID order.
func edgeLess(a, b [2]int) bool {
	if a[0] != b[0] {
		return a[0] < b[0]
	}
	return a[1] < b[1]
}
