package spanner

// Hitting-set diagnostics for the bounded-independence ablation (paper §5,
// properties (HI) and (HII)): with centers sampled at p = c*log(n)/Delta
// through a Theta(log n)-wise independent family, (HI) the number of
// centers concentrates around p*n, and (HII) every vertex of degree at
// least Delta has Theta(log n) centers among its first Delta neighbors.
// The experiment suite evaluates both properties directly on concrete
// graphs, comparing different independence settings.

import (
	"lca/internal/graph"
	"lca/internal/rnd"
)

// HittingReport summarizes properties (HI) and (HII) on one graph.
type HittingReport struct {
	// Centers is |S|, compared against the expectation p*n.
	Centers int
	// ExpectedCenters is p*n.
	ExpectedCenters float64
	// HighVertices counts vertices with degree >= Delta.
	HighVertices int
	// Covered counts high vertices whose first Delta neighbors contain at
	// least one center ((HII) demands all of them, w.h.p.).
	Covered int
	// MinHits / MeanHits are statistics of |S(v)| over high vertices.
	MinHits  int
	MeanHits float64
}

// EvalHitting evaluates (HI)/(HII) for threshold delta with sampling
// probability p = hitConst*ln(n+2)/delta under the given independence.
func EvalHitting(g *graph.Graph, delta int, seed rnd.Seed, hitConst float64, independence int) HittingReport {
	n := g.N()
	p := hitProb(hitConst, n, delta)
	fam := rnd.NewFamily(seed.Derive(0x417), independence)
	isCenter := func(v int) bool { return fam.Bernoulli(uint64(v), p) }
	rep := HittingReport{ExpectedCenters: p * float64(n), MinHits: -1}
	for v := 0; v < n; v++ {
		if isCenter(v) {
			rep.Centers++
		}
	}
	totalHits := 0
	for v := 0; v < n; v++ {
		if g.Degree(v) < delta {
			continue
		}
		rep.HighVertices++
		hits := 0
		for i := 0; i < delta; i++ {
			if isCenter(g.Neighbor(v, i)) {
				hits++
			}
		}
		if hits > 0 {
			rep.Covered++
		}
		if rep.MinHits < 0 || hits < rep.MinHits {
			rep.MinHits = hits
		}
		totalHits += hits
	}
	if rep.HighVertices > 0 {
		rep.MeanHits = float64(totalHits) / float64(rep.HighVertices)
	}
	if rep.MinHits < 0 {
		rep.MinHits = 0
	}
	return rep
}
