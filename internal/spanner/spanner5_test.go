package spanner

import (
	"math"
	"testing"

	"lca/internal/core"
	"lca/internal/gen"
	"lca/internal/graph"
	"lca/internal/oracle"
	"lca/internal/rnd"
)

func spanner5Workloads(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	return map[string]*graph.Graph{
		"gnp-mid":    gen.Gnp(220, 0.15, 4),
		"complete":   gen.Complete(100),
		"dense-core": gen.DenseCore(180, 50, 6, 2),
		"powerlaw":   gen.ChungLu(220, 2.4, 12, 6),
		"clusters":   gen.PlantedClusters(150, 3, 0.5, 0.05, 8),
	}
}

func TestSpanner5StretchAllEdges(t *testing.T) {
	for name, g := range spanner5Workloads(t) {
		for seed := rnd.Seed(0); seed < 3; seed++ {
			lca := NewSpanner5Config(oracle.New(g), seed, Config{Memo: true})
			h, _ := core.BuildSubgraph(g, lca)
			if err := core.VerifySubgraphOf(g, h); err != nil {
				t.Fatalf("%s seed %d: %v", name, seed, err)
			}
			rep := core.VerifyStretch(g, h, 5)
			if rep.Violations > 0 {
				t.Errorf("%s seed %d: %d/%d edges exceed stretch 5 (max %d)",
					name, seed, rep.Violations, rep.Checked, rep.MaxStretch)
			}
		}
	}
}

func TestSpanner5SparserThanSpanner3(t *testing.T) {
	// The headline trade-off of Table 1: a 5-spanner may use ~n^{4/3}
	// edges versus the 3-spanner's ~n^{3/2}. On a dense graph the ordering
	// should be visible despite polylog noise.
	g := gen.Complete(220)
	h3, _ := core.BuildSubgraph(g, NewSpanner3Config(oracle.New(g), 5, Config{Memo: true}))
	h5, _ := core.BuildSubgraph(g, NewSpanner5Config(oracle.New(g), 5, Config{Memo: true}))
	if h5.M() >= g.M() {
		t.Errorf("5-spanner kept everything (%d edges)", h5.M())
	}
	t.Logf("K220: |G|=%d |H3|=%d |H5|=%d", g.M(), h3.M(), h5.M())
	if h5.M() > h3.M() {
		t.Logf("note: 5-spanner larger than 3-spanner at this scale (constants dominate)")
	}
}

func TestSpanner5SymmetricAndRepeatable(t *testing.T) {
	g := gen.DenseCore(140, 35, 5, 3)
	lca := NewSpanner5(oracle.New(g), 21)
	if e, ok := core.CheckSymmetric(g, lca); !ok {
		t.Fatalf("asymmetric at %v", e)
	}
	if e, ok := core.CheckRepeatable(g, lca); !ok {
		t.Fatalf("not repeatable at %v", e)
	}
}

func TestSpanner5MemoDoesNotChangeAnswers(t *testing.T) {
	g := gen.Gnp(130, 0.2, 14)
	plain := NewSpanner5(oracle.New(g), 3)
	memo := NewSpanner5Config(oracle.New(g), 3, Config{Memo: true})
	for _, e := range g.Edges() {
		if plain.QueryEdge(e.U, e.V) != memo.QueryEdge(e.U, e.V) {
			t.Fatalf("memoization changed the answer on %v", e)
		}
	}
}

func TestSpanner5DeterministicAcrossInstances(t *testing.T) {
	g := gen.Gnp(140, 0.25, 9)
	a := NewSpanner5(oracle.New(g), 8)
	b := NewSpanner5(oracle.New(g), 8)
	for _, e := range g.Edges() {
		if a.QueryEdge(e.U, e.V) != b.QueryEdge(e.U, e.V) {
			t.Fatalf("instances disagree on %v", e)
		}
	}
}

func TestSpanner5ProbeComplexity(t *testing.T) {
	// ~O(n^{5/6}) probes per query; polylog slack for the log^2 n center
	// pair loops.
	for _, n := range []int{256, 512} {
		g := gen.Gnp(n, 10/math.Pow(float64(n), 0.55), rnd.Seed(n))
		lca := NewSpanner5(oracle.New(g), 33)
		edges := g.Edges()
		prg := rnd.NewPRG(2)
		var stats core.QueryStats
		for i := 0; i < 60 && i < len(edges); i++ {
			e := edges[prg.Intn(len(edges))]
			before := lca.ProbeStats()
			lca.QueryEdge(e.U, e.V)
			stats.Observe(lca.ProbeStats().Sub(before))
		}
		logn := math.Log(float64(n))
		bound := 8 * math.Pow(float64(n), 5.0/6) * logn * logn
		if float64(stats.MaxTotal) > bound {
			t.Errorf("n=%d: max probes %d exceed %.0f", n, stats.MaxTotal, bound)
		}
	}
}

func TestSpanner5BucketContaining(t *testing.T) {
	g := gen.Complete(30)
	s := NewSpanner5(oracle.New(g), 1)
	members := []int{2, 4, 6, 8, 10, 12, 14}
	// dMed for n=30 is ceil(30^{1/3}) = 4.
	if s.dMed != 4 {
		t.Fatalf("dMed = %d, want 4", s.dMed)
	}
	idx, bucket := s.bucketContaining(members, 10)
	if idx != 1 || len(bucket) != 3 || bucket[0] != 10 {
		t.Fatalf("bucketContaining: idx=%d bucket=%v", idx, bucket)
	}
	idx, bucket = s.bucketContaining(members, 2)
	if idx != 0 || len(bucket) != 4 {
		t.Fatalf("first bucket: idx=%d bucket=%v", idx, bucket)
	}
	if idx, _ := s.bucketContaining(members, 3); idx != -1 {
		t.Fatal("non-member should return -1")
	}
}

func TestSpanner5ClusterConsistency(t *testing.T) {
	// Every member of C(s) must agree on the cluster: the cluster is a
	// function of the center alone.
	g := gen.Gnp(150, 0.2, 12)
	s := NewSpanner5Config(oracle.New(g), 4, Config{Memo: true})
	for v := 0; v < g.N(); v++ {
		if !s.isBcktCenter(v) {
			continue
		}
		members := s.cluster(v)
		if !contains(members, v) {
			t.Fatalf("cluster of %d does not contain its center", v)
		}
		for _, w := range members {
			if w == v {
				continue
			}
			// Membership criterion: v within the first dMed positions of
			// w's list.
			idx := g.AdjacencyIndex(w, v)
			if idx < 0 || idx >= s.dMed {
				t.Fatalf("cluster member %d of center %d fails the membership criterion", w, v)
			}
		}
	}
}

func TestSpanner5FirstBucketEdgeCanonical(t *testing.T) {
	// The kept edge between a bucket pair must not depend on orientation.
	g := gen.Gnp(120, 0.3, 19)
	s := NewSpanner5Config(oracle.New(g), 2, Config{Memo: true})
	centers := []int{}
	for v := 0; v < g.N() && len(centers) < 4; v++ {
		if s.isBcktCenter(v) {
			centers = append(centers, v)
		}
	}
	if len(centers) < 2 {
		t.Skip("not enough centers at this seed")
	}
	cs, ct := centers[0], centers[1]
	cu, cv := s.cluster(cs), s.cluster(ct)
	if len(cu) == 0 || len(cv) == 0 {
		t.Skip("degenerate clusters")
	}
	_, bu := s.bucketContaining(cu, cu[0])
	_, bv := s.bucketContaining(cv, cv[0])
	a1, b1 := s.firstBucketEdge(cs, 0, bu, ct, 0, bv)
	a2, b2 := s.firstBucketEdge(ct, 0, bv, cs, 0, bu)
	if a1 != a2 || b1 != b2 {
		t.Fatalf("orientation changed the bucket edge: (%d,%d) vs (%d,%d)", a1, b1, a2, b2)
	}
}

func TestSpanner5RepsAreHighDegreeNeighbors(t *testing.T) {
	g := gen.DenseCore(200, 60, 5, 17)
	s := NewSpanner5Config(oracle.New(g), 6, Config{Memo: true})
	for v := 0; v < g.N(); v++ {
		for _, x := range s.reps(v) {
			if !g.HasEdge(v, x) {
				t.Fatalf("rep %d of %d is not a neighbor", x, v)
			}
			if g.Degree(x) < s.dSuper {
				t.Fatalf("rep %d of %d has degree %d < %d", x, v, g.Degree(x), s.dSuper)
			}
		}
	}
}

func TestSpanner5TinyGraphs(t *testing.T) {
	for _, n := range []int{2, 4, 8} {
		g := gen.Complete(n)
		lca := NewSpanner5(oracle.New(g), 1)
		h, _ := core.BuildSubgraph(g, lca)
		if rep := core.VerifyStretch(g, h, 5); rep.Violations > 0 {
			t.Errorf("n=%d: stretch violations on tiny graph", n)
		}
	}
}
