package spanner

// The O(k^2)-spanner LCA of paper §4 (Theorem 1.2): ~O(n^{1+1/k}) edges,
// probe complexity ~O(Delta^4 n^{2/3}) with the default L = n^{1/3}. The
// construction splits the graph around a hash-sampled center set S:
//
//   sparse side: vertices with no center within distance k. Their edges are
//     spanned by a local simulation of the k-round Baswana-Sen algorithm on
//     G_sparse (bsim.go).
//
//   dense side: every dense vertex reaches its first-discovered center via
//     the ID-ordered BFS variant (Figure 6), inducing Voronoi cells spanned
//     by depth-k Voronoi trees (H^I). Cells are refined into clusters of
//     size O(L) through the heavy/light subtree rule (§4.3.2), and clusters
//     are interconnected (H^B) by three rules: marked clusters connect to
//     all adjacent clusters; clusters with no marked neighbor cell connect
//     to all adjacent cells; and the ranked rule (3) connects a cluster to
//     the q = ~O(n^{1/k}) lowest-ranked common neighbors of itself and each
//     marked cluster it participates with, which caps the inductive
//     connectivity argument at O(k) hops (Idea (V)). Ranks are concatenated
//     bounded-independence hash blocks (§5.2, rnd.RankAssigner).
//
// Two exactness choices (DESIGN.md "Deviations" item 1): the center-search
// BFS is truncated at depth k but not at L discovered vertices, and the
// sparse/dense test is the exact "no center within distance k" predicate.
// Both match the paper's definitions; the L-cutoffs are w.h.p. probe
// bounds, not part of the spanner's definition, so keeping the rule exact
// preserves query consistency on unlucky seeds while the measured probe
// counts still exhibit the ~O(Delta L) behaviour.

import (
	"sort"

	"lca/internal/oracle"
	"lca/internal/rnd"
)

// KConfig tunes the O(k^2)-spanner beyond the shared Config knobs. Zero
// values select the paper's parameters.
type KConfig struct {
	Config
	// L is the sparse/dense volume threshold (default ceil(n^{1/3})).
	L int
	// CenterProb overrides the center-sampling probability
	// (default min(1, HitConst*ln(n+2)/L)).
	CenterProb float64
	// MarkProb overrides the Voronoi-cell marking probability (default 1/L).
	MarkProb float64
	// Q overrides the rank-rule width q (default ceil(HitConst * n^{1/k} *
	// ln(n+2))).
	Q int
}

// SpannerK is an LCA for O(k^2)-spanners. Construct with NewSpannerK; the
// zero value is unusable. Not safe for concurrent use.
type SpannerK struct {
	counter *oracle.Counter
	n, k, l int
	q       int
	pCenter float64
	pMark   float64

	centerFam *rnd.Family
	markFam   *rnd.Family
	ranks     *rnd.RankAssigner
	bs        bsConfig

	memo         bool
	statusMemo   map[int]*vstatus
	childrenMemo map[int][]int
	subtreeMemo  map[int]int
	clusterMemo  map[int]*clusterInfo
	scanMemo     map[clusterKey]map[int]cellEdge
	keepMemo     map[[2]int]bool
}

// vstatus is the outcome of the center-search BFS from one vertex.
type vstatus struct {
	sparse bool
	center int   // first-discovered center (dense only)
	path   []int // lexicographically-first shortest path, vertex first, center last
}

// clusterKey identifies a cluster: kind 'a' (whole light cell, a=center),
// 'b' (heavy singleton, a=vertex), or 'c' (subtree group, a=heavy parent,
// b=group index).
type clusterKey struct {
	kind byte
	a, b int
}

// clusterInfo is a fully materialized cluster.
type clusterInfo struct {
	key       clusterKey
	cell      int // Voronoi cell center
	members   []int
	memberSet map[int]struct{}
	marked    bool
}

// cellEdge is the minimum-ID edge from a cluster to one adjacent cell;
// Inside is the cluster-side endpoint.
type cellEdge struct {
	Inside, Outside int
}

// NewSpannerK returns an O(k^2)-spanner LCA with default parameters.
func NewSpannerK(o oracle.Oracle, k int, seed rnd.Seed) *SpannerK {
	return NewSpannerKConfig(o, k, seed, KConfig{})
}

// NewSparseSpanning returns the sparse-spanning-graph specialization:
// k = ceil(log2 n), where ~O(n^{1+1/k}) = ~O(n) edges and the stretch
// guarantee degrades to polylog(n) — the regime of Lenzen-Levi.
func NewSparseSpanning(o oracle.Oracle, seed rnd.Seed) *SpannerK {
	k := ceilLog2(o.N())
	if k < 1 {
		k = 1
	}
	return NewSpannerK(o, k, seed)
}

// NewSpannerKConfig returns an O(k^2)-spanner LCA with explicit parameters.
func NewSpannerKConfig(o oracle.Oracle, k int, seed rnd.Seed, cfg KConfig) *SpannerK {
	n := o.N()
	cfg.Config = cfg.Config.withDefaults(n)
	if k < 1 {
		k = 1
	}
	if cfg.L <= 0 {
		cfg.L = ceilPow(n, 1.0/3)
	}
	if cfg.CenterProb <= 0 {
		cfg.CenterProb = hitProb(cfg.HitConst, n, cfg.L)
	}
	if cfg.MarkProb <= 0 {
		cfg.MarkProb = 1 / float64(cfg.L)
	}
	if cfg.Q <= 0 {
		cfg.Q = ceilPow(n, 1.0/float64(k))
		cfg.Q = 1 + int(cfg.HitConst*float64(cfg.Q)*float64(ceilLog2(n)+1))
	}
	counter := oracle.NewCounter(o)
	s := &SpannerK{
		counter:   counter,
		n:         n,
		k:         k,
		l:         cfg.L,
		q:         cfg.Q,
		pCenter:   cfg.CenterProb,
		pMark:     cfg.MarkProb,
		centerFam: rnd.NewFamily(seed.Derive(0x6b1), cfg.Independence),
		markFam:   rnd.NewFamily(seed.Derive(0x6b2), cfg.Independence),
		ranks:     rnd.NewRankAssigner(seed.Derive(0x6b3), k, rankBlockBits(n, k), cfg.Independence),
		bs:        newBSConfig(n, k, seed.Derive(0x6b4), cfg.Independence),
		memo:      cfg.Memo,
	}
	if s.memo {
		s.statusMemo = make(map[int]*vstatus)
		s.childrenMemo = make(map[int][]int)
		s.subtreeMemo = make(map[int]int)
		s.clusterMemo = make(map[int]*clusterInfo)
		s.scanMemo = make(map[clusterKey]map[int]cellEdge)
		s.keepMemo = make(map[[2]int]bool)
	}
	return s
}

// rankBlockBits returns N = ceil(log2(n)/k), the per-block rank width.
func rankBlockBits(n, k int) int {
	bits := (ceilLog2(n) + k - 1) / k
	if bits < 1 {
		bits = 1
	}
	return bits
}

// ProbeStats exposes cumulative probe counts.
func (s *SpannerK) ProbeStats() oracle.Stats { return s.counter.Stats() }

// K returns the stretch parameter; the stretch guarantee is O(k^2).
func (s *SpannerK) K() int { return s.k }

// isCenter reports whether v elected itself a center; no probes.
func (s *SpannerK) isCenter(v int) bool {
	return s.centerFam.Bernoulli(uint64(v), s.pCenter)
}

// cellMarked reports whether the Voronoi cell centered at c is marked.
func (s *SpannerK) cellMarked(c int) bool {
	return s.markFam.Bernoulli(uint64(c), s.pMark)
}

// rankOf returns the bounded-independence rank of a cell center.
func (s *SpannerK) rankOf(c int) rnd.Rank128 { return s.ranks.Rank(uint64(c)) }

// EdgeIsSparse reports whether (u,v) is an E_sparse edge, handled by the
// local Baswana-Sen simulation rather than the Voronoi machinery. Exposed
// for experiment bucketing; costs the two endpoint status searches.
func (s *SpannerK) EdgeIsSparse(u, v int) bool {
	return s.status(u).sparse || s.status(v).sparse
}

// EdgeClass reports which part of the construction decides (u,v):
// "sparse" (Baswana-Sen simulation), "tree" (same Voronoi cell, H^I), or
// "cells" (cross-cell, H^B). Exposed for experiment bucketing.
func (s *SpannerK) EdgeClass(u, v int) string {
	stU, stV := s.status(u), s.status(v)
	switch {
	case stU.sparse || stV.sparse:
		return "sparse"
	case stU.center == stV.center:
		return "tree"
	default:
		return "cells"
	}
}

// QueryEdge reports whether the input-graph edge (u,v) belongs to the
// O(k^2)-spanner.
func (s *SpannerK) QueryEdge(u, v int) bool {
	if u > v {
		u, v = v, u
	}
	if s.memo {
		if ans, ok := s.keepMemo[[2]int{u, v}]; ok {
			return ans
		}
	}
	ans := s.query(u, v)
	if s.memo {
		s.keepMemo[[2]int{u, v}] = ans
	}
	return ans
}

func (s *SpannerK) query(u, v int) bool {
	stU := s.status(u)
	stV := s.status(v)
	if stU.sparse || stV.sparse {
		return s.sparseKeep(u, v)
	}
	if stU.center == stV.center {
		// Same Voronoi cell: H^I keeps exactly the Voronoi tree edges.
		return s.nextHop(stU) == v || s.nextHop(stV) == u
	}
	return s.denseRules(u, v, stU, stV)
}

// status runs the center-search BFS variant from v: explore in increasing
// distance, neighbors in increasing ID order, stop at the first discovered
// center or at depth k. Probes: O(Delta L) w.h.p. Each dequeued vertex's
// row is one exploration, and newly discovered vertices are prefetched as
// a group — on batched backends a BFS level costs a handful of round
// trips instead of one per cell.
func (s *SpannerK) status(v int) *vstatus {
	if s.memo {
		if st, ok := s.statusMemo[v]; ok {
			return st
		}
	}
	st := s.searchCenter(v)
	if s.memo {
		s.statusMemo[v] = st
	}
	return st
}

func (s *SpannerK) searchCenter(v int) *vstatus {
	if s.isCenter(v) {
		return &vstatus{center: v, path: []int{v}}
	}
	dist := map[int]int{v: 0}
	parent := map[int]int{}
	queue := []int{v}
	for qi := 0; qi < len(queue); qi++ {
		x := queue[qi]
		d := dist[x]
		if d == s.k {
			continue
		}
		nbrs := append([]int(nil), s.counter.Neighbors(x)...)
		sort.Ints(nbrs)
		var fresh []int
		for _, w := range nbrs {
			if _, seen := dist[w]; !seen {
				fresh = append(fresh, w)
			}
		}
		if d+1 < s.k {
			// The next level will explore these rows; fetch them together.
			s.counter.Prefetch(fresh...)
		}
		for _, w := range nbrs {
			if _, seen := dist[w]; seen {
				continue
			}
			dist[w] = d + 1
			parent[w] = x
			queue = append(queue, w)
			if s.isCenter(w) {
				// Extract the lexicographically-first shortest path v..w.
				path := []int{w}
				for cur := w; cur != v; {
					cur = parent[cur]
					path = append(path, cur)
				}
				reverse(path)
				return &vstatus{center: w, path: path}
			}
		}
	}
	return &vstatus{sparse: true}
}

func reverse(xs []int) {
	for i, j := 0, len(xs)-1; i < j; i, j = i+1, j-1 {
		xs[i], xs[j] = xs[j], xs[i]
	}
}

// nextHop returns the parent of the status's vertex in its Voronoi tree
// (the second vertex of its path), or -1 for the center itself.
func (s *SpannerK) nextHop(st *vstatus) int {
	if st.sparse || len(st.path) < 2 {
		return -1
	}
	return st.path[1]
}

// children returns v's children in its Voronoi tree, in adjacency-list
// order (the order rule (c) groups subtrees by).
func (s *SpannerK) children(v int) []int {
	if s.memo {
		if ch, ok := s.childrenMemo[v]; ok {
			return ch
		}
	}
	st := s.status(v)
	var out []int
	if !st.sparse {
		for _, w := range s.counter.Neighbors(v) {
			stw := s.status(w)
			if !stw.sparse && stw.center == st.center && s.nextHop(stw) == v {
				out = append(out, w)
			}
		}
	}
	if s.memo {
		s.childrenMemo[v] = out
	}
	return out
}

// subtreeSize returns |T(v)| capped at l+1 (the heavy marker).
func (s *SpannerK) subtreeSize(v int) int {
	if s.memo {
		if sz, ok := s.subtreeMemo[v]; ok {
			return sz
		}
	}
	size := 0
	stack := []int{v}
	for len(stack) > 0 && size <= s.l {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		size++
		stack = append(stack, s.children(x)...)
	}
	if size > s.l {
		size = s.l + 1
	}
	if s.memo {
		s.subtreeMemo[v] = size
	}
	return size
}

func (s *SpannerK) heavy(v int) bool { return s.subtreeSize(v) > s.l }

// subtreeMembers returns all vertices of T(v) (callers ensure |T(v)| <= l).
func (s *SpannerK) subtreeMembers(v int) []int {
	var out []int
	stack := []int{v}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		out = append(out, x)
		stack = append(stack, s.children(x)...)
	}
	return out
}

// clusterOf materializes the cluster containing the dense vertex v
// (paper §4.3.2 rules (a)-(c)).
func (s *SpannerK) clusterOf(v int, st *vstatus) *clusterInfo {
	if s.memo {
		if ci, ok := s.clusterMemo[v]; ok {
			return ci
		}
	}
	ci := s.buildCluster(v, st)
	if s.memo {
		for _, m := range ci.members {
			s.clusterMemo[m] = ci
		}
	}
	return ci
}

func (s *SpannerK) buildCluster(v int, st *vstatus) *clusterInfo {
	cell := st.center
	var key clusterKey
	var members []int
	switch {
	case !s.heavy(cell):
		// (a) light cell: the whole cell is one cluster.
		key = clusterKey{kind: 'a', a: cell}
		members = s.subtreeMembers(cell)
	case s.heavy(v):
		// (b) heavy vertex: singleton.
		key = clusterKey{kind: 'b', a: v}
		members = []int{v}
	default:
		// (c) light vertex under a heavy cell: group sibling subtrees under
		// the first heavy ancestor.
		path := st.path // v ... cell
		heavyIdx := -1
		for i := 1; i < len(path); i++ {
			if s.heavy(path[i]) {
				heavyIdx = i
				break
			}
		}
		u := path[heavyIdx]
		onPath := path[heavyIdx-1] // the child of u whose subtree holds v
		var group []int
		groupIdx := -1
		cur := []int{}
		size := 0
		gi := 0
		flush := func() {
			if containsUnsorted(cur, onPath) {
				group = append([]int(nil), cur...)
				groupIdx = gi
			}
			gi++
			cur = cur[:0]
			size = 0
		}
		for _, w := range s.children(u) {
			if s.heavy(w) {
				continue
			}
			cur = append(cur, w)
			size += s.subtreeSize(w)
			if size >= s.l {
				flush()
			}
		}
		if len(cur) > 0 {
			flush()
		}
		if groupIdx < 0 {
			// Unreachable if the lexicographically-first-path suffix lemma
			// holds (tested in spannerk_test.go); kept as a safe fallback
			// so a violated invariant degrades to a singleton cluster
			// instead of an empty one.
			key = clusterKey{kind: 'b', a: v}
			members = []int{v}
			break
		}
		key = clusterKey{kind: 'c', a: u, b: groupIdx}
		for _, w := range group {
			members = append(members, s.subtreeMembers(w)...)
		}
	}
	sort.Ints(members)
	set := make(map[int]struct{}, len(members))
	for _, m := range members {
		set[m] = struct{}{}
	}
	return &clusterInfo{
		key:       key,
		cell:      cell,
		members:   members,
		memberSet: set,
		marked:    s.cellMarked(cell),
	}
}

func containsUnsorted(xs []int, x int) bool {
	for _, y := range xs {
		if y == x {
			return true
		}
	}
	return false
}

// scanCluster computes, for every Voronoi cell adjacent to the cluster
// (dense neighbors in other cells), the minimum-ID edge from the cluster
// into that cell. Probes: O(Delta^2 L^2) w.h.p. (each neighbor's status is
// a BFS).
func (s *SpannerK) scanCluster(ci *clusterInfo) map[int]cellEdge {
	if s.memo {
		if m, ok := s.scanMemo[ci.key]; ok {
			return m
		}
	}
	out := make(map[int]cellEdge)
	// All member rows in one exploration hint before the sweep.
	s.counter.Prefetch(ci.members...)
	for _, a := range ci.members {
		for _, w := range s.counter.Neighbors(a) {
			stw := s.status(w)
			if stw.sparse || stw.center == ci.cell {
				continue
			}
			e := cellEdge{Inside: a, Outside: w}
			if cur, ok := out[stw.center]; !ok || edgeLess([2]int{e.Inside, e.Outside}, [2]int{cur.Inside, cur.Outside}) {
				out[stw.center] = e
			}
		}
	}
	if s.memo {
		s.scanMemo[ci.key] = out
	}
	return out
}

// minEdgeToCluster returns the minimum-ID edge from cluster A into cluster
// B, or ok=false if they are not adjacent.
func (s *SpannerK) minEdgeToCluster(a, b *clusterInfo) (cellEdge, bool) {
	best := cellEdge{Inside: -1, Outside: -1}
	found := false
	s.counter.Prefetch(a.members...)
	for _, x := range a.members {
		for _, w := range s.counter.Neighbors(x) {
			if _, isMember := b.memberSet[w]; !isMember {
				continue
			}
			e := cellEdge{Inside: x, Outside: w}
			if !found || edgeLess([2]int{e.Inside, e.Outside}, [2]int{best.Inside, best.Outside}) {
				best = e
				found = true
			}
		}
	}
	return best, found
}

// denseRules evaluates the H^B connection rules (Figure 10) in both
// orientations.
func (s *SpannerK) denseRules(u, v int, stU, stV *vstatus) bool {
	a := s.clusterOf(u, stU)
	b := s.clusterOf(v, stV)
	// Rule (1): marked clusters connect to every adjacent cluster.
	if a.marked {
		if e, ok := s.minEdgeToCluster(a, b); ok && e.Inside == u && e.Outside == v {
			return true
		}
	}
	if b.marked {
		if e, ok := s.minEdgeToCluster(b, a); ok && e.Inside == v && e.Outside == u {
			return true
		}
	}
	scanA := s.scanCluster(a)
	scanB := s.scanCluster(b)
	if s.ruleTwoThree(u, v, a, b, scanA, scanB) {
		return true
	}
	return s.ruleTwoThree(v, u, b, a, scanB, scanA)
}

// ruleTwoThree evaluates rules (2) and (3) with A = cluster(u) as the
// connecting side: the candidate edge is A's minimum-ID edge into Vor(B).
func (s *SpannerK) ruleTwoThree(u, v int, a, b *clusterInfo, scanA, scanB map[int]cellEdge) bool {
	// Rule (2): if B has no marked adjacent cell, B connects to each of its
	// adjacent cells; the edge into Vor(A) is B's minimum-ID edge there.
	hasMarked := false
	for cell := range scanB {
		if s.cellMarked(cell) {
			hasMarked = true
			break
		}
	}
	if !hasMarked {
		if e, ok := scanB[a.cell]; ok && e.Inside == v && e.Outside == u {
			return true
		}
	}
	// Rule (3): only the minimum-ID edge of E(A, Vor(B)) can be kept.
	e, ok := scanA[b.cell]
	if !ok || e.Inside != u || e.Outside != v {
		return false
	}
	if !hasMarked {
		return false
	}
	rankB := s.rankOf(b.cell)
	for cell, be := range scanB {
		if !s.cellMarked(cell) {
			continue
		}
		// C is the marked cluster B participates with in Vor(cell).
		c := s.clusterOf(be.Outside, s.status(be.Outside))
		scanC := s.scanCluster(c)
		// Rank of c(B) among the q lowest in c(∂A) ∩ c(∂C).
		lower := 0
		inIntersection := false
		for common := range scanA {
			if _, both := scanC[common]; !both {
				continue
			}
			if common == b.cell {
				inIntersection = true
				continue
			}
			r := s.rankOf(common)
			if r.Less(rankB) || (r == rankB && common < b.cell) {
				lower++
			}
		}
		if inIntersection && lower < s.q {
			return true
		}
	}
	return false
}

// sparseKeep decides E_sparse edges by locally simulating Baswana-Sen on
// G_sparse over the radius-k ball around the query endpoints.
func (s *SpannerK) sparseKeep(u, v int) bool {
	order, nbrs, dist := s.collectSparseBall(u, v)
	return s.bs.keepEdge(u, v, order, nbrs, dist)
}

// collectSparseBall gathers the radius-k ball around {u,v} in G_sparse,
// with complete neighbor lists for every vertex at distance <= k-1.
func (s *SpannerK) collectSparseBall(u, v int) (order []int, nbrs map[int][]int, dist map[int]int) {
	dist = map[int]int{u: 0}
	order = []int{u}
	if v != u {
		dist[v] = 0
		order = append(order, v)
	}
	nbrs = make(map[int][]int)
	for qi := 0; qi < len(order); qi++ {
		x := order[qi]
		d := dist[x]
		if d >= s.k {
			continue
		}
		lst := s.sparseNeighbors(x)
		nbrs[x] = lst
		for _, w := range lst {
			if _, seen := dist[w]; !seen {
				dist[w] = d + 1
				order = append(order, w)
			}
		}
	}
	return order, nbrs, dist
}

// sparseNeighbors returns x's neighbors in G_sparse: all neighbors if x is
// sparse, else only the sparse ones.
func (s *SpannerK) sparseNeighbors(x int) []int {
	xSparse := s.status(x).sparse
	var out []int
	for _, w := range s.counter.Neighbors(x) {
		if xSparse || s.status(w).sparse {
			out = append(out, w)
		}
	}
	return out
}
