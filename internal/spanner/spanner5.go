package spanner

// The 5-spanner LCA of paper §3: ~O(n^{4/3}) edges, ~O(n^{5/6}) probes per
// query. With r=3 the degree thresholds collapse to dLow = dMed = n^{1/3}
// and dSuper = n^{5/6}, and every edge lands in at least one case:
//
//   E_low:   min degree <= n^{1/3}: all kept.
//   E_super: max degree >= n^{5/6}: the generalized H_super construction
//            (scanPart with prefix = window = n^{5/6}) gives stretch 3.
//   E_bckt:  both endpoints deserted in [n^{1/3}, n^{5/6}]: clusters around
//            centers of degree <= n^{5/6} are partitioned into buckets of
//            size n^{1/3} (Idea (III)), and exactly one edge is kept
//            between every adjacent bucket pair.
//   E_rep:   both endpoints in the band, one crowded: crowded vertices
//            reach radius-2 clusters through sampled high-degree
//            representatives (Idea (IV)).
//
// The LCA evaluates every rule on every edge (Observation 2.2: subgraphs
// may contain edges outside "their" class, so all sub-LCAs always run).
// Desertedness itself never needs to be computed at query time — it only
// partitions the analysis.
//
// One pinned-down detail beyond the paper's prose: in the bucket rule the
// center enumeration uses S+(v) = S(v) ∪ {v if v is a center}, so that the
// minimum-ID edge between two buckets is re-derivable when the bucket
// vertex is the cluster's own center (the paper leaves C(s) ∋ s implicit).

import (
	"sort"

	"lca/internal/oracle"
	"lca/internal/rnd"
)

// Spanner5 is an LCA for 5-spanners. Construct with NewSpanner5; the zero
// value is unusable. Not safe for concurrent use; instances are cheap to
// build per goroutine.
type Spanner5 struct {
	counter *oracle.Counter
	n       int
	dLow    int // E_low threshold (n^{1/r}; equals dMed for general graphs)
	dMed    int // n^{1/2-1/(2r)}: bucket size, S center prefix
	dSuper  int // n^{1-1/(2r)}: super threshold, center degree cap, rep threshold

	super      scanPart    // E_super construction (also provides S' centers)
	bcktFam    *rnd.Family // bucket-cluster center sampling
	bcktP      float64
	repFam     *rnd.Family // representative index sampling
	repSamples int

	memo        bool
	degMemo     map[int]int
	clusterMemo map[int][]int
	repsMemo    map[int][]int
	keepMemo    map[[2]int]bool
}

// NewSpanner5 returns a 5-spanner LCA over o with default configuration.
func NewSpanner5(o oracle.Oracle, seed rnd.Seed) *Spanner5 {
	return NewSpanner5Config(o, seed, Config{})
}

// NewSpanner5Config returns a 5-spanner LCA with explicit configuration.
func NewSpanner5Config(o oracle.Oracle, seed rnd.Seed, cfg Config) *Spanner5 {
	return newSpanner5R(o, 3, seed, cfg)
}

// NewSpanner5MinDegree returns the Theorem 3.5 LCA for parameter r >= 1:
// on graphs with minimum degree at least n^{1/2-1/(2r)} it answers for a
// 5-spanner with ~O(n^{1+1/r}) edges and ~O(n^{1-1/(2r)}) probes — sparser
// than the general-graph bound n^{4/3} for r > 3, bypassing the girth
// barrier thanks to the degree assumption. With r = 3 it coincides with
// the general 5-spanner. On graphs violating the degree precondition, the
// stretch guarantee lapses for edges with an endpoint degree inside
// (n^{1/r}, n^{1/2-1/(2r)}); all other invariants (consistency, symmetry)
// still hold.
func NewSpanner5MinDegree(o oracle.Oracle, r int, seed rnd.Seed, cfg Config) *Spanner5 {
	if r < 1 {
		r = 1
	}
	return newSpanner5R(o, r, seed, cfg)
}

// MinDegreePrecondition returns the minimum degree under which the stretch
// guarantee holds for this instance's thresholds (dMed; for the default
// r=3 construction the E_low case closes the gap and there is no
// precondition).
func (s *Spanner5) MinDegreePrecondition() int {
	if s.dLow >= s.dMed {
		return 0
	}
	return s.dMed
}

func newSpanner5R(o oracle.Oracle, r int, seed rnd.Seed, cfg Config) *Spanner5 {
	n := o.N()
	cfg = cfg.withDefaults(n)
	counter := oracle.NewCounter(o)
	dLow := ceilPow(n, 1.0/float64(r))
	dMed := ceilPow(n, 0.5-1.0/(2*float64(r)))
	if dMed < dLow {
		// r <= 3: the low threshold dominates and closes the coverage gap.
		dMed = dLow
	}
	dSuper := ceilPow(n, 1-1.0/(2*float64(r)))
	s := &Spanner5{
		counter: counter,
		n:       n,
		dLow:    dLow,
		dMed:    dMed,
		dSuper:  dSuper,
		super: scanPart{
			o:            counter,
			fam:          rnd.NewFamily(seed.Derive(0x51), cfg.Independence),
			p:            hitProb(cfg.HitConst, n, dSuper),
			centerPrefix: dSuper,
			window:       dSuper,
		},
		bcktFam:    rnd.NewFamily(seed.Derive(0x52), cfg.Independence),
		bcktP:      hitProb(cfg.HitConst, n, dMed),
		repFam:     rnd.NewFamily(seed.Derive(0x53), cfg.Independence),
		repSamples: 2 + int(cfg.HitConst*float64(ceilLog2(n)+1)),
		memo:       cfg.Memo,
	}
	if s.memo {
		s.degMemo = make(map[int]int)
		s.clusterMemo = make(map[int][]int)
		s.repsMemo = make(map[int][]int)
		s.keepMemo = make(map[[2]int]bool)
	}
	return s
}

// ProbeStats exposes cumulative probe counts for harness accounting.
func (s *Spanner5) ProbeStats() oracle.Stats { return s.counter.Stats() }

// Stretch returns the stretch guarantee of this LCA's spanner.
func (s *Spanner5) Stretch() int { return 5 }

func (s *Spanner5) degree(v int) int {
	if s.memo {
		if d, ok := s.degMemo[v]; ok {
			return d
		}
		d := s.counter.Degree(v)
		s.degMemo[v] = d
		return d
	}
	return s.counter.Degree(v)
}

// QueryEdge reports whether the input-graph edge (u,v) belongs to the
// 5-spanner.
func (s *Spanner5) QueryEdge(u, v int) bool {
	if u > v {
		u, v = v, u
	}
	if s.memo {
		if ans, ok := s.keepMemo[[2]int{u, v}]; ok {
			return ans
		}
	}
	ans := s.query(u, v)
	if s.memo {
		s.keepMemo[[2]int{u, v}] = ans
	}
	return ans
}

func (s *Spanner5) query(u, v int) bool {
	du, dv := s.degree(u), s.degree(v)
	// E_low.
	if du <= s.dLow || dv <= s.dLow {
		return true
	}
	// E_super: membership edges and block scans.
	if s.super.keep(u, v) {
		return true
	}
	// Bucket-cluster membership edges (rule A of H_bckt).
	if s.inBcktCenterSet(u, v) || s.inBcktCenterSet(v, u) {
		return true
	}
	// Representative membership edges (rule A of H_rep).
	if s.repMemberEdge(u, v, du, dv) {
		return true
	}
	// Bucket rule (B).
	if du >= s.dMed && dv >= s.dMed && s.bcktRule(u, v) {
		return true
	}
	// Representative rule (B), both orientations.
	inBandU := du >= s.dMed && du <= s.dSuper
	inBandV := dv >= s.dMed && dv <= s.dSuper
	if inBandU && inBandV {
		if s.repScan(u, v) || s.repScan(v, u) {
			return true
		}
	}
	return false
}

// isBcktCenter reports whether v is a bucket-cluster center: sampled by the
// hash family and of degree at most dSuper (the degree cap that makes
// cluster enumeration affordable, paper "LCA for E_bckt"). Costs one Degree
// probe when the sampling bit is set.
func (s *Spanner5) isBcktCenter(v int) bool {
	return s.bcktFam.Bernoulli(uint64(v), s.bcktP) && s.degree(v) <= s.dSuper
}

// inBcktCenterSet reports whether center c lies in S(w): one Adjacency
// probe plus the center check.
func (s *Spanner5) inBcktCenterSet(w, c int) bool {
	if !s.isBcktCenter(c) {
		return false
	}
	idx := s.counter.Adjacency(w, c)
	return idx >= 0 && idx < s.dMed
}

// bcktCenters returns S+(v): centers among the first min(deg, dMed)
// neighbors of v, plus v itself if v is a center. The prefix scan is
// hinted as one exploration; per-cell probe accounting is unchanged.
func (s *Spanner5) bcktCenters(v int) []int {
	s.counter.Prefetch(v)
	deg := s.degree(v)
	limit := deg
	if limit > s.dMed {
		limit = s.dMed
	}
	var out []int
	for i := 0; i < limit; i++ {
		w := s.counter.Neighbor(v, i)
		if w >= 0 && s.isBcktCenter(w) {
			out = append(out, w)
		}
	}
	if s.isBcktCenter(v) {
		out = append(out, v)
	}
	return out
}

// cluster returns C(c) = {c} ∪ {w in Γ(c) : c in S(w)}, sorted by ID.
// Probes: deg(c) Neighbor + deg(c) Adjacency (deg(c) <= dSuper by the
// center degree cap).
func (s *Spanner5) cluster(c int) []int {
	if s.memo {
		if m, ok := s.clusterMemo[c]; ok {
			return m
		}
	}
	// The center's whole row is scanned below; one hint fetches it in a
	// single batched round trip on network backends.
	s.counter.Prefetch(c)
	deg := s.degree(c)
	members := []int{c}
	for i := 0; i < deg; i++ {
		w := s.counter.Neighbor(c, i)
		if w < 0 {
			break
		}
		idx := s.counter.Adjacency(w, c)
		if idx >= 0 && idx < s.dMed {
			members = append(members, w)
		}
	}
	sort.Ints(members)
	if s.memo {
		s.clusterMemo[c] = members
	}
	return members
}

// bucketContaining returns the index and contents of the bucket of the
// sorted cluster member list that contains v: chunks of exactly dMed
// members, the last chunk holding the remainder.
func (s *Spanner5) bucketContaining(members []int, v int) (int, []int) {
	pos := sort.SearchInts(members, v)
	if pos >= len(members) || members[pos] != v {
		return -1, nil
	}
	idx := pos / s.dMed
	lo := idx * s.dMed
	hi := lo + s.dMed
	if hi > len(members) {
		hi = len(members)
	}
	return idx, members[lo:hi]
}

// bcktRule evaluates H_bckt rule (B): (u,v) is kept iff for some pair of
// centers s in S+(u), t in S+(v) with s != t, (u,v) is the minimum-ID
// qualifying edge between the bucket of u in C(s) and the bucket of v in
// C(t).
func (s *Spanner5) bcktRule(u, v int) bool {
	su := s.bcktCenters(u)
	if len(su) == 0 {
		return false
	}
	sv := s.bcktCenters(v)
	// Each distinct cluster is scanned once per query, not once per center
	// pair — the same accounting as the paper's probe analysis.
	local := make(map[int][]int, len(su)+len(sv))
	getCluster := func(c int) []int {
		if m, ok := local[c]; ok {
			return m
		}
		m := s.cluster(c)
		local[c] = m
		return m
	}
	for _, cs := range su {
		for _, ct := range sv {
			if cs == ct {
				continue
			}
			cu := getCluster(cs)
			cv := getCluster(ct)
			bi, bu := s.bucketContaining(cu, u)
			bj, bv := s.bucketContaining(cv, v)
			if bi < 0 || bj < 0 {
				continue
			}
			a, b := s.firstBucketEdge(cs, bi, bu, ct, bj, bv)
			if (a == u && b == v) || (a == v && b == u) {
				return true
			}
		}
	}
	return false
}

// firstBucketEdge finds the unique kept edge between two buckets: the
// lexicographically first pair (by vertex IDs, iterating from the bucket
// with the smaller (centerID, bucketIndex) key) that is an edge whose
// endpoints both have degree >= dMed. It returns (-1,-1) if none exists.
func (s *Spanner5) firstBucketEdge(cs, bi int, bu []int, ct, bj int, bv []int) (int, int) {
	// Canonical orientation so every query of this bucket pair agrees.
	if cs > ct || (cs == ct && bi > bj) {
		cs, ct = ct, cs
		bi, bj = bj, bi
		bu, bv = bv, bu
	}
	// Both buckets' rows in one exploration hint: the degree screening and
	// the Adjacency pair scan below all read prefetched rows.
	s.counter.Prefetch(append(append(make([]int, 0, len(bu)+len(bv)), bu...), bv...)...)
	// Degree screening, one probe per candidate.
	okA := make([]bool, len(bu))
	for i, a := range bu {
		okA[i] = s.degree(a) >= s.dMed
	}
	okB := make([]bool, len(bv))
	for j, b := range bv {
		okB[j] = s.degree(b) >= s.dMed
	}
	for i, a := range bu {
		if !okA[i] {
			continue
		}
		for j, b := range bv {
			if !okB[j] || a == b {
				continue
			}
			if s.counter.Adjacency(a, b) >= 0 {
				return a, b
			}
		}
	}
	return -1, -1
}

// reps returns Reps(v): among repSamples hash-chosen indices into the first
// min(deg, dMed) positions of v's list, the neighbors of degree >= dSuper,
// deduplicated and sorted. Probes: O(log n) Neighbor + Degree.
func (s *Spanner5) reps(v int) []int {
	if s.memo {
		if r, ok := s.repsMemo[v]; ok {
			return r
		}
	}
	s.counter.Prefetch(v)
	deg := s.degree(v)
	limit := deg
	if limit > s.dMed {
		limit = s.dMed
	}
	var out []int
	if limit > 0 {
		seen := make(map[int]bool, s.repSamples)
		for j := 0; j < s.repSamples; j++ {
			idx := s.repFam.Intn(rnd.Pair(uint64(v), uint64(j)), limit)
			x := s.counter.Neighbor(v, idx)
			if x < 0 || seen[x] {
				continue
			}
			seen[x] = true
			if s.degree(x) >= s.dSuper {
				out = append(out, x)
			}
		}
		sort.Ints(out)
	}
	if s.memo {
		s.repsMemo[v] = out
	}
	return out
}

// repMemberEdge evaluates H_rep rule (A): (u,v) is kept if one endpoint is
// in the band [dMed, dSuper] and the other is one of its representatives.
func (s *Spanner5) repMemberEdge(u, v, du, dv int) bool {
	if du >= s.dMed && du <= s.dSuper && contains(s.reps(u), v) {
		return true
	}
	if dv >= s.dMed && dv <= s.dSuper && contains(s.reps(v), u) {
		return true
	}
	return false
}

// repScan evaluates H_rep rule (B) with scanner u: v introduces a center
// (through some representative) that no earlier band neighbor of u reaches
// through its representatives.
func (s *Spanner5) repScan(u, v int) bool {
	rs := s.repCenterSet(v)
	if len(rs) == 0 {
		return false
	}
	s.counter.Prefetch(u)
	pos := s.counter.Adjacency(u, v)
	if pos < 0 {
		return false
	}
	covered := make([]bool, len(rs))
	remaining := len(rs)
	for j := 0; j < pos && remaining > 0; j++ {
		w := s.counter.Neighbor(u, j)
		if w < 0 {
			break
		}
		dw := s.degree(w)
		if dw < s.dMed || dw > s.dSuper {
			continue
		}
		for _, x := range s.reps(w) {
			for si, c := range rs {
				if covered[si] {
					continue
				}
				if s.super.inCenterSet(x, c) {
					covered[si] = true
					remaining--
				}
			}
			if remaining == 0 {
				break
			}
		}
	}
	return remaining > 0
}

// repCenterSet returns RS(v) = ∪_{x in Reps(v)} S'(x), deduplicated.
func (s *Spanner5) repCenterSet(v int) []int {
	var out []int
	seen := make(map[int]bool)
	for _, x := range s.reps(v) {
		for _, c := range s.super.centerSet(x) {
			if !seen[c] {
				seen[c] = true
				out = append(out, c)
			}
		}
	}
	return out
}

func contains(sorted []int, x int) bool {
	i := sort.SearchInts(sorted, x)
	return i < len(sorted) && sorted[i] == x
}
