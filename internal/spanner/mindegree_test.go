package spanner

import (
	"math"
	"testing"

	"lca/internal/core"
	"lca/internal/gen"
	"lca/internal/graph"
	"lca/internal/oracle"
)

func TestSpanner5MinDegreeMatchesDefaultAtR3(t *testing.T) {
	g := gen.Gnp(120, 0.3, 5)
	a := NewSpanner5Config(oracle.New(g), 9, Config{})
	b := NewSpanner5MinDegree(oracle.New(g), 3, 9, Config{})
	for _, e := range g.Edges() {
		if a.QueryEdge(e.U, e.V) != b.QueryEdge(e.U, e.V) {
			t.Fatalf("r=3 variant diverged from the default on %v", e)
		}
	}
	if b.MinDegreePrecondition() != 0 {
		t.Errorf("r=3 should have no degree precondition, got %d", b.MinDegreePrecondition())
	}
}

func TestSpanner5MinDegreeStretch(t *testing.T) {
	// Theorem 3.5 workloads: min degree >= n^{1/2-1/(2r)}.
	for _, r := range []int{4, 5} {
		workloads := []*graph.Graph{
			gen.Complete(150),
			gen.Gnp(200, 0.4, 3),
		}
		for wi, g := range workloads {
			lca := NewSpanner5MinDegree(oracle.New(g), r, 7, Config{Memo: true})
			if g.MinDegree() < lca.MinDegreePrecondition() {
				t.Fatalf("r=%d workload %d: min degree %d below precondition %d",
					r, wi, g.MinDegree(), lca.MinDegreePrecondition())
			}
			h, _ := core.BuildSubgraph(g, lca)
			rep := core.VerifyStretch(g, h, 5)
			if rep.Violations > 0 {
				t.Errorf("r=%d workload %d: %d stretch violations (max %d)",
					r, wi, rep.Violations, rep.MaxStretch)
			}
		}
	}
}

func TestSpanner5MinDegreeSparserForLargerR(t *testing.T) {
	// The point of Theorem 3.5: bigger r buys a smaller spanner when the
	// degree precondition holds; each size stays inside its ~O(n^{1+1/r})
	// bound.
	g := gen.Complete(300)
	sizes := map[int]int{}
	for _, r := range []int{3, 4, 6} {
		lca := NewSpanner5MinDegree(oracle.New(g), r, 11, Config{Memo: true})
		h, _ := core.BuildSubgraph(g, lca)
		sizes[r] = h.M()
		logn := math.Log(float64(g.N()))
		bound := 6 * math.Pow(float64(g.N()), 1+1/float64(r)) * logn * logn
		if float64(h.M()) > bound {
			t.Errorf("r=%d: %d edges exceed ~O bound %.0f", r, h.M(), bound)
		}
	}
	t.Logf("K300 5-spanner sizes by r: %v (m=%d)", sizes, g.M())
	if sizes[6] > sizes[3]*2 {
		t.Errorf("r=6 spanner (%d) much larger than r=3 (%d); expected comparable or smaller",
			sizes[6], sizes[3])
	}
}

func TestSpanner5MinDegreeSymmetric(t *testing.T) {
	g := gen.Gnp(150, 0.4, 13)
	lca := NewSpanner5MinDegree(oracle.New(g), 4, 3, Config{})
	if e, ok := core.CheckSymmetric(g, lca); !ok {
		t.Fatalf("asymmetric at %v", e)
	}
}

func TestSpanner5MinDegreeThresholds(t *testing.T) {
	g := gen.Complete(1000)
	s := NewSpanner5MinDegree(oracle.New(g), 4, 1, Config{})
	// n=1000, r=4: dLow = ceil(1000^{1/4}) = 6, dMed = ceil(1000^{3/8}) =
	// 14, dSuper = ceil(1000^{7/8}) = ceil(421.7) = 422.
	if s.dLow != 6 || s.dMed != 14 || s.dSuper != 422 {
		t.Errorf("thresholds = (%d, %d, %d), want (6, 14, 422)", s.dLow, s.dMed, s.dSuper)
	}
	if s.MinDegreePrecondition() != 14 {
		t.Errorf("precondition = %d, want 14", s.MinDegreePrecondition())
	}
}
