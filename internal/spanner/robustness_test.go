package spanner

// Robustness tests: the adjacency-list ordering is adversarial input in
// the LCA model (constructions key decisions off list positions), the
// probe bounds are hard contracts (enforced via LimitOracle), and the
// guarantees must hold across randomly drawn (graph, seed) pairs
// (testing/quick).

import (
	"math"
	"testing"
	"testing/quick"

	"lca/internal/core"
	"lca/internal/gen"
	"lca/internal/graph"
	"lca/internal/oracle"
	"lca/internal/rnd"
)

// shuffledPair builds the same edge set with sorted and shuffled adjacency
// orders.
func shuffledPair(n int, p float64, seed rnd.Seed) (*graph.Graph, *graph.Graph) {
	prg := rnd.NewPRG(seed)
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if prg.Float64() < p {
				b.AddEdge(i, j)
			}
		}
	}
	return b.Build(), b.BuildShuffled(rnd.NewPRG(seed.Derive(99)))
}

func TestSpanner3OrderRobustness(t *testing.T) {
	// Different list orders define different (both valid) spanners.
	sorted, shuffled := shuffledPair(150, 0.3, 7)
	for name, g := range map[string]*graph.Graph{"sorted": sorted, "shuffled": shuffled} {
		lca := NewSpanner3Config(oracle.New(g), 3, Config{Memo: true})
		h, _ := core.BuildSubgraph(g, lca)
		if rep := core.VerifyStretch(g, h, 3); rep.Violations > 0 {
			t.Fatalf("%s order: %d stretch violations", name, rep.Violations)
		}
	}
}

func TestSpanner5OrderRobustness(t *testing.T) {
	sorted, shuffled := shuffledPair(140, 0.25, 11)
	for name, g := range map[string]*graph.Graph{"sorted": sorted, "shuffled": shuffled} {
		lca := NewSpanner5Config(oracle.New(g), 5, Config{Memo: true})
		h, _ := core.BuildSubgraph(g, lca)
		if rep := core.VerifyStretch(g, h, 5); rep.Violations > 0 {
			t.Fatalf("%s order: %d stretch violations", name, rep.Violations)
		}
	}
}

func TestSpannerKOrderRobustness(t *testing.T) {
	sorted, shuffled := shuffledPair(150, 0.04, 13)
	cfg := KConfig{Config: Config{Memo: true}, L: 25, CenterProb: 0.05}
	for name, g := range map[string]*graph.Graph{"sorted": sorted, "shuffled": shuffled} {
		lca := NewSpannerKConfig(oracle.New(g), 2, 17, cfg)
		h, _ := core.BuildSubgraph(g, lca)
		if err := core.VerifyConnectivityPreserved(g, h); err != nil {
			t.Fatalf("%s order: %v", name, err)
		}
	}
}

func TestSpanner3ProbeBudgetContract(t *testing.T) {
	// Not just measured but enforced: every query must finish within the
	// ~O(n^{3/4}) budget or the LimitOracle aborts it.
	n := 1024
	g := gen.Gnp(n, 8/math.Sqrt(float64(n)), 5)
	logn := math.Log(float64(n))
	budget := uint64(6 * math.Pow(float64(n), 0.75) * logn * logn)
	limit := oracle.NewLimit(oracle.New(g), budget)
	lca := NewSpanner3(limit, 7)
	edges := g.Edges()
	prg := rnd.NewPRG(1)
	for i := 0; i < 100; i++ {
		e := edges[prg.Intn(len(edges))]
		ok := limit.WithinBudget(func() { lca.QueryEdge(e.U, e.V) })
		if !ok {
			t.Fatalf("query (%d,%d) exceeded the probe budget %d", e.U, e.V, budget)
		}
	}
}

func TestSpanner5ProbeBudgetContract(t *testing.T) {
	n := 1024
	g := gen.Gnp(n, 2*math.Pow(float64(n), 0.6)/float64(n), 5)
	logn := math.Log(float64(n))
	budget := uint64(10 * math.Pow(float64(n), 5.0/6) * logn * logn)
	limit := oracle.NewLimit(oracle.New(g), budget)
	lca := NewSpanner5Config(limit, 7, Config{HitConst: 1})
	edges := g.Edges()
	prg := rnd.NewPRG(2)
	for i := 0; i < 60; i++ {
		e := edges[prg.Intn(len(edges))]
		ok := limit.WithinBudget(func() { lca.QueryEdge(e.U, e.V) })
		if !ok {
			t.Fatalf("query (%d,%d) exceeded the probe budget %d", e.U, e.V, budget)
		}
	}
}

func TestQuickSpanner3InvariantsOverRandomInstances(t *testing.T) {
	// Property: for arbitrary (graph seed, algorithm seed), the assembled
	// subgraph is a stretch-3 spanner.
	check := func(gSeed, aSeed uint16) bool {
		g := gen.Gnp(80, 0.3, rnd.Seed(gSeed))
		lca := NewSpanner3Config(oracle.New(g), rnd.Seed(aSeed), Config{Memo: true})
		h, _ := core.BuildSubgraph(g, lca)
		return core.VerifyStretch(g, h, 3).Violations == 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestQuickSpanner5InvariantsOverRandomInstances(t *testing.T) {
	check := func(gSeed, aSeed uint16) bool {
		g := gen.Gnp(80, 0.25, rnd.Seed(gSeed))
		lca := NewSpanner5Config(oracle.New(g), rnd.Seed(aSeed), Config{Memo: true})
		h, _ := core.BuildSubgraph(g, lca)
		return core.VerifyStretch(g, h, 5).Violations == 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

func TestQuickSpannerKConnectivityOverRandomInstances(t *testing.T) {
	check := func(gSeed, aSeed uint16) bool {
		g := gen.Gnp(90, 0.05, rnd.Seed(gSeed))
		cfg := KConfig{Config: Config{Memo: true}, L: 20, CenterProb: 0.06}
		lca := NewSpannerKConfig(oracle.New(g), 2, rnd.Seed(aSeed), cfg)
		h, _ := core.BuildSubgraph(g, lca)
		return core.VerifyConnectivityPreserved(g, h) == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

func TestSpannerParallelAssemblyMatchesSerial(t *testing.T) {
	// LCA instances are independent; the parallel harness must produce the
	// identical spanner.
	g := gen.Gnp(150, 0.3, 21)
	serial, _ := core.BuildSubgraph(g, NewSpanner3(oracle.New(g), 9))
	parallel, _ := core.BuildSubgraphParallel(g, func() core.EdgeLCA {
		return NewSpanner3(oracle.New(g), 9)
	}, 8)
	if serial.M() != parallel.M() {
		t.Fatalf("parallel %d edges vs serial %d", parallel.M(), serial.M())
	}
	for _, e := range serial.Edges() {
		if !parallel.HasEdge(e.U, e.V) {
			t.Fatalf("parallel assembly lost %v", e)
		}
	}
}
