package spanner

import (
	"math"
	"testing"

	"lca/internal/core"
	"lca/internal/gen"
	"lca/internal/graph"
	"lca/internal/oracle"
	"lca/internal/rnd"
)

// spanner3Workloads are graphs that populate all three degree classes of
// the 3-spanner analysis.
func spanner3Workloads(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	return map[string]*graph.Graph{
		"gnp-dense":  gen.Gnp(160, 0.35, 11),
		"complete":   gen.Complete(90),
		"dense-core": gen.DenseCore(200, 40, 5, 7),
		"powerlaw":   gen.ChungLu(250, 2.3, 10, 3),
		"bipartite":  gen.CompleteBipartite(40, 60),
		"sparse":     gen.Gnp(200, 0.02, 5),
	}
}

func TestSpanner3StretchAllEdges(t *testing.T) {
	for name, g := range spanner3Workloads(t) {
		for seed := rnd.Seed(0); seed < 3; seed++ {
			lca := NewSpanner3Config(oracle.New(g), seed, Config{Memo: true})
			h, _ := core.BuildSubgraph(g, lca)
			if err := core.VerifySubgraphOf(g, h); err != nil {
				t.Fatalf("%s seed %d: %v", name, seed, err)
			}
			rep := core.VerifyStretch(g, h, 3)
			if rep.Violations > 0 {
				t.Errorf("%s seed %d: %d/%d edges exceed stretch 3 (max %d)",
					name, seed, rep.Violations, rep.Checked, rep.MaxStretch)
			}
		}
	}
}

func TestSpanner3Sparsifies(t *testing.T) {
	// On dense inputs the spanner must drop a constant fraction of edges;
	// the size bound is ~O(n^{3/2}).
	g := gen.Complete(120)
	lca := NewSpanner3Config(oracle.New(g), 1, Config{Memo: true})
	h, _ := core.BuildSubgraph(g, lca)
	n := float64(g.N())
	bound := 4 * math.Pow(n, 1.5) * math.Log(n)
	if float64(h.M()) > bound {
		t.Errorf("spanner has %d edges, sanity bound %.0f", h.M(), bound)
	}
	if h.M() >= g.M() {
		t.Errorf("spanner kept all %d edges of K120", h.M())
	}
}

func TestSpanner3KeepsLowDegreeEdges(t *testing.T) {
	g := gen.Gnp(300, 0.01, 9) // all degrees well below sqrt(300) ~ 18 w.h.p.? not quite; filter below
	lca := NewSpanner3(oracle.New(g), 4)
	sqrtN := ceilPow(g.N(), 0.5)
	for _, e := range g.Edges() {
		if g.Degree(e.U) <= sqrtN || g.Degree(e.V) <= sqrtN {
			if !lca.QueryEdge(e.U, e.V) {
				t.Fatalf("E_low edge (%d,%d) rejected", e.U, e.V)
			}
		}
	}
}

func TestSpanner3SymmetricAndRepeatable(t *testing.T) {
	g := gen.DenseCore(150, 30, 4, 2)
	lca := NewSpanner3(oracle.New(g), 17)
	if e, ok := core.CheckSymmetric(g, lca); !ok {
		t.Fatalf("asymmetric at %v", e)
	}
	if e, ok := core.CheckRepeatable(g, lca); !ok {
		t.Fatalf("not repeatable at %v", e)
	}
}

func TestSpanner3DeterministicAcrossInstances(t *testing.T) {
	g := gen.Gnp(120, 0.3, 21)
	a := NewSpanner3(oracle.New(g), 5)
	b := NewSpanner3(oracle.New(g), 5)
	for _, e := range g.Edges() {
		if a.QueryEdge(e.U, e.V) != b.QueryEdge(e.U, e.V) {
			t.Fatalf("instances disagree on %v", e)
		}
	}
	c := NewSpanner3(oracle.New(g), 6)
	diff := 0
	for _, e := range g.Edges() {
		if a.QueryEdge(e.U, e.V) != c.QueryEdge(e.U, e.V) {
			diff++
		}
	}
	if diff == 0 {
		t.Log("note: different seeds produced identical spanners (possible but unusual)")
	}
}

func TestSpanner3MemoDoesNotChangeAnswers(t *testing.T) {
	g := gen.Gnp(100, 0.3, 8)
	plain := NewSpanner3(oracle.New(g), 3)
	memo := NewSpanner3Config(oracle.New(g), 3, Config{Memo: true})
	for _, e := range g.Edges() {
		if plain.QueryEdge(e.U, e.V) != memo.QueryEdge(e.U, e.V) {
			t.Fatalf("memoization changed the answer on %v", e)
		}
	}
}

func TestSpanner3ProbeComplexity(t *testing.T) {
	// Per-query probes must stay within ~O(n^{3/4}); the polylog slack
	// absorbs the Theta(log n)-sized center sets.
	for _, n := range []int{256, 512} {
		g := gen.Gnp(n, 12/math.Sqrt(float64(n)), rnd.Seed(n))
		lca := NewSpanner3(oracle.New(g), 77)
		_, stats := core.BuildSubgraph(g, lca)
		logn := math.Log(float64(n))
		bound := 6 * math.Pow(float64(n), 0.75) * logn * logn
		if float64(stats.MaxTotal) > bound {
			t.Errorf("n=%d: max probes %d exceed %.0f", n, stats.MaxTotal, bound)
		}
	}
}

func TestSpanner3ProbeSublinearOnCompleteGraph(t *testing.T) {
	// The headline claim: even at Delta = n-1 the LCA answers with o(n)
	// probes (here the dominant term is the n^{3/4} block scan).
	g := gen.Complete(400)
	lca := NewSpanner3(oracle.New(g), 13)
	var stats core.QueryStats
	edges := g.Edges()
	prg := rnd.NewPRG(1)
	for i := 0; i < 50; i++ {
		e := edges[prg.Intn(len(edges))]
		before := lca.ProbeStats()
		lca.QueryEdge(e.U, e.V)
		stats.Observe(lca.ProbeStats().Sub(before))
	}
	n := float64(g.N())
	bound := 6 * math.Pow(n, 0.75) * math.Log(n) * math.Log(n)
	if float64(stats.MaxTotal) > bound {
		t.Errorf("max probes %d exceed %.0f on K400", stats.MaxTotal, bound)
	}
	if float64(stats.MaxTotal) > float64(g.N()*4) {
		t.Errorf("probes %d not sublinear-ish for n=%d", stats.MaxTotal, g.N())
	}
}

func TestSuperSpannerStretchOnHighDegreeGraphs(t *testing.T) {
	// With min degree >= n^{1-1/(2r)}, the generalized construction is a
	// 3-spanner for the whole graph (Theorem 3.5's building block).
	for _, r := range []int{2, 3} {
		g := gen.Complete(100) // min degree 99 >= 100^{5/6} ~ 46
		lca := NewSuperSpanner(oracle.New(g), r, 7, Config{})
		if g.MinDegree() < lca.Threshold {
			t.Fatalf("r=%d: workload does not meet the degree precondition", r)
		}
		h, _ := core.BuildSubgraph(g, lca)
		rep := core.VerifyStretch(g, h, 3)
		if rep.Violations > 0 {
			t.Errorf("r=%d: %d stretch violations (max %d)", r, rep.Violations, rep.MaxStretch)
		}
		if h.M() >= g.M() {
			t.Errorf("r=%d: no sparsification (%d edges)", r, h.M())
		}
	}
}

func TestSuperSpannerSymmetric(t *testing.T) {
	g := gen.Complete(60)
	lca := NewSuperSpanner(oracle.New(g), 3, 9, Config{})
	if e, ok := core.CheckSymmetric(g, lca); !ok {
		t.Fatalf("asymmetric at %v", e)
	}
}

func TestBlockBounds(t *testing.T) {
	cases := []struct {
		deg, b, pos    int
		wantLo, wantHi int
	}{
		{10, 4, 0, 0, 4},  // first block
		{10, 4, 5, 4, 10}, // last block absorbs remainder (size 6 < 2b)
		{10, 4, 9, 4, 10},
		{3, 4, 2, 0, 3}, // list shorter than block size: single block
		{8, 4, 7, 4, 8}, // exact multiple: two blocks of 4
		{8, 4, 3, 0, 4},
		{5, 1, 3, 3, 4}, // unit blocks
		{7, 0, 3, 3, 4}, // b < 1 clamps to 1
	}
	for _, c := range cases {
		lo, hi := blockBounds(c.deg, c.b, c.pos)
		if lo != c.wantLo || hi != c.wantHi {
			t.Errorf("blockBounds(%d,%d,%d) = [%d,%d), want [%d,%d)",
				c.deg, c.b, c.pos, lo, hi, c.wantLo, c.wantHi)
		}
		if c.pos < c.deg && (c.pos < lo || c.pos >= hi) {
			t.Errorf("blockBounds(%d,%d,%d): position outside its own block", c.deg, c.b, c.pos)
		}
	}
}

func TestBlockBoundsPartition(t *testing.T) {
	// Blocks must partition [0, deg) with all sizes in [b, 2b) except when
	// deg < b (one short block).
	for _, deg := range []int{1, 5, 16, 17, 31, 100} {
		for _, b := range []int{1, 4, 7, 50} {
			covered := 0
			pos := 0
			for pos < deg {
				lo, hi := blockBounds(deg, b, pos)
				if lo != pos {
					t.Fatalf("deg=%d b=%d: block at %d starts at %d", deg, b, pos, lo)
				}
				size := hi - lo
				if deg >= b && (size < b || size >= 2*b) {
					t.Fatalf("deg=%d b=%d: block [%d,%d) has size %d", deg, b, lo, hi, size)
				}
				covered += size
				pos = hi
			}
			if covered != deg {
				t.Fatalf("deg=%d b=%d: blocks cover %d", deg, b, covered)
			}
		}
	}
}

func TestCeilHelpers(t *testing.T) {
	if ceilLog2(1) != 0 || ceilLog2(2) != 1 || ceilLog2(3) != 2 || ceilLog2(1024) != 10 {
		t.Error("ceilLog2 wrong")
	}
	if ceilPow(100, 0.5) != 10 || ceilPow(0, 0.5) != 1 {
		t.Error("ceilPow wrong")
	}
	if hitProb(2, 100, 1000000) >= 1 && hitProb(2, 100, 1) != 1 {
		t.Error("hitProb clamp wrong")
	}
}

func TestSpanner3TinyGraphs(t *testing.T) {
	// Degenerate sizes must not panic and must keep everything (all
	// degrees are tiny).
	for _, n := range []int{2, 3, 5} {
		g := gen.Complete(n)
		lca := NewSpanner3(oracle.New(g), 1)
		h, _ := core.BuildSubgraph(g, lca)
		if h.M() != g.M() {
			t.Errorf("n=%d: tiny complete graph should be kept whole (%d of %d)", n, h.M(), g.M())
		}
	}
}
