package spanner

// Large-scale smoke test: the regime the construction is actually for —
// a graph big enough that nobody would materialize the spanner — answering
// queries within the probe budget. Skipped under -short.

import (
	"math"
	"testing"

	"lca/internal/gen"
	"lca/internal/oracle"
	"lca/internal/rnd"
)

func TestSpanner3AtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("large-scale smoke test")
	}
	const n = 50000
	g := gen.ChungLu(n, 2.2, 30, 7)
	t.Logf("workload: n=%d m=%d maxdeg=%d", g.N(), g.M(), g.MaxDegree())

	logn := math.Log(float64(n))
	budget := uint64(6 * math.Pow(float64(n), 0.75) * logn * logn)
	limit := oracle.NewLimit(oracle.New(g), budget)
	lca := NewSpanner3(limit, 99)
	twin := NewSpanner3(oracle.New(g), 99)

	prg := rnd.NewPRG(3)
	kept := 0
	for i := 0; i < 60; i++ {
		// Mix hub-incident and uniform edges.
		var u int
		if i%2 == 0 {
			u = prg.Intn(50) // hubs live at low indices in Chung-Lu
		} else {
			u = prg.Intn(n)
		}
		if g.Degree(u) == 0 {
			continue
		}
		v := g.Neighbor(u, prg.Intn(g.Degree(u)))
		var ans bool
		ok := limit.WithinBudget(func() { ans = lca.QueryEdge(u, v) })
		if !ok {
			t.Fatalf("query (%d,%d) blew the probe budget %d at n=%d", u, v, budget, n)
		}
		if twin.QueryEdge(u, v) != ans {
			t.Fatalf("instances disagree on (%d,%d) at scale", u, v)
		}
		if ans {
			kept++
		}
	}
	if kept == 0 {
		t.Error("no queried edge was in the spanner (implausible)")
	}
}
