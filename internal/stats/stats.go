// Package stats provides the small statistical toolkit used by the
// experiment harness: streaming summaries, percentiles, least-squares
// log-log slope fits (for recovering probe-complexity exponents), and
// aligned text tables for EXPERIMENTS.md-style reports.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary accumulates a stream of observations.
type Summary struct {
	n        int
	mean, m2 float64
	min, max float64
	values   []float64 // retained for percentiles
}

// Add folds one observation into the summary.
func (s *Summary) Add(x float64) {
	if s.n == 0 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	s.n++
	// Welford's update keeps the variance numerically stable.
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
	s.values = append(s.values, x)
}

// N returns the number of observations.
func (s *Summary) N() int { return s.n }

// Mean returns the sample mean (0 for an empty summary).
func (s *Summary) Mean() float64 { return s.mean }

// Min returns the minimum observation.
func (s *Summary) Min() float64 { return s.min }

// Max returns the maximum observation.
func (s *Summary) Max() float64 { return s.max }

// Std returns the sample standard deviation.
func (s *Summary) Std() float64 {
	if s.n < 2 {
		return 0
	}
	return math.Sqrt(s.m2 / float64(s.n-1))
}

// Percentile returns the p-th percentile (0 <= p <= 100) by nearest-rank
// on the sorted sample.
func (s *Summary) Percentile(p float64) float64 {
	if s.n == 0 {
		return 0
	}
	sorted := append([]float64(nil), s.values...)
	sort.Float64s(sorted)
	rank := int(math.Ceil(p/100*float64(s.n))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= s.n {
		rank = s.n - 1
	}
	return sorted[rank]
}

// FitPowerLaw fits y = c * x^alpha by least squares on (ln x, ln y) and
// returns the exponent alpha and the coefficient c. Points with
// non-positive coordinates are skipped. It returns ok=false with fewer
// than two usable points.
func FitPowerLaw(xs, ys []float64) (alpha, c float64, ok bool) {
	var lx, ly []float64
	for i := range xs {
		if i < len(ys) && xs[i] > 0 && ys[i] > 0 {
			lx = append(lx, math.Log(xs[i]))
			ly = append(ly, math.Log(ys[i]))
		}
	}
	if len(lx) < 2 {
		return 0, 0, false
	}
	n := float64(len(lx))
	var sx, sy, sxx, sxy float64
	for i := range lx {
		sx += lx[i]
		sy += ly[i]
		sxx += lx[i] * lx[i]
		sxy += lx[i] * ly[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, 0, false
	}
	alpha = (n*sxy - sx*sy) / den
	c = math.Exp((sy - alpha*sx) / n)
	return alpha, c, true
}

// Table builds an aligned monospace table.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// AddRow appends a row; cells beyond the header width are dropped and
// missing cells padded empty.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.header))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowf appends a row of formatted values.
func (t *Table) AddRowf(format string, cols ...interface{}) {
	parts := strings.Split(fmt.Sprintf(format, cols...), "|")
	t.AddRow(parts...)
}

// Columns returns the header names.
func (t *Table) Columns() []string { return append([]string(nil), t.header...) }

// Records returns every row as a column-name-keyed map, the shape consumed
// by machine-readable emitters.
func (t *Table) Records() []map[string]string {
	out := make([]map[string]string, 0, len(t.rows))
	for _, row := range t.rows {
		rec := make(map[string]string, len(t.header))
		for i, h := range t.header {
			rec[h] = row[i]
		}
		out = append(out, rec)
	}
	return out
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	width := make([]int, len(t.header))
	for i, h := range t.header {
		width[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", width[i]-len(c)))
		}
		b.WriteString("\n")
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Markdown renders the table as a GitHub-flavored markdown table.
func (t *Table) Markdown() string {
	var b strings.Builder
	b.WriteString("| " + strings.Join(t.header, " | ") + " |\n")
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = "---"
	}
	b.WriteString("| " + strings.Join(sep, " | ") + " |\n")
	for _, row := range t.rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	return b.String()
}
