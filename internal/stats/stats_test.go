package stats

import (
	"math"
	"strings"
	"testing"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, x := range []float64{3, 1, 4, 1, 5, 9, 2, 6} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if s.Min() != 1 || s.Max() != 9 {
		t.Fatalf("min/max = %f/%f", s.Min(), s.Max())
	}
	if math.Abs(s.Mean()-3.875) > 1e-9 {
		t.Fatalf("mean = %f", s.Mean())
	}
	// Sample std of the digits above.
	want := 2.74838
	if math.Abs(s.Std()-want) > 1e-4 {
		t.Fatalf("std = %f, want %f", s.Std(), want)
	}
}

func TestSummaryPercentile(t *testing.T) {
	var s Summary
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	cases := map[float64]float64{50: 50, 99: 99, 100: 100, 0: 1, 1: 1}
	for p, want := range cases {
		if got := s.Percentile(p); got != want {
			t.Errorf("P%.0f = %f, want %f", p, got, want)
		}
	}
	var empty Summary
	if empty.Percentile(50) != 0 {
		t.Error("empty percentile should be 0")
	}
}

func TestSummarySingle(t *testing.T) {
	var s Summary
	s.Add(7)
	if s.Std() != 0 || s.Mean() != 7 || s.Min() != 7 || s.Max() != 7 {
		t.Error("single-element summary wrong")
	}
}

func TestFitPowerLawExact(t *testing.T) {
	xs := []float64{10, 100, 1000, 10000}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3 * math.Pow(x, 0.75)
	}
	alpha, c, ok := FitPowerLaw(xs, ys)
	if !ok {
		t.Fatal("fit failed")
	}
	if math.Abs(alpha-0.75) > 1e-9 || math.Abs(c-3) > 1e-9 {
		t.Fatalf("fit = (%f, %f), want (0.75, 3)", alpha, c)
	}
}

func TestFitPowerLawSkipsNonPositive(t *testing.T) {
	alpha, _, ok := FitPowerLaw([]float64{0, -1, 2, 4}, []float64{1, 1, 2, 4})
	if !ok {
		t.Fatal("fit should succeed on the two valid points")
	}
	if math.Abs(alpha-1) > 1e-9 {
		t.Fatalf("alpha = %f, want 1", alpha)
	}
	if _, _, ok := FitPowerLaw([]float64{1}, []float64{1}); ok {
		t.Fatal("single point must not fit")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("name", "value")
	tb.AddRow("alpha", "0.75")
	tb.AddRow("toolong-name", "1")
	tb.AddRow("short") // missing cell padded
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "name") || !strings.Contains(lines[0], "value") {
		t.Errorf("header wrong: %q", lines[0])
	}
	if !strings.Contains(lines[1], "----") {
		t.Errorf("separator wrong: %q", lines[1])
	}
	md := tb.Markdown()
	if !strings.HasPrefix(md, "| name | value |") {
		t.Errorf("markdown header wrong: %q", md)
	}
	if !strings.Contains(md, "| --- | --- |") {
		t.Errorf("markdown separator missing: %q", md)
	}
}

func TestTableAddRowf(t *testing.T) {
	tb := NewTable("n", "probes")
	tb.AddRowf("%d|%.1f", 1024, 57.3)
	out := tb.String()
	if !strings.Contains(out, "1024") || !strings.Contains(out, "57.3") {
		t.Errorf("formatted row missing values:\n%s", out)
	}
}
