package registry_test

import (
	"strings"
	"testing"

	"lca/internal/core"
	"lca/internal/gen"
	"lca/internal/graph"
	"lca/internal/oracle"
	"lca/internal/registry"
	"lca/internal/rnd"

	// Register the built-in algorithm catalog.
	_ "lca/internal/coloring"
	_ "lca/internal/matching"
	_ "lca/internal/mis"
	_ "lca/internal/spanner"
)

const testSeed rnd.Seed = 99

func testGraph() *graph.Graph { return gen.Gnp(120, 0.08, 5) }

func TestCatalogPopulated(t *testing.T) {
	names := registry.Names()
	for _, want := range []string{
		"spanner3", "spanner5", "spannerk", "sparse", "superspanner",
		"spanner5mindeg", "mis", "matching", "vertexcover",
		"approxmatching", "coloring",
	} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("algorithm %q not registered (have %v)", want, names)
		}
	}
}

// TestRoundTripDeterministic constructs every registered algorithm twice
// from its default parameters with the same seed and checks that a fixed
// query set answers identically across the two instances — the
// replica-consistency property the whole serving story rests on.
func TestRoundTripDeterministic(t *testing.T) {
	g := testGraph()
	edges := g.Edges()
	for _, d := range registry.All() {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			a, err := d.Build(oracle.New(g), testSeed, nil)
			if err != nil {
				t.Fatalf("first build: %v", err)
			}
			b, err := d.Build(oracle.New(g), testSeed, nil)
			if err != nil {
				t.Fatalf("second build: %v", err)
			}
			switch d.Kind {
			case registry.KindEdge:
				la, lb := a.(core.EdgeLCA), b.(core.EdgeLCA)
				for i := 0; i < 40 && i < len(edges); i++ {
					e := edges[(i*17)%len(edges)]
					if la.QueryEdge(e.U, e.V) != lb.QueryEdge(e.U, e.V) {
						t.Fatalf("instances disagree on edge (%d,%d)", e.U, e.V)
					}
				}
			case registry.KindVertex:
				la, lb := a.(core.VertexLCA), b.(core.VertexLCA)
				for v := 0; v < g.N(); v += 3 {
					if la.QueryVertex(v) != lb.QueryVertex(v) {
						t.Fatalf("instances disagree on vertex %d", v)
					}
				}
			case registry.KindLabel:
				la, lb := a.(core.LabelLCA), b.(core.LabelLCA)
				for v := 0; v < g.N(); v += 3 {
					if la.QueryLabel(v) != lb.QueryLabel(v) {
						t.Fatalf("instances disagree on label of %d", v)
					}
				}
			default:
				t.Fatalf("unknown kind %q", d.Kind)
			}
		})
	}
}

// TestUnknownParamRejected checks that every descriptor rejects parameters
// it does not declare instead of silently ignoring them.
func TestUnknownParamRejected(t *testing.T) {
	g := testGraph()
	for _, d := range registry.All() {
		if _, err := d.Build(oracle.New(g), testSeed, registry.Params{"no_such_param": 1}); err == nil {
			t.Errorf("%s: unknown parameter accepted", d.Name)
		} else if !strings.Contains(err.Error(), "no_such_param") {
			t.Errorf("%s: error does not name the bad parameter: %v", d.Name, err)
		}
	}
}

// TestWrongTypeRejected checks type validation on declared parameters.
func TestWrongTypeRejected(t *testing.T) {
	g := testGraph()
	d, err := registry.Get("spannerk")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Build(oracle.New(g), testSeed, registry.Params{"k": "three"}); err == nil {
		t.Error("string accepted for int parameter k")
	}
	if _, err := d.Build(oracle.New(g), testSeed, registry.Params{"memo": 1}); err == nil {
		t.Error("int accepted for bool parameter memo")
	}
	// Ints are accepted for float parameters.
	if _, err := d.Build(oracle.New(g), testSeed, registry.Params{"hitconst": 3}); err != nil {
		t.Errorf("int rejected for float parameter hitconst: %v", err)
	}
}

// TestParamRangeRejected checks constructor-level range validation.
func TestParamRangeRejected(t *testing.T) {
	g := testGraph()
	cases := []struct {
		algo  string
		param string
		value int
	}{
		{"spannerk", "k", 0},
		{"approxmatching", "rounds", -1},
		{"superspanner", "r", 0},
	}
	for _, c := range cases {
		d, err := registry.Get(c.algo)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := d.Build(oracle.New(g), testSeed, registry.Params{c.param: c.value}); err == nil {
			t.Errorf("%s: %s=%d accepted", c.algo, c.param, c.value)
		}
	}
}

func TestKindMismatch(t *testing.T) {
	g := testGraph()
	if _, err := registry.BuildEdge("mis", oracle.New(g), testSeed, nil); err == nil {
		t.Error("BuildEdge accepted a vertex-kind algorithm")
	}
	if _, err := registry.BuildVertex("spanner3", oracle.New(g), testSeed, nil); err == nil {
		t.Error("BuildVertex accepted an edge-kind algorithm")
	}
	if _, err := registry.BuildLabel("matching", oracle.New(g), testSeed, nil); err == nil {
		t.Error("BuildLabel accepted an edge-kind algorithm")
	}
	if _, err := registry.BuildEdge("spanner3", oracle.New(g), testSeed, nil); err != nil {
		t.Errorf("BuildEdge(spanner3): %v", err)
	}
}

func TestAliases(t *testing.T) {
	for alias, canon := range map[string]string{
		"3": "spanner3", "5": "spanner5", "k": "spannerk",
		"cover": "vertexcover", "approx": "approxmatching",
	} {
		d, err := registry.Get(alias)
		if err != nil {
			t.Errorf("alias %q: %v", alias, err)
			continue
		}
		if d.Name != canon {
			t.Errorf("alias %q resolved to %q, want %q", alias, d.Name, canon)
		}
	}
}

func TestUnknownAlgorithm(t *testing.T) {
	if _, err := registry.Get("nosuch"); err == nil {
		t.Error("unknown algorithm lookup succeeded")
	}
}

// TestResolveFillsDefaults checks that Resolve returns a complete map.
func TestResolveFillsDefaults(t *testing.T) {
	d, err := registry.Get("spannerk")
	if err != nil {
		t.Fatal(err)
	}
	p, err := d.Resolve(registry.Params{"k": 4})
	if err != nil {
		t.Fatal(err)
	}
	if p.Int("k") != 4 {
		t.Errorf("k = %d, want 4", p.Int("k"))
	}
	if p.Bool("memo") {
		t.Error("memo default should be false")
	}
	for _, spec := range d.Params {
		if _, ok := p[spec.Name]; !ok {
			t.Errorf("resolved params missing %q", spec.Name)
		}
	}
}
