// Package registry is the single catalog of every LCA this library
// implements. Each algorithm package self-registers a Descriptor at init
// time — name, query kind, tunable parameters, a constructor from
// (oracle, seed, params), and optional invariant checkers — and every
// downstream surface (the Session facade, the HTTP server, lcabench,
// lcaverify, the estimators) dispatches through the catalog instead of
// hand-routing constructors. Adding a registry entry makes the algorithm
// appear on all of them with no further edits: the model's point is that
// any registered algorithm answers independent point queries through one
// oracle interface, so one descriptor is all the plumbing an algorithm
// needs.
package registry

import (
	"fmt"
	"sort"
	"strconv"
	"sync"

	"lca/internal/core"
	"lca/internal/graph"
	"lca/internal/oracle"
	"lca/internal/rnd"
)

// Kind is the query shape an algorithm answers.
type Kind string

// The three query kinds of the LCA model.
const (
	// KindEdge algorithms answer QueryEdge(u, v) bool — membership of an
	// input edge in a fixed subgraph (spanners, matchings).
	KindEdge Kind = "edge"
	// KindVertex algorithms answer QueryVertex(v) bool — membership of a
	// vertex in a fixed set (MIS, vertex cover).
	KindVertex Kind = "vertex"
	// KindLabel algorithms answer QueryLabel(v) int — a vertex's value in
	// a fixed labeling (colorings).
	KindLabel Kind = "label"
)

func (k Kind) valid() bool {
	return k == KindEdge || k == KindVertex || k == KindLabel
}

// ParamType is the value type of a tunable parameter.
type ParamType string

// Supported parameter types.
const (
	TypeInt   ParamType = "int"
	TypeFloat ParamType = "float"
	TypeBool  ParamType = "bool"
)

// Param declares one tunable parameter of an algorithm.
type Param struct {
	// Name is the key under which values are passed (lower-case).
	Name string `json:"name"`
	// Type constrains the values accepted for this parameter.
	Type ParamType `json:"type"`
	// Default is the value used when the caller supplies none. Its dynamic
	// type must match Type (int, float64 or bool).
	Default any `json:"default"`
	// Help is a one-line description surfaced by /algos and -list.
	Help string `json:"help"`
}

// Params carries parameter values by name. Values must be int, float64 or
// bool; Resolve validates them against a descriptor's declarations.
type Params map[string]any

// Int returns the int value of a resolved parameter.
func (p Params) Int(name string) int { v, _ := p[name].(int); return v }

// Float returns the float64 value of a resolved parameter.
func (p Params) Float(name string) float64 { v, _ := p[name].(float64); return v }

// Bool returns the bool value of a resolved parameter.
func (p Params) Bool(name string) bool { v, _ := p[name].(bool); return v }

// Descriptor is one algorithm's registry entry.
type Descriptor struct {
	// Name is the canonical lookup key (lower-case, stable across PRs).
	Name string
	// Aliases are alternative lookup keys kept for CLI compatibility.
	Aliases []string
	// Kind is the query shape; it determines which interface the
	// constructed instance must satisfy and which harness applies.
	Kind Kind
	// Summary is a one-line human description.
	Summary string
	// Params declares the tunable parameters accepted by New.
	Params []Param
	// New constructs an instance over the oracle. p has been resolved:
	// every declared parameter is present with its declared type. The
	// returned instance must implement the query interface of Kind.
	New func(o oracle.Oracle, seed rnd.Seed, p Params) (any, error)

	// Optional invariant checkers consumed by lcaverify. Each validates a
	// materialized global solution against the input graph; nil means the
	// algorithm ships no checker. Only the hook matching Kind is used.
	CheckSubgraph  func(g, h *graph.Graph, seed rnd.Seed) error
	CheckVertexSet func(g *graph.Graph, in []bool) error
	CheckLabels    func(g *graph.Graph, labels []int) error

	// ReportSubgraph, when set on an edge-kind algorithm, returns extra
	// human-readable metrics about a materialized solution that the
	// checkers measure but do not pass/fail (for example the exact stretch
	// of a spanner whose bound depends on a parameter). lcaverify prints
	// it alongside the invariant verdict.
	ReportSubgraph func(g, h *graph.Graph) string
}

// param returns the declaration for name, if any.
func (d *Descriptor) param(name string) (Param, bool) {
	for _, p := range d.Params {
		if p.Name == name {
			return p, true
		}
	}
	return Param{}, false
}

// HasParam reports whether the descriptor declares the named parameter.
func (d *Descriptor) HasParam(name string) bool { _, ok := d.param(name); return ok }

// Resolve validates p against the declared parameters and returns a
// complete parameter map: every declared parameter present, defaults
// filled in. Unknown names and mismatched types are errors. Ints are
// accepted for float parameters.
func (d *Descriptor) Resolve(p Params) (Params, error) {
	out := make(Params, len(d.Params))
	for _, spec := range d.Params {
		out[spec.Name] = spec.Default
	}
	for name, v := range p {
		spec, ok := d.param(name)
		if !ok {
			return nil, fmt.Errorf("algorithm %q: unknown parameter %q", d.Name, name)
		}
		cv, err := coerce(spec, v)
		if err != nil {
			return nil, fmt.Errorf("algorithm %q: %v", d.Name, err)
		}
		out[name] = cv
	}
	return out, nil
}

func coerce(spec Param, v any) (any, error) {
	switch spec.Type {
	case TypeInt:
		if i, ok := v.(int); ok {
			return i, nil
		}
	case TypeFloat:
		switch x := v.(type) {
		case float64:
			return x, nil
		case int:
			return float64(x), nil
		}
	case TypeBool:
		if b, ok := v.(bool); ok {
			return b, nil
		}
	}
	return nil, fmt.Errorf("parameter %q: want %s, got %T", spec.Name, spec.Type, v)
}

// ParseValue parses a string form of the named parameter per its declared
// type — the entry point for HTTP query strings and CLI flags.
func (d *Descriptor) ParseValue(name, raw string) (any, error) {
	spec, ok := d.param(name)
	if !ok {
		return nil, fmt.Errorf("algorithm %q: unknown parameter %q", d.Name, name)
	}
	switch spec.Type {
	case TypeInt:
		v, err := strconv.Atoi(raw)
		if err != nil {
			return nil, fmt.Errorf("parameter %q: %q is not an int", name, raw)
		}
		return v, nil
	case TypeFloat:
		v, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			return nil, fmt.Errorf("parameter %q: %q is not a float", name, raw)
		}
		return v, nil
	case TypeBool:
		v, err := strconv.ParseBool(raw)
		if err != nil {
			return nil, fmt.Errorf("parameter %q: %q is not a bool", name, raw)
		}
		return v, nil
	}
	return nil, fmt.Errorf("parameter %q: unsupported type %q", name, spec.Type)
}

// WithMemoDefault returns p with memoization enabled when the algorithm
// supports it and the caller did not choose explicitly — the right default
// for batch consumers (estimators, full-solution audits) that issue many
// queries against one instance. p is not modified.
func (d *Descriptor) WithMemoDefault(p Params) Params {
	if !d.HasParam("memo") {
		return p
	}
	if _, set := p["memo"]; set {
		return p
	}
	out := make(Params, len(p)+1)
	for k, v := range p {
		out[k] = v
	}
	out["memo"] = true
	return out
}

// BadInstanceError reports a registration bug: a descriptor's New returned
// an instance that does not implement the query interface of its declared
// Kind. Unlike parameter errors, it is never the caller's fault; servers
// should map it to an internal error, not a client error.
type BadInstanceError struct {
	Algo string
	Kind Kind
	// Instance is the offending instance's dynamic type.
	Instance string
}

// Error implements the error interface.
func (e *BadInstanceError) Error() string {
	return fmt.Sprintf("registry: algorithm %q: instance %s does not answer %s queries (registration bug)",
		e.Algo, e.Instance, e.Kind)
}

// Build resolves params, constructs an instance and checks that it
// satisfies the query interface of the descriptor's Kind.
func (d *Descriptor) Build(o oracle.Oracle, seed rnd.Seed, p Params) (any, error) {
	rp, err := d.Resolve(p)
	if err != nil {
		return nil, err
	}
	inst, err := d.New(o, seed, rp)
	if err != nil {
		return nil, fmt.Errorf("algorithm %q: %v", d.Name, err)
	}
	var ok bool
	switch d.Kind {
	case KindEdge:
		_, ok = inst.(core.EdgeLCA)
	case KindVertex:
		_, ok = inst.(core.VertexLCA)
	case KindLabel:
		_, ok = inst.(core.LabelLCA)
	}
	if !ok {
		return nil, &BadInstanceError{Algo: d.Name, Kind: d.Kind, Instance: fmt.Sprintf("%T", inst)}
	}
	return inst, nil
}

var (
	mu      sync.RWMutex
	byName  = map[string]*Descriptor{}
	byAlias = map[string]string{}
)

// Register adds a descriptor to the catalog. It panics on duplicate names
// or malformed descriptors: registration happens at init time and a broken
// entry is a programming error, not a runtime condition.
func Register(d Descriptor) {
	if d.Name == "" || !d.Kind.valid() || d.New == nil {
		panic(fmt.Sprintf("registry: malformed descriptor %+v", d))
	}
	for _, spec := range d.Params {
		if _, err := coerce(spec, spec.Default); err != nil {
			panic(fmt.Sprintf("registry: %s: default of %v", d.Name, err))
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if _, dup := byName[d.Name]; dup {
		panic("registry: duplicate algorithm " + d.Name)
	}
	if _, dup := byAlias[d.Name]; dup {
		panic("registry: name collides with alias " + d.Name)
	}
	for _, a := range d.Aliases {
		if _, dup := byAlias[a]; dup {
			panic("registry: duplicate alias " + a)
		}
		if _, dup := byName[a]; dup {
			panic("registry: alias collides with name " + a)
		}
	}
	dd := d
	byName[d.Name] = &dd
	for _, a := range d.Aliases {
		byAlias[a] = d.Name
	}
}

// Get returns the descriptor registered under name or one of its aliases.
func Get(name string) (*Descriptor, error) {
	mu.RLock()
	defer mu.RUnlock()
	if d, ok := byName[name]; ok {
		return d, nil
	}
	if canon, ok := byAlias[name]; ok {
		return byName[canon], nil
	}
	return nil, fmt.Errorf("registry: unknown algorithm %q (known: %v)", name, namesLocked())
}

// Names returns the canonical algorithm names, sorted.
func Names() []string {
	mu.RLock()
	defer mu.RUnlock()
	return namesLocked()
}

func namesLocked() []string {
	out := make([]string, 0, len(byName))
	for n := range byName {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// All returns every registered descriptor, sorted by name.
func All() []*Descriptor {
	mu.RLock()
	defer mu.RUnlock()
	out := make([]*Descriptor, 0, len(byName))
	for _, d := range byName {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// BuildEdge constructs the named edge-kind algorithm.
func BuildEdge(name string, o oracle.Oracle, seed rnd.Seed, p Params) (core.EdgeLCA, error) {
	inst, err := buildKind(name, KindEdge, o, seed, p)
	if err != nil {
		return nil, err
	}
	return inst.(core.EdgeLCA), nil
}

// BuildVertex constructs the named vertex-kind algorithm.
func BuildVertex(name string, o oracle.Oracle, seed rnd.Seed, p Params) (core.VertexLCA, error) {
	inst, err := buildKind(name, KindVertex, o, seed, p)
	if err != nil {
		return nil, err
	}
	return inst.(core.VertexLCA), nil
}

// BuildLabel constructs the named label-kind algorithm.
func BuildLabel(name string, o oracle.Oracle, seed rnd.Seed, p Params) (core.LabelLCA, error) {
	inst, err := buildKind(name, KindLabel, o, seed, p)
	if err != nil {
		return nil, err
	}
	return inst.(core.LabelLCA), nil
}

func buildKind(name string, kind Kind, o oracle.Oracle, seed rnd.Seed, p Params) (any, error) {
	d, err := Get(name)
	if err != nil {
		return nil, err
	}
	if d.Kind != kind {
		return nil, fmt.Errorf("registry: algorithm %q answers %s queries, not %s", d.Name, d.Kind, kind)
	}
	return d.Build(o, seed, p)
}

// Build constructs the named algorithm of any kind.
func Build(name string, o oracle.Oracle, seed rnd.Seed, p Params) (any, error) {
	d, err := Get(name)
	if err != nil {
		return nil, err
	}
	return d.Build(o, seed, p)
}
