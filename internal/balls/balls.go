// Package balls implements the load-balancing LCA from the original LCA
// papers (Rubinfeld-Tamir-Vardi-Xie 2011, Alon et al. 2012): n balls
// arrive in random order and each is placed greedily into the least loaded
// of its d hash-chosen bins. The LCA answers "which bin holds ball b?"
// without simulating the whole process: a ball's placement depends only on
// the placements of earlier balls sharing one of its candidate bins, so
// the query recurses over a (w.h.p. shallow) dependency tree — the same
// random-order-greedy principle as the MIS and matching LCAs, on a
// bipartite structure.
//
// The d >= 2 case exhibits the "power of two choices": max load drops from
// Theta(log n / log log n) to log log n / log d + O(1). Experiment E13
// measures exactly that gap through the LCA.
package balls

import (
	"sort"

	"lca/internal/rnd"
)

// Oracle is the probe interface over the balls-and-bins choice structure:
// the forward map (a ball's candidate bins) and the reverse index (a bin's
// candidate balls). Both directions are probes, mirroring Neighbor probes
// on the bipartite choice graph.
type Oracle interface {
	// Balls returns the number of balls.
	Balls() int
	// Bins returns the number of bins.
	Bins() int
	// Choices returns ball b's candidate bins (length d, fixed order).
	Choices(b int) []int
	// Candidates returns the balls that have the bin among their choices.
	Candidates(bin int) []int
}

// Prefetcher is the optional exploration capability of a choice oracle,
// mirroring the graph oracles' Prefetch hint: the caller is about to read
// the candidate rows of the listed bins, so a remote backend can fetch
// them in one round trip. Hints never change answers or probe counts; the
// Assignment LCA issues them before each recursion fan-out.
type Prefetcher interface {
	PrefetchCandidates(bins ...int)
}

// ChoiceTable is a concrete materialized choice structure.
type ChoiceTable struct {
	choices    [][]int
	candidates [][]int
	probes     uint64
}

var _ Oracle = (*ChoiceTable)(nil)

// NewChoiceTable samples a choice structure: each of n balls draws d bins
// (with replacement, deduplicated) uniformly from m bins.
func NewChoiceTable(n, m, d int, seed rnd.Seed) *ChoiceTable {
	prg := rnd.NewPRG(seed.Derive(0xba))
	t := &ChoiceTable{
		choices:    make([][]int, n),
		candidates: make([][]int, m),
	}
	for b := 0; b < n; b++ {
		seen := make(map[int]bool, d)
		for j := 0; j < d; j++ {
			bin := prg.Intn(m)
			if seen[bin] {
				continue
			}
			seen[bin] = true
			t.choices[b] = append(t.choices[b], bin)
			t.candidates[bin] = append(t.candidates[bin], b)
		}
	}
	return t
}

// Balls implements Oracle.
func (t *ChoiceTable) Balls() int { return len(t.choices) }

// Bins implements Oracle.
func (t *ChoiceTable) Bins() int { return len(t.candidates) }

// Choices implements Oracle (counted as one probe).
func (t *ChoiceTable) Choices(b int) []int {
	t.probes++
	return t.choices[b]
}

// Candidates implements Oracle (counted as one probe).
func (t *ChoiceTable) Candidates(bin int) []int {
	t.probes++
	return t.candidates[bin]
}

// Probes returns the probe count so far.
func (t *ChoiceTable) Probes() uint64 { return t.probes }

// PrefetchCandidates implements Prefetcher as a no-op: the rows are
// already resident, so the hint is free — it exists so harnesses can
// exercise the exploration path against the in-memory table.
func (t *ChoiceTable) PrefetchCandidates(bins ...int) {}

// Assignment is the LCA answering placement queries consistently with the
// greedy d-choice process under a hash-random arrival order. Construct
// with New; not safe for concurrent use.
type Assignment struct {
	o    Oracle
	fam  *rnd.Family
	memo map[int]int
}

// New returns a placement LCA over o; answers depend only on (o, seed).
func New(o Oracle, seed rnd.Seed) *Assignment {
	return &Assignment{
		o:    o,
		fam:  rnd.NewFamily(seed.Derive(0xbb), 16),
		memo: make(map[int]int),
	}
}

// Before reports whether ball a arrives before ball b (hash priority,
// ID tie-break).
func (a *Assignment) Before(x, y int) bool {
	hx, hy := a.fam.Hash(uint64(x)), a.fam.Hash(uint64(y))
	if hx != hy {
		return hx < hy
	}
	return x < y
}

// QueryBall returns the bin ball b lands in: the least loaded of its
// choices at its arrival time, ties to the lowest bin ID. Returns -1 for a
// ball with no choices.
func (a *Assignment) QueryBall(b int) int {
	if bin, ok := a.memo[b]; ok {
		return bin
	}
	choices := a.o.Choices(b)
	if len(choices) == 0 {
		a.memo[b] = -1
		return -1
	}
	// The load computation below reads every choice's candidate row; hint
	// them as one exploration for backends that can batch.
	if p, ok := a.o.(Prefetcher); ok {
		p.PrefetchCandidates(choices...)
	}
	bestBin, bestLoad := -1, 0
	for _, bin := range choices {
		load := 0
		for _, other := range a.o.Candidates(bin) {
			if other != b && a.Before(other, b) && a.QueryBall(other) == bin {
				load++
			}
		}
		if bestBin < 0 || load < bestLoad || (load == bestLoad && bin < bestBin) {
			bestBin, bestLoad = bin, load
		}
	}
	a.memo[b] = bestBin
	return bestBin
}

// LoadOf returns the final load of a bin by querying all its candidates.
func (a *Assignment) LoadOf(bin int) int {
	load := 0
	for _, b := range a.o.Candidates(bin) {
		if a.QueryBall(b) == bin {
			load++
		}
	}
	return load
}

// RunGlobal simulates the greedy process sequentially under the same
// arrival order and returns every ball's bin — the reference the LCA must
// match exactly.
func (a *Assignment) RunGlobal() []int {
	n := a.o.Balls()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool { return a.Before(order[i], order[j]) })
	loads := make([]int, a.o.Bins())
	out := make([]int, n)
	for _, b := range order {
		choices := a.o.Choices(b)
		if len(choices) == 0 {
			out[b] = -1
			continue
		}
		best := -1
		for _, bin := range choices {
			if best < 0 || loads[bin] < loads[best] || (loads[bin] == loads[best] && bin < best) {
				best = bin
			}
		}
		loads[best]++
		out[b] = best
	}
	return out
}
