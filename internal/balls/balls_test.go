package balls

import (
	"testing"

	"lca/internal/rnd"
)

func TestAssignmentMatchesGlobal(t *testing.T) {
	for _, tc := range []struct{ n, m, d int }{
		{100, 100, 1}, {100, 100, 2}, {500, 200, 3}, {50, 10, 2},
	} {
		for seed := rnd.Seed(0); seed < 3; seed++ {
			table := NewChoiceTable(tc.n, tc.m, tc.d, seed)
			a := New(table, seed.Derive(9))
			global := a.RunGlobal()
			// Fresh instance so memoization from RunGlobal's Before calls
			// cannot mask anything.
			b := New(table, seed.Derive(9))
			for ball := 0; ball < tc.n; ball++ {
				if got := b.QueryBall(ball); got != global[ball] {
					t.Fatalf("n=%d m=%d d=%d seed=%d: ball %d local=%d global=%d",
						tc.n, tc.m, tc.d, seed, ball, got, global[ball])
				}
			}
		}
	}
}

func TestAssignmentPlacesIntoChoices(t *testing.T) {
	table := NewChoiceTable(300, 100, 2, 5)
	a := New(table, 7)
	for b := 0; b < table.Balls(); b++ {
		bin := a.QueryBall(b)
		found := false
		for _, c := range table.choices[b] {
			if c == bin {
				found = true
			}
		}
		if !found {
			t.Fatalf("ball %d placed in %d, not among its choices %v", b, bin, table.choices[b])
		}
	}
}

func TestLoadsSumToBalls(t *testing.T) {
	table := NewChoiceTable(400, 150, 2, 11)
	a := New(table, 3)
	total := 0
	for bin := 0; bin < table.Bins(); bin++ {
		total += a.LoadOf(bin)
	}
	if total != table.Balls() {
		t.Fatalf("loads sum to %d, want %d", total, table.Balls())
	}
}

func TestPowerOfTwoChoices(t *testing.T) {
	// The classic effect: with n balls into n bins, two choices push the
	// max load far below one choice. Averaged over seeds to kill variance.
	const n = 2000
	maxLoad := func(d int) float64 {
		total := 0
		const runs = 5
		for seed := rnd.Seed(0); seed < runs; seed++ {
			table := NewChoiceTable(n, n, d, seed)
			a := New(table, seed.Derive(1))
			worst := 0
			for bin := 0; bin < table.Bins(); bin++ {
				if l := a.LoadOf(bin); l > worst {
					worst = l
				}
			}
			total += worst
		}
		return float64(total) / runs
	}
	one, two := maxLoad(1), maxLoad(2)
	t.Logf("mean max load over seeds: d=1: %.1f, d=2: %.1f", one, two)
	if two >= one {
		t.Errorf("two choices (%f) did not beat one choice (%f)", two, one)
	}
	if two > 5 {
		t.Errorf("d=2 max load %f implausibly high for n=%d", two, n)
	}
}

func TestAssignmentDeterministic(t *testing.T) {
	table := NewChoiceTable(200, 80, 2, 1)
	a := New(table, 42)
	b := New(table, 42)
	for ball := 0; ball < table.Balls(); ball++ {
		if a.QueryBall(ball) != b.QueryBall(ball) {
			t.Fatalf("instances disagree on ball %d", ball)
		}
	}
	c := New(table, 43)
	diff := 0
	for ball := 0; ball < table.Balls(); ball++ {
		if a.QueryBall(ball) != c.QueryBall(ball) {
			diff++
		}
	}
	if diff == 0 {
		t.Log("note: different seeds produced identical assignments (possible)")
	}
}

func TestChoiceTableShape(t *testing.T) {
	table := NewChoiceTable(100, 40, 3, 9)
	if table.Balls() != 100 || table.Bins() != 40 {
		t.Fatalf("dims %d/%d", table.Balls(), table.Bins())
	}
	// Candidates must be the exact inverse of choices.
	for b := 0; b < table.Balls(); b++ {
		for _, bin := range table.choices[b] {
			found := false
			for _, cand := range table.candidates[bin] {
				if cand == b {
					found = true
				}
			}
			if !found {
				t.Fatalf("reverse index missing ball %d in bin %d", b, bin)
			}
		}
		if len(table.choices[b]) == 0 || len(table.choices[b]) > 3 {
			t.Fatalf("ball %d has %d choices", b, len(table.choices[b]))
		}
	}
	if table.Probes() != 0 {
		t.Fatal("construction must not count probes")
	}
	table.Choices(0)
	table.Candidates(0)
	if table.Probes() != 2 {
		t.Fatalf("probe count %d, want 2", table.Probes())
	}
}
