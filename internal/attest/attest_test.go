package attest

import (
	"fmt"
	"testing"
)

// ringRow is the adjacency row of vertex v on an n-cycle, matching
// source.Ring's ordering.
func ringRow(n int) func(v int) []int {
	return func(v int) []int {
		if n == 1 {
			return nil
		}
		if n == 2 {
			return []int{1 - v}
		}
		return []int{(v + n - 1) % n, (v + 1) % n}
	}
}

func TestDeriveDeterministicAndLabelled(t *testing.T) {
	if Derive(7, "a") != Derive(7, "a") {
		t.Fatal("Derive is not deterministic")
	}
	if Derive(7, "a") == Derive(7, "b") {
		t.Fatal("Derive ignores the label")
	}
	if Derive(7, "a") == Derive(8, "a") {
		t.Fatal("Derive ignores the base")
	}
}

func TestTreeRootsDeterministicAndSized(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 64, 65, 257} {
		a := Build(n, ringRow(n))
		b := Build(n, ringRow(n))
		if a.Root() != b.Root() {
			t.Fatalf("n=%d: equal graphs committed to different roots", n)
		}
		if a.Root().IsZero() {
			t.Fatalf("n=%d: zero root", n)
		}
	}
	if Build(5, ringRow(5)).Root() == Build(6, ringRow(6)).Root() {
		t.Fatal("different graphs share a root")
	}
}

func TestProveVerifyRoundTrip(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 64, 100} {
		tree := Build(n, ringRow(n))
		row := ringRow(n)
		for v := 0; v < n; v++ {
			proof := tree.Prove(v)
			if err := VerifyRow(tree.Root(), n, v, row(v), proof); err != nil {
				t.Fatalf("n=%d v=%d: honest proof rejected: %v", n, v, err)
			}
		}
	}
}

func TestVerifyRejectsTampering(t *testing.T) {
	const n = 100
	tree := Build(n, ringRow(n))
	root := tree.Root()
	row := ringRow(n)

	// A flipped neighbor.
	bad := append([]int(nil), row(10)...)
	bad[0]++
	if err := VerifyRow(root, n, 10, bad, tree.Prove(10)); err == nil {
		t.Fatal("flipped neighbor verified")
	}
	// A truncated row.
	if err := VerifyRow(root, n, 10, row(10)[:1], tree.Prove(10)); err == nil {
		t.Fatal("truncated row verified")
	}
	// A proof replayed for the wrong vertex.
	if err := VerifyRow(root, n, 11, row(11), tree.Prove(10)); err == nil {
		t.Fatal("wrong-vertex proof verified")
	}
	// A root from a different graph.
	other := Build(n, func(v int) []int { r := row(v); r = append([]int(nil), r...); r[0] = (r[0] + 2) % n; return r })
	if err := VerifyRow(other.Root(), n, 10, row(10), tree.Prove(10)); err == nil {
		t.Fatal("proof verified against a foreign root")
	}
	// Malformed proof elements.
	if err := VerifyRow(root, n, 10, row(10), []string{"Xdeadbeef"}); err == nil {
		t.Fatal("malformed proof verified")
	}
}

func TestRootParseRoundTrip(t *testing.T) {
	tree := Build(9, ringRow(9))
	r, err := ParseRoot(tree.Root().String())
	if err != nil {
		t.Fatal(err)
	}
	if r != tree.Root() {
		t.Fatal("hex round trip changed the root")
	}
	if _, err := ParseRoot("zz"); err == nil {
		t.Fatal("bad hex parsed")
	}
}

func TestChainSignVerifyAndTamper(t *testing.T) {
	lines := [][]byte{[]byte(`{"q":1}`), []byte(`{"q":2}`), []byte(`{"q":3}`)}
	signer := NewChain("k")
	sigs := make([]string, len(lines))
	for i, l := range lines {
		sigs[i] = signer.Sign(l)
	}
	ver := NewChain("k")
	for i, l := range lines {
		if err := ver.Verify(l, sigs[i]); err != nil {
			t.Fatalf("line %d: honest chain rejected: %v", i, err)
		}
	}
	// Tampered payload.
	ver = NewChain("k")
	if err := ver.Verify([]byte(`{"q":9}`), sigs[0]); err == nil {
		t.Fatal("tampered payload verified")
	}
	// Reordered lines.
	ver = NewChain("k")
	if err := ver.Verify(lines[1], sigs[1]); err == nil {
		t.Fatal("skipped line verified (chain does not bind position)")
	}
	// Wrong key.
	ver = NewChain("other")
	if err := ver.Verify(lines[0], sigs[0]); err == nil {
		t.Fatal("foreign key verified")
	}
}

func TestAuditReplicasFindsCorruption(t *testing.T) {
	const n = 200
	honest := func(v int) ([]int, error) { return ringRow(n)(v), nil }
	liar := func(v int) ([]int, error) {
		r := append([]int(nil), ringRow(n)(v)...)
		r[0] = (r[0] + 1) % n
		return r, nil
	}
	down := func(v int) ([]int, error) { return nil, fmt.Errorf("unreachable") }

	if d := AuditReplicas(n, 16, 7, []func(int) ([]int, error){honest, honest}); len(d) != 0 {
		t.Fatalf("healthy replicas disagreed: %v", d)
	}
	d := AuditReplicas(n, 16, 7, []func(int) ([]int, error){honest, liar})
	if len(d) == 0 {
		t.Fatal("corrupted replica escaped a 16-vertex audit")
	}
	if d[0].Replica != 1 {
		t.Fatalf("disagreement blamed replica %d, want 1", d[0].Replica)
	}
	// A down replica is a health problem, not a finding.
	if d := AuditReplicas(n, 16, 7, []func(int) ([]int, error){honest, down}); len(d) != 0 {
		t.Fatalf("unreachable replica reported as corrupt: %v", d)
	}
	// Equal seeds sample equal vertices.
	a := SampleVertices(n, 8, 42)
	b := SampleVertices(n, 8, 42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("audit sample is not seed-deterministic")
		}
	}
}
