// Package attest is the trust plane of the probe protocol: constant-size
// graph commitments with per-row inclusion proofs, an HMAC-chained
// append-only log signer, and a cross-replica spot-check auditor.
//
// The LCA model makes verification cheap. A query costs polylog probes,
// so attesting every probe answer costs polylog proof bytes per query;
// and the verifier needs only o(n) state — a single 32-byte Merkle root,
// never a copy of the graph. A client that pins a root can detect a
// lying or corrupted shard on the very probe that lies, because every
// answer is checkable against the committed adjacency rows.
//
// The commitment is a Merkle tree over canonical adjacency-row
// encodings, one leaf per vertex, streamed from any Source-shaped row
// function (CSR files included) without materializing the graph. Leaf
// and interior hashes are HMAC-SHA256 under keys derived from the vertex
// count via Derive (the deterministic HMAC key-derivation idiom), so
// implicit generators commit deterministically: equal graphs yield equal
// roots on every replica, and the leaf/node domains cannot be confused.
package attest

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
)

// Derive maps a base value and a label to a new pseudorandom value via
// HMAC-SHA256: the standard labelled-derivation idiom, used here to
// derive the commitment's leaf and node hashing keys from the vertex
// count so the two domains are separated by construction.
func Derive(base uint64, label string) uint64 {
	key := make([]byte, 8)
	binary.LittleEndian.PutUint64(key, base)
	m := hmac.New(sha256.New, key)
	m.Write([]byte(label))
	sum := m.Sum(nil)
	return binary.LittleEndian.Uint64(sum[:8])
}

// Root is the constant-size commitment to a whole graph.
type Root [32]byte

// String renders the root as lowercase hex, the wire and spec form
// (remote:URL#root=HEX).
func (r Root) String() string { return hex.EncodeToString(r[:]) }

// IsZero reports whether the root is the zero value (no commitment).
func (r Root) IsZero() bool { return r == Root{} }

// ParseRoot parses the 64-hex-digit wire form of a root.
func ParseRoot(s string) (Root, error) {
	var r Root
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != len(r) {
		return Root{}, fmt.Errorf("attest: root %q is not %d hex digits", s, 2*len(r))
	}
	copy(r[:], b)
	return r, nil
}

// EncodeRow is the canonical leaf encoding of one adjacency row:
// LE64(v) ‖ LE64(len(row)) ‖ LE64(row[0]) ‖ ... — unambiguous,
// length-prefixed, and identical however the row was transported.
func EncodeRow(v int, row []int) []byte {
	buf := make([]byte, 8*(2+len(row)))
	binary.LittleEndian.PutUint64(buf[0:], uint64(v))
	binary.LittleEndian.PutUint64(buf[8:], uint64(len(row)))
	for i, w := range row {
		binary.LittleEndian.PutUint64(buf[16+8*i:], uint64(w))
	}
	return buf
}

// keyFor derives one 8-byte HMAC key for a hashing domain of an n-vertex
// commitment.
func keyFor(n int, label string) []byte {
	key := make([]byte, 8)
	binary.LittleEndian.PutUint64(key, Derive(uint64(n), label))
	return key
}

func hmacSum(key, data []byte) [32]byte {
	m := hmac.New(sha256.New, key)
	m.Write(data)
	var out [32]byte
	m.Sum(out[:0])
	return out
}

// leafHash hashes one canonical row encoding into its leaf.
func leafHash(leafKey []byte, v int, row []int) [32]byte {
	return hmacSum(leafKey, EncodeRow(v, row))
}

// nodeHash hashes two children into their parent.
func nodeHash(nodeKey []byte, left, right [32]byte) [32]byte {
	var buf [64]byte
	copy(buf[:32], left[:])
	copy(buf[32:], right[:])
	return hmacSum(nodeKey, buf[:])
}

// Tree is the Merkle commitment over an n-vertex graph's adjacency rows.
// It stores every level (about 2n hashes), so proofs are O(log n) array
// reads. Build it once per served graph; it is immutable and safe for
// concurrent use afterwards.
type Tree struct {
	n      int
	levels [][][32]byte // levels[0] = leaves; last level has one node
}

// Build streams every adjacency row out of row (called once per vertex,
// in order) and commits to them. Any Source can supply row via
// Degree/Neighbor probes or a row fetcher; nothing is materialized
// beyond the hash levels.
func Build(n int, row func(v int) []int) *Tree {
	if n < 1 {
		// A zero-vertex commitment still needs a well-defined root: commit
		// to the empty level under the n=0 keys.
		n = 0
	}
	leafKey := keyFor(n, "lca:attest:leaf:v1")
	nodeKey := keyFor(n, "lca:attest:node:v1")
	leaves := make([][32]byte, n)
	for v := 0; v < n; v++ {
		leaves[v] = leafHash(leafKey, v, row(v))
	}
	if n == 0 {
		leaves = [][32]byte{hmacSum(leafKey, nil)}
	}
	levels := [][][32]byte{leaves}
	for len(levels[len(levels)-1]) > 1 {
		cur := levels[len(levels)-1]
		next := make([][32]byte, 0, (len(cur)+1)/2)
		for i := 0; i < len(cur); i += 2 {
			if i+1 == len(cur) {
				// Odd node: promote unchanged. No duplication, so a proof
				// cannot be replayed for a phantom sibling.
				next = append(next, cur[i])
				continue
			}
			next = append(next, nodeHash(nodeKey, cur[i], cur[i+1]))
		}
		levels = append(levels, next)
	}
	return &Tree{n: n, levels: levels}
}

// N returns the committed vertex count.
func (t *Tree) N() int { return t.n }

// Root returns the constant-size commitment.
func (t *Tree) Root() Root { return Root(t.levels[len(t.levels)-1][0]) }

// Prove returns the inclusion proof for vertex v's row: the sibling path
// from leaf to root, each element "L<hex>" or "R<hex>" telling the
// verifier which side the sibling hashes on. O(log n) elements.
func (t *Tree) Prove(v int) []string {
	if v < 0 || v >= t.n {
		return nil
	}
	var proof []string
	idx := v
	for _, level := range t.levels[:len(t.levels)-1] {
		sib := idx ^ 1
		if sib < len(level) {
			if sib < idx {
				proof = append(proof, "L"+hex.EncodeToString(level[sib][:]))
			} else {
				proof = append(proof, "R"+hex.EncodeToString(level[sib][:]))
			}
		}
		idx >>= 1
	}
	return proof
}

// VerifyRow checks a claimed adjacency row of vertex v against a pinned
// root: it recomputes the leaf from the canonical encoding and folds the
// proof path. n must be the committed vertex count (the client learns it
// from /probe/meta). A nil error means the row is exactly the committed
// one.
func VerifyRow(root Root, n, v int, row []int, proof []string) error {
	if v < 0 || v >= n {
		return fmt.Errorf("attest: vertex %d outside committed range [0,%d)", v, n)
	}
	leafKey := keyFor(n, "lca:attest:leaf:v1")
	nodeKey := keyFor(n, "lca:attest:node:v1")
	h := leafHash(leafKey, v, row)
	for _, el := range proof {
		if len(el) != 65 || (el[0] != 'L' && el[0] != 'R') {
			return fmt.Errorf("attest: malformed proof element %q", el)
		}
		sib, err := hex.DecodeString(el[1:])
		if err != nil || len(sib) != 32 {
			return fmt.Errorf("attest: malformed proof element %q", el)
		}
		var s [32]byte
		copy(s[:], sib)
		if el[0] == 'L' {
			h = nodeHash(nodeKey, s, h)
		} else {
			h = nodeHash(nodeKey, h, s)
		}
	}
	if Root(h) != root {
		return fmt.Errorf("attest: row of vertex %d does not match the pinned commitment %s", v, root)
	}
	return nil
}

// ProofBytes returns the wire size of a proof (the sum of its encoded
// elements), the figure the bench reports as proof bytes per query.
func ProofBytes(proof []string) int {
	total := 0
	for _, el := range proof {
		total += len(el)
	}
	return total
}
