package attest

// The auditing half of the trust plane: an HMAC-chained signer for
// append-only JSON Lines audit logs (each record's signature covers the
// previous record's signature, so truncation, reordering and tampering
// all break the chain), and a cross-replica spot-check auditor. Replicas
// of one graph are interchangeable by contract, so sampled row
// disagreement between two replicas is proof of corruption — no
// commitment required, which is what makes the auditor deployable
// against third-party shards that never built a tree.

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
)

// Chain signs (or verifies) an append-only log: each payload's signature
// is HMAC-SHA256(key, prev_sig ‖ payload). The writer and the verifier
// walk the same chain from the same zero state, so any edit to any
// earlier line changes every later signature. Not safe for concurrent
// use; serialize writers.
type Chain struct {
	key  []byte
	prev [32]byte
}

// NewChain returns a chain keyed by secret. An empty secret still yields
// an integrity chain (truncation and reordering detection); a non-empty
// secret adds authenticity against writers who do not know it.
func NewChain(secret string) *Chain {
	return &Chain{key: []byte("lca:audit:v1:" + secret)}
}

// Sign appends payload to the chain and returns its hex signature.
func (c *Chain) Sign(payload []byte) string {
	m := hmac.New(sha256.New, c.key)
	m.Write(c.prev[:])
	m.Write(payload)
	m.Sum(c.prev[:0])
	return hex.EncodeToString(c.prev[:])
}

// Verify checks that sig is the chain's signature for payload at the
// current position and advances the chain. The verifier replays the log
// in order, calling Verify once per line.
func (c *Chain) Verify(payload []byte, sig string) error {
	want := c.Sign(payload)
	if !hmac.Equal([]byte(want), []byte(sig)) {
		return fmt.Errorf("attest: audit chain broken: signature %.16s... does not match recomputed %.16s...", sig, want)
	}
	return nil
}

// Disagreement is one spot-check finding: two replicas answered
// different rows for the same vertex. Because replicas must be
// interchangeable, any disagreement marks at least one of them corrupt.
type Disagreement struct {
	V        int   // the sampled vertex
	Replica  int   // the replica that disagreed with replica 0's row
	Row      []int // what it answered
	Expected []int // what replica 0 answered
}

// SampleVertices derives a deterministic pseudorandom sample of k
// vertices in [0,n) from seed via the Derive chain, so repeated audits
// with equal seeds check equal vertices on every operator's machine.
func SampleVertices(n, k int, seed uint64) []int {
	if n <= 0 || k <= 0 {
		return nil
	}
	out := make([]int, k)
	state := Derive(seed, "lca:attest:audit:v1")
	for i := range out {
		out[i] = int(state % uint64(n))
		state = Derive(state, "lca:attest:audit:step")
	}
	return out
}

// AuditReplicas spot-checks replicas for interchangeability: it samples
// k vertices and fetches each sampled row from every replica's row
// function, reporting every disagreement against replica 0. A row
// function returning an error skips that (vertex, replica) pair — an
// unreachable replica is a health problem, not a corruption finding.
func AuditReplicas(n, k int, seed uint64, rows []func(v int) ([]int, error)) []Disagreement {
	if len(rows) < 2 {
		return nil
	}
	var out []Disagreement
	for _, v := range SampleVertices(n, k, seed) {
		want, err := rows[0](v)
		if err != nil {
			continue
		}
		for r := 1; r < len(rows); r++ {
			got, err := rows[r](v)
			if err != nil {
				continue
			}
			if !equalRows(got, want) {
				out = append(out, Disagreement{V: v, Replica: r, Row: got, Expected: want})
			}
		}
	}
	return out
}

func equalRows(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
