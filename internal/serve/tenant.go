package serve

// The tenant layer: token → tenant resolution from a static config, and
// per-tenant admission control. A tenant's currency is exactly what the
// theory guarantees is small — probes and round trips per query
// (Rubinfeld et al.'s polylog probe bounds are what make a per-query
// probe budget a meaningful contract rather than an arbitrary quota) —
// plus a sustained-QPS token bucket for the request plane. All tenant
// state is O(1) per configured tenant: a bucket level, a timestamp and a
// few counters.
//
// Budgets are enforced per query through the oracle layer's existing
// budget machinery: oracle.NewLimit charges every cell the algorithm
// reads, oracle.NewLimitTrips bounds backend round trips, and either
// exhaustion surfaces as a 429 with the JSON error envelope. The token
// bucket rejects before any oracle work happens, also with a 429.
//
// A server constructed without WithTenants is open (the trusted-network
// default every existing caller keeps); once tenants are configured, the
// query plane requires a token on every request. The probe wire plane
// (/probe*) stays open deliberately: it is fleet-internal — replicas
// probing each other — and its transport security story (TLS + shard
// tokens) is tracked separately in the ROADMAP.

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"lca/internal/metrics"
	"lca/internal/oracle"
	"lca/internal/source"
	"lca/internal/trace"
)

// TokenHeader is the dedicated tenant-token request header. The standard
// "Authorization: Bearer TOKEN" form is accepted equivalently.
const TokenHeader = "X-LCA-Token"

// Tenant is one static tenant configuration entry. Zero-valued budgets
// are unlimited, so {"name": "ops", "token": "..."} is a full-privilege
// tenant.
type Tenant struct {
	// Name identifies the tenant in metrics and logs; never sent back to
	// other tenants.
	Name string `json:"name"`
	// Token authenticates the tenant (Authorization: Bearer or the
	// X-LCA-Token header).
	Token string `json:"token"`
	// ProbeBudget caps cell probes per query (0 = unlimited). Exhaustion
	// answers 429.
	ProbeBudget uint64 `json:"probe_budget,omitempty"`
	// RoundTripBudget caps backend network round trips per query
	// (0 = unlimited; local sources consume none). Exhaustion answers 429.
	RoundTripBudget uint64 `json:"round_trip_budget,omitempty"`
	// QPS is the sustained admission rate of the token bucket
	// (0 = unlimited).
	QPS float64 `json:"qps,omitempty"`
	// Burst is the bucket size; defaults to max(1, QPS).
	Burst float64 `json:"burst,omitempty"`
}

// LoadTenantsFile reads a JSON array of Tenant entries — the static
// config format of lcaserve's -tenants flag.
func LoadTenantsFile(path string) ([]Tenant, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("tenants config: %w", err)
	}
	var ts []Tenant
	if err := json.Unmarshal(b, &ts); err != nil {
		return nil, fmt.Errorf("tenants config %s: %w", path, err)
	}
	return ts, nil
}

// tenantState is one tenant's runtime state: the token bucket plus its
// metric handles.
type tenantState struct {
	Tenant

	mu     sync.Mutex
	tokens float64
	filled time.Time

	queries           *metrics.Counter
	admissionRejected *metrics.Counter
	budgetRejected    *metrics.Counter
}

// admit runs the token bucket: one request costs one token, tokens
// refill at QPS up to Burst. A nil state (open server) and a QPS-less
// tenant always admit.
func (t *tenantState) admit(now time.Time) bool {
	if t == nil || t.QPS <= 0 {
		return true
	}
	burst := t.Burst
	if burst < 1 {
		burst = math.Max(1, t.QPS)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.filled.IsZero() {
		t.tokens = burst
	} else {
		t.tokens = math.Min(burst, t.tokens+now.Sub(t.filled).Seconds()*t.QPS)
	}
	t.filled = now
	if t.tokens < 1 {
		return false
	}
	t.tokens--
	return true
}

// budgetWrap applies the tenant's per-query budgets to a freshly built
// oracle chain; a nil state (open server) leaves the chain unchanged.
func (t *tenantState) budgetWrap(o oracle.Oracle) oracle.Oracle {
	return t.budgetWrapTraced(o, nil)
}

// budgetWrapTraced is budgetWrap with the execution's tracer attached
// to each budget wrapper, so an exhaustion marks the exact probe in the
// query's span tree. A nil tracer (untraced execution) leaves the
// wrappers silent.
func (t *tenantState) budgetWrapTraced(o oracle.Oracle, tr *trace.Tracer) oracle.Oracle {
	if t == nil {
		return o
	}
	if t.ProbeBudget > 0 {
		lo := oracle.NewLimit(o, t.ProbeBudget)
		lo.SetTracer(tr)
		o = lo
	}
	if t.RoundTripBudget > 0 {
		lt := oracle.NewLimitTrips(o, t.RoundTripBudget)
		if ts, ok := lt.(source.TracerSetter); ok {
			ts.SetTracer(tr)
		}
		o = lt
	}
	return o
}

// budgetKey folds the tenant's per-query enforcement into a coalescing
// key: only requests running under identical budgets may share one
// oracle execution, so a capped tenant can never receive an answer its
// own budget would have refused (nor vice versa).
func (t *tenantState) budgetKey() string {
	if t == nil {
		return "open"
	}
	return fmt.Sprintf("pb=%d,rb=%d", t.ProbeBudget, t.RoundTripBudget)
}

// WithTenants configures the static tenant table and closes the query
// plane: every /edge, /vertex, /label, /estimate, /graph and
// POST /sources request must then carry a configured token. Panics on an
// invalid table (construction-time config, not request data).
func WithTenants(tenants ...Tenant) Option {
	return func(s *Server) {
		if s.tenants == nil {
			s.tenants = map[string]*tenantState{}
		}
		for _, t := range tenants {
			if t.Name == "" || t.Token == "" {
				panic(fmt.Sprintf("serve: tenant %+v needs a non-empty name and token", t))
			}
			if _, dup := s.tenants[t.Token]; dup {
				panic(fmt.Sprintf("serve: duplicate tenant token for %q", t.Name))
			}
			s.tenants[t.Token] = &tenantState{Tenant: t}
		}
	}
}

// bindTenantMetrics resolves each tenant's metric handles once the
// server's registry exists (construction order: options run before the
// registry is final).
func (s *Server) bindTenantMetrics() {
	for _, t := range s.tenants {
		t.queries = s.met.reg.Counter(fmt.Sprintf("tenant_queries_total{tenant=%s}", t.Name))
		t.admissionRejected = s.met.reg.Counter(fmt.Sprintf("tenant_admission_rejected_total{tenant=%s}", t.Name))
		t.budgetRejected = s.met.reg.Counter(fmt.Sprintf("tenant_budget_rejected_total{tenant=%s}", t.Name))
	}
}

// requestToken extracts the tenant token: "Authorization: Bearer TOKEN"
// first, the X-LCA-Token header second.
func requestToken(r *http.Request) string {
	if auth := r.Header.Get("Authorization"); auth != "" {
		if tok, ok := strings.CutPrefix(auth, "Bearer "); ok {
			return strings.TrimSpace(tok)
		}
	}
	return strings.TrimSpace(r.Header.Get(TokenHeader))
}

// tenantFor authenticates the request against the tenant table. An open
// server (no tenants configured) admits everyone as the nil tenant.
func (s *Server) tenantFor(r *http.Request) (*tenantState, error) {
	if len(s.tenants) == 0 {
		return nil, nil
	}
	tok := requestToken(r)
	if tok == "" {
		return nil, &httpError{status: http.StatusUnauthorized,
			msg: "missing tenant token (send Authorization: Bearer TOKEN or the " + TokenHeader + " header)"}
	}
	t, ok := s.tenants[tok]
	if !ok {
		return nil, &httpError{status: http.StatusUnauthorized, msg: "unknown tenant token"}
	}
	return t, nil
}

// admitTenant authenticates and runs admission control; the returned
// error is ready for the envelope writer (401 on auth, 429 with
// Retry-After on an empty bucket).
func (s *Server) admitTenant(w http.ResponseWriter, r *http.Request) (*tenantState, error) {
	t, err := s.tenantFor(r)
	if err != nil {
		return nil, err
	}
	if !t.admit(time.Now()) {
		t.admissionRejected.Inc()
		w.Header().Set("Retry-After", "1")
		return nil, &httpError{status: http.StatusTooManyRequests,
			msg: fmt.Sprintf("tenant %q over its admission rate (%.3g qps); retry with backoff", t.Name, t.QPS)}
	}
	if t != nil {
		t.queries.Inc()
	}
	return t, nil
}
