package serve

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"lca/internal/attest"
	"lca/internal/source"
)

// auditServer builds a server over src with an audit log attached and
// returns the test server plus the log buffer.
func auditServer(t *testing.T, src source.Source, spec, secret string) (*httptest.Server, *bytes.Buffer) {
	t.Helper()
	var buf bytes.Buffer
	srv := NewFromSource(src, spec, 42, WithAuditLog(&buf, secret))
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, &buf
}

// driveAuditQueries runs one edge, one vertex and one label query and
// returns the three answers' raw JSON.
func driveAuditQueries(t *testing.T, ts *httptest.Server) []string {
	t.Helper()
	var out []string
	for _, path := range []string{
		"/edge/spanner3?u=3&v=4",
		"/vertex/mis?v=7",
		"/label/coloring?v=9",
	} {
		var raw json.RawMessage
		if code := getJSON(t, ts.URL+path, &raw); code != 200 {
			t.Fatalf("GET %s: status %d: %s", path, code, raw)
		}
		out = append(out, string(raw))
	}
	return out
}

// TestAuditLogReplay drives queries through an audited server and
// replays the log offline: every record must chain-verify and re-execute
// to the logged answer with no source behind it.
func TestAuditLogReplay(t *testing.T) {
	ts, buf := auditServer(t, source.Ring(60), "ring:n=60", "audit-secret")
	driveAuditQueries(t, ts)

	rep, err := ReplayAuditLog(bytes.NewReader(buf.Bytes()), "audit-secret")
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if rep.Records != 3 {
		t.Fatalf("replayed %d records, want 3", rep.Records)
	}

	var met struct {
		Counters map[string]uint64 `json:"counters"`
	}
	if code := getJSON(t, ts.URL+"/metrics", &met); code != 200 {
		t.Fatalf("metrics: status %d", code)
	}
	if got := met.Counters["serve_audit_records_total"]; got != 3 {
		t.Fatalf("serve_audit_records_total = %d, want 3", got)
	}
}

// TestAuditLogTamperDetected flips bytes in a valid log and checks every
// corruption class fails: edited answer, truncated chain tail swap,
// wrong secret.
func TestAuditLogTamperDetected(t *testing.T) {
	ts, buf := auditServer(t, source.Ring(60), "ring:n=60", "audit-secret")
	driveAuditQueries(t, ts)
	log := buf.String()

	if _, err := ReplayAuditLog(strings.NewReader(log), "wrong-secret"); err == nil {
		t.Fatal("replay under the wrong secret verified")
	}

	// Edit a record's answer field: the chain must reject the line.
	edited := strings.Replace(log, `"answer_hash":"`, `"answer_hash":"00`, 1)
	if edited == log {
		t.Fatal("test setup: no answer_hash found to corrupt")
	}
	if _, err := ReplayAuditLog(strings.NewReader(edited), "audit-secret"); err == nil {
		t.Fatal("replay of an edited record verified")
	}

	// Drop the middle line: later signatures chain off the missing one.
	lines := strings.SplitAfter(strings.TrimSpace(log), "\n")
	if len(lines) != 3 {
		t.Fatalf("want 3 log lines, got %d", len(lines))
	}
	reordered := lines[0] + lines[2]
	if _, err := ReplayAuditLog(strings.NewReader(reordered), "audit-secret"); err == nil {
		t.Fatal("replay of a log with a dropped record verified")
	}
}

// TestAuditLogAttestedRows serves an attested source: records must carry
// the commitment plus Merkle-proven rows, and replay must verify them.
func TestAuditLogAttestedRows(t *testing.T) {
	att := source.NewAttested(source.Ring(60))
	ts, buf := auditServer(t, att, "ring:n=60 (attested)", "k")
	driveAuditQueries(t, ts)

	rep, err := ReplayAuditLog(bytes.NewReader(buf.Bytes()), "k")
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if rep.ProofsVerified == 0 {
		t.Fatal("attested records carried no verified row proofs")
	}

	// A transcript answer contradicting its proven row is a forged log
	// even when the chain is re-signed with the real secret: rebuild a
	// record with a lying probe answer and a fresh chain.
	var rec AuditRecord
	line := strings.SplitAfter(strings.TrimSpace(buf.String()), "\n")[0]
	if err := json.Unmarshal([]byte(line), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Commitment == "" || len(rec.Rows) == 0 {
		t.Fatalf("record carries no commitment or rows: %s", line)
	}
	if len(rec.Probes) == 0 {
		t.Fatal("record has an empty transcript")
	}
	rec.Probes[0].Answer++ // contradicts the proven row whatever the op
	var forged bytes.Buffer
	fl := &auditLog{w: &forged, chain: newTestChain("k")}
	if err := fl.append(&rec); err != nil {
		t.Fatal(err)
	}
	if _, err := ReplayAuditLog(bytes.NewReader(forged.Bytes()), "k"); err == nil {
		t.Fatal("forged transcript (answer contradicting a proven row) verified")
	} else if !strings.Contains(err.Error(), "proven row") && !strings.Contains(err.Error(), "transcript") {
		t.Fatalf("forged transcript failed for the wrong reason: %v", err)
	}
}

// TestAuditDoesNotPerturbAnswers runs the same queries with auditing on
// and off: the answers — probe counts included — must be byte-identical,
// because the transcript recorder charges exactly what the scalar
// account would.
func TestAuditDoesNotPerturbAnswers(t *testing.T) {
	plainSrv := NewFromSource(source.Ring(60), "ring:n=60", 42)
	plain := httptest.NewServer(plainSrv.Handler())
	defer plain.Close()
	audited, _ := auditServer(t, source.Ring(60), "ring:n=60", "s")

	a := driveAuditQueries(t, plain)
	b := driveAuditQueries(t, audited)
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("answer %d differs with auditing on:\n  off: %s\n  on:  %s", i, a[i], b[i])
		}
	}
}

// TestReplayRejectsDivergence corrupts a record's transcript by deleting
// a probe: the re-executed algorithm must hit the hole and the replay
// must report divergence, not silently mis-answer.
func TestReplayRejectsDivergence(t *testing.T) {
	ts, buf := auditServer(t, source.Ring(60), "ring:n=60", "k2")
	driveAuditQueries(t, ts)

	var rec AuditRecord
	line := strings.SplitAfter(strings.TrimSpace(buf.String()), "\n")[0]
	if err := json.Unmarshal([]byte(line), &rec); err != nil {
		t.Fatal(err)
	}
	if len(rec.Probes) < 2 {
		t.Fatalf("record has %d probes, want enough to truncate", len(rec.Probes))
	}
	rec.Probes = rec.Probes[:1]
	rec.Rows = nil
	rec.Commitment = ""
	var forged bytes.Buffer
	fl := &auditLog{w: &forged, chain: newTestChain("k2")}
	if err := fl.append(&rec); err != nil {
		t.Fatal(err)
	}
	_, err := ReplayAuditLog(bytes.NewReader(forged.Bytes()), "k2")
	if err == nil {
		t.Fatal("replay over a truncated transcript verified")
	}
	if want := "transcript"; !strings.Contains(err.Error(), want) {
		t.Fatalf("divergence error %q does not mention the transcript", err)
	}
}

// TestAuditSkipsFailedFlights checks that a rejected request (bad
// coordinates) leaves no audit record.
func TestAuditSkipsFailedFlights(t *testing.T) {
	ts, buf := auditServer(t, source.Ring(60), "ring:n=60", "k3")
	var raw json.RawMessage
	if code := getJSON(t, ts.URL+"/vertex/mis?v=999", &raw); code == 200 {
		t.Fatalf("out-of-range vertex answered: %s", raw)
	}
	if buf.Len() != 0 {
		t.Fatalf("failed flight left an audit record: %s", buf.String())
	}
	if code := getJSON(t, ts.URL+"/vertex/mis?v=5", &raw); code != 200 {
		t.Fatalf("vertex query: status %d", code)
	}
	if got := strings.Count(buf.String(), "\n"); got != 1 {
		t.Fatalf("want exactly 1 audit record, got %d: %s", got, buf.String())
	}
	// Estimates execute but are sampling runs, not replayable queries:
	// no record.
	before := buf.Len()
	if code := getJSON(t, ts.URL+"/estimate/mis?samples=50", &raw); code != 200 {
		t.Fatalf("estimate: status %d: %s", code, raw)
	}
	if buf.Len() != before {
		t.Fatal("estimate flight left an audit record")
	}
}

// newTestChain builds a fresh signing chain for forging log lines in
// tamper tests.
func newTestChain(secret string) *attest.Chain { return attest.NewChain(secret) }
