package serve

// Structured request logging. The server is a library and stays silent
// by default; WithLogger installs a log/slog logger and the server then
// emits one line per served query — request_id, tenant, kind,
// algorithm, probe and round-trip totals, and the trace id when the
// request was sampled — plus one line per error envelope written. The
// lines carry the same correlation keys as the error envelopes and the
// trace plane, so a slow-query investigation can pivot from a log line
// to /traces/{id} to the exact rpc span that cost the time.

import (
	"log/slog"
	"net/http"
	"time"
)

// WithLogger installs a structured request logger (nil keeps the
// library default: silent).
func WithLogger(l *slog.Logger) Option {
	return func(s *Server) { s.log = l }
}

// logQuery emits one request line for a served query.
func (s *Server) logQuery(w http.ResponseWriter, kind, algo string, ten *tenantState, elapsed time.Duration, ans any) {
	if s.log == nil {
		return
	}
	var probes, rts uint64
	var traceID string
	switch a := ans.(type) {
	case edgeAnswer:
		probes, rts, traceID = a.Probes, a.RoundTrips, a.TraceID
	case vertexAnswer:
		probes, rts, traceID = a.Probes, a.RoundTrips, a.TraceID
	case labelAnswer:
		probes, rts, traceID = a.Probes, a.RoundTrips, a.TraceID
	case estimateAnswer:
		traceID = a.TraceID
	}
	attrs := make([]any, 0, 18)
	attrs = append(attrs,
		"request_id", w.Header().Get(RequestIDHeader),
		"kind", kind,
		"algo", algo,
		"status", http.StatusOK,
		"duration_us", elapsed.Microseconds(),
		"probes", probes,
		"round_trips", rts,
	)
	if ten != nil {
		attrs = append(attrs, "tenant", ten.Name)
	}
	if traceID != "" {
		attrs = append(attrs, "trace_id", traceID)
	}
	s.log.Info("query", attrs...)
}

// logError emits one line per error envelope written.
func (s *Server) logError(w http.ResponseWriter, status int, err error) {
	if s.log == nil {
		return
	}
	s.log.Warn("request failed",
		"request_id", w.Header().Get(RequestIDHeader),
		"status", status,
		"error", err.Error(),
	)
}
