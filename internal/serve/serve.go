// Package serve exposes LCAs over HTTP: the deployment shape the model
// implies. A server holds nothing but probe-source handles and the seed;
// each request builds a fresh LCA instance (they are cheap and answer
// consistently for a fixed seed), so requests are embarrassingly parallel
// and horizontally scalable — different replicas with the same seed serve
// slices of the same global solution. Sources need not be in memory: the
// server answers point queries against implicit generators and cold
// disk-backed CSR files at vertex counts far beyond RAM.
//
// Routing is registry-generic: one handler per query kind, dispatching by
// algorithm name through internal/registry. Registering a new algorithm
// makes it appear on /algos and become queryable with no edits here.
//
//	GET  /healthz
//	GET  /metrics[?format=text]
//	GET  /graph[?source=NAME]
//	GET  /algos
//	GET  /sources
//	POST /sources?name=NAME&spec=SPEC
//	GET  /edge/{algo}?u=U&v=V[&source=NAME][&prefetch=1][&param=...]
//	GET  /vertex/{algo}?v=V[&source=NAME][&prefetch=1][&param=...]
//	GET  /label/{algo}?v=V[&source=NAME][&prefetch=1][&param=...]
//	GET  /estimate/{algo}?samples=S[&source=NAME][&prefetch=1][&param=...]
//	GET  /probe?op=OP&a=A[&b=B][&source=NAME]
//	POST /probe[?source=NAME]
//	GET  /probe/meta[?source=NAME]
//	GET  /traces[?slow=1]
//	GET  /traces/{id}
//
// The /probe endpoints speak the probe wire protocol (internal/source,
// wire.go): they answer raw Degree/Neighbor/Adjacency probes (plus the
// seeded op=randomedge extension and batched POST /probe) about any
// named source, so every lcaserve instance doubles as a shard that
// remote: and sharded: sources (and other lcaserve replicas) can probe
// over the network.
//
// prefetch=1 routes the query through a prefetching exploration oracle:
// when the selected source is network-backed and batchable (remote:,
// sharded:), each neighborhood the LCA explores becomes one batched
// round trip instead of one per cell. Answers and probe counts are
// identical either way; query answers carry a round_trips field so the
// transport saving is observable per query.
//
// POST /sources opens a source by spec string ("ring:n=1000000000",
// "csr:web.csr", ...) and names it; query endpoints select named sources
// with ?source=, defaulting to the source the server was constructed
// with. /graph summarizes n, m and the maximum degree, but refuses with
// 413 to probe O(n) state for summaries the source cannot answer in O(1)
// when n exceeds the configurable cap (WithGraphInfoCap) — the guard that
// keeps a billion-vertex source from being walked by one curious GET.
//
// The serving tier around the query plane (tenant.go, coalesce.go,
// metrics.go):
//
//   - Tenants: WithTenants installs a static token → tenant table; the
//     query plane then requires a token per request (Authorization:
//     Bearer or X-LCA-Token) and enforces per-tenant probe/round-trip
//     budgets (per query, through the oracle budget wrappers) and a
//     sustained-QPS token bucket. Rejections are 429 envelopes; missing
//     or unknown tokens are 401s.
//   - Coalescing: identical in-flight queries share one oracle
//     execution (answers are pure functions of source, kind, params,
//     query and seed), so a hot key is charged once however many
//     requests pile onto it.
//   - Metrics: GET /metrics exports per-kind query counts and latency
//     histograms, probe/round-trip/failover/hedge totals, coalescing
//     and per-tenant counters (see metrics.go for the name table).
//   - Request IDs: every response carries X-Request-ID (client-supplied
//     or generated), and every error envelope embeds it as request_id.
//   - Tracing (tracing.go): ?trace=1 on any query endpoint — or the
//     WithTraceSample head sampler — records a probe-level span tree
//     (query root, oracle exploration, per-round-trip rpc spans with
//     failover/hedge tags, shard-side spans stitched over the
//     X-LCA-Trace header) and attaches it to the answer; WithSlowQuery
//     force-retains threshold violators. GET /traces serves the
//     bounded retention rings.
//
// Every error is a JSON envelope {"error": ..., "status": ...,
// "request_id": ...}; malformed or unknown query parameters are 400s,
// unknown algorithms and kind mismatches are 404s, auth failures 401s,
// admission and budget rejections 429s.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"lca/internal/core"
	"lca/internal/estimate"
	"lca/internal/graph"
	"lca/internal/metrics"
	"lca/internal/oracle"
	"lca/internal/registry"
	"lca/internal/rnd"
	"lca/internal/source"
	"lca/internal/trace"

	// Register the built-in algorithm catalog.
	_ "lca/internal/coloring"
	_ "lca/internal/matching"
	_ "lca/internal/mis"
	_ "lca/internal/spanner"
)

// DefaultGraphInfoCap bounds the vertex count up to which /graph will
// probe a source lacking O(1) edge-count/max-degree capabilities.
const DefaultGraphInfoCap = 1 << 22

// Server answers LCA queries about named probe sources under one seed.
// Construct with New or NewFromSource; the zero value is unusable. Safe
// for concurrent use.
type Server struct {
	seed    rnd.Seed
	infoCap int
	mu      sync.RWMutex
	sources map[string]*namedSource
	tenants map[string]*tenantState // token -> tenant; empty = open server
	met     *serverMetrics
	flights flightGroup
	log     *slog.Logger // nil: silent (the library default)

	// The tracing plane (tracing.go): head-based sampler (nil = sample
	// nothing), slow-query thresholds (zero = capture off) and the
	// bounded retention rings behind /traces.
	sampler    *trace.Sampler
	slowDur    time.Duration
	slowProbes uint64
	traces     *trace.Ring

	// audit, when non-nil, is the signed append-only query-audit log
	// (audit.go): every successfully executed query flight appends one
	// HMAC-chained JSON line that lcaverify -replay can re-execute
	// offline.
	audit *auditLog
}

// namedSource is one open source with its provenance.
type namedSource struct {
	name string
	spec string
	src  source.Source
}

// Option configures a Server at construction.
type Option func(*Server)

// WithGraphInfoCap sets the vertex-count cap above which /graph answers
// 413 instead of probing O(n) state for sources without O(1) summary
// capabilities. Zero or negative restores the default.
func WithGraphInfoCap(n int) Option {
	return func(s *Server) {
		if n > 0 {
			s.infoCap = n
		}
	}
}

// New returns a server whose default source is the in-memory graph g.
func New(g *graph.Graph, seed rnd.Seed, opts ...Option) *Server {
	return NewFromSource(g, "(in-memory graph)", seed, opts...)
}

// NewFromSource returns a server whose default source is src; spec is the
// provenance string echoed by /sources and /graph.
func NewFromSource(src source.Source, spec string, seed rnd.Seed, opts ...Option) *Server {
	s := &Server{
		seed:    seed,
		infoCap: DefaultGraphInfoCap,
		sources: map[string]*namedSource{"": {name: "", spec: spec, src: src}},
		met:     newServerMetrics(metrics.NewRegistry()),
		traces:  trace.NewRing(0, 0),
	}
	for _, o := range opts {
		o(s)
	}
	s.bindTenantMetrics()
	return s
}

// Handler returns the HTTP routing table: one route per query kind plus
// discovery, introspection and metrics endpoints. The whole table sits
// behind the request-ID middleware, so every response is correlatable.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET "+MetricsPath, s.handleMetrics)
	mux.HandleFunc("GET /graph", s.handleGraph)
	mux.HandleFunc("GET /algos", s.handleAlgos)
	mux.HandleFunc("GET /sources", s.handleSourcesList)
	mux.HandleFunc("POST /sources", s.handleSourcesOpen)
	mux.HandleFunc("GET /edge/{algo}", s.handleEdge)
	mux.HandleFunc("GET /vertex/{algo}", s.handleVertex)
	mux.HandleFunc("GET /label/{algo}", s.handleLabel)
	mux.HandleFunc("GET /estimate/{algo}", s.handleEstimate)
	mux.HandleFunc("GET /probe", s.probeHandler(source.ServeProbe))
	mux.HandleFunc("POST /probe", s.probeHandler(source.ServeProbeBatch))
	mux.HandleFunc("GET /probe/meta", s.probeHandler(source.ServeProbeMeta))
	mux.HandleFunc("GET "+TracesPath, s.handleTraces)
	mux.HandleFunc("GET "+TracesPath+"/{id}", s.handleTraceGet)
	return withRequestID(mux)
}

// probeHandler adapts one wire-protocol handler to the named-source
// table, making the server act as a probe shard for any of its sources.
func (s *Server) probeHandler(serve func(http.ResponseWriter, *http.Request, source.Source)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.met.probeRequests.Inc()
		ns, err := s.sourceFor(r)
		if err != nil {
			s.writeError(w, err)
			return
		}
		serve(w, r, ns.src)
	}
}

// Close closes every named source holding external resources (CSR file
// handles, remote shard connections). The server must not be queried
// afterwards.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var errs []error
	for _, ns := range s.sources {
		if c, ok := ns.src.(source.Closer); ok {
			errs = append(errs, c.Close())
		}
	}
	s.sources = map[string]*namedSource{}
	return errors.Join(errs...)
}

type errorBody struct {
	Error     string `json:"error"`
	Status    int    `json:"status"`
	RequestID string `json:"request_id,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorBody{
		Error:     fmt.Sprintf(format, args...),
		Status:    status,
		RequestID: w.Header().Get(RequestIDHeader),
	})
}

// httpError carries a status code through the request-parsing helpers so
// every failure path produces the same JSON envelope.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

func badRequest(format string, args ...any) *httpError {
	return &httpError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

func notFound(format string, args ...any) *httpError {
	return &httpError{status: http.StatusNotFound, msg: fmt.Sprintf(format, args...)}
}

func writeHTTPError(w http.ResponseWriter, err error) {
	if he, ok := err.(*httpError); ok {
		writeErr(w, he.status, "%s", he.msg)
		return
	}
	writeErr(w, http.StatusInternalServerError, "%v", err)
}

// runProbing runs fn, converting the expected typed probe panics — the
// Source and Oracle interfaces have no error returns — into envelope
// errors: a remote-shard probe failure becomes a 502 (the server
// degrades instead of crashing the connection), and a tenant budget
// exhaustion becomes a 429 (the admission-control contract: the query
// cost more probes or round trips than the tenant is allowed per
// query).
func runProbing(fn func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			switch e := r.(type) {
			case *source.ProbeError:
				err = &httpError{status: http.StatusBadGateway, msg: e.Error()}
			case oracle.ErrBudgetExceeded:
				err = &httpError{status: http.StatusTooManyRequests,
					msg: fmt.Sprintf("per-query probe budget %d exhausted; narrow the query or raise the tenant budget", e.Budget)}
			case oracle.ErrTripBudgetExceeded:
				err = &httpError{status: http.StatusTooManyRequests,
					msg: fmt.Sprintf("per-query round-trip budget %d exhausted; narrow the query or raise the tenant budget", e.Budget)}
			default:
				panic(r)
			}
		}
	}()
	fn()
	return nil
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// sourceFor resolves the request's ?source= selector (default source when
// absent) against the open-source table.
func (s *Server) sourceFor(r *http.Request) (*namedSource, error) {
	name := r.URL.Query().Get("source")
	s.mu.RLock()
	defer s.mu.RUnlock()
	ns, ok := s.sources[name]
	if !ok {
		return nil, notFound("unknown source %q (see /sources)", name)
	}
	return ns, nil
}

type graphInfo struct {
	N         int    `json:"n"`
	M         int    `json:"m"`
	MaxDegree int    `json:"max_degree"`
	Source    string `json:"source,omitempty"`
	Spec      string `json:"spec,omitempty"`
}

// handleGraph summarizes a source. Materialized graphs and closed-form
// implicit families answer in O(1); anything else is probed vertex by
// vertex, which the info cap guards — a billion-vertex source answers 413,
// not an hour of degree probes.
func (s *Server) handleGraph(w http.ResponseWriter, r *http.Request) {
	// The summary may probe O(n) state on capability-less sources, so it
	// is tenant-gated traffic like the query plane.
	if _, err := s.admitTenant(w, r); err != nil {
		s.writeError(w, err)
		return
	}
	ns, err := s.sourceFor(r)
	if err != nil {
		s.writeError(w, err)
		return
	}
	info := graphInfo{N: ns.src.N(), Source: ns.name, Spec: ns.spec}
	mc, haveM := source.EdgeCounterOf(ns.src)
	db, haveMax := source.DegreeBounderOf(ns.src)
	if haveM && haveMax {
		info.M = mc.M()
		info.MaxDegree = db.MaxDegree()
		writeJSON(w, http.StatusOK, info)
		return
	}
	if info.N > s.infoCap {
		writeErr(w, http.StatusRequestEntityTooLarge,
			"graph summary would probe n=%d vertices, above the cap %d; query the source by point probes instead", info.N, s.infoCap)
		return
	}
	stubs := 0
	if err := runProbing(func() {
		for v := 0; v < info.N; v++ {
			d := ns.src.Degree(v)
			stubs += d
			if d > info.MaxDegree {
				info.MaxDegree = d
			}
		}
	}); err != nil {
		s.writeError(w, err)
		return
	}
	info.M = stubs / 2
	if haveM {
		info.M = mc.M()
	}
	writeJSON(w, http.StatusOK, info)
}

// sourceInfo is one /sources catalog entry. Health carries the
// per-replica state of sharded sources (absent otherwise), so the source
// listing doubles as the fleet's failover dashboard.
type sourceInfo struct {
	Name   string               `json:"name"`
	Spec   string               `json:"spec"`
	N      int                  `json:"n"`
	Health []source.ShardHealth `json:"health,omitempty"`
}

type sourcesBody struct {
	Sources  []sourceInfo `json:"sources"`
	Families []string     `json:"families"`
}

func (s *Server) handleSourcesList(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	out := make([]sourceInfo, 0, len(s.sources))
	for _, ns := range s.sources {
		info := sourceInfo{Name: ns.name, Spec: ns.spec, N: ns.src.N()}
		if health, ok := source.HealthOf(ns.src); ok {
			info.Health = health
		}
		out = append(out, info)
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	fams := source.Families()
	usages := make([]string, len(fams))
	for i, f := range fams {
		usages[i] = f.Usage
	}
	writeJSON(w, http.StatusOK, sourcesBody{Sources: out, Families: usages})
}

// handleSourcesOpen opens a source by spec under a name — the open-by-spec
// endpoint: a replica can be pointed at a billion-vertex implicit source
// or a CSR file on its local disk without restarting.
func (s *Server) handleSourcesOpen(w http.ResponseWriter, r *http.Request) {
	// Opening sources mutates server state: on a tenant-gated server it
	// requires a configured token (no admission charge — it is rare,
	// administrative traffic).
	if _, err := s.tenantFor(r); err != nil {
		s.writeError(w, err)
		return
	}
	name := r.URL.Query().Get("name")
	spec := r.URL.Query().Get("spec")
	if name == "" || spec == "" {
		s.writeError(w, badRequest("POST /sources requires non-empty name and spec query parameters"))
		return
	}
	src, err := source.Parse(spec, s.seed)
	if err != nil {
		s.writeError(w, badRequest("%v", err))
		return
	}
	ns := &namedSource{name: name, spec: spec, src: src}
	s.mu.Lock()
	_, dup := s.sources[name]
	if !dup {
		s.sources[name] = ns
	}
	s.mu.Unlock()
	if dup {
		if c, ok := src.(source.Closer); ok {
			_ = c.Close()
		}
		writeErr(w, http.StatusConflict, "source %q already open", name)
		return
	}
	writeJSON(w, http.StatusCreated, sourceInfo{Name: name, Spec: spec, N: src.N()})
}

// algoInfo is one /algos catalog entry.
type algoInfo struct {
	Name    string           `json:"name"`
	Aliases []string         `json:"aliases,omitempty"`
	Kind    string           `json:"kind"`
	Summary string           `json:"summary"`
	Params  []registry.Param `json:"params,omitempty"`
}

func (s *Server) handleAlgos(w http.ResponseWriter, _ *http.Request) {
	ds := registry.All()
	out := make([]algoInfo, 0, len(ds))
	for _, d := range ds {
		out = append(out, algoInfo{
			Name:    d.Name,
			Aliases: d.Aliases,
			Kind:    string(d.Kind),
			Summary: d.Summary,
			Params:  d.Params,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// request parsing ------------------------------------------------------

// descriptorFor resolves the path's algorithm name against the registry
// and checks its kind.
func descriptorFor(r *http.Request, kind registry.Kind) (*registry.Descriptor, error) {
	name := r.PathValue("algo")
	d, err := registry.Get(name)
	if err != nil {
		return nil, notFound("unknown algorithm %q (see /algos)", name)
	}
	if d.Kind != kind {
		return nil, notFound("algorithm %q answers %s queries, not %s (see /algos)", d.Name, d.Kind, kind)
	}
	return d, nil
}

// queryParams validates the full query string: positional keys (u, v,
// samples, ...) are parsed by the caller and listed in reserved; every
// other key must be a parameter the descriptor declares, parsed per its
// declared type. Unknown keys are 400s — a typo must never degrade into a
// silently ignored parameter or a zero-value query.
func queryParams(r *http.Request, d *registry.Descriptor, reserved ...string) (registry.Params, error) {
	isReserved := func(k string) bool {
		for _, rk := range reserved {
			if k == rk {
				return true
			}
		}
		return false
	}
	p := registry.Params{}
	for key, vals := range r.URL.Query() {
		if isReserved(key) {
			continue
		}
		if !d.HasParam(key) {
			return nil, badRequest("unknown query parameter %q for algorithm %q", key, d.Name)
		}
		if len(vals) != 1 {
			return nil, badRequest("parameter %q given %d times, want 1", key, len(vals))
		}
		v, err := d.ParseValue(key, vals[0])
		if err != nil {
			return nil, badRequest("%v", err)
		}
		p[key] = v
	}
	return p, nil
}

// vertexParam parses a required vertex-ID query parameter against src's
// vertex range.
func vertexParam(r *http.Request, src source.Source, name string) (int, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, badRequest("missing query parameter %q", name)
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, badRequest("parameter %q: %q is not an integer", name, raw)
	}
	if v < 0 || v >= src.N() {
		return 0, badRequest("vertex %d out of range [0,%d)", v, src.N())
	}
	return v, nil
}

// prefetchParam parses the optional prefetch=0|1|false|true selector.
func prefetchParam(r *http.Request) (bool, error) {
	switch raw := r.URL.Query().Get("prefetch"); raw {
	case "", "0", "false":
		return false, nil
	case "1", "true":
		return true, nil
	default:
		return false, badRequest("parameter \"prefetch\": %q is not a boolean (want 0/1/false/true)", raw)
	}
}

// build constructs a fresh per-request instance over src — behind a
// prefetching exploration oracle when the request asked for one, behind
// the tenant's per-query budget wrappers when the tenant has budgets,
// and behind the audit-transcript recorder when the server keeps an
// audit log (the returned recorder is nil otherwise); parameter errors
// the registry reports after our own validation (range checks inside
// New) are the client's fault, hence 400 — except a BadInstanceError,
// which marks a broken registration and must surface as a server error.
func (s *Server) build(d *registry.Descriptor, src source.Source, p registry.Params, prefetch bool, ten *tenantState, tr *trace.Tracer) (any, *auditOracle, error) {
	o := oracle.New(src)
	if prefetch {
		po := oracle.NewPrefetch(src)
		po.SetTracer(tr)
		o = po
	}
	o = ten.budgetWrapTraced(o, tr)
	var rec *auditOracle
	if s.audit != nil {
		// Outermost, directly under the LCA: the transcript records the
		// cell probes the algorithm issued, independent of how prefetch or
		// budgets transported them — exactly what a replay needs.
		rec = newAuditOracle(o)
		o = rec
	}
	inst, err := d.Build(o, s.seed, p)
	if err != nil {
		var bad *registry.BadInstanceError
		if errors.As(err, &bad) {
			return nil, nil, &httpError{status: http.StatusInternalServerError, msg: err.Error()}
		}
		return nil, nil, badRequest("%v", err)
	}
	return inst, rec, nil
}

// queryKey is the coalescing identity of a query: kind, algorithm,
// source, canonical parameters, prefetch selector, the server seed, the
// tenant's budget shape (only identically budgeted requests may share
// an execution) and the tracing decision (a traced execution must not
// serve untraced callers, nor bill them its overhead), plus the query
// coordinates. Everything an answer depends on, nothing more — two
// requests with equal keys are guaranteed byte-identical answers.
func (s *Server) queryKey(kind, algo, srcName string, p registry.Params, prefetch bool, dec traceDecision, ten *tenantState, coords string) string {
	keys := make([]string, 0, len(p))
	for k := range p {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	params := make([]string, len(keys))
	for i, k := range keys {
		params[i] = fmt.Sprintf("%s=%v", k, p[k])
	}
	return strings.Join([]string{
		kind, algo, srcName, strings.Join(params, ","),
		strconv.FormatBool(prefetch), strconv.FormatUint(uint64(s.seed), 10),
		ten.budgetKey(), dec.key(), coords,
	}, "\x00")
}

// failQuery writes the error envelope and attributes budget rejections
// to the tenant's metrics (admission rejections are counted at the
// gate).
func (s *Server) failQuery(w http.ResponseWriter, ten *tenantState, err error) {
	if he, ok := err.(*httpError); ok && he.status == http.StatusTooManyRequests && ten != nil {
		ten.budgetRejected.Inc()
	}
	s.writeError(w, err)
}

// requestScoped returns the per-request view of a source: network
// backends with the TripScoper capability are scoped so each request's
// round-trip / failover / hedge figures count exactly its own traffic —
// concurrent requests against one shared source no longer bleed into
// each other's accounting. Local sources (no capability) are returned
// unchanged.
func requestScoped(src source.Source) source.Source {
	if ts, ok := src.(source.TripScoper); ok {
		return ts.ScopeTrips()
	}
	return src
}

func statsOf(inst any) oracle.Stats {
	if rep, ok := inst.(core.ProbeReporter); ok {
		return rep.ProbeStats()
	}
	return oracle.Stats{}
}

// kind handlers --------------------------------------------------------

type edgeAnswer struct {
	Algo        string       `json:"algo"`
	U           int          `json:"u"`
	V           int          `json:"v"`
	In          bool         `json:"in"`
	Probes      uint64       `json:"probes"`
	RoundTrips  uint64       `json:"round_trips,omitempty"`
	Failovers   uint64       `json:"failovers,omitempty"`
	Hedges      uint64       `json:"hedges,omitempty"`
	AttestFail  uint64       `json:"attest_failures,omitempty"`
	Remainders  uint64       `json:"remainder_trips,omitempty"`
	PageTouches uint64       `json:"page_touches,omitempty"`
	LocalHits   uint64       `json:"local_hits,omitempty"`
	TraceID     string       `json:"trace_id,omitempty"`
	Trace       []trace.Span `json:"trace,omitempty"`
}

func (s *Server) handleEdge(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	ten, err := s.admitTenant(w, r)
	if err != nil {
		s.writeError(w, err)
		return
	}
	d, err := descriptorFor(r, registry.KindEdge)
	if err != nil {
		s.writeError(w, err)
		return
	}
	ns, err := s.sourceFor(r)
	if err != nil {
		s.writeError(w, err)
		return
	}
	p, err := queryParams(r, d, "u", "v", "source", "prefetch", "trace")
	if err != nil {
		s.writeError(w, err)
		return
	}
	prefetch, err := prefetchParam(r)
	if err != nil {
		s.writeError(w, err)
		return
	}
	forced, err := traceParam(r)
	if err != nil {
		s.writeError(w, err)
		return
	}
	var u, v int
	if u, err = vertexParam(r, ns.src, "u"); err == nil {
		v, err = vertexParam(r, ns.src, "v")
	}
	if err != nil {
		s.writeError(w, err)
		return
	}
	dec := s.traceDecision(forced)
	key := s.queryKey("edge", d.Name, ns.name, p, prefetch, dec, ten, fmt.Sprintf("u=%d,v=%d", u, v))
	ans, err, _ := s.flights.do(key, s.met.coalesced.Inc, func() (_ any, ferr error) {
		qt := dec.begin("query:edge", u, d.Name)
		defer func() { s.finishTrace(qt, oracle.Stats{}, ferr) }()
		src := qt.scoped(ns.src)
		// The input-edge validation probe runs inside the flight: it is
		// oracle traffic, shared once per coalesced key like the query.
		var isEdge bool
		if perr := runProbing(func() { isEdge = src.Adjacency(u, v) >= 0 }); perr != nil {
			return nil, perr
		}
		if !isEdge {
			return nil, badRequest("(%d,%d) is not an edge of the graph", u, v)
		}
		inst, rec, err := s.build(d, src, p, prefetch, ten, qt.tracer())
		if err != nil {
			return nil, err
		}
		var in bool
		if err := runProbing(func() { in = inst.(core.EdgeLCA).QueryEdge(u, v) }); err != nil {
			return nil, err
		}
		st := statsOf(inst)
		s.met.observeExec(st)
		ans := edgeAnswer{Algo: d.Name, U: u, V: v, In: in,
			Probes: st.Total(), RoundTrips: st.RoundTrips, Failovers: st.Failovers, Hedges: st.Hedges,
			AttestFail: st.AttestFailures, Remainders: st.RemainderTrips,
			PageTouches: st.PageTouches, LocalHits: st.LocalHits}
		s.recordAudit("edge", d, ns, p, map[string]int{"u": u, "v": v}, rec, map[string]any{"in": in})
		ans.TraceID, ans.Trace = s.finishTrace(qt, st, nil)
		return ans, nil
	})
	if err != nil {
		s.failQuery(w, ten, err)
		return
	}
	s.met.observeRequest("edge", time.Since(start))
	s.logQuery(w, "edge", d.Name, ten, time.Since(start), ans)
	writeJSON(w, http.StatusOK, ans)
}

type vertexAnswer struct {
	Algo        string       `json:"algo"`
	V           int          `json:"v"`
	In          bool         `json:"in"`
	Probes      uint64       `json:"probes"`
	RoundTrips  uint64       `json:"round_trips,omitempty"`
	Failovers   uint64       `json:"failovers,omitempty"`
	Hedges      uint64       `json:"hedges,omitempty"`
	AttestFail  uint64       `json:"attest_failures,omitempty"`
	Remainders  uint64       `json:"remainder_trips,omitempty"`
	PageTouches uint64       `json:"page_touches,omitempty"`
	LocalHits   uint64       `json:"local_hits,omitempty"`
	TraceID     string       `json:"trace_id,omitempty"`
	Trace       []trace.Span `json:"trace,omitempty"`
}

func (s *Server) handleVertex(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	ten, err := s.admitTenant(w, r)
	if err != nil {
		s.writeError(w, err)
		return
	}
	d, err := descriptorFor(r, registry.KindVertex)
	if err != nil {
		s.writeError(w, err)
		return
	}
	ns, err := s.sourceFor(r)
	if err != nil {
		s.writeError(w, err)
		return
	}
	p, err := queryParams(r, d, "v", "source", "prefetch", "trace")
	if err != nil {
		s.writeError(w, err)
		return
	}
	prefetch, err := prefetchParam(r)
	if err != nil {
		s.writeError(w, err)
		return
	}
	forced, err := traceParam(r)
	if err != nil {
		s.writeError(w, err)
		return
	}
	v, err := vertexParam(r, ns.src, "v")
	if err != nil {
		s.writeError(w, err)
		return
	}
	dec := s.traceDecision(forced)
	key := s.queryKey("vertex", d.Name, ns.name, p, prefetch, dec, ten, fmt.Sprintf("v=%d", v))
	ans, err, _ := s.flights.do(key, s.met.coalesced.Inc, func() (_ any, ferr error) {
		qt := dec.begin("query:vertex", v, d.Name)
		defer func() { s.finishTrace(qt, oracle.Stats{}, ferr) }()
		src := qt.scoped(ns.src)
		inst, rec, err := s.build(d, src, p, prefetch, ten, qt.tracer())
		if err != nil {
			return nil, err
		}
		var in bool
		if err := runProbing(func() { in = inst.(core.VertexLCA).QueryVertex(v) }); err != nil {
			return nil, err
		}
		st := statsOf(inst)
		s.met.observeExec(st)
		ans := vertexAnswer{Algo: d.Name, V: v, In: in,
			Probes: st.Total(), RoundTrips: st.RoundTrips, Failovers: st.Failovers, Hedges: st.Hedges,
			AttestFail: st.AttestFailures, Remainders: st.RemainderTrips,
			PageTouches: st.PageTouches, LocalHits: st.LocalHits}
		s.recordAudit("vertex", d, ns, p, map[string]int{"v": v}, rec, map[string]any{"in": in})
		ans.TraceID, ans.Trace = s.finishTrace(qt, st, nil)
		return ans, nil
	})
	if err != nil {
		s.failQuery(w, ten, err)
		return
	}
	s.met.observeRequest("vertex", time.Since(start))
	s.logQuery(w, "vertex", d.Name, ten, time.Since(start), ans)
	writeJSON(w, http.StatusOK, ans)
}

type labelAnswer struct {
	Algo        string       `json:"algo"`
	V           int          `json:"v"`
	Label       int          `json:"label"`
	Probes      uint64       `json:"probes"`
	RoundTrips  uint64       `json:"round_trips,omitempty"`
	Failovers   uint64       `json:"failovers,omitempty"`
	Hedges      uint64       `json:"hedges,omitempty"`
	AttestFail  uint64       `json:"attest_failures,omitempty"`
	Remainders  uint64       `json:"remainder_trips,omitempty"`
	PageTouches uint64       `json:"page_touches,omitempty"`
	LocalHits   uint64       `json:"local_hits,omitempty"`
	TraceID     string       `json:"trace_id,omitempty"`
	Trace       []trace.Span `json:"trace,omitempty"`
}

func (s *Server) handleLabel(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	ten, err := s.admitTenant(w, r)
	if err != nil {
		s.writeError(w, err)
		return
	}
	d, err := descriptorFor(r, registry.KindLabel)
	if err != nil {
		s.writeError(w, err)
		return
	}
	ns, err := s.sourceFor(r)
	if err != nil {
		s.writeError(w, err)
		return
	}
	p, err := queryParams(r, d, "v", "source", "prefetch", "trace")
	if err != nil {
		s.writeError(w, err)
		return
	}
	prefetch, err := prefetchParam(r)
	if err != nil {
		s.writeError(w, err)
		return
	}
	forced, err := traceParam(r)
	if err != nil {
		s.writeError(w, err)
		return
	}
	v, err := vertexParam(r, ns.src, "v")
	if err != nil {
		s.writeError(w, err)
		return
	}
	dec := s.traceDecision(forced)
	key := s.queryKey("label", d.Name, ns.name, p, prefetch, dec, ten, fmt.Sprintf("v=%d", v))
	ans, err, _ := s.flights.do(key, s.met.coalesced.Inc, func() (_ any, ferr error) {
		qt := dec.begin("query:label", v, d.Name)
		defer func() { s.finishTrace(qt, oracle.Stats{}, ferr) }()
		src := qt.scoped(ns.src)
		inst, rec, err := s.build(d, src, p, prefetch, ten, qt.tracer())
		if err != nil {
			return nil, err
		}
		var label int
		if err := runProbing(func() { label = inst.(core.LabelLCA).QueryLabel(v) }); err != nil {
			return nil, err
		}
		st := statsOf(inst)
		s.met.observeExec(st)
		ans := labelAnswer{Algo: d.Name, V: v, Label: label,
			Probes: st.Total(), RoundTrips: st.RoundTrips, Failovers: st.Failovers, Hedges: st.Hedges,
			AttestFail: st.AttestFailures, Remainders: st.RemainderTrips,
			PageTouches: st.PageTouches, LocalHits: st.LocalHits}
		s.recordAudit("label", d, ns, p, map[string]int{"v": v}, rec, map[string]any{"label": label})
		ans.TraceID, ans.Trace = s.finishTrace(qt, st, nil)
		return ans, nil
	})
	if err != nil {
		s.failQuery(w, ten, err)
		return
	}
	s.met.observeRequest("label", time.Since(start))
	s.logQuery(w, "label", d.Name, ten, time.Since(start), ans)
	writeJSON(w, http.StatusOK, ans)
}

type estimateAnswer struct {
	Algo       string       `json:"algo"`
	Kind       string       `json:"kind"`
	Fraction   float64      `json:"fraction"`
	ErrorBound float64      `json:"error_bound"`
	Samples    int          `json:"samples"`
	TraceID    string       `json:"trace_id,omitempty"`
	Trace      []trace.Span `json:"trace,omitempty"`
}

// handleEstimate estimates the solution fraction of any edge- or
// vertex-kind algorithm by sampled point queries (Hoeffding-bounded, 95%).
func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	ten, err := s.admitTenant(w, r)
	if err != nil {
		s.writeError(w, err)
		return
	}
	name := r.PathValue("algo")
	d, err := registry.Get(name)
	if err != nil {
		s.writeError(w, notFound("unknown algorithm %q (see /algos)", name))
		return
	}
	if d.Kind == registry.KindLabel {
		s.writeError(w, notFound("algorithm %q answers label queries; fractions are estimable for edge and vertex kinds", d.Name))
		return
	}
	ns, err := s.sourceFor(r)
	if err != nil {
		s.writeError(w, err)
		return
	}
	p, err := queryParams(r, d, "samples", "source", "prefetch", "trace")
	if err != nil {
		s.writeError(w, err)
		return
	}
	prefetch, err := prefetchParam(r)
	if err != nil {
		s.writeError(w, err)
		return
	}
	forced, err := traceParam(r)
	if err != nil {
		s.writeError(w, err)
		return
	}
	samples := 500
	if raw := r.URL.Query().Get("samples"); raw != "" {
		parsed, perr := strconv.Atoi(raw)
		if perr != nil || parsed < 1 || parsed > 1_000_000 {
			s.writeError(w, badRequest("parameter \"samples\": %q is not an integer in [1,1000000]", raw))
			return
		}
		samples = parsed
	}
	const delta = 0.05
	dec := s.traceDecision(forced)
	key := s.queryKey("estimate", d.Name, ns.name, p, prefetch, dec, ten, fmt.Sprintf("samples=%d", samples))
	ans, err, _ := s.flights.do(key, s.met.coalesced.Inc, func() (_ any, flightErr error) {
		qt := dec.begin("query:estimate", -1, d.Name)
		defer func() { s.finishTrace(qt, oracle.Stats{}, flightErr) }()
		src := qt.scoped(ns.src)
		wrap := func(o oracle.Oracle) oracle.Oracle { return ten.budgetWrapTraced(o, qt.tracer()) }
		var res estimate.Result
		var ferr error
		if perr := runProbing(func() {
			res, ferr = estimate.FractionOver(d, src, s.seed, p, samples, delta, prefetch, wrap)
		}); perr != nil {
			return nil, perr
		}
		if ferr != nil {
			// Kind and samples were validated above; what remains is bad
			// parameter values, which are the client's.
			return nil, badRequest("%v", ferr)
		}
		ans := estimateAnswer{
			Algo:       d.Name,
			Kind:       string(d.Kind),
			Fraction:   res.Fraction,
			ErrorBound: res.ErrorBound,
			Samples:    res.Samples,
		}
		ans.TraceID, ans.Trace = s.finishTrace(qt, oracle.Stats{}, nil)
		return ans, nil
	})
	if err != nil {
		s.failQuery(w, ten, err)
		return
	}
	s.met.observeRequest("estimate", time.Since(start))
	s.logQuery(w, "estimate", d.Name, ten, time.Since(start), ans)
	writeJSON(w, http.StatusOK, ans)
}
