// Package serve exposes LCAs over HTTP: the deployment shape the model
// implies. A server holds nothing but the graph handle and the seed; each
// request builds a fresh LCA instance (they are cheap and answer
// consistently for a fixed seed), so requests are embarrassingly parallel
// and horizontally scalable — different replicas with the same seed serve
// slices of the same global solution.
package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"lca/internal/coloring"
	"lca/internal/estimate"
	"lca/internal/graph"
	"lca/internal/matching"
	"lca/internal/mis"
	"lca/internal/oracle"
	"lca/internal/rnd"
	"lca/internal/spanner"
)

// Server answers LCA queries for one graph under one seed. Construct with
// New; the zero value is unusable. Safe for concurrent use: per-request
// state only.
type Server struct {
	g    *graph.Graph
	seed rnd.Seed
}

// New returns a server for g under the given seed.
func New(g *graph.Graph, seed rnd.Seed) *Server {
	return &Server{g: g, seed: seed}
}

// Handler returns the HTTP routing table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /graph", s.handleGraph)
	mux.HandleFunc("GET /spanner/{alg}/edge", s.handleSpannerEdge)
	mux.HandleFunc("GET /mis/vertex", s.handleMISVertex)
	mux.HandleFunc("GET /matching/edge", s.handleMatchingEdge)
	mux.HandleFunc("GET /coloring/vertex", s.handleColoringVertex)
	mux.HandleFunc("GET /estimate/{metric}", s.handleEstimate)
	return mux
}

type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) vertexParam(r *http.Request, name string) (int, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, fmt.Errorf("missing query parameter %q", name)
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("parameter %q: %v", name, err)
	}
	if v < 0 || v >= s.g.N() {
		return 0, fmt.Errorf("vertex %d out of range [0,%d)", v, s.g.N())
	}
	return v, nil
}

func (s *Server) edgeParams(r *http.Request) (u, v int, err error) {
	if u, err = s.vertexParam(r, "u"); err != nil {
		return 0, 0, err
	}
	if v, err = s.vertexParam(r, "v"); err != nil {
		return 0, 0, err
	}
	if !s.g.HasEdge(u, v) {
		return 0, 0, fmt.Errorf("(%d,%d) is not an edge of the graph", u, v)
	}
	return u, v, nil
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

type graphInfo struct {
	N         int `json:"n"`
	M         int `json:"m"`
	MaxDegree int `json:"max_degree"`
}

func (s *Server) handleGraph(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, graphInfo{N: s.g.N(), M: s.g.M(), MaxDegree: s.g.MaxDegree()})
}

type edgeAnswer struct {
	U      int    `json:"u"`
	V      int    `json:"v"`
	In     bool   `json:"in"`
	Probes uint64 `json:"probes"`
	Alg    string `json:"alg"`
}

// edgeLCA is the per-request spanner instance contract.
type edgeLCA interface {
	QueryEdge(u, v int) bool
	ProbeStats() oracle.Stats
}

func (s *Server) spannerFor(alg string, k int) (edgeLCA, error) {
	o := oracle.New(s.g)
	switch alg {
	case "3":
		return spanner.NewSpanner3(o, s.seed), nil
	case "5":
		return spanner.NewSpanner5(o, s.seed), nil
	case "k":
		return spanner.NewSpannerK(o, k, s.seed), nil
	case "sparse":
		return spanner.NewSparseSpanning(o, s.seed), nil
	default:
		return nil, fmt.Errorf("unknown spanner algorithm %q (want 3, 5, k or sparse)", alg)
	}
}

func (s *Server) handleSpannerEdge(w http.ResponseWriter, r *http.Request) {
	alg := r.PathValue("alg")
	k := 3
	if raw := r.URL.Query().Get("k"); raw != "" {
		parsed, err := strconv.Atoi(raw)
		if err != nil || parsed < 1 {
			writeErr(w, http.StatusBadRequest, "bad k %q", raw)
			return
		}
		k = parsed
	}
	lca, err := s.spannerFor(alg, k)
	if err != nil {
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	}
	u, v, err := s.edgeParams(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	in := lca.QueryEdge(u, v)
	writeJSON(w, http.StatusOK, edgeAnswer{U: u, V: v, In: in, Probes: lca.ProbeStats().Total(), Alg: alg})
}

type vertexAnswer struct {
	V      int    `json:"v"`
	In     bool   `json:"in"`
	Probes uint64 `json:"probes"`
}

func (s *Server) handleMISVertex(w http.ResponseWriter, r *http.Request) {
	v, err := s.vertexParam(r, "v")
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	lca := mis.New(oracle.New(s.g), s.seed)
	in := lca.QueryVertex(v)
	writeJSON(w, http.StatusOK, vertexAnswer{V: v, In: in, Probes: lca.ProbeStats().Total()})
}

func (s *Server) handleMatchingEdge(w http.ResponseWriter, r *http.Request) {
	u, v, err := s.edgeParams(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	lca := matching.New(oracle.New(s.g), s.seed)
	in := lca.QueryEdge(u, v)
	writeJSON(w, http.StatusOK, edgeAnswer{U: u, V: v, In: in, Probes: lca.ProbeStats().Total(), Alg: "matching"})
}

type colorAnswer struct {
	V      int    `json:"v"`
	Color  int    `json:"color"`
	Probes uint64 `json:"probes"`
}

func (s *Server) handleColoringVertex(w http.ResponseWriter, r *http.Request) {
	v, err := s.vertexParam(r, "v")
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	lca := coloring.New(oracle.New(s.g), s.seed)
	writeJSON(w, http.StatusOK, colorAnswer{V: v, Color: lca.QueryLabel(v), Probes: lca.ProbeStats().Total()})
}

type estimateAnswer struct {
	Metric     string  `json:"metric"`
	Fraction   float64 `json:"fraction"`
	ErrorBound float64 `json:"error_bound"`
	Samples    int     `json:"samples"`
}

func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	metric := r.PathValue("metric")
	samples := 500
	if raw := r.URL.Query().Get("samples"); raw != "" {
		parsed, err := strconv.Atoi(raw)
		if err != nil || parsed < 1 || parsed > 1_000_000 {
			writeErr(w, http.StatusBadRequest, "bad samples %q", raw)
			return
		}
		samples = parsed
	}
	const delta = 0.05
	var res estimate.Result
	switch metric {
	case "mis":
		res = estimate.VertexFraction(s.g.N(), mis.New(oracle.New(s.g), s.seed), samples, delta, s.seed.Derive(1))
	case "cover":
		res = estimate.VertexFraction(s.g.N(), matching.New(oracle.New(s.g), s.seed), samples, delta, s.seed.Derive(2))
	case "spanner3":
		lca := spanner.NewSpanner3Config(oracle.New(s.g), s.seed, spanner.Config{Memo: true})
		res = estimate.EdgeFraction(s.g, lca, samples, delta, s.seed.Derive(3))
	default:
		writeErr(w, http.StatusNotFound, "unknown metric %q (want mis, cover or spanner3)", metric)
		return
	}
	writeJSON(w, http.StatusOK, estimateAnswer{
		Metric:     metric,
		Fraction:   res.Fraction,
		ErrorBound: res.ErrorBound,
		Samples:    res.Samples,
	})
}
