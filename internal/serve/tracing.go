package serve

// The tracing plane: per-request probe-level span trees.
//
//	GET /traces[?slow=1]
//	GET /traces/{id}
//
// A query request is traced when it forces a trace (?trace=1 on any
// query endpoint), when the head-based sampler admits it
// (WithTraceSample), or when slow-query capture is configured
// (WithSlowQuery) — the last traces every query, because a threshold
// violator can only be retained with its full span tree if the tree was
// recorded while the query ran. Traced executions thread one tracer
// through every layer: the query handler opens the root span
// (query:KIND, tagged with the algorithm), the oracle wrappers record
// exploration and budget spans, the source layer records per-round-trip
// rpc spans with failover/hedge outcome tags, and remote shards stitch
// their server-side spans into the same tree over the X-LCA-Trace
// header (see internal/trace and docs/WIRE.md).
//
// Finished traces land in two bounded rings (internal/trace.Ring):
// sampled and forced traces rotate through the recent ring, slow-query
// traces are force-retained in the slow ring. GET /traces lists the
// recent ring newest-first (?slow=1 lists the slow ring); GET
// /traces/{id} fetches one retained trace by its 16-hex id. Sampled and
// forced answers additionally carry trace_id and trace fields inline.
//
// The tracing decision is made before the coalescing key is formed and
// folded into it, so traced and untraced requests never share a flight
// — an untraced caller is never billed the tracing overhead of a
// stranger's ?trace=1.
//
// With no sampler, no slow-query capture and no ?trace=1, the plane is
// off: every layer's tracer pointer is nil and every instrumentation
// site reduces to one nil test — zero allocations on the probe hot path
// (verified by the conformance tests).

import (
	"net/http"
	"time"

	"lca/internal/oracle"
	"lca/internal/source"
	"lca/internal/trace"
)

// TraceMaxSpans bounds one query's span tree; past it spans are dropped
// and counted (Record.Dropped / Record.Truncated), never reallocated.
const TraceMaxSpans = trace.DefaultMaxSpans

// TracesPath is the trace-plane listing endpoint.
const TracesPath = "/traces"

// WithTraceSample enables head-based sampling: one in every n query
// requests is traced and retained in the recent ring (n == 1 traces
// every request; n <= 0 disables sampling). ?trace=1 forces a trace on
// any server regardless of sampling.
func WithTraceSample(n int) Option {
	return func(s *Server) { s.sampler = trace.NewSampler(n) }
}

// WithSlowQuery enables slow-query capture: every query is traced, and
// one that runs at least threshold (when positive) or charges more than
// probes cell probes (when positive) is force-retained in the slow ring
// with its full span tree. Tracing every query costs span recording on
// the probe path; the per-span cost is a few words and one time read,
// but latency-critical deployments should prefer sampling.
func WithSlowQuery(threshold time.Duration, probes uint64) Option {
	return func(s *Server) {
		if threshold > 0 {
			s.slowDur = threshold
		}
		if probes > 0 {
			s.slowProbes = probes
		}
	}
}

// traceParam parses the optional trace=0|1|false|true selector that
// forces a trace for one request.
func traceParam(r *http.Request) (bool, error) {
	switch raw := r.URL.Query().Get("trace"); raw {
	case "", "0", "false":
		return false, nil
	case "1", "true":
		return true, nil
	default:
		return false, badRequest("parameter \"trace\": %q is not a boolean (want 0/1/false/true)", raw)
	}
}

// traceDecision is one request's tracing verdict, made before the
// coalescing key is formed (key folds it in) and consumed by the flight
// leader when the execution begins.
type traceDecision struct {
	traced bool // the execution records spans
	attach bool // the answer carries the tree (forced or head-sampled)
}

// traceDecision makes the per-request verdict: forced requests and
// sampler admissions attach the tree to the answer; slow-query capture
// traces everything else silently, retaining only threshold violators.
func (s *Server) traceDecision(forced bool) traceDecision {
	if forced || s.sampler.Sample() {
		return traceDecision{traced: true, attach: true}
	}
	if s.slowDur > 0 || s.slowProbes > 0 {
		return traceDecision{traced: true}
	}
	return traceDecision{}
}

// key returns the decision's coalescing-key component.
func (d traceDecision) key() string {
	switch {
	case d.attach:
		return "trace"
	case d.traced:
		return "slowcap"
	default:
		return "off"
	}
}

// queryTrace is one traced execution: the tracer, its root span and the
// wall-clock start. The nil *queryTrace — the untraced execution — is
// valid everywhere and costs a nil test per call.
type queryTrace struct {
	tr     *trace.Tracer
	attach bool
	root   trace.Handle
	start  time.Time
	done   bool
}

// begin opens a traced execution's root span (nil for untraced). The
// root is pushed as the implicit parent, so every span the layers below
// record on this goroutine nests under it.
func (d traceDecision) begin(rootOp string, target int, algo string) *queryTrace {
	if !d.traced {
		return nil
	}
	tr := trace.New(trace.NewID(), TraceMaxSpans)
	qt := &queryTrace{tr: tr, attach: d.attach, start: time.Now()}
	qt.root = tr.Start(rootOp, target)
	tr.Tag(qt.root, "algo="+algo)
	tr.Push(qt.root)
	return qt
}

// tracer returns the execution's tracer, nil when untraced.
func (qt *queryTrace) tracer() *trace.Tracer {
	if qt == nil {
		return nil
	}
	return qt.tr
}

// scoped returns the per-request view of src with the execution's
// tracer attached: requestScoped plus the source.TracerSetter
// capability, so the network layers record rpc and probe spans into
// this query's tree.
func (qt *queryTrace) scoped(src source.Source) source.Source {
	scoped := requestScoped(src)
	if qt != nil {
		if ts, ok := scoped.(source.TracerSetter); ok {
			ts.SetTracer(qt.tr)
		}
	}
	return scoped
}

// finishTrace ends the root span, applies the slow-query verdict and
// retains the record in the rings; it returns the trace id and span
// tree to attach to the answer (empty for slow-capture-only
// executions). Idempotent: the success path calls it to build the
// answer, and a deferred call with the flight's error covers the early
// returns — budget exhaustions and shard failures leave their partial
// tree as evidence, tagged error.
func (s *Server) finishTrace(qt *queryTrace, st oracle.Stats, qerr error) (id string, spans []trace.Span) {
	if qt == nil || qt.done {
		return "", nil
	}
	qt.done = true
	tr := qt.tr
	tr.Pop()
	elapsed := time.Since(qt.start)
	if qerr != nil {
		tr.End(qt.root, "error")
	} else {
		tr.End(qt.root)
	}
	slow := (s.slowDur > 0 && elapsed >= s.slowDur) ||
		(s.slowProbes > 0 && st.Total() > s.slowProbes)
	if !qt.attach && !slow {
		return "", nil
	}
	all := tr.Spans()
	rec := trace.Record{
		ID:         tr.IDString(),
		Start:      qt.start.UnixMicro(),
		DurationUS: elapsed.Microseconds(),
		Probes:     st.Total(),
		RoundTrips: st.RoundTrips,
		Slow:       slow,
		Truncated:  tr.Dropped() > 0,
		Dropped:    tr.Dropped(),
		Spans:      all,
	}
	if len(all) > 0 {
		rec.Root = all[0].Op
	}
	s.traces.Add(rec)
	s.met.traces.Inc()
	if slow {
		s.met.slowQueries.Inc()
	}
	if qt.attach {
		return rec.ID, all
	}
	return "", nil
}

// trace endpoints ------------------------------------------------------

type tracesBody struct {
	Traces []trace.Record `json:"traces"`
	// Captured counts traces ever retained; rotation makes len(Traces) a
	// window, not a total.
	Captured uint64 `json:"captured"`
}

// handleTraces lists the recent ring newest-first; ?slow=1 lists the
// slow ring instead. Like /metrics, the trace plane is operational
// introspection and stays open on tenant-gated servers.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	var recs []trace.Record
	switch raw := r.URL.Query().Get("slow"); raw {
	case "", "0", "false":
		recs = s.traces.Recent()
	case "1", "true":
		recs = s.traces.Slow()
	default:
		s.writeError(w, badRequest("parameter \"slow\": %q is not a boolean (want 0/1/false/true)", raw))
		return
	}
	if recs == nil {
		recs = []trace.Record{}
	}
	writeJSON(w, http.StatusOK, tracesBody{Traces: recs, Captured: s.traces.Added()})
}

// handleTraceGet returns one retained trace by its 16-hex id.
func (s *Server) handleTraceGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rec, ok := s.traces.Get(id)
	if !ok {
		s.writeError(w, notFound("no retained trace %q (the rings rotate; see %s)", id, TracesPath))
		return
	}
	writeJSON(w, http.StatusOK, rec)
}
