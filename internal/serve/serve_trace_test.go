package serve

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"lca/internal/source"
	"lca/internal/trace"
)

// spanTreeConsistent checks the structural invariants of a span tree as
// serialized into answers and /traces records: ids dense from 1, every
// parent either 0 (root level) or an already-seen id, timestamps set.
func spanTreeConsistent(t *testing.T, spans []trace.Span) {
	t.Helper()
	for i, s := range spans {
		if s.ID != uint32(i+1) {
			t.Fatalf("span %d has id %d, want dense ids starting at 1", i, s.ID)
		}
		if s.Parent >= s.ID {
			t.Fatalf("span %d parent %d not an earlier id", s.ID, s.Parent)
		}
		if s.Op == "" {
			t.Fatalf("span %d has empty op", s.ID)
		}
		if s.Start <= 0 || s.Duration < 0 {
			t.Fatalf("span %d times start=%d duration=%d", s.ID, s.Start, s.Duration)
		}
	}
}

// TestTraceWirePropagation is the stitching end-to-end: a sharded query
// through two loopback lcaserve-shaped shards yields ONE span tree —
// the client's query/probe/rpc spans plus the shard-side spans each
// probe response carried back over X-LCA-Trace — and the same tree is
// retrievable from /traces/{id}.
func TestTraceWirePropagation(t *testing.T) {
	shardA := NewFromSource(source.Ring(50), "ring:n=50", 42)
	tsA := httptest.NewServer(shardA.Handler())
	t.Cleanup(tsA.Close)
	shardB := NewFromSource(source.Ring(50), "ring:n=50", 42)
	tsB := httptest.NewServer(shardB.Handler())
	t.Cleanup(tsB.Close)

	spec := "sharded:remote:" + tsA.URL + ";remote:" + tsB.URL
	src, err := source.Parse(spec, 7)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewFromSource(src, spec, 42)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() { _ = srv.Close() })

	var ans struct {
		In         bool         `json:"in"`
		Probes     uint64       `json:"probes"`
		RoundTrips uint64       `json:"round_trips"`
		TraceID    string       `json:"trace_id"`
		Trace      []trace.Span `json:"trace"`
	}
	if code := getJSON(t, ts.URL+"/vertex/mis?v=7&trace=1", &ans); code != 200 {
		t.Fatalf("traced query: status %d", code)
	}
	if len(ans.TraceID) != 16 {
		t.Fatalf("trace_id %q, want 16 hex digits", ans.TraceID)
	}
	if ans.RoundTrips == 0 {
		t.Fatal("sharded query reported zero round trips")
	}
	spanTreeConsistent(t, ans.Trace)

	if ans.Trace[0].Op != "query:vertex" || ans.Trace[0].Parent != 0 {
		t.Fatalf("first span = %+v, want root query:vertex", ans.Trace[0])
	}
	ops := make(map[uint32]string, len(ans.Trace))
	for _, s := range ans.Trace {
		ops[s.ID] = s.Op
	}
	var rpcs, shards int
	for _, s := range ans.Trace {
		switch {
		case strings.HasPrefix(s.Op, "rpc:"):
			rpcs++
		case strings.HasPrefix(s.Op, "shard:"):
			shards++
			// The wire-stitched shard span must hang under the client rpc
			// span for the round trip that carried it back.
			if !strings.HasPrefix(ops[s.Parent], "rpc:") {
				t.Fatalf("shard span %+v parented under %q, want an rpc: span", s, ops[s.Parent])
			}
		}
	}
	if rpcs == 0 {
		t.Fatal("stitched tree has no rpc: spans")
	}
	if shards == 0 {
		t.Fatal("stitched tree has no shard-side spans; X-LCA-Trace did not propagate")
	}

	// The forced trace is retained: /traces lists it and /traces/{id}
	// returns the same tree.
	var rec trace.Record
	if code := getJSON(t, ts.URL+TracesPath+"/"+ans.TraceID, &rec); code != 200 {
		t.Fatalf("GET %s/%s: status %d", TracesPath, ans.TraceID, code)
	}
	if rec.ID != ans.TraceID || len(rec.Spans) != len(ans.Trace) {
		t.Fatalf("retained record id=%q spans=%d, answer id=%q spans=%d",
			rec.ID, len(rec.Spans), ans.TraceID, len(ans.Trace))
	}
	if rec.Root != "query:vertex" || rec.Probes != ans.Probes || rec.RoundTrips != ans.RoundTrips {
		t.Fatalf("record %+v does not match answer (probes=%d round_trips=%d)", rec, ans.Probes, ans.RoundTrips)
	}
	spanTreeConsistent(t, rec.Spans)

	var listing struct {
		Traces   []trace.Record `json:"traces"`
		Captured uint64         `json:"captured"`
	}
	if code := getJSON(t, ts.URL+TracesPath, &listing); code != 200 {
		t.Fatalf("GET %s: status %d", TracesPath, code)
	}
	if listing.Captured == 0 || len(listing.Traces) == 0 {
		t.Fatalf("listing captured=%d traces=%d, want the forced trace retained", listing.Captured, len(listing.Traces))
	}
	if listing.Traces[0].ID != ans.TraceID {
		t.Fatalf("newest listed trace %q, want %q", listing.Traces[0].ID, ans.TraceID)
	}
}

// TestUntracedAnswerOmitsTrace: without ?trace=1 and with no sampler
// configured, answers carry no trace fields and nothing is retained.
func TestUntracedAnswerOmitsTrace(t *testing.T) {
	srv := NewFromSource(source.Ring(64), "ring:n=64", 42)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() { _ = srv.Close() })

	var raw map[string]any
	if code := getJSON(t, ts.URL+"/vertex/mis?v=3", &raw); code != 200 {
		t.Fatalf("query: status %d", code)
	}
	if _, ok := raw["trace_id"]; ok {
		t.Fatal("untraced answer carries trace_id")
	}
	if _, ok := raw["trace"]; ok {
		t.Fatal("untraced answer carries a span tree")
	}
	var listing struct {
		Traces   []trace.Record `json:"traces"`
		Captured uint64         `json:"captured"`
	}
	if code := getJSON(t, ts.URL+TracesPath, &listing); code != 200 {
		t.Fatalf("GET %s: status %d", TracesPath, code)
	}
	if listing.Captured != 0 || len(listing.Traces) != 0 {
		t.Fatalf("untraced server retained %d traces", listing.Captured)
	}
}

// TestSlowQueryCapture: with a slow-probes threshold every query is
// traced behind the scenes, over-threshold ones land in the slow ring,
// and un-forced answers still omit the tree (capture is server-side).
func TestSlowQueryCapture(t *testing.T) {
	srv := NewFromSource(source.Ring(64), "ring:n=64", 42,
		WithSlowQuery(0, 1)) // >1 probe = slow: everything qualifies
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() { _ = srv.Close() })

	var raw map[string]any
	if code := getJSON(t, ts.URL+"/vertex/mis?v=3", &raw); code != 200 {
		t.Fatalf("query: status %d", code)
	}
	if _, ok := raw["trace_id"]; ok {
		t.Fatal("slow-capture answer carries trace_id; capture must be server-side only")
	}
	var listing struct {
		Traces []trace.Record `json:"traces"`
	}
	if code := getJSON(t, ts.URL+TracesPath+"?slow=1", &listing); code != 200 {
		t.Fatalf("GET %s?slow=1: status %d", TracesPath, code)
	}
	if len(listing.Traces) != 1 {
		t.Fatalf("slow ring holds %d traces, want 1", len(listing.Traces))
	}
	rec := listing.Traces[0]
	if !rec.Slow || rec.Probes <= 1 || rec.Root != "query:vertex" {
		t.Fatalf("slow record %+v, want slow vertex query with >1 probes", rec)
	}
	spanTreeConsistent(t, rec.Spans)
	if dur := time.Duration(rec.DurationUS) * time.Microsecond; dur < 0 {
		t.Fatalf("negative duration %v", dur)
	}
}
