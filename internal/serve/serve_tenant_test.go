package serve

// Serving-tier tests: tenant auth, admission control, per-tenant budget
// exhaustion end-to-end, request coalescing (charged once), the metrics
// plane and request-ID correlation. Run under -race in CI.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"lca/internal/gen"
	"lca/internal/metrics"
	"lca/internal/source"
)

// getJSONAuth is getJSON with a tenant token header.
func getJSONAuth(t *testing.T, url, token string, into any) int {
	t.Helper()
	req, err := http.NewRequest("GET", url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatalf("decoding %s: %v", url, err)
	}
	return resp.StatusCode
}

func newTenantServer(t *testing.T, tenants ...Tenant) (*httptest.Server, *Server) {
	t.Helper()
	g := gen.Gnp(300, 0.05, 7)
	srv := New(g, 42, WithTenants(tenants...))
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() { _ = srv.Close() })
	return ts, srv
}

func TestTenantAuthRequired(t *testing.T) {
	ts, _ := newTenantServer(t, Tenant{Name: "ops", Token: "sekrit"})
	var envelope errorBody

	if code := getJSONAuth(t, ts.URL+"/vertex/mis?v=3", "", &envelope); code != 401 {
		t.Fatalf("tokenless query: status %d, want 401 (%+v)", code, envelope)
	}
	if envelope.Status != 401 || envelope.Error == "" || envelope.RequestID == "" {
		t.Fatalf("401 envelope incomplete: %+v", envelope)
	}
	if code := getJSONAuth(t, ts.URL+"/vertex/mis?v=3", "wrong", &envelope); code != 401 {
		t.Fatalf("bad token: status %d, want 401", code)
	}
	var ans vertexAnswer
	if code := getJSONAuth(t, ts.URL+"/vertex/mis?v=3", "sekrit", &ans); code != 200 {
		t.Fatalf("valid token: status %d, want 200", code)
	}

	// The X-LCA-Token header form works too.
	req, _ := http.NewRequest("GET", ts.URL+"/vertex/mis?v=3", nil)
	req.Header.Set(TokenHeader, "sekrit")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("%s form: status %d, want 200", TokenHeader, resp.StatusCode)
	}

	// Open plane stays open: discovery, health and metrics need no token.
	for _, path := range []string{"/healthz", "/algos", "/sources", MetricsPath} {
		var body any
		if code := getJSONAuth(t, ts.URL+path, "", &body); code != 200 {
			t.Errorf("%s: status %d without token, want 200 (open plane)", path, code)
		}
	}
}

// TestBudgetExhaustionEndToEnd is the acceptance scenario: a tenant with
// a tiny probe budget is rejected with a 429 envelope while an unlimited
// tenant on the same server keeps answering — concurrently, under -race.
func TestBudgetExhaustionEndToEnd(t *testing.T) {
	ts, srv := newTenantServer(t,
		Tenant{Name: "capped", Token: "tiny", ProbeBudget: 1},
		Tenant{Name: "free", Token: "open"},
	)
	const rounds = 12
	var wg sync.WaitGroup
	codes := make([]int, 2*rounds)
	envelopes := make([]errorBody, rounds)
	for i := 0; i < rounds; i++ {
		wg.Add(2)
		go func(i int) {
			defer wg.Done()
			codes[2*i] = getJSONAuth(t, fmt.Sprintf("%s/vertex/mis?v=%d", ts.URL, i), "tiny", &envelopes[i])
		}(i)
		go func(i int) {
			defer wg.Done()
			var ans vertexAnswer
			codes[2*i+1] = getJSONAuth(t, fmt.Sprintf("%s/vertex/mis?v=%d", ts.URL, i), "open", &ans)
		}(i)
	}
	wg.Wait()
	for i := 0; i < rounds; i++ {
		if codes[2*i] != 429 {
			t.Errorf("capped tenant query %d: status %d, want 429", i, codes[2*i])
		}
		if envelopes[i].Status != 429 || envelopes[i].RequestID == "" {
			t.Errorf("429 envelope incomplete: %+v", envelopes[i])
		}
		if codes[2*i+1] != 200 {
			t.Errorf("unlimited tenant query %d: status %d, want 200", i, codes[2*i+1])
		}
	}
	if got := srv.Metrics().Counter("tenant_budget_rejected_total{tenant=capped}").Value(); got != rounds {
		t.Errorf("budget rejections for capped = %d, want %d", got, rounds)
	}
	if got := srv.Metrics().Counter("tenant_budget_rejected_total{tenant=free}").Value(); got != 0 {
		t.Errorf("budget rejections for free = %d, want 0", got)
	}
}

func TestAdmissionRateLimit(t *testing.T) {
	ts, srv := newTenantServer(t,
		Tenant{Name: "slow", Token: "drip", QPS: 0.001, Burst: 2},
		Tenant{Name: "fast", Token: "firehose"},
	)
	codes := make([]int, 4)
	for i := range codes {
		var body json.RawMessage
		codes[i] = getJSONAuth(t, ts.URL+"/vertex/mis?v=5", "drip", &body)
	}
	// Burst of 2 admitted, the rest rejected (refill is ~0 at 0.001 qps).
	if codes[0] != 200 || codes[1] != 200 || codes[2] != 429 || codes[3] != 429 {
		t.Fatalf("admission codes = %v, want [200 200 429 429]", codes)
	}
	var ans vertexAnswer
	if code := getJSONAuth(t, ts.URL+"/vertex/mis?v=5", "firehose", &ans); code != 200 {
		t.Fatalf("unlimited tenant blocked by another tenant's bucket: %d", code)
	}
	if got := srv.Metrics().Counter("tenant_admission_rejected_total{tenant=slow}").Value(); got != 2 {
		t.Errorf("admission rejections = %d, want 2", got)
	}
}

// blockingSource wedges every probe until released, so a test can pile
// identical requests onto one in-flight execution deterministically.
type blockingSource struct {
	source.Source
	release chan struct{}
}

func (b *blockingSource) Degree(v int) int {
	<-b.release
	return b.Source.Degree(v)
}

func (b *blockingSource) Neighbor(v, i int) int {
	<-b.release
	return b.Source.Neighbor(v, i)
}

func (b *blockingSource) Adjacency(u, v int) int {
	<-b.release
	return b.Source.Adjacency(u, v)
}

// TestCoalescingChargedOnce: concurrent identical queries share one
// oracle execution — the metrics plane records one execution's probes,
// N-1 coalesced waiters, and every caller gets the identical answer.
func TestCoalescingChargedOnce(t *testing.T) {
	blocked := &blockingSource{Source: source.Ring(100), release: make(chan struct{})}
	srv := NewFromSource(blocked, "ring:n=100 (blocking)", 42)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const dup = 8
	var wg sync.WaitGroup
	answers := make([]vertexAnswer, dup)
	codes := make([]int, dup)
	for i := 0; i < dup; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i] = getJSON(t, ts.URL+"/vertex/mis?v=7", &answers[i])
		}(i)
	}
	// Wait until all duplicates joined the leader's flight, then release
	// the probes.
	coalesced := srv.Metrics().Counter("serve_coalesced_total")
	deadline := time.Now().Add(5 * time.Second)
	for coalesced.Value() < dup-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d requests coalesced, want %d", coalesced.Value(), dup-1)
		}
		time.Sleep(time.Millisecond)
	}
	close(blocked.release)
	wg.Wait()

	for i := 0; i < dup; i++ {
		if codes[i] != 200 {
			t.Fatalf("request %d: status %d", i, codes[i])
		}
		if !reflect.DeepEqual(answers[i], answers[0]) {
			t.Fatalf("coalesced answers diverge: %+v vs %+v", answers[i], answers[0])
		}
	}
	if answers[0].Probes == 0 {
		t.Fatal("query reports zero probes")
	}
	// Charged once: the server-wide probe total is one execution's count,
	// not dup executions'.
	if got := srv.Metrics().Counter("serve_probes_total").Value(); got != answers[0].Probes {
		t.Errorf("serve_probes_total = %d, want one execution's %d", got, answers[0].Probes)
	}
	if got := coalesced.Value(); got != dup-1 {
		t.Errorf("serve_coalesced_total = %d, want %d", got, dup-1)
	}
	if srv.flights.inFlight() != 0 {
		t.Errorf("flight table not drained: %d keys in flight", srv.flights.inFlight())
	}
	// All dup requests observed on the request plane.
	if got := srv.Metrics().Counter("serve_queries_total{kind=vertex}").Value(); got != dup {
		t.Errorf("serve_queries_total{kind=vertex} = %d, want %d", got, dup)
	}
}

// TestMetricsEndpoint: a query burst shows up as non-zero counters and
// latency/probe histograms on GET /metrics, in JSON and text form.
func TestMetricsEndpoint(t *testing.T) {
	g := gen.Gnp(200, 0.1, 7)
	srv := New(g, 42)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for v := 0; v < 10; v++ {
		var ans vertexAnswer
		if code := getJSON(t, fmt.Sprintf("%s/vertex/mis?v=%d", ts.URL, v), &ans); code != 200 {
			t.Fatalf("query %d: status %d", v, code)
		}
	}
	var snap metrics.Snapshot
	if code := getJSON(t, ts.URL+MetricsPath, &snap); code != 200 {
		t.Fatalf("%s: status %d", MetricsPath, code)
	}
	if got := snap.Counters["serve_queries_total{kind=vertex}"]; got != 10 {
		t.Errorf("queries counter = %d, want 10", got)
	}
	if got := snap.Counters["serve_probes_total"]; got == 0 {
		t.Error("probe counter is zero after a query burst")
	}
	lat := snap.Histograms["serve_query_latency_us{kind=vertex}"]
	if lat.Count != 10 || lat.P99 == 0 {
		t.Errorf("latency histogram empty: %+v", lat)
	}
	probes := snap.Histograms["serve_probes_per_query"]
	if probes.Count != 10 || probes.Mean == 0 {
		t.Errorf("probes-per-query histogram empty: %+v", probes)
	}

	resp, err := http.Get(ts.URL + MetricsPath + "?format=text")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var text [4096]byte
	n, _ := resp.Body.Read(text[:])
	if resp.StatusCode != 200 || n == 0 {
		t.Fatalf("text export: status %d, %d bytes", resp.StatusCode, n)
	}
}

// TestRequestIDPropagation: client-supplied IDs echo back, absent ones
// are generated, and error envelopes embed the ID.
func TestRequestIDPropagation(t *testing.T) {
	ts, done := newTestServer(t)
	defer done()

	req, _ := http.NewRequest("GET", ts.URL+"/vertex/mis?v=3", nil)
	req.Header.Set(RequestIDHeader, "load-42.a")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(RequestIDHeader); got != "load-42.a" {
		t.Fatalf("client request ID not echoed: %q", got)
	}

	resp, err = http.Get(ts.URL + "/vertex/mis?v=999999")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	headerID := resp.Header.Get(RequestIDHeader)
	if headerID == "" {
		t.Fatal("no generated request ID on error response")
	}
	var envelope errorBody
	if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil {
		t.Fatal(err)
	}
	if envelope.RequestID != headerID {
		t.Fatalf("envelope request_id %q != header %q", envelope.RequestID, headerID)
	}

	// Unsafe client IDs (injection into logs/headers) are replaced.
	req, _ = http.NewRequest("GET", ts.URL+"/healthz", nil)
	req.Header.Set(RequestIDHeader, "bad id with spaces")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(RequestIDHeader); got == "" || got == "bad id with spaces" {
		t.Fatalf("unsafe request ID not replaced: %q", got)
	}
}

func TestLoadTenantsFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tenants.json")
	body := `[
	  {"name": "capped", "token": "t1", "probe_budget": 500, "round_trip_budget": 32, "qps": 100, "burst": 200},
	  {"name": "free", "token": "t2"}
	]`
	if err := os.WriteFile(path, []byte(body), 0o600); err != nil {
		t.Fatal(err)
	}
	ts, err := LoadTenantsFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 2 || ts[0].ProbeBudget != 500 || ts[0].RoundTripBudget != 32 || ts[0].QPS != 100 || ts[1].Name != "free" {
		t.Fatalf("parsed tenants wrong: %+v", ts)
	}
	if _, err := LoadTenantsFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file must error")
	}
}

// TestRoundTripBudget429: a tenant with a tiny round-trip budget is
// rejected over a network source while the probe-identical unlimited
// tenant proceeds.
func TestRoundTripBudget429(t *testing.T) {
	shard := httptest.NewServer(source.NewProbeHandler(source.Ring(400)))
	t.Cleanup(shard.Close)
	remote, err := source.OpenRemote(shard.URL)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewFromSource(remote, "remote:"+shard.URL, 42,
		WithTenants(
			Tenant{Name: "wired", Token: "rt1", RoundTripBudget: 1},
			Tenant{Name: "free", Token: "rt2"},
		))
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() { _ = srv.Close() })

	var envelope errorBody
	if code := getJSONAuth(t, ts.URL+"/vertex/mis?v=57", "rt1", &envelope); code != 429 {
		t.Fatalf("round-trip-capped tenant: status %d, want 429 (%+v)", code, envelope)
	}
	var ans vertexAnswer
	if code := getJSONAuth(t, ts.URL+"/vertex/mis?v=57", "rt2", &ans); code != 200 || ans.RoundTrips <= 1 {
		t.Fatalf("unlimited tenant: status %d, round_trips %d (want 200 and >1)", code, ans.RoundTrips)
	}
}
