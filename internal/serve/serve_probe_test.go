package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"

	"lca/internal/gen"
	"lca/internal/source"
)

// TestProbeEndpoints drives the probe wire protocol as mounted on the
// query server: any lcaserve instance doubles as a shard.
func TestProbeEndpoints(t *testing.T) {
	g := gen.Gnp(80, 0.1, 7)
	ts := httptest.NewServer(New(g, 42).Handler())
	defer ts.Close()

	var meta struct {
		N         int  `json:"n"`
		M         *int `json:"m"`
		MaxDegree *int `json:"max_degree"`
	}
	if code := getJSON(t, ts.URL+"/probe/meta", &meta); code != 200 {
		t.Fatalf("probe/meta: status %d", code)
	}
	if meta.N != 80 || meta.M == nil || *meta.M != g.M() || meta.MaxDegree == nil || *meta.MaxDegree != g.MaxDegree() {
		t.Fatalf("probe/meta = %+v, want n=80 m=%d maxdeg=%d", meta, g.M(), g.MaxDegree())
	}

	var ans struct {
		Answer int `json:"answer"`
	}
	if code := getJSON(t, fmt.Sprintf("%s/probe?op=degree&a=5", ts.URL), &ans); code != 200 || ans.Answer != g.Degree(5) {
		t.Fatalf("probe degree: %d %+v, want %d", code, ans, g.Degree(5))
	}
	w := g.Neighbor(5, 0)
	if code := getJSON(t, fmt.Sprintf("%s/probe?op=neighbor&a=5&b=0", ts.URL), &ans); code != 200 || ans.Answer != w {
		t.Fatalf("probe neighbor: %d %+v, want %d", code, ans, w)
	}
	if code := getJSON(t, fmt.Sprintf("%s/probe?op=adjacency&a=5&b=%d", ts.URL, w), &ans); code != 200 || ans.Answer != 0 {
		t.Fatalf("probe adjacency: %d %+v, want 0", code, ans)
	}

	// Error envelope on protocol violations.
	var e errorBody
	if code := getJSON(t, ts.URL+"/probe?op=warp&a=1", &e); code != 400 || e.Status != 400 {
		t.Fatalf("unknown op: %d %+v", code, e)
	}
	if code := getJSON(t, ts.URL+"/probe?op=degree&a=999", &e); code != 400 {
		t.Fatalf("out-of-range vertex: %d %+v", code, e)
	}
	if code := getJSON(t, ts.URL+"/probe?op=degree&a=x", &e); code != 400 {
		t.Fatalf("non-integer vertex: %d %+v", code, e)
	}
	// A forgotten neighbor index must 400, not silently read as b=0.
	if code := getJSON(t, ts.URL+"/probe?op=neighbor&a=5", &e); code != 400 {
		t.Fatalf("neighbor without b: %d %+v", code, e)
	}
	if code := getJSON(t, ts.URL+"/probe?op=adjacency&a=5", &e); code != 400 {
		t.Fatalf("adjacency without b: %d %+v", code, e)
	}
	if code := getJSON(t, ts.URL+"/probe?op=degree&a=1&source=nope", &e); code != 404 {
		t.Fatalf("unknown source: %d %+v", code, e)
	}
}

// TestProbeBatchEndpoint checks the batched POST form, including the
// index alignment and malformed-body handling.
func TestProbeBatchEndpoint(t *testing.T) {
	g := gen.Gnp(60, 0.1, 3)
	ts := httptest.NewServer(New(g, 42).Handler())
	defer ts.Close()
	w5 := g.Neighbor(5, 0)
	body := fmt.Sprintf(`{"probes":[{"op":"degree","a":5},{"op":"neighbor","a":5,"b":0},{"op":"adjacency","a":5,"b":%d},{"op":"neighbor","a":5,"b":9999}]}`, w5)
	resp, err := http.Post(ts.URL+"/probe", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		Answers []int `json:"answers"`
	}
	if err := jsonDecode(resp, &out); err != nil {
		t.Fatal(err)
	}
	want := []int{g.Degree(5), w5, 0, -1}
	if len(out.Answers) != len(want) {
		t.Fatalf("answers = %v, want %v", out.Answers, want)
	}
	for i := range want {
		if out.Answers[i] != want[i] {
			t.Fatalf("answer %d = %d, want %d", i, out.Answers[i], want[i])
		}
	}
	resp, err = http.Post(ts.URL+"/probe", "application/json", bytes.NewReader([]byte("{nope")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("malformed batch: status %d, want 400", resp.StatusCode)
	}
}

// TestServeAsShardEndToEnd is the serve-side acceptance loop: a second
// server's queries probe the first over HTTP via a remote: spec, and the
// answers match querying the backing source directly — replicas sharing
// a seed serve one consistent solution regardless of where probes land.
func TestServeAsShardEndToEnd(t *testing.T) {
	backing, err := source.Parse("circulant:n=400,d=6", 7)
	if err != nil {
		t.Fatal(err)
	}
	shard := httptest.NewServer(NewFromSource(backing, "circulant:n=400,d=6", 42).Handler())
	defer shard.Close()

	front := NewFromSource(mustParse(t, "remote:"+shard.URL), "remote", 42)
	defer front.Close()
	fts := httptest.NewServer(front.Handler())
	defer fts.Close()

	direct := httptest.NewServer(NewFromSource(backing, "direct", 42).Handler())
	defer direct.Close()

	for v := 0; v < 40; v += 7 {
		var remoteAns, directAns vertexAnswer
		if code := getJSON(t, fmt.Sprintf("%s/vertex/mis?v=%d", fts.URL, v), &remoteAns); code != 200 {
			t.Fatalf("remote-backed query v=%d: status %d", v, code)
		}
		if code := getJSON(t, fmt.Sprintf("%s/vertex/mis?v=%d", direct.URL, v), &directAns); code != 200 {
			t.Fatalf("direct query v=%d: status %d", v, code)
		}
		if remoteAns.In != directAns.In {
			t.Fatalf("v=%d: remote-backed answer %v != direct answer %v", v, remoteAns.In, directAns.In)
		}
		if remoteAns.Probes != directAns.Probes {
			t.Fatalf("v=%d: remote probing cost %d probes, direct %d — the protocol must be transparent",
				v, remoteAns.Probes, directAns.Probes)
		}
	}
}

// TestRemoteShardDown502 pins the failure mode: when the shard behind a
// remote source disappears, queries answer 502 envelopes, not crashed
// connections.
func TestRemoteShardDown502(t *testing.T) {
	backing := source.Ring(100)
	shard := httptest.NewServer(source.NewProbeHandler(backing))
	remote, err := source.OpenRemote(shard.URL, source.WithRetries(0))
	if err != nil {
		t.Fatal(err)
	}
	front := NewFromSource(remote, "remote", 42)
	fts := httptest.NewServer(front.Handler())
	defer fts.Close()
	shard.Close() // the fleet loses its shard

	var e errorBody
	if code := getJSON(t, fts.URL+"/vertex/mis?v=5", &e); code != http.StatusBadGateway {
		t.Fatalf("query over a dead shard: status %d (%+v), want 502", code, e)
	}
}

// TestServerClose verifies teardown reaches every named source.
func TestServerClose(t *testing.T) {
	s := NewFromSource(source.Ring(10), "ring:n=10", 42)
	ts := httptest.NewServer(s.Handler())
	u := fmt.Sprintf("%s/sources?name=extra&spec=%s", ts.URL, url.QueryEscape("ring:n=20"))
	resp, err := http.Post(u, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 201 {
		t.Fatalf("open source: status %d", resp.StatusCode)
	}
	ts.Close()
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func mustParse(t *testing.T, spec string) source.Source {
	t.Helper()
	src, err := source.Parse(spec, 7)
	if err != nil {
		t.Fatal(err)
	}
	return src
}

func jsonDecode(resp *http.Response, into any) error {
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(into)
}
