package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"lca/internal/gen"
	"lca/internal/source"
)

func newTestServer(t *testing.T) (*httptest.Server, func()) {
	t.Helper()
	g := gen.Gnp(200, 0.1, 7)
	ts := httptest.NewServer(New(g, 42).Handler())
	return ts, ts.Close
}

func getJSON(t *testing.T, url string, into any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatalf("decoding %s: %v", url, err)
	}
	return resp.StatusCode
}

func TestHealthAndGraph(t *testing.T) {
	ts, done := newTestServer(t)
	defer done()
	var health map[string]string
	if code := getJSON(t, ts.URL+"/healthz", &health); code != 200 || health["status"] != "ok" {
		t.Fatalf("healthz: %d %v", code, health)
	}
	var info graphInfo
	if code := getJSON(t, ts.URL+"/graph", &info); code != 200 || info.N != 200 || info.M == 0 {
		t.Fatalf("graph info: %d %+v", code, info)
	}
}

func TestAlgosDiscovery(t *testing.T) {
	ts, done := newTestServer(t)
	defer done()
	var algos []algoInfo
	if code := getJSON(t, ts.URL+"/algos", &algos); code != 200 {
		t.Fatalf("algos: status %d", code)
	}
	byName := map[string]algoInfo{}
	for _, a := range algos {
		byName[a.Name] = a
	}
	for name, kind := range map[string]string{
		"spanner3": "edge", "spanner5": "edge", "spannerk": "edge",
		"matching": "edge", "mis": "vertex", "vertexcover": "vertex",
		"coloring": "label",
	} {
		a, ok := byName[name]
		if !ok {
			t.Errorf("algorithm %q missing from /algos", name)
			continue
		}
		if a.Kind != kind {
			t.Errorf("%s: kind %q, want %q", name, a.Kind, kind)
		}
	}
	if k := byName["spannerk"]; len(k.Params) == 0 {
		t.Error("spannerk lists no parameters")
	}
}

// TestEveryAlgoQueryable drives each /algos entry through its kind's
// endpoint: a registry entry must be queryable with zero serve-side edits.
func TestEveryAlgoQueryable(t *testing.T) {
	g := gen.Gnp(120, 0.1, 7)
	ts := httptest.NewServer(New(g, 42).Handler())
	defer ts.Close()
	var algos []algoInfo
	if code := getJSON(t, ts.URL+"/algos", &algos); code != 200 {
		t.Fatalf("algos: status %d", code)
	}
	if len(algos) < 7 {
		t.Fatalf("only %d algorithms registered", len(algos))
	}
	e := g.Edges()[0]
	for _, a := range algos {
		var url string
		switch a.Kind {
		case "edge":
			url = fmt.Sprintf("%s/edge/%s?u=%d&v=%d", ts.URL, a.Name, e.U, e.V)
		case "vertex":
			url = fmt.Sprintf("%s/vertex/%s?v=3", ts.URL, a.Name)
		case "label":
			url = fmt.Sprintf("%s/label/%s?v=3", ts.URL, a.Name)
		default:
			t.Errorf("%s: unknown kind %q", a.Name, a.Kind)
			continue
		}
		var ans map[string]any
		if code := getJSON(t, url, &ans); code != 200 {
			t.Errorf("%s: status %d (%v)", a.Name, code, ans)
		}
	}
}

func TestEdgeEndpoint(t *testing.T) {
	g := gen.Gnp(200, 0.1, 7)
	ts := httptest.NewServer(New(g, 42).Handler())
	defer ts.Close()
	e := g.Edges()[0]
	var ans edgeAnswer
	url := fmt.Sprintf("%s/edge/spanner3?u=%d&v=%d", ts.URL, e.U, e.V)
	if code := getJSON(t, url, &ans); code != 200 {
		t.Fatalf("status %d", code)
	}
	if ans.U != e.U || ans.V != e.V || ans.Probes == 0 || ans.Algo != "spanner3" {
		t.Fatalf("answer %+v", ans)
	}
	// Consistency across requests (fresh instances, same seed).
	var again edgeAnswer
	getJSON(t, url, &again)
	if again.In != ans.In {
		t.Fatal("two requests for the same edge disagreed")
	}
	// Aliases resolve to the same algorithm.
	var aliased edgeAnswer
	if code := getJSON(t, fmt.Sprintf("%s/edge/3?u=%d&v=%d", ts.URL, e.U, e.V), &aliased); code != 200 {
		t.Fatalf("alias status %d", code)
	}
	if aliased.In != ans.In || aliased.Algo != "spanner3" {
		t.Fatalf("alias answer %+v, want consistent with %+v", aliased, ans)
	}
}

func TestEndpointErrors(t *testing.T) {
	ts, done := newTestServer(t)
	defer done()
	cases := []struct {
		path string
		want int
	}{
		{"/edge/nosuch?u=0&v=1", 404},           // unknown algorithm
		{"/edge/mis?u=0&v=1", 404},              // kind mismatch: mis is vertex-kind
		{"/edge/spanner3?u=0", 400},             // missing v
		{"/edge/spanner3?u=0&v=betty", 400},     // non-numeric vertex
		{"/edge/spanner3?u=0&v=99999", 400},     // out of range
		{"/edge/spannerk?u=0&v=1&k=zero", 400},  // malformed parameter value
		{"/edge/spannerk?u=0&v=1&k=0", 400},     // out-of-range parameter value
		{"/edge/spanner3?u=0&v=1&bogus=1", 400}, // unknown parameter
		{"/vertex/mis", 400},                    // missing v
		{"/vertex/spanner3?v=1", 404},           // kind mismatch
		{"/label/coloring?v=-1", 400},           // negative vertex
		{"/estimate/nothing?samples=10", 404},   // unknown algorithm
		{"/estimate/coloring?samples=10", 404},  // label kind not estimable
		{"/estimate/mis?samples=-3", 400},       // bad samples
		{"/estimate/mis?samples=zebra", 400},    // non-numeric samples
	}
	for _, c := range cases {
		var body errorBody
		if code := getJSON(t, ts.URL+c.path, &body); code != c.want {
			t.Errorf("%s: status %d, want %d (%+v)", c.path, code, c.want, body)
		} else if body.Error == "" || body.Status != c.want {
			t.Errorf("%s: malformed error envelope %+v", c.path, body)
		}
	}
}

func TestEdgeNotAnEdge(t *testing.T) {
	g := gen.Path(10) // (0,5) is not an edge
	ts := httptest.NewServer(New(g, 1).Handler())
	defer ts.Close()
	var body errorBody
	if code := getJSON(t, ts.URL+"/edge/spanner3?u=0&v=5", &body); code != 400 {
		t.Fatalf("non-edge query returned %d", code)
	}
}

func TestVertexAndLabelEndpoints(t *testing.T) {
	ts, done := newTestServer(t)
	defer done()
	var mis vertexAnswer
	if code := getJSON(t, ts.URL+"/vertex/mis?v=5", &mis); code != 200 || mis.Algo != "mis" {
		t.Fatalf("mis: %d %+v", code, mis)
	}
	var color labelAnswer
	if code := getJSON(t, ts.URL+"/label/coloring?v=5", &color); code != 200 || color.Label < 0 {
		t.Fatalf("coloring: %d %+v", code, color)
	}
}

func TestParamPassing(t *testing.T) {
	g := gen.Torus(12, 12)
	ts := httptest.NewServer(New(g, 5).Handler())
	defer ts.Close()
	// Same edge under different k must be answered (answers may differ;
	// both requests must succeed and be internally consistent).
	e := g.Edges()[0]
	for _, k := range []int{2, 4} {
		url := fmt.Sprintf("%s/edge/spannerk?u=%d&v=%d&k=%d", ts.URL, e.U, e.V, k)
		var ans, again edgeAnswer
		if code := getJSON(t, url, &ans); code != 200 {
			t.Fatalf("k=%d: status %d", k, code)
		}
		getJSON(t, url, &again)
		if ans.In != again.In {
			t.Fatalf("k=%d: inconsistent answers", k)
		}
	}
	// rounds is declared by approxmatching only.
	url := fmt.Sprintf("%s/edge/approxmatching?u=%d&v=%d&rounds=1", ts.URL, e.U, e.V)
	var ans edgeAnswer
	if code := getJSON(t, url, &ans); code != 200 {
		t.Fatalf("approxmatching: status %d", code)
	}
}

func TestMatchingEndpointConsistent(t *testing.T) {
	g := gen.Torus(8, 8)
	ts := httptest.NewServer(New(g, 3).Handler())
	defer ts.Close()
	// Query all edges incident to vertex 0; at most one can be matched.
	matched := 0
	for i := 0; i < g.Degree(0); i++ {
		w := g.Neighbor(0, i)
		var ans edgeAnswer
		getJSON(t, fmt.Sprintf("%s/edge/matching?u=0&v=%d", ts.URL, w), &ans)
		if ans.In {
			matched++
		}
	}
	if matched > 1 {
		t.Fatalf("vertex 0 matched %d times", matched)
	}
}

func TestEstimateEndpoint(t *testing.T) {
	ts, done := newTestServer(t)
	defer done()
	for _, algo := range []string{"mis", "vertexcover", "spanner3", "matching"} {
		var ans estimateAnswer
		if code := getJSON(t, ts.URL+"/estimate/"+algo+"?samples=100", &ans); code != 200 {
			t.Fatalf("%s: status %d", algo, code)
		}
		if ans.Fraction < 0 || ans.Fraction > 1 || ans.Samples != 100 {
			t.Fatalf("%s: %+v", algo, ans)
		}
	}
}

func TestConcurrentRequestsConsistent(t *testing.T) {
	g := gen.Gnp(150, 0.15, 9)
	ts := httptest.NewServer(New(g, 11).Handler())
	defer ts.Close()
	e := g.Edges()[3]
	url := fmt.Sprintf("%s/edge/spanner3?u=%d&v=%d", ts.URL, e.U, e.V)
	const goroutines = 16
	answers := make([]bool, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Get(url)
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			var ans edgeAnswer
			if err := json.NewDecoder(resp.Body).Decode(&ans); err != nil {
				t.Error(err)
				return
			}
			answers[i] = ans.In
		}(i)
	}
	wg.Wait()
	for i := 1; i < goroutines; i++ {
		if answers[i] != answers[0] {
			t.Fatal("concurrent requests disagreed on the same edge")
		}
	}
}

// TestOpenSourceBySpec drives the open-by-spec endpoint: open an implicit
// billion-vertex ring, list it, query it by name — all against a server
// started on an ordinary in-memory graph.
func TestOpenSourceBySpec(t *testing.T) {
	ts, done := newTestServer(t)
	defer done()

	resp, err := http.Post(ts.URL+"/sources?name=big&spec=ring:n=1e9", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var opened sourceInfo
	if err := json.NewDecoder(resp.Body).Decode(&opened); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated || opened.N != 1_000_000_000 {
		t.Fatalf("open: %d %+v", resp.StatusCode, opened)
	}

	// Duplicate name conflicts.
	resp, err = http.Post(ts.URL+"/sources?name=big&spec=ring:n=10", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate open: status %d, want 409", resp.StatusCode)
	}

	// Bad specs are 400s.
	resp, err = http.Post(ts.URL+"/sources?name=x&spec=warp:n=10", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad spec: status %d, want 400", resp.StatusCode)
	}

	var listing sourcesBody
	if code := getJSON(t, ts.URL+"/sources", &listing); code != 200 {
		t.Fatalf("/sources: status %d", code)
	}
	if len(listing.Sources) != 2 || len(listing.Families) == 0 {
		t.Fatalf("/sources listing: %+v", listing)
	}

	// Point queries against the opened source, deep inside the ring.
	var va vertexAnswer
	if code := getJSON(t, ts.URL+"/vertex/mis?v=123456789&source=big", &va); code != 200 {
		t.Fatalf("vertex query on named source: status %d", code)
	}
	var ea edgeAnswer
	if code := getJSON(t, ts.URL+"/edge/matching?u=123456789&v=123456790&source=big", &ea); code != 200 {
		t.Fatalf("edge query on named source: status %d", code)
	}
	// The ring has O(1) summaries, so /graph answers even at n=1e9.
	var info graphInfo
	if code := getJSON(t, ts.URL+"/graph?source=big", &info); code != 200 || info.M != 1_000_000_000 || info.MaxDegree != 2 {
		t.Fatalf("/graph on ring: %d %+v", code, info)
	}
	// Unknown source names are 404s.
	var e errorBody
	if code := getJSON(t, ts.URL+"/vertex/mis?v=1&source=nope", &e); code != 404 {
		t.Fatalf("unknown source: status %d", code)
	}
}

// TestGraphInfoCap413 pins the /graph guard: a source with no O(1)
// summaries above the cap answers 413 with the JSON envelope instead of
// walking n degrees.
func TestGraphInfoCap413(t *testing.T) {
	src, err := source.Parse("blockrandom:n=1e8,d=6", 7)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewFromSource(src, "blockrandom:n=1e8,d=6", 42, WithGraphInfoCap(10_000)).Handler())
	defer ts.Close()

	var e errorBody
	if code := getJSON(t, ts.URL+"/graph", &e); code != http.StatusRequestEntityTooLarge || e.Status != http.StatusRequestEntityTooLarge || e.Error == "" {
		t.Fatalf("/graph above cap: %d %+v, want 413 envelope", code, e)
	}
	// Point queries still work — that is the whole point.
	var va vertexAnswer
	if code := getJSON(t, ts.URL+"/vertex/mis?v=99999999", &va); code != 200 {
		t.Fatalf("vertex query above cap: status %d", code)
	}

	// Under the cap, probing summaries is allowed.
	small, err := source.Parse("blockrandom:n=500,d=4", 7)
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(NewFromSource(small, "blockrandom:n=500,d=4", 42, WithGraphInfoCap(10_000)).Handler())
	defer ts2.Close()
	var info graphInfo
	if code := getJSON(t, ts2.URL+"/graph", &info); code != 200 || info.N != 500 || info.M == 0 || info.MaxDegree == 0 {
		t.Fatalf("/graph under cap: %d %+v", code, info)
	}
}

// TestEstimateOnImplicitSource checks /estimate works against an implicit
// source via its RandomEdge capability.
func TestEstimateOnImplicitSource(t *testing.T) {
	src, err := source.Parse("circulant:n=100000,d=8", 7)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewFromSource(src, "circulant:n=100000,d=8", 42).Handler())
	defer ts.Close()
	var ans estimateAnswer
	if code := getJSON(t, ts.URL+"/estimate/matching?samples=200", &ans); code != 200 {
		t.Fatalf("/estimate on circulant: status %d", code)
	}
	if ans.Fraction <= 0 || ans.Fraction > 1 {
		t.Fatalf("estimate fraction %v out of range", ans.Fraction)
	}
}

func TestPrefetchQueryParam(t *testing.T) {
	ts, done := newTestServer(t)
	defer done()
	// prefetch=1 answers identically to the scalar path (same instance
	// seed, same solution) and reports zero round trips on a local source.
	var plain, pre vertexAnswer
	if code := getJSON(t, ts.URL+"/vertex/mis?v=7", &plain); code != 200 {
		t.Fatalf("scalar vertex query: status %d", code)
	}
	if code := getJSON(t, ts.URL+"/vertex/mis?v=7&prefetch=1", &pre); code != 200 {
		t.Fatalf("prefetch vertex query: status %d", code)
	}
	if plain.In != pre.In || plain.Probes != pre.Probes {
		t.Fatalf("prefetch changed the answer or probe count: %+v vs %+v", plain, pre)
	}
	if pre.RoundTrips != 0 {
		t.Fatalf("local source reported %d round trips", pre.RoundTrips)
	}
	var envelope errorBody
	if code := getJSON(t, ts.URL+"/vertex/mis?v=7&prefetch=2", &envelope); code != 400 {
		t.Fatalf("malformed prefetch flag: status %d, want 400", code)
	}
}

func TestPrefetchOverNetworkSourceReportsRoundTrips(t *testing.T) {
	// A server fronting a remote source: prefetch=1 must collapse the
	// round trips the query answer reports.
	backing, err := source.Parse("circulant:n=2000,d=8,seed=3", 7)
	if err != nil {
		t.Fatal(err)
	}
	shard := httptest.NewServer(source.NewProbeHandler(backing))
	defer shard.Close()
	remote, err := source.Parse("remote:"+shard.URL, 7)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewFromSource(remote, "remote", 42).Handler())
	defer ts.Close()
	var plain, pre vertexAnswer
	if code := getJSON(t, ts.URL+"/vertex/mis?v=11", &plain); code != 200 {
		t.Fatalf("scalar: status %d", code)
	}
	if code := getJSON(t, ts.URL+"/vertex/mis?v=11&prefetch=1", &pre); code != 200 {
		t.Fatalf("prefetch: status %d", code)
	}
	if plain.In != pre.In || plain.Probes != pre.Probes {
		t.Fatalf("prefetch changed answer/probes over the network: %+v vs %+v", plain, pre)
	}
	if plain.RoundTrips == 0 || pre.RoundTrips == 0 {
		t.Fatalf("network queries reported no round trips: %+v vs %+v", plain, pre)
	}
	if pre.RoundTrips*3 > plain.RoundTrips {
		t.Fatalf("prefetch round trips %d vs scalar %d: want at least a 3x collapse", pre.RoundTrips, plain.RoundTrips)
	}
}
