package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"lca/internal/gen"
)

func newTestServer(t *testing.T) (*httptest.Server, func()) {
	t.Helper()
	g := gen.Gnp(200, 0.1, 7)
	ts := httptest.NewServer(New(g, 42).Handler())
	return ts, ts.Close
}

func getJSON(t *testing.T, url string, into any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatalf("decoding %s: %v", url, err)
	}
	return resp.StatusCode
}

func TestHealthAndGraph(t *testing.T) {
	ts, done := newTestServer(t)
	defer done()
	var health map[string]string
	if code := getJSON(t, ts.URL+"/healthz", &health); code != 200 || health["status"] != "ok" {
		t.Fatalf("healthz: %d %v", code, health)
	}
	var info graphInfo
	if code := getJSON(t, ts.URL+"/graph", &info); code != 200 || info.N != 200 || info.M == 0 {
		t.Fatalf("graph info: %d %+v", code, info)
	}
}

func TestSpannerEdgeEndpoint(t *testing.T) {
	g := gen.Gnp(200, 0.1, 7)
	ts := httptest.NewServer(New(g, 42).Handler())
	defer ts.Close()
	e := g.Edges()[0]
	var ans edgeAnswer
	url := fmt.Sprintf("%s/spanner/3/edge?u=%d&v=%d", ts.URL, e.U, e.V)
	if code := getJSON(t, url, &ans); code != 200 {
		t.Fatalf("status %d", code)
	}
	if ans.U != e.U || ans.V != e.V || ans.Probes == 0 {
		t.Fatalf("answer %+v", ans)
	}
	// Consistency across requests (fresh instances, same seed).
	var again edgeAnswer
	getJSON(t, url, &again)
	if again.In != ans.In {
		t.Fatal("two requests for the same edge disagreed")
	}
}

func TestSpannerEndpointErrors(t *testing.T) {
	ts, done := newTestServer(t)
	defer done()
	cases := []struct {
		path string
		want int
	}{
		{"/spanner/9/edge?u=0&v=1", 404},     // unknown algorithm
		{"/spanner/3/edge?u=0", 400},         // missing v
		{"/spanner/3/edge?u=0&v=betty", 400}, // non-numeric
		{"/spanner/3/edge?u=0&v=99999", 400}, // out of range
		{"/spanner/k/edge?u=0&v=1&k=zero", 400},
		{"/estimate/nothing", 404},
		{"/estimate/mis?samples=-3", 400},
	}
	for _, c := range cases {
		var body errorBody
		if code := getJSON(t, ts.URL+c.path, &body); code != c.want {
			t.Errorf("%s: status %d, want %d (%+v)", c.path, code, c.want, body)
		} else if body.Error == "" {
			t.Errorf("%s: missing error message", c.path)
		}
	}
}

func TestSpannerEdgeNotAnEdge(t *testing.T) {
	g := gen.Path(10) // (0,5) is not an edge
	ts := httptest.NewServer(New(g, 1).Handler())
	defer ts.Close()
	var body errorBody
	if code := getJSON(t, ts.URL+"/spanner/3/edge?u=0&v=5", &body); code != 400 {
		t.Fatalf("non-edge query returned %d", code)
	}
}

func TestVertexEndpoints(t *testing.T) {
	ts, done := newTestServer(t)
	defer done()
	var mis vertexAnswer
	if code := getJSON(t, ts.URL+"/mis/vertex?v=5", &mis); code != 200 {
		t.Fatalf("mis status %d", code)
	}
	var color colorAnswer
	if code := getJSON(t, ts.URL+"/coloring/vertex?v=5", &color); code != 200 || color.Color < 0 {
		t.Fatalf("coloring: %d %+v", code, color)
	}
}

func TestMatchingEndpointConsistentWithMIS(t *testing.T) {
	g := gen.Torus(8, 8)
	ts := httptest.NewServer(New(g, 3).Handler())
	defer ts.Close()
	// Query all edges incident to vertex 0; at most one can be matched.
	matched := 0
	for i := 0; i < g.Degree(0); i++ {
		w := g.Neighbor(0, i)
		var ans edgeAnswer
		getJSON(t, fmt.Sprintf("%s/matching/edge?u=0&v=%d", ts.URL, w), &ans)
		if ans.In {
			matched++
		}
	}
	if matched > 1 {
		t.Fatalf("vertex 0 matched %d times", matched)
	}
}

func TestEstimateEndpoint(t *testing.T) {
	ts, done := newTestServer(t)
	defer done()
	for _, metric := range []string{"mis", "cover", "spanner3"} {
		var ans estimateAnswer
		if code := getJSON(t, ts.URL+"/estimate/"+metric+"?samples=100", &ans); code != 200 {
			t.Fatalf("%s: status %d", metric, code)
		}
		if ans.Fraction < 0 || ans.Fraction > 1 || ans.Samples != 100 {
			t.Fatalf("%s: %+v", metric, ans)
		}
	}
}

func TestConcurrentRequestsConsistent(t *testing.T) {
	g := gen.Gnp(150, 0.15, 9)
	ts := httptest.NewServer(New(g, 11).Handler())
	defer ts.Close()
	e := g.Edges()[3]
	url := fmt.Sprintf("%s/spanner/3/edge?u=%d&v=%d", ts.URL, e.U, e.V)
	const goroutines = 16
	answers := make([]bool, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Get(url)
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			var ans edgeAnswer
			if err := json.NewDecoder(resp.Body).Decode(&ans); err != nil {
				t.Error(err)
				return
			}
			answers[i] = ans.In
		}(i)
	}
	wg.Wait()
	for i := 1; i < goroutines; i++ {
		if answers[i] != answers[0] {
			t.Fatal("concurrent requests disagreed on the same edge")
		}
	}
}
