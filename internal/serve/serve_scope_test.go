package serve

import (
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"

	"lca/internal/source"
)

// newRemoteBackedServer builds a query server whose default source probes
// a loopback shard — the deployment shape where round-trip accounting is
// observable.
func newRemoteBackedServer(t *testing.T) (*httptest.Server, *Server) {
	t.Helper()
	shard := httptest.NewServer(source.NewProbeHandler(source.Ring(400)))
	t.Cleanup(shard.Close)
	remote, err := source.OpenRemote(shard.URL)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewFromSource(remote, "remote:"+shard.URL, 42)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() { _ = srv.Close() })
	return ts, srv
}

// TestRoundTripsScopedPerRequest is the regression test for per-request
// transport attribution: a serve answer's round_trips used to delta the
// named source's shared counter, so concurrent requests against one
// network source bled into each other's figure. With request scoping,
// every concurrent answer must report exactly what the same query reports
// when it runs alone.
func TestRoundTripsScopedPerRequest(t *testing.T) {
	ts, _ := newRemoteBackedServer(t)
	vertices := []int{3, 57, 111, 198, 250, 301, 350, 399}

	type answer struct {
		In         bool   `json:"in"`
		Probes     uint64 `json:"probes"`
		RoundTrips uint64 `json:"round_trips"`
	}
	query := func(v int) answer {
		var a answer
		if code := getJSON(t, fmt.Sprintf("%s/vertex/mis?v=%d", ts.URL, v), &a); code != 200 {
			t.Errorf("vertex %d: status %d", v, code)
		}
		return a
	}

	// Serial baseline: every query alone on the wire. Requests build fresh
	// deterministic instances, so per-vertex figures are reproducible.
	baseline := make(map[int]answer, len(vertices))
	for _, v := range vertices {
		baseline[v] = query(v)
	}
	for _, v := range vertices {
		if again := query(v); again != baseline[v] {
			t.Fatalf("vertex %d not deterministic: %+v then %+v", v, baseline[v], again)
		}
		if baseline[v].RoundTrips == 0 {
			t.Fatalf("vertex %d reports 0 round trips over a remote source", v)
		}
	}

	// Concurrent storm: many overlapping requests per vertex. Each answer
	// must still carry its own exact figure.
	const rounds = 4
	var wg sync.WaitGroup
	got := make([]answer, len(vertices)*rounds)
	for r := 0; r < rounds; r++ {
		for i, v := range vertices {
			wg.Add(1)
			go func(slot, v int) {
				defer wg.Done()
				got[slot] = query(v)
			}(r*len(vertices)+i, v)
		}
	}
	wg.Wait()
	for r := 0; r < rounds; r++ {
		for i, v := range vertices {
			if a := got[r*len(vertices)+i]; a != baseline[v] {
				t.Errorf("concurrent vertex %d answered %+v, serial baseline %+v (transport accounting bled across requests)",
					v, a, baseline[v])
			}
		}
	}
}

// TestSourcesListHealth: a sharded source's /sources entry carries the
// fleet's per-replica health.
func TestSourcesListHealth(t *testing.T) {
	shardA := httptest.NewServer(source.NewProbeHandler(source.Ring(50)))
	t.Cleanup(shardA.Close)
	shardB := httptest.NewServer(source.NewProbeHandler(source.Ring(50)))
	t.Cleanup(shardB.Close)
	spec := "sharded:remote:" + shardA.URL + ";remote:" + shardB.URL
	src, err := source.Parse(spec, 7)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewFromSource(src, spec, 42)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() { _ = srv.Close() })

	var body struct {
		Sources []struct {
			Name   string `json:"name"`
			Health []struct {
				Shard string `json:"shard"`
				State string `json:"state"`
			} `json:"health"`
		} `json:"sources"`
	}
	if code := getJSON(t, ts.URL+"/sources", &body); code != 200 {
		t.Fatalf("/sources: status %d", code)
	}
	if len(body.Sources) != 1 {
		t.Fatalf("%d sources listed, want 1", len(body.Sources))
	}
	health := body.Sources[0].Health
	if len(health) != 2 {
		t.Fatalf("health lists %d shards, want 2", len(health))
	}
	for i, h := range health {
		if h.State != source.ShardLive {
			t.Fatalf("shard %d state %q, want %q", i, h.State, source.ShardLive)
		}
		if h.Shard == "" {
			t.Fatalf("shard %d unlabeled", i)
		}
	}
}
