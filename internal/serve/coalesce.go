package serve

// Single-flight request coalescing: identical in-flight queries share
// one oracle execution. LCA answers are pure functions of
// (source, kind, algorithm, params, query coordinates, seed), so a hot
// key under concurrent load — the million-user case — costs one
// instance build and one probe sequence no matter how many requests
// arrive while it runs; duplicates wait and receive the same answer.
// Probes, round trips and budgets are charged once, to the executing
// request. The table holds only in-flight keys (it is not a cache):
// entries are deleted the moment the execution finishes, so its size is
// bounded by concurrency, never by traffic history.

import (
	"fmt"
	"sync"
)

// flight is one in-flight execution; waiters block on wg and then read
// the shared result.
type flight struct {
	wg  sync.WaitGroup
	ans any
	err error
}

// flightGroup deduplicates executions by key. The zero value is ready.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flight
}

// do runs fn once per key among concurrent callers: the first caller
// executes, the rest wait and share the result. shared reports whether
// this caller was a waiter; onShare (if non-nil) runs when a waiter
// joins, before it blocks — the observation point for the coalescing
// counter. A panicking fn fails its waiters with a 500 envelope and
// repanics in the leader (http.Server turns that into a logged 500 for
// the leader itself).
func (g *flightGroup) do(key string, onShare func(), fn func() (any, error)) (ans any, err error, shared bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = map[string]*flight{}
	}
	if f, ok := g.m[key]; ok {
		g.mu.Unlock()
		if onShare != nil {
			onShare()
		}
		f.wg.Wait()
		return f.ans, f.err, true
	}
	f := &flight{}
	f.wg.Add(1)
	g.m[key] = f
	g.mu.Unlock()

	defer func() {
		if r := recover(); r != nil {
			f.err = &httpError{status: 500, msg: fmt.Sprintf("internal error: %v", r)}
			g.finish(key, f)
			panic(r)
		}
		g.finish(key, f)
	}()
	f.ans, f.err = fn()
	return f.ans, f.err, false
}

func (g *flightGroup) finish(key string, f *flight) {
	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	f.wg.Done()
}

// inFlight reports the number of distinct keys currently executing
// (introspection for tests and the metrics plane).
func (g *flightGroup) inFlight() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.m)
}
