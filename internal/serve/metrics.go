package serve

// The metrics plane and per-request correlation. Every server owns a
// metrics.Registry (injectable with WithMetricsRegistry for aggregation
// across servers in one process); handlers record through pre-resolved
// handles so the per-request cost is a few atomic adds. GET /metrics
// exports the registry as JSON (the machine-readable default) or text
// (?format=text, the greppable runbook form).
//
// Metric names fold dimensions in Prometheus style; every dimension is
// drawn from a fixed set (query kinds, HTTP statuses, configured
// tenants), so the table stays bounded regardless of traffic:
//
//	serve_queries_total{kind=edge|vertex|label|estimate}
//	serve_query_latency_us{kind=...}        histogram, microseconds
//	serve_probes_total                      cell probes charged by queries
//	serve_round_trips_total                 backend network round trips
//	serve_failovers_total                   probes served off-rendezvous
//	serve_hedges_total                      hedged probes fired
//	serve_attest_failures_total             probe answers that failed attestation
//	serve_proof_bytes_total                 Merkle proof bytes transported
//	serve_page_touches_total                mapped-backend loads off the previous page
//	serve_local_hits_total                  mapped-backend loads on the previous page
//	serve_audit_records_total               signed audit-log records written
//	serve_probes_per_query                  histogram
//	serve_round_trips_per_query             histogram (network sources)
//	serve_coalesced_total                   duplicate requests that shared an execution
//	serve_probe_requests_total              wire-plane (/probe*) requests
//	serve_traces_total                      traces retained in the /traces rings
//	serve_slow_queries_total                queries over the slow-query thresholds
//	serve_errors_total{status=NNN}          error envelopes written
//	tenant_queries_total{tenant=NAME}       admitted requests per tenant
//	tenant_admission_rejected_total{tenant=NAME}
//	tenant_budget_rejected_total{tenant=NAME}

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"net/http"
	"time"

	"lca/internal/metrics"
	"lca/internal/oracle"
)

// MetricsPath is the metrics-plane endpoint.
const MetricsPath = "/metrics"

// RequestIDHeader carries the per-request correlation ID: accepted from
// the client when present (sanitized), generated otherwise, echoed on
// every response and embedded in every JSON error envelope.
const RequestIDHeader = "X-Request-ID"

// queryKinds are the metric dimension values of the query plane.
var queryKinds = []string{"edge", "vertex", "label", "estimate"}

// serverMetrics holds pre-resolved metric handles for the hot path.
type serverMetrics struct {
	reg *metrics.Registry

	queries map[string]*metrics.Counter
	latency map[string]*metrics.Histogram

	probes       *metrics.Counter
	roundTrips   *metrics.Counter
	failovers    *metrics.Counter
	hedges       *metrics.Counter
	attestFails  *metrics.Counter
	proofBytes   *metrics.Counter
	pageTouches  *metrics.Counter
	localHits    *metrics.Counter
	auditRecords *metrics.Counter

	probesPerQuery *metrics.Histogram
	rtPerQuery     *metrics.Histogram

	coalesced     *metrics.Counter
	probeRequests *metrics.Counter
	traces        *metrics.Counter
	slowQueries   *metrics.Counter
}

func newServerMetrics(reg *metrics.Registry) *serverMetrics {
	m := &serverMetrics{
		reg:            reg,
		queries:        map[string]*metrics.Counter{},
		latency:        map[string]*metrics.Histogram{},
		probes:         reg.Counter("serve_probes_total"),
		roundTrips:     reg.Counter("serve_round_trips_total"),
		failovers:      reg.Counter("serve_failovers_total"),
		hedges:         reg.Counter("serve_hedges_total"),
		attestFails:    reg.Counter("serve_attest_failures_total"),
		proofBytes:     reg.Counter("serve_proof_bytes_total"),
		pageTouches:    reg.Counter("serve_page_touches_total"),
		localHits:      reg.Counter("serve_local_hits_total"),
		auditRecords:   reg.Counter("serve_audit_records_total"),
		probesPerQuery: reg.Histogram("serve_probes_per_query", metrics.CountBuckets),
		rtPerQuery:     reg.Histogram("serve_round_trips_per_query", metrics.CountBuckets),
		coalesced:      reg.Counter("serve_coalesced_total"),
		probeRequests:  reg.Counter("serve_probe_requests_total"),
		traces:         reg.Counter("serve_traces_total"),
		slowQueries:    reg.Counter("serve_slow_queries_total"),
	}
	for _, kind := range queryKinds {
		m.queries[kind] = reg.Counter(fmt.Sprintf("serve_queries_total{kind=%s}", kind))
		m.latency[kind] = reg.Histogram(fmt.Sprintf("serve_query_latency_us{kind=%s}", kind), metrics.LatencyBucketsUS)
	}
	return m
}

// observeExec records one oracle execution's probe and transport
// figures. Called inside the coalescing flight, so a shared hot key is
// charged exactly once.
func (m *serverMetrics) observeExec(st oracle.Stats) {
	m.probes.Add(st.Total())
	m.probesPerQuery.Observe(float64(st.Total()))
	if st.RoundTrips > 0 {
		m.roundTrips.Add(st.RoundTrips)
		m.rtPerQuery.Observe(float64(st.RoundTrips))
	}
	m.failovers.Add(st.Failovers)
	m.hedges.Add(st.Hedges)
	m.attestFails.Add(st.AttestFailures)
	m.proofBytes.Add(st.ProofBytes)
	m.pageTouches.Add(st.PageTouches)
	m.localHits.Add(st.LocalHits)
}

// observeRequest records one served query request (coalesced waiters
// included — each request's own wall-clock latency matters to its
// caller).
func (m *serverMetrics) observeRequest(kind string, elapsed time.Duration) {
	m.queries[kind].Inc()
	m.latency[kind].Observe(float64(elapsed.Microseconds()))
}

// errCounter returns the error counter for an HTTP status. Statuses come
// from the server's own fixed error vocabulary, so the name set is
// bounded.
func (m *serverMetrics) errCounter(status int) *metrics.Counter {
	return m.reg.Counter(fmt.Sprintf("serve_errors_total{status=%d}", status))
}

// WithMetricsRegistry makes the server record into reg instead of a
// fresh private registry — several servers in one process can share one
// metrics plane.
func WithMetricsRegistry(reg *metrics.Registry) Option {
	return func(s *Server) {
		if reg != nil {
			s.met = newServerMetrics(reg)
		}
	}
}

// Metrics returns the server's metrics registry (for CLIs and tests; the
// HTTP surface is GET /metrics).
func (s *Server) Metrics() *metrics.Registry { return s.met.reg }

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Query().Get("format") {
	case "", "json":
		writeJSON(w, http.StatusOK, s.met.reg.Snapshot())
	case "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = s.met.reg.WriteText(w)
	default:
		s.writeError(w, badRequest("parameter \"format\": want json or text"))
	}
}

// request IDs ----------------------------------------------------------

// newRequestID returns a fresh random correlation ID.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "ffffffffffffffff" // rand failure: still correlatable, never fatal
	}
	return hex.EncodeToString(b[:])
}

// sanitizeRequestID accepts a client-supplied ID only when it is short
// and printable-safe — the ID is echoed into headers and logs.
func sanitizeRequestID(id string) string {
	if len(id) == 0 || len(id) > 64 {
		return ""
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		ok := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' ||
			c == '-' || c == '_' || c == '.' || c == ':'
		if !ok {
			return ""
		}
	}
	return id
}

// withRequestID attaches the correlation ID before any handler runs, so
// every response — answers, envelopes, probe-plane replies — carries it
// and clients (lcaload, tenant logs) can correlate failures end to end.
func withRequestID(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := sanitizeRequestID(r.Header.Get(RequestIDHeader))
		if id == "" {
			id = newRequestID()
		}
		w.Header().Set(RequestIDHeader, id)
		next.ServeHTTP(w, r)
	})
}

// writeError writes the envelope and counts it on the metrics plane; the
// request ID lands in the envelope via the response header set by
// withRequestID.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	if he, ok := err.(*httpError); ok {
		status = he.status
	}
	s.met.errCounter(status).Inc()
	s.logError(w, status, err)
	writeHTTPError(w, err)
}
