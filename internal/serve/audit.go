package serve

// The query-audit log: the replayable half of the trust plane. When a
// server is built WithAuditLog, every successfully executed query flight
// appends one JSON line capturing everything the answer depended on —
// kind, algorithm, source spec, seed, parameters, query coordinates, the
// full cell-probe transcript with answers, and the answer itself with
// its hash. Records are HMAC-chained (internal/attest.Chain): each
// line's signature covers the previous line's, so tampering, truncation
// and reordering are all detectable with the log secret alone.
//
// ReplayAuditLog is the offline verifier behind `lcaverify -replay`: it
// walks the chain, rebuilds each query's LCA instance from the registry
// over an oracle that answers probes from the recorded transcript, and
// re-executes the query bit-for-bit — no network, no source, no server.
// A replay mismatch means the log's transcript does not support its
// answer: either the log was forged past the chain (secret leaked) or
// the serving binary computed something else than the registry does.
// When the served source carried a graph commitment, records embed the
// root plus Merkle-proven rows for the probed vertices, and replay
// additionally verifies every transcript answer against the proven rows
// — tying the offline log back to the same commitment clients pin.

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"lca/internal/attest"
	"lca/internal/core"
	"lca/internal/oracle"
	"lca/internal/registry"
	"lca/internal/rnd"
	"lca/internal/source"
)

// auditRowCap bounds how many distinct probed vertices get their
// committed row (with Merkle proof) embedded per record: enough to cover
// a typical LCA recursion tree, bounded so one adversarial wide query
// cannot balloon the log.
const auditRowCap = 64

// WithAuditLog makes the server append one signed JSON line per executed
// query flight to w (audit.go). The secret keys the HMAC chain: a
// verifier holding it can detect tampering, truncation and reordering;
// an empty secret still chains for integrity, without authenticity.
// Writes are serialized; w need not be concurrency-safe.
func WithAuditLog(w io.Writer, secret string) Option {
	return func(s *Server) {
		if w != nil {
			s.audit = &auditLog{w: w, chain: attest.NewChain(secret)}
		}
	}
}

// auditLog serializes record signing and writing: the HMAC chain is
// stateful, so the lock also fixes the log's total order.
type auditLog struct {
	mu    sync.Mutex
	w     io.Writer
	chain *attest.Chain
}

// AuditProbe is one recorded cell probe with its answer.
type AuditProbe struct {
	Op     string `json:"op"`
	A      int    `json:"a"`
	B      int    `json:"b,omitempty"`
	Answer int    `json:"answer"`
}

// AuditRow is one committed adjacency row embedded in a record, with its
// Merkle inclusion proof against the record's commitment.
type AuditRow struct {
	V     int      `json:"v"`
	Row   []int    `json:"row"`
	Proof []string `json:"proof"`
}

// AuditRecord is one audit-log line. Field order is load-bearing: the
// signature covers the record's canonical JSON with Sig empty, and
// encoding/json emits struct fields in declaration order, so writer and
// verifier marshal identical payload bytes.
type AuditRecord struct {
	Kind       string            `json:"kind"`
	Algo       string            `json:"algo"`
	Source     string            `json:"source,omitempty"`
	Spec       string            `json:"spec,omitempty"`
	N          int               `json:"n"`
	Seed       uint64            `json:"seed"`
	Params     map[string]string `json:"params,omitempty"`
	Coords     map[string]int    `json:"coords"`
	Probes     []AuditProbe      `json:"probes"`
	Answer     json.RawMessage   `json:"answer"`
	AnswerHash string            `json:"answer_hash"`
	Commitment string            `json:"commitment,omitempty"`
	Rows       []AuditRow        `json:"rows,omitempty"`
	Sig        string            `json:"sig,omitempty"`
}

// recordAudit assembles, signs and appends one record. A nil recorder
// (auditing off, or an estimate flight) is a no-op. Called inside the
// coalescing flight, so a hot key is logged once, like it executed once.
func (s *Server) recordAudit(kind string, d *registry.Descriptor, ns *namedSource, p registry.Params, coords map[string]int, rec *auditOracle, answer map[string]any) {
	if s.audit == nil || rec == nil {
		return
	}
	ansJSON, err := json.Marshal(answer)
	if err != nil {
		return
	}
	sum := sha256.Sum256(ansJSON)
	r := &AuditRecord{
		Kind:       kind,
		Algo:       d.Name,
		Source:     ns.name,
		Spec:       ns.spec,
		N:          ns.src.N(),
		Seed:       uint64(s.seed),
		Coords:     coords,
		Probes:     rec.probes,
		Answer:     ansJSON,
		AnswerHash: hex.EncodeToString(sum[:]),
	}
	if len(p) > 0 {
		r.Params = make(map[string]string, len(p))
		for k, v := range p {
			r.Params[k] = fmt.Sprintf("%v", v)
		}
	}
	if at, ok := source.AttestorOf(ns.src); ok {
		r.Commitment = at.Commitment().String()
		r.Rows = provenRows(at, rec.probes)
	}
	if s.audit.append(r) == nil {
		s.met.auditRecords.Inc()
	}
}

// provenRows collects the committed rows (with proofs) of the first
// auditRowCap distinct vertices the transcript probed.
func provenRows(at source.Attestor, probes []AuditProbe) []AuditRow {
	seen := make(map[int]bool)
	var out []AuditRow
	for _, p := range probes {
		if seen[p.A] {
			continue
		}
		seen[p.A] = true
		row, proof := at.ProveRow(p.A)
		if proof == nil {
			continue
		}
		out = append(out, AuditRow{V: p.A, Row: row, Proof: proof})
		if len(out) >= auditRowCap {
			break
		}
	}
	return out
}

// append signs r (chaining off the previous record) and writes it as one
// JSON line.
func (l *auditLog) append(r *AuditRecord) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	r.Sig = ""
	payload, err := json.Marshal(r)
	if err != nil {
		return err
	}
	r.Sig = l.chain.Sign(payload)
	line, err := json.Marshal(r)
	if err != nil {
		return err
	}
	line = append(line, '\n')
	_, err = l.w.Write(line)
	return err
}

// auditOracle records the cell-probe transcript of one query: every
// Degree/Neighbor/Adjacency the algorithm issues, with its answer, in
// order. It sits outermost in the oracle chain (directly under the LCA),
// so the transcript is transport-independent — prefetch and budget tiers
// underneath change how probes travel, never what gets recorded. The
// accounting capabilities are forwarded so stats still flow to answers.
// Per-flight and single-query, so no locking.
type auditOracle struct {
	inner  oracle.Oracle
	probes []AuditProbe
}

var (
	_ oracle.Oracle   = (*auditOracle)(nil)
	_ oracle.Explorer = (*auditOracle)(nil)
)

func newAuditOracle(inner oracle.Oracle) *auditOracle { return &auditOracle{inner: inner} }

// N implements Oracle (free, not recorded — n is public knowledge).
func (a *auditOracle) N() int { return a.inner.N() }

// Degree implements Oracle.
func (a *auditOracle) Degree(v int) int {
	ans := a.inner.Degree(v)
	a.probes = append(a.probes, AuditProbe{Op: source.OpDegree, A: v, Answer: ans})
	return ans
}

// Neighbor implements Oracle.
func (a *auditOracle) Neighbor(v, i int) int {
	ans := a.inner.Neighbor(v, i)
	a.probes = append(a.probes, AuditProbe{Op: source.OpNeighbor, A: v, B: i, Answer: ans})
	return ans
}

// Adjacency implements Oracle.
func (a *auditOracle) Adjacency(u, v int) int {
	ans := a.inner.Adjacency(u, v)
	a.probes = append(a.probes, AuditProbe{Op: source.OpAdjacency, A: u, B: v, Answer: ans})
	return ans
}

// Neighbors implements Explorer, recording what the scalar loop would
// (one Degree plus one Neighbor per cell) — the same account Counter
// charges, so the transcript replays on an oracle without Explorer.
func (a *auditOracle) Neighbors(v int) []int {
	row := oracle.Neighbors(a.inner, v)
	a.probes = append(a.probes, AuditProbe{Op: source.OpDegree, A: v, Answer: len(row)})
	for i, w := range row {
		a.probes = append(a.probes, AuditProbe{Op: source.OpNeighbor, A: v, B: i, Answer: w})
	}
	return row
}

// Prefetch implements Explorer; hints read nothing, so they leave no
// transcript.
func (a *auditOracle) Prefetch(vs ...int) { oracle.Prefetch(a.inner, vs...) }

// RoundTrips forwards the chain's round-trip count, keeping the
// capability visible through the audit tier.
func (a *auditOracle) RoundTrips() uint64 {
	if rt, ok := a.inner.(source.RoundTripCounter); ok {
		return rt.RoundTrips()
	}
	return 0
}

// Failovers forwards the chain's failover count.
func (a *auditOracle) Failovers() uint64 {
	if fo, ok := a.inner.(source.FailoverCounter); ok {
		return fo.Failovers()
	}
	return 0
}

// Hedges forwards the chain's hedge count.
func (a *auditOracle) Hedges() uint64 {
	if fo, ok := a.inner.(source.FailoverCounter); ok {
		return fo.Hedges()
	}
	return 0
}

// AttestFailures forwards the chain's attestation-failure count.
func (a *auditOracle) AttestFailures() uint64 {
	if ac, ok := a.inner.(source.AttestCounter); ok {
		return ac.AttestFailures()
	}
	return 0
}

// ProofBytes forwards the chain's transported-proof-byte count.
func (a *auditOracle) ProofBytes() uint64 {
	if ac, ok := a.inner.(source.AttestCounter); ok {
		return ac.ProofBytes()
	}
	return 0
}

// FetchWidth forwards the chain's speculative prefetch width.
func (a *auditOracle) FetchWidth() int {
	if pr, ok := a.inner.(oracle.PrefetchReporter); ok {
		return pr.FetchWidth()
	}
	return 0
}

// RemainderTrips forwards the chain's remainder-trip count.
func (a *auditOracle) RemainderTrips() uint64 {
	if pr, ok := a.inner.(oracle.PrefetchReporter); ok {
		return pr.RemainderTrips()
	}
	return 0
}

// PageTouches forwards the chain's page-touch count.
func (a *auditOracle) PageTouches() uint64 {
	if lr, ok := a.inner.(source.LocalityReporter); ok {
		return lr.PageTouches()
	}
	return 0
}

// LocalHits forwards the chain's same-page-hit count.
func (a *auditOracle) LocalHits() uint64 {
	if lr, ok := a.inner.(source.LocalityReporter); ok {
		return lr.LocalHits()
	}
	return 0
}

// replay ----------------------------------------------------------------

// ReplayReport summarizes a successful audit-log replay.
type ReplayReport struct {
	// Records is the number of chained records verified and re-executed.
	Records int
	// ProofsVerified counts the embedded row proofs checked against their
	// records' commitments.
	ProofsVerified int
}

// ReplayAuditLog verifies an audit log offline: the HMAC chain under
// secret, then each record re-executed — the algorithm rebuilt from the
// registry with the recorded seed and parameters, probing an oracle that
// answers only from the recorded transcript — and the recomputed answer
// compared hash-for-hash with the logged one. Records carrying a
// commitment additionally have every embedded row proof verified and
// every transcript answer cross-checked against the proven rows. The
// first failure stops the replay with an error naming the line.
func ReplayAuditLog(r io.Reader, secret string) (*ReplayReport, error) {
	chain := attest.NewChain(secret)
	rep := &ReplayReport{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	line := 0
	for sc.Scan() {
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		line++
		var rec AuditRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			return nil, fmt.Errorf("audit line %d: not a record: %v", line, err)
		}
		sig := rec.Sig
		rec.Sig = ""
		payload, err := json.Marshal(&rec)
		if err != nil {
			return nil, fmt.Errorf("audit line %d: %v", line, err)
		}
		if err := chain.Verify(payload, sig); err != nil {
			return nil, fmt.Errorf("audit line %d: %v", line, err)
		}
		proofs, err := replayRecord(&rec)
		if err != nil {
			return nil, fmt.Errorf("audit line %d: %v", line, err)
		}
		rep.Records++
		rep.ProofsVerified += proofs
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rep, nil
}

// replayRecord re-executes one verified record and returns how many row
// proofs it checked.
func replayRecord(rec *AuditRecord) (proofs int, err error) {
	d, err := registry.Get(rec.Algo)
	if err != nil {
		return 0, fmt.Errorf("algorithm %q not in this binary's registry: %v", rec.Algo, err)
	}
	p := registry.Params{}
	for k, raw := range rec.Params {
		v, perr := d.ParseValue(k, raw)
		if perr != nil {
			return 0, fmt.Errorf("parameter %q: %v", k, perr)
		}
		p[k] = v
	}
	if rec.Commitment != "" {
		proofs, err = verifyRecordRows(rec)
		if err != nil {
			return 0, err
		}
	}
	o := newTranscriptOracle(rec)
	inst, err := d.Build(o, rnd.Seed(rec.Seed), p)
	if err != nil {
		return 0, fmt.Errorf("rebuilding %s: %v", rec.Algo, err)
	}
	ans, err := replayQuery(rec, inst)
	if err != nil {
		return 0, err
	}
	got, err := json.Marshal(ans)
	if err != nil {
		return 0, err
	}
	sum := sha256.Sum256(got)
	if hex.EncodeToString(sum[:]) != rec.AnswerHash {
		return 0, fmt.Errorf("replayed answer %s does not match the logged hash (logged answer %s)", got, rec.Answer)
	}
	return proofs, nil
}

// replayQuery re-runs the recorded query on the rebuilt instance,
// converting transcript misses (a *source.ProbeError panic) into errors.
func replayQuery(rec *AuditRecord, inst any) (ans map[string]any, err error) {
	defer func() {
		if r := recover(); r != nil {
			pe, ok := r.(*source.ProbeError)
			if !ok {
				panic(r)
			}
			ans, err = nil, fmt.Errorf("replay diverged from the transcript: %v", pe)
		}
	}()
	switch rec.Kind {
	case "edge":
		lca, ok := inst.(core.EdgeLCA)
		if !ok {
			return nil, fmt.Errorf("algorithm %q does not answer edge queries", rec.Algo)
		}
		return map[string]any{"in": lca.QueryEdge(rec.Coords["u"], rec.Coords["v"])}, nil
	case "vertex":
		lca, ok := inst.(core.VertexLCA)
		if !ok {
			return nil, fmt.Errorf("algorithm %q does not answer vertex queries", rec.Algo)
		}
		return map[string]any{"in": lca.QueryVertex(rec.Coords["v"])}, nil
	case "label":
		lca, ok := inst.(core.LabelLCA)
		if !ok {
			return nil, fmt.Errorf("algorithm %q does not answer label queries", rec.Algo)
		}
		return map[string]any{"label": lca.QueryLabel(rec.Coords["v"])}, nil
	}
	return nil, fmt.Errorf("unknown query kind %q", rec.Kind)
}

// verifyRecordRows checks every embedded row proof against the record's
// commitment and every transcript answer against the proven rows — a
// transcript that contradicts a proven row is a forged log, whatever the
// chain says.
func verifyRecordRows(rec *AuditRecord) (int, error) {
	root, err := attest.ParseRoot(rec.Commitment)
	if err != nil {
		return 0, fmt.Errorf("commitment: %v", err)
	}
	rows := make(map[int][]int, len(rec.Rows))
	for _, ar := range rec.Rows {
		if err := attest.VerifyRow(root, rec.N, ar.V, ar.Row, ar.Proof); err != nil {
			return 0, fmt.Errorf("row %d: %v", ar.V, err)
		}
		rows[ar.V] = ar.Row
	}
	for i, p := range rec.Probes {
		row, ok := rows[p.A]
		if !ok {
			continue
		}
		want, decidable := probeFromRow(p.Op, row, p.B)
		if decidable && p.Answer != want {
			return 0, fmt.Errorf("transcript probe %d (%s a=%d b=%d) answers %d, but the proven row says %d",
				i, p.Op, p.A, p.B, p.Answer, want)
		}
	}
	return len(rec.Rows), nil
}

// probeFromRow derives the honest answer of one probe about the row's
// owner from the proven row.
func probeFromRow(op string, row []int, b int) (want int, decidable bool) {
	switch op {
	case source.OpDegree:
		return len(row), true
	case source.OpNeighbor:
		if b < 0 || b >= len(row) {
			return -1, true
		}
		return row[b], true
	case source.OpAdjacency:
		for i, w := range row {
			if w == b {
				return i, true
			}
		}
		return -1, true
	}
	return 0, false
}

// transcriptOracle answers probes from a record's transcript alone — the
// replay needs no source, no network and no server binary state. A probe
// outside the transcript panics a *source.ProbeError: the replayed
// algorithm diverged from the recorded run.
type transcriptOracle struct {
	n    string // record label for errors
	size int
	m    map[transcriptKey]int
}

type transcriptKey struct {
	op   uint8
	a, b int
}

const (
	tkDeg uint8 = iota
	tkNbr
	tkAdj
)

func newTranscriptOracle(rec *AuditRecord) *transcriptOracle {
	t := &transcriptOracle{n: rec.Algo, size: rec.N, m: make(map[transcriptKey]int, len(rec.Probes))}
	for _, p := range rec.Probes {
		switch p.Op {
		case source.OpDegree:
			t.m[transcriptKey{op: tkDeg, a: p.A}] = p.Answer
		case source.OpNeighbor:
			t.m[transcriptKey{op: tkNbr, a: p.A, b: p.B}] = p.Answer
		case source.OpAdjacency:
			t.m[transcriptKey{op: tkAdj, a: p.A, b: p.B}] = p.Answer
		}
	}
	return t
}

var _ oracle.Oracle = (*transcriptOracle)(nil)

func (t *transcriptOracle) N() int { return t.size }

func (t *transcriptOracle) lookup(op uint8, name string, a, b int) int {
	if ans, ok := t.m[transcriptKey{op: op, a: a, b: b}]; ok {
		return ans
	}
	panic(&source.ProbeError{Shard: "audit-replay(" + t.n + ")", Op: name, A: a, B: b,
		Err: fmt.Errorf("probe not in the recorded transcript")})
}

func (t *transcriptOracle) Degree(v int) int { return t.lookup(tkDeg, source.OpDegree, v, 0) }

func (t *transcriptOracle) Neighbor(v, i int) int { return t.lookup(tkNbr, source.OpNeighbor, v, i) }

func (t *transcriptOracle) Adjacency(u, v int) int {
	return t.lookup(tkAdj, source.OpAdjacency, u, v)
}
