// Package baseline implements the classical global algorithms that the LCA
// constructions are measured against: the Baswana-Sen randomized
// (2k-1)-spanner, the greedy girth-based spanner, BFS spanning forests, and
// greedy MIS/matching/coloring. These see the whole graph at once — exactly
// the luxury the local model denies — and anchor the experiments' quality
// comparisons.
package baseline

import (
	"math"
	"sort"

	"lca/internal/graph"
	"lca/internal/rnd"
)

// GreedySpanner returns the classical greedy (2k-1)-spanner: edges are
// scanned in a fixed order and kept iff the current spanner distance
// between the endpoints exceeds 2k-1. The result has girth > 2k and hence
// O(n^{1+1/k}) edges; it is the strongest size baseline but costs
// O(m * spanner-BFS) time globally.
func GreedySpanner(g *graph.Graph, k int) *graph.Graph {
	if k < 1 {
		k = 1
	}
	b := graph.NewBuilder(g.N())
	// Adjacency of the growing spanner, maintained incrementally.
	adj := make([][]int32, g.N())
	limit := 2*k - 1
	for _, e := range g.Edges() {
		if distWithin(adj, e.U, e.V, limit) {
			continue
		}
		b.AddEdge(e.U, e.V)
		adj[e.U] = append(adj[e.U], int32(e.V))
		adj[e.V] = append(adj[e.V], int32(e.U))
	}
	return b.Build()
}

// distWithin reports whether v is reachable from u in at most limit hops in
// the adjacency structure.
func distWithin(adj [][]int32, u, v, limit int) bool {
	if u == v {
		return true
	}
	dist := map[int]int{u: 0}
	queue := []int{u}
	for qi := 0; qi < len(queue); qi++ {
		x := queue[qi]
		d := dist[x]
		if d >= limit {
			continue
		}
		for _, w := range adj[x] {
			wi := int(w)
			if _, seen := dist[wi]; seen {
				continue
			}
			if wi == v {
				return true
			}
			dist[wi] = d + 1
			queue = append(queue, wi)
		}
	}
	return false
}

// SpanningForest returns a BFS spanning forest of g: the sparsest subgraph
// preserving connectivity, with unbounded stretch. It is the baseline the
// "sparse spanning graph" LCA literature compares against.
func SpanningForest(g *graph.Graph) *graph.Graph {
	b := graph.NewBuilder(g.N())
	visited := make([]bool, g.N())
	var queue []int
	for root := 0; root < g.N(); root++ {
		if visited[root] {
			continue
		}
		visited[root] = true
		queue = append(queue[:0], root)
		for qi := 0; qi < len(queue); qi++ {
			x := queue[qi]
			for _, w := range g.Neighbors(x) {
				wi := int(w)
				if !visited[wi] {
					visited[wi] = true
					b.AddEdge(x, wi)
					queue = append(queue, wi)
				}
			}
		}
	}
	return b.Build()
}

// BaswanaSen runs the global randomized (2k-1)-spanner algorithm of
// Baswana and Sen (2007) on unweighted g, using hash-derived cluster
// sampling so runs are reproducible from the seed. The expected size is
// O(k * n^{1+1/k}).
//
// Phase 1 runs k-1 cluster-sampling rounds; phase 2 joins every vertex to
// each adjacent surviving cluster.
func BaswanaSen(g *graph.Graph, k int, seed rnd.Seed) *graph.Graph {
	if k < 1 {
		k = 1
	}
	n := g.N()
	b := graph.NewBuilder(n)
	// cluster[v] = center of v's current cluster, or -1 once v has been
	// discarded from the clustering.
	cluster := make([]int, n)
	for v := range cluster {
		cluster[v] = v
	}
	sampleProb := math.Pow(float64(n), -1.0/float64(k))
	for round := 1; round < k; round++ {
		fam := rnd.NewFamily(seed.Derive(uint64(round)), 32)
		sampled := func(center int) bool {
			return fam.Bernoulli(uint64(center), sampleProb)
		}
		next := make([]int, n)
		for v := 0; v < n; v++ {
			c := cluster[v]
			if c < 0 {
				next[v] = -1
				continue
			}
			if sampled(c) {
				next[v] = c // cluster survives; v stays put
				continue
			}
			// Find the lowest-ID neighbor in a sampled cluster, if any.
			join := -1
			for _, w := range g.Neighbors(v) {
				cw := cluster[w]
				if cw >= 0 && sampled(cw) {
					if join < 0 || int(w) < join {
						join = int(w)
					}
				}
			}
			if join >= 0 {
				b.AddEdge(v, join)
				next[v] = cluster[join]
				continue
			}
			// No sampled neighbor cluster: connect to one lowest-ID vertex
			// in each adjacent cluster, then drop out of the clustering.
			addPerCluster(g, b, v, cluster)
			next[v] = -1
		}
		cluster = next
	}
	// Phase 2: every vertex joins each adjacent surviving cluster once.
	for v := 0; v < n; v++ {
		addPerCluster(g, b, v, cluster)
	}
	return b.Build()
}

// addPerCluster adds, for vertex v, one edge to the lowest-ID neighbor in
// each distinct adjacent cluster other than v's own.
func addPerCluster(g *graph.Graph, b *graph.Builder, v int, cluster []int) {
	best := make(map[int]int) // cluster center -> lowest neighbor ID
	own := cluster[v]
	for _, w := range g.Neighbors(v) {
		cw := cluster[w]
		if cw < 0 || cw == own {
			continue
		}
		if cur, ok := best[cw]; !ok || int(w) < cur {
			best[cw] = int(w)
		}
	}
	// Deterministic insertion order.
	centers := make([]int, 0, len(best))
	for c := range best {
		centers = append(centers, c)
	}
	sort.Ints(centers)
	for _, c := range centers {
		b.AddEdge(v, best[c])
	}
}

// GreedyMIS returns the lexicographic greedy maximal independent set under
// the given vertex order (nil = natural order).
func GreedyMIS(g *graph.Graph, order []int) []bool {
	if order == nil {
		order = make([]int, g.N())
		for i := range order {
			order[i] = i
		}
	}
	in := make([]bool, g.N())
	blocked := make([]bool, g.N())
	for _, v := range order {
		if blocked[v] {
			continue
		}
		in[v] = true
		blocked[v] = true
		for _, w := range g.Neighbors(v) {
			blocked[w] = true
		}
	}
	return in
}

// GreedyMatching returns the greedy maximal matching under the given edge
// order (nil = canonical sorted order).
func GreedyMatching(g *graph.Graph, order []graph.Edge) *graph.Graph {
	if order == nil {
		order = g.Edges()
	}
	matched := make([]bool, g.N())
	b := graph.NewBuilder(g.N())
	for _, e := range order {
		if matched[e.U] || matched[e.V] {
			continue
		}
		matched[e.U] = true
		matched[e.V] = true
		b.AddEdge(e.U, e.V)
	}
	return b.Build()
}

// GreedyColoring returns the first-fit coloring under the given vertex
// order (nil = natural order); it uses at most MaxDegree+1 colors.
func GreedyColoring(g *graph.Graph, order []int) []int {
	if order == nil {
		order = make([]int, g.N())
		for i := range order {
			order[i] = i
		}
	}
	colors := make([]int, g.N())
	for i := range colors {
		colors[i] = -1
	}
	var used []bool
	for _, v := range order {
		need := g.Degree(v) + 1
		if cap(used) < need {
			used = make([]bool, need)
		}
		used = used[:need]
		for i := range used {
			used[i] = false
		}
		for _, w := range g.Neighbors(v) {
			if c := colors[w]; c >= 0 && c < need {
				used[c] = true
			}
		}
		for c := 0; c < need; c++ {
			if !used[c] {
				colors[v] = c
				break
			}
		}
	}
	return colors
}
