package baseline

import (
	"math"
	"testing"

	"lca/internal/core"
	"lca/internal/gen"
	"lca/internal/graph"
	"lca/internal/rnd"
)

func TestGreedySpannerStretchAndGirth(t *testing.T) {
	for _, k := range []int{1, 2, 3} {
		for seed := rnd.Seed(0); seed < 3; seed++ {
			g := gen.Gnp(60, 0.3, seed)
			h := GreedySpanner(g, k)
			if err := core.VerifySubgraphOf(g, h); err != nil {
				t.Fatal(err)
			}
			rep := core.VerifyStretch(g, h, 2*k-1)
			if rep.Violations > 0 {
				t.Fatalf("k=%d seed=%d: %d stretch violations", k, seed, rep.Violations)
			}
		}
	}
}

func TestGreedySpannerK1IsWholeGraph(t *testing.T) {
	g := gen.Gnp(30, 0.3, 1)
	h := GreedySpanner(g, 1)
	if h.M() != g.M() {
		t.Fatalf("1-spanner must keep all edges: %d vs %d", h.M(), g.M())
	}
}

func TestGreedySpannerSizeBound(t *testing.T) {
	// Girth > 2k implies O(n^{1+1/k}) edges; for k=2 on a dense graph the
	// spanner must be far sparser than the input.
	g := gen.Gnp(200, 0.5, 7)
	h := GreedySpanner(g, 2)
	bound := 2 * math.Pow(200, 1.5)
	if float64(h.M()) > bound {
		t.Fatalf("greedy 3-spanner has %d edges, bound %f", h.M(), bound)
	}
	if h.M() >= g.M()/2 {
		t.Fatalf("spanner not actually sparsifying: %d of %d", h.M(), g.M())
	}
}

func TestBaswanaSenStretchAndSize(t *testing.T) {
	for _, k := range []int{2, 3} {
		for seed := rnd.Seed(0); seed < 3; seed++ {
			g := gen.Gnp(150, 0.25, seed)
			h := BaswanaSen(g, k, seed.Derive(99))
			if err := core.VerifySubgraphOf(g, h); err != nil {
				t.Fatal(err)
			}
			rep := core.VerifyStretch(g, h, 2*k-1)
			if rep.Violations > 0 {
				t.Fatalf("k=%d seed=%d: %d stretch violations (max %d)", k, seed, rep.Violations, rep.MaxStretch)
			}
			// Size sanity: O(k n^{1+1/k}) with a generous constant.
			bound := 8 * float64(k) * math.Pow(float64(g.N()), 1+1/float64(k))
			if float64(h.M()) > bound {
				t.Fatalf("k=%d: %d edges exceeds %f", k, h.M(), bound)
			}
		}
	}
}

func TestBaswanaSenConnectivity(t *testing.T) {
	g := gen.PlantedClusters(90, 3, 0.4, 0.02, 5)
	h := BaswanaSen(g, 3, 11)
	if err := core.VerifyConnectivityPreserved(g, h); err != nil {
		t.Fatal(err)
	}
}

func TestBaswanaSenDeterministic(t *testing.T) {
	g := gen.Gnp(80, 0.2, 3)
	a := BaswanaSen(g, 2, 42)
	b := BaswanaSen(g, 2, 42)
	if a.M() != b.M() {
		t.Fatal("same seed produced different spanners")
	}
	for _, e := range a.Edges() {
		if !b.HasEdge(e.U, e.V) {
			t.Fatal("same seed produced different edge sets")
		}
	}
}

func TestBaswanaSenK1(t *testing.T) {
	g := gen.Gnp(40, 0.3, 2)
	h := BaswanaSen(g, 1, 1)
	// A 1-spanner must preserve all distances, i.e. keep every edge.
	if h.M() != g.M() {
		t.Fatalf("1-spanner kept %d of %d edges", h.M(), g.M())
	}
}

func TestSpanningForest(t *testing.T) {
	g := gen.PlantedClusters(60, 2, 0.3, 0.05, 9)
	f := SpanningForest(g)
	if err := core.VerifyConnectivityPreserved(g, f); err != nil {
		t.Fatal(err)
	}
	_, comps := g.Components()
	if f.M() != g.N()-comps {
		t.Fatalf("forest has %d edges, want n - #components = %d", f.M(), g.N()-comps)
	}
}

func TestSpanningForestDisconnected(t *testing.T) {
	b := graph.NewBuilder(6)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	g := b.Build()
	f := SpanningForest(g)
	if f.M() != 2 {
		t.Fatalf("forest edges = %d, want 2", f.M())
	}
	if err := core.VerifyConnectivityPreserved(g, f); err != nil {
		t.Fatal(err)
	}
}

func TestGreedyMIS(t *testing.T) {
	for seed := rnd.Seed(0); seed < 5; seed++ {
		g := gen.Gnp(70, 0.1, seed)
		in := GreedyMIS(g, nil)
		if err := core.VerifyMaximalIndependentSet(g, in); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
	// Custom order: reversed order on a star selects the leaves.
	star := gen.Star(5)
	in := GreedyMIS(star, []int{4, 3, 2, 1, 0})
	if in[0] || !in[1] || !in[4] {
		t.Errorf("reversed-order MIS on star = %v", in)
	}
}

func TestGreedyMatching(t *testing.T) {
	for seed := rnd.Seed(0); seed < 5; seed++ {
		g := gen.Gnp(70, 0.1, seed)
		m := GreedyMatching(g, nil)
		if err := core.VerifyMaximalMatching(g, m); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestGreedyColoring(t *testing.T) {
	for seed := rnd.Seed(0); seed < 5; seed++ {
		g := gen.Gnp(70, 0.15, seed)
		colors := GreedyColoring(g, nil)
		if err := core.VerifyColoring(g, colors, g.MaxDegree()+1); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
	// A bipartite graph colored in BFS order gets exactly 2 colors.
	kb := gen.CompleteBipartite(4, 4)
	colors := GreedyColoring(kb, nil)
	if err := core.VerifyColoring(kb, colors, 2); err != nil {
		t.Errorf("K44 needed more than 2 colors: %v", err)
	}
}

func TestGreedySpannerGirthProperty(t *testing.T) {
	// The size bound O(n^{1+1/k}) rests on the structural fact that the
	// greedy (2k-1)-spanner has girth > 2k (any shorter cycle's last edge
	// would have been rejected). This is the girth-conjecture connection
	// the paper's discussion (§1.3) leans on.
	for _, k := range []int{2, 3} {
		for seed := rnd.Seed(0); seed < 3; seed++ {
			g := gen.Gnp(80, 0.4, seed)
			h := GreedySpanner(g, k)
			if girth := h.Girth(); girth != -1 && girth <= 2*k {
				t.Errorf("k=%d seed=%d: greedy spanner girth %d <= 2k", k, seed, girth)
			}
		}
	}
}
