// Package oracle defines the adjacency-list oracle through which every LCA
// views its input graph, together with the probe-accounting wrappers that
// the experiments use to measure probe complexity.
//
// The probe set follows the centralized-local model (Rubinfeld et al. 2011):
//
//   - Neighbor(v, i): the i-th neighbor of v, or -1 if i >= deg(v).
//   - Degree(v): deg(v). (Definable from Neighbor probes by binary search;
//     provided natively and counted separately, as in the papers.)
//   - Adjacency(u, v): the index of v in Gamma(u), or -1 if (u,v) is not an
//     edge. Note the answer carries positional information; the spanner
//     constructions' O(1) cluster-membership tests depend on it.
//
// Algorithms must interact with the input graph only through this
// interface; the harness enforces probe budgets and records statistics by
// wrapping it.
package oracle

import "lca/internal/graph"

// Oracle is the adjacency-list probe interface of the LCA model.
type Oracle interface {
	// N returns the number of vertices. Knowing n is standard in the model
	// (it parameterizes thresholds) and does not count as a probe.
	N() int
	// Degree returns deg(v).
	Degree(v int) int
	// Neighbor returns the i-th (0-indexed) neighbor of v, or -1 if i is
	// out of range.
	Neighbor(v, i int) int
	// Adjacency returns the index of v in the neighbor list of u, or -1 if
	// (u,v) is not an edge.
	Adjacency(u, v int) int
}

// GraphOracle adapts a concrete graph.Graph to the Oracle interface.
type GraphOracle struct {
	g *graph.Graph
}

var _ Oracle = (*GraphOracle)(nil)

// New returns an oracle view of g.
func New(g *graph.Graph) *GraphOracle { return &GraphOracle{g: g} }

// N implements Oracle.
func (o *GraphOracle) N() int { return o.g.N() }

// Degree implements Oracle.
func (o *GraphOracle) Degree(v int) int { return o.g.Degree(v) }

// Neighbor implements Oracle.
func (o *GraphOracle) Neighbor(v, i int) int { return o.g.Neighbor(v, i) }

// Adjacency implements Oracle.
func (o *GraphOracle) Adjacency(u, v int) int { return o.g.AdjacencyIndex(u, v) }

// Stats is a snapshot of probe counts by type.
type Stats struct {
	Neighbor  uint64
	Degree    uint64
	Adjacency uint64
}

// Total returns the total probe count.
func (s Stats) Total() uint64 { return s.Neighbor + s.Degree + s.Adjacency }

// Sub returns s - t componentwise, for before/after deltas.
func (s Stats) Sub(t Stats) Stats {
	return Stats{
		Neighbor:  s.Neighbor - t.Neighbor,
		Degree:    s.Degree - t.Degree,
		Adjacency: s.Adjacency - t.Adjacency,
	}
}

// Counter wraps an Oracle and counts probes by type. It is not safe for
// concurrent use; harnesses that parallelize give each worker its own
// Counter (LCA instances are cheap and deterministic to rebuild).
type Counter struct {
	inner Oracle
	stats Stats
}

var _ Oracle = (*Counter)(nil)

// NewCounter wraps inner with probe accounting.
func NewCounter(inner Oracle) *Counter { return &Counter{inner: inner} }

// N implements Oracle (not counted; n is public knowledge in the model).
func (c *Counter) N() int { return c.inner.N() }

// Degree implements Oracle.
func (c *Counter) Degree(v int) int {
	c.stats.Degree++
	return c.inner.Degree(v)
}

// Neighbor implements Oracle.
func (c *Counter) Neighbor(v, i int) int {
	c.stats.Neighbor++
	return c.inner.Neighbor(v, i)
}

// Adjacency implements Oracle.
func (c *Counter) Adjacency(u, v int) int {
	c.stats.Adjacency++
	return c.inner.Adjacency(u, v)
}

// Stats returns the probe counts so far.
func (c *Counter) Stats() Stats { return c.stats }

// Reset zeroes the counters.
func (c *Counter) Reset() { c.stats = Stats{} }

// ProbeKind identifies a probe type in a recorded trace.
type ProbeKind uint8

// Probe kinds.
const (
	KindNeighbor ProbeKind = iota
	KindDegree
	KindAdjacency
)

// Record is one recorded probe with its answer.
type Record struct {
	Kind   ProbeKind
	A, B   int // Neighbor: (v, i); Degree: (v, 0); Adjacency: (u, v)
	Answer int
}

// Recorder wraps an Oracle and records the full probe/answer trace, used by
// the lower-bound experiments and for debugging locality violations.
type Recorder struct {
	inner Oracle
	trace []Record
}

var _ Oracle = (*Recorder)(nil)

// NewRecorder wraps inner with trace recording.
func NewRecorder(inner Oracle) *Recorder { return &Recorder{inner: inner} }

// N implements Oracle.
func (r *Recorder) N() int { return r.inner.N() }

// Degree implements Oracle.
func (r *Recorder) Degree(v int) int {
	ans := r.inner.Degree(v)
	r.trace = append(r.trace, Record{Kind: KindDegree, A: v, Answer: ans})
	return ans
}

// Neighbor implements Oracle.
func (r *Recorder) Neighbor(v, i int) int {
	ans := r.inner.Neighbor(v, i)
	r.trace = append(r.trace, Record{Kind: KindNeighbor, A: v, B: i, Answer: ans})
	return ans
}

// Adjacency implements Oracle.
func (r *Recorder) Adjacency(u, v int) int {
	ans := r.inner.Adjacency(u, v)
	r.trace = append(r.trace, Record{Kind: KindAdjacency, A: u, B: v, Answer: ans})
	return ans
}

// Trace returns the recorded probes. The slice is shared; callers must not
// modify it.
func (r *Recorder) Trace() []Record { return r.trace }

// Reset clears the trace.
func (r *Recorder) Reset() { r.trace = r.trace[:0] }

// CachingOracle wraps an Oracle and memoizes answers, so repeated probes of
// the same cell are answered locally. In the LCA model repeated probes are
// usually counted once (the algorithm could have cached them itself); the
// experiments report both raw and deduplicated counts by stacking Counter
// outside and inside a CachingOracle.
type CachingOracle struct {
	inner     Oracle
	degrees   map[int]int
	neighbors map[[2]int]int
	adjacency map[[2]int]int
}

var _ Oracle = (*CachingOracle)(nil)

// NewCaching wraps inner with memoization.
func NewCaching(inner Oracle) *CachingOracle {
	return &CachingOracle{
		inner:     inner,
		degrees:   make(map[int]int),
		neighbors: make(map[[2]int]int),
		adjacency: make(map[[2]int]int),
	}
}

// N implements Oracle.
func (c *CachingOracle) N() int { return c.inner.N() }

// Degree implements Oracle.
func (c *CachingOracle) Degree(v int) int {
	if d, ok := c.degrees[v]; ok {
		return d
	}
	d := c.inner.Degree(v)
	c.degrees[v] = d
	return d
}

// Neighbor implements Oracle.
func (c *CachingOracle) Neighbor(v, i int) int {
	k := [2]int{v, i}
	if w, ok := c.neighbors[k]; ok {
		return w
	}
	w := c.inner.Neighbor(v, i)
	c.neighbors[k] = w
	// A Neighbor answer also pins down one Adjacency answer for free.
	if w >= 0 {
		c.adjacency[[2]int{v, w}] = i
	}
	return w
}

// Adjacency implements Oracle.
func (c *CachingOracle) Adjacency(u, v int) int {
	k := [2]int{u, v}
	if i, ok := c.adjacency[k]; ok {
		return i
	}
	i := c.inner.Adjacency(u, v)
	c.adjacency[k] = i
	return i
}
