// Package oracle defines the adjacency-list oracle through which every LCA
// views its input graph, together with the probe-accounting wrappers that
// the experiments use to measure probe complexity.
//
// The probe set follows the centralized-local model (Rubinfeld et al. 2011):
//
//   - Neighbor(v, i): the i-th neighbor of v, or -1 if i >= deg(v).
//   - Degree(v): deg(v). (Definable from Neighbor probes by binary search;
//     provided natively and counted separately, as in the papers.)
//   - Adjacency(u, v): the index of v in Gamma(u), or -1 if (u,v) is not an
//     edge. Note the answer carries positional information; the spanner
//     constructions' O(1) cluster-membership tests depend on it.
//
// Algorithms must interact with the input graph only through this
// interface; the harness enforces probe budgets and records statistics by
// wrapping it.
package oracle

import (
	"sync"

	"lca/internal/source"
)

// Oracle is the adjacency-list probe interface of the LCA model.
type Oracle interface {
	// N returns the number of vertices. Knowing n is standard in the model
	// (it parameterizes thresholds) and does not count as a probe.
	N() int
	// Degree returns deg(v).
	Degree(v int) int
	// Neighbor returns the i-th (0-indexed) neighbor of v, or -1 if i is
	// out of range.
	Neighbor(v, i int) int
	// Adjacency returns the index of v in the neighbor list of u, or -1 if
	// (u,v) is not an edge.
	Adjacency(u, v int) int
}

// New returns an oracle view of a probe source. The probe interface is the
// source interface — an in-memory *graph.Graph, an implicit generator and
// a disk-backed CSR file all answer the same four probes — so the oracle
// boundary is a semantic one: algorithms receive an Oracle, never a
// backend, and harnesses interpose the accounting wrappers below.
func New(src source.Source) Oracle { return src }

// Stats is a snapshot of probe counts by type.
type Stats struct {
	Neighbor  uint64
	Degree    uint64
	Adjacency uint64
}

// Total returns the total probe count.
func (s Stats) Total() uint64 { return s.Neighbor + s.Degree + s.Adjacency }

// Sub returns s - t componentwise, for before/after deltas.
func (s Stats) Sub(t Stats) Stats {
	return Stats{
		Neighbor:  s.Neighbor - t.Neighbor,
		Degree:    s.Degree - t.Degree,
		Adjacency: s.Adjacency - t.Adjacency,
	}
}

// Counter wraps an Oracle and counts probes by type. It is not safe for
// concurrent use; harnesses that parallelize give each worker its own
// Counter (LCA instances are cheap and deterministic to rebuild).
type Counter struct {
	inner Oracle
	stats Stats
}

var _ Oracle = (*Counter)(nil)

// NewCounter wraps inner with probe accounting.
func NewCounter(inner Oracle) *Counter { return &Counter{inner: inner} }

// N implements Oracle (not counted; n is public knowledge in the model).
func (c *Counter) N() int { return c.inner.N() }

// Degree implements Oracle.
func (c *Counter) Degree(v int) int {
	c.stats.Degree++
	return c.inner.Degree(v)
}

// Neighbor implements Oracle.
func (c *Counter) Neighbor(v, i int) int {
	c.stats.Neighbor++
	return c.inner.Neighbor(v, i)
}

// Adjacency implements Oracle.
func (c *Counter) Adjacency(u, v int) int {
	c.stats.Adjacency++
	return c.inner.Adjacency(u, v)
}

// Stats returns the probe counts so far.
func (c *Counter) Stats() Stats { return c.stats }

// Reset zeroes the counters.
func (c *Counter) Reset() { c.stats = Stats{} }

// ProbeKind identifies a probe type in a recorded trace.
type ProbeKind uint8

// Probe kinds.
const (
	KindNeighbor ProbeKind = iota
	KindDegree
	KindAdjacency
)

// Record is one recorded probe with its answer.
type Record struct {
	Kind   ProbeKind
	A, B   int // Neighbor: (v, i); Degree: (v, 0); Adjacency: (u, v)
	Answer int
}

// Recorder wraps an Oracle and records the full probe/answer trace, used by
// the lower-bound experiments and for debugging locality violations.
type Recorder struct {
	inner Oracle
	trace []Record
}

var _ Oracle = (*Recorder)(nil)

// NewRecorder wraps inner with trace recording.
func NewRecorder(inner Oracle) *Recorder { return &Recorder{inner: inner} }

// N implements Oracle.
func (r *Recorder) N() int { return r.inner.N() }

// Degree implements Oracle.
func (r *Recorder) Degree(v int) int {
	ans := r.inner.Degree(v)
	r.trace = append(r.trace, Record{Kind: KindDegree, A: v, Answer: ans})
	return ans
}

// Neighbor implements Oracle.
func (r *Recorder) Neighbor(v, i int) int {
	ans := r.inner.Neighbor(v, i)
	r.trace = append(r.trace, Record{Kind: KindNeighbor, A: v, B: i, Answer: ans})
	return ans
}

// Adjacency implements Oracle.
func (r *Recorder) Adjacency(u, v int) int {
	ans := r.inner.Adjacency(u, v)
	r.trace = append(r.trace, Record{Kind: KindAdjacency, A: u, B: v, Answer: ans})
	return ans
}

// Trace returns the recorded probes. The slice is shared; callers must not
// modify it.
func (r *Recorder) Trace() []Record { return r.trace }

// Reset clears the trace.
func (r *Recorder) Reset() { r.trace = r.trace[:0] }

// CachingOracle wraps an Oracle and memoizes answers, so repeated probes of
// the same cell are answered locally. In the LCA model repeated probes are
// usually counted once (the algorithm could have cached them itself); the
// experiments report both raw and deduplicated counts by stacking Counter
// outside and inside a CachingOracle.
//
// CachingOracle is safe for concurrent use when its inner oracle is (every
// source backend is), so one instance can be shared across parallel
// assembly workers — probes one worker pays for answer every worker's
// repeats. Concurrent misses on the same cell may probe the inner oracle
// more than once; determinism makes the answers identical, so the race is
// benign and only costs a duplicate probe.
type CachingOracle struct {
	inner     Oracle
	degrees   sync.Map // int -> int
	neighbors sync.Map // uint64 (v,i) -> int
	adjacency sync.Map // uint64 (u,v) -> int
}

var _ Oracle = (*CachingOracle)(nil)

// NewCaching wraps inner with memoization.
func NewCaching(inner Oracle) *CachingOracle {
	return &CachingOracle{inner: inner}
}

// cacheKey packs a probe's two operands into one map key (operands are
// vertex IDs or list indices, both well under 2^32).
func cacheKey(a, b int) uint64 { return uint64(uint32(a))<<32 | uint64(uint32(b)) }

// N implements Oracle.
func (c *CachingOracle) N() int { return c.inner.N() }

// Degree implements Oracle.
func (c *CachingOracle) Degree(v int) int {
	if d, ok := c.degrees.Load(v); ok {
		return d.(int)
	}
	d := c.inner.Degree(v)
	c.degrees.Store(v, d)
	return d
}

// Neighbor implements Oracle.
func (c *CachingOracle) Neighbor(v, i int) int {
	k := cacheKey(v, i)
	if w, ok := c.neighbors.Load(k); ok {
		return w.(int)
	}
	w := c.inner.Neighbor(v, i)
	c.neighbors.Store(k, w)
	// A Neighbor answer also pins down one Adjacency answer for free.
	if w >= 0 {
		c.adjacency.Store(cacheKey(v, w), i)
	}
	return w
}

// Adjacency implements Oracle.
func (c *CachingOracle) Adjacency(u, v int) int {
	k := cacheKey(u, v)
	if i, ok := c.adjacency.Load(k); ok {
		return i.(int)
	}
	i := c.inner.Adjacency(u, v)
	c.adjacency.Store(k, i)
	return i
}
